// Quickstart: generate a mesh, bisect it with ScalaPart on 16
// simulated processors, and inspect the result.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A Delaunay mesh of 20k random points — the kind of graph the
	// paper's delaunay_n* family represents.
	mesh := gen.DelaunayRandom(20000, 7)
	g := mesh.G
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// ScalaPart end-to-end: coarsen, embed with the fixed-lattice
	// scheme, cut with the parallel geometric partitioner, refine on a
	// coordinate strip. P is the simulated processor count; results
	// come from the real parallel algorithm, times from its modeled
	// clocks.
	res := core.Partition(g, 16, core.DefaultOptions(1))

	fmt.Printf("cut: %d edges (%d before strip refinement)\n", res.Cut, res.CutBefore)
	fmt.Printf("imbalance: %.3f\n", res.Imbalance)
	fmt.Printf("modeled time on P=16: %.4fs (coarsen %.4f, embed %.4f, partition %.4f)\n",
		res.Times.Total, res.Times.Coarsen, res.Times.Embed, res.Times.Partition)

	// The partition is a plain per-vertex side array.
	w := graph.PartWeights(g, res.Part, 2)
	fmt.Printf("part sizes: %d / %d\n", w[0], w[1])
	if err := sanity(g, res.Part, res.Cut); err != nil {
		fmt.Println("sanity:", err)
	} else {
		fmt.Println("sanity: reported cut matches the partition")
	}
}

func sanity(g *graph.Graph, part []int32, cut int64) error {
	if got := graph.CutSize(g, part); got != cut {
		return fmt.Errorf("cut mismatch: %d vs %d", got, cut)
	}
	return nil
}
