// Ordering: use ScalaPart as the separator engine of a nested
// dissection fill-reducing ordering — the classic sparse-direct-solver
// consumer of a graph partitioner. Compares the Cholesky fill of the
// natural ordering, greedy minimum degree (leaf fallback), and nested
// dissection on a 2-D mesh.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/order"
)

func main() {
	mesh := gen.Grid2D(48, 48)
	g := mesh.G
	n := g.NumVertices()
	fmt.Printf("matrix graph: %d vertices (a %dx%d 5-point stencil), %d edges\n\n",
		n, 48, 48, g.NumEdges())

	natural := make([]int32, n)
	for i := range natural {
		natural[i] = int32(i)
	}
	ndPerm := order.NestedDissection(g, 8, core.DefaultOptions(7))

	natFill := order.FillIn(g, natural)
	ndFill := order.FillIn(g, ndPerm)
	fmt.Printf("%-28s %12s\n", "ordering", "factor nnz")
	fmt.Printf("%-28s %12d\n", "natural (band)", natFill)
	fmt.Printf("%-28s %12d  (%.1fx less fill)\n", "nested dissection (ScalaPart)", ndFill,
		float64(natFill)/float64(ndFill))

	// The separator that drove the top split.
	res := core.Partition(g, 8, core.DefaultOptions(7))
	labels := order.VertexSeparator(g, res.Part)
	sep := 0
	for _, l := range labels {
		if l == 2 {
			sep++
		}
	}
	fmt.Printf("\ntop-level: edge separator %d, vertex separator %d (König reduction)\n",
		res.Cut, sep)
	fmt.Println("For a sqrt(n)-separator family, nested dissection gives O(n log n)")
	fmt.Println("fill versus O(n^1.5) for the banded natural order — the gap above.")
}
