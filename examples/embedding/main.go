// Embedding: visualise what the fixed-lattice parallel embedding does —
// run the multilevel scheme on a mesh, then draw the embedded graph,
// the processor lattice (the paper's Figure 1), and the separator with
// its refinement strip (the paper's Figure 2) as an SVG.
//
// Output: embedding.svg in the working directory.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/mpi"
)

func main() {
	const p = 9 // a 3x3 grid, exactly the paper's Figure 1 setting
	mesh := gen.DelaunayRandom(4000, 16)
	g := mesh.G
	opt := core.DefaultOptions(5)
	h := coarsen.BuildHierarchy(g, p, opt.Coarsen)

	// Run the parallel embedding and keep each rank's view.
	views := make([]*embed.Distributed, p)
	mpi.Run(p, opt.Model, func(c *mpi.Comm) {
		views[c.Rank()] = embed.ParallelEmbed(c, h, opt.Embed)
	})
	pos := make([]geometry.Vec2, g.NumVertices())
	owner := make([]int, g.NumVertices())
	var lat *embed.Lattice
	for r, d := range views {
		for i, id := range d.OwnedIDs {
			pos[id] = d.OwnedPos[i]
			owner[id] = r
		}
		if d.Lat != nil {
			lat = d.Lat
		}
	}

	// Partition the embedded graph so the separator strip can be drawn.
	res := core.Partition(g, p, opt)
	fmt.Printf("embedded %d vertices on a %dx%d processor lattice; cut %d (strip %d vertices, %.1fx separator)\n",
		g.NumVertices(), lat.Grid.Rows, lat.Grid.Cols, res.Cut, res.StripSize,
		float64(res.StripSize)/math.Max(float64(res.Cut), 1))

	svg := render(g, pos, owner, lat, res.Part)
	if err := os.WriteFile("embedding.svg", []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "embedding:", err)
		os.Exit(1)
	}
	fmt.Println("wrote embedding.svg (vertices coloured by owning processor; cut edges in red)")
}

// render draws the embedded graph: edges in light grey, cut edges in
// red, vertices coloured by owner, lattice cuts as dashed lines.
func render(g *graph.Graph, pos []geometry.Vec2, owner []int, lat *embed.Lattice, part []int32) string {
	const size = 900.0
	r := geometry.BoundingRect(pos).Expand(1)
	sx := func(p geometry.Vec2) float64 { return (p.X - r.X0) / r.Width() * size }
	sy := func(p geometry.Vec2) float64 { return (p.Y - r.Y0) / r.Height() * size }
	palette := []string{
		"#4c78a8", "#f58518", "#54a24b", "#b279a2", "#e45756",
		"#72b7b2", "#eeca3b", "#9d755d", "#bab0ac",
	}
	out := fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		size, size, size, size)
	out += fmt.Sprintf(`<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", size, size)
	// Edges first.
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u >= v {
				continue
			}
			color, width := "#dddddd", 0.5
			if part[u] != part[v] {
				color, width = "#e45756", 1.6
			}
			out += fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
				sx(pos[u]), sy(pos[u]), sx(pos[v]), sy(pos[v]), color, width)
		}
	}
	// Lattice cuts.
	for _, x := range lat.XCuts[1 : len(lat.XCuts)-1] {
		px := (x - r.X0) / r.Width() * size
		out += fmt.Sprintf(`<line x1="%.1f" y1="0" x2="%.1f" y2="%.0f" stroke="#888" stroke-dasharray="6,4"/>`+"\n", px, px, size)
	}
	for _, y := range lat.YCuts[1 : len(lat.YCuts)-1] {
		py := (y - r.Y0) / r.Height() * size
		out += fmt.Sprintf(`<line x1="0" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#888" stroke-dasharray="6,4"/>`+"\n", py, py, size)
	}
	// Vertices.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		c := palette[owner[v]%len(palette)]
		out += fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="1.8" fill="%s"/>`+"\n",
			sx(pos[v]), sy(pos[v]), c)
	}
	return out + "</svg>\n"
}
