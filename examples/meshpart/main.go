// Meshpart: the FEM-workload comparison of the paper's intro — bisect
// a finite-element-style mesh with every partitioner in the repository
// and compare cut quality and modeled parallel time across processor
// counts.
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geopart"
	"repro/internal/mpi"
)

func main() {
	// A triangulated disk with holes, like the paper's hugebubbles
	// graphs (scaled down so the example runs in seconds).
	mesh := gen.Bubbles(30000, 10, 3)
	g := mesh.G
	fmt.Printf("mesh: %d vertices, %d edges (triangulated disk with 10 holes)\n\n",
		g.NumVertices(), g.NumEdges())

	fmt.Printf("%-12s %6s %8s %12s\n", "method", "P", "cut", "modeled-time")
	for _, p := range []int{4, 64, 512} {
		sp := core.Partition(g, p, core.DefaultOptions(1))
		fmt.Printf("%-12s %6d %8d %11.4fs\n", "ScalaPart", p, sp.Cut, sp.Times.Total)

		pm := baseline.Partition(g, p, baseline.ParMetisLike(1))
		fmt.Printf("%-12s %6d %8d %11.4fs\n", "ParMetis", p, pm.Cut, pm.Total)

		pts := baseline.Partition(g, p, baseline.PtScotchLike(1))
		fmt.Printf("%-12s %6d %8d %11.4fs\n", "Pt-Scotch", p, pts.Cut, pts.Total)

		// The mesh has natural coordinates, so RCB and the partition-
		// only ScalaPart (SP-PG7-NL) apply directly — the use case of
		// the paper's Figure 4.
		rcb := core.RCBParallel(g, mesh.Coords, p, mpi.DefaultModel())
		fmt.Printf("%-12s %6d %8d %11.4fs\n", "RCB", p, rcb.Cut, rcb.Times.Total)

		pg := core.PartitionGeometric(g, mesh.Coords, p, geopart.DefaultParallelConfig(), mpi.DefaultModel())
		fmt.Printf("%-12s %6d %8d %11.4fs\n", "SP-PG7-NL", p, pg.Cut, pg.Times.Total)
		fmt.Println()
	}
	fmt.Println("Note how RCB is fastest but cuts worst, the multilevel baselines")
	fmt.Println("cut well but slow down at scale, and SP-PG7-NL delivers geometric-")
	fmt.Println("partitioning speed with refined cuts once coordinates exist.")
}
