// FEM3D: three-dimensional geometric partitioning — the "graphs with
// coordinates in two or three dimensions" case from the paper's
// introduction. Bisects a structured 3-D grid and an unstructured
// random-geometric volume mesh with sphere separators (lifted to the
// 3-sphere in R⁴) and compares against plane-cut RCB.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/geopart"
	"repro/internal/graph"
)

func main() {
	grid := gen.Grid3D(20, 20, 20)
	rgg := gen.RandomGeometric3D(15000, 0.06, 4)
	fmt.Printf("meshes: %d-vertex 20^3 grid, %d-vertex random volume mesh\n\n",
		grid.G.NumVertices(), rgg.G.NumVertices())

	for _, m := range []*gen.Generated3D{grid, rgg} {
		_, sph, err := geopart.Partition3D(m.G, m.Coords, geopart.G30())
		if err != nil {
			log.Fatal(err)
		}
		_, rcb := geopart.RCBBisect3D(m.G, m.Coords)
		fmt.Printf("%-8s sphere separator: cut %5d (imb %.3f, %s)\n",
			m.Name, sph.Cut, sph.Imbalance, sph.BestKind)
		fmt.Printf("%-8s RCB plane cut:    cut %5d (imb %.3f)\n\n",
			m.Name, rcb.Cut, rcb.Imbalance)
	}

	// 8-way 3-D RCB for a full octree-style distribution.
	part, err := geopart.RCB3D(grid.G, grid.Coords, 8)
	if err != nil {
		log.Fatal(err)
	}
	w := graph.PartWeights(grid.G, part, 8)
	fmt.Printf("8-way RCB3D on the grid: cut %d, part weights %v\n",
		graph.CutSize(grid.G, part), w)
}
