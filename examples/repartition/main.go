// Repartition: the dynamic re-partitioning use case of the paper's
// Section 5 — a simulation whose mesh deforms over time must
// periodically re-balance. When coordinates are already known, the
// partition-only ScalaPart (SP-PG7-NL) can replace RCB: similar
// scalability, significantly better cuts.
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/mpi"
)

func main() {
	const p = 128
	mesh := gen.DelaunayRandom(40000, 11)
	g := mesh.G
	coords := append([]geometry.Vec2(nil), mesh.Coords...)
	fmt.Printf("mesh: %d vertices, %d edges; re-partitioning on P=%d as the domain deforms\n\n",
		g.NumVertices(), g.NumEdges(), p)
	fmt.Printf("%5s %22s %22s\n", "step", "RCB (cut / time)", "SP-PG7-NL (cut / time)")

	var rcbTotal, spTotal float64
	for step := 0; step < 5; step++ {
		// Deform: a time-dependent shear plus a radial swirl, the kind
		// of advection a Lagrangian simulation produces.
		t := float64(step) * 0.3
		for i, q := range coords {
			dx := 0.35 * t * math.Sin(2*math.Pi*q.Y)
			r := q.Sub(geometry.Vec2{X: 0.5, Y: 0.5})
			swirl := 0.4 * t * math.Exp(-4*r.Dot(r))
			cos, sin := math.Cos(swirl), math.Sin(swirl)
			rot := geometry.Vec2{X: r.X*cos - r.Y*sin, Y: r.X*sin + r.Y*cos}
			coords[i] = geometry.Vec2{X: 0.5 + rot.X + dx, Y: 0.5 + rot.Y}
		}
		rcb := core.RCBParallel(g, coords, p, mpi.DefaultModel())
		sp := core.PartitionGeometric(g, coords, p, geopart.DefaultParallelConfig(), mpi.DefaultModel())
		rcbTotal += rcb.Times.Total
		spTotal += sp.Times.Total
		fmt.Printf("%5d %10d / %8.5fs %10d / %8.5fs\n",
			step, rcb.Cut, rcb.Times.Total, sp.Cut, sp.Times.Total)
	}
	fmt.Printf("\ncumulative partitioning time: RCB %.5fs, SP-PG7-NL %.5fs\n", rcbTotal, spTotal)
	fmt.Println("SP-PG7-NL's incremental cost stays within a small factor of RCB's")
	fmt.Println("while its refined sphere separators track the deforming geometry.")
}
