// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index) at a reduced
// scale, one benchmark per experiment. The heavy lifting is cached in a
// shared harness, so each benchmark pays the experiment cost once and
// subsequent b.N iterations read cached results; reported metrics carry
// the headline numbers (cut ratios, modeled times, speed-ups).
//
// The full-scale sweep is produced by cmd/benchsuite; these benchmarks
// are the CI-sized reproduction of the same code paths.
package repro

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

// benchScale keeps `go test -bench=.` in the minutes range on one core;
// cmd/benchsuite runs the real thing.
const benchScale = 0.08

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

func sharedHarness() *bench.Harness {
	harnessOnce.Do(func() {
		harness = bench.New(benchScale, []int{1, 16, 256, 1024})
	})
	return harness
}

// lines counts output rows as a sanity signal that the experiment
// produced its table.
func lines(s string) int { return strings.Count(s, "\n") }

func BenchmarkTable1Suite(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Table1()) < 10 {
			b.Fatal("table 1 truncated")
		}
	}
}

func BenchmarkTable2GeometricQuality(b *testing.B) {
	h := sharedHarness()
	var out string
	for i := 0; i < b.N; i++ {
		out = h.Table2()
	}
	b.ReportMetric(float64(lines(out)), "rows")
}

func BenchmarkTable3CutRanges(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Table3()) < 10 {
			b.Fatal("table 3 truncated")
		}
	}
}

func BenchmarkTable4Speedups(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Table4()) < 5 {
			b.Fatal("table 4 truncated")
		}
	}
}

func BenchmarkFig2Strip(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig2()) < 2 {
			b.Fatal("fig 2 truncated")
		}
	}
}

func BenchmarkFig3TotalTimes(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig3()) < 5 {
			b.Fatal("fig 3 truncated")
		}
	}
	// Headline shape metric: ScalaPart time relative to Pt-Scotch at
	// the largest P (the paper reports 0.0617 at 1024).
	pMax := 1024
	b.ReportMetric(h.TotalTime(bench.MethodSP, pMax)/h.TotalTime(bench.MethodPTS, pMax), "SP/PTS@Pmax")
}

func BenchmarkFig4PartitionOnly(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig4()) < 5 {
			b.Fatal("fig 4 truncated")
		}
	}
}

func BenchmarkFig5Hugebubbles(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig5()) < 5 {
			b.Fatal("fig 5 truncated")
		}
	}
}

func BenchmarkFig6G3Circuit(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig6()) < 5 {
			b.Fatal("fig 6 truncated")
		}
	}
}

func BenchmarkFig7Components(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig7()) < 5 {
			b.Fatal("fig 7 truncated")
		}
	}
}

func BenchmarkFig8EmbedComm(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig8()) < 5 {
			b.Fatal("fig 8 truncated")
		}
	}
}

func BenchmarkFig9Large4(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		if lines(h.Fig9()) < 10 {
			b.Fatal("fig 9 truncated")
		}
	}
}

func BenchmarkAblationLatticeVsExact(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		_ = h.AblationLatticeVsExact()
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		_ = h.AblationBlockSize()
	}
}

func BenchmarkAblationStripFM(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		_ = h.AblationStripFM()
	}
}

func BenchmarkAblationTries(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		_ = h.AblationTries()
	}
}

func BenchmarkAblationLevelRetention(b *testing.B) {
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		_ = h.AblationLevelRetention()
	}
}

// BenchmarkScalaPartEndToEnd measures the real (wall-clock) cost of one
// complete ScalaPart run — the simulation's own performance rather than
// the modeled cluster time.
func BenchmarkScalaPartEndToEnd(b *testing.B) {
	g := gen.DelaunayRandom(20000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Partition(g.G, 16, core.DefaultOptions(int64(i)))
		if res.Cut <= 0 {
			b.Fatal("degenerate cut")
		}
	}
}

// TestBenchmarkShapes is the checked-in assertion of the paper's
// headline shapes at bench scale: ScalaPart's best cut competitive with
// Pt-Scotch's, ParMetis's worst cut the largest, ScalaPart slowest at
// P=1 and cheaper than Pt-Scotch at P=1024.
func TestBenchmarkShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the mini-sweep")
	}
	h := sharedHarness()
	var spBest, ptsBest []float64
	for _, name := range bench.SuiteNames() {
		spLo, _ := h.CutRange(name, bench.MethodSP)
		ptsLo, _ := h.CutRange(name, bench.MethodPTS)
		spBest = append(spBest, float64(spLo))
		ptsBest = append(ptsBest, float64(ptsLo))
	}
	ratio := stats.GeoMean(spBest) / stats.GeoMean(ptsBest)
	if ratio > 1.35 {
		t.Errorf("ScalaPart best cuts %.2fx Pt-Scotch's best (want competitive, paper: 0.94)", ratio)
	}
	sp1 := h.TotalTime(bench.MethodSP, 1)
	pts1 := h.TotalTime(bench.MethodPTS, 1)
	if sp1 < 2*pts1 {
		t.Errorf("ScalaPart at P=1 should be far slower than Pt-Scotch (got %.4f vs %.4f)", sp1, pts1)
	}
	spMax := h.TotalTime(bench.MethodSP, 1024)
	ptsMax := h.TotalTime(bench.MethodPTS, 1024)
	if spMax > ptsMax {
		t.Errorf("ScalaPart at P=1024 (%.4f) should beat Pt-Scotch (%.4f)", spMax, ptsMax)
	}
}
