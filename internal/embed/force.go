// Package embed implements the graph-embedding machinery of ScalaPart:
// the Hu-style force model, a sequential multilevel Barnes–Hut layout
// (the baseline that stands in for the paper's Mathematica embedder),
// and the paper's main contribution — the fixed-lattice parallel
// multilevel embedding, in which long-range repulsion is approximated
// by one special vertex per processor sub-domain and communication is
// confined to grid neighbours except for one global refresh per block
// of iterations.
package embed

import "repro/internal/geometry"

// ForceParams are the force-model "twiddle factors" of Hu (2006), as
// adopted by the paper: attraction along an edge of length d pulls with
// magnitude d²/K, repulsion between vertices at distance d pushes with
// magnitude C·K²/d (scaled by the product of the masses).
type ForceParams struct {
	C float64 // repulsive strength
	K float64 // natural spring length
}

// DefaultForceParams returns C=0.2, K=1, the values Hu reports to work
// well in practice.
func DefaultForceParams() ForceParams { return ForceParams{C: 0.2, K: 1} }

// Attractive returns the attractive force exerted on a vertex at `at`
// by an edge to `other`: magnitude d²/K toward the neighbour.
func (fp ForceParams) Attractive(at, other geometry.Vec2) geometry.Vec2 {
	d := other.Sub(at)
	dist := d.Norm()
	if dist < 1e-12 {
		return geometry.Vec2{}
	}
	// unit(d) * dist^2/K == d * dist/K
	return d.Scale(dist / fp.K)
}

// Repulsive returns the repulsive force exerted on a unit-mass vertex
// at `at` by mass `mass` at `from`: magnitude C·K²·mass/d away from it.
func (fp ForceParams) Repulsive(at, from geometry.Vec2, mass float64) geometry.Vec2 {
	d := at.Sub(from)
	dist2 := d.Dot(d)
	if dist2 < 1e-12 {
		dist2 = 1e-12
	}
	// unit(d) * C*K^2*mass/dist == d * C*K^2*mass/dist^2
	return d.Scale(fp.C * fp.K * fp.K * mass / dist2)
}

// StepController implements Hu's adaptive cooling: the step length
// grows after a run of energy reductions and shrinks otherwise.
type StepController struct {
	Step     float64
	t        float64 // cooling factor
	progress int
	prevE    float64
}

// NewStepController starts with step = initial and cooling factor 0.9.
func NewStepController(initial float64) *StepController {
	return &StepController{Step: initial, t: 0.9, prevE: -1}
}

// Update adapts the step given the current system energy (sum of
// squared force magnitudes). The first call only records the baseline.
func (s *StepController) Update(energy float64) {
	if s.prevE < 0 {
		s.prevE = energy
		return
	}
	if energy < s.prevE {
		s.progress++
		if s.progress >= 5 {
			s.progress = 0
			s.Step /= s.t
		}
	} else {
		s.progress = 0
		s.Step *= s.t
	}
	s.prevE = energy
}
