package embed

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/hostpar"
	"repro/internal/mpi"
	"repro/internal/quadtree"
)

// Lattice is one level's geometric decomposition: a tensor lattice of
// quantile cuts aligned with the processor grid, so sub-domain B(i,j)
// belongs to grid processor (i,j). This generalises the paper's fixed
// uniform lattice in the same way its coarsest-level RCB mapping does:
// cuts follow the point distribution, so boxes stay load balanced.
type Lattice struct {
	Grid   mpi.Grid
	XCuts  []float64 // len Cols+1, ascending; XCuts[0]/XCuts[Cols] are bounds
	YCuts  []float64 // len Rows+1, ascending
	Bounds geometry.Rect
}

// NewLattice builds a lattice for grid from a coordinate sample: cut
// positions are sample quantiles, independently per axis.
func NewLattice(grid mpi.Grid, sample []geometry.Vec2, bounds geometry.Rect) *Lattice {
	xs := make([]float64, len(sample))
	ys := make([]float64, len(sample))
	for i, p := range sample {
		xs[i], ys[i] = p.X, p.Y
	}
	return NewLatticeFromAxes(grid, xs, ys, bounds)
}

// NewLatticeFromAxes builds a lattice from per-axis coordinate samples.
// The cuts depend only on each axis's sorted multiset, so callers that
// stream coordinates (rather than materialising []Vec2) feed the axes
// directly. Ownership of xs and ys transfers to the lattice; both are
// sorted in place.
func NewLatticeFromAxes(grid mpi.Grid, xs, ys []float64, bounds geometry.Rect) *Lattice {
	l := &Lattice{Grid: grid, Bounds: bounds}
	sort.Float64s(xs)
	sort.Float64s(ys)
	l.XCuts = quantileCuts(xs, grid.Cols, bounds.X0, bounds.X1)
	l.YCuts = quantileCuts(ys, grid.Rows, bounds.Y0, bounds.Y1)
	return l
}

// quantileCuts returns k+1 ascending cut positions over [lo, hi] with
// interior cuts at the sorted sample's quantiles; degenerate samples
// fall back to uniform spacing.
func quantileCuts(sorted []float64, k int, lo, hi float64) []float64 {
	cuts := make([]float64, k+1)
	cuts[0], cuts[k] = lo, hi
	for j := 1; j < k; j++ {
		if len(sorted) > 0 {
			idx := j * len(sorted) / k
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			cuts[j] = sorted[idx]
		} else {
			cuts[j] = lo + (hi-lo)*float64(j)/float64(k)
		}
	}
	// Enforce strict monotonicity so every box has positive extent.
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	eps := 1e-9 * span
	for j := 1; j <= k; j++ {
		if cuts[j] <= cuts[j-1] {
			cuts[j] = cuts[j-1] + eps
		}
	}
	return cuts
}

// colOf locates x among the X cuts (clamped to valid columns).
func locate(cuts []float64, v float64) int {
	// cuts has k+1 entries for k cells; find the cell index.
	k := len(cuts) - 1
	lo, hi := 0, k
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cuts[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= k {
		lo = k - 1
	}
	return lo
}

// BoxOf returns the (row, col) lattice cell containing p.
func (l *Lattice) BoxOf(p geometry.Vec2) (row, col int) {
	return locate(l.YCuts, p.Y), locate(l.XCuts, p.X)
}

// RankOf returns the grid rank owning p's cell.
func (l *Lattice) RankOf(p geometry.Vec2) int {
	r, c := l.BoxOf(p)
	return l.Grid.RankAt(r, c)
}

// BoxRect returns the rectangle of cell (row, col).
func (l *Lattice) BoxRect(row, col int) geometry.Rect {
	return geometry.Rect{
		X0: l.XCuts[col], X1: l.XCuts[col+1],
		Y0: l.YCuts[row], Y1: l.YCuts[row+1],
	}
}

// ClampToNeighborhood implements the paper's ghost-coordinate rule:
// the coordinate of a ghost vertex is moved into the neighbouring box
// at shortest L1 distance from the home box (homeRow, homeCol), so
// every cross-domain edge appears to end in one of the four adjacent
// sub-domains. Coordinates already in the home box or a 4-neighbour are
// returned unchanged.
func (l *Lattice) ClampToNeighborhood(p geometry.Vec2, homeRow, homeCol int) geometry.Vec2 {
	r, c := l.BoxOf(p)
	dr, dc := r-homeRow, c-homeCol
	if abs(dr)+abs(dc) <= 1 {
		return p
	}
	// Nearest 4-neighbour box: keep the dominant offset direction,
	// capped to distance one.
	tr, tc := homeRow, homeCol
	if abs(dr) >= abs(dc) {
		tr += sign(dr)
	} else {
		tc += sign(dc)
	}
	box := l.BoxRect(tr, tc)
	q := box.Clamp(p)
	// A point clamped exactly onto a box's upper edge would classify
	// into the next box over (cuts are half-open); nudge inward.
	if q.X >= box.X1 {
		q.X = box.X1 - 1e-9*box.Width()
	}
	if q.Y >= box.Y1 {
		q.Y = box.Y1 - 1e-9*box.Height()
	}
	return q
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// neighborRef resolves one adjacency endpoint: a local owned index or a
// ghost slot.
type neighborRef struct {
	idx   int32
	w     float64
	ghost bool
}

// beta is one special vertex of the repulsion lattice: total mass and
// centre of mass of the vertices in one cell. The paper uses one
// special vertex per processor sub-domain; this implementation refines
// each rank's box into an s×s sub-cell grid so the global cell count
// never drops below minGlobalCells — with one cell per rank the
// approximation degenerates at small P (with P=1 all repulsion would
// act from a single centre of mass).
type beta struct {
	Phi geometry.Vec2
	Mu  float64
}

// boxSubCells is the per-rank sub-cell grid side: each box maintains
// 4×4 special vertices so that border cells can be corrected with the
// neighbouring box's near-side aggregates.
const boxSubCells = 4

// levelState is one rank's state while smoothing one level with the
// fixed lattice scheme.
type levelState struct {
	comm *mpi.Comm
	lat  *Lattice
	g    *graph.Graph

	ownedIDs []int32
	pos      []geometry.Vec2 // aligned with ownedIDs
	mass     []float64

	ghostIDs     []int32
	ghostPos     []geometry.Vec2 // true (unclamped, possibly stale) coordinates
	ghostClamped []geometry.Vec2 // ghost coordinates clamped to the 4-neighbourhood
	ghostSlot    map[int32]int32

	adj      [][]neighborRef // per owned vertex
	boundary []int32         // owned local indices with a ghost neighbour

	// Ghost update pattern: sendTo[r] lists owned local indices whose
	// coordinates rank r subscribes to; recvFrom[r] lists ghost slots
	// filled by rank r's pushes, in r's send order.
	sendTo   map[int][]int32
	recvFrom map[int][]int32

	subS    int             // sub-cells per box side
	betas   []beta          // all global cells, cell-grid row-major
	myCells []beta          // scratch for this rank's cells (row-major within box)
	inherit []geometry.Vec2 // per local cell: far-field force per unit mass
	ring    [][]int         // per local cell: 3x3-adjacent global cells outside this box
	moves   []geometry.Vec2 // scratch displacement buffer
	homeR   int
	homeC   int
	step    *StepController
	fp      ForceParams
	energy  float64 // local energy accumulator for the adaptive step
	aSum    float64 // local sum of attractive force magnitudes
	rSum    float64 // local sum of repulsive force magnitudes

	// Steady-state scratch: owned by the level so the smoothing hot
	// loop never allocates after the first block.
	nbrs       []int                  // cached grid 4-neighbourhood
	cellSums   []geometry.Vec2        // computeCells mass-weighted sums
	rankAggs   []beta                 // iterate per-remote-rank aggregates
	recvCells  []beta                 // decoded neighbour sub-cells
	nbrBufs    []*mpi.VecBuf[float64] // per-neighbour send staging
	gatherBuf  [2][]beta              // double-buffered AllGather contribution
	gatherFlip int
	tree       quadtree.Tree // Barnes–Hut tree, rebuilt in place each iteration

	// Host-parallel scratch and pre-bound chunk bodies (hostpar.go).
	hp hostparScratch
}

// newLevelState wires up a rank's level: adjacency resolution, ghost
// discovery, and subscription exchange. ownerOf must return the owning
// rank of any ghost id; it is supplied by the level driver (directory
// lookup or local computation at the coarsest level).
func newLevelState(comm *mpi.Comm, lat *Lattice, g *graph.Graph, ownedIDs []int32, pos []geometry.Vec2, ownerOf func(ids []int32) []int, fp ForceParams) *levelState {
	s := &levelState{
		comm:      comm,
		lat:       lat,
		g:         g,
		ownedIDs:  ownedIDs,
		pos:       pos,
		fp:        fp,
		ghostSlot: make(map[int32]int32),
		sendTo:    make(map[int][]int32),
		recvFrom:  make(map[int][]int32),
	}
	s.homeR = lat.Grid.RowOf(comm.Rank())
	s.homeC = lat.Grid.ColOf(comm.Rank())
	local := make(map[int32]int32, len(ownedIDs))
	for i, id := range ownedIDs {
		local[id] = int32(i)
	}
	cur := graph.GetCursor(g)
	defer cur.Release()
	s.mass = make([]float64, len(ownedIDs))
	s.adj = make([][]neighborRef, len(ownedIDs))
	for i, id := range ownedIDs {
		s.mass[i] = float64(g.VertexWeight(id))
		refs := make([]neighborRef, 0, g.Degree(id))
		isBoundary := false
		nbrs, wgts := cur.Arcs(id)
		for k, nb := range nbrs {
			w := float64(wgts[k])
			if li, ok := local[nb]; ok {
				refs = append(refs, neighborRef{idx: li, w: w})
				continue
			}
			isBoundary = true
			slot, ok := s.ghostSlot[nb]
			if !ok {
				slot = int32(len(s.ghostIDs))
				s.ghostSlot[nb] = slot
				s.ghostIDs = append(s.ghostIDs, nb)
			}
			refs = append(refs, neighborRef{idx: slot, w: w, ghost: true})
		}
		s.adj[i] = refs
		if isBoundary {
			s.boundary = append(s.boundary, int32(i))
		}
	}
	s.ghostPos = make([]geometry.Vec2, len(s.ghostIDs))
	s.ghostClamped = make([]geometry.Vec2, len(s.ghostIDs))
	// Subscribe to ghost owners; the symmetric exchange also tells us
	// which of our owned vertices other ranks need.
	owners := ownerOf(s.ghostIDs)
	requests := make([][]int32, comm.Size())
	for i, o := range owners {
		if o == comm.Rank() {
			panic("embed: ghost owned by requesting rank")
		}
		requests[o] = append(requests[o], s.ghostIDs[i])
	}
	for o, ids := range requests {
		if len(ids) == 0 {
			continue
		}
		slots := make([]int32, len(ids))
		for i, id := range ids {
			slots[i] = s.ghostSlot[id]
		}
		s.recvFrom[o] = slots
	}
	got := mpi.AllToAllV(s.comm, requests, 4)
	for r, ids := range got {
		if r == comm.Rank() || len(ids) == 0 {
			continue
		}
		idxs := make([]int32, len(ids))
		for i, id := range ids {
			li, ok := local[id]
			if !ok {
				panic("embed: subscription request for vertex not owned here")
			}
			idxs[i] = li
		}
		s.sendTo[r] = idxs
	}
	s.subS = boxSubCells
	s.betas = make([]beta, lat.Grid.Size()*s.subS*s.subS)
	s.myCells = make([]beta, s.subS*s.subS)
	s.inherit = make([]geometry.Vec2, s.subS*s.subS)
	s.moves = make([]geometry.Vec2, len(s.pos))
	s.nbrs = lat.Grid.Neighbors(comm.Rank())
	s.cellSums = make([]geometry.Vec2, s.subS*s.subS)
	s.rankAggs = make([]beta, lat.Grid.Size())
	s.recvCells = make([]beta, s.subS*s.subS)
	s.nbrBufs = make([]*mpi.VecBuf[float64], 0, len(s.nbrs))
	s.ring = make([][]int, s.subS*s.subS)
	rows, cols := s.cellRows(), s.cellCols()
	for cy := 0; cy < s.subS; cy++ {
		for cx := 0; cx < s.subS; cx++ {
			gi := s.globalCell(cy, cx)
			gr, gc := gi/cols, gi%cols
			var out []int
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					nr, ncl := gr+dr, gc+dc
					if nr < 0 || nr >= rows || ncl < 0 || ncl >= cols {
						continue
					}
					// Outside this box = a different rank's cell.
					if nr/s.subS != s.homeR || ncl/s.subS != s.homeC {
						out = append(out, nr*cols+ncl)
					}
				}
			}
			s.ring[cy*s.subS+cx] = out
		}
	}
	s.step = NewStepController(fp.K)
	s.initHostpar()
	return s
}

// Cell-grid geometry: the global repulsion lattice has
// (Grid.Rows·subS) × (Grid.Cols·subS) cells; rank (br,bc) owns the
// subS×subS block starting at (br·subS, bc·subS). betas is row-major
// over this global grid.

// cellRows and cellCols are the global cell-grid dimensions.
func (s *levelState) cellCols() int { return s.lat.Grid.Cols * s.subS }
func (s *levelState) cellRows() int { return s.lat.Grid.Rows * s.subS }

// globalCell converts a local cell (cy,cx) to a global cell index.
func (s *levelState) globalCell(cy, cx int) int {
	gr := s.homeR*s.subS + cy
	gc := s.homeC*s.subS + cx
	return gr*s.cellCols() + gc
}

// cellBase returns the global index of another rank's first cell row
// offset; used when scattering gathered cells.
func (s *levelState) placeCells(rank int, cells []beta) {
	br := s.lat.Grid.RowOf(rank)
	bc := s.lat.Grid.ColOf(rank)
	for cy := 0; cy < s.subS; cy++ {
		gr := br*s.subS + cy
		copy(s.betas[gr*s.cellCols()+bc*s.subS:gr*s.cellCols()+bc*s.subS+s.subS],
			cells[cy*s.subS:(cy+1)*s.subS])
	}
}

// cellOf returns the local sub-cell index of a point in this rank's
// box (clamped for points that drifted outside).
func (s *levelState) cellOf(p geometry.Vec2) int {
	box := s.lat.BoxRect(s.homeR, s.homeC)
	w, h := box.Width(), box.Height()
	cx, cy := 0, 0
	if w > 0 {
		cx = int(float64(s.subS) * (p.X - box.X0) / w)
	}
	if h > 0 {
		cy = int(float64(s.subS) * (p.Y - box.Y0) / h)
	}
	if cx < 0 {
		cx = 0
	}
	if cx >= s.subS {
		cx = s.subS - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= s.subS {
		cy = s.subS - 1
	}
	return cy*s.subS + cx
}

// computeCells refreshes this rank's sub-cell aggregates from the owned
// points and installs them in the global cell array. Runs the
// host-parallel classification (see hostpar.go) unless SetParallel
// disabled it; the two paths are bit-identical.
func (s *levelState) computeCells() {
	if parallelOn.Load() {
		s.computeCellsHostpar()
		return
	}
	s.computeCellsLegacy()
}

func (s *levelState) computeCellsLegacy() {
	for i := range s.myCells {
		s.myCells[i] = beta{}
	}
	sums := s.cellSums
	for i := range sums {
		sums[i] = geometry.Vec2{}
	}
	for i := range s.pos {
		c := s.cellOf(s.pos[i])
		sums[c] = sums[c].Add(s.pos[i].Scale(s.mass[i]))
		s.myCells[c].Mu += s.mass[i]
	}
	box := s.lat.BoxRect(s.homeR, s.homeC)
	for c := range s.myCells {
		if s.myCells[c].Mu > 0 {
			s.myCells[c].Phi = sums[c].Scale(1 / s.myCells[c].Mu)
		} else {
			// Empty cell: park its centre inside the box; zero mass
			// keeps it out of force sums.
			s.myCells[c].Phi = box.Center()
		}
	}
	s.placeCells(s.comm.Rank(), s.myCells)
}

// pushGhosts sends subscribed coordinates to every subscription
// partner: the full once-per-block refresh. Payloads travel through the
// pooled typed fast path, so the steady-state refresh allocates
// nothing: one pooled message per partner, released by the receiver.
func (s *levelState) pushGhosts() {
	for r := 0; r < s.comm.Size(); r++ {
		idxs, ok := s.sendTo[r]
		if !ok {
			continue
		}
		buf := mpi.Vec2Bufs.Get(len(idxs))
		s.packGhostPayload(buf.Data, idxs)
		mpi.SendVec(s.comm, r, buf, 16)
	}
	for r := 0; r < s.comm.Size(); r++ {
		slots, ok := s.recvFrom[r]
		if !ok {
			continue
		}
		b := mpi.RecvVec[geometry.Vec2](s.comm, r)
		if len(b.Data) != len(slots) {
			// A corrupted (truncated) refresh must not index out of
			// range and must not strand the pooled transport buffer.
			n := len(b.Data)
			b.Release()
			panic(fmt.Errorf("embed: ghost refresh from rank %d carried %d coordinates, want %d at comm event %d (truncated payload?)", r, n, len(slots), s.comm.Events()-1))
		}
		s.applyGhostUpdate(slots, b.Data)
		b.Release()
	}
}

func (s *levelState) applyGhostUpdate(slots []int32, payload []geometry.Vec2) {
	s.installGhosts(slots, payload)
}

// setGhost installs one ghost coordinate: the true position plus its
// 4-neighbourhood clamp used by the attractive force.
func (s *levelState) setGhost(slot int32, p geometry.Vec2) {
	s.ghostPos[slot] = p
	s.ghostClamped[slot] = s.lat.ClampToNeighborhood(p, s.homeR, s.homeC)
}

// The per-iteration neighbour message is one flat []float64 per
// partner: the sender's subS×subS sub-cell special vertices (Phi.X,
// Phi.Y, Mu per cell) followed by the boundary coordinates the receiver
// subscribes to (X, Y each). Both sides know the layout — the cell
// count is fixed and the receiver knows its own subscription counts —
// so no framing header is needed and the modeled payload stays exactly
// 24·cells + 16·coords bytes, as with the former boxed struct message.

// exchangeNeighborhood performs the per-iteration nearest-neighbour
// exchange: sub-cell aggregates and subscribed boundary coordinates
// move to the four grid neighbours coalesced into a single pooled
// message each (the paper's nearest-neighbour traffic, one ts charge
// per partner rather than one per payload kind); everything else stays
// stale within the block.
func (s *levelState) exchangeNeighborhood() {
	s.computeCells()
	nc := len(s.myCells)
	bufs := s.nbrBufs[:0]
	for _, r := range s.nbrs {
		buf := mpi.Float64Bufs.Get(3*nc + 2*len(s.sendTo[r]))
		d := buf.Data
		for i, b := range s.myCells {
			d[3*i], d[3*i+1], d[3*i+2] = b.Phi.X, b.Phi.Y, b.Mu
		}
		s.packCoordPayload(d, 3*nc, s.sendTo[r])
		bufs = append(bufs, buf)
	}
	s.nbrBufs = bufs
	mpi.NeighborExchange(s.comm, s.nbrs, bufs, 8, func(_, r int, d []float64) {
		if want := 3*nc + 2*len(s.recvFrom[r]); len(d) != want {
			// NeighborExchange releases the transport buffer under
			// defer, so rejecting a truncated payload here cannot leak.
			panic(fmt.Errorf("embed: neighbour payload from rank %d carried %d values, want %d at comm event %d (truncated payload?)", r, len(d), want, s.comm.Events()-1))
		}
		for j := range s.recvCells {
			s.recvCells[j] = beta{
				Phi: geometry.Vec2{X: d[3*j], Y: d[3*j+1]},
				Mu:  d[3*j+2],
			}
		}
		s.placeCells(r, s.recvCells)
		s.installGhostsFlat(s.recvFrom[r], d, 3*nc)
	})
}

// refreshBetasGlobal gathers every rank's sub-cell special vertices
// (the once-per-block collective of the paper). The contribution is
// staged into one of two alternating buffers rather than a fresh copy:
// remote ranks read the gathered slice after the collective returns,
// and the next boundary's collective is a synchronisation point no rank
// can pass while another still reads the previous contribution, so two
// buffers make the reuse race-free.
func (s *levelState) refreshBetasGlobal() {
	s.computeCells()
	buf := append(s.gatherBuf[s.gatherFlip][:0], s.myCells...)
	s.gatherBuf[s.gatherFlip] = buf
	s.gatherFlip ^= 1
	all := mpi.AllGather(s.comm, buf, 24*len(buf))
	for r, cells := range all {
		s.placeCells(r, cells)
	}
}

// iterate runs one force iteration. Repulsion has three tiers:
// within this rank's own box a Barnes–Hut quadtree over the owned
// points gives sequential-quality near-field forces (at P=1 the scheme
// therefore reduces to the sequential algorithm); remote boxes act
// through their special-vertex aggregates, inherited once per local
// sub-cell exactly as in Eq. (1)–(2) of the paper; and the sub-cells of
// neighbouring boxes that touch a border cell are evaluated per vertex
// to correct the border near field. Attraction is exact, with ghost
// positions clamped to the 4-neighbourhood per the paper. The paper's
// mass products are interpreted per unit mass so repulsion and
// attraction stay commensurate.
//
// Dispatches to the host-parallel kernels (hostpar.go) unless
// SetParallel disabled them; the two paths are bit-identical, including
// the virtual-clock charge.
func (s *levelState) iterate() {
	if parallelOn.Load() {
		s.iterateHostpar()
		return
	}
	s.iterateLegacy()
}

func (s *levelState) iterateLegacy() {
	me := s.comm.Rank()
	fp := s.fp
	nc := len(s.myCells)
	// Remote-rank aggregates from the (possibly block-stale) cell
	// array.
	aggs := s.rankAggs
	for r := range aggs {
		aggs[r] = beta{}
		if r == me {
			continue
		}
		br, bc := s.lat.Grid.RowOf(r), s.lat.Grid.ColOf(r)
		var sum geometry.Vec2
		mu := 0.0
		for cy := 0; cy < s.subS; cy++ {
			gr := br*s.subS + cy
			base := gr*s.cellCols() + bc*s.subS
			for cx := 0; cx < s.subS; cx++ {
				b := s.betas[base+cx]
				sum = sum.Add(b.Phi.Scale(b.Mu))
				mu += b.Mu
			}
		}
		if mu > 0 {
			aggs[r] = beta{Phi: sum.Scale(1 / mu), Mu: mu}
		}
	}
	// Per-cell inherited far field: all remote rank aggregates, minus
	// the ring cells handled per vertex below (they are part of their
	// rank's aggregate, so their lumped contribution is subtracted).
	for c := 0; c < nc; c++ {
		mine := s.betas[s.globalCell(c/s.subS, c%s.subS)]
		var f geometry.Vec2
		if mine.Mu > 0 {
			for r, a := range aggs {
				if r == me || a.Mu == 0 {
					continue
				}
				f = f.Add(fp.Repulsive(mine.Phi, a.Phi, a.Mu))
			}
			for _, gi := range s.ring[c] {
				b := s.betas[gi]
				if b.Mu > 0 {
					f = f.Sub(fp.Repulsive(mine.Phi, b.Phi, b.Mu))
				}
			}
		}
		s.inherit[c] = f
	}
	// Own-box Barnes–Hut tree, rebuilt in place over the reused arena.
	tree := &s.tree
	tree.Rebuild(s.pos, s.mass)
	energy := 0.0
	aSum, rSum := 0.0, 0.0
	for i := range s.pos {
		p := s.pos[i]
		cell := s.cellOf(p)
		rep := s.inherit[cell].Scale(s.mass[i])
		for _, gi := range s.ring[cell] {
			b := s.betas[gi]
			if b.Mu > 0 {
				rep = rep.Add(fp.Repulsive(p, b.Phi, b.Mu).Scale(s.mass[i]))
			}
		}
		mi := s.mass[i]
		tree.ForEachCluster(p, int32(i), 0.9, func(com geometry.Vec2, m float64, _ int32) {
			rep = rep.Add(fp.Repulsive(p, com, m).Scale(mi))
		})
		var att geometry.Vec2
		for _, ref := range s.adj[i] {
			var q geometry.Vec2
			if ref.ghost {
				q = s.ghostClamped[ref.idx]
			} else {
				q = s.pos[ref.idx]
			}
			att = att.Add(fp.Attractive(p, q).Scale(ref.w))
		}
		aSum += att.Norm()
		rSum += rep.Norm()
		f := rep.Add(att)
		energy += f.Dot(f)
		n := f.Norm()
		if n > 1e-12 {
			s.moves[i] = f.Scale(s.step.Step / n)
		} else {
			s.moves[i] = geometry.Vec2{}
		}
	}
	for i := range s.pos {
		s.pos[i] = s.pos[i].Add(s.moves[i])
	}
	s.energy = energy
	s.aSum = aSum
	s.rSum = rSum
	// Model: per owned vertex, ~theta-visit Barnes–Hut terms plus the
	// degree attractive terms; per cell, the remote-aggregate loop. A
	// charged unit is one force kernel evaluation (a handful of fused
	// floating-point operations).
	ops := float64(nc * (s.lat.Grid.Size() + 8))
	for i := range s.adj {
		ops += float64(len(s.adj[i])) + 16
	}
	s.comm.Charge(ops)
}

// rescale multiplies every coordinate and the lattice geometry by f,
// moving the layout toward its force equilibrium (attraction scales as
// f², repulsion as 1/f). Every rank applies the same factor, so box
// ownership and all relative geometry are preserved.
func (s *levelState) rescale(f float64) {
	if parallelOn.Load() {
		// Element-wise scale: exact for any chunking. The ghost/beta/cut
		// loops below stay serial — they are a small constant share.
		s.hp.scaleF = f
		hostpar.ForChunked(len(s.pos), grainCopy, s.hp.fnScalePos)
	} else {
		for i := range s.pos {
			s.pos[i] = s.pos[i].Scale(f)
		}
	}
	for i := range s.ghostPos {
		s.ghostPos[i] = s.ghostPos[i].Scale(f)
		s.ghostClamped[i] = s.ghostClamped[i].Scale(f)
	}
	for i := range s.betas {
		s.betas[i].Phi = s.betas[i].Phi.Scale(f)
	}
	for i := range s.lat.XCuts {
		s.lat.XCuts[i] *= f
	}
	for i := range s.lat.YCuts {
		s.lat.YCuts[i] *= f
	}
	s.lat.Bounds = s.lat.Bounds.Scale(f)
	s.step.Step *= f
	s.comm.Charge(float64(len(s.pos)))
}

// Smooth runs iters iterations of the fixed-lattice scheme with the
// given staleness block size: global collectives (full ghost push,
// full beta gather, and one reduction driving the adaptive step and the
// equilibrium rescaling) run once per block; within a block only
// grid-neighbour exchanges happen.
func (s *levelState) Smooth(iters, blockSize int) {
	if blockSize < 1 {
		blockSize = 1
	}
	for it := 0; it < iters; it++ {
		if it%blockSize == 0 {
			if it > 0 {
				// One reduction per block: system energy for Hu's
				// adaptive step plus the attraction/repulsion balance
				// for the global equilibrium rescaling. A fixed-size
				// array payload keeps the collective allocation-free on
				// the contributing side (same modeled bytes and the
				// same element-wise rank-order sums as the former
				// slice reduction).
				sums := mpi.AllReduce(s.comm, [3]float64{s.energy, s.aSum, s.rSum}, 24,
					func(a, b [3]float64) [3]float64 {
						return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
					})
				s.step.Update(sums[0])
				if sums[1] > 1e-12 && sums[2] > 1e-12 {
					f := cbrt(sums[2] / sums[1])
					if f < 0.75 {
						f = 0.75
					}
					if f > 1.75 {
						f = 1.75
					}
					s.rescale(f)
				}
			}
			s.pushGhosts()
			s.refreshBetasGlobal()
		} else {
			s.exchangeNeighborhood()
		}
		s.iterate()
	}
}

// cbrt is math.Cbrt without pulling the import into the hot path docs.
func cbrt(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// Newton iterations from a decent seed are plenty here.
	y := x
	if y > 1 {
		for y > 8 {
			y /= 8
		}
	} else {
		for y < 0.125 {
			y *= 8
		}
	}
	g := 1.0
	for i := 0; i < 30; i++ {
		g = (2*g + x/(g*g)) / 3
	}
	return g
}

// Distributed is the embedding handed to the parallel geometric
// partitioner: this rank's owned vertices with final coordinates, plus
// (possibly one block stale) coordinates for every ghost neighbour.
type Distributed struct {
	Lat      *Lattice
	OwnedIDs []int32
	OwnedPos []geometry.Vec2
	GhostIDs []int32
	GhostPos []geometry.Vec2

	ghostSlot map[int32]int32
	localSlot map[int32]int32
}

// finish freezes the level state into a Distributed embedding after a
// final full ghost refresh.
func (s *levelState) finish() *Distributed {
	s.pushGhosts()
	d := &Distributed{
		Lat:       s.lat,
		OwnedIDs:  s.ownedIDs,
		OwnedPos:  s.pos,
		GhostIDs:  s.ghostIDs,
		GhostPos:  s.ghostPos,
		ghostSlot: s.ghostSlot,
		localSlot: make(map[int32]int32, len(s.ownedIDs)),
	}
	for i, id := range s.ownedIDs {
		d.localSlot[id] = int32(i)
	}
	return d
}

// PosOf returns the coordinate of an owned or ghost vertex.
func (d *Distributed) PosOf(id int32) (geometry.Vec2, bool) {
	if li, ok := d.localSlot[id]; ok {
		return d.OwnedPos[li], true
	}
	if gi, ok := d.ghostSlot[id]; ok {
		return d.GhostPos[gi], true
	}
	return geometry.Vec2{}, false
}

// Owns reports whether id is owned by this rank.
func (d *Distributed) Owns(id int32) bool {
	_, ok := d.localSlot[id]
	return ok
}

// LocalSlot returns the OwnedIDs/OwnedPos index of an owned vertex.
// Views built outside ParallelEmbed/SplitCoords (tests, benchmarks)
// may lack the index maps; they are rebuilt on first use.
func (d *Distributed) LocalSlot(id int32) (int32, bool) {
	if d.localSlot == nil {
		d.localSlot = make(map[int32]int32, len(d.OwnedIDs))
		for i, v := range d.OwnedIDs {
			d.localSlot[v] = int32(i)
		}
	}
	li, ok := d.localSlot[id]
	return li, ok
}

// GhostSlot returns the GhostIDs/GhostPos index of a ghost vertex.
func (d *Distributed) GhostSlot(id int32) (int32, bool) {
	if d.ghostSlot == nil {
		d.ghostSlot = make(map[int32]int32, len(d.GhostIDs))
		for i, v := range d.GhostIDs {
			d.ghostSlot[v] = int32(i)
		}
	}
	gi, ok := d.ghostSlot[id]
	return gi, ok
}
