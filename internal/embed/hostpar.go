package embed

import (
	"sync/atomic"

	"repro/internal/geometry"
	"repro/internal/hostpar"
)

// Host-parallel embedding kernels.
//
// The per-rank embedding loops (force accumulation, cell aggregation,
// payload packing, ghost installation) dominate the suite wall clock
// once coarsening is parallel, so they run on the shared hostpar pool
// with PR 4's bit-identity discipline: every output element is written
// by exactly one statically assigned chunk, scalar accumulations
// (energy, force-magnitude sums, virtual-clock charges) are reduced
// serially in the original index order from per-element scratch, and
// every charged cost stays the original float expression. Worker count
// therefore never changes a coordinate, a cut, or a clock — the
// determinism tests pin worker=1 against worker=8 exactly.
//
// The hot chunk bodies are pre-bound method values stored on the level
// state, so the steady-state iteration submits pooled work without
// allocating closures (the embed alloc guards stay at PR 2 levels).

// parallelOn gates the hostpar kernels; disabled, the embedding runs
// the original serial loops kept verbatim. The two paths are
// bit-identical.
var parallelOn atomic.Bool

func init() { parallelOn.Store(true) }

// SetParallel enables or disables the host-parallel embedding kernels
// and returns the previous setting. Mirrors coarsen.SetParallel: a
// host-performance knob that must never change modeled results.
func SetParallel(on bool) bool {
	prev := parallelOn.Load()
	parallelOn.Store(on)
	return prev
}

// Parallel reports whether the host-parallel embedding kernels are
// enabled.
func Parallel() bool { return parallelOn.Load() }

// Grain sizes: minimum iterations per chunk for each kernel, sized so
// chunk bookkeeping stays negligible against the body.
const (
	grainForce = 32   // Barnes–Hut + attraction per vertex
	grainCell  = 256  // cellOf per point
	grainCopy  = 1024 // element-wise packs, moves, scales
	grainGhost = 256  // ghost install (clamp per coordinate)
)

// hostparScratch is the levelState's host-parallel working set:
// per-vertex force terms for the deterministic serial reduction,
// per-point cell indices, pack/apply staging references, and the
// pre-bound chunk bodies.
type hostparScratch struct {
	eTerm, aTerm, rTerm []float64 // per-vertex f·f, |att|, |rep|
	cellIdx             []int32   // per-point sub-cell index

	scaleF    float64         // rescale factor for fnScalePos
	packIdxs  []int32         // owned indices being packed
	packVec2  []geometry.Vec2 // Vec2 payload destination
	packF64   []float64       // float64 payload destination
	packBase  int             // first float64 slot of the coord block
	applyIdxs []int32         // ghost slots being installed
	applyVec2 []geometry.Vec2 // Vec2 payload source
	applyF64  []float64       // float64 payload source
	applyBase int             // first float64 slot of the coord block

	fnAggs, fnInherit, fnForce, fnMove func(c, lo, hi int)
	fnCellIdx, fnScalePos              func(c, lo, hi int)
	fnPackVec2, fnPackF64              func(c, lo, hi int)
	fnApplyVec2, fnApplyF64            func(c, lo, hi int)
}

// initHostpar sizes the scratch and binds the chunk bodies once per
// level, so the smoothing loop never allocates for pool submission.
func (s *levelState) initHostpar() {
	n := len(s.pos)
	s.hp.eTerm = make([]float64, n)
	s.hp.aTerm = make([]float64, n)
	s.hp.rTerm = make([]float64, n)
	s.hp.cellIdx = make([]int32, n)
	s.hp.fnAggs = s.aggsChunk
	s.hp.fnInherit = s.inheritChunk
	s.hp.fnForce = s.forceChunk
	s.hp.fnMove = s.moveChunk
	s.hp.fnCellIdx = s.cellIdxChunk
	s.hp.fnScalePos = s.scalePosChunk
	s.hp.fnPackVec2 = s.packVec2Chunk
	s.hp.fnPackF64 = s.packF64Chunk
	s.hp.fnApplyVec2 = s.applyVec2Chunk
	s.hp.fnApplyF64 = s.applyF64Chunk
}

// aggsChunk computes the per-remote-rank special-vertex aggregates for
// ranks [lo, hi): each aggregate reads only the (frozen) cell array and
// writes only its own slot.
func (s *levelState) aggsChunk(_, lo, hi int) {
	me := s.comm.Rank()
	for r := lo; r < hi; r++ {
		s.rankAggs[r] = beta{}
		if r == me {
			continue
		}
		br, bc := s.lat.Grid.RowOf(r), s.lat.Grid.ColOf(r)
		var sum geometry.Vec2
		mu := 0.0
		for cy := 0; cy < s.subS; cy++ {
			gr := br*s.subS + cy
			base := gr*s.cellCols() + bc*s.subS
			for cx := 0; cx < s.subS; cx++ {
				b := s.betas[base+cx]
				sum = sum.Add(b.Phi.Scale(b.Mu))
				mu += b.Mu
			}
		}
		if mu > 0 {
			s.rankAggs[r] = beta{Phi: sum.Scale(1 / mu), Mu: mu}
		}
	}
}

// inheritChunk computes the inherited far-field force of local cells
// [lo, hi) from the finished rank aggregates.
func (s *levelState) inheritChunk(_, lo, hi int) {
	me := s.comm.Rank()
	fp := s.fp
	for c := lo; c < hi; c++ {
		mine := s.betas[s.globalCell(c/s.subS, c%s.subS)]
		var f geometry.Vec2
		if mine.Mu > 0 {
			for r, a := range s.rankAggs {
				if r == me || a.Mu == 0 {
					continue
				}
				f = f.Add(fp.Repulsive(mine.Phi, a.Phi, a.Mu))
			}
			for _, gi := range s.ring[c] {
				b := s.betas[gi]
				if b.Mu > 0 {
					f = f.Sub(fp.Repulsive(mine.Phi, b.Phi, b.Mu))
				}
			}
		}
		s.inherit[c] = f
	}
}

// forceChunk evaluates the full force on owned vertices [lo, hi),
// writing the displacement and the per-vertex energy/magnitude terms.
// Every float expression and every accumulation order within one vertex
// matches the serial loop; the tree traversal is read-only.
func (s *levelState) forceChunk(_, lo, hi int) {
	fp := s.fp
	tree := &s.tree
	step := s.step.Step
	for i := lo; i < hi; i++ {
		p := s.pos[i]
		cell := s.cellOf(p)
		rep := s.inherit[cell].Scale(s.mass[i])
		for _, gi := range s.ring[cell] {
			b := s.betas[gi]
			if b.Mu > 0 {
				rep = rep.Add(fp.Repulsive(p, b.Phi, b.Mu).Scale(s.mass[i]))
			}
		}
		mi := s.mass[i]
		tree.ForEachCluster(p, int32(i), 0.9, func(com geometry.Vec2, m float64, _ int32) {
			rep = rep.Add(fp.Repulsive(p, com, m).Scale(mi))
		})
		var att geometry.Vec2
		for _, ref := range s.adj[i] {
			var q geometry.Vec2
			if ref.ghost {
				q = s.ghostClamped[ref.idx]
			} else {
				q = s.pos[ref.idx]
			}
			att = att.Add(fp.Attractive(p, q).Scale(ref.w))
		}
		s.hp.aTerm[i] = att.Norm()
		s.hp.rTerm[i] = rep.Norm()
		f := rep.Add(att)
		s.hp.eTerm[i] = f.Dot(f)
		n := f.Norm()
		if n > 1e-12 {
			s.moves[i] = f.Scale(step / n)
		} else {
			s.moves[i] = geometry.Vec2{}
		}
	}
}

// moveChunk applies the displacement buffer to vertices [lo, hi).
func (s *levelState) moveChunk(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.pos[i] = s.pos[i].Add(s.moves[i])
	}
}

// cellIdxChunk classifies points [lo, hi) into sub-cells; the mass
// accumulation over the indices stays serial in point order.
func (s *levelState) cellIdxChunk(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.hp.cellIdx[i] = int32(s.cellOf(s.pos[i]))
	}
}

// scalePosChunk rescales owned coordinates [lo, hi) by hp.scaleF.
func (s *levelState) scalePosChunk(_, lo, hi int) {
	f := s.hp.scaleF
	for i := lo; i < hi; i++ {
		s.pos[i] = s.pos[i].Scale(f)
	}
}

// packVec2Chunk gathers pos[packIdxs[k]] into packVec2 for k in
// [lo, hi): the pushGhosts payload fill.
func (s *levelState) packVec2Chunk(_, lo, hi int) {
	for k := lo; k < hi; k++ {
		s.hp.packVec2[k] = s.pos[s.hp.packIdxs[k]]
	}
}

// packF64Chunk gathers subscribed coordinates into the flat neighbour
// payload: slots packBase+2k, packBase+2k+1 for k in [lo, hi).
func (s *levelState) packF64Chunk(_, lo, hi int) {
	d, base := s.hp.packF64, s.hp.packBase
	for k := lo; k < hi; k++ {
		p := s.pos[s.hp.packIdxs[k]]
		d[base+2*k], d[base+2*k+1] = p.X, p.Y
	}
}

// applyVec2Chunk installs ghost coordinates [lo, hi) from a Vec2
// payload. Slots within one partner's message are distinct, so each
// ghost slot is written by exactly one chunk.
func (s *levelState) applyVec2Chunk(_, lo, hi int) {
	for k := lo; k < hi; k++ {
		s.setGhost(s.hp.applyIdxs[k], s.hp.applyVec2[k])
	}
}

// applyF64Chunk installs ghost coordinates [lo, hi) from the flat
// neighbour payload starting at applyBase.
func (s *levelState) applyF64Chunk(_, lo, hi int) {
	d, base := s.hp.applyF64, s.hp.applyBase
	for k := lo; k < hi; k++ {
		s.setGhost(s.hp.applyIdxs[k], geometry.Vec2{X: d[base+2*k], Y: d[base+2*k+1]})
	}
}

// iterateHostpar is the host-parallel force iteration: identical to
// iterateLegacy except that element-wise passes run chunked on the pool
// and the three scalar sums are reduced serially from per-vertex terms
// in the original index order.
func (s *levelState) iterateHostpar() {
	nc := len(s.myCells)
	hostpar.ForChunked(len(s.rankAggs), 1, s.hp.fnAggs)
	hostpar.ForChunked(nc, 2, s.hp.fnInherit)
	// Own-box Barnes–Hut tree: Rebuild stays serial — its node layout
	// depends on insertion order, and one in-order build keeps the
	// traversal (and therefore every force sum) worker-independent.
	s.tree.Rebuild(s.pos, s.mass)
	hostpar.ForChunked(len(s.pos), grainForce, s.hp.fnForce)
	energy, aSum, rSum := 0.0, 0.0, 0.0
	for i := range s.pos {
		aSum += s.hp.aTerm[i]
		rSum += s.hp.rTerm[i]
		energy += s.hp.eTerm[i]
	}
	hostpar.ForChunked(len(s.pos), grainCopy, s.hp.fnMove)
	s.energy = energy
	s.aSum = aSum
	s.rSum = rSum
	// The modeled charge is unchanged: same serial accumulation, same
	// float expressions, independent of the host worker count.
	ops := float64(nc * (s.lat.Grid.Size() + 8))
	for i := range s.adj {
		ops += float64(len(s.adj[i])) + 16
	}
	s.comm.Charge(ops)
}

// computeCellsHostpar classifies points in parallel, then accumulates
// mass and centre sums serially in point order — the same float
// accumulation order as the legacy loop, so aggregates (and everything
// downstream: betas, forces, clocks) are bit-identical.
func (s *levelState) computeCellsHostpar() {
	for i := range s.myCells {
		s.myCells[i] = beta{}
	}
	sums := s.cellSums
	for i := range sums {
		sums[i] = geometry.Vec2{}
	}
	hostpar.ForChunked(len(s.pos), grainCell, s.hp.fnCellIdx)
	for i := range s.pos {
		c := s.hp.cellIdx[i]
		sums[c] = sums[c].Add(s.pos[i].Scale(s.mass[i]))
		s.myCells[c].Mu += s.mass[i]
	}
	box := s.lat.BoxRect(s.homeR, s.homeC)
	for c := range s.myCells {
		if s.myCells[c].Mu > 0 {
			s.myCells[c].Phi = sums[c].Scale(1 / s.myCells[c].Mu)
		} else {
			s.myCells[c].Phi = box.Center()
		}
	}
	s.placeCells(s.comm.Rank(), s.myCells)
}

// packGhostPayload fills dst[k] = pos[idxs[k]].
func (s *levelState) packGhostPayload(dst []geometry.Vec2, idxs []int32) {
	if !parallelOn.Load() {
		for i, li := range idxs {
			dst[i] = s.pos[li]
		}
		return
	}
	s.hp.packIdxs, s.hp.packVec2 = idxs, dst
	hostpar.ForChunked(len(idxs), grainCopy, s.hp.fnPackVec2)
	s.hp.packIdxs, s.hp.packVec2 = nil, nil
}

// packCoordPayload fills d[base+2k], d[base+2k+1] = pos[idxs[k]].
func (s *levelState) packCoordPayload(d []float64, base int, idxs []int32) {
	if !parallelOn.Load() {
		off := base
		for _, li := range idxs {
			d[off], d[off+1] = s.pos[li].X, s.pos[li].Y
			off += 2
		}
		return
	}
	s.hp.packIdxs, s.hp.packF64, s.hp.packBase = idxs, d, base
	hostpar.ForChunked(len(idxs), grainCopy, s.hp.fnPackF64)
	s.hp.packIdxs, s.hp.packF64 = nil, nil
}

// installGhosts sets ghost slots from a Vec2 payload (clamping each
// coordinate to the 4-neighbourhood).
func (s *levelState) installGhosts(slots []int32, payload []geometry.Vec2) {
	if !parallelOn.Load() {
		for i, slot := range slots {
			s.setGhost(slot, payload[i])
		}
		return
	}
	s.hp.applyIdxs, s.hp.applyVec2 = slots, payload
	hostpar.ForChunked(len(slots), grainGhost, s.hp.fnApplyVec2)
	s.hp.applyIdxs, s.hp.applyVec2 = nil, nil
}

// installGhostsFlat sets ghost slots from the flat neighbour payload
// starting at base.
func (s *levelState) installGhostsFlat(slots []int32, d []float64, base int) {
	if !parallelOn.Load() {
		off := base
		for _, slot := range slots {
			s.setGhost(slot, geometry.Vec2{X: d[off], Y: d[off+1]})
			off += 2
		}
		return
	}
	s.hp.applyIdxs, s.hp.applyF64, s.hp.applyBase = slots, d, base
	hostpar.ForChunked(len(slots), grainGhost, s.hp.fnApplyF64)
	s.hp.applyIdxs, s.hp.applyF64 = nil, nil
}
