package embed

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// TestSmoothSteadyStateAllocs guards the zero-allocation hot loop: once
// scratch buffers and message pools are warm, a full staleness block
// (blockSize iterations + the boundary ghost push, beta gather, and
// energy reduction) must allocate far less than the pre-pooling
// baseline (~263 mallocs per block across a 4-rank world). The bound
// leaves headroom for runtime noise while still failing if payload
// allocation sneaks back into the per-iteration path.
func TestSmoothSteadyStateAllocs(t *testing.T) {
	const (
		p      = 4
		bs     = 4
		blocks = 20
	)
	g := gen.Grid2D(48, 48)
	var perBlock float64
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		st := benchLevelState(c, g, 7)
		st.Smooth(4*bs, bs) // warm scratch buffers and pools
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		c.Barrier()
		st.Smooth(blocks*bs, bs)
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perBlock = float64(m1.Mallocs-m0.Mallocs) / blocks
		}
		c.Barrier()
	})
	if perBlock > 130 {
		t.Errorf("steady-state Smooth: %.1f mallocs per block (world-wide), want well under 130", perBlock)
	}
	t.Logf("steady-state Smooth: %.1f mallocs per block across %d ranks", perBlock, p)
}
