package embed

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/graph"
)

// TestSSDEGridGeometry: SSDE of a rectangular grid must recover the
// elongated axis (the dominant spectral direction is the long side).
func TestSSDEGridGeometry(t *testing.T) {
	g := gen.Grid2D(12, 48)
	coords := SSDELayout(g.G, SSDEOptions{Seed: 2})
	r := geometry.BoundingRect(coords)
	if r.Width() < 2*r.Height() {
		t.Fatalf("grid aspect not recovered: %v x %v", r.Width(), r.Height())
	}
	// Neighbours must be near: mean edge length well below the span.
	var sum float64
	for u := int32(0); u < int32(g.G.NumVertices()); u++ {
		for _, v := range g.G.Neighbors(u) {
			if u < v {
				sum += coords[u].Dist(coords[v])
			}
		}
	}
	mean := sum / float64(g.G.NumEdges())
	if mean > r.Width()/10 {
		t.Fatalf("mean edge %v vs span %v: no locality", mean, r.Width())
	}
}

func TestSSDETinyAndDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3) // disconnected, vertex 4 isolated
	g := b.Build()
	coords := SSDELayout(g, SSDEOptions{Seed: 1, Landmarks: 3})
	if len(coords) != 5 {
		t.Fatalf("got %d coords", len(coords))
	}
	for _, c := range coords {
		if c.X != c.X || c.Y != c.Y {
			t.Fatal("NaN coordinate")
		}
	}
	if SSDELayout(&graph.Graph{XAdj: []int32{0}}, SSDEOptions{}) != nil {
		t.Fatal("empty graph should give nil")
	}
}

func TestBFSDistances(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	d := bfs(g, 0)
	want := []int32{0, 1, 2, 3}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("d[%d]=%d want %d", i, d[i], w)
		}
	}
	if d[4] <= 4 {
		t.Fatal("unreachable vertex got finite distance")
	}
}
