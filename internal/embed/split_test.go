package embed

import (
	"testing"

	"repro/internal/gen"
)

func TestSplitCoordsPartition(t *testing.T) {
	g := gen.Grid2D(30, 30)
	for _, p := range []int{1, 5, 16} {
		views := SplitCoords(g.G, g.Coords, p)
		if len(views) != p {
			t.Fatalf("p=%d: %d views", p, len(views))
		}
		seen := make(map[int32]bool)
		for _, d := range views {
			for i, id := range d.OwnedIDs {
				if seen[id] {
					t.Fatalf("p=%d: vertex %d owned twice", p, id)
				}
				seen[id] = true
				if d.OwnedPos[i] != g.Coords[id] {
					t.Fatalf("p=%d: vertex %d coordinate mangled", p, id)
				}
			}
			// Every neighbour of an owned vertex must be resolvable.
			for _, id := range d.OwnedIDs {
				for _, nb := range g.G.Neighbors(id) {
					if _, ok := d.PosOf(nb); !ok {
						t.Fatalf("p=%d: neighbour %d of %d unresolvable", p, nb, id)
					}
				}
			}
		}
		if len(seen) != g.G.NumVertices() {
			t.Fatalf("p=%d: %d vertices owned, want %d", p, len(seen), g.G.NumVertices())
		}
	}
}

// TestSequentialLayoutQuality: neighbours end up much closer than
// far-apart grid vertices.
func TestSequentialLayoutQuality(t *testing.T) {
	g := gen.Grid2D(24, 24)
	pos := SequentialLayout(g.G, SeqOptions{Seed: 3})
	var edgeSum float64
	var edges int
	for u := int32(0); u < int32(g.G.NumVertices()); u++ {
		for _, v := range g.G.Neighbors(u) {
			if u < v {
				edgeSum += pos[u].Dist(pos[v])
				edges++
			}
		}
	}
	meanEdge := edgeSum / float64(edges)
	// Opposite grid corners should be far apart in the layout.
	corner := pos[0].Dist(pos[len(pos)-1])
	if corner < 8*meanEdge {
		t.Fatalf("layout collapsed: corner distance %.2f vs mean edge %.2f", corner, meanEdge)
	}
}
