package embed

import (
	"sort"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/mpi"
)

// runEmbed executes the parallel embedding on p simulated ranks and
// returns the per-rank distributed results plus rank stats.
func runEmbed(t *testing.T, g *gen.Generated, p int, opt ParallelOptions) ([]*Distributed, []mpi.RankStats) {
	t.Helper()
	h := coarsen.BuildHierarchy(g.G, p, coarsen.Options{CoarsestSize: 200, Seed: 1})
	out := make([]*Distributed, p)
	stats := mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		out[c.Rank()] = ParallelEmbed(c, h, opt)
	})
	return out, stats
}

// TestParallelEmbedPartitionOfVertices checks that across ranks the
// owned vertex sets exactly partition the graph.
func TestParallelEmbedPartitionOfVertices(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		g := gen.Grid2D(40, 40)
		out, _ := runEmbed(t, g, p, ParallelOptions{Seed: 7, IterCoarsest: 60, IterSmooth: 10})
		seen := make(map[int32]int)
		total := 0
		for r, d := range out {
			if d == nil {
				t.Fatalf("p=%d: rank %d returned nil", p, r)
			}
			total += len(d.OwnedIDs)
			for _, id := range d.OwnedIDs {
				if prev, dup := seen[id]; dup {
					t.Fatalf("p=%d: vertex %d owned by ranks %d and %d", p, id, prev, r)
				}
				seen[id] = r
			}
		}
		if total != g.G.NumVertices() {
			t.Fatalf("p=%d: %d owned vertices, want %d", p, total, g.G.NumVertices())
		}
	}
}

// TestParallelEmbedGhostsConsistent checks that every rank's ghost
// coordinates match the owner's coordinates after the final refresh.
func TestParallelEmbedGhostsConsistent(t *testing.T) {
	p := 4
	g := gen.Grid2D(30, 30)
	out, _ := runEmbed(t, g, p, ParallelOptions{Seed: 3, IterCoarsest: 40, IterSmooth: 8})
	pos := make(map[int32]geometry.Vec2)
	for _, d := range out {
		for i, id := range d.OwnedIDs {
			pos[id] = d.OwnedPos[i]
		}
	}
	for r, d := range out {
		for i, id := range d.GhostIDs {
			want := pos[id]
			got := d.GhostPos[i]
			if want.Dist(got) > 1e-9 {
				t.Fatalf("rank %d ghost %d: got %v want %v", r, id, got, want)
			}
		}
	}
}

// TestParallelEmbedQuality: the embedding of a grid should place graph
// neighbours much closer together than random vertex pairs (a layout
// that preserves locality is all the geometric partitioner needs).
func TestParallelEmbedQuality(t *testing.T) {
	g := gen.Grid2D(32, 32)
	out, _ := runEmbed(t, g, 4, ParallelOptions{Seed: 5})
	pos := make([]geometry.Vec2, g.G.NumVertices())
	for _, d := range out {
		for i, id := range d.OwnedIDs {
			pos[id] = d.OwnedPos[i]
		}
	}
	var edgeSum float64
	var edges int
	for u := int32(0); u < int32(g.G.NumVertices()); u++ {
		for _, v := range g.G.Neighbors(u) {
			if u < v {
				edgeSum += pos[u].Dist(pos[v])
				edges++
			}
		}
	}
	meanEdge := edgeSum / float64(edges)
	// Mean distance between far-apart id pairs (ids differ by half the
	// grid) as a proxy for random pairs.
	var farSum float64
	var far int
	n := g.G.NumVertices()
	for u := 0; u < n/2; u += 7 {
		farSum += pos[u].Dist(pos[u+n/2])
		far++
	}
	meanFar := farSum / float64(far)
	if meanEdge*2 > meanFar {
		t.Fatalf("embedding does not separate: mean edge length %.3f vs far-pair %.3f", meanEdge, meanFar)
	}
}

// TestParallelEmbedDeterminism: identical inputs must give identical
// coordinates regardless of goroutine scheduling.
func TestParallelEmbedDeterminism(t *testing.T) {
	g := gen.Grid2D(24, 24)
	collect := func() []geometry.Vec2 {
		out, _ := runEmbed(t, g, 4, ParallelOptions{Seed: 11, IterCoarsest: 30, IterSmooth: 6})
		pos := make([]geometry.Vec2, g.G.NumVertices())
		for _, d := range out {
			for i, id := range d.OwnedIDs {
				pos[id] = d.OwnedPos[i]
			}
		}
		return pos
	}
	a := collect()
	b := collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertex %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestParallelEmbedClockAdvances sanity-checks the virtual clocks: all
// ranks end with positive time and communication time below total.
func TestParallelEmbedClockAdvances(t *testing.T) {
	g := gen.Grid2D(30, 30)
	_, stats := runEmbed(t, g, 8, ParallelOptions{Seed: 2, IterCoarsest: 30, IterSmooth: 6})
	times := make([]float64, len(stats))
	for i, s := range stats {
		if s.Time <= 0 {
			t.Fatalf("rank %d: non-positive virtual time %v", i, s.Time)
		}
		if s.CommTime > s.Time+1e-12 {
			t.Fatalf("rank %d: comm %v exceeds total %v", i, s.CommTime, s.Time)
		}
		times[i] = s.Time
	}
	sort.Float64s(times)
	if times[0] <= 0 {
		t.Fatal("min rank time not positive")
	}
}
