package embed

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// embedRun executes the parallel embedding and flattens the result into
// one position per vertex plus the per-rank stats.
func embedRun(t *testing.T, g *gen.Generated, p int, opt ParallelOptions) ([]geometry.Vec2, []mpi.RankStats) {
	t.Helper()
	out, stats := runEmbed(t, g, p, opt)
	pos := make([]geometry.Vec2, g.G.NumVertices())
	for _, d := range out {
		for i, id := range d.OwnedIDs {
			pos[id] = d.OwnedPos[i]
		}
	}
	return pos, stats
}

// TestEmbedWorkerCountBitIdentical is the embedding worker-determinism
// regression: the legacy serial kernels and the hostpar kernels at
// worker counts 1, 2, and 8 must produce exactly identical coordinates
// and exactly identical virtual clocks / traffic. This pins the
// bit-identity discipline (static chunks, serial index-order
// reductions, serial tree build) for iterate, Smooth, computeCells,
// ghost packing/installation, and projectLevel.
func TestEmbedWorkerCountBitIdentical(t *testing.T) {
	g := gen.Grid2D(28, 28)
	opt := ParallelOptions{Seed: 9, IterCoarsest: 40, IterSmooth: 8}
	const p = 4

	defer SetParallel(SetParallel(false))
	refPos, refStats := embedRun(t, g, p, opt)

	for _, workers := range []int{1, 2, 8} {
		SetParallel(true)
		prev := hostpar.SetWorkers(workers)
		pos, stats := embedRun(t, g, p, opt)
		hostpar.SetWorkers(prev)
		for i := range refPos {
			if pos[i] != refPos[i] {
				t.Fatalf("workers=%d: vertex %d position %v, legacy %v", workers, i, pos[i], refPos[i])
			}
		}
		for r := range refStats {
			a, b := stats[r], refStats[r]
			if a.Time != b.Time || a.CommTime != b.CommTime ||
				a.Messages != b.Messages || a.BytesSent != b.BytesSent {
				t.Fatalf("workers=%d rank %d: stats %+v, legacy %+v", workers, r, a, b)
			}
		}
	}
}

// TestSequentialLayoutWorkerBitIdentical pins the sequential
// Barnes–Hut baseline: the hostpar force pass with any worker count
// must reproduce the legacy serial layout exactly (per-vertex forces
// from a read-only tree, energy reduced serially in vertex order).
func TestSequentialLayoutWorkerBitIdentical(t *testing.T) {
	g := gen.Grid2D(24, 24)
	opt := SeqOptions{Seed: 5, IterCoarsest: 40, IterSmooth: 10}

	defer SetParallel(SetParallel(false))
	ref := SequentialLayout(g.G, opt)

	for _, workers := range []int{1, 8} {
		SetParallel(true)
		prev := hostpar.SetWorkers(workers)
		got := SequentialLayout(g.G, opt)
		hostpar.SetWorkers(prev)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("workers=%d: vertex %d at %v, legacy %v", workers, v, got[v], ref[v])
			}
		}
	}
}

// TestSmoothSteadyStateAllocsWorkers re-runs the steady-state
// allocation guard with the hostpar kernels on and 8 workers: pooled
// jobs and pre-bound chunk bodies must keep the smoothing loop at the
// PR 2 allocation level even when every pass is submitted to the pool.
func TestSmoothSteadyStateAllocsWorkers(t *testing.T) {
	const (
		p      = 4
		bs     = 4
		blocks = 20
	)
	defer hostpar.SetWorkers(hostpar.SetWorkers(8))
	g := gen.Grid2D(48, 48)
	var perBlock float64
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		st := benchLevelState(c, g, 7)
		st.Smooth(4*bs, bs) // warm scratch buffers, pools, and workers
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		c.Barrier()
		st.Smooth(blocks*bs, bs)
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perBlock = float64(m1.Mallocs-m0.Mallocs) / blocks
		}
		c.Barrier()
	})
	if perBlock > 130 {
		t.Errorf("steady-state Smooth with 8 workers: %.1f mallocs per block (world-wide), want well under 130", perBlock)
	}
	t.Logf("steady-state Smooth with 8 workers: %.1f mallocs per block across %d ranks", perBlock, p)
}

// benchWorkerSweep runs fn once per worker setting, restoring the
// previous setting afterwards.
func benchWorkerSweep(b *testing.B, fn func(b *testing.B)) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 8: "workers=8"}[workers], func(b *testing.B) {
			defer hostpar.SetWorkers(hostpar.SetWorkers(workers))
			fn(b)
		})
	}
}

// BenchmarkIterate measures one force iteration of the fixed-lattice
// scheme (rank aggregates, inherited far field, Barnes–Hut near field,
// attraction, displacement) at P=4, swept over host worker counts.
func BenchmarkIterate(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B) {
		const p = 4
		g := gen.Grid2D(64, 64)
		b.ReportAllocs()
		mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
			st := benchLevelState(c, g, 7)
			st.Smooth(4, 4) // warm scratch, pools, and ghost state
			c.Barrier()
			if c.Rank() == 0 {
				b.ResetTimer()
			}
			c.Barrier()
			for i := 0; i < b.N; i++ {
				st.iterate()
			}
			c.Barrier()
			if c.Rank() == 0 {
				b.StopTimer()
			}
		})
	})
}

// BenchmarkSmoothWorkers is BenchmarkSmooth swept over worker counts:
// two full staleness blocks per op, including the block-boundary
// collectives.
func BenchmarkSmoothWorkers(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B) {
		const (
			p  = 4
			bs = 4
		)
		g := gen.Grid2D(64, 64)
		b.ReportAllocs()
		mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
			st := benchLevelState(c, g, 7)
			st.Smooth(2*bs, bs)
			c.Barrier()
			if c.Rank() == 0 {
				b.ResetTimer()
			}
			c.Barrier()
			for i := 0; i < b.N; i++ {
				st.Smooth(2*bs, bs)
			}
			c.Barrier()
			if c.Rank() == 0 {
				b.StopTimer()
			}
		})
	})
}

// BenchmarkParallelEmbed measures the full multilevel embedding
// (hierarchy reuse, per-level smoothing, projection, routing) at P=4,
// swept over host worker counts.
func BenchmarkParallelEmbed(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B) {
		const p = 4
		g := gen.Grid2D(48, 48)
		h := buildBenchHierarchy(g, p)
		opt := ParallelOptions{Seed: 7, IterCoarsest: 60, IterSmooth: 10}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
				ParallelEmbed(c, h, opt)
			})
		}
	})
}
