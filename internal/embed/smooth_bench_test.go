package embed

import (
	"testing"

	"repro/internal/coarsen"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// benchLevelState builds a live levelState for steady-state smoothing
// benchmarks: the whole graph is embedded on c's ranks through the
// coarsest-level initialisation path (random coordinates, locally
// computable ghost owners).
func benchLevelState(c *mpi.Comm, g *gen.Generated, seed int64) *levelState {
	lev := &coarsen.Level{G: g.G, Ranks: c.Size()}
	opt := ParallelOptions{Seed: seed}.withDefaults()
	return initCoarsest(c, lev, opt)
}

// buildBenchHierarchy builds the multilevel hierarchy once so
// whole-embedding benchmarks measure embedding, not coarsening.
func buildBenchHierarchy(g *gen.Generated, p int) *coarsen.Hierarchy {
	return coarsen.BuildHierarchy(g.G, p, coarsen.Options{CoarsestSize: 200, Seed: 1})
}

// BenchmarkSmooth measures the steady-state smoothing hot loop: each op
// is two full staleness blocks (2·blockSize iterations), covering the
// block-boundary ghost push + beta gather + energy reduction and the
// within-block coalesced neighbour exchanges. Allocation counts here
// are the regression target for the pooled communication fast paths.
func BenchmarkSmooth(b *testing.B) {
	const (
		p  = 4
		bs = 4
	)
	g := gen.Grid2D(64, 64)
	b.ReportAllocs()
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		st := benchLevelState(c, g, 7)
		st.Smooth(2*bs, bs) // warm up pools and scratch buffers
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			st.Smooth(2*bs, bs)
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
}
