package embed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
	"repro/internal/mpi"
)

func testLattice(rows, cols int, seed int64) *Lattice {
	rng := rand.New(rand.NewSource(seed))
	sample := make([]geometry.Vec2, 500)
	for i := range sample {
		sample[i] = geometry.Vec2{X: rng.Float64() * 10, Y: rng.Float64() * 6}
	}
	return NewLattice(mpi.Grid{Rows: rows, Cols: cols}, sample, geometry.Rect{X0: 0, Y0: 0, X1: 10, Y1: 6})
}

func TestLatticeCutsMonotone(t *testing.T) {
	l := testLattice(3, 4, 1)
	for i := 1; i < len(l.XCuts); i++ {
		if l.XCuts[i] <= l.XCuts[i-1] {
			t.Fatalf("XCuts not strictly increasing: %v", l.XCuts)
		}
	}
	for i := 1; i < len(l.YCuts); i++ {
		if l.YCuts[i] <= l.YCuts[i-1] {
			t.Fatalf("YCuts not strictly increasing: %v", l.YCuts)
		}
	}
	if len(l.XCuts) != 5 || len(l.YCuts) != 4 {
		t.Fatalf("cut counts %d/%d", len(l.XCuts), len(l.YCuts))
	}
}

func TestLatticeDegenerateSample(t *testing.T) {
	// All sample points identical: uniform fallback plus epsilon
	// separation must still give positive-width boxes.
	same := make([]geometry.Vec2, 50)
	for i := range same {
		same[i] = geometry.Vec2{X: 5, Y: 3}
	}
	l := NewLattice(mpi.Grid{Rows: 2, Cols: 2}, same, geometry.Rect{X0: 0, Y0: 0, X1: 10, Y1: 6})
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			box := l.BoxRect(r, c)
			if box.Width() <= 0 || box.Height() <= 0 {
				t.Fatalf("box (%d,%d) degenerate: %+v", r, c, box)
			}
		}
	}
}

// TestBoxOfRankOfConsistent: a point inside box (r,c) must map to the
// rank at (r,c), and BoxRect must contain it (after clamping).
func TestBoxOfRankOfConsistent(t *testing.T) {
	l := testLattice(3, 3, 2)
	f := func(xr, yr float64) bool {
		p := geometry.Vec2{X: mod(xr, 10), Y: mod(yr, 6)}
		r, c := l.BoxOf(p)
		if r < 0 || r >= 3 || c < 0 || c >= 3 {
			return false
		}
		if l.RankOf(p) != l.Grid.RankAt(r, c) {
			return false
		}
		box := l.BoxRect(r, c)
		return box.Contains(box.Clamp(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mod(x, m float64) float64 {
	v := x - float64(int(x/m))*m
	if v < 0 {
		v += m
	}
	return v
}

// TestClampToNeighborhood: the result must always lie in the home box
// or one of its 4-neighbours, and points already there are unchanged.
func TestClampToNeighborhood(t *testing.T) {
	l := testLattice(4, 4, 3)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		hr, hc := rng.Intn(4), rng.Intn(4)
		p := geometry.Vec2{X: rng.Float64()*14 - 2, Y: rng.Float64()*10 - 2}
		q := l.ClampToNeighborhood(p, hr, hc)
		r, c := l.BoxOf(q)
		dr, dc := r-hr, c-hc
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr+dc > 1 {
			t.Fatalf("clamped point in box (%d,%d), home (%d,%d)", r, c, hr, hc)
		}
		// Idempotence: clamping again changes nothing.
		if q2 := l.ClampToNeighborhood(q, hr, hc); q2.Dist(q) > 1e-12 {
			t.Fatalf("clamp not idempotent: %v -> %v", q, q2)
		}
	}
}

func TestStepControllerAdapts(t *testing.T) {
	s := NewStepController(1.0)
	// A baseline plus five consecutive improvements grow the step.
	for e := 10.0; e > 4; e-- {
		s.Update(e)
	}
	if s.Step <= 1.0 {
		t.Fatalf("step %v after sustained improvement, want growth", s.Step)
	}
	grown := s.Step
	// A regression shrinks it.
	s.Update(100)
	if s.Step >= grown {
		t.Fatalf("step %v after regression, want shrink from %v", s.Step, grown)
	}
}

func TestForceModel(t *testing.T) {
	fp := DefaultForceParams()
	// Attraction points toward the neighbour and grows ~quadratically.
	a1 := fp.Attractive(geometry.Vec2{}, geometry.Vec2{X: 1})
	a2 := fp.Attractive(geometry.Vec2{}, geometry.Vec2{X: 2})
	if a1.X <= 0 || a2.X/a1.X < 3.9 || a2.X/a1.X > 4.1 {
		t.Fatalf("attraction scaling wrong: %v %v", a1, a2)
	}
	// Repulsion points away and decays ~1/d.
	r1 := fp.Repulsive(geometry.Vec2{}, geometry.Vec2{X: 1}, 1)
	r2 := fp.Repulsive(geometry.Vec2{}, geometry.Vec2{X: 2}, 1)
	if r1.X >= 0 || r2.X/r1.X < 0.45 || r2.X/r1.X > 0.55 {
		t.Fatalf("repulsion scaling wrong: %v %v", r1, r2)
	}
	// Coincident points must not produce NaN/Inf.
	if f := fp.Repulsive(geometry.Vec2{X: 1, Y: 1}, geometry.Vec2{X: 1, Y: 1}, 1); f.Norm() != f.Norm() {
		t.Fatal("NaN repulsion at zero distance")
	}
}

func TestSubCellGeometry(t *testing.T) {
	if boxSubCells != 4 {
		t.Skip("test assumes 4x4 sub-cells")
	}
	// cbrt sanity.
	if v := cbrt(8); v < 1.99 || v > 2.01 {
		t.Fatalf("cbrt(8) = %v", v)
	}
	if v := cbrt(0); v != 1 {
		t.Fatalf("cbrt(0) = %v, want fallback 1", v)
	}
}
