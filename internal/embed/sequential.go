package embed

import (
	"math"
	"math/rand"

	"repro/internal/coarsen"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/hostpar"
	"repro/internal/quadtree"
)

// SeqOptions configures the sequential multilevel force-directed
// layout.
type SeqOptions struct {
	Force        ForceParams
	Theta        float64 // Barnes–Hut opening criterion, default 0.85
	IterCoarsest int     // iterations at the coarsest level, default 200
	IterSmooth   int     // iterations at finer levels, default 50
	CoarsestSize int     // stop coarsening at this size, default 400
	Seed         int64
}

func (o SeqOptions) withDefaults() SeqOptions {
	if o.Force == (ForceParams{}) {
		o.Force = DefaultForceParams()
	}
	if o.Theta == 0 {
		o.Theta = 0.85
	}
	if o.IterCoarsest == 0 {
		o.IterCoarsest = 200
	}
	if o.IterSmooth == 0 {
		o.IterSmooth = 50
	}
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 400
	}
	return o
}

// SequentialLayout embeds g in the plane with the multilevel
// force-directed scheme of Hu (2006): coarsen with heavy-edge matching,
// lay out the coarsest graph from random positions, then repeatedly
// interpolate to the next finer level and smooth with Barnes–Hut
// approximated forces. It is the stand-in for the Mathematica embedder
// the paper uses to give coordinates to RCB and the sequential
// geometric partitioners.
func SequentialLayout(g *graph.Graph, opt SeqOptions) []geometry.Vec2 {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	h := coarsen.BuildHierarchy(g, 1, coarsen.Options{
		CoarsestSize:  opt.CoarsestSize,
		StepsPerLevel: 1,
		Seed:          opt.Seed,
	})
	levels := h.Levels
	coarsest := levels[len(levels)-1].G
	// Random initial positions in a box sized for ~K spacing.
	side := opt.Force.K * math.Sqrt(float64(coarsest.NumVertices()))
	pos := make([]geometry.Vec2, coarsest.NumVertices())
	for i := range pos {
		pos[i] = geometry.Vec2{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	smoothLevel(coarsest, pos, opt, opt.IterCoarsest)
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		finePos := make([]geometry.Vec2, fine.G.NumVertices())
		for v := range finePos {
			cv := fine.ToCoarse[v]
			// Interpolate: coarse position scaled ×2 plus jitter.
			j := geometry.Vec2{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5}.Scale(0.5 * opt.Force.K)
			finePos[v] = pos[cv].Scale(2).Add(j)
		}
		pos = finePos
		smoothLevel(fine.G, pos, opt, opt.IterSmooth)
	}
	return pos
}

// smoothLevel runs force iterations with Barnes–Hut repulsion. With the
// host-parallel kernels enabled the force pass runs chunked on the
// hostpar pool (the tree traversal is read-only and forces[v] is
// written by exactly one chunk) and the energy is reduced serially in
// vertex order from the stored forces — the identical float sum the
// legacy interleaved loop produces — so positions are bit-identical for
// every worker count.
func smoothLevel(g *graph.Graph, pos []geometry.Vec2, opt SeqOptions, iters int) {
	n := g.NumVertices()
	if n <= 1 {
		return
	}
	mass := make([]float64, n)
	for v := 0; v < n; v++ {
		mass[v] = float64(g.VertexWeight(int32(v)))
	}
	ctl := NewStepController(opt.Force.K)
	fp := opt.Force
	forces := make([]geometry.Vec2, n)
	if !parallelOn.Load() {
		cur := graph.GetCursor(g)
		defer cur.Release()
		for it := 0; it < iters; it++ {
			tree := quadtree.Build(pos, mass)
			energy := 0.0
			for v := 0; v < n; v++ {
				var f geometry.Vec2
				p := pos[v]
				tree.ForEachCluster(p, int32(v), opt.Theta, func(com geometry.Vec2, m float64, _ int32) {
					f = f.Add(fp.Repulsive(p, com, m).Scale(mass[v]))
				})
				nbrs, wgts := cur.Arcs(int32(v))
				for k, w := range nbrs {
					f = f.Add(fp.Attractive(p, pos[w]).Scale(float64(wgts[k])))
				}
				forces[v] = f
				energy += f.Dot(f)
			}
			for v := 0; v < n; v++ {
				norm := forces[v].Norm()
				if norm < 1e-12 {
					continue
				}
				pos[v] = pos[v].Add(forces[v].Scale(ctl.Step / norm))
			}
			ctl.Update(energy)
			if ctl.Step < 1e-3*fp.K {
				break
			}
		}
		return
	}
	// Hostpar path: one tree arena reused across iterations, chunk
	// bodies hoisted out of the loop so steady state allocates nothing.
	var tree quadtree.Tree
	forceBody := func(_, lo, hi int) {
		cur := graph.GetCursor(g)
		defer cur.Release()
		for v := lo; v < hi; v++ {
			var f geometry.Vec2
			p := pos[v]
			tree.ForEachCluster(p, int32(v), opt.Theta, func(com geometry.Vec2, m float64, _ int32) {
				f = f.Add(fp.Repulsive(p, com, m).Scale(mass[v]))
			})
			nbrs, wgts := cur.Arcs(int32(v))
			for k, w := range nbrs {
				f = f.Add(fp.Attractive(p, pos[w]).Scale(float64(wgts[k])))
			}
			forces[v] = f
		}
	}
	updateBody := func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			norm := forces[v].Norm()
			if norm < 1e-12 {
				continue
			}
			pos[v] = pos[v].Add(forces[v].Scale(ctl.Step / norm))
		}
	}
	for it := 0; it < iters; it++ {
		tree.Rebuild(pos, mass)
		hostpar.ForChunked(n, grainForce, forceBody)
		energy := 0.0
		for v := 0; v < n; v++ {
			energy += forces[v].Dot(forces[v])
		}
		hostpar.ForChunked(n, grainCopy, updateBody)
		ctl.Update(energy)
		if ctl.Step < 1e-3*fp.K {
			break
		}
	}
}
