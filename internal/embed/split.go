package embed

import (
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// SplitCoords precomputes per-rank Distributed views of already-known
// vertex coordinates over a quantile lattice for p ranks. It serves the
// partition-only entry points (Figure 4, dynamic repartitioning):
// coordinates are assumed to already live on their owners, so the split
// is performed outside any timed region.
func SplitCoords(g *graph.Graph, coords []geometry.Vec2, p int) []*Distributed {
	n := g.NumVertices()
	if len(coords) != n {
		panic("embed: SplitCoords coordinate count mismatch")
	}
	grid := mpi.GridFor(p)
	bounds := geometry.BoundingRect(coords).Expand(1e-9)
	// Sample for quantile cuts: every k-th point, about 8192 of them.
	stride := n/8192 + 1
	sample := make([]geometry.Vec2, 0, n/stride+1)
	for i := 0; i < n; i += stride {
		sample = append(sample, coords[i])
	}
	lat := NewLattice(grid, sample, bounds)

	owner := make([]int32, n)
	ownedIDs := make([][]int32, p)
	for v := 0; v < n; v++ {
		r := int32(lat.RankOf(coords[v]))
		owner[v] = r
		ownedIDs[r] = append(ownedIDs[r], int32(v))
	}
	cur := graph.GetCursor(g)
	defer cur.Release()
	views := make([]*Distributed, p)
	for r := 0; r < p; r++ {
		d := &Distributed{
			Lat:       lat,
			OwnedIDs:  ownedIDs[r],
			OwnedPos:  make([]geometry.Vec2, len(ownedIDs[r])),
			ghostSlot: make(map[int32]int32),
			localSlot: make(map[int32]int32, len(ownedIDs[r])),
		}
		for i, id := range d.OwnedIDs {
			d.OwnedPos[i] = coords[id]
			d.localSlot[id] = int32(i)
		}
		for _, id := range d.OwnedIDs {
			nbrs, _ := cur.Arcs(id)
			for _, nb := range nbrs {
				if owner[nb] == int32(r) {
					continue
				}
				if _, ok := d.ghostSlot[nb]; ok {
					continue
				}
				d.ghostSlot[nb] = int32(len(d.GhostIDs))
				d.GhostIDs = append(d.GhostIDs, nb)
				d.GhostPos = append(d.GhostPos, coords[nb])
			}
		}
		views[r] = d
	}
	return views
}
