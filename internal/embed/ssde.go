package embed

import (
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// SSDEOptions configures the sampled spectral distance embedding.
type SSDEOptions struct {
	Landmarks  int // BFS sources, default 30
	PowerIters int // power-iteration steps per eigenvector, default 60
	Seed       int64
}

func (o SSDEOptions) withDefaults() SSDEOptions {
	if o.Landmarks == 0 {
		o.Landmarks = 30
	}
	if o.PowerIters == 0 {
		o.PowerIters = 60
	}
	return o
}

// SSDELayout embeds g with Sampled Spectral Distance Embedding (Çivril,
// Magdon-Ismail & Bocek-Rivele, GD'06) — the scheme the paper's
// Section 5 proposes combining with ScalaPart to cut embedding time.
// BFS distances to a few landmark vertices form a sampled distance
// matrix; classical MDS on the double-centered squared distances
// (via power iteration on the n×k landmark matrix) yields the top two
// spectral coordinates.
//
// Compared with the force-directed embedding it is non-iterative in the
// graph size (a handful of BFS sweeps plus O(n·k) linear algebra) at
// some cost in local untangling — exactly the trade-off the
// SSDE-vs-lattice ablation measures.
func SSDELayout(g *graph.Graph, opt SSDEOptions) []geometry.Vec2 {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	k := opt.Landmarks
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Landmark selection: maxmin ("farthest-first") from a random
	// start, which spreads landmarks across the graph's diameter.
	landmarks := make([]int32, 0, k)
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = math.MaxInt32
	}
	cur := int32(rng.Intn(n))
	dist := make([][]int32, 0, k)
	for len(landmarks) < k {
		landmarks = append(landmarks, cur)
		d := bfs(g, cur)
		dist = append(dist, d)
		next, far := cur, int32(-1)
		for v := 0; v < n; v++ {
			if d[v] < minDist[v] {
				minDist[v] = d[v]
			}
			if minDist[v] > far && minDist[v] != math.MaxInt32 {
				far, next = minDist[v], int32(v)
			}
		}
		if next == cur {
			break // graph exhausted (small or disconnected remainder)
		}
		cur = next
	}
	k = len(landmarks)
	// C is the n×k matrix of double-centered -d²/2 entries
	// (classical MDS on the sampled columns).
	c := make([][]float64, n)
	colMean := make([]float64, k)
	rowMean := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		c[v] = make([]float64, k)
		for j := 0; j < k; j++ {
			d := float64(dist[j][v])
			if dist[j][v] == math.MaxInt32 {
				d = float64(n) // disconnected: park far away
			}
			val := -0.5 * d * d
			c[v][j] = val
			colMean[j] += val
			rowMean[v] += val
			total += val
		}
	}
	for j := range colMean {
		colMean[j] /= float64(n)
	}
	for v := range rowMean {
		rowMean[v] /= float64(k)
	}
	total /= float64(n * k)
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			c[v][j] += total - colMean[j] - rowMean[v]
		}
	}
	// Top-2 left singular vectors of C via power iteration on C·Cᵀ
	// (applied as C·(Cᵀ·x), never forming the n×n product). Each axis
	// is scaled by its singular value so the embedding keeps the true
	// aspect ratio.
	u1, s1 := powerIterate(c, nil, opt.PowerIters, rng)
	u2, s2 := powerIterate(c, u1, opt.PowerIters, rng)
	coords := make([]geometry.Vec2, n)
	for v := 0; v < n; v++ {
		coords[v] = geometry.Vec2{X: u1[v] * s1, Y: u2[v] * s2}
	}
	return coords
}

// bfs returns hop distances from src (MaxInt32 where unreachable).
func bfs(g *graph.Graph, src int32) []int32 {
	n := g.NumVertices()
	d := make([]int32, n)
	for i := range d {
		d[i] = math.MaxInt32
	}
	cur := graph.GetCursor(g)
	defer cur.Release()
	d[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nbrs, _ := cur.Arcs(v)
		for _, nb := range nbrs {
			if d[nb] == math.MaxInt32 {
				d[nb] = d[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return d
}

// powerIterate finds the dominant left singular vector of c (n×k) and
// its singular value, deflating against `against` when non-nil.
func powerIterate(c [][]float64, against []float64, iters int, rng *rand.Rand) ([]float64, float64) {
	n, k := len(c), len(c[0])
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	tmp := make([]float64, k)
	for it := 0; it < iters; it++ {
		if against != nil {
			dot := 0.0
			for i := range x {
				dot += x[i] * against[i]
			}
			for i := range x {
				x[i] -= dot * against[i]
			}
		}
		// tmp = Cᵀ x
		for j := 0; j < k; j++ {
			tmp[j] = 0
		}
		for i := 0; i < n; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := c[i]
			for j := 0; j < k; j++ {
				tmp[j] += row[j] * xi
			}
		}
		// x = C tmp, normalised
		norm := 0.0
		for i := 0; i < n; i++ {
			row := c[i]
			s := 0.0
			for j := 0; j < k; j++ {
				s += row[j] * tmp[j]
			}
			x[i] = s
			norm += s * s
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			// Degenerate direction; restart randomly.
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			continue
		}
		for i := range x {
			x[i] /= norm
		}
	}
	// Singular value of the converged direction: sigma = |Cᵀ·x|.
	for j := 0; j < k; j++ {
		tmp[j] = 0
	}
	for i := 0; i < n; i++ {
		row := c[i]
		for j := 0; j < k; j++ {
			tmp[j] += row[j] * x[i]
		}
	}
	sigma := 0.0
	for j := 0; j < k; j++ {
		sigma += tmp[j] * tmp[j]
	}
	return x, math.Sqrt(sigma)
}
