package embed

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
	"strconv"

	"repro/internal/coarsen"
	"repro/internal/geometry"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// ParallelOptions configures the multilevel fixed-lattice parallel
// embedding.
type ParallelOptions struct {
	Force        ForceParams
	BlockSize    int // iterations between global refreshes (paper: 2–8), default 4
	IterCoarsest int // default 200
	IterSmooth   int // per finer level, default 30
	Seed         int64
}

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Force == (ForceParams{}) {
		o.Force = DefaultForceParams()
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.IterCoarsest == 0 {
		o.IterCoarsest = 200
	}
	if o.IterSmooth == 0 {
		o.IterSmooth = 30
	}
	return o
}

// idPos is a routed vertex: id plus current coordinate.
type idPos struct {
	ID int32
	P  geometry.Vec2
}

// ParallelEmbed runs the paper's multilevel fixed-lattice embedding
// over the hierarchy h (which must have been built for c.Size() ranks):
// the coarsest graph is embedded from random coordinates on its few
// active ranks, then each finer level inherits scaled, jittered
// coordinates, is re-distributed onto a quadrupled processor grid via
// the quantile lattice, and smoothed with the fixed-lattice scheme.
// Every rank of c must call it; the return value is this rank's
// distributed share of the finest-level embedding.
func ParallelEmbed(c *mpi.Comm, h *coarsen.Hierarchy, opt ParallelOptions) *Distributed {
	opt = opt.withDefaults()
	last := len(h.Levels) - 1
	var st *levelState
	for li := last; li >= 0; li-- {
		lev := &h.Levels[li]
		sub := c.SubComm(lev.Ranks)
		if sub == nil {
			continue // this rank is not active yet
		}
		sub.SetPhase("embed/L" + strconv.Itoa(li))
		if li == last {
			st = initCoarsest(sub, lev, opt)
			st.Smooth(opt.IterCoarsest, opt.BlockSize)
			continue
		}
		st = projectLevel(sub, h, li, st, opt)
		st.Smooth(opt.IterSmooth, opt.BlockSize)
	}
	if st == nil {
		// This rank never activated: the hierarchy folded the embedding
		// onto fewer ranks than the world holds (small graph, large P).
		// It owns nothing but still participates in later full-world
		// collectives.
		return &Distributed{
			ghostSlot: map[int32]int32{},
			localSlot: map[int32]int32{},
		}
	}
	return st.finish()
}

// initCoarsest assigns deterministic random coordinates to the coarsest
// graph and sets up its lattice. Every active rank streams the same
// seeded coordinate sequence, so box ownership and ghost owners are
// locally computable; the modeled cost charges the generation and one
// synchronising broadcast.
//
// The coordinates are never materialised as a full []Vec2: each pass
// regenerates the sequence from the seed and keeps only what it needs
// (per-axis samples for the lattice cuts, then this rank's owned
// points). That bounds the per-rank footprint by the owned share
// instead of n, while drawing the RNG in exactly the original X-then-Y
// order, so lattices, ownership, and clocks stay bit-identical.
func initCoarsest(sub *mpi.Comm, lev *coarsen.Level, opt ParallelOptions) *levelState {
	g := lev.G
	n := g.NumVertices()
	seed := opt.Seed<<8 + 101
	side := opt.Force.K * math.Sqrt(float64(n))
	// Pass 1: per-axis samples for the quantile cuts.
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * side
		ys[i] = rng.Float64() * side
	}
	bounds := geometry.Rect{X0: 0, Y0: 0, X1: side, Y1: side}
	grid := mpi.GridFor(sub.Size())
	lat := NewLatticeFromAxes(grid, xs, ys, bounds)
	// Pass 2: regenerate the sequence, keeping only owned points.
	rng = rand.New(rand.NewSource(seed))
	ownedIDs := make([]int32, 0, n/sub.Size()+16)
	pos := make([]geometry.Vec2, 0, n/sub.Size()+16)
	for i := 0; i < n; i++ {
		x := rng.Float64() * side
		y := rng.Float64() * side
		p := geometry.Vec2{X: x, Y: y}
		if lat.RankOf(p) == sub.Rank() {
			ownedIDs = append(ownedIDs, int32(i))
			pos = append(pos, p)
		}
	}
	// Ghost owners stream the sequence once more at subscription time,
	// picking out just the requested ids.
	ownerOf := func(ids []int32) []int {
		slot := make(map[int32]int, len(ids))
		for i, id := range ids {
			slot[id] = i
		}
		out := make([]int, len(ids))
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			x := r.Float64() * side
			y := r.Float64() * side
			if j, ok := slot[int32(i)]; ok {
				out[j] = lat.RankOf(geometry.Vec2{X: x, Y: y})
			}
		}
		return out
	}
	sub.Charge(float64(n))
	sub.Bcast(0, nil, 16*n)
	return newLevelState(sub, lat, g, ownedIDs, pos, ownerOf, opt.Force)
}

// projectLevel carries the embedding from level li+1 down to level li:
// coordinates are scaled ×2, fine vertices are jittered around their
// coarse parent, the lattice is rebuilt for the quadrupled grid from a
// coordinate sample, vertices are routed to their new owners, and ghost
// owners are resolved through a distributed directory.
func projectLevel(sub *mpi.Comm, h *coarsen.Hierarchy, li int, coarse *levelState, opt ParallelOptions) *levelState {
	fineLev := &h.Levels[li]
	g := fineLev.G
	jrng := rand.New(rand.NewSource(opt.Seed<<8 + int64(li)*1009 + int64(sub.Rank())))
	var created []idPos
	if coarse != nil {
		nKids := 0
		for _, cid := range coarse.ownedIDs {
			nKids += len(fineLev.ChildrenOf(cid))
		}
		if !parallelOn.Load() {
			created = make([]idPos, 0, nKids)
			for ci, cid := range coarse.ownedIDs {
				q := coarse.pos[ci].Scale(2)
				for _, v := range fineLev.ChildrenOf(cid) {
					j := geometry.Vec2{
						X: jrng.Float64() - 0.5,
						Y: jrng.Float64() - 0.5,
					}.Scale(0.5 * opt.Force.K)
					created = append(created, idPos{ID: v, P: q.Add(j)})
				}
			}
		} else {
			// Jitter draws must stay a single serial RNG stream; the
			// inheritance arithmetic is element-wise, so draw all jitters
			// in the original child order first, then fill the routed
			// records in parallel via per-parent prefix offsets. Same
			// draws, same expressions — bit-identical coordinates.
			offs := make([]int, len(coarse.ownedIDs)+1)
			for ci, cid := range coarse.ownedIDs {
				offs[ci+1] = offs[ci] + len(fineLev.ChildrenOf(cid))
			}
			jit := make([]geometry.Vec2, nKids)
			for k := range jit {
				jit[k] = geometry.Vec2{
					X: jrng.Float64() - 0.5,
					Y: jrng.Float64() - 0.5,
				}.Scale(0.5 * opt.Force.K)
			}
			created = make([]idPos, nKids)
			hostpar.ForChunked(len(coarse.ownedIDs), 16, func(_, clo, chi int) {
				for ci := clo; ci < chi; ci++ {
					q := coarse.pos[ci].Scale(2)
					k := offs[ci]
					for _, v := range fineLev.ChildrenOf(coarse.ownedIDs[ci]) {
						created[k] = idPos{ID: v, P: q.Add(jit[k])}
						k++
					}
				}
			})
		}
		coarse.comm.Charge(float64(len(created)) * 4)
	}
	// Global bounds of the projected coordinates. min/max is associative
	// and commutative, so chunked partial scans merged in chunk order
	// give exactly the serial result.
	lo := geometry.Vec2{X: math.Inf(1), Y: math.Inf(1)}
	hi := geometry.Vec2{X: math.Inf(-1), Y: math.Inf(-1)}
	if !parallelOn.Load() || len(created) == 0 {
		for _, ip := range created {
			lo.X = math.Min(lo.X, ip.P.X)
			lo.Y = math.Min(lo.Y, ip.P.Y)
			hi.X = math.Max(hi.X, ip.P.X)
			hi.Y = math.Max(hi.Y, ip.P.Y)
		}
	} else {
		chunks := hostpar.NumChunks(len(created), 1024)
		pLo := make([]geometry.Vec2, chunks)
		pHi := make([]geometry.Vec2, chunks)
		hostpar.ForN(len(created), chunks, func(c, clo, chi int) {
			l := geometry.Vec2{X: math.Inf(1), Y: math.Inf(1)}
			h := geometry.Vec2{X: math.Inf(-1), Y: math.Inf(-1)}
			for _, ip := range created[clo:chi] {
				l.X = math.Min(l.X, ip.P.X)
				l.Y = math.Min(l.Y, ip.P.Y)
				h.X = math.Max(h.X, ip.P.X)
				h.Y = math.Max(h.Y, ip.P.Y)
			}
			pLo[c], pHi[c] = l, h
		})
		for c := 0; c < chunks; c++ {
			lo.X = math.Min(lo.X, pLo[c].X)
			lo.Y = math.Min(lo.Y, pLo[c].Y)
			hi.X = math.Max(hi.X, pHi[c].X)
			hi.Y = math.Max(hi.Y, pHi[c].Y)
		}
	}
	lo = mpi.AllReduce(sub, lo, 16, func(a, b geometry.Vec2) geometry.Vec2 {
		return geometry.Vec2{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)}
	})
	hi = mpi.AllReduce(sub, hi, 16, func(a, b geometry.Vec2) geometry.Vec2 {
		return geometry.Vec2{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)}
	})
	bounds := geometry.Rect{X0: lo.X, Y0: lo.Y, X1: hi.X, Y1: hi.Y}.Expand(0.5 * opt.Force.K)
	// Quantile lattice from a gathered sample.
	grid := mpi.GridFor(sub.Size())
	per := 4096/sub.Size() + 1
	var mySample []geometry.Vec2
	if len(created) > 0 {
		stride := len(created)/per + 1
		mySample = make([]geometry.Vec2, 0, len(created)/stride+1)
		for i := 0; i < len(created); i += stride {
			mySample = append(mySample, created[i].P)
		}
	}
	sample := mpi.Concat(mpi.AllGatherV(sub, mySample, 16))
	lat := NewLattice(grid, sample, bounds)
	// Route vertices to their new owners: count first, then fill
	// exactly-sized per-destination buffers.
	counts := make([]int, sub.Size())
	dest := make([][]idPos, sub.Size())
	if !parallelOn.Load() {
		for _, ip := range created {
			counts[lat.RankOf(ip.P)]++
		}
		for r, cnt := range counts {
			if cnt > 0 {
				dest[r] = make([]idPos, 0, cnt)
			}
		}
		for _, ip := range created {
			r := lat.RankOf(ip.P)
			dest[r] = append(dest[r], ip)
		}
	} else {
		// RankOf is a pure per-point lookup (two binary searches), so
		// precompute it in parallel; the count and append passes stay
		// serial in point order, keeping each destination's record order
		// identical to the legacy fill.
		destRank := make([]int32, len(created))
		hostpar.ForChunked(len(created), 512, func(_, clo, chi int) {
			for i := clo; i < chi; i++ {
				destRank[i] = int32(lat.RankOf(created[i].P))
			}
		})
		for _, r := range destRank {
			counts[r]++
		}
		for r, cnt := range counts {
			if cnt > 0 {
				dest[r] = make([]idPos, 0, cnt)
			}
		}
		for i, ip := range created {
			dest[destRank[i]] = append(dest[destRank[i]], ip)
		}
	}
	recv := mpi.AllToAllV(sub, dest, 20)
	total := 0
	for _, part := range recv {
		total += len(part)
	}
	mine := make([]idPos, 0, total)
	for _, part := range recv {
		mine = append(mine, part...)
	}
	slices.SortFunc(mine, func(a, b idPos) int { return cmp.Compare(a.ID, b.ID) })
	ownedIDs := make([]int32, len(mine))
	pos := make([]geometry.Vec2, len(mine))
	for i, ip := range mine {
		ownedIDs[i] = ip.ID
		pos[i] = ip.P
	}
	// Distributed directory for ghost-owner resolution, memoised: the
	// ghost set of a level is fixed, so the coalesced exchange runs once
	// and later refreshes reuse the answer.
	var cachedIDs []int32
	var cachedOwners []int
	ownerOf := func(ids []int32) []int {
		if cachedOwners == nil || !slices.Equal(cachedIDs, ids) {
			cachedIDs = slices.Clone(ids)
			cachedOwners = resolveOwners(sub, ownedIDs, ids)
		}
		return cachedOwners
	}
	return newLevelState(sub, lat, g, ownedIDs, pos, ownerOf, opt.Force)
}

// resolveOwners resolves the owning rank of each ghost id through a
// hashed distributed directory (vertex v is tracked by rank v mod P),
// with registration and query coalesced into a single exchange: the
// message to directory rank d carries both the owned ids this rank
// registers at d and the ghost ids it needs d to resolve, framed as
// [nReg, nQuery, reg..., query...]. A second round returns the answers.
//
// The former protocol (register round, query round, answer round) sent
// each directory partner one message per payload kind; this one sends
// one message per partner each way, eliminating a full all-to-all round
// — so fault-free virtual clocks only decrease, and results are
// unchanged because the directory contents are identical.
func resolveOwners(c *mpi.Comm, owned, ghosts []int32) []int {
	p := c.Size()
	regs := make([][]int32, p)
	queries := make([][]int32, p)
	posOf := make([][]int, p)
	for _, id := range owned {
		d := int(id) % p
		regs[d] = append(regs[d], id)
	}
	for i, id := range ghosts {
		d := int(id) % p
		queries[d] = append(queries[d], id)
		posOf[d] = append(posOf[d], i)
	}
	dest := make([][]int32, p)
	for d := 0; d < p; d++ {
		if len(regs[d]) == 0 && len(queries[d]) == 0 {
			continue
		}
		msg := make([]int32, 0, 2+len(regs[d])+len(queries[d]))
		msg = append(msg, int32(len(regs[d])), int32(len(queries[d])))
		msg = append(msg, regs[d]...)
		msg = append(msg, queries[d]...)
		dest[d] = msg
	}
	got := mpi.AllToAllV(c, dest, 4)
	// Register every owned id first, then answer the queries: a query
	// must see registrations from all ranks, not just earlier sources.
	dir := make(map[int32]int32)
	for src, msg := range got {
		if len(msg) == 0 {
			continue
		}
		for _, id := range msg[2 : 2+int(msg[0])] {
			dir[id] = int32(src)
		}
	}
	answers := make([][]int32, p)
	for src, msg := range got {
		if len(msg) == 0 || msg[1] == 0 {
			continue
		}
		qs := msg[2+int(msg[0]):]
		ans := make([]int32, len(qs))
		for i, id := range qs {
			owner, ok := dir[id]
			if !ok {
				panic("embed: directory miss")
			}
			ans[i] = owner
		}
		answers[src] = ans
	}
	replies := mpi.AllToAllV(c, answers, 4)
	out := make([]int, len(ghosts))
	for d, reply := range replies {
		for i, owner := range reply {
			out[posOf[d][i]] = int(owner)
		}
	}
	return out
}
