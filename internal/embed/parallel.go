package embed

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/coarsen"
	"repro/internal/geometry"
	"repro/internal/mpi"
)

// ParallelOptions configures the multilevel fixed-lattice parallel
// embedding.
type ParallelOptions struct {
	Force        ForceParams
	BlockSize    int // iterations between global refreshes (paper: 2–8), default 4
	IterCoarsest int // default 200
	IterSmooth   int // per finer level, default 30
	Seed         int64
}

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Force == (ForceParams{}) {
		o.Force = DefaultForceParams()
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.IterCoarsest == 0 {
		o.IterCoarsest = 200
	}
	if o.IterSmooth == 0 {
		o.IterSmooth = 30
	}
	return o
}

// idPos is a routed vertex: id plus current coordinate.
type idPos struct {
	ID int32
	P  geometry.Vec2
}

// ParallelEmbed runs the paper's multilevel fixed-lattice embedding
// over the hierarchy h (which must have been built for c.Size() ranks):
// the coarsest graph is embedded from random coordinates on its few
// active ranks, then each finer level inherits scaled, jittered
// coordinates, is re-distributed onto a quadrupled processor grid via
// the quantile lattice, and smoothed with the fixed-lattice scheme.
// Every rank of c must call it; the return value is this rank's
// distributed share of the finest-level embedding.
func ParallelEmbed(c *mpi.Comm, h *coarsen.Hierarchy, opt ParallelOptions) *Distributed {
	opt = opt.withDefaults()
	last := len(h.Levels) - 1
	var st *levelState
	for li := last; li >= 0; li-- {
		lev := &h.Levels[li]
		sub := c.SubComm(lev.Ranks)
		if sub == nil {
			continue // this rank is not active yet
		}
		if li == last {
			st = initCoarsest(sub, lev, opt)
			st.Smooth(opt.IterCoarsest, opt.BlockSize)
			continue
		}
		st = projectLevel(sub, h, li, st, opt)
		st.Smooth(opt.IterSmooth, opt.BlockSize)
	}
	if st == nil {
		// This rank never activated: the hierarchy folded the embedding
		// onto fewer ranks than the world holds (small graph, large P).
		// It owns nothing but still participates in later full-world
		// collectives.
		return &Distributed{
			ghostSlot: map[int32]int32{},
			localSlot: map[int32]int32{},
		}
	}
	return st.finish()
}

// initCoarsest assigns deterministic random coordinates to the coarsest
// graph and sets up its lattice. Every active rank generates the full
// (small) coordinate array with the same seed, so box ownership and
// ghost owners are locally computable; the modeled cost charges the
// generation and one synchronising broadcast.
func initCoarsest(sub *mpi.Comm, lev *coarsen.Level, opt ParallelOptions) *levelState {
	g := lev.G
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(opt.Seed<<8 + 101))
	side := opt.Force.K * math.Sqrt(float64(n))
	all := make([]geometry.Vec2, n)
	for i := range all {
		all[i] = geometry.Vec2{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	bounds := geometry.Rect{X0: 0, Y0: 0, X1: side, Y1: side}
	grid := mpi.GridFor(sub.Size())
	lat := NewLattice(grid, all, bounds)
	var ownedIDs []int32
	var pos []geometry.Vec2
	for i, p := range all {
		if lat.RankOf(p) == sub.Rank() {
			ownedIDs = append(ownedIDs, int32(i))
			pos = append(pos, p)
		}
	}
	ownerOf := func(ids []int32) []int {
		out := make([]int, len(ids))
		for i, id := range ids {
			out[i] = lat.RankOf(all[id])
		}
		return out
	}
	sub.Charge(float64(n))
	sub.Bcast(0, nil, 16*n)
	return newLevelState(sub, lat, g, ownedIDs, pos, ownerOf, opt.Force)
}

// projectLevel carries the embedding from level li+1 down to level li:
// coordinates are scaled ×2, fine vertices are jittered around their
// coarse parent, the lattice is rebuilt for the quadrupled grid from a
// coordinate sample, vertices are routed to their new owners, and ghost
// owners are resolved through a distributed directory.
func projectLevel(sub *mpi.Comm, h *coarsen.Hierarchy, li int, coarse *levelState, opt ParallelOptions) *levelState {
	fineLev := &h.Levels[li]
	g := fineLev.G
	jrng := rand.New(rand.NewSource(opt.Seed<<8 + int64(li)*1009 + int64(sub.Rank())))
	var created []idPos
	if coarse != nil {
		for ci, cid := range coarse.ownedIDs {
			q := coarse.pos[ci].Scale(2)
			for _, v := range fineLev.ChildrenOf(cid) {
				j := geometry.Vec2{
					X: jrng.Float64() - 0.5,
					Y: jrng.Float64() - 0.5,
				}.Scale(0.5 * opt.Force.K)
				created = append(created, idPos{ID: v, P: q.Add(j)})
			}
		}
		coarse.comm.Charge(float64(len(created)) * 4)
	}
	// Global bounds of the projected coordinates.
	lo := geometry.Vec2{X: math.Inf(1), Y: math.Inf(1)}
	hi := geometry.Vec2{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, ip := range created {
		lo.X = math.Min(lo.X, ip.P.X)
		lo.Y = math.Min(lo.Y, ip.P.Y)
		hi.X = math.Max(hi.X, ip.P.X)
		hi.Y = math.Max(hi.Y, ip.P.Y)
	}
	lo = mpi.AllReduce(sub, lo, 16, func(a, b geometry.Vec2) geometry.Vec2 {
		return geometry.Vec2{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)}
	})
	hi = mpi.AllReduce(sub, hi, 16, func(a, b geometry.Vec2) geometry.Vec2 {
		return geometry.Vec2{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)}
	})
	bounds := geometry.Rect{X0: lo.X, Y0: lo.Y, X1: hi.X, Y1: hi.Y}.Expand(0.5 * opt.Force.K)
	// Quantile lattice from a gathered sample.
	grid := mpi.GridFor(sub.Size())
	per := 4096/sub.Size() + 1
	var mySample []geometry.Vec2
	if len(created) > 0 {
		stride := len(created)/per + 1
		for i := 0; i < len(created); i += stride {
			mySample = append(mySample, created[i].P)
		}
	}
	sample := mpi.Concat(mpi.AllGatherV(sub, mySample, 16))
	lat := NewLattice(grid, sample, bounds)
	// Route vertices to their new owners.
	dest := make([][]idPos, sub.Size())
	for _, ip := range created {
		r := lat.RankOf(ip.P)
		dest[r] = append(dest[r], ip)
	}
	recv := mpi.AllToAllV(sub, dest, 20)
	var mine []idPos
	for _, part := range recv {
		mine = append(mine, part...)
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].ID < mine[j].ID })
	ownedIDs := make([]int32, len(mine))
	pos := make([]geometry.Vec2, len(mine))
	for i, ip := range mine {
		ownedIDs[i] = ip.ID
		pos[i] = ip.P
	}
	// Distributed directory for ghost-owner resolution.
	dir := buildDirectory(sub, ownedIDs)
	ownerOf := func(ids []int32) []int { return queryOwners(sub, dir, ids) }
	return newLevelState(sub, lat, g, ownedIDs, pos, ownerOf, opt.Force)
}

// buildDirectory publishes vertex ownership to hashed directory ranks:
// the owner of vertex v is registered at rank v mod P.
func buildDirectory(c *mpi.Comm, owned []int32) map[int32]int32 {
	dest := make([][]int32, c.Size())
	for _, id := range owned {
		d := int(id) % c.Size()
		dest[d] = append(dest[d], id)
	}
	got := mpi.AllToAllV(c, dest, 4)
	dir := make(map[int32]int32)
	for src, ids := range got {
		for _, id := range ids {
			dir[id] = int32(src)
		}
	}
	return dir
}

// queryOwners resolves the owning rank of each id through the hashed
// directory built by buildDirectory (two all-to-all rounds).
func queryOwners(c *mpi.Comm, dir map[int32]int32, ids []int32) []int {
	queries := make([][]int32, c.Size())
	posOf := make([][]int, c.Size())
	for i, id := range ids {
		d := int(id) % c.Size()
		queries[d] = append(queries[d], id)
		posOf[d] = append(posOf[d], i)
	}
	asked := mpi.AllToAllV(c, queries, 4)
	answers := make([][]int32, c.Size())
	for src, qs := range asked {
		if len(qs) == 0 {
			continue
		}
		ans := make([]int32, len(qs))
		for i, id := range qs {
			owner, ok := dir[id]
			if !ok {
				panic("embed: directory miss")
			}
			ans[i] = owner
		}
		answers[src] = ans
	}
	replies := mpi.AllToAllV(c, answers, 4)
	out := make([]int, len(ids))
	for d, reply := range replies {
		for i, owner := range reply {
			out[posOf[d][i]] = int(owner)
		}
	}
	return out
}
