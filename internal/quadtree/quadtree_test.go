package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geometry"
)

func randomPoints(n int, seed int64) []geometry.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vec2, n)
	for i := range pts {
		pts[i] = geometry.Vec2{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestMassConservation(t *testing.T) {
	pts := randomPoints(500, 1)
	mass := make([]float64, len(pts))
	total := 0.0
	rng := rand.New(rand.NewSource(2))
	for i := range mass {
		mass[i] = rng.Float64() + 0.5
		total += mass[i]
	}
	tr := Build(pts, mass)
	if math.Abs(tr.TotalMass()-total) > 1e-9 {
		t.Fatalf("total mass %v want %v", tr.TotalMass(), total)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("len %d want %d", tr.Len(), len(pts))
	}
}

// TestVisitedMassComplete: for any query, the sum of visited masses
// must equal total minus the excluded point, regardless of theta.
func TestVisitedMassComplete(t *testing.T) {
	pts := randomPoints(400, 3)
	tr := Build(pts, nil)
	for _, theta := range []float64{0.3, 0.85, 1.5} {
		for q := 0; q < 50; q++ {
			sum := 0.0
			tr.ForEachCluster(pts[q], int32(q), theta, func(_ geometry.Vec2, m float64, _ int32) {
				sum += m
			})
			// With theta >= 1 a cell containing the query point may be
			// accepted whole, re-including the query's own mass (the
			// documented approximation); below 1 the count is exact.
			want := float64(len(pts) - 1)
			slack := 1e-9
			if theta >= 1 {
				slack = 1 + 1e-9
			}
			if sum < want-1e-9 || sum > want+slack {
				t.Fatalf("theta %v query %d: visited mass %v want %v", theta, q, sum, want)
			}
		}
	}
}

// TestForceApproximation: 1/d-kernel force from the tree must be close
// to the exact sum for moderate theta.
func TestForceApproximation(t *testing.T) {
	pts := randomPoints(800, 7)
	tr := Build(pts, nil)
	kernel := func(at, from geometry.Vec2, m float64) geometry.Vec2 {
		d := at.Sub(from)
		dist2 := d.Dot(d)
		if dist2 < 1e-12 {
			dist2 = 1e-12
		}
		return d.Scale(m / dist2)
	}
	for q := 0; q < 30; q++ {
		var exact, approx geometry.Vec2
		for j := range pts {
			if j == q {
				continue
			}
			exact = exact.Add(kernel(pts[q], pts[j], 1))
		}
		tr.ForEachCluster(pts[q], int32(q), 0.6, func(com geometry.Vec2, m float64, _ int32) {
			approx = approx.Add(kernel(pts[q], com, m))
		})
		relErr := exact.Sub(approx).Norm() / (exact.Norm() + 1e-12)
		if relErr > 0.12 {
			t.Fatalf("query %d: relative error %.3f", q, relErr)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geometry.Vec2, 64)
	for i := range pts {
		pts[i] = geometry.Vec2{X: 0.5, Y: 0.5} // all identical
	}
	tr := Build(pts, nil)
	if tr.Len() != 64 || math.Abs(tr.TotalMass()-64) > 1e-9 {
		t.Fatalf("len=%d mass=%v", tr.Len(), tr.TotalMass())
	}
	sum := 0.0
	tr.ForEachCluster(geometry.Vec2{X: 0.1, Y: 0.1}, -1, 0.85, func(_ geometry.Vec2, m float64, _ int32) {
		sum += m
	})
	if math.Abs(sum-64) > 1e-9 {
		t.Fatalf("visited mass %v want 64", sum)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if tr := Build(nil, nil); tr.Len() != 0 {
		t.Fatal("empty tree not empty")
	}
	tr := Build([]geometry.Vec2{{X: 1, Y: 2}}, nil)
	if tr.Len() != 1 {
		t.Fatal("single tree wrong")
	}
	count := 0
	tr.ForEachCluster(geometry.Vec2{}, 0, 0.85, func(_ geometry.Vec2, _ float64, _ int32) { count++ })
	if count != 0 {
		t.Fatal("excluded point visited")
	}
}
