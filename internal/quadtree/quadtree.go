// Package quadtree implements the Barnes–Hut quadtree used by the
// sequential force-directed embedding baseline: O(n log n) approximate
// evaluation of long-range repulsive forces, with the classic theta
// opening criterion.
package quadtree

import (
	"repro/internal/geometry"
)

const maxDepth = 48

// node is one quadtree cell. Leaves hold a single point index (or -1);
// internal nodes hold the total mass and centre of mass of their
// subtree.
type node struct {
	children [4]int32 // -1 when absent
	com      geometry.Vec2
	mass     float64
	capSum   geometry.Vec2 // mass-weighted position sum of depth-capped points
	capMass  float64       // total mass of depth-capped points in this cell
	point    int32         // point index for a leaf, -1 for internal
	count    int32         // points in subtree
}

// Tree is a Barnes–Hut quadtree over weighted points in the plane.
type Tree struct {
	nodes  []node
	bounds geometry.Rect
	pts    []geometry.Vec2
	mass   []float64
}

// Build constructs a quadtree over pts. mass may be nil for unit
// masses. Duplicate and near-duplicate points are handled by capping
// subdivision depth; beyond the cap, points accumulate in the same cell
// and only contribute through its aggregate.
func Build(pts []geometry.Vec2, mass []float64) *Tree {
	t := &Tree{}
	t.Rebuild(pts, mass)
	return t
}

// Rebuild reconstructs the tree in place over a new point set, reusing
// the node storage of previous builds. Iterative force loops that
// rebuild the tree every step go through here to stay allocation-free
// in steady state.
func (t *Tree) Rebuild(pts []geometry.Vec2, mass []float64) {
	if len(pts) == 0 {
		t.nodes = t.nodes[:0]
		t.pts, t.mass = nil, nil
		return
	}
	t.bounds = squareBounds(geometry.BoundingRect(pts))
	t.pts = pts
	t.mass = mass
	if cap(t.nodes) < 1 {
		t.nodes = make([]node, 1, 2*len(pts))
	} else {
		t.nodes = t.nodes[:1]
	}
	t.nodes[0] = emptyNode()
	for i := range pts {
		t.insert(0, int32(i), t.bounds, 0)
	}
	t.aggregate(0)
}

func emptyNode() node {
	return node{children: [4]int32{-1, -1, -1, -1}, point: -1}
}

// squareBounds pads the rect into a square so quadrants stay square.
func squareBounds(r geometry.Rect) geometry.Rect {
	w, h := r.Width(), r.Height()
	side := w
	if h > side {
		side = h
	}
	if side == 0 {
		side = 1
	}
	c := r.Center()
	half := side/2 + 1e-9*side
	return geometry.Rect{X0: c.X - half, Y0: c.Y - half, X1: c.X + half, Y1: c.Y + half}
}

func quadrant(b geometry.Rect, p geometry.Vec2) (int, geometry.Rect) {
	c := b.Center()
	q := 0
	x0, y0, x1, y1 := b.X0, b.Y0, c.X, c.Y
	if p.X > c.X {
		q |= 1
		x0, x1 = c.X, b.X1
	}
	if p.Y > c.Y {
		q |= 2
		y0, y1 = c.Y, b.Y1
	}
	return q, geometry.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

func (t *Tree) massOf(i int32) float64 {
	if t.mass == nil {
		return 1
	}
	return t.mass[i]
}

func (t *Tree) insert(ni int32, pi int32, b geometry.Rect, depth int) {
	n := &t.nodes[ni]
	n.count++
	if depth >= maxDepth {
		// Depth cap: fold the point into this cell's aggregate only.
		m := t.massOf(pi)
		n.capSum = n.capSum.Add(t.pts[pi].Scale(m))
		n.capMass += m
		return
	}
	if n.count == 1 {
		n.point = pi
		return
	}
	if n.point >= 0 {
		// Leaf becoming internal: push the resident point down.
		old := n.point
		n.point = -1
		q, qb := quadrant(b, t.pts[old])
		ci := t.child(ni, q)
		t.insert(ci, old, qb, depth+1)
	}
	q, qb := quadrant(b, t.pts[pi])
	ci := t.child(ni, q)
	t.insert(ci, pi, qb, depth+1)
}

// child returns (allocating if needed) the q-th child of node ni. Note
// the re-take of the node pointer after append, which may move nodes.
func (t *Tree) child(ni int32, q int) int32 {
	if c := t.nodes[ni].children[q]; c >= 0 {
		return c
	}
	t.nodes = append(t.nodes, emptyNode())
	c := int32(len(t.nodes) - 1)
	t.nodes[ni].children[q] = c
	return c
}

// aggregate computes subtree masses and centres bottom-up.
func (t *Tree) aggregate(ni int32) (geometry.Vec2, float64) {
	n := &t.nodes[ni]
	com, mass := n.capSum, n.capMass // depth-capped accumulation, usually zero
	if n.point >= 0 {
		m := t.massOf(n.point)
		com = com.Add(t.pts[n.point].Scale(m))
		mass += m
	}
	for _, c := range n.children {
		if c < 0 {
			continue
		}
		ccom, cmass := t.aggregate(c)
		com = com.Add(ccom.Scale(cmass))
		mass += cmass
	}
	if mass > 0 {
		n.com = com.Scale(1 / mass)
	}
	n.mass = mass
	return n.com, n.mass
}

// ForEachCluster traverses the tree for query point p with opening
// parameter theta, invoking visit once per accepted cluster or point
// with its centre of mass, aggregate mass, and point index (-1 for an
// aggregated internal cell). The query point itself (exclude index) is
// skipped.
func (t *Tree) ForEachCluster(p geometry.Vec2, exclude int32, theta float64, visit func(com geometry.Vec2, mass float64, point int32)) {
	if len(t.nodes) == 0 {
		return
	}
	t.walk(0, t.bounds, p, exclude, theta, visit)
}

func (t *Tree) walk(ni int32, b geometry.Rect, p geometry.Vec2, exclude int32, theta float64, visit func(geometry.Vec2, float64, int32)) {
	n := &t.nodes[ni]
	if n.count == 0 || n.mass == 0 {
		return
	}
	if n.point >= 0 && n.count == 1 {
		if n.point != exclude {
			visit(t.pts[n.point], t.massOf(n.point), n.point)
		}
		return
	}
	d := p.Dist(n.com)
	if d > 0 && b.Width()/d < theta {
		// Accept the cell as a single far-field cluster. When the
		// query point is inside the subtree this slightly
		// double-counts it; theta < 1 keeps that case rare and the
		// embedding tolerates the approximation.
		visit(n.com, n.mass, -1)
		return
	}
	if n.point >= 0 && n.point != exclude {
		visit(t.pts[n.point], t.massOf(n.point), n.point)
	}
	if n.capMass > 0 {
		// Near-field depth-capped residue: visit its aggregate so the
		// points folded at the depth cap are never lost.
		visit(n.capSum.Scale(1/n.capMass), n.capMass, -1)
	}
	c := b.Center()
	for q, ci := range n.children {
		if ci < 0 {
			continue
		}
		qb := b
		if q&1 == 0 {
			qb.X1 = c.X
		} else {
			qb.X0 = c.X
		}
		if q&2 == 0 {
			qb.Y1 = c.Y
		} else {
			qb.Y0 = c.Y
		}
		t.walk(ci, qb, p, exclude, theta, visit)
	}
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return int(t.nodes[0].count)
}

// TotalMass returns the total mass in the tree.
func (t *Tree) TotalMass() float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.nodes[0].mass
}
