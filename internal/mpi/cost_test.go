package mpi

import (
	"math"
	"testing"
)

func TestChargeAndChargeTime(t *testing.T) {
	m := DefaultModel()
	stats := Run(1, m, func(c *Comm) {
		c.Charge(1000)
		c.ChargeTime(1e-3)
	})
	want := 1000*m.PerOp + 1e-3
	if math.Abs(stats[0].Time-want) > 1e-12 {
		t.Fatalf("time %v want %v", stats[0].Time, want)
	}
	if stats[0].CommTime != 0 {
		t.Fatalf("compute charged as comm: %v", stats[0].CommTime)
	}
}

func TestChargeCommBooksCommTime(t *testing.T) {
	m := DefaultModel()
	stats := Run(1, m, func(c *Comm) {
		c.ChargeComm(3, 1000)
	})
	want := 3*m.Latency + 1000*m.PerByte
	if math.Abs(stats[0].Time-want) > 1e-15 || math.Abs(stats[0].CommTime-want) > 1e-15 {
		t.Fatalf("time %v comm %v want %v", stats[0].Time, stats[0].CommTime, want)
	}
}

func TestSendCostsMatchModel(t *testing.T) {
	m := DefaultModel()
	stats := Run(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, "x", 3000)
		} else {
			c.Recv(0)
		}
	})
	// Receiver's clock = message arrival = sender clock (0) + ts + tw·b.
	want := m.Latency + 3000*m.PerByte
	if math.Abs(stats[1].Time-want) > 1e-15 {
		t.Fatalf("receiver time %v want %v", stats[1].Time, want)
	}
	if stats[0].BytesSent != 3000 || stats[0].Messages != 1 {
		t.Fatalf("sender stats %+v", stats[0])
	}
}

func TestSyncCostSynchronises(t *testing.T) {
	stats := Run(3, DefaultModel(), func(c *Comm) {
		c.ChargeTime(float64(c.Rank()) * 1e-3)
		c.SyncCost(5e-4)
	})
	want := 2e-3 + 5e-4 // slowest rank + cost
	for _, s := range stats {
		if math.Abs(s.Time-want) > 1e-12 {
			t.Fatalf("rank %d time %v want %v", s.Rank, s.Time, want)
		}
	}
}

func TestCollectiveCostFormula(t *testing.T) {
	m := DefaultModel()
	Run(8, m, func(c *Comm) {
		got := c.CollectiveCost(100)
		want := (m.Latency + 100*m.PerByte) * 3 // log2(8) = 3
		if math.Abs(got-want) > 1e-18 {
			panic("collective cost formula wrong")
		}
	})
}

func TestReduceAndAllReduceSlice(t *testing.T) {
	p := 4
	outs := make([][]int64, p)
	Run(p, DefaultModel(), func(c *Comm) {
		outs[c.Rank()] = AllReduceSlice(c, []int64{int64(c.Rank()), 1}, 8, SumInt64)
		r := Reduce(c, int64(1), 8, SumInt64)
		if r != int64(p) {
			panic("reduce sum wrong")
		}
	})
	for r := 0; r < p; r++ {
		if outs[r][0] != 6 || outs[r][1] != 4 {
			t.Fatalf("rank %d: %v", r, outs[r])
		}
	}
}

func TestPhaseTimer(t *testing.T) {
	Run(1, DefaultModel(), func(c *Comm) {
		ph := c.StartPhase()
		c.ChargeTime(2e-3)
		c.ChargeComm(1, 0)
		total, comm := ph.Stop()
		if total < 2e-3 || comm <= 0 || comm > total {
			panic("phase timer accounting wrong")
		}
	})
}

func TestMaxHelpers(t *testing.T) {
	stats := []RankStats{{Time: 1, CommTime: 0.2}, {Time: 3, CommTime: 0.1}}
	if MaxTime(stats) != 3 || MaxCommTime(stats) != 0.2 {
		t.Fatal("max helpers wrong")
	}
}

func TestAsymmetricBcastCostDeterministic(t *testing.T) {
	// Root declares a payload size unknown to the others; repeated runs
	// must produce identical clocks (the collective charges the max
	// declared cost).
	run := func() float64 {
		stats := Run(4, DefaultModel(), func(c *Comm) {
			bytes := 0
			if c.Rank() == 0 {
				bytes = 100000
			}
			c.Bcast(0, "payload", bytes)
		})
		return MaxTime(stats)
	}
	a := run()
	for i := 0; i < 20; i++ {
		if b := run(); b != a {
			t.Fatalf("run %d: %v vs %v", i, b, a)
		}
	}
}
