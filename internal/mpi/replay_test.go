package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/hostpar"
)

// withReplay runs fn with the given replay mode and worker count,
// restoring both afterwards.
func withReplay(mode ReplayMode, workers int, fn func()) {
	prevMode := SetReplayMode(mode)
	prevWorkers := hostpar.SetWorkers(workers)
	defer func() {
		SetReplayMode(prevMode)
		hostpar.SetWorkers(prevWorkers)
	}()
	fn()
}

func TestParseReplayMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ReplayMode
		ok   bool
	}{
		{"", ReplayGoroutine, true},
		{"goroutine", ReplayGoroutine, true},
		{"batched", ReplayBatched, true},
		{"Batched", 0, false},
		{"threads", 0, false},
	} {
		got, err := ParseReplayMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseReplayMode(%q) = %v, %v; want %v, ok=%t", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if ReplayGoroutine.String() != "goroutine" || ReplayBatched.String() != "batched" {
		t.Errorf("String(): %q / %q", ReplayGoroutine, ReplayBatched)
	}
}

// replayWorkload is a communication-heavy body mixing the three
// blocking primitives the slot gate hooks: ring SendRecv, explicit
// send/recv pairs, reductions, and barriers, with local compute charges
// between them.
func replayWorkload(c *Comm) {
	p := c.Size()
	me := c.Rank()
	acc := float64(me)
	for it := 0; it < 6; it++ {
		c.Charge(1000)
		right := (me + 1) % p
		left := (me + p - 1) % p
		got := c.SendRecv(me^1, acc, 8) // pairwise partner (p is even)
		acc += got.(float64) * 0.125
		c.Send(right, acc, 8)
		v := c.Recv(left).(float64)
		acc += v * 0.25
		sum := AllReduce(c, acc, 8, func(a, b float64) float64 { return a + b })
		acc = sum / float64(p)
		c.Barrier()
	}
}

// TestReplayModesIdenticalStats pins the scheduler's invisibility: the
// batched gate changes only host scheduling, so every rank's virtual
// clock, comm time, message count, and byte count must be bit-identical
// to the goroutine replay — including when simulated P far exceeds the
// worker batch.
func TestReplayModesIdenticalStats(t *testing.T) {
	for _, p := range []int{4, 16, 64} {
		var ref []RankStats
		withReplay(ReplayGoroutine, 2, func() {
			ref = Run(p, DefaultModel(), replayWorkload)
		})
		for _, workers := range []int{1, 2, 8} {
			var got []RankStats
			withReplay(ReplayBatched, workers, func() {
				got = Run(p, DefaultModel(), replayWorkload)
			})
			for r := range ref {
				a, b := got[r], ref[r]
				if a.Time != b.Time || a.CommTime != b.CommTime ||
					a.Messages != b.Messages || a.BytesSent != b.BytesSent {
					t.Fatalf("p=%d workers=%d rank %d: batched %+v, goroutine %+v", p, workers, r, a, b)
				}
			}
		}
	}
}

// TestReplayBatchedRankFailure: a rank dying mid-run under the batched
// gate must abort the world cleanly — ranks parked on the gate are
// poisoned like ranks parked in communication, every goroutine joins,
// and the failure surfaces as a RankError.
func TestReplayBatchedRankFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()
	withReplay(ReplayBatched, 2, func() {
		_, err := RunChecked(16, DefaultModel(), func(c *Comm) {
			c.Charge(100)
			c.Barrier()
			if c.Rank() == 5 {
				panic(fmt.Errorf("injected failure"))
			}
			c.Charge(100)
			c.Barrier()
		})
		if err == nil {
			t.Fatal("expected rank failure")
		}
		var re *RankError
		if !errors.As(err, &re) || re.Rank != 5 {
			t.Fatalf("want RankError from rank 5, got %v", err)
		}
	})
	requireNoGoroutineLeak(t, baseline)
}

// TestReplayBatchedWatchdog: a genuine deadlock under the batched gate
// must still be caught by the watchdog — parked ranks release their
// slots before publishing waitInfo, so the watchdog's all-blocked
// picture is unchanged.
func TestReplayBatchedWatchdog(t *testing.T) {
	baseline := runtime.NumGoroutine()
	withReplay(ReplayBatched, 2, func() {
		_, err := RunChecked(8, watchdogModel(200*time.Millisecond), func(c *Comm) {
			c.SetPhase("stall")
			c.Recv((c.Rank() + 1) % c.Size()) // nobody ever sends
		})
		if err == nil {
			t.Fatal("expected deadlock error")
		}
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("want wrapped *DeadlockError, got %v", err)
		}
		if len(dl.Blocked()) != 8 {
			t.Fatalf("blocked ranks %v, want all 8", dl.Blocked())
		}
	})
	requireNoGoroutineLeak(t, baseline)
}

// TestReplayGateSizing: the gate only exists when it can bound
// anything — batched mode with fewer workers than ranks.
func TestReplayGateSizing(t *testing.T) {
	withReplay(ReplayBatched, 4, func() {
		if g := newStepGate(16); g == nil || cap(g) != 4 {
			t.Fatalf("gate for p=16, workers=4: %v (cap %d), want capacity 4", g, cap(g))
		}
		if g := newStepGate(4); g != nil {
			t.Fatal("gate for p=workers should be nil")
		}
	})
	withReplay(ReplayGoroutine, 4, func() {
		if g := newStepGate(16); g != nil {
			t.Fatal("goroutine mode must not gate")
		}
	})
}
