package mpi

import (
	"testing"

	"repro/internal/geometry"
)

func TestSendVecRecvVecRoundTrip(t *testing.T) {
	const p = 3
	got := make([][]geometry.Vec2, p)
	Run(p, DefaultModel(), func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		buf := Vec2Bufs.Get(4)
		for i := range buf.Data {
			buf.Data[i] = geometry.Vec2{X: float64(c.Rank()), Y: float64(i)}
		}
		SendVec(c, next, buf, 16)
		in := RecvVec[geometry.Vec2](c, prev)
		out := make([]geometry.Vec2, len(in.Data))
		copy(out, in.Data)
		in.Release()
		got[c.Rank()] = out
	})
	for r := 0; r < p; r++ {
		prev := (r + p - 1) % p
		for i, v := range got[r] {
			want := geometry.Vec2{X: float64(prev), Y: float64(i)}
			if v != want {
				t.Fatalf("rank %d slot %d: got %v want %v", r, i, v, want)
			}
		}
	}
}

func TestVecPoolReusesBacking(t *testing.T) {
	pool := NewVecPool[int32]()
	b := pool.Get(8)
	first := &b.Data[0]
	b.Release()
	b2 := pool.Get(4) // smaller fits the pooled capacity
	if &b2.Data[0] != first {
		t.Fatalf("pool did not reuse the released backing array")
	}
	if len(b2.Data) != 4 {
		t.Fatalf("len = %d, want 4", len(b2.Data))
	}
}

func TestSetPoolingDisablesReuse(t *testing.T) {
	defer SetPooling(SetPooling(false))
	pool := NewVecPool[int32]()
	b := pool.Get(8)
	first := &b.Data[0]
	b.Release() // no-op: buffer was allocated outside the pool
	b2 := pool.Get(8)
	if &b2.Data[0] == first {
		t.Fatalf("pooling disabled, but backing array was reused")
	}
}

// TestSendVecSteadyStateAllocs asserts the typed send fast path is
// allocation-free: with prefilled buffers and room in the receiver's
// inbox (capacity 2P+64 covers rounds+1 outstanding messages), SendVec
// must not allocate at all — the *VecBuf payload converts to `any`
// without boxing and the non-blocking delivery skips the watchdog's
// waitInfo snapshot. The receiver drains afterwards, exercising the
// non-blocking receive path, and releases every buffer back to the
// pool.
func TestSendVecSteadyStateAllocs(t *testing.T) {
	const rounds = 50 // rounds+1 sends must fit the inbox
	var avg float64
	var drained int
	Run(2, DefaultModel(), func(c *Comm) {
		if c.Rank() == 0 {
			bufs := make([]*VecBuf[float64], rounds+1)
			for i := range bufs {
				bufs[i] = Float64Bufs.Get(64)
				for j := range bufs[i].Data {
					bufs[i].Data[j] = float64(i + j)
				}
			}
			c.Barrier()
			i := 0
			// AllocsPerRun calls the function rounds+1 times (one
			// warm-up run before the measured ones).
			avg = testing.AllocsPerRun(rounds, func() {
				SendVec(c, 1, bufs[i], 8)
				i++
			})
			c.Barrier()
		} else {
			c.Barrier()
			c.Barrier() // all messages are in the inbox once rank 0 joins
			for i := 0; i < rounds+1; i++ {
				in := RecvVec[float64](c, 0)
				drained += len(in.Data)
				in.Release()
			}
		}
	})
	// The only allocation that may leak into the window is the other
	// rank's one-off barrier bookkeeping, amortised over all rounds.
	if avg > 0.5 {
		t.Errorf("steady-state SendVec: %.2f allocs per send, want 0", avg)
	}
	if drained != (rounds+1)*64 {
		t.Errorf("receiver drained %d elements, want %d", drained, (rounds+1)*64)
	}
}

// TestNeighborExchangeOneMessagePerPartner checks the coalescing
// contract: each rank sends exactly one point-to-point message per
// partner per exchange, regardless of how many payload kinds the caller
// packed into the buffer.
func TestNeighborExchangeOneMessagePerPartner(t *testing.T) {
	const p = 4
	sums := make([]float64, p)
	stats := Run(p, DefaultModel(), func(c *Comm) {
		partners := []int{(c.Rank() + 1) % p, (c.Rank() + p - 1) % p}
		if partners[0] > partners[1] {
			partners[0], partners[1] = partners[1], partners[0]
		}
		bufs := make([]*VecBuf[float64], len(partners))
		for i := range bufs {
			// Two payload kinds packed into one message: a "cell" part
			// and a "coordinate" part.
			bufs[i] = Float64Bufs.Get(6)
			for j := range bufs[i].Data {
				bufs[i].Data[j] = float64(c.Rank()*10 + j)
			}
		}
		total := 0.0
		NeighborExchange(c, partners, bufs, 8, func(_, partner int, data []float64) {
			for _, v := range data {
				total += v
			}
		})
		sums[c.Rank()] = total
	})
	for r, s := range stats {
		if s.Messages != 2 {
			t.Errorf("rank %d sent %d messages, want 2 (one per partner)", r, s.Messages)
		}
		if s.BytesSent != 2*6*8 {
			t.Errorf("rank %d sent %d bytes, want %d", r, s.BytesSent, 2*6*8)
		}
	}
	for r, total := range sums {
		next, prev := (r+1)%p, (r+p-1)%p
		want := float64(next*10*6+0+1+2+3+4+5) + float64(prev*10*6+0+1+2+3+4+5)
		if total != want {
			t.Errorf("rank %d: sum %g want %g", r, total, want)
		}
	}
}

// TestPoolingInvisibleToClocks runs the same communication pattern with
// pooling on and off and requires bit-identical virtual clocks and
// payload results: buffer reuse is a host-side optimisation that must
// not leak into the simulation.
func TestPoolingInvisibleToClocks(t *testing.T) {
	const p = 4
	program := func() ([]RankStats, []float64) {
		res := make([]float64, p)
		stats := Run(p, DefaultModel(), func(c *Comm) {
			partners := ringPartners(c.Rank(), p)
			acc := 0.0
			for round := 0; round < 5; round++ {
				bufs := make([]*VecBuf[float64], len(partners))
				for i := range bufs {
					bufs[i] = Float64Bufs.Get(8 + round)
					for j := range bufs[i].Data {
						bufs[i].Data[j] = float64(c.Rank() + round + j)
					}
				}
				NeighborExchange(c, partners, bufs, 8, func(_, _ int, data []float64) {
					for _, v := range data {
						acc += v
					}
				})
			}
			acc = AllReduce(c, acc, 8, SumFloat64)
			res[c.Rank()] = acc
		})
		return stats, res
	}
	defer SetPooling(SetPooling(true))
	pooledStats, pooledRes := program()
	SetPooling(false)
	plainStats, plainRes := program()
	for r := 0; r < p; r++ {
		if pooledStats[r].Time != plainStats[r].Time {
			t.Errorf("rank %d clock differs: pooled %v plain %v", r, pooledStats[r].Time, plainStats[r].Time)
		}
		if pooledStats[r].Messages != plainStats[r].Messages {
			t.Errorf("rank %d messages differ: pooled %d plain %d", r, pooledStats[r].Messages, plainStats[r].Messages)
		}
		if pooledRes[r] != plainRes[r] {
			t.Errorf("rank %d result differs: pooled %v plain %v", r, pooledRes[r], plainRes[r])
		}
	}
}

func ringPartners(rank, p int) []int {
	a, b := (rank+1)%p, (rank+p-1)%p
	if a == b {
		return []int{a}
	}
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}

// TestTruncateFaultOnVecBuf checks that TruncatePayload reaches pooled
// payloads: the receiver sees the first half of the data only.
func TestTruncateFaultOnVecBuf(t *testing.T) {
	model := DefaultModel()
	model.Faults = NewFaultPlan().Truncate(0, 0)
	var gotLen int
	Run(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			buf := Int32Bufs.Get(8)
			for i := range buf.Data {
				buf.Data[i] = int32(i)
			}
			SendVec(c, 1, buf, 4)
		} else {
			in := RecvVec[int32](c, 0)
			gotLen = len(in.Data)
			in.Release()
		}
	})
	if gotLen != 4 {
		t.Fatalf("truncated payload has %d elements, want 4", gotLen)
	}
}
