package mpi

import (
	"fmt"
	"testing"

	"repro/internal/hostpar"
)

// High-P collective benchmarks. The embedding replay issues an
// AllReduce (and several barriers) per iteration per level, so at
// P = 1024 the host cost of one collective rendezvous is the gate on
// the headline scale-8 sweep. These benchmarks sweep P over the suite's
// upper range and hostpar workers over the chunked fan-in's pool sizes;
// the scaling acceptance bar is sub-quadratic cost in P (P=1024 at most
// ~8x the P=256 per-op cost, against ~16x for a quadratic engine) with
// zero steady-state allocations on the fan-in engine
// (TestCollectiveSteadyStateAllocs pins the latter exactly).
//
// The per-op figure is the wall cost of one world-wide collective: all
// P ranks contribute, one rank combines in rank-index order, and every
// rank observes the result.

// benchWorldLoop runs body's b.N-iteration loop inside one world,
// excluding world spin-up/teardown from the timed window.
func benchWorldLoop(b *testing.B, p int, loop func(c *Comm, n int)) {
	b.Helper()
	b.ReportAllocs()
	Run(p, DefaultModel(), func(c *Comm) {
		c.Barrier() // warm the collective path before the timer starts
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		loop(c, b.N)
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
}

// benchEngines runs the benchmark body under every collective engine
// present, so the fan-in win over the legacy gather-all path stays
// visible in `go test -bench` output.
func benchEngines(b *testing.B, run func(b *testing.B)) {
	for _, eng := range []CollectiveEngine{CollectivesFanin, CollectivesLegacy} {
		b.Run(eng.String(), func(b *testing.B) {
			defer SetCollectiveEngine(SetCollectiveEngine(eng))
			run(b)
		})
	}
}

// BenchmarkAllReduceHighP measures one float64 AllReduce per op across
// the full communicator.
func BenchmarkAllReduceHighP(b *testing.B) {
	for _, p := range []int{64, 256, 1024} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("P%d/workers%d", p, workers), func(b *testing.B) {
				benchEngines(b, func(b *testing.B) {
					defer hostpar.SetWorkers(hostpar.SetWorkers(workers))
					benchWorldLoop(b, p, func(c *Comm, n int) {
						acc := float64(c.Rank())
						for i := 0; i < n; i++ {
							acc = AllReduce(c, acc*0.5, 8, SumFloat64)
						}
					})
				})
			})
		}
	}
}

// BenchmarkBarrierHighP measures one full-communicator barrier per op.
func BenchmarkBarrierHighP(b *testing.B) {
	for _, p := range []int{64, 256, 1024} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("P%d/workers%d", p, workers), func(b *testing.B) {
				benchEngines(b, func(b *testing.B) {
					defer hostpar.SetWorkers(hostpar.SetWorkers(workers))
					benchWorldLoop(b, p, func(c *Comm, n int) {
						for i := 0; i < n; i++ {
							c.Barrier()
						}
					})
				})
			})
		}
	}
}

// BenchmarkWorldSpinUp measures the cost of bringing a P-rank world up
// and tearing it down again with no communication at all — the rank
// arena's target. B/op here is the allocation bill for P ranks' state
// (mailboxes, pending queues, Comms, stacks aside).
func BenchmarkWorldSpinUp(b *testing.B) {
	for _, p := range []int{256, 1024} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(p, DefaultModel(), func(c *Comm) {})
			}
		})
	}
}
