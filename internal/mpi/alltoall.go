package mpi

import "repro/internal/hostpar"

// AllToAllV delivers dest[r] to each rank r and returns the payloads
// received, indexed by source rank (empty slices where nothing was
// sent). dest[own rank] is moved across directly. bytesPerElem sizes
// the modeled payload.
//
// The implementation first exchanges per-destination counts (modeled as
// the usual MPI_Alltoall of one integer per destination: Latency·log2 P
// + PerByte·4·P per rank) and then moves only the non-empty payloads
// with point-to-point messages, receiving in ascending source order for
// determinism.
func AllToAllV[T any](c *Comm, dest [][]T, bytesPerElem int) [][]T {
	p := c.Size()
	if len(dest) != p {
		panic("mpi: AllToAllV needs one destination slice per rank")
	}
	counts := make([]int32, p)
	for r, d := range dest {
		counts[r] = int32(len(d))
	}
	recvCounts := exchangeCounts(c, counts)
	for r, d := range dest {
		if r == c.Rank() || len(d) == 0 {
			continue
		}
		c.sendOp(r, d, bytesPerElem*len(d), opAllToAllV)
	}
	out := make([][]T, p)
	out[c.Rank()] = dest[c.Rank()]
	for r := 0; r < p; r++ {
		if r == c.Rank() || recvCounts[r] == 0 {
			continue
		}
		out[r] = c.recvOp(r, opAllToAllV).([]T)
	}
	return out
}

// exchangeCounts gives every rank the column of the count matrix that
// is addressed to it: result[src] = how many elements src sends here.
// Modeled as an all-to-all of one int32 per pair.
//
// Host cost: the fan-in engine's combine transposes the whole count
// matrix once (hostpar-chunked over destinations), so each rank reads
// its column directly — O(P²) total instead of the legacy O(P) column
// extraction per rank (O(P²) per rank, O(P³)-ish pressure at P = 1024).
// The column values are identical either way; the returned slice is
// shared read-only between ranks on the fan-in path.
func exchangeCounts(c *Comm, counts []int32) []int32 {
	m := c.Model()
	cost := collCost{
		total: m.Latency*log2ceil(c.size) + m.PerByte*4*float64(c.size) + m.PerPeer*float64(c.size),
		ts:    m.Latency * log2ceil(c.size),
		tw:    m.PerByte * 4 * float64(c.size),
		to:    m.PerPeer * float64(c.size),
		bytes: 4 * int64(c.size),
	}
	if c.world.legacyColl {
		res := c.runCollective(opAllToAllVCounts, counts, func(vals []any) any {
			// vals[src][dst]: build the full matrix once; each rank
			// extracts its column after the collective.
			matrix := make([][]int32, len(vals))
			for i, v := range vals {
				matrix[i] = v.([]int32)
			}
			return matrix
		}, cost)
		matrix := res.([][]int32)
		col := make([]int32, c.size)
		for src := 0; src < c.size; src++ {
			col[src] = matrix[src][c.rank]
		}
		return col
	}
	res := c.runCollective(opAllToAllVCounts, counts, transposeCounts, cost)
	return res.([][]int32)[c.rank]
}

// transposeCounts is the fan-in combine: cols[dst][src] =
// vals[src][dst], built once by the finisher over one flat backing
// slab. Each rank's column holds exactly the values the legacy path
// extracted rank-by-rank.
func transposeCounts(vals []any) any {
	p := len(vals)
	rows := make([][]int32, p)
	for i, v := range vals {
		rows[i] = v.([]int32)
	}
	flat := make([]int32, p*p)
	cols := make([][]int32, p)
	for dst := range cols {
		cols[dst] = flat[dst*p : (dst+1)*p : (dst+1)*p]
	}
	hostpar.ForChunked(p, 64, func(_, lo, hi int) {
		for dst := lo; dst < hi; dst++ {
			col := cols[dst]
			for src := 0; src < p; src++ {
				col[src] = rows[src][dst]
			}
		}
	})
	return cols
}
