package mpi

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// RankError is the structured failure RunChecked returns: which rank
// failed, what algorithm phase it was in (see Comm.SetPhase), and the
// underlying cause (a recovered panic, an *InjectedFault, a voluntary
// Comm.Abort error, or a *DeadlockError from the watchdog).
type RankError struct {
	Rank  int
	Phase string
	Err   error
}

func (e *RankError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("rank %d failed in phase %q: %v", e.Rank, e.Phase, e.Err)
	}
	return fmt.Sprintf("rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// RankWait is one rank's entry in a deadlock diagnostic dump.
type RankWait struct {
	Rank  int
	Phase string  // last phase set via Comm.SetPhase
	Clock float64 // virtual clock when the rank blocked (or finished)
	State string  // "done", "running", or a description of the blocked op
	Done  bool
}

// DeadlockError is the watchdog's diagnostic: the world made no
// progress for a full watchdog window with every live rank blocked. It
// lists, per rank, the virtual clock and what the rank is waiting on
// and from whom.
type DeadlockError struct {
	Window time.Duration
	Ranks  []RankWait
}

// Blocked returns the ranks that were blocked (not finished) when the
// watchdog fired.
func (e *DeadlockError) Blocked() []int {
	var out []int
	for _, r := range e.Ranks {
		if !r.Done {
			out = append(out, r.Rank)
		}
	}
	return out
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	blocked := e.Blocked()
	fmt.Fprintf(&b, "deadlock: no progress for %v, %d of %d ranks blocked", e.Window, len(blocked), len(e.Ranks))
	for _, r := range e.Ranks {
		fmt.Fprintf(&b, "\n  rank %d", r.Rank)
		if r.Phase != "" {
			fmt.Fprintf(&b, " [%s]", r.Phase)
		}
		fmt.Fprintf(&b, " @ %.6fs: %s", r.Clock, r.State)
	}
	return b.String()
}

// abortSignal is the panic value that tears a rank down after another
// rank aborted the world; RunChecked swallows it silently.
type abortSignal struct{}

// Wait kinds for the watchdog's per-rank status.
const (
	waitRunning = iota // not blocked (nil waitInfo means the same)
	waitRecv
	waitSend
	waitColl
	waitDone
)

// waitInfo is an immutable snapshot of what a rank is blocked on,
// published through an atomic pointer so the watchdog can read it
// without racing the rank. A fresh waitInfo is allocated for every
// blocking operation, so pointer identity across watchdog samples means
// "still stuck in the same operation".
type waitInfo struct {
	kind  int
	op    string // "Recv", "Send", "Bcast", "AllReduce", "HaloExchange", ...
	peer  int    // partner rank for point-to-point ops, -1 otherwise
	size  int    // communicator size for collectives
	gen   int64  // collective generation being waited on
	clock float64
	phase string
}

func (wi *waitInfo) describe() string {
	if wi == nil {
		return "running"
	}
	switch wi.kind {
	case waitDone:
		return "done"
	case waitRecv:
		return fmt.Sprintf("blocked in %s from rank %d (no matching send)", wi.op, wi.peer)
	case waitSend:
		return fmt.Sprintf("blocked in %s to rank %d (inbox full)", wi.op, wi.peer)
	case waitColl:
		return fmt.Sprintf("blocked in collective %s over %d ranks (generation %d incomplete)", wi.op, wi.size, wi.gen)
	}
	return "running"
}

// DefaultWatchdogWindow is the built-in stall window used when neither
// Model.Watchdog nor SetWatchdogTimeout configured one: if no rank
// makes progress for this long while every live rank is blocked, the
// watchdog aborts the world with a DeadlockError.
const DefaultWatchdogWindow = 2 * time.Second

// watchdogWindow holds the process-wide configured default stall window
// in nanoseconds; zero means "use DefaultWatchdogWindow".
var watchdogWindow atomic.Int64

// SetWatchdogTimeout configures the process-wide default deadlock
// watchdog window used by runs whose Model.Watchdog is zero, and
// returns the previous default. Passing a non-positive duration
// restores the built-in DefaultWatchdogWindow. Chaos and CI harnesses
// use this to shorten (or lengthen, on slow machines) the watchdog
// without threading a Model through every call site; a per-run
// Model.Watchdog still takes precedence.
func SetWatchdogTimeout(d time.Duration) time.Duration {
	prev := WatchdogTimeout()
	if d <= 0 {
		watchdogWindow.Store(0)
	} else {
		watchdogWindow.Store(int64(d))
	}
	return prev
}

// WatchdogTimeout returns the current default watchdog stall window
// (the value runs with Model.Watchdog == 0 use).
func WatchdogTimeout() time.Duration {
	if ns := watchdogWindow.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultWatchdogWindow
}

// watchdog polls rank states and aborts the world when it observes a
// full window with every live rank blocked on the exact same operations
// (pointer-identical waitInfos) and the global progress counter frozen.
// Pointer identity makes false positives require a genuinely runnable
// goroutine to be starved for the entire window across several polls,
// which the Go scheduler does not do.
func (w *World) watchdog(window time.Duration, stop <-chan struct{}) {
	interval := window / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var prev []*waitInfo
	var prevProgress int64 = -1
	strikes := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if w.aborted.Load() {
			return
		}
		cur := make([]*waitInfo, w.size)
		blocked, done := 0, 0
		for i, st := range w.ranks {
			wi := st.wait.Load()
			cur[i] = wi
			if wi == nil {
				continue
			}
			switch wi.kind {
			case waitDone:
				done++
			default:
				blocked++
			}
		}
		progress := w.progress.Load()
		stuck := blocked > 0 && blocked+done == w.size &&
			progress == prevProgress && sameWaits(cur, prev)
		if stuck {
			strikes++
		} else {
			strikes = 0
		}
		prev, prevProgress = cur, progress
		if strikes < 4 {
			continue
		}
		// A full window elapsed with the world frozen: dump and abort.
		dl := &DeadlockError{Window: window, Ranks: make([]RankWait, w.size)}
		first := -1
		for i, wi := range cur {
			rw := RankWait{Rank: i, State: wi.describe()}
			if wi != nil {
				rw.Phase = wi.phase
				rw.Clock = wi.clock
				rw.Done = wi.kind == waitDone
			}
			if !rw.Done && first < 0 {
				first = i
			}
			dl.Ranks[i] = rw
		}
		re := &RankError{Rank: first, Err: dl}
		if first >= 0 && cur[first] != nil {
			re.Phase = cur[first].phase
		}
		// Re-check right before aborting: a real rank failure may have
		// poisoned the world between our sample and now, leaving stale
		// wait records from the dying generation. The genuine RankError
		// must win over a spurious deadlock dump built from them.
		if w.aborted.Load() {
			return
		}
		w.abort(re)
		return
	}
}

func sameWaits(a, b []*waitInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
