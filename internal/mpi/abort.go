package mpi

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// RankError is the structured failure RunChecked returns: which rank
// failed, what algorithm phase it was in (see Comm.SetPhase), and the
// underlying cause (a recovered panic, an *InjectedFault, a voluntary
// Comm.Abort error, or a *DeadlockError from the watchdog).
type RankError struct {
	Rank  int
	Phase string
	Err   error
}

func (e *RankError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("rank %d failed in phase %q: %v", e.Rank, e.Phase, e.Err)
	}
	return fmt.Sprintf("rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// RankWait is one rank's entry in a deadlock diagnostic dump.
type RankWait struct {
	Rank  int
	Phase string  // last phase set via Comm.SetPhase
	Clock float64 // virtual clock when the rank blocked (or finished)
	State string  // "done", "running", or a description of the blocked op
	Done  bool
}

// DeadlockError is the watchdog's diagnostic: the world made no
// progress for a full watchdog window with every live rank blocked. It
// lists, per rank, the virtual clock and what the rank is waiting on
// and from whom.
type DeadlockError struct {
	Window time.Duration
	Ranks  []RankWait
}

// Blocked returns the ranks that were blocked (not finished) when the
// watchdog fired.
func (e *DeadlockError) Blocked() []int {
	var out []int
	for _, r := range e.Ranks {
		if !r.Done {
			out = append(out, r.Rank)
		}
	}
	return out
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	blocked := e.Blocked()
	fmt.Fprintf(&b, "deadlock: no progress for %v, %d of %d ranks blocked", e.Window, len(blocked), len(e.Ranks))
	for _, r := range e.Ranks {
		fmt.Fprintf(&b, "\n  rank %d", r.Rank)
		if r.Phase != "" {
			fmt.Fprintf(&b, " [%s]", r.Phase)
		}
		fmt.Fprintf(&b, " @ %.6fs: %s", r.Clock, r.State)
	}
	return b.String()
}

// abortSignal is the panic value that tears a rank down after another
// rank aborted the world; RunChecked swallows it silently.
type abortSignal struct{}

// Wait kinds for the watchdog's per-rank status. (There is no send
// wait: sends are enqueue-and-go on the mailbox rings.)
const (
	waitRunning int32 = iota // not blocked
	waitRecv
	waitColl
	waitDone
)

// waitRec publishes what a rank is blocked on through per-rank atomics,
// so the watchdog reads it without racing the rank and the rank writes
// it without allocating (the historical design boxed a fresh waitInfo
// per blocking operation — an allocation on every park). The seq
// counter is bumped to odd before a publication and back to even after,
// seqlock-style: the watchdog treats an odd seq as "changing right
// now", i.e. not stuck, and uses (seq, kind) equality across samples as
// "still parked in the same operation". Soundness does not hinge on the
// seq snapshot alone: every completed blocking op also bumps the
// world's progress counter, which must stay frozen across the entire
// watchdog window for a deadlock to be declared.
type waitRec struct {
	seq   atomic.Uint64 // odd while a publication is in flight
	kind  atomic.Int32
	peer  atomic.Int32
	size  atomic.Int32
	gen   atomic.Int64
	clock atomic.Uint64          // math.Float64bits of the clock at publish
	op    atomic.Pointer[string] // interned op name; nil when running
	phase atomic.Pointer[string] // last Comm.SetPhase label
}

func (wr *waitRec) publish(kind int32, op *string, peer, size int32, gen int64, clock float64) {
	wr.seq.Add(1)
	wr.kind.Store(kind)
	wr.op.Store(op)
	wr.peer.Store(peer)
	wr.size.Store(size)
	wr.gen.Store(gen)
	wr.clock.Store(math.Float64bits(clock))
	wr.seq.Add(1)
}

func (wr *waitRec) phaseStr() string {
	if p := wr.phase.Load(); p != nil {
		return *p
	}
	return ""
}

func (wr *waitRec) clockVal() float64 {
	return math.Float64frombits(wr.clock.Load())
}

func (wr *waitRec) describe() string {
	op := ""
	if p := wr.op.Load(); p != nil {
		op = *p
	}
	switch wr.kind.Load() {
	case waitDone:
		return "done"
	case waitRecv:
		return fmt.Sprintf("blocked in %s from rank %d (no matching send)", op, wr.peer.Load())
	case waitColl:
		return fmt.Sprintf("blocked in collective %s over %d ranks (generation %d incomplete)", op, wr.size.Load(), wr.gen.Load())
	}
	return "running"
}

// waitSnap is one watchdog sample of a rank's wait record: the seq
// stamp identifies the publication, so equal snaps across polls mean
// "still parked in the same operation".
type waitSnap struct {
	seq  uint64
	kind int32
}

// DefaultWatchdogWindow is the built-in stall window used when neither
// Model.Watchdog nor SetWatchdogTimeout configured one: if no rank
// makes progress for this long while every live rank is blocked, the
// watchdog aborts the world with a DeadlockError.
const DefaultWatchdogWindow = 2 * time.Second

// watchdogWindow holds the process-wide configured default stall window
// in nanoseconds; zero means "use DefaultWatchdogWindow".
var watchdogWindow atomic.Int64

// SetWatchdogTimeout configures the process-wide default deadlock
// watchdog window used by runs whose Model.Watchdog is zero, and
// returns the previous default. Passing a non-positive duration
// restores the built-in DefaultWatchdogWindow. Chaos and CI harnesses
// use this to shorten (or lengthen, on slow machines) the watchdog
// without threading a Model through every call site; a per-run
// Model.Watchdog still takes precedence.
func SetWatchdogTimeout(d time.Duration) time.Duration {
	prev := WatchdogTimeout()
	if d <= 0 {
		watchdogWindow.Store(0)
	} else {
		watchdogWindow.Store(int64(d))
	}
	return prev
}

// WatchdogTimeout returns the current default watchdog stall window
// (the value runs with Model.Watchdog == 0 use).
func WatchdogTimeout() time.Duration {
	if ns := watchdogWindow.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultWatchdogWindow
}

// watchdog polls rank states and aborts the world when it observes a
// full window with every live rank blocked on the exact same operations
// (identical waitRec seq stamps) and the global progress counter
// frozen. The seq stamp makes false positives require a genuinely
// runnable goroutine to be starved for the entire window across several
// polls, which the Go scheduler does not do.
func (w *World) watchdog(window time.Duration, stop <-chan struct{}) {
	interval := window / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	prev := make([]waitSnap, w.size)
	cur := make([]waitSnap, w.size)
	havePrev := false
	var prevProgress int64 = -1
	strikes := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if w.aborted.Load() {
			return
		}
		blocked, done := 0, 0
		for i := range w.ranks {
			wr := &w.ranks[i].wait
			seq := wr.seq.Load()
			kind := wr.kind.Load()
			if seq%2 != 0 {
				// Mid-publication: the rank is demonstrably running.
				kind = waitRunning
			}
			cur[i] = waitSnap{seq: seq, kind: kind}
			switch kind {
			case waitDone:
				done++
			case waitRecv, waitColl:
				blocked++
			}
		}
		progress := w.progress.Load()
		stuck := blocked > 0 && blocked+done == w.size &&
			progress == prevProgress && havePrev && sameWaits(cur, prev)
		if stuck {
			strikes++
		} else {
			strikes = 0
		}
		prev, cur = cur, prev
		havePrev = true
		prevProgress = progress
		if strikes < 4 {
			continue
		}
		// A full window elapsed with the world frozen: dump and abort.
		dl := &DeadlockError{Window: window, Ranks: make([]RankWait, w.size)}
		first := -1
		firstPhase := ""
		for i := range w.ranks {
			wr := &w.ranks[i].wait
			rw := RankWait{
				Rank:  i,
				Phase: wr.phaseStr(),
				Clock: wr.clockVal(),
				State: wr.describe(),
				Done:  wr.kind.Load() == waitDone,
			}
			if !rw.Done && first < 0 {
				first = i
				firstPhase = rw.Phase
			}
			dl.Ranks[i] = rw
		}
		re := &RankError{Rank: first, Phase: firstPhase, Err: dl}
		// Re-check right before aborting: a real rank failure may have
		// poisoned the world between our sample and now, leaving stale
		// wait records from the dying generation. The genuine RankError
		// must win over a spurious deadlock dump built from them.
		if w.aborted.Load() {
			return
		}
		w.abort(re)
		return
	}
}

func sameWaits(a, b []waitSnap) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
