package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// watchdogModel returns a default model with a short watchdog window so
// deadlock tests finish quickly.
func watchdogModel(window time.Duration) Model {
	m := DefaultModel()
	m.Watchdog = window
	return m
}

// requireNoGoroutineLeak asserts the goroutine count returns to (about)
// the given baseline, proving every rank goroutine terminated.
func requireNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestDeadlockWatchdogNamesBlockedRanks deliberately deadlocks two
// ranks (each receives from the other with no matching send); the
// watchdog must abort within its window with a RankError whose
// diagnostic names both blocked ranks — no hang, no escaping panic.
func TestDeadlockWatchdogNamesBlockedRanks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, err := RunChecked(2, watchdogModel(200*time.Millisecond), func(c *Comm) {
		c.SetPhase("exchange")
		c.Recv(1 - c.Rank()) // nobody ever sends
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %T: %v", err, err)
	}
	if re.Phase != "exchange" {
		t.Fatalf("phase %q, want exchange", re.Phase)
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want wrapped *DeadlockError, got %v", err)
	}
	blocked := dl.Blocked()
	if len(blocked) != 2 || blocked[0] != 0 || blocked[1] != 1 {
		t.Fatalf("blocked ranks %v, want [0 1]", blocked)
	}
	msg := err.Error()
	for _, want := range []string{"rank 0", "rank 1", "Recv", "no matching send"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	requireNoGoroutineLeak(t, baseline)
}

// TestKillFaultDuringEachCollective kills one rank at its first
// communication event inside each collective (and the halo exchange);
// in every case all goroutines must terminate and the error must
// identify the faulted rank and the phase it died in.
func TestKillFaultDuringEachCollective(t *testing.T) {
	const p = 6
	grid := GridFor(p)
	cases := []struct {
		phase string
		body  func(c *Comm)
	}{
		{"bcast", func(c *Comm) { c.Bcast(0, c.Rank(), 8) }},
		{"reduce", func(c *Comm) { Reduce(c, int64(1), 8, SumInt64) }},
		{"allgather", func(c *Comm) { AllGather(c, c.Rank(), 8) }},
		{"alltoallv", func(c *Comm) {
			dest := make([][]int32, c.Size())
			for r := 0; r < c.Size(); r++ {
				if r != c.Rank() {
					dest[r] = []int32{int32(c.Rank())}
				}
			}
			AllToAllV(c, dest, 4)
		}},
		{"haloexchange", func(c *Comm) {
			nbrs := grid.Neighbors(c.Rank())
			payload := make([]any, len(nbrs))
			bytes := make([]int, len(nbrs))
			for i := range nbrs {
				payload[i] = c.Rank()
				bytes[i] = 8
			}
			HaloExchange(c, grid, payload, bytes)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.phase, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			m := watchdogModel(time.Second)
			m.Faults = NewFaultPlan().Kill(2, 0)
			_, err := RunChecked(p, m, func(c *Comm) {
				c.SetPhase(tc.phase)
				tc.body(c)
			})
			if err == nil {
				t.Fatal("expected error from killed rank")
			}
			var re *RankError
			if !errors.As(err, &re) {
				t.Fatalf("want *RankError, got %T: %v", err, err)
			}
			if re.Rank != 2 {
				t.Fatalf("faulted rank %d, want 2 (%v)", re.Rank, err)
			}
			if re.Phase != tc.phase {
				t.Fatalf("phase %q, want %q", re.Phase, tc.phase)
			}
			var inj *InjectedFault
			if !errors.As(err, &inj) || inj.Rank != 2 || inj.Event != 0 {
				t.Fatalf("want wrapped *InjectedFault{2,0}, got %v", err)
			}
			requireNoGoroutineLeak(t, baseline)
		})
	}
}

// TestVoluntaryAbort checks Comm.Abort surfaces the given error as a
// RankError and unblocks the rest of the world.
func TestVoluntaryAbort(t *testing.T) {
	sentinel := errors.New("malformed local graph")
	_, err := RunChecked(4, watchdogModel(time.Second), func(c *Comm) {
		c.SetPhase("validate")
		if c.Rank() == 3 {
			c.Abort(sentinel)
		}
		c.Recv(3) // never satisfied; unblocked by the abort
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 3 || re.Phase != "validate" {
		t.Fatalf("want RankError{3, validate}, got %v", err)
	}
}

// TestDropMessageTriggersWatchdog drops a point-to-point message on the
// wire; the receiver blocks forever and the watchdog must identify it.
func TestDropMessageTriggersWatchdog(t *testing.T) {
	m := watchdogModel(200 * time.Millisecond)
	m.Faults = NewFaultPlan().Drop(0, 0)
	_, err := RunChecked(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, "payload", 64)
		} else {
			c.SetPhase("recv")
			c.Recv(0)
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	blocked := dl.Blocked()
	if len(blocked) != 1 || blocked[0] != 1 {
		t.Fatalf("blocked %v, want [1]", blocked)
	}
}

// TestDelayMessagePerturbsOnlyReceiver checks the fault model composes
// with the cost model: a delayed message moves the receiver's clock by
// exactly the delay and leaves every other rank bit-identical.
func TestDelayMessagePerturbsOnlyReceiver(t *testing.T) {
	body := func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, "x", 100)
		case 1:
			c.Recv(0)
		case 2:
			c.Charge(1000)
		}
	}
	clean, err := RunChecked(3, DefaultModel(), body)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 1e-3
	m := DefaultModel()
	m.Faults = NewFaultPlan().Delay(0, 0, delay)
	faulted, err := RunChecked(3, m, body)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := faulted[1].Time, clean[1].Time+delay; got != want {
		t.Fatalf("receiver clock %v, want %v", got, want)
	}
	if faulted[0].Time != clean[0].Time || faulted[2].Time != clean[2].Time {
		t.Fatalf("unaffected clocks perturbed: %v vs %v", faulted, clean)
	}
}

// TestTruncateCollectivePayload corrupts one rank's contribution to an
// AllReduceSlice; the length-mismatch must surface as a RankError, not
// a hang or an escaping panic.
func TestTruncateCollectivePayload(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := watchdogModel(time.Second)
	m.Faults = NewFaultPlan().Truncate(1, 0)
	_, err := RunChecked(4, m, func(c *Comm) {
		c.SetPhase("reduce-slice")
		AllReduceSlice(c, []int64{1, 2, 3, 4}, 8, SumInt64)
	})
	if err == nil {
		t.Fatal("expected error from truncated payload")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "mismatched lengths") {
		t.Fatalf("error should surface the length mismatch, got %v", err)
	}
	requireNoGoroutineLeak(t, baseline)
}

// TestFaultFreeClocksUnchanged pins the acceptance requirement that
// fault-free runs are bit-identical with and without the fault-handling
// machinery engaged (empty plan, watchdog on or off).
func TestFaultFreeClocksUnchanged(t *testing.T) {
	body := func(c *Comm) {
		for i := 0; i < 5; i++ {
			AllReduce(c, float64(c.Rank()), 8, SumFloat64)
			if c.Rank() > 0 {
				c.Send(c.Rank()-1, i, 8)
			}
			if c.Rank() < c.Size()-1 {
				c.Recv(c.Rank() + 1)
			}
			c.Charge(float64(c.Rank()) * 100)
		}
	}
	ref := Run(8, DefaultModel(), body)
	variants := []Model{
		watchdogModel(50 * time.Millisecond),
		{Latency: 2.0e-6, PerByte: 0.33e-9, PerOp: 1.5e-9, PerPeer: 0.2e-6, Watchdog: -1},
	}
	empty := DefaultModel()
	empty.Faults = NewFaultPlan()
	variants = append(variants, empty)
	for i, m := range variants {
		got, err := RunChecked(8, m, body)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		for r := range ref {
			if got[r].Time != ref[r].Time || got[r].CommTime != ref[r].CommTime {
				t.Fatalf("variant %d rank %d: clock %v/%v, want %v/%v",
					i, r, got[r].Time, got[r].CommTime, ref[r].Time, ref[r].CommTime)
			}
		}
	}
}

// TestRandomKillPlansAlwaysTerminate fuzzes seeded kill plans over a
// communication-heavy program: whatever the position of the kill, the
// run must terminate (with an error when the fault was reached).
func TestRandomKillPlansAlwaysTerminate(t *testing.T) {
	body := func(c *Comm) {
		for i := 0; i < 4; i++ {
			AllReduce(c, int64(c.Rank()), 8, SumInt64)
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			c.Send(next, i, 8)
			c.Recv(prev)
			AllGather(c, c.Rank(), 8)
		}
	}
	for seed := int64(0); seed < 24; seed++ {
		m := watchdogModel(2 * time.Second)
		m.Faults = RandomKillPlan(seed, 8, 12)
		_, err := RunChecked(8, m, body)
		if err == nil {
			t.Fatalf("seed %d: kill fault at %+v not reached", seed, m.Faults.Faults[0])
		}
		var inj *InjectedFault
		if !errors.As(err, &inj) {
			t.Fatalf("seed %d: want *InjectedFault, got %v", seed, err)
		}
	}
}

// TestRunCheckedHealthyMatchesRun checks the checked variant is a
// drop-in for healthy runs.
func TestRunCheckedHealthyMatchesRun(t *testing.T) {
	body := func(c *Comm) { c.Barrier(); c.Charge(100) }
	want := Run(4, DefaultModel(), body)
	got, err := RunChecked(4, DefaultModel(), body)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("rank %d: %+v vs %+v", r, got[r], want[r])
		}
	}
}

// TestRankErrorFormatting pins the error strings diagnostics rely on.
func TestRankErrorFormatting(t *testing.T) {
	re := &RankError{Rank: 3, Phase: "embed", Err: fmt.Errorf("boom")}
	if got := re.Error(); !strings.Contains(got, "rank 3") || !strings.Contains(got, "embed") {
		t.Fatalf("unhelpful error: %q", got)
	}
	if (&RankError{Rank: 1, Err: fmt.Errorf("x")}).Error() != "rank 1 failed: x" {
		t.Fatal("phase-less formatting changed")
	}
}
