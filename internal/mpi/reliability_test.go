package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

// pingpong is a small deterministic program: rank 0 sends to 1, 1
// replies, then everyone barriers.
func pingpong(payload int) func(*Comm) {
	return func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, payload, 64)
			if got := c.Recv(1).(int); got != payload+1 {
				panic(fmt.Sprintf("rank 0 got %d", got))
			}
		case 1:
			v := c.Recv(0).(int)
			c.Send(0, v+1, 64)
		}
		c.Barrier()
	}
}

func TestReliableZeroFaultsBitIdentical(t *testing.T) {
	model := DefaultModel()
	plain := Run(4, model, pingpong(7))
	model.Reliable = &Reliability{}
	reliable := Run(4, model, pingpong(7))
	for r := range plain {
		if plain[r] != reliable[r] {
			t.Fatalf("rank %d stats moved under the reliability layer with zero faults:\nplain:    %+v\nreliable: %+v",
				r, plain[r], reliable[r])
		}
	}
}

func TestReliableHealsDroppedMessage(t *testing.T) {
	model := DefaultModel()
	model.Reliable = &Reliability{}
	rec := trace.New()
	model.Trace = rec
	// Rank 0's first communication event is its Send to rank 1.
	model.Faults = NewFaultPlan().Drop(0, 0)
	var delivered int
	stats, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 42, 8)
		} else {
			delivered = c.Recv(0).(int)
		}
	})
	if err != nil {
		t.Fatalf("healed run failed: %v", err)
	}
	if delivered != 42 {
		t.Fatalf("payload lost despite healing: got %d", delivered)
	}

	base := DefaultModel()
	base.Reliable = &Reliability{}
	clean, _ := RunChecked(2, base, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 42, 8)
		} else {
			c.Recv(0)
		}
	})
	// The sender pays one extra Latency for the retransmission; the
	// receiver waits out one backoff timeout on top of the transfer.
	wantSender := clean[0].Time + base.Latency
	if diff := stats[0].Time - wantSender; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("sender clock %.12g, want %.12g (one retry latency over clean %.12g)",
			stats[0].Time, wantSender, clean[0].Time)
	}
	timeout := base.Reliable.ackTimeout(base, 8)
	wantReceiver := clean[1].Time + timeout
	if diff := stats[1].Time - wantReceiver; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("receiver clock %.12g, want %.12g (one backoff timeout over clean %.12g)",
			stats[1].Time, wantReceiver, clean[1].Time)
	}

	retries := 0
	for _, ev := range rec.Ranks()[0].Events() {
		if ev.Kind == trace.KindRetry {
			retries++
			if ev.Peer != 1 || ev.Gen != 1 {
				t.Fatalf("retry event misattributed: %+v", ev)
			}
		}
	}
	if retries != 1 {
		t.Fatalf("want exactly 1 retry event at the sender, got %d", retries)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("healed trace violates invariants: %v", err)
	}
}

func TestReliableHealsRepeatedDropWithExponentialBackoff(t *testing.T) {
	model := DefaultModel()
	model.Reliable = &Reliability{}
	model.Faults = NewFaultPlan().DropN(0, 0, 3)
	stats, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
		} else {
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatalf("triple drop within budget must heal: %v", err)
	}
	timeout := model.Reliable.ackTimeout(model, 8)
	// 3 lost transmissions: backoff = timeout·(1+2+4).
	wantBackoff := 7 * timeout
	clean := model.Latency + model.PerByte*8
	got := stats[1].Time
	want := clean + wantBackoff
	if diff := got - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("receiver clock %.12g, want transfer %.12g + backoff %.12g", got, clean, wantBackoff)
	}
}

func TestReliableDropBeyondBudgetEscalates(t *testing.T) {
	model := DefaultModel()
	model.Reliable = &Reliability{RetryBudget: 2}
	model.Faults = NewFaultPlan().DropN(0, 0, 3)
	_, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
		} else {
			c.Recv(0)
		}
	})
	var rbe *RetryBudgetError
	if !errors.As(err, &rbe) {
		t.Fatalf("want RetryBudgetError, got %v", err)
	}
	if rbe.Rank != 0 || rbe.To != 1 || rbe.Drops != 3 || rbe.Budget != 2 {
		t.Fatalf("wrong escalation detail: %+v", rbe)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("escalation must surface as a rank-0 RankError, got %v", err)
	}
}

func TestReliableHealsLongDelay(t *testing.T) {
	model := DefaultModel()
	model.Reliable = &Reliability{}
	const late = 0.5 // far beyond any ack timeout
	model.Faults = NewFaultPlan().Delay(0, 0, late)
	stats, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
		} else {
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatalf("delay heal failed: %v", err)
	}
	timeout := model.Reliable.ackTimeout(model, 8)
	if stats[1].Time >= late {
		t.Fatalf("receiver still waited the full delay (%.3g), healing did not fire", stats[1].Time)
	}
	want := model.Latency + model.PerByte*8 + timeout
	if diff := stats[1].Time - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("receiver clock %.12g, want %.12g (transfer + one timeout)", stats[1].Time, want)
	}
	// A short delay inside the ack window is below the retransmission
	// threshold and must pass through unhealed.
	model.Faults = NewFaultPlan().Delay(0, 0, timeout/2)
	stats, err = RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
		} else {
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatalf("short delay run failed: %v", err)
	}
	want = model.Latency + model.PerByte*8 + timeout/2
	if diff := stats[1].Time - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("short delay must not be healed: receiver clock %.12g, want %.12g", stats[1].Time, want)
	}
}

func TestReliableHealsTruncatedSend(t *testing.T) {
	model := DefaultModel()
	model.Reliable = &Reliability{}
	model.Faults = NewFaultPlan().Truncate(0, 0)
	var got []int32
	stats, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []int32{1, 2, 3, 4}, 16)
		} else {
			got = c.Recv(0).([]int32)
		}
	})
	if err != nil {
		t.Fatalf("truncate heal failed: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("payload arrived corrupted despite checksum healing: %v", got)
	}
	timeout := model.Reliable.ackTimeout(model, 16)
	want := model.Latency + model.PerByte*16 + timeout
	if diff := stats[1].Time - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("receiver clock %.12g, want transfer + one timeout %.12g", stats[1].Time, want)
	}
}

func TestReliableHealsTruncatedCollective(t *testing.T) {
	model := DefaultModel()
	add := func(a, b int64) int64 { return a + b }
	clean := Run(2, model, func(c *Comm) {
		AllReduceSlice(c, []int64{int64(c.Rank() + 1)}, 8, add)
	})
	model.Reliable = &Reliability{}
	model.Faults = NewFaultPlan().Truncate(0, 0)
	var sum int64
	stats, err := RunChecked(2, model, func(c *Comm) {
		sum = AllReduceSlice(c, []int64{int64(c.Rank() + 1)}, 8, add)[0]
	})
	if err != nil {
		t.Fatalf("collective truncate heal failed: %v", err)
	}
	if sum != 3 {
		t.Fatalf("collective combined corrupted data: sum %d, want 3", sum)
	}
	// The retransmission timeout enters the rendezvous max, so both
	// ranks end strictly later than the clean run.
	for r := range stats {
		if stats[r].Time <= clean[r].Time {
			t.Fatalf("rank %d clock %.12g not charged for the collective retransmission (clean %.12g)",
				r, stats[r].Time, clean[r].Time)
		}
	}
}

func TestReliableUnaffectedRanksKeepClocks(t *testing.T) {
	model := DefaultModel()
	base := Run(4, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, 16)
		}
		if c.Rank() == 1 {
			c.Recv(0)
		}
		if c.Rank() == 2 {
			c.Send(3, 9, 16)
		}
		if c.Rank() == 3 {
			c.Recv(2)
		}
	})
	model.Reliable = &Reliability{}
	model.Faults = NewFaultPlan().Drop(0, 0)
	healed := Run(4, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, 16)
		}
		if c.Rank() == 1 {
			c.Recv(0)
		}
		if c.Rank() == 2 {
			c.Send(3, 9, 16)
		}
		if c.Rank() == 3 {
			c.Recv(2)
		}
	})
	for _, r := range []int{2, 3} {
		if base[r].Time != healed[r].Time || base[r].CommTime != healed[r].CommTime {
			t.Fatalf("rank %d is off the faulted link but its clock moved: %+v vs %+v", r, base[r], healed[r])
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	model := DefaultModel()
	var snap RankSnapshot
	Run(1, model, func(c *Comm) {
		c.ChargeTime(1.5)
		c.Barrier()
		snap = c.Snapshot()
	})
	if snap.Clock < 1.5 || snap.Events != 1 {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	stats := Run(1, model, func(c *Comm) {
		c.Restore(snap)
		if c.Elapsed() != snap.Clock || c.Events() != snap.Events {
			panic("restore did not rewind counters")
		}
		c.ChargeTime(0.5)
	})
	if want := snap.Clock + 0.5; stats[0].Time != want {
		t.Fatalf("restored clock %.12g, want %.12g", stats[0].Time, want)
	}
	if stats[0].Events != snap.Events {
		t.Fatalf("restored events %d, want %d", stats[0].Events, snap.Events)
	}
}

func TestSetWatchdogTimeout(t *testing.T) {
	prev := SetWatchdogTimeout(80 * time.Millisecond)
	defer SetWatchdogTimeout(0)
	if prev != DefaultWatchdogWindow {
		t.Fatalf("previous default %v, want %v", prev, DefaultWatchdogWindow)
	}
	if got := WatchdogTimeout(); got != 80*time.Millisecond {
		t.Fatalf("WatchdogTimeout() = %v after set", got)
	}
	// A genuine deadlock (unhealed drop) must now be detected without a
	// per-run Model.Watchdog override, well inside the 2 s default.
	model := DefaultModel()
	model.Faults = NewFaultPlan().Drop(0, 0)
	start := time.Now()
	_, err := RunChecked(2, model, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
		} else {
			c.Recv(0)
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if dl.Window != 80*time.Millisecond {
		t.Fatalf("watchdog ran with window %v, want the configured 80ms", dl.Window)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("configured watchdog took %v, should fire in ~80-320ms", elapsed)
	}
	SetWatchdogTimeout(-1)
	if got := WatchdogTimeout(); got != DefaultWatchdogWindow {
		t.Fatalf("non-positive reset gave %v, want built-in default", got)
	}
}
