package mpi

import (
	"testing"

	"repro/internal/trace"
)

// traceTestBody mixes every traced operation class: point-to-point
// sends and receives, collectives of several flavors, local charges,
// and phase changes.
func traceTestBody(c *Comm) {
	c.SetPhase("ring")
	for i := 0; i < 3; i++ {
		c.Send((c.Rank()+1)%c.Size(), i, 16)
		c.Recv((c.Rank() + c.Size() - 1) % c.Size())
	}
	c.SetPhase("reduce")
	AllReduce(c, float64(c.Rank()), 8, SumFloat64)
	AllGather(c, c.Rank(), 8)
	c.ChargeComm(2, 128)
	c.SetPhase("sync")
	c.Barrier()
}

// TestTracingPreservesClocksBitIdentical is the acceptance requirement
// that observability is free: attaching a Recorder must not move any
// clock, byte count, or message count by even one bit.
func TestTracingPreservesClocksBitIdentical(t *testing.T) {
	ref := Run(8, DefaultModel(), traceTestBody)
	m := DefaultModel()
	m.Trace = trace.New()
	got := Run(8, m, traceTestBody)
	for r := range ref {
		if ref[r] != got[r] {
			t.Fatalf("rank %d stats diverged under tracing:\n  off: %+v\n  on:  %+v", r, ref[r], got[r])
		}
	}
}

// TestTracedRunSatisfiesInvariants: the events a healthy run records
// must pass the runtime invariant checker, and the per-rank phase spans
// must telescope exactly to each rank's final clock.
func TestTracedRunSatisfiesInvariants(t *testing.T) {
	m := DefaultModel()
	rec := trace.New()
	m.Trace = rec
	stats := Run(8, m, traceTestBody)
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b := rec.Breakdown()
	if len(b.Ranks) != 8 {
		t.Fatalf("breakdown covers %d ranks, want 8", len(b.Ranks))
	}
	for r, phases := range b.Ranks {
		var sum float64
		for _, p := range phases {
			sum += p.Time
		}
		if diff := sum - stats[r].Time; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d: phase spans sum to %v, final clock %v", r, sum, stats[r].Time)
		}
	}
	// The named phases all appear in the aggregate, in program order.
	want := []string{"ring", "reduce", "sync"}
	if len(b.Phases) != len(want) {
		t.Fatalf("phases %+v, want %v", b.Phases, want)
	}
	for i, p := range b.Phases {
		if p.Phase != want[i] {
			t.Fatalf("phase %d is %q, want %q", i, p.Phase, want[i])
		}
	}
	// Point-to-point traffic: 8 ranks * 3 ring messages of 16 bytes.
	ring := b.Phases[0]
	if ring.Msgs != 2*8*3 || ring.Bytes != 2*8*3*16 {
		t.Fatalf("ring phase recorded %d msgs / %d bytes, want %d / %d",
			ring.Msgs, ring.Bytes, 2*8*3, 2*8*3*16)
	}
	// Collectives: AllReduce + AllGather (+ the Barrier in "sync").
	if b.Phases[1].Colls != 2*8 || b.Phases[2].Colls != 8 {
		t.Fatalf("collective counts %d/%d, want 16/8", b.Phases[1].Colls, b.Phases[2].Colls)
	}
}

// TestRecorderSingleUse: a Recorder documents one run; reusing it must
// fail loudly instead of silently interleaving two worlds' events.
func TestRecorderSingleUse(t *testing.T) {
	m := DefaultModel()
	m.Trace = trace.New()
	Run(2, m, func(c *Comm) { c.Barrier() })
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a Recorder across runs did not panic")
		}
	}()
	Run(2, m, func(c *Comm) { c.Barrier() })
}
