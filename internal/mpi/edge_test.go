package mpi

import (
	"testing"
	"time"
)

// TestCollectivesSingleRankWorld exercises every collective on a P=1
// world, where the rendezvous short-circuits.
func TestCollectivesSingleRankWorld(t *testing.T) {
	stats := Run(1, DefaultModel(), func(c *Comm) {
		c.Barrier()
		if got := c.Bcast(0, "only", 4).(string); got != "only" {
			t.Error("bcast on P=1")
		}
		if got := AllReduce(c, int64(7), 8, SumInt64); got != 7 {
			t.Errorf("allreduce on P=1: %d", got)
		}
		if got := AllGather(c, 42, 8); len(got) != 1 || got[0] != 42 {
			t.Errorf("allgather on P=1: %v", got)
		}
		if got := Concat(AllGatherV(c, []int32{1, 2}, 4)); len(got) != 2 {
			t.Errorf("allgatherv on P=1: %v", got)
		}
		if got := AllToAllV(c, [][]int32{{9}}, 4); len(got) != 1 || got[0][0] != 9 {
			t.Errorf("alltoallv on P=1: %v", got)
		}
		grid := GridFor(1)
		if got := HaloExchange(c, grid, nil, nil); len(got) != 0 {
			t.Errorf("halo on 1x1 grid: %v", got)
		}
	})
	if len(stats) != 1 {
		t.Fatalf("stats %v", stats)
	}
}

// TestEmptyPayloadCollectives checks variable-length collectives where
// every rank contributes nothing.
func TestEmptyPayloadCollectives(t *testing.T) {
	p := 4
	Run(p, DefaultModel(), func(c *Comm) {
		parts := AllGatherV(c, []int32(nil), 4)
		if len(parts) != p || len(Concat(parts)) != 0 {
			t.Errorf("empty allgatherv: %v", parts)
		}
		dest := make([][]int32, p)
		got := AllToAllV(c, dest, 4)
		for r, g := range got {
			if len(g) != 0 {
				t.Errorf("empty alltoallv from %d: %v", r, g)
			}
		}
	})
}

// TestNestedPrefixSubComms scopes collectives through two levels of
// prefix sub-communicators while the full world stays consistent.
func TestNestedPrefixSubComms(t *testing.T) {
	p := 8
	sums4 := make([]int64, p)
	sums2 := make([]int64, p)
	Run(p, DefaultModel(), func(c *Comm) {
		sub4 := c.SubComm(4)
		if c.Rank() >= 4 {
			if sub4 != nil {
				t.Error("non-member got subcomm")
			}
			return
		}
		sums4[c.Rank()] = AllReduce(sub4, int64(1), 8, SumInt64)
		sub2 := sub4.SubComm(2)
		if c.Rank() >= 2 {
			if sub2 != nil {
				t.Error("rank >= 2 got nested subcomm")
			}
			return
		}
		sums2[c.Rank()] = AllReduce(sub2, int64(10), 8, SumInt64)
	})
	for r := 0; r < 4; r++ {
		if sums4[r] != 4 {
			t.Fatalf("rank %d sub4 sum %d", r, sums4[r])
		}
	}
	for r := 0; r < 2; r++ {
		if sums2[r] != 20 {
			t.Fatalf("rank %d sub2 sum %d", r, sums2[r])
		}
	}
}

// TestPanickingRankUnblocksReceivers is the regression test for the
// pre-fault-tolerance behaviour: a rank panicking while another rank
// waits on it used to hang Run forever. Now the panic must propagate
// out of Run promptly, with the waiting rank torn down.
func TestPanickingRankUnblocksReceivers(t *testing.T) {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Run(3, DefaultModel(), func(c *Comm) {
			if c.Rank() == 1 {
				panic("boom")
			}
			c.Recv(1) // would previously block forever
		})
	}()
	select {
	case e := <-done:
		if e == nil {
			t.Fatal("Run returned without re-raising the rank panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung on a panicking rank")
	}
}

// TestPanickingRankReportsViaRunChecked is the checked-variant twin: the
// panic comes back as a RankError instead of a panic, and blocked
// collectives are drained.
func TestPanickingRankReportsViaRunChecked(t *testing.T) {
	_, err := RunChecked(4, DefaultModel(), func(c *Comm) {
		if c.Rank() == 2 {
			panic("kaput")
		}
		c.Barrier() // rank 2 never joins
	})
	if err == nil {
		t.Fatal("expected error")
	}
	re, ok := err.(*RankError)
	if !ok || re.Rank != 2 {
		t.Fatalf("want RankError at rank 2, got %v", err)
	}
}
