package mpi

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geometry"
)

// collProbe is everything one rank observed from the mixed collective
// body below: every reduction flavour the pipeline uses (word-path
// types and boxed types), gathers, an AllToAllV, a Bcast, a
// sub-communicator reduction, and the rank's final RankStats.
type collProbe struct {
	sum   float64
	mx    float64
	vec   geometry.Vec2
	arr   [3]float64
	i64   int64
	i     int
	str   string // boxed path: concatenation is order-sensitive
	gath  []float64
	gathV []int32
	a2a   []int32
	bcast int
	sub   float64
	stats RankStats
}

// collBody exercises the full collective surface with order-sensitive
// payloads (float sums pick up different rounding under any other
// combine order, string concat under any other rank order).
func collBody(p int) []collProbe {
	probes := make([]collProbe, p)
	stats := Run(p, DefaultModel(), func(c *Comm) {
		r := c.Rank()
		pr := &probes[r]
		pr.sum = AllReduce(c, 0.1*float64(r)+1e-12*float64(r*r), 8, SumFloat64)
		pr.mx = AllReduce(c, math.Sin(float64(r)), 8, MaxFloat64)
		pr.vec = AllReduce(c, geometry.Vec2{X: 0.3 * float64(r), Y: -0.7 / float64(r+1)}, 16,
			func(a, b geometry.Vec2) geometry.Vec2 { return geometry.Vec2{X: a.X + b.X, Y: a.Y + b.Y} })
		pr.arr = AllReduce(c, [3]float64{float64(r), 1.0 / float64(r+1), math.Cos(float64(r))}, 24,
			func(a, b [3]float64) [3]float64 { return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]} })
		pr.i64 = Reduce(c, int64(r*r+1), 8, SumInt64)
		pr.i = AllReduce(c, r+1, 8, func(a, b int) int { return a ^ (b * 31) })
		pr.str = AllReduce(c, fmt.Sprintf("%x", r%16), 1, func(a, b string) string { return a + b })
		c.Barrier()
		pr.gath = AllGather(c, float64(r)*1.5, 8)
		pr.gathV = Concat(AllGatherV(c, make([]int32, r%3+1), 4))
		dest := make([][]int32, p)
		for d := 0; d < p; d++ {
			if (r+d)%3 == 0 && d != r {
				dest[d] = []int32{int32(r), int32(d)}
			}
		}
		for src, got := range AllToAllV(c, dest, 4) {
			if src != r && len(got) > 0 {
				pr.a2a = append(pr.a2a, got...)
			}
		}
		pr.bcast = c.Bcast(p/2, r*3, 8).(int)
		if sub := c.SubComm((p + 1) / 2); sub != nil {
			pr.sub = AllReduce(sub, 1.0/float64(r+2), 8, SumFloat64)
		}
		c.Barrier()
	})
	for r := range probes {
		probes[r].stats = stats[r]
	}
	return probes
}

// TestCollectiveFaninMatchesLegacy is the engine bit-identity contract:
// the fan-in engine (including its word fast path) must reproduce the
// legacy gather-all rendezvous exactly — results compared through
// Float64bits, clocks and traffic through RankStats — at every
// communicator size the suite sweeps, up to P = 1024.
func TestCollectiveFaninMatchesLegacy(t *testing.T) {
	for _, p := range []int{1, 4, 64, 256, 1024} {
		if p > 64 && testing.Short() {
			continue
		}
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			defer SetCollectiveEngine(SetCollectiveEngine(CollectivesLegacy))
			want := collBody(p)
			SetCollectiveEngine(CollectivesFanin)
			got := collBody(p)
			for r := range want {
				w, g := want[r], got[r]
				if math.Float64bits(w.sum) != math.Float64bits(g.sum) ||
					math.Float64bits(w.mx) != math.Float64bits(g.mx) ||
					math.Float64bits(w.sub) != math.Float64bits(g.sub) {
					t.Fatalf("rank %d float reductions differ: legacy (%v,%v,%v) fanin (%v,%v,%v)",
						r, w.sum, w.mx, w.sub, g.sum, g.mx, g.sub)
				}
				if w.vec != g.vec || w.arr != g.arr || w.i64 != g.i64 || w.i != g.i ||
					w.str != g.str || w.bcast != g.bcast {
					t.Fatalf("rank %d reductions differ:\n legacy %+v\n fanin  %+v", r, w, g)
				}
				if !reflect.DeepEqual(w.gath, g.gath) || !reflect.DeepEqual(w.gathV, g.gathV) ||
					!reflect.DeepEqual(w.a2a, g.a2a) {
					t.Fatalf("rank %d gathers differ:\n legacy %+v\n fanin  %+v", r, w, g)
				}
				if w.stats != g.stats {
					t.Fatalf("rank %d stats differ:\n legacy %+v\n fanin  %+v", r, w.stats, g.stats)
				}
			}
		})
	}
}

// TestDeepPendingSamePeerOrder pins the mailbox contract the ring
// rewrite must preserve: messages from the same peer are received in
// send order even when a deep backlog of them is parked in the pending
// ring (routed there by an out-of-order receive) and further messages
// keep arriving in the mailbox while the backlog drains.
func TestDeepPendingSamePeerOrder(t *testing.T) {
	const n = 200 // far beyond the initial ring capacity: forces growth
	Run(3, DefaultModel(), func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				c.Send(1, i, 8)
			}
			c.Barrier()
			for i := n; i < 2*n; i++ {
				c.Send(1, i, 8)
			}
		case 2:
			c.Barrier()
			c.Send(1, "go", 8)
		case 1:
			c.Barrier()
			// Receiving from rank 2 first drains the whole mailbox —
			// rank 0's backlog is routed into its pending ring.
			if got := c.Recv(2); got != "go" {
				t.Errorf("rank 1: expected signal from rank 2, got %v", got)
			}
			// The second batch from rank 0 lands in the mailbox while the
			// first drains from pending; order must still be global send
			// order.
			for i := 0; i < 2*n; i++ {
				if got := c.Recv(0).(int); got != i {
					t.Fatalf("rank 1: message %d arrived as %d (reordered)", i, got)
				}
			}
		}
	})
}

// TestCollectiveSteadyStateAllocs pins the fan-in engine's headline
// property: after warm-up, collectives allocate nothing — on any rank,
// not just the caller's. The legacy engine boxes one contribution per
// rank per collective (P allocations per op), so the threshold below
// fails it by two orders of magnitude.
func TestCollectiveSteadyStateAllocs(t *testing.T) {
	const p, ops = 64, 400
	defer SetCollectiveEngine(SetCollectiveEngine(CollectivesFanin))
	var m0, m1 runtime.MemStats
	Run(p, DefaultModel(), func(c *Comm) {
		acc := float64(c.Rank())
		for i := 0; i < 4; i++ { // warm the rendezvous and the word path
			acc = AllReduce(c, acc*0.5, 8, SumFloat64)
			c.Barrier()
		}
		c.Barrier()
		if c.Rank() == 0 {
			// Peers are parked in the barrier below: quiescent.
			runtime.GC()
			runtime.ReadMemStats(&m0)
		}
		c.Barrier()
		for i := 0; i < ops; i++ {
			acc = AllReduce(c, acc*0.5, 8, SumFloat64)
			c.Barrier()
		}
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
		}
		c.Barrier()
	})
	allocs := m1.Mallocs - m0.Mallocs
	// 2·ops collectives over 64 ranks would be ≥ 51200 boxed allocations
	// on the legacy engine; the fan-in engine's budget is runtime noise.
	if allocs > 200 {
		t.Fatalf("steady-state collectives allocated %d times over %d ops (want ~0)", allocs, 2*ops)
	}
}

// TestParseCollectiveEngine pins the -collectives flag surface.
func TestParseCollectiveEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CollectiveEngine
	}{
		{"", CollectivesFanin}, {"fanin", CollectivesFanin}, {"legacy", CollectivesLegacy},
	} {
		got, err := ParseCollectiveEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCollectiveEngine(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseCollectiveEngine("bogus"); err == nil {
		t.Error("ParseCollectiveEngine(bogus) did not fail")
	}
	if CollectivesFanin.String() != "fanin" || CollectivesLegacy.String() != "legacy" {
		t.Error("engine String() names drifted from the flag surface")
	}
}
