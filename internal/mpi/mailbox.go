package mpi

import "sync"

// Point-to-point delivery plumbing: growable message rings instead of
// channels. The historical implementation gave every receiver a
// buffered channel of capacity 2P+64, which is O(P²) memory across the
// world (126 MB of inbox buffers alone at P = 1024) and makes senders
// block on host backpressure that has no modeled meaning. A mailbox is
// a mutex-guarded ring the sender appends to in O(1) and the receiver
// drains in batches; it grows on demand, so sends never block and the
// initial per-rank footprint is a slab-carved 16-message ring.
//
// The per-source pending queues use the same ring (receiver-owned, no
// lock): dequeueing advances a head index instead of the former O(n)
// `copy(q, q[1:])` shift, so deep out-of-order backlogs pop in O(1)
// while preserving same-peer FIFO order exactly.

// mailboxSlabCap is the initial per-rank mailbox capacity, carved out
// of one world-wide slab at spin-up. Must be a power of two.
const mailboxSlabCap = 16

// msgRing is a growable FIFO ring of messages. The zero value is an
// empty ring that allocates its first buffer on push; the buffer length
// is always a power of two so index wrapping is a mask.
type msgRing struct {
	buf  []message
	head int
	n    int
}

func (q *msgRing) push(m message) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
	q.n++
}

// pop removes and returns the oldest message, zeroing its slot so the
// ring never pins a popped payload for the GC.
func (q *msgRing) pop() (message, bool) {
	if q.n == 0 {
		return message{}, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = message{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return m, true
}

func (q *msgRing) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]message, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// mailbox is one rank's incoming-message ring, shared by all senders.
type mailbox struct {
	mu sync.Mutex
	q  msgRing
}

// push appends a message; the caller follows up with a wake token on
// the receiver's wake channel. Never blocks: the ring grows instead,
// since send-side backpressure was host scheduling, never model.
func (mb *mailbox) push(m message) {
	mb.mu.Lock()
	mb.q.push(m)
	mb.mu.Unlock()
}

// drainMatch empties this rank's mailbox in arrival order, routing
// every message to its per-source pending ring except the first one
// from `from`, which is returned directly. Draining everything (rather
// than stopping at the match) keeps the shared ring short and the
// receiver's lock hold bounded by the backlog it already owns.
func (c *Comm) drainMatch(from int) (message, bool) {
	st := c.state
	mb := &st.box
	var out message
	found := false
	mb.mu.Lock()
	for {
		m, ok := mb.q.pop()
		if !ok {
			break
		}
		if !found && m.src == from {
			out, found = m, true
			continue
		}
		st.enqueuePending(m)
	}
	mb.mu.Unlock()
	return out, found
}

// enqueuePending files an out-of-order message under its source. Only
// the owning goroutine touches pending rings, and both the map and the
// rings are lazy: a rank that only ever receives in arrival order
// allocates neither.
func (st *rankState) enqueuePending(m message) {
	if st.pending == nil {
		st.pending = make(map[int]*msgRing, 8)
	}
	q := st.pending[m.src]
	if q == nil {
		q = &msgRing{}
		st.pending[m.src] = q
	}
	q.push(m)
}

// takePending pops the oldest queued message from `from`, if any. O(1):
// the ring advances its head index in place.
func (c *Comm) takePending(from int) (message, bool) {
	q := c.state.pending[from]
	if q == nil {
		return message{}, false
	}
	return q.pop()
}
