package mpi

import (
	"fmt"
	"sync/atomic"
)

// CollectiveEngine selects the rendezvous implementation behind every
// collective (Barrier, Bcast, AllReduce*, AllGather*, SyncCost*, the
// AllToAllV count exchange). Like the batching / parallel-build /
// replay-mode hooks before it, the engine is a pure host-performance
// knob: modeled clocks, combine order, traffic, and fault positions are
// identical under both engines by construction, and
// TestCollectiveFaninMatchesLegacy pins that bit-for-bit up to
// P = 1024.
type CollectiveEngine int32

const (
	// CollectivesFanin is the default high-P engine: per-rank
	// generation-stamped arrival slots with inline (unboxed) storage for
	// the hot reduction payloads, one rank-index-ordered combine by the
	// final arriver with hostpar-chunked scans at large P, and a
	// token-broadcast wake that never reacquires the rendezvous lock.
	// Steady-state collectives allocate nothing.
	CollectivesFanin CollectiveEngine = iota
	// CollectivesLegacy is the historical engine kept for differential
	// tests and benchmarks: contributions box through `any` into a
	// shared slot array under one mutex, and completion broadcasts a
	// sync.Cond every waiter reacquires serially.
	CollectivesLegacy
)

func (e CollectiveEngine) String() string {
	if e == CollectivesLegacy {
		return "legacy"
	}
	return "fanin"
}

// ParseCollectiveEngine parses a -collectives flag value.
func ParseCollectiveEngine(s string) (CollectiveEngine, error) {
	switch s {
	case "", "fanin":
		return CollectivesFanin, nil
	case "legacy":
		return CollectivesLegacy, nil
	}
	return 0, fmt.Errorf("unknown collective engine %q (want fanin or legacy)", s)
}

// collEngine is the process-wide setting, sampled once per world at
// RunChecked; a world never changes engine mid-run.
var collEngine atomic.Int32

// SetCollectiveEngine selects the engine for subsequent worlds and
// returns the previous setting. Mirrors SetReplayMode: a process-global
// host-performance knob that must never change modeled results.
func SetCollectiveEngine(e CollectiveEngine) CollectiveEngine {
	return CollectiveEngine(collEngine.Swap(int32(e)))
}

// Collectives returns the current collective engine. Cache keys that
// fingerprint process-global knobs read it.
func Collectives() CollectiveEngine { return CollectiveEngine(collEngine.Load()) }
