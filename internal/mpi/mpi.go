// Package mpi implements the custom message-passing layer this
// reproduction uses in place of MPI. A World runs P simulated ranks,
// each on its own goroutine, communicating through point-to-point
// messages and MPI-style collectives (Barrier, Bcast, Reduce,
// AllReduce, AllGather) over prefix sub-communicators.
//
// Alongside the real data movement, every rank carries a virtual clock
// charged with a LogP-style cost model: local computation costs
// PerOp seconds per charged operation, a point-to-point message costs
// Latency + PerByte·bytes, and collectives cost their standard
// tree/ring formulas. Collectives also synchronise virtual clocks to
// the participating maximum, so the final per-rank clock is exactly the
// bulk-synchronous execution time of the algorithm on a P-processor
// machine with those machine constants — the quantity Section 3.1 of
// the paper analyses. Reported "execution times" throughout the
// benchmark harness are maxima of these clocks, not wall time, which is
// how a 1024-rank sweep runs on a laptop while preserving the paper's
// scalability shapes.
//
// Determinism: messages are matched by explicit source, reductions
// combine contributions in rank order, and no rank ever waits on "any
// source", so clocks and algorithm outputs are independent of the Go
// scheduler.
//
// Host scaling: the hot paths are O(P) total, not O(P²). Per-rank state
// lives in slab-backed arenas (one rankState slice, one Comm slice, one
// mailbox slab), point-to-point delivery uses growable message rings
// with O(1) dequeue instead of per-receiver channels with O(P) buffers,
// and collectives rendezvous through generation-stamped arrival slots
// combined once by the last arriver (see collfanin.go; the historical
// mutex+cond engine is kept behind SetCollectiveEngine for differential
// testing). All of it is host-side only: modeled clocks, combine order,
// and traffic are bit-identical across engines, replay modes, and
// worker counts.
//
// Failure semantics: the runtime is a failure domain, not just a
// simulator. A rank that panics (or is killed by an injected fault, see
// FaultPlan) poisons the world: every other rank blocked in a receive
// or collective is woken and torn down, and RunChecked returns a
// structured RankError instead of hanging or re-panicking. A stall with
// every live rank blocked and no progress (a genuine deadlock: a
// receive with no matching send, a collective a dead rank will never
// join) is detected by a watchdog (Model.Watchdog) that aborts the
// world with a per-rank diagnostic dump.
package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Model holds the machine constants of the simulated cluster.
type Model struct {
	Latency float64 // ts: seconds per message / per collective hop
	PerByte float64 // tw: seconds per byte of message payload
	PerOp   float64 // seconds per charged unit of local computation
	// PerPeer is the per-destination posting/packing overhead of an
	// irregular vector exchange (MPI_Alltoallv-style), the "o·P" term
	// of LogGP-like models: every such exchange costs PerPeer·P on top
	// of latency and bandwidth. This term is what makes multilevel
	// partitioners with per-level irregular exchanges degrade once
	// N/P gets small.
	PerPeer float64

	// Watchdog is the real-time stall window of the deadlock watchdog:
	// when every live rank stays blocked on the same operation with no
	// progress anywhere for this long, the world is aborted with a
	// DeadlockError. Zero selects DefaultWatchdogWindow; a negative
	// value disables the watchdog. The watchdog never touches virtual
	// clocks.
	Watchdog time.Duration
	// Faults optionally injects deterministic failures into the run;
	// nil (the default) runs fault-free. See FaultPlan.
	Faults *FaultPlan
	// Reliable optionally enables the self-healing messaging layer:
	// point-to-point sends carry per-link sequence numbers and dropped
	// or badly delayed messages are healed by deterministic
	// retransmission with bounded exponential backoff instead of
	// deadlocking into the watchdog. See Reliability. With zero faults
	// firing the layer never touches clocks, so results stay
	// bit-identical to an unreliable run.
	Reliable *Reliability
	// Trace optionally records structured per-rank events (sends,
	// receives, collectives with their ts/tw/to cost split, phase
	// spans, faults) into the given recorder. Tracing is passive: it
	// never touches virtual clocks, so a traced run is bit-identical to
	// an untraced one. Use one Recorder per run.
	Trace *trace.Recorder
}

// DefaultModel returns constants representative of the paper's testbed
// (2.66 GHz Nehalem nodes on QDR InfiniBand): ~2 µs MPI latency,
// ~3 GB/s effective bandwidth, and ~1.5 ns per charged graph operation
// (a charged operation is an edge traversal with a handful of floating
// point operations, not a single instruction).
func DefaultModel() Model {
	return Model{
		Latency: 2.0e-6,
		PerByte: 0.33e-9,
		PerOp:   1.5e-9,
		PerPeer: 0.2e-6,
	}
}

// RankStats is the per-rank outcome of a World run.
type RankStats struct {
	Rank      int
	Time      float64 // final virtual clock, seconds
	CommTime  float64 // portion of Time spent in (or waiting on) communication
	BytesSent int64   // payload bytes this rank sent point-to-point
	Messages  int64   // point-to-point messages this rank sent
	Events    int64   // communication events started (fault-plan positions passed)
}

// MaxTime returns the largest virtual clock across ranks — the modeled
// parallel execution time.
func MaxTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.Time > mx {
			mx = s.Time
		}
	}
	return mx
}

// MaxCommTime returns the largest per-rank communication time.
func MaxCommTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.CommTime > mx {
			mx = s.CommTime
		}
	}
	return mx
}

type message struct {
	src     int
	seq     int64 // per-link sequence number (-1 when Model.Reliable is nil)
	data    any
	arrival float64 // virtual time at which the payload is available
	cost    float64 // modeled transfer cost (Latency + PerByte·bytes, plus healed backoff)
	bytes   int64   // modeled payload size (trace/invariant bookkeeping)
}

// Interned operation names: blocking paths publish the op to the
// watchdog through an atomic pointer, and a package-level *string makes
// that publication allocation-free.
func internOp(s string) *string { return &s }

var (
	opSend             = internOp("Send")
	opRecv             = internOp("Recv")
	opSendVec          = internOp("SendVec")
	opRecvVec          = internOp("RecvVec")
	opNeighborExchange = internOp("NeighborExchange")
	opHaloExchange     = internOp("HaloExchange")
	opBarrier          = internOp("Barrier")
	opBcast            = internOp("Bcast")
	opSyncCost         = internOp("SyncCost")
	opAllReduce        = internOp("AllReduce")
	opReduce           = internOp("Reduce")
	opAllReduceSlice   = internOp("AllReduceSlice")
	opAllGather        = internOp("AllGather")
	opAllGatherV       = internOp("AllGatherV")
	opAllToAllV        = internOp("AllToAllV")
	opAllToAllVCounts  = internOp("AllToAllV.counts")
	phaseRestore       = internOp("restore")
)

// rankState is the per-rank mutable state shared by all Comms of that
// rank (full communicator and sub-communicators alike). All rankStates
// of a world live in one slab (World.ranks), and their initial mailbox
// rings are carved from a second slab, so spinning up P ranks costs a
// handful of arena allocations instead of O(P) heap graphs of small
// objects. Point-to-point delivery uses one mailbox ring per receiver
// (not one channel per rank pair, nor an O(P)-buffered channel per
// rank, both quadratic in P); messages are matched to explicit sources
// through the pending rings, which only the owning goroutine touches.
type rankState struct {
	clock     float64
	commTime  float64
	bytesSent int64
	messages  int64

	box     mailbox          // incoming messages, appended by senders
	wake    chan struct{}    // cap-1 token: "something you may wait on changed"
	pending map[int]*msgRing // per-source out-of-order queues; owner-only, lazy

	events int64  // communication events so far (fault-plan positions)
	phase  string // set via Comm.SetPhase; read only by the owning goroutine
	wait   waitRec

	// slotHeld tracks whether this rank currently holds a batched-replay
	// compute slot (see replay.go); owning goroutine only.
	slotHeld bool

	// Per-link sequence counters of the reliability layer, carved from
	// one slab only when Model.Reliable is set: seqTo[r] numbers the next
	// send to rank r, seqFrom[r] the next expected receive from rank r.
	// Pure bookkeeping — never charged to clocks.
	seqTo   []int64
	seqFrom []int64

	tr *trace.RankTrace // nil unless Model.Trace is set; owning goroutine only
}

// World is a group of simulated ranks. Create one per parallel run via
// Run or RunChecked.
type World struct {
	size  int
	model Model

	// legacyColl is the collective engine sampled at RunChecked: false
	// selects the fan-in engine (collfanin.go), true the historical
	// mutex+cond engine (colllegacy.go). A world never changes engine
	// mid-run.
	legacyColl bool

	collMu    sync.Mutex
	colls     map[int]*collective // legacy rendezvous, keyed by communicator size
	fcolls    map[int]*faninColl  // fan-in rendezvous for sub-communicator sizes
	worldColl *faninColl          // fan-in rendezvous for the full communicator

	ranks []rankState // the rank arena: one slab, indexed by rank
	comms []Comm      // the Comm arena: one slab, indexed by rank

	// gate is the batched-replay admission gate (nil in goroutine mode):
	// a buffered channel holding one token per concurrently runnable
	// rank. See replay.go.
	gate chan struct{}

	abortCh   chan struct{}
	abortOnce sync.Once
	aborted   atomic.Bool
	abortErr  atomic.Pointer[RankError]
	progress  atomic.Int64 // bumps whenever any rank completes a blocking op
}

// rankPtr returns the rank's state in the arena.
func (w *World) rankPtr(r int) *rankState { return &w.ranks[r] }

// Run executes body on p simulated ranks and returns their stats in
// rank order. body must communicate only through the provided Comm.
// Any failure — a rank panic, an injected fault, a watchdog-detected
// deadlock — is re-raised as a panic in the caller after all goroutines
// stop, so a failing algorithm fails the test that drives it. Drivers
// that want to survive failures use RunChecked instead.
func Run(p int, model Model, body func(*Comm)) []RankStats {
	stats, err := RunChecked(p, model, body)
	if err != nil {
		panic(fmt.Sprintf("mpi: %v", err))
	}
	return stats
}

// RunChecked executes body on p simulated ranks and returns their stats
// in rank order. Unlike Run it never panics on rank failure and never
// hangs: a panicking rank is converted into a poison message that
// unblocks every other rank (receives and in-flight collectives), all
// goroutines are joined, and the failure comes back as a *RankError
// identifying the rank, its phase (Comm.SetPhase), and the cause. A
// stalled world (every live rank blocked, no progress for
// Model.Watchdog) is aborted by the watchdog with a *DeadlockError
// wrapped in the returned *RankError. The returned stats are the
// clocks at teardown — complete for fault-free runs, partial otherwise.
func RunChecked(p int, model Model, body func(*Comm)) ([]RankStats, error) {
	if p <= 0 {
		panic("mpi: Run with non-positive size")
	}
	w := &World{
		size:       p,
		model:      model,
		legacyColl: Collectives() == CollectivesLegacy,
		abortCh:    make(chan struct{}),
	}
	w.gate = newStepGate(p)
	if !w.legacyColl {
		w.worldColl = newFaninColl(p)
	}
	var traces []*trace.RankTrace
	if model.Trace != nil {
		traces = model.Trace.Attach(p)
	}
	// The rank arena: every per-rank object that scales with P comes out
	// of a world-wide slab — the rankStates themselves, their Comms,
	// their initial mailbox rings, and (when reliable) the per-link
	// sequence counters. Only the cap-1 wake channels remain individual
	// allocations, O(P) total.
	w.ranks = make([]rankState, p)
	w.comms = make([]Comm, p)
	ringSlab := make([]message, p*mailboxSlabCap)
	var seqSlab []int64
	if model.Reliable != nil {
		seqSlab = make([]int64, 2*p*p)
	}
	for i := range w.ranks {
		st := &w.ranks[i]
		st.box.q.buf = ringSlab[i*mailboxSlabCap : (i+1)*mailboxSlabCap : (i+1)*mailboxSlabCap]
		st.wake = make(chan struct{}, 1)
		if seqSlab != nil {
			st.seqTo = seqSlab[2*i*p : (2*i+1)*p : (2*i+1)*p]
			st.seqFrom = seqSlab[(2*i+1)*p : (2*i+2)*p : (2*i+2)*p]
		}
		if traces != nil {
			st.tr = traces[i]
		}
		w.comms[i] = Comm{world: w, rank: i, size: p, state: st}
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			comm := &w.comms[rank]
			st := comm.state
			defer wg.Done()
			defer func() {
				e := recover()
				// A finished (or dying) rank must hand its batched-replay
				// compute slot on, whatever path got it here.
				comm.releaseSlot()
				st.wait.publish(waitDone, nil, 0, 0, 0, st.clock)
				w.progress.Add(1)
				if st.tr != nil {
					st.tr.Finish(st.clock, st.commTime, st.bytesSent)
				}
				if e == nil {
					return
				}
				if _, poisoned := e.(abortSignal); poisoned {
					return // torn down by another rank's abort
				}
				err, ok := e.(error)
				if !ok {
					err = fmt.Errorf("panic: %v", e)
				}
				w.abort(&RankError{Rank: rank, Phase: st.phase, Err: err})
			}()
			comm.acquireSlot()
			body(comm)
		}(r)
	}
	window := model.Watchdog
	if window == 0 {
		window = WatchdogTimeout()
	}
	var stopWatchdog chan struct{}
	if window > 0 {
		stopWatchdog = make(chan struct{})
		go w.watchdog(window, stopWatchdog)
	}
	wg.Wait()
	if stopWatchdog != nil {
		close(stopWatchdog)
	}
	// A faulted teardown can strand in-flight pooled payloads in
	// mailboxes and pending rings; return them to their pools so long
	// fault sweeps keep the pooling ledger balanced (see PoolBalance).
	// All goroutines are joined, so the rings need no locks here.
	for i := range w.ranks {
		st := &w.ranks[i]
		for {
			m, ok := st.box.q.pop()
			if !ok {
				break
			}
			releasePayload(m.data)
		}
		for _, q := range st.pending {
			for {
				m, ok := q.pop()
				if !ok {
					break
				}
				releasePayload(m.data)
			}
		}
	}
	stats := make([]RankStats, p)
	for r := range w.ranks {
		st := &w.ranks[r]
		stats[r] = RankStats{
			Rank:      r,
			Time:      st.clock,
			CommTime:  st.commTime,
			BytesSent: st.bytesSent,
			Messages:  st.messages,
			Events:    st.events,
		}
	}
	if err := w.abortErr.Load(); err != nil {
		return stats, err
	}
	return stats, nil
}

// abort poisons the world exactly once: the error is recorded, the
// abort channel unblocks every rank parked in a receive or fan-in
// collective select, and every legacy collective is broadcast so
// cond-waiters wake, observe the abort, and tear down. Must not be
// called while holding a collective's mutex.
func (w *World) abort(err *RankError) {
	w.abortOnce.Do(func() {
		w.abortErr.Store(err)
		w.aborted.Store(true)
		close(w.abortCh)
		w.collMu.Lock()
		colls := make([]*collective, 0, len(w.colls))
		for _, coll := range w.colls {
			colls = append(colls, coll)
		}
		fcolls := make([]*faninColl, 0, len(w.fcolls)+1)
		if w.worldColl != nil {
			fcolls = append(fcolls, w.worldColl)
		}
		for _, fc := range w.fcolls {
			fcolls = append(fcolls, fc)
		}
		w.collMu.Unlock()
		for _, coll := range colls {
			coll.mu.Lock()
			coll.cond.Broadcast()
			coll.mu.Unlock()
		}
		for _, fc := range fcolls {
			fc.mu.Lock()
			fc.cond.Broadcast()
			fc.mu.Unlock()
		}
	})
}

// Comm is one rank's handle on a communicator. The zero value is not
// usable; Comms are produced by Run and SubComm.
type Comm struct {
	world *World
	rank  int // world rank (== communicator rank: subcomms are prefixes)
	size  int
	state *rankState
}

// Rank returns this rank's id within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Model returns the machine constants of the world.
func (c *Comm) Model() Model { return c.world.model }

// Elapsed returns this rank's current virtual clock in seconds.
func (c *Comm) Elapsed() float64 { return c.state.clock }

// CommElapsed returns the communication portion of the virtual clock.
func (c *Comm) CommElapsed() float64 { return c.state.commTime }

// RankSnapshot is a restorable capture of one rank's runtime counters —
// virtual clock, communication time, traffic totals, and the
// communication-event cursor that fault plans address. Together with
// the algorithm-level state a driver checkpoints alongside it (coarse
// graph handle, embedding coordinates, RNG seeds are part of Options),
// it is everything needed to re-enter the pipeline at a level boundary.
type RankSnapshot struct {
	Clock     float64
	CommTime  float64
	BytesSent int64
	Messages  int64
	Events    int64
}

// Snapshot captures this rank's runtime counters at a consistency point
// (a level or phase boundary, after a synchronising collective).
func (c *Comm) Snapshot() RankSnapshot {
	st := c.state
	return RankSnapshot{
		Clock:     st.clock,
		CommTime:  st.commTime,
		BytesSent: st.bytesSent,
		Messages:  st.messages,
		Events:    st.events,
	}
}

// Restore rewinds this rank's runtime counters to a snapshot taken in a
// previous (failed) world, the rollback half of checkpoint/restart
// recovery. It must be called before the rank's first communication in
// the new world. When tracing, the jump from clock 0 to the snapshot
// clock is recorded as a "restore" phase span plus a restore marker, so
// breakdown phase spans still tile the timeline exactly.
func (c *Comm) Restore(s RankSnapshot) {
	st := c.state
	if st.tr != nil {
		st.tr.PhaseChange("restore", st.clock, st.commTime, st.bytesSent)
	}
	st.clock = s.Clock
	st.commTime = s.CommTime
	st.bytesSent = s.BytesSent
	st.messages = s.Messages
	st.events = s.Events
	st.phase = "restore"
	st.wait.phase.Store(phaseRestore)
	if st.tr != nil {
		st.tr.RestoreMark(s.Clock, s.Events)
	}
}

// SetPhase labels the algorithm phase this rank is in ("coarsen",
// "embed", "partition", ...). The label is attached to RankErrors and
// watchdog diagnostics, and — when tracing — opens a new phase span at
// the current clock; it has no effect on clocks or semantics.
func (c *Comm) SetPhase(name string) {
	st := c.state
	if st.tr != nil && name != st.phase {
		st.tr.PhaseChange(name, st.clock, st.commTime, st.bytesSent)
	}
	st.phase = name
	st.wait.phase.Store(&name)
}

// Phase returns the current phase label.
func (c *Comm) Phase() string { return c.state.phase }

// Events returns the number of communication events this rank has
// started (the positions a FaultPlan addresses).
func (c *Comm) Events() int64 { return c.state.events }

// Abort poisons the world with a structured error and terminates the
// calling rank: every other rank is unblocked and torn down, and the
// enclosing RunChecked returns a *RankError wrapping err. Abort does
// not return.
func (c *Comm) Abort(err error) {
	c.world.abort(&RankError{Rank: c.rank, Phase: c.state.phase, Err: err})
	panic(abortSignal{})
}

// commEvent starts a communication operation: it advances the event
// counter, raises a scheduled kill fault, and returns any other fault
// scheduled for this position. Pure bookkeeping — clocks are untouched,
// so fault-free ranks keep bit-identical timings.
func (c *Comm) commEvent(op *string) *Fault {
	ev := c.state.events
	c.state.events++
	f := c.world.model.Faults.at(c.rank, ev)
	if f != nil {
		if c.state.tr != nil {
			c.state.tr.Fault(f.Kind.String(), *op, ev, c.state.clock)
		}
		if f.Kind == KillRank {
			panic(&InjectedFault{Rank: c.rank, Event: ev})
		}
	}
	return f
}

// beginWait publishes what this rank is about to block on; endWait
// clears it and bumps the world progress counter. Both are
// allocation-free: the record is a set of per-rank atomics (see
// waitRec), not a freshly boxed snapshot.
func (c *Comm) beginWait(kind int32, op *string, peer, size int, gen int64) {
	c.state.wait.publish(kind, op, int32(peer), int32(size), gen, c.state.clock)
}

func (c *Comm) endWait() {
	c.state.wait.publish(waitRunning, nil, 0, 0, 0, c.state.clock)
	c.world.progress.Add(1)
}

// Charge advances the virtual clock by ops charged operations of local
// computation.
func (c *Comm) Charge(ops float64) {
	c.state.clock += ops * c.world.model.PerOp
}

// ChargeTime advances the virtual clock by the given number of seconds
// of local computation (for costs not naturally expressed in ops).
func (c *Comm) ChargeTime(seconds float64) {
	c.state.clock += seconds
}

// SubComm returns a communicator over the first n world ranks, or nil
// if this rank is not a member. Point-to-point operations always use
// world rank ids; SubComm only scopes collectives.
func (c *Comm) SubComm(n int) *Comm {
	if n < 1 || n > c.world.size {
		panic(fmt.Sprintf("mpi: SubComm(%d) of world size %d", n, c.world.size))
	}
	if c.rank >= n {
		return nil
	}
	return &Comm{world: c.world, rank: c.rank, size: n, state: c.state}
}

// Send delivers data to rank `to`. bytes is the modeled payload size.
// The payload is available to the receiver at sender-clock + Latency +
// PerByte·bytes; the sender itself is charged the send overhead
// (Latency). Send never blocks: the receiver's mailbox ring grows on
// demand (send-side backpressure was host scheduling with no modeled
// meaning, and removing it removes a park point from the batched-replay
// gate).
func (c *Comm) Send(to int, data any, bytes int) {
	c.sendOp(to, data, bytes, opSend)
}

func (c *Comm) sendOp(to int, data any, bytes int, op *string) {
	if to == c.rank {
		panic("mpi: Send to self")
	}
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to rank %d of world size %d", to, c.world.size))
	}
	f := c.commEvent(op)
	m := c.world.model
	// Self-healing: with a reliability layer attached, wire faults on
	// this message are healed at the send site. The retransmission
	// protocol is not simulated turn by turn — its deterministic outcome
	// is: the receiver sees the payload arrive after the summed backoff
	// timeouts, and the sender is charged one extra Latency per
	// retransmission below (traced as a retry event).
	retries := 0
	backoff := 0.0
	if f != nil && m.Reliable != nil {
		switch f.Kind {
		case DropMessage:
			drops := f.Repeat
			if drops < 1 {
				drops = 1
			}
			if budget := m.Reliable.budget(); drops > budget {
				// Every retransmission within budget was dropped too: the
				// link is dead. Escalate to a rank failure so recovery
				// policies (respawn/shrink) can take over.
				releasePayload(data)
				panic(&RetryBudgetError{Rank: c.rank, To: to, Event: c.state.events - 1, Drops: drops, Budget: budget})
			}
			backoff = backoffTotal(m.Reliable.ackTimeout(m, bytes), drops)
			retries = drops
			f = nil
		case DelayMessage:
			if timeout := m.Reliable.ackTimeout(m, bytes); f.Delay > timeout {
				// The delayed copy misses the ack window: the sender times
				// out once and retransmits, and the fresh copy overtakes
				// the late original.
				backoff = timeout
				retries = 1
				f = nil
			}
		case TruncatePayload:
			// The payload checksum rejects the corrupted copy; the sender
			// times out once and retransmits intact.
			backoff = m.Reliable.ackTimeout(m, bytes)
			retries = 1
			f = nil
		}
	}
	cost := m.Latency + m.PerByte*float64(bytes) + backoff
	arrival := c.state.clock + cost
	deliver := true
	if f != nil {
		switch f.Kind {
		case DropMessage:
			deliver = false
		case DelayMessage:
			arrival += f.Delay
			cost += f.Delay
		case TruncatePayload:
			data = truncatePayload(data)
		}
	}
	seq := int64(-1)
	if c.state.seqTo != nil {
		seq = c.state.seqTo[to]
		c.state.seqTo[to]++
	}
	if deliver {
		dst := c.world.rankPtr(to)
		dst.box.push(message{src: c.rank, seq: seq, data: data, arrival: arrival, cost: cost, bytes: int64(bytes)})
		select {
		case dst.wake <- struct{}{}:
		default:
		}
	} else {
		// A dropped pooled payload never reaches a receiver's Release;
		// return it to its pool here so fault sweeps stay balanced.
		releasePayload(data)
	}
	// A dropped message still charges the sender: the fault is on the
	// wire, and no other rank's clock may move because of it.
	t0 := c.state.clock
	c.state.clock += m.Latency
	c.state.commTime += m.Latency
	c.state.bytesSent += int64(bytes)
	c.state.messages++
	if c.state.tr != nil {
		c.state.tr.Send(*op, to, int64(bytes), t0, c.state.clock, m.Latency)
	}
	if retries > 0 {
		// Each healed retransmission charges the sender one more send
		// overhead (Latency); the backoff itself is the receiver's wait
		// and is already folded into the message's arrival and cost.
		extra := float64(retries) * m.Latency
		rt0 := c.state.clock
		c.state.clock += extra
		c.state.commTime += extra
		if c.state.tr != nil {
			c.state.tr.Retry(*op, to, retries, int64(bytes), rt0, c.state.clock)
		}
	}
}

// Recv blocks until a message from rank `from` is available and returns
// its payload, advancing the virtual clock to the message arrival time
// (or leaving it unchanged if the message already arrived in virtual
// time). If the world aborts while waiting, the rank is torn down.
func (c *Comm) Recv(from int) any {
	return c.recvOp(from, opRecv)
}

func (c *Comm) recvOp(from int, op *string) any {
	c.commEvent(op)
	st := c.state
	msg, ok := c.takePending(from)
	if !ok {
		// Fast path: drain whatever is already queued without blocking
		// (and so without publishing a wait record for the watchdog).
		msg, ok = c.drainMatch(from)
	}
	if !ok {
		// Parking until the matching send arrives: the sender needs a
		// batched-replay compute slot to reach its send, so give ours up.
		c.releaseSlot()
		c.beginWait(waitRecv, op, from, 0, 0)
		for !ok {
			select {
			case <-st.wake:
				msg, ok = c.drainMatch(from)
			case <-c.world.abortCh:
				// Clear the wait record before tearing down: a stale
				// snapshot would otherwise feed the watchdog a misleading
				// deadlock dump during abort.
				c.endWait()
				panic(abortSignal{})
			}
		}
		c.endWait()
		c.acquireSlot()
	}
	if st.seqFrom != nil && msg.seq >= 0 {
		// The reliability layer numbers every link's messages; a gap here
		// would mean an undetected loss or reordering, which the healing
		// protocol is supposed to make impossible.
		if want := st.seqFrom[msg.src]; msg.seq != want {
			panic(fmt.Errorf("mpi: reliability: rank %d received message seq %d from rank %d, want %d (undetected loss or reordering)",
				c.rank, msg.seq, msg.src, want))
		}
		st.seqFrom[msg.src]++
	}
	t0 := st.clock
	advance := msg.arrival - st.clock
	if advance > 0 {
		st.clock = msg.arrival
	} else {
		advance = 0
	}
	// Communication time counts the transfer cost, capped by the actual
	// clock advance: waiting caused by load imbalance or late activation
	// is not communication.
	comm := msg.cost
	if advance < comm {
		comm = advance
	}
	st.commTime += comm
	if st.tr != nil {
		st.tr.Recv(*op, from, msg.bytes, t0, st.clock, comm)
	}
	return msg.data
}

// SendRecv performs a simultaneous exchange with partner: data flows
// both ways, as in MPI_Sendrecv. It is the deadlock-free primitive for
// halo exchanges on the processor grid.
func (c *Comm) SendRecv(partner int, data any, bytes int) any {
	c.Send(partner, data, bytes)
	return c.Recv(partner)
}

// log2ceil returns ceil(log2(n)) with log2ceil(1) == 0.
func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// collCost is the declared cost of one collective: total is the exact
// expression charged to the clock (computed precisely as it was before
// tracing existed, so traced and untraced runs stay bit-identical);
// ts/tw/to split the same cost into the paper's latency, bandwidth, and
// per-peer terms for the breakdown table, and bytes is the modeled
// payload volume. The split is informational only — ts+tw+to may differ
// from total in the last float bit, and only total is ever charged.
type collCost struct {
	total float64
	ts    float64
	tw    float64
	to    float64
	bytes int64
}

// collPrologue runs the shared front half of every collective: the
// communication event (fault positions), payload truncation or healed
// retransmission under an injected TruncatePayload, and the t0 clock
// snapshot for the trace span.
func (c *Comm) collPrologue(op *string, val any, cost collCost) (any, float64) {
	f := c.commEvent(op)
	if f != nil && f.Kind == TruncatePayload {
		if m := c.world.model; m.Reliable != nil {
			// Checksummed contribution: the corrupted copy is rejected
			// and retransmitted intact after one ack timeout. The late
			// rank's clock enters the rendezvous max, so the whole
			// collective absorbs the hiccup deterministically.
			timeout := m.Reliable.ackTimeout(m, int(cost.bytes))
			rt0 := c.state.clock
			c.state.clock += timeout
			c.state.commTime += timeout
			if c.state.tr != nil {
				c.state.tr.Retry(*op, -1, 1, cost.bytes, rt0, c.state.clock)
			}
		} else {
			val = truncatePayload(val)
		}
	}
	return val, c.state.clock
}

// collCharge runs the shared back half of every collective: advance the
// clock to the rendezvous completion time, attribute the collective's
// own cost (not imbalance waiting) to communication time, and emit the
// trace span.
func (c *Comm) collCharge(op *string, myGen int64, cost collCost, t0, done float64) {
	st := c.state
	charged := 0.0
	if done > st.clock {
		advance := done - st.clock
		st.clock = done
		// Only the collective's own cost counts as communication; the
		// remainder of the advance is waiting on slower ranks (load
		// imbalance or late activation).
		comm := cost.total
		if advance < comm {
			comm = advance
		}
		st.commTime += comm
		charged = comm
	}
	if st.tr != nil {
		st.tr.Coll(*op, c.size, myGen, cost.bytes, cost.ts, cost.tw, cost.to,
			t0, st.clock, charged)
	}
}

// runCollective performs the generation-matched rendezvous: every rank
// of the communicator contributes val; combine runs once, in rank
// order, when the last rank arrives; all ranks' clocks advance to
// max(clock) + cost.total and the combined value is returned to each.
// op names the collective in fault positions and watchdog diagnostics.
// The rendezvous itself is engine-dispatched (see SetCollectiveEngine);
// both engines produce bit-identical results and clocks.
func (c *Comm) runCollective(op *string, val any, combine func(vals []any) any, cost collCost) any {
	val, t0 := c.collPrologue(op, val, cost)
	if c.size == 1 {
		st := c.state
		st.clock += cost.total
		st.commTime += cost.total
		if st.tr != nil {
			st.tr.Coll(*op, 1, -1, cost.bytes, cost.ts, cost.tw, cost.to,
				t0, st.clock, cost.total)
		}
		return combine([]any{val})
	}
	if c.world.legacyColl {
		return c.legacyCollective(op, val, combine, cost, t0)
	}
	return c.faninBoxed(op, val, combine, cost, t0)
}

// wordsEligible reports whether typed collectives may take the unboxed
// word path: fan-in engine with no fault plan (payload truncation is
// only defined on boxed contributions, and fault sweeps must exercise
// the exact legacy semantics).
func (c *Comm) wordsEligible() bool {
	return !c.world.legacyColl && c.world.model.Faults == nil
}

// safeCombine runs combine, converting a panic into a returned value so
// callers can release locks before re-raising.
func safeCombine(combine func([]any) any, vals []any) (res any, panicked any) {
	defer func() {
		if e := recover(); e != nil {
			panicked = e
		}
	}()
	return combine(vals), nil
}

// Barrier synchronises all ranks of the communicator; cost is a
// log2(P)-depth tree of latencies.
func (c *Comm) Barrier() {
	m := c.world.model
	total := m.Latency * log2ceil(c.size)
	c.runCollective(opBarrier, nil, combineNil,
		collCost{total: total, ts: total})
}

// combineNil is the shared no-payload combine of Barrier and SyncCost;
// a package-level func value keeps those collectives allocation-free.
var combineNil = func([]any) any { return nil }

// Bcast distributes root's data to every rank. bytes is the payload
// size; cost is a binomial tree: (Latency + PerByte·bytes)·log2(P).
func (c *Comm) Bcast(root int, data any, bytes int) any {
	if root < 0 || root >= c.size {
		panic("mpi: Bcast root out of range")
	}
	m := c.world.model
	lg := log2ceil(c.size)
	return c.runCollective(opBcast, data, func(vals []any) any { return vals[root] },
		collCost{
			total: (m.Latency + m.PerByte*float64(bytes)) * lg,
			ts:    m.Latency * lg,
			tw:    m.PerByte * float64(bytes) * lg,
			bytes: int64(bytes),
		})
}

// phaseMarker supports PhaseTimer.
type PhaseTimer struct {
	c     *Comm
	t0    float64
	comm0 float64
}

// StartPhase snapshots the virtual clock so algorithms can attribute
// time to named phases (coarsening, embedding, partitioning, ...).
func (c *Comm) StartPhase() PhaseTimer {
	return PhaseTimer{c: c, t0: c.state.clock, comm0: c.state.commTime}
}

// Stop returns the total and communication virtual time elapsed since
// StartPhase.
func (t PhaseTimer) Stop() (total, comm float64) {
	return t.c.state.clock - t.t0, t.c.state.commTime - t.comm0
}

// ChargeComm advances the virtual clock by a modeled point-to-point
// communication cost (messages·Latency + bytes·PerByte) without moving
// data. Drivers use it when replaying the cost of a communication whose
// data dependencies the simulation has already satisfied (e.g. the
// replicated-topology coarsening exchange).
func (c *Comm) ChargeComm(messages, bytes int) {
	m := c.world.model
	d := float64(messages)*m.Latency + float64(bytes)*m.PerByte
	t0 := c.state.clock
	c.state.clock += d
	c.state.commTime += d
	if c.state.tr != nil {
		c.state.tr.Charge("ChargeComm", int64(bytes),
			float64(messages)*m.Latency, float64(bytes)*m.PerByte, t0, c.state.clock)
	}
}

// SyncCost synchronises the communicator like Barrier but charges the
// given collective cost (seconds) instead of the barrier tree formula.
// The cost is left unattributed in the trace breakdown; callers that
// know the ts/tw/to split use SyncCostParts.
func (c *Comm) SyncCost(cost float64) {
	c.runCollective(opSyncCost, nil, combineNil, collCost{total: cost})
}

// SyncCostParts is SyncCost with the charged total decomposed into the
// paper's latency (ts), bandwidth (tw), and per-peer (to) terms for the
// trace breakdown. total must be the exact value the caller would have
// passed to SyncCost — it is charged verbatim; the parts are
// informational only.
func (c *Comm) SyncCostParts(total, ts, tw, to float64) {
	c.runCollective(opSyncCost, nil, combineNil,
		collCost{total: total, ts: ts, tw: tw, to: to})
}

// CollectiveCost returns the modeled cost of a tree collective moving
// `bytes` payload over this communicator: (Latency + PerByte·bytes) ·
// ceil(log2 P).
func (c *Comm) CollectiveCost(bytes int) float64 {
	m := c.world.model
	return (m.Latency + m.PerByte*float64(bytes)) * log2ceil(c.size)
}
