// Package mpi implements the custom message-passing layer this
// reproduction uses in place of MPI. A World runs P simulated ranks,
// each on its own goroutine, communicating through point-to-point
// messages and MPI-style collectives (Barrier, Bcast, Reduce,
// AllReduce, AllGather) over prefix sub-communicators.
//
// Alongside the real data movement, every rank carries a virtual clock
// charged with a LogP-style cost model: local computation costs
// PerOp seconds per charged operation, a point-to-point message costs
// Latency + PerByte·bytes, and collectives cost their standard
// tree/ring formulas. Collectives also synchronise virtual clocks to
// the participating maximum, so the final per-rank clock is exactly the
// bulk-synchronous execution time of the algorithm on a P-processor
// machine with those machine constants — the quantity Section 3.1 of
// the paper analyses. Reported "execution times" throughout the
// benchmark harness are maxima of these clocks, not wall time, which is
// how a 1024-rank sweep runs on a laptop while preserving the paper's
// scalability shapes.
//
// Determinism: messages are matched by explicit source, reductions
// combine contributions in rank order, and no rank ever waits on "any
// source", so clocks and algorithm outputs are independent of the Go
// scheduler.
//
// Failure semantics: the runtime is a failure domain, not just a
// simulator. A rank that panics (or is killed by an injected fault, see
// FaultPlan) poisons the world: every other rank blocked in a receive,
// send, or collective is woken and torn down, and RunChecked returns a
// structured RankError instead of hanging or re-panicking. A stall with
// every live rank blocked and no progress (a genuine deadlock: a
// receive with no matching send, a collective a dead rank will never
// join) is detected by a watchdog (Model.Watchdog) that aborts the
// world with a per-rank diagnostic dump.
package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Model holds the machine constants of the simulated cluster.
type Model struct {
	Latency float64 // ts: seconds per message / per collective hop
	PerByte float64 // tw: seconds per byte of message payload
	PerOp   float64 // seconds per charged unit of local computation
	// PerPeer is the per-destination posting/packing overhead of an
	// irregular vector exchange (MPI_Alltoallv-style), the "o·P" term
	// of LogGP-like models: every such exchange costs PerPeer·P on top
	// of latency and bandwidth. This term is what makes multilevel
	// partitioners with per-level irregular exchanges degrade once
	// N/P gets small.
	PerPeer float64

	// Watchdog is the real-time stall window of the deadlock watchdog:
	// when every live rank stays blocked on the same operation with no
	// progress anywhere for this long, the world is aborted with a
	// DeadlockError. Zero selects DefaultWatchdogWindow; a negative
	// value disables the watchdog. The watchdog never touches virtual
	// clocks.
	Watchdog time.Duration
	// Faults optionally injects deterministic failures into the run;
	// nil (the default) runs fault-free. See FaultPlan.
	Faults *FaultPlan
	// Reliable optionally enables the self-healing messaging layer:
	// point-to-point sends carry per-link sequence numbers and dropped
	// or badly delayed messages are healed by deterministic
	// retransmission with bounded exponential backoff instead of
	// deadlocking into the watchdog. See Reliability. With zero faults
	// firing the layer never touches clocks, so results stay
	// bit-identical to an unreliable run.
	Reliable *Reliability
	// Trace optionally records structured per-rank events (sends,
	// receives, collectives with their ts/tw/to cost split, phase
	// spans, faults) into the given recorder. Tracing is passive: it
	// never touches virtual clocks, so a traced run is bit-identical to
	// an untraced one. Use one Recorder per run.
	Trace *trace.Recorder
}

// DefaultModel returns constants representative of the paper's testbed
// (2.66 GHz Nehalem nodes on QDR InfiniBand): ~2 µs MPI latency,
// ~3 GB/s effective bandwidth, and ~1.5 ns per charged graph operation
// (a charged operation is an edge traversal with a handful of floating
// point operations, not a single instruction).
func DefaultModel() Model {
	return Model{
		Latency: 2.0e-6,
		PerByte: 0.33e-9,
		PerOp:   1.5e-9,
		PerPeer: 0.2e-6,
	}
}

// RankStats is the per-rank outcome of a World run.
type RankStats struct {
	Rank      int
	Time      float64 // final virtual clock, seconds
	CommTime  float64 // portion of Time spent in (or waiting on) communication
	BytesSent int64   // payload bytes this rank sent point-to-point
	Messages  int64   // point-to-point messages this rank sent
	Events    int64   // communication events started (fault-plan positions passed)
}

// MaxTime returns the largest virtual clock across ranks — the modeled
// parallel execution time.
func MaxTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.Time > mx {
			mx = s.Time
		}
	}
	return mx
}

// MaxCommTime returns the largest per-rank communication time.
func MaxCommTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.CommTime > mx {
			mx = s.CommTime
		}
	}
	return mx
}

type message struct {
	src     int
	seq     int64 // per-link sequence number (-1 when Model.Reliable is nil)
	data    any
	arrival float64 // virtual time at which the payload is available
	cost    float64 // modeled transfer cost (Latency + PerByte·bytes, plus healed backoff)
	bytes   int64   // modeled payload size (trace/invariant bookkeeping)
}

// rankState is the per-rank mutable state shared by all Comms of that
// rank (full communicator and sub-communicators alike). Point-to-point
// delivery uses one buffered inbox per receiver (not one channel per
// rank pair, which is quadratic in P); messages are matched to explicit
// sources through the pending queues, which only the owning goroutine
// touches.
type rankState struct {
	clock     float64
	commTime  float64
	bytesSent int64
	messages  int64
	inbox     chan message
	pending   map[int][]message

	events int64  // communication events so far (fault-plan positions)
	phase  string // set via Comm.SetPhase; read only by the owning goroutine
	wait   atomic.Pointer[waitInfo]

	// slotHeld tracks whether this rank currently holds a batched-replay
	// compute slot (see replay.go); owning goroutine only.
	slotHeld bool

	// Per-link sequence counters of the reliability layer, allocated only
	// when Model.Reliable is set: seqTo[r] numbers the next send to rank
	// r, seqFrom[r] the next expected receive from rank r. Pure
	// bookkeeping — never charged to clocks.
	seqTo   []int64
	seqFrom []int64

	tr *trace.RankTrace // nil unless Model.Trace is set; owning goroutine only
}

// World is a group of simulated ranks. Create one per parallel run via
// Run or RunChecked.
type World struct {
	size  int
	model Model

	collMu sync.Mutex
	colls  map[int]*collective // keyed by communicator size

	ranks []*rankState

	// gate is the batched-replay admission gate (nil in goroutine mode):
	// a buffered channel holding one token per concurrently runnable
	// rank. See replay.go.
	gate chan struct{}

	abortCh   chan struct{}
	abortOnce sync.Once
	aborted   atomic.Bool
	abortErr  atomic.Pointer[RankError]
	progress  atomic.Int64 // bumps whenever any rank completes a blocking op
}

// collective is a reusable generation-counted rendezvous for the first
// `size` ranks of the world.
type collective struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	gen    int64
	count  int
	vals   []any
	clocks []float64
	costs  []float64
	result any
	done   float64 // clock at which the current generation completes
}

func newCollective(size int) *collective {
	c := &collective{
		size:   size,
		vals:   make([]any, size),
		clocks: make([]float64, size),
		costs:  make([]float64, size),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Run executes body on p simulated ranks and returns their stats in
// rank order. body must communicate only through the provided Comm.
// Any failure — a rank panic, an injected fault, a watchdog-detected
// deadlock — is re-raised as a panic in the caller after all goroutines
// stop, so a failing algorithm fails the test that drives it. Drivers
// that want to survive failures use RunChecked instead.
func Run(p int, model Model, body func(*Comm)) []RankStats {
	stats, err := RunChecked(p, model, body)
	if err != nil {
		panic(fmt.Sprintf("mpi: %v", err))
	}
	return stats
}

// RunChecked executes body on p simulated ranks and returns their stats
// in rank order. Unlike Run it never panics on rank failure and never
// hangs: a panicking rank is converted into a poison message that
// unblocks every other rank (receives, sends, and in-flight
// collectives), all goroutines are joined, and the failure comes back
// as a *RankError identifying the rank, its phase (Comm.SetPhase), and
// the cause. A stalled world (every live rank blocked, no progress for
// Model.Watchdog) is aborted by the watchdog with a *DeadlockError
// wrapped in the returned *RankError. The returned stats are the
// clocks at teardown — complete for fault-free runs, partial otherwise.
func RunChecked(p int, model Model, body func(*Comm)) ([]RankStats, error) {
	if p <= 0 {
		panic("mpi: Run with non-positive size")
	}
	w := &World{
		size:    p,
		model:   model,
		colls:   make(map[int]*collective),
		ranks:   make([]*rankState, p),
		abortCh: make(chan struct{}),
	}
	w.gate = newStepGate(p)
	// Inbox capacity must cover the worst transient backlog: every other
	// rank sending twice (two pipelined exchange phases) before this
	// rank drains.
	capacity := 2*p + 64
	var traces []*trace.RankTrace
	if model.Trace != nil {
		traces = model.Trace.Attach(p)
	}
	for i := range w.ranks {
		w.ranks[i] = &rankState{
			inbox:   make(chan message, capacity),
			pending: make(map[int][]message),
		}
		if model.Reliable != nil {
			w.ranks[i].seqTo = make([]int64, p)
			w.ranks[i].seqFrom = make([]int64, p)
		}
		if traces != nil {
			w.ranks[i].tr = traces[i]
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			st := w.ranks[rank]
			comm := &Comm{world: w, rank: rank, size: p, state: st}
			defer wg.Done()
			defer func() {
				e := recover()
				// A finished (or dying) rank must hand its batched-replay
				// compute slot on, whatever path got it here.
				comm.releaseSlot()
				st.wait.Store(&waitInfo{kind: waitDone, clock: st.clock, phase: st.phase})
				w.progress.Add(1)
				if st.tr != nil {
					st.tr.Finish(st.clock, st.commTime, st.bytesSent)
				}
				if e == nil {
					return
				}
				if _, poisoned := e.(abortSignal); poisoned {
					return // torn down by another rank's abort
				}
				err, ok := e.(error)
				if !ok {
					err = fmt.Errorf("panic: %v", e)
				}
				w.abort(&RankError{Rank: rank, Phase: st.phase, Err: err})
			}()
			comm.acquireSlot()
			body(comm)
		}(r)
	}
	window := model.Watchdog
	if window == 0 {
		window = WatchdogTimeout()
	}
	var stopWatchdog chan struct{}
	if window > 0 {
		stopWatchdog = make(chan struct{})
		go w.watchdog(window, stopWatchdog)
	}
	wg.Wait()
	if stopWatchdog != nil {
		close(stopWatchdog)
	}
	// A faulted teardown can strand in-flight pooled payloads in inboxes
	// and pending queues; return them to their pools so long fault sweeps
	// keep the pooling ledger balanced (see PoolBalance).
	for _, st := range w.ranks {
	drain:
		for {
			select {
			case m := <-st.inbox:
				releasePayload(m.data)
			default:
				break drain
			}
		}
		for _, q := range st.pending {
			for _, m := range q {
				releasePayload(m.data)
			}
		}
	}
	stats := make([]RankStats, p)
	for r, st := range w.ranks {
		stats[r] = RankStats{
			Rank:      r,
			Time:      st.clock,
			CommTime:  st.commTime,
			BytesSent: st.bytesSent,
			Messages:  st.messages,
			Events:    st.events,
		}
	}
	if err := w.abortErr.Load(); err != nil {
		return stats, err
	}
	return stats, nil
}

// abort poisons the world exactly once: the error is recorded, the
// abort channel unblocks every rank parked in a Send or Recv select,
// and every collective is broadcast so cond-waiters wake, observe the
// abort, and tear down. Must not be called while holding a collective's
// mutex.
func (w *World) abort(err *RankError) {
	w.abortOnce.Do(func() {
		w.abortErr.Store(err)
		w.aborted.Store(true)
		close(w.abortCh)
		w.collMu.Lock()
		colls := make([]*collective, 0, len(w.colls))
		for _, coll := range w.colls {
			colls = append(colls, coll)
		}
		w.collMu.Unlock()
		for _, coll := range colls {
			coll.mu.Lock()
			coll.cond.Broadcast()
			coll.mu.Unlock()
		}
	})
}

func (w *World) collectiveFor(size int) *collective {
	w.collMu.Lock()
	c, ok := w.colls[size]
	if !ok {
		c = newCollective(size)
		w.colls[size] = c
	}
	w.collMu.Unlock()
	return c
}

// Comm is one rank's handle on a communicator. The zero value is not
// usable; Comms are produced by Run and SubComm.
type Comm struct {
	world *World
	rank  int // world rank (== communicator rank: subcomms are prefixes)
	size  int
	state *rankState
}

// Rank returns this rank's id within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Model returns the machine constants of the world.
func (c *Comm) Model() Model { return c.world.model }

// Elapsed returns this rank's current virtual clock in seconds.
func (c *Comm) Elapsed() float64 { return c.state.clock }

// CommElapsed returns the communication portion of the virtual clock.
func (c *Comm) CommElapsed() float64 { return c.state.commTime }

// RankSnapshot is a restorable capture of one rank's runtime counters —
// virtual clock, communication time, traffic totals, and the
// communication-event cursor that fault plans address. Together with
// the algorithm-level state a driver checkpoints alongside it (coarse
// graph handle, embedding coordinates, RNG seeds are part of Options),
// it is everything needed to re-enter the pipeline at a level boundary.
type RankSnapshot struct {
	Clock     float64
	CommTime  float64
	BytesSent int64
	Messages  int64
	Events    int64
}

// Snapshot captures this rank's runtime counters at a consistency point
// (a level or phase boundary, after a synchronising collective).
func (c *Comm) Snapshot() RankSnapshot {
	st := c.state
	return RankSnapshot{
		Clock:     st.clock,
		CommTime:  st.commTime,
		BytesSent: st.bytesSent,
		Messages:  st.messages,
		Events:    st.events,
	}
}

// Restore rewinds this rank's runtime counters to a snapshot taken in a
// previous (failed) world, the rollback half of checkpoint/restart
// recovery. It must be called before the rank's first communication in
// the new world. When tracing, the jump from clock 0 to the snapshot
// clock is recorded as a "restore" phase span plus a restore marker, so
// breakdown phase spans still tile the timeline exactly.
func (c *Comm) Restore(s RankSnapshot) {
	st := c.state
	if st.tr != nil {
		st.tr.PhaseChange("restore", st.clock, st.commTime, st.bytesSent)
	}
	st.clock = s.Clock
	st.commTime = s.CommTime
	st.bytesSent = s.BytesSent
	st.messages = s.Messages
	st.events = s.Events
	st.phase = "restore"
	if st.tr != nil {
		st.tr.RestoreMark(s.Clock, s.Events)
	}
}

// SetPhase labels the algorithm phase this rank is in ("coarsen",
// "embed", "partition", ...). The label is attached to RankErrors and
// watchdog diagnostics, and — when tracing — opens a new phase span at
// the current clock; it has no effect on clocks or semantics.
func (c *Comm) SetPhase(name string) {
	st := c.state
	if st.tr != nil && name != st.phase {
		st.tr.PhaseChange(name, st.clock, st.commTime, st.bytesSent)
	}
	st.phase = name
}

// Phase returns the current phase label.
func (c *Comm) Phase() string { return c.state.phase }

// Events returns the number of communication events this rank has
// started (the positions a FaultPlan addresses).
func (c *Comm) Events() int64 { return c.state.events }

// Abort poisons the world with a structured error and terminates the
// calling rank: every other rank is unblocked and torn down, and the
// enclosing RunChecked returns a *RankError wrapping err. Abort does
// not return.
func (c *Comm) Abort(err error) {
	c.world.abort(&RankError{Rank: c.rank, Phase: c.state.phase, Err: err})
	panic(abortSignal{})
}

// commEvent starts a communication operation: it advances the event
// counter, raises a scheduled kill fault, and returns any other fault
// scheduled for this position. Pure bookkeeping — clocks are untouched,
// so fault-free ranks keep bit-identical timings.
func (c *Comm) commEvent(op string) *Fault {
	ev := c.state.events
	c.state.events++
	f := c.world.model.Faults.at(c.rank, ev)
	if f != nil {
		if c.state.tr != nil {
			c.state.tr.Fault(f.Kind.String(), op, ev, c.state.clock)
		}
		if f.Kind == KillRank {
			panic(&InjectedFault{Rank: c.rank, Event: ev})
		}
	}
	return f
}

// beginWait publishes what this rank is about to block on; endWait
// clears it and bumps the world progress counter.
func (c *Comm) beginWait(kind int, op string, peer, size int, gen int64) {
	c.state.wait.Store(&waitInfo{
		kind: kind, op: op, peer: peer, size: size, gen: gen,
		clock: c.state.clock, phase: c.state.phase,
	})
}

func (c *Comm) endWait() {
	c.state.wait.Store(nil)
	c.world.progress.Add(1)
}

// Charge advances the virtual clock by ops charged operations of local
// computation.
func (c *Comm) Charge(ops float64) {
	c.state.clock += ops * c.world.model.PerOp
}

// ChargeTime advances the virtual clock by the given number of seconds
// of local computation (for costs not naturally expressed in ops).
func (c *Comm) ChargeTime(seconds float64) {
	c.state.clock += seconds
}

// SubComm returns a communicator over the first n world ranks, or nil
// if this rank is not a member. Point-to-point operations always use
// world rank ids; SubComm only scopes collectives.
func (c *Comm) SubComm(n int) *Comm {
	if n < 1 || n > c.world.size {
		panic(fmt.Sprintf("mpi: SubComm(%d) of world size %d", n, c.world.size))
	}
	if c.rank >= n {
		return nil
	}
	return &Comm{world: c.world, rank: c.rank, size: n, state: c.state}
}

// Send delivers data to rank `to`. bytes is the modeled payload size.
// The payload is available to the receiver at sender-clock + Latency +
// PerByte·bytes; the sender itself is charged the send overhead
// (Latency). Send only blocks when the receiver's inbox is full, and is
// unblocked (tearing the rank down) if the world aborts meanwhile.
func (c *Comm) Send(to int, data any, bytes int) {
	c.sendOp(to, data, bytes, "Send")
}

func (c *Comm) sendOp(to int, data any, bytes int, op string) {
	if to == c.rank {
		panic("mpi: Send to self")
	}
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to rank %d of world size %d", to, c.world.size))
	}
	f := c.commEvent(op)
	m := c.world.model
	// Self-healing: with a reliability layer attached, wire faults on
	// this message are healed at the send site. The retransmission
	// protocol is not simulated turn by turn — its deterministic outcome
	// is: the receiver sees the payload arrive after the summed backoff
	// timeouts, and the sender is charged one extra Latency per
	// retransmission below (traced as a retry event).
	retries := 0
	backoff := 0.0
	if f != nil && m.Reliable != nil {
		switch f.Kind {
		case DropMessage:
			drops := f.Repeat
			if drops < 1 {
				drops = 1
			}
			if budget := m.Reliable.budget(); drops > budget {
				// Every retransmission within budget was dropped too: the
				// link is dead. Escalate to a rank failure so recovery
				// policies (respawn/shrink) can take over.
				releasePayload(data)
				panic(&RetryBudgetError{Rank: c.rank, To: to, Event: c.state.events - 1, Drops: drops, Budget: budget})
			}
			backoff = backoffTotal(m.Reliable.ackTimeout(m, bytes), drops)
			retries = drops
			f = nil
		case DelayMessage:
			if timeout := m.Reliable.ackTimeout(m, bytes); f.Delay > timeout {
				// The delayed copy misses the ack window: the sender times
				// out once and retransmits, and the fresh copy overtakes
				// the late original.
				backoff = timeout
				retries = 1
				f = nil
			}
		case TruncatePayload:
			// The payload checksum rejects the corrupted copy; the sender
			// times out once and retransmits intact.
			backoff = m.Reliable.ackTimeout(m, bytes)
			retries = 1
			f = nil
		}
	}
	cost := m.Latency + m.PerByte*float64(bytes) + backoff
	arrival := c.state.clock + cost
	deliver := true
	if f != nil {
		switch f.Kind {
		case DropMessage:
			deliver = false
		case DelayMessage:
			arrival += f.Delay
			cost += f.Delay
		case TruncatePayload:
			data = truncatePayload(data)
		}
	}
	seq := int64(-1)
	if c.state.seqTo != nil {
		seq = c.state.seqTo[to]
		c.state.seqTo[to]++
	}
	if deliver {
		msg := message{src: c.rank, seq: seq, data: data, arrival: arrival, cost: cost, bytes: int64(bytes)}
		select {
		case c.world.ranks[to].inbox <- msg:
			// Fast path: the inbox had room, nothing blocked, so no
			// waitInfo snapshot is needed for the watchdog.
		default:
			// About to park on a full inbox: hand the batched-replay
			// compute slot to a runnable rank (the receiver needs one to
			// drain us).
			c.releaseSlot()
			c.beginWait(waitSend, op, to, 0, 0)
			select {
			case c.world.ranks[to].inbox <- msg:
			case <-c.world.abortCh:
				// Clear the wait record before tearing down: a stale
				// "blocked sending" snapshot would otherwise feed the
				// watchdog a misleading deadlock dump during abort.
				c.endWait()
				panic(abortSignal{})
			}
			c.endWait()
			c.acquireSlot()
		}
	} else {
		// A dropped pooled payload never reaches a receiver's Release;
		// return it to its pool here so fault sweeps stay balanced.
		releasePayload(data)
	}
	// A dropped message still charges the sender: the fault is on the
	// wire, and no other rank's clock may move because of it.
	t0 := c.state.clock
	c.state.clock += m.Latency
	c.state.commTime += m.Latency
	c.state.bytesSent += int64(bytes)
	c.state.messages++
	if c.state.tr != nil {
		c.state.tr.Send(op, to, int64(bytes), t0, c.state.clock, m.Latency)
	}
	if retries > 0 {
		// Each healed retransmission charges the sender one more send
		// overhead (Latency); the backoff itself is the receiver's wait
		// and is already folded into the message's arrival and cost.
		extra := float64(retries) * m.Latency
		rt0 := c.state.clock
		c.state.clock += extra
		c.state.commTime += extra
		if c.state.tr != nil {
			c.state.tr.Retry(op, to, retries, int64(bytes), rt0, c.state.clock)
		}
	}
}

// Recv blocks until a message from rank `from` is available and returns
// its payload, advancing the virtual clock to the message arrival time
// (or leaving it unchanged if the message already arrived in virtual
// time). If the world aborts while waiting, the rank is torn down.
func (c *Comm) Recv(from int) any {
	return c.recvOp(from, "Recv")
}

func (c *Comm) recvOp(from int, op string) any {
	c.commEvent(op)
	msg, ok := c.takePending(from)
	if !ok {
		// Fast path: drain whatever is already queued without blocking
		// (and so without publishing a waitInfo for the watchdog).
	drainLoop:
		for {
			select {
			case in := <-c.state.inbox:
				if in.src == from {
					msg, ok = in, true
					break drainLoop
				}
				c.state.pending[in.src] = append(c.state.pending[in.src], in)
			default:
				break drainLoop
			}
		}
	}
	if !ok {
		// Parking until the matching send arrives: the sender needs a
		// batched-replay compute slot to reach its send, so give ours up.
		c.releaseSlot()
		c.beginWait(waitRecv, op, from, 0, 0)
	recvLoop:
		for {
			select {
			case in := <-c.state.inbox:
				if in.src == from {
					msg = in
					break recvLoop
				}
				c.state.pending[in.src] = append(c.state.pending[in.src], in)
			case <-c.world.abortCh:
				// Clear the wait record before tearing down (see sendOp).
				c.endWait()
				panic(abortSignal{})
			}
		}
		c.endWait()
		c.acquireSlot()
	}
	if c.state.seqFrom != nil && msg.seq >= 0 {
		// The reliability layer numbers every link's messages; a gap here
		// would mean an undetected loss or reordering, which the healing
		// protocol is supposed to make impossible.
		if want := c.state.seqFrom[msg.src]; msg.seq != want {
			panic(fmt.Errorf("mpi: reliability: rank %d received message seq %d from rank %d, want %d (undetected loss or reordering)",
				c.rank, msg.seq, msg.src, want))
		}
		c.state.seqFrom[msg.src]++
	}
	t0 := c.state.clock
	advance := msg.arrival - c.state.clock
	if advance > 0 {
		c.state.clock = msg.arrival
	} else {
		advance = 0
	}
	// Communication time counts the transfer cost, capped by the actual
	// clock advance: waiting caused by load imbalance or late activation
	// is not communication.
	comm := msg.cost
	if advance < comm {
		comm = advance
	}
	c.state.commTime += comm
	if c.state.tr != nil {
		c.state.tr.Recv(op, from, msg.bytes, t0, c.state.clock, comm)
	}
	return msg.data
}

// takePending pops the oldest queued message from `from`, if any. The
// queue keeps its backing array (entries shift down in place) so
// steady-state out-of-order delivery never reallocates.
func (c *Comm) takePending(from int) (message, bool) {
	q := c.state.pending[from]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	copy(q, q[1:])
	q[len(q)-1] = message{} // drop the payload reference for the GC
	c.state.pending[from] = q[:len(q)-1]
	return msg, true
}

// SendRecv performs a simultaneous exchange with partner: data flows
// both ways, as in MPI_Sendrecv. It is the deadlock-free primitive for
// halo exchanges on the processor grid.
func (c *Comm) SendRecv(partner int, data any, bytes int) any {
	c.Send(partner, data, bytes)
	return c.Recv(partner)
}

// log2ceil returns ceil(log2(n)) with log2ceil(1) == 0.
func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// collCost is the declared cost of one collective: total is the exact
// expression charged to the clock (computed precisely as it was before
// tracing existed, so traced and untraced runs stay bit-identical);
// ts/tw/to split the same cost into the paper's latency, bandwidth, and
// per-peer terms for the breakdown table, and bytes is the modeled
// payload volume. The split is informational only — ts+tw+to may differ
// from total in the last float bit, and only total is ever charged.
type collCost struct {
	total float64
	ts    float64
	tw    float64
	to    float64
	bytes int64
}

// runCollective performs the generation-matched rendezvous: every rank
// of the communicator contributes val; combine runs once, in rank
// order, when the last rank arrives; all ranks' clocks advance to
// max(clock) + cost.total and the combined value is returned to each.
// op names the collective in fault positions and watchdog diagnostics.
func (c *Comm) runCollective(op string, val any, combine func(vals []any) any, cost collCost) any {
	f := c.commEvent(op)
	if f != nil && f.Kind == TruncatePayload {
		if m := c.world.model; m.Reliable != nil {
			// Checksummed contribution: the corrupted copy is rejected
			// and retransmitted intact after one ack timeout. The late
			// rank's clock enters the rendezvous max, so the whole
			// collective absorbs the hiccup deterministically.
			timeout := m.Reliable.ackTimeout(m, int(cost.bytes))
			rt0 := c.state.clock
			c.state.clock += timeout
			c.state.commTime += timeout
			if c.state.tr != nil {
				c.state.tr.Retry(op, -1, 1, cost.bytes, rt0, c.state.clock)
			}
		} else {
			val = truncatePayload(val)
		}
	}
	t0 := c.state.clock
	if c.size == 1 {
		c.state.clock += cost.total
		c.state.commTime += cost.total
		if c.state.tr != nil {
			c.state.tr.Coll(op, 1, -1, cost.bytes, cost.ts, cost.tw, cost.to,
				t0, c.state.clock, cost.total)
		}
		return combine([]any{val})
	}

	coll := c.world.collectiveFor(c.size)
	coll.mu.Lock()
	myGen := coll.gen
	coll.vals[c.rank] = val
	coll.clocks[c.rank] = c.state.clock
	coll.costs[c.rank] = cost.total
	coll.count++
	if coll.count == coll.size {
		mx := coll.clocks[0]
		for _, t := range coll.clocks[1:] {
			if t > mx {
				mx = t
			}
		}
		// The charged cost is the maximum any rank declared, so
		// asymmetric byte counts (e.g. a broadcast whose non-roots do
		// not know the payload size) stay deterministic.
		mc := coll.costs[0]
		for _, cc := range coll.costs[1:] {
			if cc > mc {
				mc = cc
			}
		}
		// combine is user code and may panic (e.g. on a truncated
		// contribution); it must not take the collective's mutex down
		// with it, or the waiters could never be woken by the abort.
		res, perr := safeCombine(combine, coll.vals)
		if perr != nil {
			coll.mu.Unlock()
			panic(perr)
		}
		coll.result = res
		coll.done = mx + mc
		coll.count = 0
		coll.gen++
		coll.cond.Broadcast()
	} else {
		// Waiting for the rest of the communicator: later arrivals need
		// compute slots to reach this collective, so give ours up before
		// parking (releaseSlot never blocks, so holding coll.mu is fine).
		c.releaseSlot()
		c.beginWait(waitColl, op, -1, coll.size, myGen)
		for coll.gen == myGen {
			if c.world.aborted.Load() {
				coll.mu.Unlock()
				// Clear the stale "blocked in collective gen N" record
				// before tearing down: the generation is dead and the
				// watchdog must not dump it as a deadlock.
				c.endWait()
				panic(abortSignal{})
			}
			coll.cond.Wait()
		}
		c.endWait()
	}
	res, done := coll.result, coll.done
	coll.mu.Unlock()
	// Reacquire outside the collective's mutex: a full gate must not
	// hold the rendezvous lock hostage.
	c.acquireSlot()
	charged := 0.0
	if done > c.state.clock {
		advance := done - c.state.clock
		c.state.clock = done
		// Only the collective's own cost counts as communication; the
		// remainder of the advance is waiting on slower ranks (load
		// imbalance or late activation).
		comm := cost.total
		if advance < comm {
			comm = advance
		}
		c.state.commTime += comm
		charged = comm
	}
	if c.state.tr != nil {
		c.state.tr.Coll(op, c.size, myGen, cost.bytes, cost.ts, cost.tw, cost.to,
			t0, c.state.clock, charged)
	}
	return res
}

// safeCombine runs combine, converting a panic into a returned value so
// callers can release locks before re-raising.
func safeCombine(combine func([]any) any, vals []any) (res any, panicked any) {
	defer func() {
		if e := recover(); e != nil {
			panicked = e
		}
	}()
	return combine(vals), nil
}

// Barrier synchronises all ranks of the communicator; cost is a
// log2(P)-depth tree of latencies.
func (c *Comm) Barrier() {
	m := c.world.model
	total := m.Latency * log2ceil(c.size)
	c.runCollective("Barrier", nil, func([]any) any { return nil },
		collCost{total: total, ts: total})
}

// Bcast distributes root's data to every rank. bytes is the payload
// size; cost is a binomial tree: (Latency + PerByte·bytes)·log2(P).
func (c *Comm) Bcast(root int, data any, bytes int) any {
	if root < 0 || root >= c.size {
		panic("mpi: Bcast root out of range")
	}
	m := c.world.model
	lg := log2ceil(c.size)
	return c.runCollective("Bcast", data, func(vals []any) any { return vals[root] },
		collCost{
			total: (m.Latency + m.PerByte*float64(bytes)) * lg,
			ts:    m.Latency * lg,
			tw:    m.PerByte * float64(bytes) * lg,
			bytes: int64(bytes),
		})
}

// phaseMarker supports PhaseTimer.
type PhaseTimer struct {
	c     *Comm
	t0    float64
	comm0 float64
}

// StartPhase snapshots the virtual clock so algorithms can attribute
// time to named phases (coarsening, embedding, partitioning, ...).
func (c *Comm) StartPhase() PhaseTimer {
	return PhaseTimer{c: c, t0: c.state.clock, comm0: c.state.commTime}
}

// Stop returns the total and communication virtual time elapsed since
// StartPhase.
func (t PhaseTimer) Stop() (total, comm float64) {
	return t.c.state.clock - t.t0, t.c.state.commTime - t.comm0
}

// ChargeComm advances the virtual clock by a modeled point-to-point
// communication cost (messages·Latency + bytes·PerByte) without moving
// data. Drivers use it when replaying the cost of a communication whose
// data dependencies the simulation has already satisfied (e.g. the
// replicated-topology coarsening exchange).
func (c *Comm) ChargeComm(messages, bytes int) {
	m := c.world.model
	d := float64(messages)*m.Latency + float64(bytes)*m.PerByte
	t0 := c.state.clock
	c.state.clock += d
	c.state.commTime += d
	if c.state.tr != nil {
		c.state.tr.Charge("ChargeComm", int64(bytes),
			float64(messages)*m.Latency, float64(bytes)*m.PerByte, t0, c.state.clock)
	}
}

// SyncCost synchronises the communicator like Barrier but charges the
// given collective cost (seconds) instead of the barrier tree formula.
// The cost is left unattributed in the trace breakdown; callers that
// know the ts/tw/to split use SyncCostParts.
func (c *Comm) SyncCost(cost float64) {
	c.runCollective("SyncCost", nil, func([]any) any { return nil }, collCost{total: cost})
}

// SyncCostParts is SyncCost with the charged total decomposed into the
// paper's latency (ts), bandwidth (tw), and per-peer (to) terms for the
// trace breakdown. total must be the exact value the caller would have
// passed to SyncCost — it is charged verbatim; the parts are
// informational only.
func (c *Comm) SyncCostParts(total, ts, tw, to float64) {
	c.runCollective("SyncCost", nil, func([]any) any { return nil },
		collCost{total: total, ts: ts, tw: tw, to: to})
}

// CollectiveCost returns the modeled cost of a tree collective moving
// `bytes` payload over this communicator: (Latency + PerByte·bytes) ·
// ceil(log2 P).
func (c *Comm) CollectiveCost(bytes int) float64 {
	m := c.world.model
	return (m.Latency + m.PerByte*float64(bytes)) * log2ceil(c.size)
}
