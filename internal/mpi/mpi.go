// Package mpi implements the custom message-passing layer this
// reproduction uses in place of MPI. A World runs P simulated ranks,
// each on its own goroutine, communicating through point-to-point
// messages and MPI-style collectives (Barrier, Bcast, Reduce,
// AllReduce, AllGather) over prefix sub-communicators.
//
// Alongside the real data movement, every rank carries a virtual clock
// charged with a LogP-style cost model: local computation costs
// PerOp seconds per charged operation, a point-to-point message costs
// Latency + PerByte·bytes, and collectives cost their standard
// tree/ring formulas. Collectives also synchronise virtual clocks to
// the participating maximum, so the final per-rank clock is exactly the
// bulk-synchronous execution time of the algorithm on a P-processor
// machine with those machine constants — the quantity Section 3.1 of
// the paper analyses. Reported "execution times" throughout the
// benchmark harness are maxima of these clocks, not wall time, which is
// how a 1024-rank sweep runs on a laptop while preserving the paper's
// scalability shapes.
//
// Determinism: messages are matched by explicit source, reductions
// combine contributions in rank order, and no rank ever waits on "any
// source", so clocks and algorithm outputs are independent of the Go
// scheduler.
package mpi

import (
	"fmt"
	"math"
	"sync"
)

// Model holds the machine constants of the simulated cluster.
type Model struct {
	Latency float64 // ts: seconds per message / per collective hop
	PerByte float64 // tw: seconds per byte of message payload
	PerOp   float64 // seconds per charged unit of local computation
	// PerPeer is the per-destination posting/packing overhead of an
	// irregular vector exchange (MPI_Alltoallv-style), the "o·P" term
	// of LogGP-like models: every such exchange costs PerPeer·P on top
	// of latency and bandwidth. This term is what makes multilevel
	// partitioners with per-level irregular exchanges degrade once
	// N/P gets small.
	PerPeer float64
}

// DefaultModel returns constants representative of the paper's testbed
// (2.66 GHz Nehalem nodes on QDR InfiniBand): ~2 µs MPI latency,
// ~3 GB/s effective bandwidth, and ~1.5 ns per charged graph operation
// (a charged operation is an edge traversal with a handful of floating
// point operations, not a single instruction).
func DefaultModel() Model {
	return Model{
		Latency: 2.0e-6,
		PerByte: 0.33e-9,
		PerOp:   1.5e-9,
		PerPeer: 0.2e-6,
	}
}

// RankStats is the per-rank outcome of a World run.
type RankStats struct {
	Rank      int
	Time      float64 // final virtual clock, seconds
	CommTime  float64 // portion of Time spent in (or waiting on) communication
	BytesSent int64   // payload bytes this rank sent point-to-point
	Messages  int64   // point-to-point messages this rank sent
}

// MaxTime returns the largest virtual clock across ranks — the modeled
// parallel execution time.
func MaxTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.Time > mx {
			mx = s.Time
		}
	}
	return mx
}

// MaxCommTime returns the largest per-rank communication time.
func MaxCommTime(stats []RankStats) float64 {
	mx := 0.0
	for _, s := range stats {
		if s.CommTime > mx {
			mx = s.CommTime
		}
	}
	return mx
}

type message struct {
	src     int
	data    any
	arrival float64 // virtual time at which the payload is available
	cost    float64 // modeled transfer cost (Latency + PerByte·bytes)
}

// rankState is the per-rank mutable state shared by all Comms of that
// rank (full communicator and sub-communicators alike). Point-to-point
// delivery uses one buffered inbox per receiver (not one channel per
// rank pair, which is quadratic in P); messages are matched to explicit
// sources through the pending queues, which only the owning goroutine
// touches.
type rankState struct {
	clock     float64
	commTime  float64
	bytesSent int64
	messages  int64
	inbox     chan message
	pending   map[int][]message
}

// World is a group of simulated ranks. Create one per parallel run via
// Run.
type World struct {
	size  int
	model Model

	collMu sync.Mutex
	colls  map[int]*collective // keyed by communicator size

	ranks []*rankState
}

// collective is a reusable generation-counted rendezvous for the first
// `size` ranks of the world.
type collective struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	gen    int64
	count  int
	vals   []any
	clocks []float64
	costs  []float64
	result any
	done   float64 // clock at which the current generation completes
}

func newCollective(size int) *collective {
	c := &collective{
		size:   size,
		vals:   make([]any, size),
		clocks: make([]float64, size),
		costs:  make([]float64, size),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Run executes body on p simulated ranks and returns their stats in
// rank order. body must communicate only through the provided Comm.
// Panics in any rank are re-raised in the caller after all goroutines
// stop, so a failing algorithm fails the test that drives it.
func Run(p int, model Model, body func(*Comm)) []RankStats {
	if p <= 0 {
		panic("mpi: Run with non-positive size")
	}
	w := &World{
		size:  p,
		model: model,
		colls: make(map[int]*collective),
		ranks: make([]*rankState, p),
	}
	// Inbox capacity must cover the worst transient backlog: every other
	// rank sending twice (two pipelined exchange phases) before this
	// rank drains.
	capacity := 2*p + 64
	for i := range w.ranks {
		w.ranks[i] = &rankState{
			inbox:   make(chan message, capacity),
			pending: make(map[int][]message),
		}
	}
	var wg sync.WaitGroup
	panics := make([]any, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
				}
			}()
			body(&Comm{world: w, rank: rank, size: p, state: w.ranks[rank]})
		}(r)
	}
	wg.Wait()
	for r, e := range panics {
		if e != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, e))
		}
	}
	stats := make([]RankStats, p)
	for r, st := range w.ranks {
		stats[r] = RankStats{
			Rank:      r,
			Time:      st.clock,
			CommTime:  st.commTime,
			BytesSent: st.bytesSent,
			Messages:  st.messages,
		}
	}
	return stats
}

func (w *World) collectiveFor(size int) *collective {
	w.collMu.Lock()
	c, ok := w.colls[size]
	if !ok {
		c = newCollective(size)
		w.colls[size] = c
	}
	w.collMu.Unlock()
	return c
}

// Comm is one rank's handle on a communicator. The zero value is not
// usable; Comms are produced by Run and SubComm.
type Comm struct {
	world *World
	rank  int // world rank (== communicator rank: subcomms are prefixes)
	size  int
	state *rankState
}

// Rank returns this rank's id within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Model returns the machine constants of the world.
func (c *Comm) Model() Model { return c.world.model }

// Elapsed returns this rank's current virtual clock in seconds.
func (c *Comm) Elapsed() float64 { return c.state.clock }

// CommElapsed returns the communication portion of the virtual clock.
func (c *Comm) CommElapsed() float64 { return c.state.commTime }

// Charge advances the virtual clock by ops charged operations of local
// computation.
func (c *Comm) Charge(ops float64) {
	c.state.clock += ops * c.world.model.PerOp
}

// ChargeTime advances the virtual clock by the given number of seconds
// of local computation (for costs not naturally expressed in ops).
func (c *Comm) ChargeTime(seconds float64) {
	c.state.clock += seconds
}

// SubComm returns a communicator over the first n world ranks, or nil
// if this rank is not a member. Point-to-point operations always use
// world rank ids; SubComm only scopes collectives.
func (c *Comm) SubComm(n int) *Comm {
	if n < 1 || n > c.world.size {
		panic(fmt.Sprintf("mpi: SubComm(%d) of world size %d", n, c.world.size))
	}
	if c.rank >= n {
		return nil
	}
	return &Comm{world: c.world, rank: c.rank, size: n, state: c.state}
}

// Send delivers data to rank `to`. bytes is the modeled payload size.
// The payload is available to the receiver at sender-clock + Latency +
// PerByte·bytes; the sender itself is charged the send overhead
// (Latency). Send never blocks unless the channel to `to` holds 4096
// undelivered messages.
func (c *Comm) Send(to int, data any, bytes int) {
	if to == c.rank {
		panic("mpi: Send to self")
	}
	m := c.world.model
	cost := m.Latency + m.PerByte*float64(bytes)
	arrival := c.state.clock + cost
	c.world.ranks[to].inbox <- message{src: c.rank, data: data, arrival: arrival, cost: cost}
	c.state.clock += m.Latency
	c.state.commTime += m.Latency
	c.state.bytesSent += int64(bytes)
	c.state.messages++
}

// Recv blocks until a message from rank `from` is available and returns
// its payload, advancing the virtual clock to the message arrival time
// (or leaving it unchanged if the message already arrived in virtual
// time).
func (c *Comm) Recv(from int) any {
	msg, ok := c.takePending(from)
	for !ok {
		in := <-c.state.inbox
		if in.src == from {
			msg = in
			break
		}
		c.state.pending[in.src] = append(c.state.pending[in.src], in)
	}
	advance := msg.arrival - c.state.clock
	if advance > 0 {
		c.state.clock = msg.arrival
	} else {
		advance = 0
	}
	// Communication time counts the transfer cost, capped by the actual
	// clock advance: waiting caused by load imbalance or late activation
	// is not communication.
	comm := msg.cost
	if advance < comm {
		comm = advance
	}
	c.state.commTime += comm
	return msg.data
}

// takePending pops the oldest queued message from `from`, if any.
func (c *Comm) takePending(from int) (message, bool) {
	q := c.state.pending[from]
	if len(q) == 0 {
		return message{}, false
	}
	msg := q[0]
	if len(q) == 1 {
		delete(c.state.pending, from)
	} else {
		c.state.pending[from] = q[1:]
	}
	return msg, true
}

// SendRecv performs a simultaneous exchange with partner: data flows
// both ways, as in MPI_Sendrecv. It is the deadlock-free primitive for
// halo exchanges on the processor grid.
func (c *Comm) SendRecv(partner int, data any, bytes int) any {
	c.Send(partner, data, bytes)
	return c.Recv(partner)
}

// log2ceil returns ceil(log2(n)) with log2ceil(1) == 0.
func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// runCollective performs the generation-matched rendezvous: every rank
// of the communicator contributes val; combine runs once, in rank
// order, when the last rank arrives; all ranks' clocks advance to
// max(clock) + cost and the combined value is returned to each.
func (c *Comm) runCollective(val any, combine func(vals []any) any, cost float64) any {
	if c.size == 1 {
		c.state.clock += cost
		c.state.commTime += cost
		return combine([]any{val})
	}

	coll := c.world.collectiveFor(c.size)
	coll.mu.Lock()
	myGen := coll.gen
	coll.vals[c.rank] = val
	coll.clocks[c.rank] = c.state.clock
	coll.costs[c.rank] = cost
	coll.count++
	if coll.count == coll.size {
		mx := coll.clocks[0]
		for _, t := range coll.clocks[1:] {
			if t > mx {
				mx = t
			}
		}
		// The charged cost is the maximum any rank declared, so
		// asymmetric byte counts (e.g. a broadcast whose non-roots do
		// not know the payload size) stay deterministic.
		mc := coll.costs[0]
		for _, cc := range coll.costs[1:] {
			if cc > mc {
				mc = cc
			}
		}
		coll.result = combine(coll.vals)
		coll.done = mx + mc
		coll.count = 0
		coll.gen++
		coll.cond.Broadcast()
	} else {
		for coll.gen == myGen {
			coll.cond.Wait()
		}
	}
	res, done := coll.result, coll.done
	coll.mu.Unlock()
	if done > c.state.clock {
		advance := done - c.state.clock
		c.state.clock = done
		// Only the collective's own cost counts as communication; the
		// remainder of the advance is waiting on slower ranks (load
		// imbalance or late activation).
		comm := cost
		if advance < comm {
			comm = advance
		}
		c.state.commTime += comm
	}
	return res
}

// Barrier synchronises all ranks of the communicator; cost is a
// log2(P)-depth tree of latencies.
func (c *Comm) Barrier() {
	m := c.world.model
	c.runCollective(nil, func([]any) any { return nil },
		m.Latency*log2ceil(c.size))
}

// Bcast distributes root's data to every rank. bytes is the payload
// size; cost is a binomial tree: (Latency + PerByte·bytes)·log2(P).
func (c *Comm) Bcast(root int, data any, bytes int) any {
	if root < 0 || root >= c.size {
		panic("mpi: Bcast root out of range")
	}
	m := c.world.model
	return c.runCollective(data, func(vals []any) any { return vals[root] },
		(m.Latency+m.PerByte*float64(bytes))*log2ceil(c.size))
}

// phaseMarker supports PhaseTimer.
type PhaseTimer struct {
	c     *Comm
	t0    float64
	comm0 float64
}

// StartPhase snapshots the virtual clock so algorithms can attribute
// time to named phases (coarsening, embedding, partitioning, ...).
func (c *Comm) StartPhase() PhaseTimer {
	return PhaseTimer{c: c, t0: c.state.clock, comm0: c.state.commTime}
}

// Stop returns the total and communication virtual time elapsed since
// StartPhase.
func (t PhaseTimer) Stop() (total, comm float64) {
	return t.c.state.clock - t.t0, t.c.state.commTime - t.comm0
}

// ChargeComm advances the virtual clock by a modeled point-to-point
// communication cost (messages·Latency + bytes·PerByte) without moving
// data. Drivers use it when replaying the cost of a communication whose
// data dependencies the simulation has already satisfied (e.g. the
// replicated-topology coarsening exchange).
func (c *Comm) ChargeComm(messages, bytes int) {
	m := c.world.model
	d := float64(messages)*m.Latency + float64(bytes)*m.PerByte
	c.state.clock += d
	c.state.commTime += d
}

// SyncCost synchronises the communicator like Barrier but charges the
// given collective cost (seconds) instead of the barrier tree formula.
func (c *Comm) SyncCost(cost float64) {
	c.runCollective(nil, func([]any) any { return nil }, cost)
}

// CollectiveCost returns the modeled cost of a tree collective moving
// `bytes` payload over this communicator: (Latency + PerByte·bytes) ·
// ceil(log2 P).
func (c *Comm) CollectiveCost(bytes int) float64 {
	m := c.world.model
	return (m.Latency + m.PerByte*float64(bytes)) * log2ceil(c.size)
}
