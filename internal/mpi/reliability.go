package mpi

import "fmt"

// Default reliability-layer parameters (see Reliability).
const (
	// DefaultRetryBudget is the number of retransmissions the reliability
	// layer attempts for one message before declaring the link dead and
	// escalating the drop to a rank failure.
	DefaultRetryBudget = 3
	// DefaultAckFactor scales the first retransmission timeout relative
	// to the message round trip (2·Latency + PerByte·bytes); later
	// timeouts double (bounded exponential backoff).
	DefaultAckFactor = 4.0
)

// Reliability is the opt-in self-healing layer over point-to-point
// messaging, attached to a run via Model.Reliable. With it enabled,
// every point-to-point message carries a per-link sequence number and
// is conceptually acknowledged by the receiver; an injected DropMessage
// fault is then healed by deterministic retransmission instead of
// leaving the receiver to deadlock into the watchdog; a DelayMessage
// fault whose delay exceeds the ack timeout is healed by a single
// retransmission that overtakes the late original; and a
// TruncatePayload fault — on a send or on a collective contribution —
// is caught by the payload checksum and healed by one retransmission
// charged one ack timeout, so corrupted data never reaches the
// algorithm.
//
// The protocol is not simulated turn by turn — its deterministic
// outcome is charged to the virtual clocks at the send site: the
// receiver sees the message arrive after the summed backoff timeouts
// (timeout·(2^k − 1) for k lost transmissions), and the sender is
// charged one extra Latency per retransmission, traced as a `retry`
// event. Faults still fire at most once at their (rank, event)
// position, so ranks no fault reaches keep bit-identical clocks; with
// zero faults firing the layer is pure bookkeeping and the whole run is
// bit-identical to an unreliable one.
//
// A drop that repeats beyond RetryBudget consecutive transmissions
// (Fault.Repeat > budget) means the link is dead: the sender panics
// with a *RetryBudgetError, which RunChecked converts into a RankError
// so recovery policies (respawn/shrink) can take over.
type Reliability struct {
	// RetryBudget is the maximum number of retransmissions per message;
	// 0 selects DefaultRetryBudget.
	RetryBudget int
	// AckFactor scales the retransmission timeout; 0 selects
	// DefaultAckFactor.
	AckFactor float64
}

func (r *Reliability) budget() int {
	if r.RetryBudget > 0 {
		return r.RetryBudget
	}
	return DefaultRetryBudget
}

// ackTimeout is the virtual time the sender waits for an acknowledgement
// before retransmitting a bytes-sized message: AckFactor times the
// modeled round trip of the message.
func (r *Reliability) ackTimeout(m Model, bytes int) float64 {
	f := r.AckFactor
	if f <= 0 {
		f = DefaultAckFactor
	}
	return f * (2*m.Latency + m.PerByte*float64(bytes))
}

// backoffTotal sums `attempts` exponentially doubling timeouts:
// timeout·(2^attempts − 1), the virtual time the healed message spends
// being retransmitted before its successful delivery.
func backoffTotal(timeout float64, attempts int) float64 {
	total := 0.0
	step := timeout
	for k := 0; k < attempts; k++ {
		total += step
		step *= 2
	}
	return total
}

// RetryBudgetError reports a link the reliability layer gave up on: a
// DropMessage fault swallowed the original transmission and every
// retransmission within the retry budget. It surfaces wrapped in the
// *RankError RunChecked returns, where recovery drivers treat it like a
// rank death.
type RetryBudgetError struct {
	Rank   int   // sender whose link died
	To     int   // destination of the undeliverable message
	Event  int64 // the sender's communication-event position
	Drops  int   // consecutive transmissions the fault swallowed
	Budget int   // retransmissions that were attempted
}

func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("reliability: rank %d could not deliver to rank %d at event %d: %d consecutive transmissions dropped, retry budget %d exhausted",
		e.Rank, e.To, e.Event, e.Drops, e.Budget)
}
