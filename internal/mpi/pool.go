package mpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/geometry"
)

// Typed, pooled point-to-point fast paths. The generic Send/Recv API
// moves payloads as `any`, which boxes every slice header onto the heap
// and leaves the payload itself to be reallocated by the sender on
// every message. The hot loops of the embedding (ghost refreshes and
// the per-iteration neighbour exchange) instead move *VecBuf values:
// reference-counted-by-convention buffers drawn from a sync.Pool,
// filled by the sender, consumed and released by the receiver. In
// steady state no allocation happens on either side: the pointer-to-
// struct payload converts to `any` without allocating, and the backing
// arrays cycle through the pool.
//
// Ownership protocol: SendVec transfers ownership of the buffer to the
// receiver — the sender must not touch it afterwards. The receiver
// calls Release (directly, or implicitly via RecvVecInto /
// NeighborExchange) once it has consumed Data, returning the buffer to
// the pool it came from.

// VecBuf is a pooled message payload: a typed slice plus the pool it
// returns to on Release.
type VecBuf[T any] struct {
	Data []T
	pool *VecPool[T]
}

// Release returns the buffer to its originating pool. Releasing a
// buffer obtained while pooling was disabled is a no-op. The caller
// must not use Data afterwards.
func (b *VecBuf[T]) Release() {
	if b == nil {
		return
	}
	if poolAccounting.Load() {
		poolPuts.Add(1)
	}
	if b.pool != nil {
		b.pool.p.Put(b)
	}
}

// truncate implements the TruncatePayload fault for pooled payloads the
// same way it treats plain slices: the second half of the data is lost
// on the wire.
func (b *VecBuf[T]) truncate() any {
	b.Data = b.Data[:len(b.Data)/2]
	return b
}

// VecPool is a sync.Pool of reusable typed message buffers. One pool
// may serve every rank of a world (sync.Pool is concurrency-safe); a
// buffer released by the receiving rank becomes available to the next
// sender that asks.
type VecPool[T any] struct {
	p sync.Pool
}

// NewVecPool returns an empty pool for []T payloads.
func NewVecPool[T any]() *VecPool[T] { return &VecPool[T]{} }

// Shared pools for the payload types of the embedding hot loop.
var (
	Vec2Bufs    = NewVecPool[geometry.Vec2]()
	Int32Bufs   = NewVecPool[int32]()
	Float64Bufs = NewVecPool[float64]()
)

// poolingOn gates buffer reuse globally; disabled, Get always allocates
// and Release discards. Exists so tests can assert that pooling is
// semantically invisible (bit-identical clocks and outputs either way).
var poolingOn atomic.Bool

func init() { poolingOn.Store(true) }

// SetPooling enables or disables buffer reuse and returns the previous
// setting. Test hook: pooling must never change results, and the
// determinism tests prove it by flipping this switch.
func SetPooling(on bool) bool {
	prev := poolingOn.Load()
	poolingOn.Store(on)
	return prev
}

// PoolingEnabled reports whether pooled buffer reuse is on. Cache keys
// that fingerprint process-global knobs read it.
func PoolingEnabled() bool { return poolingOn.Load() }

// Pool accounting: an opt-in ledger of buffer Gets and Releases, used
// by fault tests to assert that every buffer drawn from a pool is
// eventually released — a truncated or dropped message must not strand
// its payload forever (the "pool leak" class of bug).
var (
	poolAccounting atomic.Bool
	poolGets       atomic.Int64
	poolPuts       atomic.Int64
)

// SetPoolAccounting enables or disables the Get/Release ledger and
// returns the previous setting; enabling it resets both counters.
func SetPoolAccounting(on bool) bool {
	prev := poolAccounting.Swap(on)
	if on && !prev {
		poolGets.Store(0)
		poolPuts.Store(0)
	}
	return prev
}

// PoolBalance returns the ledger: buffers drawn from pools and buffers
// released since accounting was enabled. A balanced run has gets ==
// puts once every world has been torn down.
func PoolBalance() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}

// releasePayload returns a message payload to its pool if it is a
// releasable buffer; any other payload type is left to the GC. Used on
// the paths where a payload dies without reaching its receiver: dropped
// messages and faulted-world teardown.
func releasePayload(data any) {
	if rel, ok := data.(interface{ Release() }); ok {
		rel.Release()
	}
}

// Get returns a buffer with len n, reusing pooled capacity when
// available.
func (p *VecPool[T]) Get(n int) *VecBuf[T] {
	if poolAccounting.Load() {
		poolGets.Add(1)
	}
	if !poolingOn.Load() {
		return &VecBuf[T]{Data: make([]T, n)}
	}
	b, _ := p.p.Get().(*VecBuf[T])
	if b == nil {
		b = &VecBuf[T]{pool: p}
	}
	if cap(b.Data) < n {
		b.Data = make([]T, n)
	} else {
		b.Data = b.Data[:n]
	}
	return b
}

// SendVec delivers a pooled buffer to rank `to`, modeling the payload
// as bytesPerElem·len(buf.Data) bytes. Ownership of buf transfers to
// the receiver, which releases it after consumption. Cost model and
// event accounting are identical to Send with the equivalent slice.
func SendVec[T any](c *Comm, to int, buf *VecBuf[T], bytesPerElem int) {
	c.sendOp(to, buf, bytesPerElem*len(buf.Data), opSendVec)
}

// RecvVec receives a pooled buffer sent with SendVec from rank `from`.
// The caller owns the result and must Release it after consuming Data.
func RecvVec[T any](c *Comm, from int) *VecBuf[T] {
	return c.recvOp(from, opRecvVec).(*VecBuf[T])
}

// RecvVecInto receives a pooled buffer from rank `from`, copies its
// payload into dst (reusing dst's capacity), releases the transport
// buffer, and returns the filled slice. The fully allocation-free
// fast path once dst's capacity has grown to the steady-state size.
func RecvVecInto[T any](c *Comm, from int, dst []T) []T {
	b := RecvVec[T](c, from)
	dst = append(dst[:0], b.Data...)
	b.Release()
	return dst
}

// NeighborExchange is the coalesced neighbourhood exchange primitive:
// bufs[i] travels to partners[i] as one message (whatever mix of
// payload kinds the caller packed into it), and recv is invoked once
// per partner, in partner order, with the received payload. Received
// buffers are released after recv returns; ownership of the sent
// buffers transfers to the receiving ranks. Every rank of the
// communicator must call it with symmetric partner lists (r lists q iff
// q lists r), or the world deadlocks.
//
// Cost model: one point-to-point message per partner each way, at
// Latency + PerByte·bytesPerElem·len per message — the paper's
// ts-per-partner term once, not once per payload kind.
func NeighborExchange[T any](c *Comm, partners []int, bufs []*VecBuf[T], bytesPerElem int, recv func(i, partner int, data []T)) {
	if len(partners) != len(bufs) {
		panic("mpi: NeighborExchange needs one buffer per partner")
	}
	for i, r := range partners {
		c.sendOp(r, bufs[i], bytesPerElem*len(bufs[i].Data), opNeighborExchange)
	}
	for i, r := range partners {
		b := c.recvOp(r, opNeighborExchange).(*VecBuf[T])
		// Release under defer: recv is caller code and may panic (e.g.
		// rejecting a truncated payload); the transport buffer must go
		// back to its pool either way.
		func() {
			defer b.Release()
			recv(i, r, b.Data)
		}()
	}
}
