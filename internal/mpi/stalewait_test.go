package mpi

import (
	"errors"
	"testing"
	"time"
)

// TestKillMidCollectiveNeverReportsDeadlock is the regression test for
// the stale-wait bug: when a rank is killed in the middle of a
// collective, the survivors unwind via the abort channel while their
// waitColl records are still visible to the watchdog. With a window
// short enough to poll during teardown, the watchdog used to build a
// spurious DeadlockError out of those dying-generation snapshots and
// race it against the genuine fault. The contract, over many trials at
// the smallest practical window: the injected fault always wins, and a
// deadlock is never reported.
func TestKillMidCollectiveNeverReportsDeadlock(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		m := watchdogModel(4 * time.Millisecond) // 1ms poll interval, the minimum
		m.Faults = NewFaultPlan().Kill(3, 7)
		_, err := RunChecked(6, m, func(c *Comm) {
			c.SetPhase("rounds")
			for i := 0; i < 32; i++ {
				AllReduce(c, float64(c.Rank()), 8, SumFloat64)
			}
		})
		if err == nil {
			t.Fatalf("trial %d: injected fault did not surface", trial)
		}
		var dl *DeadlockError
		if errors.As(err, &dl) {
			t.Fatalf("trial %d: spurious deadlock from stale wait records:\n%v", trial, err)
		}
		var inj *InjectedFault
		if !errors.As(err, &inj) {
			t.Fatalf("trial %d: want *InjectedFault, got %v", trial, err)
		}
		var re *RankError
		if !errors.As(err, &re) || re.Rank != 3 || re.Phase != "rounds" {
			t.Fatalf("trial %d: want RankError{rank 3, rounds}, got %v", trial, err)
		}
	}
}
