package mpi

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRandomPlanMatchesHistoricalKillPlan(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := RandomKillPlan(seed, 16, 300)
		b := RandomPlan(seed, 16, 300, KillRank)
		if a.Key() != b.Key() {
			t.Fatalf("seed %d: RandomPlan(KillRank) diverged from RandomKillPlan: %q vs %q", seed, b.Key(), a.Key())
		}
		if len(a.Faults) != 1 || a.Faults[0].Kind != KillRank {
			t.Fatalf("seed %d: unexpected kill plan %+v", seed, a.Faults)
		}
	}
}

func TestRandomPlanMultiFaultSchedules(t *testing.T) {
	kinds := []FaultKind{KillRank, DropMessage, DelayMessage, TruncatePayload}
	plan := RandomPlan(42, 8, 500, kinds...)
	if len(plan.Faults) != len(kinds) {
		t.Fatalf("want %d faults, got %d", len(kinds), len(plan.Faults))
	}
	for i, f := range plan.Faults {
		if f.Kind != kinds[i] {
			t.Fatalf("fault %d: kind %v, want %v", i, f.Kind, kinds[i])
		}
		if f.Rank < 0 || f.Rank >= 8 || f.Event < 0 || f.Event >= 500 {
			t.Fatalf("fault %d out of range: %+v", i, f)
		}
		switch f.Kind {
		case DelayMessage:
			if f.Delay < 1e-6 || f.Delay > 1e-3 {
				t.Fatalf("delay %g outside [1µs, 1ms]", f.Delay)
			}
		case DropMessage:
			if f.Repeat < 1 || f.Repeat > 3 {
				t.Fatalf("drop repeat %d outside [1,3]", f.Repeat)
			}
		}
	}
	// Same seed, same plan; different seed, (almost surely) different plan.
	if RandomPlan(42, 8, 500, kinds...).Key() != plan.Key() {
		t.Fatal("RandomPlan is not deterministic in its seed")
	}
}

// TestFaultPlanKeyInjective is the property test for cache keys: over a
// large corpus of randomly drawn distinct plans, no two distinct plans
// may share a Key (a collision would silently alias bench cache
// entries).
func TestFaultPlanKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []FaultKind{KillRank, DropMessage, DelayMessage, TruncatePayload}
	randomFault := func() Fault {
		f := Fault{
			Kind:  kinds[rng.Intn(len(kinds))],
			Rank:  rng.Intn(4),
			Event: int64(rng.Intn(6)),
		}
		switch f.Kind {
		case DelayMessage:
			f.Delay = float64(1+rng.Intn(4)) * 1e-6
		case DropMessage:
			f.Repeat = rng.Intn(4) // 0 and 1 are semantically equal: see below
		}
		return f
	}
	canon := func(p *FaultPlan) string {
		// Canonical structural identity: two plans are "the same plan"
		// exactly when their faults match positionally, with drop Repeat
		// 0 and 1 both meaning a single transmission.
		out := ""
		for _, f := range p.Faults {
			r := f.Repeat
			if r == 0 {
				r = 1
			}
			out += fmt.Sprintf("%v|%d|%d|%g|%d;", f.Kind, f.Rank, f.Event, f.Delay, r)
		}
		return out
	}
	seen := map[string]string{} // Key -> canonical identity
	plans := 0
	for i := 0; i < 4000; i++ {
		p := NewFaultPlan()
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			p.Faults = append(p.Faults, randomFault())
		}
		key := p.Key()
		id := canon(p)
		if prev, ok := seen[key]; ok {
			if prev != id {
				t.Fatalf("Key collision: %q produced by both %q and %q", key, prev, id)
			}
			continue
		}
		seen[key] = id
		plans++
	}
	if plans < 100 {
		t.Fatalf("property test degenerated: only %d distinct plans drawn", plans)
	}
	// And the empty/nil plans key to the empty string, distinct from all.
	if NewFaultPlan().Key() != "" || (*FaultPlan)(nil).Key() != "" {
		t.Fatal("empty plan must key to \"\"")
	}
}

func TestFaultPlanCloneRemainingShrink(t *testing.T) {
	p := NewFaultPlan().Kill(1, 10).Drop(2, 5).Delay(3, 7, 1e-6).Truncate(0, 2)

	c := p.Clone()
	c.Faults[0].Event = 99
	if p.Faults[0].Event != 10 {
		t.Fatal("Clone shares backing storage with the original")
	}

	// Teardown counters: rank 0 passed event 3 (truncate@2 fired), rank 2
	// passed event 6 (drop@5 fired); ranks 1 and 3 died earlier.
	rem := p.Remaining([]int64{3, 4, 6, 2})
	if rem.Key() != NewFaultPlan().Kill(1, 10).Delay(3, 7, 1e-6).Key() {
		t.Fatalf("Remaining kept the wrong faults: %q", rem.Key())
	}
	if p.Len() != 4 {
		t.Fatal("Remaining mutated the original plan")
	}

	s := p.ShrinkRank(2)
	want := NewFaultPlan().Kill(1, 10).Delay(2, 7, 1e-6).Truncate(0, 2)
	if s.Key() != want.Key() {
		t.Fatalf("ShrinkRank(2) = %q, want %q", s.Key(), want.Key())
	}

	if (*FaultPlan)(nil).Clone() != nil || (*FaultPlan)(nil).Remaining(nil) != nil || (*FaultPlan)(nil).ShrinkRank(0) != nil {
		t.Fatal("nil plan surgery must stay nil")
	}
	if (*FaultPlan)(nil).Len() != 0 {
		t.Fatal("nil plan Len must be 0")
	}
}

func TestTruncateOddLengthPayloads(t *testing.T) {
	// Both the reflect path (plain slices) and the pooled-buffer path
	// keep the first ⌊n/2⌋ elements.
	got := truncatePayload([]int32{1, 2, 3, 4, 5}).([]int32)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("odd-length slice truncated to %v, want first 2 elements", got)
	}
	if n := len(truncatePayload([]float64{1, 2, 3, 4}).([]float64)); n != 2 {
		t.Fatalf("even-length slice truncated to %d elements, want 2", n)
	}
	if truncatePayload(42) != nil {
		t.Fatal("non-slice payloads must truncate to nil")
	}
}
