package mpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/hostpar"
)

// The fan-in collective engine (CollectivesFanin).
//
// The legacy rendezvous serializes every rank through one mutex and a
// sync.Cond broadcast, and each AllReduce boxes its contribution
// through `any` — O(P) lock handoffs and O(P) allocations per
// collective, which at P = 1024 made the rendezvous itself the gate on
// the scale-8 sweep. The fan-in engine replaces it with
// generation-stamped arrival slots:
//
//   - Each rank owns slots[rank] and writes its contribution (clock,
//     declared cost, and either an inline [4]uint64 word payload or a
//     boxed value) before announcing arrival with one atomic add. The
//     add's happens-before chain makes every slot visible to the last
//     arriver without any lock.
//   - The last arriver is the finisher: it scans the slots for the
//     clock/cost maxima (hostpar-chunked at large P — exact, since
//     float max is associative), folds the contributions in rank-index
//     order (never chunked: bit-identity requires the legacy fold
//     order), publishes the result, bumps the generation counter, and
//     broadcasts the rendezvous cond once.
//   - Waiters park on the cond and re-check the generation; the
//     rendezvous mutex guards only the park/wake handshake — never the
//     contribution slots, the combine, or any allocation. An abort
//     broadcasts the cond so parked waiters wake, observe the abort,
//     and tear down (see World.abort).
//
// Steady-state cost per collective is O(P) total work and zero
// allocations; arrival itself takes no lock. Result slots are safe to
// overwrite only when the next generation completes, which requires
// every rank — including the slowest reader of the previous result —
// to arrive again first, so no reader can observe a torn result.
//
// Bit-identity with the legacy engine (virtual clocks, combine order,
// fault positions, trace events) is pinned by
// TestCollectiveFaninMatchesLegacy up to P = 1024.

// collSlot is one rank's contribution to the current generation. The
// owning rank writes it before its arrival add; only the finisher reads
// it, after observing the full arrival count.
type collSlot struct {
	clock float64
	cost  float64
	w     [4]uint64 // inline payload of the word path (unused when boxed)
	val   any       // boxed payload of the general path (nil on the word path)
}

// faninColl is the fan-in rendezvous for one communicator size.
type faninColl struct {
	size    int
	arrived atomic.Int32
	gen     atomic.Int64 // completed generations

	// mu/cond implement only the waiters' park/wake handshake; arrival,
	// slot writes, and the combine never touch them.
	mu   sync.Mutex
	cond *sync.Cond

	slots    []collSlot
	valsView []any // finisher-only scratch: boxed contributions in rank order

	// Results of the latest completed generation; written by the
	// finisher before the gen bump, read by waiters after observing it.
	resVal any
	resW   [4]uint64
	done   float64

	// Finisher-only scratch for hostpar-chunked max scans.
	chunkClock []float64
	chunkCost  []float64
}

// faninChunkMin is the communicator size below which the finisher's
// max scans stay serial; maxFaninChunks bounds the chunk scratch.
const (
	faninChunkMin  = 256
	maxFaninChunks = 32
)

func newFaninColl(size int) *faninColl {
	fc := &faninColl{
		size:     size,
		slots:    make([]collSlot, size),
		valsView: make([]any, size),
	}
	fc.cond = sync.NewCond(&fc.mu)
	if size >= faninChunkMin {
		fc.chunkClock = make([]float64, maxFaninChunks)
		fc.chunkCost = make([]float64, maxFaninChunks)
	}
	return fc
}

// faninFor returns the fan-in rendezvous for a communicator size. The
// full communicator — the hot case — is pre-allocated and hits no lock;
// sub-communicator sizes share a lazily filled map.
func (w *World) faninFor(size int) *faninColl {
	if size == w.size {
		return w.worldColl
	}
	w.collMu.Lock()
	if w.fcolls == nil {
		w.fcolls = make(map[int]*faninColl)
	}
	fc, ok := w.fcolls[size]
	if !ok {
		fc = newFaninColl(size)
		w.fcolls[size] = fc
	}
	w.collMu.Unlock()
	return fc
}

// faninArrive stamps this rank's slot bookkeeping and announces
// arrival. Returns the generation this arrival belongs to and whether
// this rank is the finisher. The generation load is safe before the
// add: generation g+1 cannot begin until every rank has returned from
// generation g, which this rank has not.
func (c *Comm) faninArrive(coll *faninColl) (myGen int64, finisher bool) {
	myGen = coll.gen.Load()
	finisher = int(coll.arrived.Add(1)) == coll.size
	return
}

// faninComplete publishes a finished generation: arrival count reset
// (safe before the gen bump — no rank can arrive for the next
// generation until it observes the bump), generation bump, and one
// cond broadcast. The broadcast must take mu so it cannot slip between
// a waiter's generation check and its park.
func (c *Comm) faninComplete(coll *faninColl) {
	coll.arrived.Store(0)
	coll.gen.Add(1)
	coll.mu.Lock()
	coll.cond.Broadcast()
	coll.mu.Unlock()
}

// faninWait parks until the generation advances past myGen, handing the
// batched-replay compute slot on first (later arrivals need one to
// reach this collective) and publishing the wait for the watchdog.
func (c *Comm) faninWait(coll *faninColl, op *string, myGen int64) {
	c.releaseSlot()
	c.beginWait(waitColl, op, -1, coll.size, myGen)
	coll.mu.Lock()
	for coll.gen.Load() == myGen {
		if c.world.aborted.Load() {
			coll.mu.Unlock()
			// Clear the stale "blocked in collective gen N" record before
			// tearing down: the generation is dead and the watchdog must
			// not dump it as a deadlock.
			c.endWait()
			panic(abortSignal{})
		}
		coll.cond.Wait()
	}
	coll.mu.Unlock()
	c.endWait()
	c.acquireSlot()
}

// scanMax returns the rank-maximum clock and declared cost of the
// current generation. Max is exact under any association, so large
// communicators scan in hostpar chunks; small ones stay serial.
func (coll *faninColl) scanMax() (mx, mc float64) {
	slots := coll.slots
	n := len(slots)
	if wk := hostpar.Workers(); wk > 1 && n >= faninChunkMin {
		chunks := wk
		if chunks > maxFaninChunks {
			chunks = maxFaninChunks
		}
		hostpar.ForN(n, chunks, func(ci, lo, hi int) {
			cm, cc := slots[lo].clock, slots[lo].cost
			for i := lo + 1; i < hi; i++ {
				if slots[i].clock > cm {
					cm = slots[i].clock
				}
				if slots[i].cost > cc {
					cc = slots[i].cost
				}
			}
			coll.chunkClock[ci], coll.chunkCost[ci] = cm, cc
		})
		mx, mc = coll.chunkClock[0], coll.chunkCost[0]
		for ci := 1; ci < chunks; ci++ {
			if coll.chunkClock[ci] > mx {
				mx = coll.chunkClock[ci]
			}
			if coll.chunkCost[ci] > mc {
				mc = coll.chunkCost[ci]
			}
		}
		return mx, mc
	}
	mx, mc = slots[0].clock, slots[0].cost
	for i := 1; i < n; i++ {
		if slots[i].clock > mx {
			mx = slots[i].clock
		}
		if slots[i].cost > mc {
			mc = slots[i].cost
		}
	}
	return mx, mc
}

// faninBoxed is the general fan-in path: contributions box through
// `any` and combine runs once, in rank-index order, on the finisher.
// Identical semantics to the legacy rendezvous, minus the mutex/cond.
func (c *Comm) faninBoxed(op *string, val any, combine func(vals []any) any, cost collCost, t0 float64) any {
	coll := c.world.faninFor(c.size)
	st := c.state
	slot := &coll.slots[c.rank]
	slot.clock = st.clock
	slot.cost = cost.total
	slot.val = val
	myGen, finisher := c.faninArrive(coll)
	if finisher {
		mx, mc := coll.scanMax()
		vals := coll.valsView
		for i := range coll.slots {
			vals[i] = coll.slots[i].val
			coll.slots[i].val = nil
		}
		// combine is user code and may panic (e.g. on a truncated
		// contribution); the panic propagates to this rank's teardown,
		// which aborts the world and wakes the parked peers via abortCh —
		// the generation is never published.
		res, perr := safeCombine(combine, vals)
		if perr != nil {
			panic(perr)
		}
		coll.resVal = res
		coll.done = mx + mc
		c.faninComplete(coll)
	} else {
		c.faninWait(coll, op, myGen)
	}
	res, done := coll.resVal, coll.done
	c.collCharge(op, myGen, cost, t0, done)
	return res
}

// faninWords is the allocation-free fan-in path for fixed-size payloads
// (float64, int64, int, Vec2, [3]float64 and friends encoded into at
// most four words). fold is applied in rank-index order by the finisher
// — the exact combine order of the boxed path — so results are
// bit-identical to running the same operator through `any`. Callers
// guarantee the world has no fault plan (payload truncation is only
// defined on boxed contributions) and the fan-in engine is active.
func (c *Comm) faninWords(op *string, w [4]uint64, fold func(acc, v [4]uint64) [4]uint64, cost collCost) [4]uint64 {
	c.commEvent(op)
	st := c.state
	t0 := st.clock
	if c.size == 1 {
		st.clock += cost.total
		st.commTime += cost.total
		if st.tr != nil {
			st.tr.Coll(*op, 1, -1, cost.bytes, cost.ts, cost.tw, cost.to,
				t0, st.clock, cost.total)
		}
		return w
	}
	coll := c.world.faninFor(c.size)
	slot := &coll.slots[c.rank]
	slot.clock = st.clock
	slot.cost = cost.total
	slot.w = w
	myGen, finisher := c.faninArrive(coll)
	if finisher {
		mx, mc := coll.scanMax()
		acc := coll.slots[0].w
		for i := 1; i < coll.size; i++ {
			acc = fold(acc, coll.slots[i].w)
		}
		coll.resW = acc
		coll.done = mx + mc
		c.faninComplete(coll)
	} else {
		c.faninWait(coll, op, myGen)
	}
	res, done := coll.resW, coll.done
	c.collCharge(op, myGen, cost, t0, done)
	return res
}
