package mpi

import "testing"

// BenchmarkAllToAllV measures the personalized all-to-all over a small
// per-pair payload — the directory-resolution workload of the embedding
// projection path.
func BenchmarkAllToAllV(b *testing.B) {
	const p = 8
	b.ReportAllocs()
	Run(p, DefaultModel(), func(c *Comm) {
		dest := make([][]int32, p)
		for r := 0; r < p; r++ {
			if r == c.Rank() {
				continue
			}
			part := make([]int32, 32)
			for i := range part {
				part[i] = int32(c.Rank()*1000 + i)
			}
			dest[r] = part
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			AllToAllV(c, dest, 4)
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
}

// BenchmarkNeighborExchange measures the coalesced halo-exchange
// primitive on a ring: one pooled message per partner per round, as in
// the embedding's per-iteration neighbourhood refresh.
func BenchmarkNeighborExchange(b *testing.B) {
	const (
		p       = 8
		payload = 96 // floats per partner per round
	)
	b.ReportAllocs()
	Run(p, DefaultModel(), func(c *Comm) {
		partners := ringPartners(c.Rank(), p)
		round := func() {
			bufs := make([]*VecBuf[float64], len(partners))
			for i := range bufs {
				bufs[i] = Float64Bufs.Get(payload)
				for j := range bufs[i].Data {
					bufs[i].Data[j] = float64(j)
				}
			}
			NeighborExchange(c, partners, bufs, 8, func(_, _ int, data []float64) {})
		}
		round() // warm up the pools
		c.Barrier()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			round()
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
}
