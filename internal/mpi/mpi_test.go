package mpi

import (
	"testing"
	"testing/quick"
)

func TestAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 7, 32} {
		results := make([]int64, p)
		Run(p, DefaultModel(), func(c *Comm) {
			results[c.Rank()] = AllReduce(c, int64(c.Rank()+1), 8, SumInt64)
		})
		want := int64(p * (p + 1) / 2)
		for r, got := range results {
			if got != want {
				t.Fatalf("p=%d rank %d: got %d want %d", p, r, got, want)
			}
		}
	}
}

func TestAllGatherOrder(t *testing.T) {
	p := 9
	var out [][]int
	outs := make([][]int, p)
	Run(p, DefaultModel(), func(c *Comm) {
		outs[c.Rank()] = AllGather(c, c.Rank()*10, 8)
	})
	out = outs
	for r := 0; r < p; r++ {
		for i, v := range out[r] {
			if v != i*10 {
				t.Fatalf("rank %d slot %d: %d", r, i, v)
			}
		}
	}
}

func TestAllGatherV(t *testing.T) {
	p := 5
	flat := make([][]int32, p)
	Run(p, DefaultModel(), func(c *Comm) {
		mine := make([]int32, c.Rank())
		for i := range mine {
			mine[i] = int32(c.Rank())
		}
		flat[c.Rank()] = Concat(AllGatherV(c, mine, 4))
	})
	// Expected: 0 zeros, 1 one, 2 twos... concatenated.
	want := 0 + 1 + 2 + 3 + 4
	for r := 0; r < p; r++ {
		if len(flat[r]) != want {
			t.Fatalf("rank %d: len %d want %d", r, len(flat[r]), want)
		}
	}
}

func TestSendRecvAndOrdering(t *testing.T) {
	// Messages from one sender must arrive in order; interleaved
	// senders must match by source.
	got := make([]int, 0, 4)
	Run(3, DefaultModel(), func(c *Comm) {
		switch c.Rank() {
		case 1:
			c.Send(0, 10, 4)
			c.Send(0, 11, 4)
		case 2:
			c.Send(0, 20, 4)
			c.Send(0, 21, 4)
		case 0:
			// Receive rank 2 first even though rank 1 may have sent
			// earlier: matching is by source.
			got = append(got, c.Recv(2).(int), c.Recv(1).(int), c.Recv(1).(int), c.Recv(2).(int))
		}
	})
	want := []int{20, 10, 11, 21}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAllToAllV(t *testing.T) {
	p := 6
	ok := make([]bool, p)
	Run(p, DefaultModel(), func(c *Comm) {
		dest := make([][]int32, p)
		for r := 0; r < p; r++ {
			// Send r copies of my rank to rank r.
			for k := 0; k < r; k++ {
				dest[r] = append(dest[r], int32(c.Rank()))
			}
		}
		got := AllToAllV(c, dest, 4)
		fine := true
		for src := 0; src < p; src++ {
			if len(got[src]) != c.Rank() {
				fine = false
			}
			for _, v := range got[src] {
				if v != int32(src) {
					fine = false
				}
			}
		}
		ok[c.Rank()] = fine
	})
	for r, v := range ok {
		if !v {
			t.Fatalf("rank %d saw wrong alltoall payload", r)
		}
	}
}

func TestSubCommCollectives(t *testing.T) {
	p := 8
	sums := make([]int64, p)
	Run(p, DefaultModel(), func(c *Comm) {
		sub := c.SubComm(3)
		if c.Rank() < 3 {
			if sub == nil {
				t.Error("member got nil subcomm")
				return
			}
			sums[c.Rank()] = AllReduce(sub, int64(1), 8, SumInt64)
		} else if sub != nil {
			t.Error("non-member got subcomm")
		}
	})
	for r := 0; r < 3; r++ {
		if sums[r] != 3 {
			t.Fatalf("rank %d: %d", r, sums[r])
		}
	}
}

func TestClocksAdvanceAndSync(t *testing.T) {
	p := 4
	stats := Run(p, DefaultModel(), func(c *Comm) {
		// Rank 0 computes for 1ms; a barrier must drag everyone to at
		// least that time.
		if c.Rank() == 0 {
			c.ChargeTime(1e-3)
		}
		c.Barrier()
	})
	for _, s := range stats {
		if s.Time < 1e-3 {
			t.Fatalf("rank %d time %v below barrier sync", s.Rank, s.Time)
		}
	}
}

func TestCommTimeExcludesIdleWait(t *testing.T) {
	// A rank that waits a long virtual time for a barrier should not
	// book that wait as communication.
	stats := Run(2, DefaultModel(), func(c *Comm) {
		if c.Rank() == 0 {
			c.ChargeTime(5e-3)
		}
		c.Barrier()
	})
	if stats[1].CommTime > 1e-4 {
		t.Fatalf("idle wait booked as comm: %v", stats[1].CommTime)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []float64 {
		stats := Run(8, DefaultModel(), func(c *Comm) {
			for i := 0; i < 20; i++ {
				v := AllReduce(c, float64(c.Rank()), 8, SumFloat64)
				_ = v
				if c.Rank() > 0 {
					c.Send(c.Rank()-1, i, 8)
				}
				if c.Rank() < c.Size()-1 {
					c.Recv(c.Rank() + 1)
				}
				c.Charge(float64(c.Rank() * 10))
			}
		})
		out := make([]float64, len(stats))
		for i, s := range stats {
			out[i] = s.Time
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGridProperties(t *testing.T) {
	f := func(raw uint8) bool {
		p := int(raw)%100 + 1
		g := GridFor(p)
		if g.Size() != p {
			return false
		}
		for r := 0; r < p; r++ {
			if g.RankAt(g.RowOf(r), g.ColOf(r)) != r {
				return false
			}
			for _, nb := range g.Neighbors(r) {
				if !g.IsGridNeighbor(r, nb) || !g.IsGridNeighbor(nb, r) {
					return false
				}
				found := false
				for _, back := range g.Neighbors(nb) {
					if back == r {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGridForNearSquare(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 1024: {32, 32}, 12: {3, 4}}
	for p, want := range cases {
		g := GridFor(p)
		if g.Rows != want[0] || g.Cols != want[1] {
			t.Fatalf("GridFor(%d) = %dx%d, want %dx%d", p, g.Rows, g.Cols, want[0], want[1])
		}
	}
}

func TestHaloExchange(t *testing.T) {
	p := 6
	grid := GridFor(p) // 2x3
	ok := make([]bool, p)
	Run(p, DefaultModel(), func(c *Comm) {
		nbrs := grid.Neighbors(c.Rank())
		payload := make([]any, len(nbrs))
		bytes := make([]int, len(nbrs))
		for i := range nbrs {
			payload[i] = c.Rank() * 100
			bytes[i] = 8
		}
		got := HaloExchange(c, grid, payload, bytes)
		fine := true
		for i, nb := range nbrs {
			if got[i].(int) != nb*100 {
				fine = false
			}
		}
		ok[c.Rank()] = fine
	})
	for r, v := range ok {
		if !v {
			t.Fatalf("rank %d: halo mismatch", r)
		}
	}
}

func TestBcast(t *testing.T) {
	p := 5
	got := make([]string, p)
	Run(p, DefaultModel(), func(c *Comm) {
		var payload string
		if c.Rank() == 2 {
			payload = "hello"
		}
		got[c.Rank()] = c.Bcast(2, payload, len(payload)).(string)
	})
	for r, v := range got {
		if v != "hello" {
			t.Fatalf("rank %d: %q", r, v)
		}
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	Run(3, DefaultModel(), func(c *Comm) {
		c.Barrier()
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks finish normally; Run must still re-raise.
	})
}
