package mpi

import "fmt"

// Grid is the logical 2-D arrangement of ranks used by the fixed
// lattice embedding: P processors as a Rows × Cols grid, row-major,
// mirroring the paper's √P × √P layout (generalised to near-square
// rectangles when P is not an even power of two).
type Grid struct {
	Rows, Cols int
}

// GridFor returns the most-square factorisation of p with Rows <= Cols.
// For powers of two this is the paper's √P×√P grid (or √(P/2)×√(2P)).
func GridFor(p int) Grid {
	if p <= 0 {
		panic("mpi: GridFor of non-positive size")
	}
	best := Grid{1, p}
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			best = Grid{r, p / r}
		}
	}
	return best
}

// Size returns the number of ranks in the grid.
func (g Grid) Size() int { return g.Rows * g.Cols }

// RowOf returns the grid row of rank.
func (g Grid) RowOf(rank int) int { return rank / g.Cols }

// ColOf returns the grid column of rank.
func (g Grid) ColOf(rank int) int { return rank % g.Cols }

// RankAt returns the rank at grid position (row, col).
func (g Grid) RankAt(row, col int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("mpi: grid position (%d,%d) outside %dx%d", row, col, g.Rows, g.Cols))
	}
	return row*g.Cols + col
}

// Neighbors returns the ranks adjacent to rank in the 4-neighbourhood
// (N, S, W, E order, omitting off-grid directions).
func (g Grid) Neighbors(rank int) []int {
	r, c := g.RowOf(rank), g.ColOf(rank)
	out := make([]int, 0, 4)
	if r > 0 {
		out = append(out, g.RankAt(r-1, c))
	}
	if r < g.Rows-1 {
		out = append(out, g.RankAt(r+1, c))
	}
	if c > 0 {
		out = append(out, g.RankAt(r, c-1))
	}
	if c < g.Cols-1 {
		out = append(out, g.RankAt(r, c+1))
	}
	return out
}

// IsGridNeighbor reports whether ranks a and b are adjacent in the
// 4-neighbourhood (or equal).
func (g Grid) IsGridNeighbor(a, b int) bool {
	ra, ca := g.RowOf(a), g.ColOf(a)
	rb, cb := g.RowOf(b), g.ColOf(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc <= 1
}

// HaloExchange sends payload[i] to each neighbour i of rank (as listed
// by Neighbors) and returns the payloads received from them, in the
// same order. All ranks of the communicator must call it together.
// bytes[i] is the modeled size of payload[i].
func HaloExchange(c *Comm, g Grid, payload []any, bytes []int) []any {
	nbrs := g.Neighbors(c.Rank())
	if len(payload) != len(nbrs) || len(bytes) != len(nbrs) {
		panic("mpi: HaloExchange payload count must match neighbour count")
	}
	for i, nb := range nbrs {
		c.sendOp(nb, payload[i], bytes[i], opHaloExchange)
	}
	out := make([]any, len(nbrs))
	for i, nb := range nbrs {
		out[i] = c.recvOp(nb, opHaloExchange)
	}
	return out
}
