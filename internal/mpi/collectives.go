package mpi

// Typed collectives. These are package-level generic functions because
// Go methods cannot be generic; each wraps Comm.runCollective with the
// standard cost formula for the operation.

// AllReduce combines one value per rank with the associative op
// (applied in rank order) and returns the result to every rank. bytes
// is the payload size of one value. Cost: reduce tree + broadcast tree,
// 2·(Latency + PerByte·bytes)·log2(P).
func AllReduce[T any](c *Comm, val T, bytes int, op func(a, b T) T) T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: 2 * (m.Latency + m.PerByte*float64(bytes)) * lg,
		ts:    2 * m.Latency * lg,
		tw:    2 * m.PerByte * float64(bytes) * lg,
		bytes: int64(bytes),
	}
	res := c.runCollective("AllReduce", val, func(vals []any) any {
		acc := vals[0].(T)
		for _, v := range vals[1:] {
			acc = op(acc, v.(T))
		}
		return acc
	}, cost)
	return res.(T)
}

// Reduce is AllReduce delivered to all ranks but charged at reduce-tree
// cost (Latency + PerByte·bytes)·log2(P); non-root ranks receiving the
// value costs nothing extra in the model, matching the paper's use of
// reductions whose results every processor ends up needing.
func Reduce[T any](c *Comm, val T, bytes int, op func(a, b T) T) T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: (m.Latency + m.PerByte*float64(bytes)) * lg,
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(bytes) * lg,
		bytes: int64(bytes),
	}
	res := c.runCollective("Reduce", val, func(vals []any) any {
		acc := vals[0].(T)
		for _, v := range vals[1:] {
			acc = op(acc, v.(T))
		}
		return acc
	}, cost)
	return res.(T)
}

// AllReduceSlice element-wise combines equal-length slices across
// ranks. bytesPerElem sizes the payload.
func AllReduceSlice[T any](c *Comm, vals []T, bytesPerElem int, op func(a, b T) T) []T {
	m := c.Model()
	lg := log2ceil(c.size)
	b := bytesPerElem * len(vals)
	cost := collCost{
		total: 2 * (m.Latency + m.PerByte*float64(b)) * lg,
		ts:    2 * m.Latency * lg,
		tw:    2 * m.PerByte * float64(b) * lg,
		bytes: int64(b),
	}
	res := c.runCollective("AllReduceSlice", vals, func(contribs []any) any {
		first := contribs[0].([]T)
		acc := append([]T(nil), first...)
		for _, cv := range contribs[1:] {
			other := cv.([]T)
			if len(other) != len(acc) {
				panic("mpi: AllReduceSlice with mismatched lengths")
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
		return acc
	}, cost)
	return res.([]T)
}

// AllGather collects one value per rank, returned in rank order to
// every rank. Cost: Latency·log2(P) + PerByte·(P-1)·bytes (ring).
func AllGather[T any](c *Comm, val T, bytes int) []T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: m.Latency*lg + m.PerByte*float64(bytes)*float64(c.size-1),
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(bytes) * float64(c.size-1),
		bytes: int64(bytes),
	}
	res := c.runCollective("AllGather", val, func(vals []any) any {
		out := make([]T, len(vals))
		for i, v := range vals {
			out[i] = v.(T)
		}
		return out
	}, cost)
	return res.([]T)
}

// AllGatherV collects a variable-length slice per rank; every rank
// receives the concatenation in rank order (returned per-rank to allow
// offset recovery). bytesPerElem sizes elements; the modeled cost uses
// the true total payload, which requires the combine callback, so the
// cost is charged as an extra clock adjustment inside the collective:
// Latency·log2(P) + PerByte·totalBytes.
func AllGatherV[T any](c *Comm, vals []T, bytesPerElem int) [][]T {
	m := c.Model()
	// The total size is unknown until all contributions arrive, so the
	// collective is run with a size-exchange first: a cheap AllReduce
	// of the local byte count, then the gather charged with the total.
	total := AllReduce(c, len(vals)*bytesPerElem, 8, func(a, b int) int { return a + b })
	lg := log2ceil(c.size)
	cost := collCost{
		total: m.Latency*lg + m.PerByte*float64(total),
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(total),
		bytes: int64(total),
	}
	res := c.runCollective("AllGatherV", vals, func(contribs []any) any {
		out := make([][]T, len(contribs))
		for i, v := range contribs {
			out[i] = v.([]T)
		}
		return out
	}, cost)
	return res.([][]T)
}

// Concat flattens the rank-ordered slices an AllGatherV returns.
func Concat[T any](parts [][]T) []T {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// MaxFloat64 and SumFloat64 are common AllReduce operators.
func MaxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinFloat64 returns the smaller of a and b.
func MinFloat64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SumFloat64 returns a + b.
func SumFloat64(a, b float64) float64 { return a + b }

// SumInt64 returns a + b.
func SumInt64(a, b int64) int64 { return a + b }
