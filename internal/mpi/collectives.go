package mpi

import (
	"math"

	"repro/internal/geometry"
)

// Typed collectives. These are package-level generic functions because
// Go methods cannot be generic; each wraps Comm.runCollective with the
// standard cost formula for the operation.
//
// The reduction-shaped collectives (AllReduce, Reduce) additionally
// have an allocation-free fast path on the fan-in engine: the hot
// payload types of the pipeline — float64, int64, int, geometry.Vec2,
// [3]float64 — are encoded into an inline [4]uint64 slot word instead
// of boxing through `any`, and the user's operator is applied to the
// decoded values in exactly the same rank-index order, so the result is
// bit-identical to the boxed path (TestCollectiveFaninMatchesLegacy
// pins this). Worlds with a fault plan always box, because injected
// payload truncation is defined on boxed contributions.

// reduceWords runs a reduction through the word path when the payload
// type is supported, returning (true, result); (false, _) sends the
// caller to the boxed path. The operator closures below capture only
// `f` and do not escape faninWords, so the whole path allocates
// nothing.
func reduceWords[T any](c *Comm, op *string, val T, f func(a, b T) T, cost collCost) (bool, T) {
	switch p := any(&val).(type) {
	case *float64:
		g, ok := any(f).(func(float64, float64) float64)
		if !ok {
			return false, val
		}
		var w [4]uint64
		w[0] = math.Float64bits(*p)
		res := c.faninWords(op, w, func(acc, v [4]uint64) [4]uint64 {
			acc[0] = math.Float64bits(g(math.Float64frombits(acc[0]), math.Float64frombits(v[0])))
			return acc
		}, cost)
		*p = math.Float64frombits(res[0])
		return true, val
	case *int64:
		g, ok := any(f).(func(int64, int64) int64)
		if !ok {
			return false, val
		}
		var w [4]uint64
		w[0] = uint64(*p)
		res := c.faninWords(op, w, func(acc, v [4]uint64) [4]uint64 {
			acc[0] = uint64(g(int64(acc[0]), int64(v[0])))
			return acc
		}, cost)
		*p = int64(res[0])
		return true, val
	case *int:
		g, ok := any(f).(func(int, int) int)
		if !ok {
			return false, val
		}
		var w [4]uint64
		w[0] = uint64(int64(*p))
		res := c.faninWords(op, w, func(acc, v [4]uint64) [4]uint64 {
			acc[0] = uint64(int64(g(int(int64(acc[0])), int(int64(v[0])))))
			return acc
		}, cost)
		*p = int(int64(res[0]))
		return true, val
	case *geometry.Vec2:
		g, ok := any(f).(func(geometry.Vec2, geometry.Vec2) geometry.Vec2)
		if !ok {
			return false, val
		}
		var w [4]uint64
		w[0] = math.Float64bits(p.X)
		w[1] = math.Float64bits(p.Y)
		res := c.faninWords(op, w, func(acc, v [4]uint64) [4]uint64 {
			r := g(geometry.Vec2{X: math.Float64frombits(acc[0]), Y: math.Float64frombits(acc[1])},
				geometry.Vec2{X: math.Float64frombits(v[0]), Y: math.Float64frombits(v[1])})
			acc[0] = math.Float64bits(r.X)
			acc[1] = math.Float64bits(r.Y)
			return acc
		}, cost)
		p.X = math.Float64frombits(res[0])
		p.Y = math.Float64frombits(res[1])
		return true, val
	case *[3]float64:
		g, ok := any(f).(func([3]float64, [3]float64) [3]float64)
		if !ok {
			return false, val
		}
		var w [4]uint64
		w[0] = math.Float64bits(p[0])
		w[1] = math.Float64bits(p[1])
		w[2] = math.Float64bits(p[2])
		res := c.faninWords(op, w, func(acc, v [4]uint64) [4]uint64 {
			r := g(
				[3]float64{math.Float64frombits(acc[0]), math.Float64frombits(acc[1]), math.Float64frombits(acc[2])},
				[3]float64{math.Float64frombits(v[0]), math.Float64frombits(v[1]), math.Float64frombits(v[2])})
			acc[0] = math.Float64bits(r[0])
			acc[1] = math.Float64bits(r[1])
			acc[2] = math.Float64bits(r[2])
			return acc
		}, cost)
		p[0] = math.Float64frombits(res[0])
		p[1] = math.Float64frombits(res[1])
		p[2] = math.Float64frombits(res[2])
		return true, val
	}
	return false, val
}

// reduceBoxed is the shared boxed path of AllReduce and Reduce.
func reduceBoxed[T any](c *Comm, op *string, val T, f func(a, b T) T, cost collCost) T {
	res := c.runCollective(op, val, func(vals []any) any {
		acc := vals[0].(T)
		for _, v := range vals[1:] {
			acc = f(acc, v.(T))
		}
		return acc
	}, cost)
	return res.(T)
}

// AllReduce combines one value per rank with the associative op
// (applied in rank order) and returns the result to every rank. bytes
// is the payload size of one value. Cost: reduce tree + broadcast tree,
// 2·(Latency + PerByte·bytes)·log2(P).
func AllReduce[T any](c *Comm, val T, bytes int, op func(a, b T) T) T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: 2 * (m.Latency + m.PerByte*float64(bytes)) * lg,
		ts:    2 * m.Latency * lg,
		tw:    2 * m.PerByte * float64(bytes) * lg,
		bytes: int64(bytes),
	}
	if c.wordsEligible() {
		if done, out := reduceWords(c, opAllReduce, val, op, cost); done {
			return out
		}
	}
	return reduceBoxed(c, opAllReduce, val, op, cost)
}

// Reduce is AllReduce delivered to all ranks but charged at reduce-tree
// cost (Latency + PerByte·bytes)·log2(P); non-root ranks receiving the
// value costs nothing extra in the model, matching the paper's use of
// reductions whose results every processor ends up needing.
func Reduce[T any](c *Comm, val T, bytes int, op func(a, b T) T) T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: (m.Latency + m.PerByte*float64(bytes)) * lg,
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(bytes) * lg,
		bytes: int64(bytes),
	}
	if c.wordsEligible() {
		if done, out := reduceWords(c, opReduce, val, op, cost); done {
			return out
		}
	}
	return reduceBoxed(c, opReduce, val, op, cost)
}

// AllReduceSlice element-wise combines equal-length slices across
// ranks. bytesPerElem sizes the payload.
func AllReduceSlice[T any](c *Comm, vals []T, bytesPerElem int, op func(a, b T) T) []T {
	m := c.Model()
	lg := log2ceil(c.size)
	b := bytesPerElem * len(vals)
	cost := collCost{
		total: 2 * (m.Latency + m.PerByte*float64(b)) * lg,
		ts:    2 * m.Latency * lg,
		tw:    2 * m.PerByte * float64(b) * lg,
		bytes: int64(b),
	}
	res := c.runCollective(opAllReduceSlice, vals, func(contribs []any) any {
		first := contribs[0].([]T)
		acc := append([]T(nil), first...)
		for _, cv := range contribs[1:] {
			other := cv.([]T)
			if len(other) != len(acc) {
				panic("mpi: AllReduceSlice with mismatched lengths")
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
		return acc
	}, cost)
	return res.([]T)
}

// AllGather collects one value per rank, returned in rank order to
// every rank. Cost: Latency·log2(P) + PerByte·(P-1)·bytes (ring).
func AllGather[T any](c *Comm, val T, bytes int) []T {
	m := c.Model()
	lg := log2ceil(c.size)
	cost := collCost{
		total: m.Latency*lg + m.PerByte*float64(bytes)*float64(c.size-1),
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(bytes) * float64(c.size-1),
		bytes: int64(bytes),
	}
	res := c.runCollective(opAllGather, val, func(vals []any) any {
		out := make([]T, len(vals))
		for i, v := range vals {
			out[i] = v.(T)
		}
		return out
	}, cost)
	return res.([]T)
}

// AllGatherV collects a variable-length slice per rank; every rank
// receives the concatenation in rank order (returned per-rank to allow
// offset recovery). bytesPerElem sizes elements; the modeled cost uses
// the true total payload, which requires the combine callback, so the
// cost is charged as an extra clock adjustment inside the collective:
// Latency·log2(P) + PerByte·totalBytes.
func AllGatherV[T any](c *Comm, vals []T, bytesPerElem int) [][]T {
	m := c.Model()
	// The total size is unknown until all contributions arrive, so the
	// collective is run with a size-exchange first: a cheap AllReduce
	// of the local byte count, then the gather charged with the total.
	total := AllReduce(c, len(vals)*bytesPerElem, 8, func(a, b int) int { return a + b })
	lg := log2ceil(c.size)
	cost := collCost{
		total: m.Latency*lg + m.PerByte*float64(total),
		ts:    m.Latency * lg,
		tw:    m.PerByte * float64(total),
		bytes: int64(total),
	}
	res := c.runCollective(opAllGatherV, vals, func(contribs []any) any {
		out := make([][]T, len(contribs))
		for i, v := range contribs {
			out[i] = v.([]T)
		}
		return out
	}, cost)
	return res.([][]T)
}

// Concat flattens the rank-ordered slices an AllGatherV returns.
func Concat[T any](parts [][]T) []T {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// MaxFloat64 and SumFloat64 are common AllReduce operators.
func MaxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinFloat64 returns the smaller of a and b.
func MinFloat64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SumFloat64 returns a + b.
func SumFloat64(a, b float64) float64 { return a + b }

// SumInt64 returns a + b.
func SumInt64(a, b int64) int64 { return a + b }
