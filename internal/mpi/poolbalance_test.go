package mpi

import (
	"testing"
	"time"
)

// requirePoolBalance asserts the accounting ledger is balanced: every
// pooled buffer drawn during the test was released back.
func requirePoolBalance(t *testing.T) {
	t.Helper()
	gets, puts := PoolBalance()
	if gets != puts {
		t.Fatalf("pool leak: %d buffers fetched, %d released", gets, puts)
	}
	if gets == 0 {
		t.Fatal("accounting saw no pool traffic; the test exercised nothing")
	}
}

// TestDroppedVecBufReturnsToPool: a DropMessage fault kills the payload
// on the wire, so no receiver will ever Release it. The runtime must
// return the pooled buffer itself instead of stranding it.
func TestDroppedVecBufReturnsToPool(t *testing.T) {
	defer SetPoolAccounting(SetPoolAccounting(true))
	m := DefaultModel()
	m.Faults = NewFaultPlan().Drop(0, 0)
	_, err := RunChecked(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			buf := Float64Bufs.Get(32)
			SendVec(c, 1, buf, 8)
		}
		// Rank 1 deliberately receives nothing: the message died on the
		// wire and waiting for it would deadlock.
	})
	if err != nil {
		t.Fatal(err)
	}
	requirePoolBalance(t)
}

// TestTeardownDrainsUnreceivedBuffers: a message still sitting in an
// inbox when the world joins (the receiver returned without consuming
// it) must be drained and its pooled payload released at teardown.
func TestTeardownDrainsUnreceivedBuffers(t *testing.T) {
	defer SetPoolAccounting(SetPoolAccounting(true))
	_, err := RunChecked(2, DefaultModel(), func(c *Comm) {
		if c.Rank() == 0 {
			SendVec(c, 1, Int32Bufs.Get(16), 4)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	requirePoolBalance(t)
}

// TestAbortedWorldReleasesInFlightBuffers: rank 2 is killed at its
// first event (the collective), aborting the world while rank 0's
// buffers are parked in rank 1's inbox behind the collective barrier.
// The teardown drain must release all of them — the fault path is
// exactly where leaks used to accumulate across a fault-injection
// sweep.
func TestAbortedWorldReleasesInFlightBuffers(t *testing.T) {
	defer SetPoolAccounting(SetPoolAccounting(true))
	m := watchdogModel(time.Second)
	m.Faults = NewFaultPlan().Kill(2, 0)
	_, err := RunChecked(4, m, func(c *Comm) {
		c.SetPhase("pipeline")
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				SendVec(c, 1, Float64Bufs.Get(16), 8)
			}
		}
		AllReduce(c, 1.0, 8, SumFloat64) // rank 2 dies here
		if c.Rank() == 1 {
			for i := 0; i < 4; i++ {
				RecvVec[float64](c, 0).Release()
			}
		}
	})
	if err == nil {
		t.Fatal("expected injected fault")
	}
	requirePoolBalance(t)
}

// TestNeighborExchangeReleasesOnPanickingCallback: NeighborExchange
// owns the receive buffers it hands to the callback; if the callback
// panics (e.g. on a truncated payload), the buffer must still return to
// its pool while the panic propagates to the harness.
func TestNeighborExchangeReleasesOnPanickingCallback(t *testing.T) {
	defer SetPoolAccounting(SetPoolAccounting(true))
	m := watchdogModel(time.Second)
	_, err := RunChecked(2, m, func(c *Comm) {
		c.SetPhase("exchange")
		partners := []int{1 - c.Rank()}
		bufs := []*VecBuf[float64]{Float64Bufs.Get(8)}
		NeighborExchange(c, partners, bufs, 8, func(i, partner int, data []float64) {
			if c.Rank() == 1 {
				panic("payload validation failed")
			}
		})
	})
	if err == nil {
		t.Fatal("expected the callback panic to surface as a RankError")
	}
	requirePoolBalance(t)
}
