package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hostpar"
)

// Batched rank-stepping: how simulated ranks are scheduled on the host.
//
// The historical replay runs every simulated rank on its own live
// goroutine for the whole run. That is the right shape when P is at or
// below the host's core count, but at P = 256–1024 on a small host it
// puts hundreds of compute-heavy goroutines in the runnable state at
// once: the Go scheduler round-robins them through the cores, each
// preemption evicting the rank's working set (positions, ghost arrays,
// CSR rows) from cache, and the run pays for P live stacks' worth of
// scheduler churn between every pair of communication points.
//
// Batched mode bounds that. A world still owns one goroutine per rank —
// the body is arbitrary user code with blocking communication, so each
// rank needs its own stack — but only a batch of at most
// hostpar.Workers() ranks is admitted to *run* at any moment. Admission
// is a slot gate: a rank holds a slot while it executes local compute,
// and hands the slot to the next compute-ready rank whenever it parks
// in a receive or an incomplete collective.
// The effect is exactly "step N ranks' local compute on the host worker
// pool between communication points": between any two communication
// events at most N ranks are runnable, and a parked rank costs one idle
// goroutine instead of a scheduler contender.
//
// The gate is invisible to the model by construction: virtual clocks,
// message matching, reduction order, and fault positions are all
// independent of host scheduling (see the package comment), so batched
// and goroutine replays produce bit-identical cuts, clocks, and
// traffic. TestReplayModesBitIdentical pins this. Deadlock freedom is
// an invariant of the slot protocol: a rank never blocks on
// communication while holding a slot, so every slot is either held by a
// runnable rank or free in the gate; a rank waiting for a slot is
// compute-ready, not waiting on any other rank. The watchdog's picture
// is unchanged — gate waiters publish no waitInfo (they are "running"),
// and a genuine deadlock still ends with every rank parked in a
// communication wait with all slots free.

// ReplayMode selects the host scheduling of simulated ranks.
type ReplayMode int32

const (
	// ReplayGoroutine is the historical mode: P live goroutines,
	// scheduling left to the Go runtime.
	ReplayGoroutine ReplayMode = iota
	// ReplayBatched admits at most hostpar.Workers() ranks to local
	// compute between communication points (see above).
	ReplayBatched
)

func (m ReplayMode) String() string {
	if m == ReplayBatched {
		return "batched"
	}
	return "goroutine"
}

// ParseReplayMode parses a -replay flag value.
func ParseReplayMode(s string) (ReplayMode, error) {
	switch s {
	case "", "goroutine":
		return ReplayGoroutine, nil
	case "batched":
		return ReplayBatched, nil
	}
	return 0, fmt.Errorf("unknown replay mode %q (want goroutine or batched)", s)
}

// replayMode is the process-wide setting, sampled once per world at
// RunChecked; a world never changes mode mid-run.
var replayMode atomic.Int32

// SetReplayMode selects how subsequent worlds schedule their ranks and
// returns the previous mode. Mirrors hostpar.SetWorkers: a process-
// global host-performance knob that must never change modeled results.
func SetReplayMode(m ReplayMode) ReplayMode {
	return ReplayMode(replayMode.Swap(int32(m)))
}

// Replay returns the current replay mode. Cache keys that fingerprint
// process-global knobs read it.
func Replay() ReplayMode { return ReplayMode(replayMode.Load()) }

// newStepGate builds the admission gate for a new world of p ranks, or
// nil when gating is pointless (goroutine mode, or a batch that already
// covers every rank).
func newStepGate(p int) chan struct{} {
	if Replay() != ReplayBatched {
		return nil
	}
	batch := hostpar.Workers()
	if batch >= p {
		return nil
	}
	g := make(chan struct{}, batch)
	for i := 0; i < batch; i++ {
		g <- struct{}{}
	}
	return g
}

// acquireSlot admits this rank to local compute, blocking until a slot
// frees up. A world abort while parked tears the rank down exactly like
// an aborted communication wait.
func (c *Comm) acquireSlot() {
	if c.world.gate == nil || c.state.slotHeld {
		return
	}
	select {
	case <-c.world.gate:
	default:
		select {
		case <-c.world.gate:
		case <-c.world.abortCh:
			panic(abortSignal{})
		}
	}
	c.state.slotHeld = true
}

// releaseSlot hands this rank's compute slot to the next compute-ready
// rank. Never blocks: slots are conserved, so the gate always has room.
func (c *Comm) releaseSlot() {
	if c.world.gate == nil || !c.state.slotHeld {
		return
	}
	c.state.slotHeld = false
	c.world.gate <- struct{}{}
}
