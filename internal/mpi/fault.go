package mpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
)

// FaultKind enumerates the deterministic faults a FaultPlan can inject
// into a run.
type FaultKind int

const (
	// KillRank makes the target rank panic with an *InjectedFault the
	// moment it starts its Event-th communication operation, as if the
	// process died mid-run. RunChecked converts the panic into a
	// RankError and aborts the rest of the world.
	KillRank FaultKind = iota + 1
	// DropMessage silently discards the point-to-point message the
	// target rank sends at its Event-th communication operation. The
	// sender is charged the usual send overhead (the fault is on the
	// wire, not in the sender), so clocks of unaffected ranks do not
	// move; without a reliability layer the receiver blocks until the
	// watchdog declares a deadlock. With Model.Reliable set the drop is
	// healed by retransmission (Fault.Repeat counts how many consecutive
	// transmissions the fault swallows), unless Repeat exceeds the retry
	// budget, in which case the sender dies with a *RetryBudgetError.
	DropMessage
	// DelayMessage adds Delay virtual seconds to the arrival time of the
	// point-to-point message sent at the target rank's Event-th
	// communication operation. Only the receiver's clock (and anything
	// downstream of it) is perturbed.
	DelayMessage
	// TruncatePayload corrupts the payload the target rank contributes
	// at its Event-th communication operation: slice payloads (pooled
	// buffers included) keep their first ⌊n/2⌋ elements — an odd-length
	// payload loses the larger half — and anything else becomes nil.
	// Collectives that combine the contribution typically panic on the
	// mismatch, which surfaces as a RankError at the combining rank.
	// With Model.Reliable set the corruption is caught by the payload
	// checksum and healed by one retransmission charged one ack timeout,
	// so the intact data always gets through.
	TruncatePayload
)

func (k FaultKind) String() string {
	switch k {
	case KillRank:
		return "kill"
	case DropMessage:
		return "drop"
	case DelayMessage:
		return "delay"
	case TruncatePayload:
		return "truncate"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one injected failure: it triggers when rank Rank starts its
// Event-th communication operation (0-based; sends, receives, and
// collective participations each count as one event). A fault fires at
// most once — recovery drivers that replay a failed world prune faults
// whose position already fired (see FaultPlan.Remaining), because a
// physical failure does not replay with the retry.
type Fault struct {
	Kind  FaultKind
	Rank  int
	Event int64
	Delay float64 // virtual seconds, DelayMessage only
	// Repeat is how many consecutive transmissions of the same message a
	// DropMessage fault swallows when a reliability layer retransmits
	// (0 and 1 both mean just the original). Repeat beyond the retry
	// budget escalates the drop to a rank failure.
	Repeat int
}

// FaultPlan is a deterministic schedule of injected faults, attached to
// a run via Model.Faults. Matching is purely positional (rank × event
// index), so a plan replays identically on every run of the same
// program; fault checks never touch virtual clocks, so ranks that no
// fault reaches keep bit-identical timings.
type FaultPlan struct {
	Faults []Fault
}

// NewFaultPlan returns an empty plan; chain Kill/Drop/Delay/Truncate to
// populate it.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Kill schedules rank to die at its event-th communication operation.
func (p *FaultPlan) Kill(rank int, event int64) *FaultPlan {
	p.Faults = append(p.Faults, Fault{Kind: KillRank, Rank: rank, Event: event})
	return p
}

// Drop schedules the message rank sends at its event-th communication
// operation to vanish on the wire.
func (p *FaultPlan) Drop(rank int, event int64) *FaultPlan {
	p.Faults = append(p.Faults, Fault{Kind: DropMessage, Rank: rank, Event: event})
	return p
}

// DropN schedules the message rank sends at its event-th communication
// operation — and its first repeat−1 retransmissions, when a
// reliability layer retries — to vanish on the wire.
func (p *FaultPlan) DropN(rank int, event int64, repeat int) *FaultPlan {
	p.Faults = append(p.Faults, Fault{Kind: DropMessage, Rank: rank, Event: event, Repeat: repeat})
	return p
}

// Delay schedules the message rank sends at its event-th communication
// operation to arrive `seconds` virtual seconds late.
func (p *FaultPlan) Delay(rank int, event int64, seconds float64) *FaultPlan {
	p.Faults = append(p.Faults, Fault{Kind: DelayMessage, Rank: rank, Event: event, Delay: seconds})
	return p
}

// Truncate schedules the payload rank contributes at its event-th
// communication operation to be corrupted.
func (p *FaultPlan) Truncate(rank int, event int64) *FaultPlan {
	p.Faults = append(p.Faults, Fault{Kind: TruncatePayload, Rank: rank, Event: event})
	return p
}

// Key returns a canonical string identity of the plan, usable in cache
// keys: two plans with the same key inject the same faults. The empty
// plan (or nil) keys to "".
func (p *FaultPlan) Key() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range p.Faults {
		fmt.Fprintf(&b, "%s:%d@%d", f.Kind, f.Rank, f.Event)
		if f.Kind == DelayMessage {
			fmt.Fprintf(&b, "+%g", f.Delay)
		}
		if f.Repeat > 1 {
			fmt.Fprintf(&b, "x%d", f.Repeat)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Len returns the number of scheduled faults (0 for nil plans).
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Faults)
}

// Clone returns an independent copy of the plan, so recovery drivers
// can prune fired faults without mutating a plan the caller may share
// across runs. Clone of nil is nil.
func (p *FaultPlan) Clone() *FaultPlan {
	if p == nil {
		return nil
	}
	return &FaultPlan{Faults: append([]Fault(nil), p.Faults...)}
}

// Remaining returns a new plan keeping only the faults whose trigger
// position no rank has passed: a fault at (rank, event) is pruned when
// events[rank] > event, because that world already fired it. events is
// the per-rank communication-event counter at teardown
// (RankStats.Events). Recovery drivers call this after a failed
// attempt — a fault fires at most once; physical failures do not replay
// with the retry.
func (p *FaultPlan) Remaining(events []int64) *FaultPlan {
	if p == nil {
		return nil
	}
	out := NewFaultPlan()
	for _, f := range p.Faults {
		if f.Rank >= 0 && f.Rank < len(events) && f.Event < events[f.Rank] {
			continue
		}
		out.Faults = append(out.Faults, f)
	}
	return out
}

// ShrinkRank returns a new plan for a world that dropped rank `dead`:
// faults aimed at the dead rank are removed and ranks above it shift
// down by one, mirroring how survivors renumber in a ULFM-style shrink.
func (p *FaultPlan) ShrinkRank(dead int) *FaultPlan {
	if p == nil {
		return nil
	}
	out := NewFaultPlan()
	for _, f := range p.Faults {
		if f.Rank == dead {
			continue
		}
		if f.Rank > dead {
			f.Rank--
		}
		out.Faults = append(out.Faults, f)
	}
	return out
}

// RandomKillPlan derives a single seeded kill fault: a pseudo-random
// rank of a P-rank world dies at a pseudo-random communication event
// below maxEvent. Useful for fuzz-style robustness sweeps.
func RandomKillPlan(seed int64, p int, maxEvent int64) *FaultPlan {
	return RandomPlan(seed, p, maxEvent, KillRank)
}

// RandomPlan derives a seeded multi-fault schedule: one fault per
// requested kind (kinds may repeat), each aimed at a pseudo-random rank
// of a P-rank world and a pseudo-random communication event below
// maxEvent. Delay faults draw a delay between 1 µs and 1 ms — spanning
// both sides of the reliability layer's ack timeout — and drop faults
// draw a repeat count of 1–3 transmissions. With a single KillRank kind
// the draws (and so the plan) are identical to the historical
// RandomKillPlan. Chaos harnesses sweep `seed` to cover kind × rank ×
// event across every phase of a run.
func RandomPlan(seed int64, p int, maxEvent int64, kinds ...FaultKind) *FaultPlan {
	if len(kinds) == 0 {
		kinds = []FaultKind{KillRank}
	}
	rng := rand.New(rand.NewSource(seed))
	if p < 1 {
		p = 1
	}
	if maxEvent < 1 {
		maxEvent = 1
	}
	plan := NewFaultPlan()
	for _, k := range kinds {
		rank := rng.Intn(p)
		event := rng.Int63n(maxEvent)
		switch k {
		case DropMessage:
			plan.DropN(rank, event, 1+rng.Intn(3))
		case DelayMessage:
			plan.Delay(rank, event, float64(1+rng.Intn(1000))*1e-6)
		case TruncatePayload:
			plan.Truncate(rank, event)
		default:
			plan.Kill(rank, event)
		}
	}
	return plan
}

// at returns the first fault scheduled for (rank, event), or nil.
func (p *FaultPlan) at(rank int, event int64) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Rank == rank && f.Event == event {
			return f
		}
	}
	return nil
}

// InjectedFault is the error a KillRank fault raises inside the target
// rank; it surfaces to RunChecked callers wrapped in a RankError.
type InjectedFault struct {
	Rank  int
	Event int64
}

func (e *InjectedFault) Error() string {
	return fmt.Sprintf("injected fault: rank %d killed at communication event %d", e.Rank, e.Event)
}

// truncatable lets typed payloads (the pooled VecBuf fast paths) opt
// into slice-like corruption under TruncatePayload faults.
type truncatable interface{ truncate() any }

// truncatePayload corrupts a payload the way TruncatePayload specifies:
// slices (and pooled buffers) lose their second half; everything else
// becomes nil.
func truncatePayload(data any) any {
	if t, ok := data.(truncatable); ok {
		return t.truncate()
	}
	v := reflect.ValueOf(data)
	if v.Kind() == reflect.Slice {
		return v.Slice(0, v.Len()/2).Interface()
	}
	return nil
}
