package mpi

import "sync"

// The legacy collective engine (CollectivesLegacy), kept verbatim for
// differential tests and benchmarks: every rank boxes its contribution
// into a shared slot array under one mutex, the last arriver combines
// and broadcasts a sync.Cond, and every waiter reacquires the mutex on
// wake. O(P) serialized lock handoffs and O(P) boxing allocations per
// collective — the cost the fan-in engine exists to remove.
// TestCollectiveFaninMatchesLegacy runs both engines over the same
// bodies and requires bit-identical results, clocks, and traffic.

// collective is the legacy generation-counted rendezvous for the first
// `size` ranks of the world.
type collective struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	gen    int64
	count  int
	vals   []any
	clocks []float64
	costs  []float64
	result any
	done   float64 // clock at which the current generation completes
}

func newCollective(size int) *collective {
	c := &collective{
		size:   size,
		vals:   make([]any, size),
		clocks: make([]float64, size),
		costs:  make([]float64, size),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// legacyFor returns the legacy rendezvous for a communicator size,
// creating it on first use.
func (w *World) legacyFor(size int) *collective {
	w.collMu.Lock()
	if w.colls == nil {
		w.colls = make(map[int]*collective)
	}
	coll, ok := w.colls[size]
	if !ok {
		coll = newCollective(size)
		w.colls[size] = coll
	}
	w.collMu.Unlock()
	return coll
}

// legacyCollective performs the historical mutex+cond rendezvous; see
// runCollective for the contract. The body is unchanged from the
// pre-fanin implementation.
func (c *Comm) legacyCollective(op *string, val any, combine func(vals []any) any, cost collCost, t0 float64) any {
	coll := c.world.legacyFor(c.size)
	coll.mu.Lock()
	myGen := coll.gen
	coll.vals[c.rank] = val
	coll.clocks[c.rank] = c.state.clock
	coll.costs[c.rank] = cost.total
	coll.count++
	if coll.count == coll.size {
		mx := coll.clocks[0]
		for _, t := range coll.clocks[1:] {
			if t > mx {
				mx = t
			}
		}
		// The charged cost is the maximum any rank declared, so
		// asymmetric byte counts (e.g. a broadcast whose non-roots do
		// not know the payload size) stay deterministic.
		mc := coll.costs[0]
		for _, cc := range coll.costs[1:] {
			if cc > mc {
				mc = cc
			}
		}
		// combine is user code and may panic (e.g. on a truncated
		// contribution); it must not take the collective's mutex down
		// with it, or the waiters could never be woken by the abort.
		res, perr := safeCombine(combine, coll.vals)
		if perr != nil {
			coll.mu.Unlock()
			panic(perr)
		}
		coll.result = res
		coll.done = mx + mc
		coll.count = 0
		coll.gen++
		coll.cond.Broadcast()
	} else {
		// Waiting for the rest of the communicator: later arrivals need
		// compute slots to reach this collective, so give ours up before
		// parking (releaseSlot never blocks, so holding coll.mu is fine).
		c.releaseSlot()
		c.beginWait(waitColl, op, -1, coll.size, myGen)
		for coll.gen == myGen {
			if c.world.aborted.Load() {
				coll.mu.Unlock()
				// Clear the stale "blocked in collective gen N" record
				// before tearing down: the generation is dead and the
				// watchdog must not dump it as a deadlock.
				c.endWait()
				panic(abortSignal{})
			}
			coll.cond.Wait()
		}
		c.endWait()
	}
	res, done := coll.result, coll.done
	coll.mu.Unlock()
	// Reacquire outside the collective's mutex: a full gate must not
	// hold the rendezvous lock hostage.
	c.acquireSlot()
	c.collCharge(op, myGen, cost, t0, done)
	return res
}
