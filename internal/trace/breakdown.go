package trace

import (
	"fmt"
	"strings"
)

// PhaseCost is the aggregated cost of one named phase: virtual time
// split into computation, charged communication, and waiting, the
// communication further split into the paper's Section 3.1 terms
// (ts = latency, tw = bandwidth, to = per-peer posting overhead), and
// the message/byte volume the phase pushed.
type PhaseCost struct {
	Phase string  `json:"phase"`
	Time  float64 `json:"time_s"`
	Comp  float64 `json:"comp_s"`
	Comm  float64 `json:"comm_s"`
	Wait  float64 `json:"wait_s"`
	TS    float64 `json:"ts_s"`
	TW    float64 `json:"tw_s"`
	TO    float64 `json:"to_s"`
	Bytes int64   `json:"bytes"`
	Msgs  int64   `json:"msgs"`
	Colls int64   `json:"colls"`
}

// Breakdown is the per-phase cost table of one run: Ranks holds each
// rank's phases in first-use order; Phases aggregates across ranks
// (times are the max over ranks — the modeled parallel time of the
// phase — while bytes, messages, and collectives are summed).
type Breakdown struct {
	Ranks  [][]PhaseCost `json:"ranks,omitempty"`
	Phases []PhaseCost   `json:"phases"`
}

// Breakdown folds the recorded events into per-rank and aggregate
// phase costs. Phase spans tile each rank's timeline exactly — from
// clock 0 to the final clock recorded at teardown — so the per-rank
// Time columns sum to the rank's final virtual clock.
func (r *Recorder) Breakdown() *Breakdown {
	b := &Breakdown{}
	for _, rt := range r.Ranks() {
		b.Ranks = append(b.Ranks, rankPhases(rt))
	}
	order := []string{}
	agg := map[string]*PhaseCost{}
	for _, phases := range b.Ranks {
		for _, pc := range phases {
			a := agg[pc.Phase]
			if a == nil {
				a = &PhaseCost{Phase: pc.Phase}
				agg[pc.Phase] = a
				order = append(order, pc.Phase)
			}
			a.Time = maxf(a.Time, pc.Time)
			a.Comp = maxf(a.Comp, pc.Comp)
			a.Comm = maxf(a.Comm, pc.Comm)
			a.Wait = maxf(a.Wait, pc.Wait)
			a.TS = maxf(a.TS, pc.TS)
			a.TW = maxf(a.TW, pc.TW)
			a.TO = maxf(a.TO, pc.TO)
			a.Bytes += pc.Bytes
			a.Msgs += pc.Msgs
			a.Colls += pc.Colls
		}
	}
	for _, name := range order {
		b.Phases = append(b.Phases, *agg[name])
	}
	return b
}

// rankPhases walks one rank's event log and accumulates a cost row per
// phase span. A KindPhase event closes the current span at its clock
// and opens the next; KindEnd closes the last span at the final clock.
// Spans with the same name (phases revisited across levels) merge.
func rankPhases(rt *RankTrace) []PhaseCost {
	var out []PhaseCost
	idx := map[string]int{}
	row := func(name string) *PhaseCost {
		i, ok := idx[name]
		if !ok {
			i = len(out)
			idx[name] = i
			out = append(out, PhaseCost{Phase: name})
		}
		return &out[i]
	}
	cur := ""
	curStart := 0.0
	closeSpan := func(at float64) {
		dur := at - curStart
		if dur == 0 {
			if _, ok := idx[cur]; !ok {
				return // zero-length span with no events: drop the row
			}
		}
		row(cur).Time += dur
	}
	for _, ev := range rt.events {
		switch ev.Kind {
		case KindPhase:
			closeSpan(ev.Start)
			cur = ev.Op
			curStart = ev.Start
		case KindEnd:
			closeSpan(ev.Start)
			cur = ""
			curStart = ev.Start
		case KindFault, KindRestore:
			// zero-duration markers; no cost to attribute
		default:
			pc := row(cur)
			pc.Comm += ev.Comm
			pc.Wait += (ev.End - ev.Start) - ev.Comm
			pc.TS += ev.TS
			pc.TW += ev.TW
			pc.TO += ev.TO
			pc.Bytes += ev.Bytes
			switch ev.Kind {
			case KindColl:
				pc.Colls++
			case KindSend, KindRecv:
				pc.Msgs++
			}
		}
	}
	for i := range out {
		out[i].Comp = out[i].Time - out[i].Comm - out[i].Wait
	}
	return out
}

// Table renders the aggregate breakdown as an aligned text table with a
// footer mapping the columns to the paper's Section 3.1 cost terms.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s %12s %12s %12s %12s %14s %8s %8s\n",
		"phase", "time_s", "comp_s", "comm_s", "wait_s", "ts_s", "tw_s", "to_s", "bytes", "msgs", "colls")
	var tot PhaseCost
	for _, pc := range b.Phases {
		name := pc.Phase
		if name == "" {
			name = "(unphased)"
		}
		fmt.Fprintf(&sb, "%-14s %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f %14d %8d %8d\n",
			name, pc.Time, pc.Comp, pc.Comm, pc.Wait, pc.TS, pc.TW, pc.TO, pc.Bytes, pc.Msgs, pc.Colls)
		tot.Time += pc.Time
		tot.Comp += pc.Comp
		tot.Comm += pc.Comm
		tot.Wait += pc.Wait
		tot.TS += pc.TS
		tot.TW += pc.TW
		tot.TO += pc.TO
		tot.Bytes += pc.Bytes
		tot.Msgs += pc.Msgs
		tot.Colls += pc.Colls
	}
	fmt.Fprintf(&sb, "%-14s %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f %14d %8d %8d\n",
		"TOTAL", tot.Time, tot.Comp, tot.Comm, tot.Wait, tot.TS, tot.TW, tot.TO, tot.Bytes, tot.Msgs, tot.Colls)
	sb.WriteString("# Section 3.1 cost terms: ts_s = startup latency, the ts(log P)^2 and\n")
	sb.WriteString("# ts*log P terms; tw_s = bandwidth, the tw*P(log P)^2, tw*Ntilde*log P,\n")
	sb.WriteString("# and tw*sqrt(N/P) terms; to_s = per-peer posting overhead (AllToAllV).\n")
	sb.WriteString("# time_s is max over ranks per phase; bytes/msgs/colls are summed.\n")
	return sb.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
