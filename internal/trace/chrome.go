package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). Timestamps are microseconds; we map one
// virtual second to one million trace microseconds so the timeline axis
// reads directly in virtual seconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usPerVirtualSecond = 1e6

// ChromeTrace writes the run as Chrome trace-event JSON: one thread per
// rank, phase spans as complete ("X") events on the virtual-clock
// timeline, and injected faults as instant ("i") events. Per-operation
// detail intentionally stays out of the export — it lives in the
// breakdown table and the invariant checker — so the file stays small
// and stable enough for golden tests.
func (r *Recorder) ChromeTrace(w io.Writer) error {
	var events []chromeEvent
	for _, rt := range r.Ranks() {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: rt.rank,
			Args: map[string]any{"name": "rank " + itoa(rt.rank)},
		})
		cur := ""
		curStart := 0.0
		emit := func(end float64) {
			if end == curStart && cur == "" {
				return
			}
			name := cur
			if name == "" {
				name = "(unphased)"
			}
			dur := (end - curStart) * usPerVirtualSecond
			events = append(events, chromeEvent{
				Name: name, Ph: "X", TS: curStart * usPerVirtualSecond,
				Dur: &dur, PID: 0, TID: rt.rank,
			})
		}
		for _, ev := range rt.events {
			switch ev.Kind {
			case KindPhase:
				emit(ev.Start)
				cur = ev.Op
				curStart = ev.Start
			case KindEnd:
				emit(ev.Start)
				cur = ""
				curStart = ev.Start
			case KindFault:
				events = append(events, chromeEvent{
					Name: ev.Op, Ph: "i", TS: ev.Start * usPerVirtualSecond,
					PID: 0, TID: rt.rank, S: "t",
					Args: map[string]any{"event": ev.Gen},
				})
			case KindRetry:
				events = append(events, chromeEvent{
					Name: "retry:" + ev.Op, Ph: "i", TS: ev.Start * usPerVirtualSecond,
					PID: 0, TID: rt.rank, S: "t",
					Args: map[string]any{"peer": ev.Peer, "attempts": ev.Gen, "bytes": ev.Bytes},
				})
			case KindRestore:
				events = append(events, chromeEvent{
					Name: "restore", Ph: "i", TS: ev.Start * usPerVirtualSecond,
					PID: 0, TID: rt.rank, S: "t",
					Args: map[string]any{"events": ev.Gen},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
