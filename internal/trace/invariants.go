package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// maxViolations caps how many violations CheckInvariants reports before
// truncating; a broken run would otherwise produce an unreadable wall.
const maxViolations = 16

// CheckInvariants validates the runtime invariants the cost model
// depends on, from the recorded events of a completed (fault-free) run:
//
//   - clock monotonicity: per rank, event intervals never run backwards
//     (End >= Start, and each event starts at or after the previous
//     event's end);
//   - byte symmetry: for every ordered rank pair, the bytes and message
//     count sent a->b equal the bytes and messages b received from a;
//   - collective participation: every collective rendezvous (same
//     communicator size and generation) has exactly `size` participants
//     all running the same operation.
//
// It returns nil when every invariant holds, or an error listing the
// first violations found.
func (r *Recorder) CheckInvariants() error {
	var v []string
	add := func(format string, args ...any) {
		if len(v) < maxViolations {
			v = append(v, fmt.Sprintf(format, args...))
		}
	}

	type pair struct{ from, to int }
	type volume struct {
		bytes int64
		msgs  int64
	}
	sent := map[pair]volume{}
	recvd := map[pair]volume{}
	type rendezvous struct {
		size int
		gen  int64
	}
	type collInfo struct {
		op    string
		count int
	}
	colls := map[rendezvous]*collInfo{}

	for _, rt := range r.Ranks() {
		prevEnd := 0.0
		for i, ev := range rt.events {
			if ev.End < ev.Start {
				add("rank %d event %d (%s): interval runs backwards (start %.12g > end %.12g)",
					rt.rank, i, ev.Op, ev.Start, ev.End)
			}
			if ev.Start < prevEnd {
				add("rank %d event %d (%s): clock went backwards (start %.12g < previous end %.12g)",
					rt.rank, i, ev.Op, ev.Start, prevEnd)
			}
			if ev.End > prevEnd {
				prevEnd = ev.End
			}
			switch ev.Kind {
			case KindSend:
				vol := sent[pair{rt.rank, ev.Peer}]
				vol.bytes += ev.Bytes
				vol.msgs++
				sent[pair{rt.rank, ev.Peer}] = vol
			case KindRecv:
				vol := recvd[pair{ev.Peer, rt.rank}]
				vol.bytes += ev.Bytes
				vol.msgs++
				recvd[pair{ev.Peer, rt.rank}] = vol
			case KindColl:
				if ev.Size <= 1 {
					break // single-rank collectives have no rendezvous
				}
				key := rendezvous{ev.Size, ev.Gen}
				ci := colls[key]
				if ci == nil {
					ci = &collInfo{op: ev.Op}
					colls[key] = ci
				} else if ci.op != ev.Op {
					add("collective rendezvous (size %d, gen %d): rank %d ran %s but another rank ran %s",
						ev.Size, ev.Gen, rt.rank, ev.Op, ci.op)
				}
				ci.count++
			}
		}
	}

	pairs := map[pair]bool{}
	for k := range sent {
		pairs[k] = true
	}
	for k := range recvd {
		pairs[k] = true
	}
	sorted := make([]pair, 0, len(pairs))
	for k := range pairs {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].from != sorted[j].from {
			return sorted[i].from < sorted[j].from
		}
		return sorted[i].to < sorted[j].to
	})
	for _, k := range sorted {
		s, rv := sent[k], recvd[k]
		if s != rv {
			add("byte symmetry %d->%d: sent %d bytes in %d messages, received %d bytes in %d messages",
				k.from, k.to, s.bytes, s.msgs, rv.bytes, rv.msgs)
		}
	}

	keys := make([]rendezvous, 0, len(colls))
	for k := range colls {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].size != keys[j].size {
			return keys[i].size < keys[j].size
		}
		return keys[i].gen < keys[j].gen
	})
	for _, k := range keys {
		if ci := colls[k]; ci.count != k.size {
			add("collective %s (size %d, gen %d): %d of %d ranks participated",
				ci.op, k.size, k.gen, ci.count, k.size)
		}
	}

	if len(v) == 0 {
		return nil
	}
	return errors.New("trace invariants violated:\n  " + strings.Join(v, "\n  "))
}
