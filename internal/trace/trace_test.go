package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// synthTrace builds a tiny two-rank trace by hand: rank 0 sends 100
// bytes to rank 1 inside phase "a", both join a 2-rank collective in
// phase "b", and the clocks telescope cleanly. The numbers are chosen
// so every Breakdown column is easy to predict.
func synthTrace() *Recorder {
	r := New()
	rs := r.Attach(2)

	r0, r1 := rs[0], rs[1]
	r0.PhaseChange("a", 0, 0, 0)
	r0.Send("Send", 1, 100, 0, 0.25, 0.25)                    // comm 0.25 (all latency)
	r0.PhaseChange("b", 1.0, 0.25, 100)                       // 0.75s of compute closes "a"
	r0.Coll("AllReduce", 2, 0, 8, 0.1, 0.1, 0, 1.0, 1.5, 0.2) // 0.3s wait
	r0.Finish(2.0, 0.45, 100)

	r1.PhaseChange("a", 0, 0, 0)
	r1.Recv("Recv", 0, 100, 0, 0.5, 0.5)
	r1.PhaseChange("b", 0.5, 0.5, 0)
	r1.Coll("AllReduce", 2, 0, 8, 0.1, 0.1, 0, 0.5, 1.5, 0.2)
	r1.Finish(1.5, 0.7, 0)
	return r
}

func TestBreakdownAggregates(t *testing.T) {
	b := synthTrace().Breakdown()
	if len(b.Phases) != 2 || b.Phases[0].Phase != "a" || b.Phases[1].Phase != "b" {
		t.Fatalf("phases %+v, want [a b]", b.Phases)
	}
	a := b.Phases[0]
	// Phase "a" lasts 1.0s on rank 0 and 0.5s on rank 1: time is the max.
	if a.Time != 1.0 {
		t.Fatalf("phase a time %v, want 1.0", a.Time)
	}
	// Comm is the max over ranks too: 0.5s (rank 1's Recv).
	if a.Comm != 0.5 {
		t.Fatalf("phase a comm %v, want 0.5", a.Comm)
	}
	// Bytes and messages sum over ranks: the send and the recv both count.
	if a.Bytes != 200 || a.Msgs != 2 {
		t.Fatalf("phase a bytes=%d msgs=%d, want 200/2", a.Bytes, a.Msgs)
	}
	bb := b.Phases[1]
	if bb.Colls != 2 {
		t.Fatalf("phase b colls %d, want 2", bb.Colls)
	}
	// Rank 1 waits 0.8s inside the collective (span 1.0s, comm 0.2s).
	if got, want := bb.Wait, 0.8; got != want {
		t.Fatalf("phase b wait %v, want %v", got, want)
	}
	if bb.TS != 0.1 || bb.TW != 0.1 {
		t.Fatalf("phase b ts/tw %v/%v, want 0.1/0.1", bb.TS, bb.TW)
	}
	// Comp + Comm + Wait telescopes back to Time per rank (the aggregate
	// takes each column's max independently, so it need not telescope).
	for r, phases := range b.Ranks {
		for _, p := range phases {
			if diff := p.Time - (p.Comp + p.Comm + p.Wait); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("rank %d phase %s: comp+comm+wait != time (%+v)", r, p.Phase, p)
			}
		}
	}
}

func TestBreakdownRankSpansSumToFinalClock(t *testing.T) {
	b := synthTrace().Breakdown()
	want := []float64{2.0, 1.5}
	for r, phases := range b.Ranks {
		var sum float64
		for _, p := range phases {
			sum += p.Time
		}
		if sum != want[r] {
			t.Fatalf("rank %d span sum %v, want final clock %v", r, sum, want[r])
		}
	}
}

func TestTableRendersColumnsAndCostTerms(t *testing.T) {
	out := synthTrace().Breakdown().Table()
	for _, want := range []string{
		"phase", "time_s", "comp_s", "comm_s", "wait_s", "ts_s", "tw_s", "to_s",
		"bytes", "msgs", "colls", "TOTAL", "Section 3.1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := synthTrace().ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"thread_name", "a", "b"} {
		if !names[want] {
			t.Fatalf("trace missing %q event, have %v", want, names)
		}
	}
}

func TestCheckInvariantsAcceptsCleanTrace(t *testing.T) {
	if err := synthTrace().CheckInvariants(); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}
}

func TestCheckInvariantsCatchesClockRegression(t *testing.T) {
	r := New()
	rt := r.Attach(1)[0]
	rt.Charge("ChargeComm", 0, 0, 0, 1.0, 2.0)
	rt.Charge("ChargeComm", 0, 0, 0, 1.5, 1.6) // starts before previous end
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("clock regression not caught: %v", err)
	}
}

func TestCheckInvariantsCatchesByteAsymmetry(t *testing.T) {
	r := New()
	rs := r.Attach(2)
	rs[0].Send("Send", 1, 100, 0, 0.1, 0.1)
	rs[1].Recv("Recv", 0, 60, 0, 0.2, 0.2) // receiver saw fewer bytes
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("byte asymmetry not caught")
	}
}

func TestCheckInvariantsCatchesMissingCollParticipant(t *testing.T) {
	r := New()
	rs := r.Attach(3)
	// Only two of three ranks join the size-3 generation-0 collective.
	rs[0].Coll("Barrier", 3, 0, 0, 0, 0, 0, 0, 0.1, 0.1)
	rs[1].Coll("Barrier", 3, 0, 0, 0, 0, 0, 0, 0.1, 0.1)
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "participa") {
		t.Fatalf("missing participant not caught: %v", err)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	r := New()
	r.Attach(2)
	defer func() {
		if recover() == nil {
			t.Fatal("second Attach did not panic")
		}
	}()
	r.Attach(2)
}
