// Package trace is the observability layer of the simulated runtime: a
// per-rank recorder of structured communication events (point-to-point
// sends and receives, collectives with their cost split into the
// paper's ts/tw/to terms, replayed communication charges, injected
// faults) and named phase spans (coarsen/embed/geopart/refine, per
// hierarchy level).
//
// The recorder is wired into internal/mpi through Model.Trace. It is
// strictly passive: recording never touches virtual clocks, so a traced
// run produces bit-identical clocks, cuts, and traffic to an untraced
// one — the only difference is that the trace exists. With Model.Trace
// nil every hook is a single pointer comparison, so the disabled
// overhead is zero.
//
// Concurrency contract: each simulated rank appends only to its own
// event slice from its own goroutine, so recording needs no locks; the
// analysis entry points (Breakdown, ChromeTrace, CheckInvariants) must
// only be called after the run has completed.
package trace

import "sync"

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindPhase marks a phase transition (Comm.SetPhase): the clock,
	// communication time, and sent-byte counters at the boundary.
	KindPhase Kind = iota
	// KindSend is a point-to-point send (the sender's Latency charge).
	KindSend
	// KindRecv is a point-to-point receive (arrival-time advance).
	KindRecv
	// KindColl is one rank's participation in a collective.
	KindColl
	// KindCharge is a replayed communication charge (Comm.ChargeComm):
	// modeled cost without data movement.
	KindCharge
	// KindFault marks an injected fault firing at this rank and clock.
	KindFault
	// KindEnd closes a rank's timeline: the final clock at teardown.
	KindEnd
	// KindRetry is a reliability-layer retransmission burst healing a
	// dropped or badly delayed message: the sender's extra latency
	// charges. Gen carries the retransmission count; Bytes the
	// retransmitted payload volume. Deliberately not a KindSend — the
	// healed message is delivered exactly once, so byte-symmetry
	// invariants count it once.
	KindRetry
	// KindRestore marks a checkpoint restore: the rank's clock jumped to
	// the snapshot clock (Start) before re-entering the pipeline. Gen
	// carries the restored communication-event counter.
	KindRestore
)

// Event is one recorded runtime event. Start and End are virtual-clock
// snapshots before and after the operation; Comm is the portion of
// End-Start charged as communication (the remainder is waiting). TS,
// TW, and TO split the modeled communication cost into the paper's
// Section 3.1 terms: latency (ts), bandwidth (tw), and per-peer posting
// overhead (to). The split is informational — the charged total is
// computed exactly as it would be without tracing.
type Event struct {
	Kind  Kind
	Op    string // "Send", "AllReduce", phase name for KindPhase, fault kind for KindFault
	Peer  int    // partner rank for point-to-point events, -1 otherwise
	Size  int    // communicator size for collectives
	Gen   int64  // collective generation (-1 for single-rank collectives)
	Bytes int64  // modeled payload bytes
	Start float64
	End   float64
	Comm  float64
	TS    float64
	TW    float64
	TO    float64
}

// RankTrace is one rank's event log. All append methods are called only
// by the owning rank goroutine.
type RankTrace struct {
	rank   int
	events []Event
}

// Rank returns the world rank this log belongs to.
func (rt *RankTrace) Rank() int { return rt.rank }

// Events returns the recorded events in program order. Read-only; call
// after the run completes.
func (rt *RankTrace) Events() []Event { return rt.events }

// PhaseChange records a phase transition at the given clock.
func (rt *RankTrace) PhaseChange(name string, clock, commTime float64, bytesSent int64) {
	rt.events = append(rt.events, Event{
		Kind: KindPhase, Op: name, Peer: -1,
		Start: clock, End: clock, Comm: commTime, Bytes: bytesSent,
	})
}

// Finish closes the rank's timeline at teardown.
func (rt *RankTrace) Finish(clock, commTime float64, bytesSent int64) {
	rt.events = append(rt.events, Event{
		Kind: KindEnd, Peer: -1,
		Start: clock, End: clock, Comm: commTime, Bytes: bytesSent,
	})
}

// Send records a point-to-point send of `bytes` payload bytes to peer.
func (rt *RankTrace) Send(op string, peer int, bytes int64, start, end, comm float64) {
	rt.events = append(rt.events, Event{
		Kind: KindSend, Op: op, Peer: peer, Bytes: bytes,
		Start: start, End: end, Comm: comm, TS: comm,
	})
}

// Recv records a point-to-point receive from peer.
func (rt *RankTrace) Recv(op string, peer int, bytes int64, start, end, comm float64) {
	rt.events = append(rt.events, Event{
		Kind: KindRecv, Op: op, Peer: peer, Bytes: bytes,
		Start: start, End: end, Comm: comm, TW: comm,
	})
}

// Coll records one participation in a collective over `size` ranks at
// generation gen, with the charged communication and its ts/tw/to
// split.
func (rt *RankTrace) Coll(op string, size int, gen, bytes int64, ts, tw, to, start, end, comm float64) {
	rt.events = append(rt.events, Event{
		Kind: KindColl, Op: op, Peer: -1, Size: size, Gen: gen, Bytes: bytes,
		Start: start, End: end, Comm: comm, TS: ts, TW: tw, TO: to,
	})
}

// Charge records a replayed communication charge (no data moved).
func (rt *RankTrace) Charge(op string, bytes int64, ts, tw, start, end float64) {
	rt.events = append(rt.events, Event{
		Kind: KindCharge, Op: op, Peer: -1, Bytes: bytes,
		Start: start, End: end, Comm: end - start, TS: ts, TW: tw,
	})
}

// Retry records a reliability-layer retransmission burst: `attempts`
// resends of a bytes-sized message to peer, whose send overhead was
// charged to this rank over [start, end]. The receiver-side backoff is
// not recorded here — it is folded into the arrival of the healed
// message and shows up in the matching Recv.
func (rt *RankTrace) Retry(op string, peer int, attempts int, bytes int64, start, end float64) {
	rt.events = append(rt.events, Event{
		Kind: KindRetry, Op: op, Peer: peer, Gen: int64(attempts),
		Bytes: int64(attempts) * bytes,
		Start: start, End: end, Comm: end - start, TS: end - start,
	})
}

// RestoreMark records a checkpoint restore: the rank's counters jumped
// to the snapshot clock and communication-event cursor.
func (rt *RankTrace) RestoreMark(clock float64, events int64) {
	rt.events = append(rt.events, Event{
		Kind: KindRestore, Op: "restore", Peer: -1, Gen: events,
		Start: clock, End: clock,
	})
}

// Fault records an injected fault firing at this rank: kind names the
// fault, op the communication operation it fired inside, event the
// rank's communication-event index.
func (rt *RankTrace) Fault(kind, op string, event int64, clock float64) {
	rt.events = append(rt.events, Event{
		Kind: KindFault, Op: kind + ":" + op, Peer: -1, Gen: event,
		Start: clock, End: clock,
	})
}

// Recorder collects the per-rank traces of exactly one World run.
// Create one per run, attach it via mpi.Model.Trace, and analyse it
// after the run returns.
type Recorder struct {
	mu       sync.Mutex
	attached bool
	ranks    []*RankTrace
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Attach binds the recorder to a world of p ranks and returns the
// per-rank logs in rank order. A recorder records exactly one run;
// attaching twice panics, because interleaving two worlds' events would
// corrupt every analysis.
func (r *Recorder) Attach(p int) []*RankTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.attached {
		panic("trace: Recorder attached to a second run; use one Recorder per run")
	}
	r.attached = true
	r.ranks = make([]*RankTrace, p)
	for i := range r.ranks {
		r.ranks[i] = &RankTrace{rank: i}
	}
	return r.ranks
}

// Reset returns the recorder to its unattached state, discarding any
// recorded events. Recovery drivers use it to reuse one user-provided
// recorder across restart attempts: only the final (successful)
// attempt's trace survives; failed attempts are summarised in the
// driver's recovery stats instead.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attached = false
	r.ranks = nil
}

// Ranks returns the per-rank logs (nil before Attach).
func (r *Recorder) Ranks() []*RankTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ranks
}
