package geometry

import (
	"math"
	"math/rand"
	"sync"
)

// This file carries the geometric mesh partitioner's machinery one
// dimension up: 3-D meshes lift to the unit 3-sphere in R⁴, where
// centerpoints come from Radon partitions of six points and the same
// Möbius construction centres the cloud. (Gilbert–Miller–Teng is
// dimension-generic; the paper evaluates 2-D graphs but the method, and
// this library, handle d = 3 the same way.)

// Vec4 is a point or vector in 4-space.
type Vec4 struct {
	X, Y, Z, W float64
}

// Add returns v + w.
func (v Vec4) Add(w Vec4) Vec4 { return Vec4{v.X + w.X, v.Y + w.Y, v.Z + w.Z, v.W + w.W} }

// Sub returns v - w.
func (v Vec4) Sub(w Vec4) Vec4 { return Vec4{v.X - w.X, v.Y - w.Y, v.Z - w.Z, v.W - w.W} }

// Scale returns s·v.
func (v Vec4) Scale(s float64) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the inner product of v and w.
func (v Vec4) Dot(w Vec4) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z + v.W*w.W }

// Norm returns the Euclidean length of v.
func (v Vec4) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec4) Dist(w Vec4) float64 { return v.Sub(w).Norm() }

// StereoUp3 lifts a 3-D point onto the unit 3-sphere in R⁴ by inverse
// stereographic projection from the pole (0,0,0,1).
func StereoUp3(p Vec3) Vec4 {
	d := p.Dot(p) + 1
	return Vec4{2 * p.X / d, 2 * p.Y / d, 2 * p.Z / d, (d - 2) / d}
}

// StereoDown3 inverts StereoUp3 for sphere points away from the pole.
func StereoDown3(q Vec4) Vec3 {
	d := 1 - q.W
	if d < 1e-12 {
		d = 1e-12
	}
	return Vec3{q.X / d, q.Y / d, q.Z / d}
}

// MoebiusToOrigin4 returns the ball automorphism of the unit ball in R⁴
// sending the interior point a to the origin; the same formula as the
// 3-D MoebiusToOrigin, one dimension up.
func MoebiusToOrigin4(a Vec4) func(Vec4) Vec4 {
	if n := a.Norm(); n >= 0.999 {
		a = a.Scale(0.999 / n)
	}
	aa := a.Dot(a)
	return func(x Vec4) Vec4 {
		xa := x.Sub(a)
		den := 1 - 2*x.Dot(a) + x.Dot(x)*aa
		if den < 1e-12 {
			den = 1e-12
		}
		num := xa.Scale(1 - aa).Sub(a.Scale(xa.Dot(xa)))
		return num.Scale(1 / den)
	}
}

// RadonPoint4 computes a Radon point of six points in R⁴ (d+2 = 6).
// The fallback mirrors RadonPoint's: centroid on degeneracy. Like
// RadonPoint, the elimination runs allocation-free on stack arrays.
func RadonPoint4(pts [6]Vec4) (Vec4, bool) {
	m := [nvMaxRows][nvMaxCols]float64{
		{pts[0].X, pts[1].X, pts[2].X, pts[3].X, pts[4].X, pts[5].X},
		{pts[0].Y, pts[1].Y, pts[2].Y, pts[3].Y, pts[4].Y, pts[5].Y},
		{pts[0].Z, pts[1].Z, pts[2].Z, pts[3].Z, pts[4].Z, pts[5].Z},
		{pts[0].W, pts[1].W, pts[2].W, pts[3].W, pts[4].W, pts[5].W},
		{1, 1, 1, 1, 1, 1},
	}
	l, ok := nullVectorFixed(&m, 5, 6)
	if !ok {
		return centroid4(pts[:]), false
	}
	var r Vec4
	pos := 0.0
	for i := 0; i < 6; i++ {
		if li := l[i]; li > 0 {
			r = r.Add(pts[i].Scale(li))
			pos += li
		}
	}
	if pos < 1e-12 {
		return centroid4(pts[:]), false
	}
	return r.Scale(1 / pos), true
}

func centroid4(pts []Vec4) Vec4 {
	if len(pts) == 0 {
		return Vec4{}
	}
	var c Vec4
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// cpWork4 pools the Centerpoint4 working copy, mirroring cpWork3.
var cpWork4 = sync.Pool{New: func() any { s := []Vec4(nil); return &s }}

// Centerpoint4 estimates a centerpoint of points in R⁴ by iterated
// Radon points, mirroring Centerpoint.
func Centerpoint4(pts []Vec4, rng *rand.Rand) Vec4 {
	if len(pts) == 0 {
		panic("geometry: Centerpoint4 of empty point set")
	}
	wp := cpWork4.Get().(*[]Vec4)
	buf := append((*wp)[:0], pts...)
	*wp = buf
	defer cpWork4.Put(wp)
	work := buf
	for len(work) > 6 {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		next := work[:0:len(work)]
		for i := 0; i+6 <= len(work); i += 6 {
			var group [6]Vec4
			copy(group[:], work[i:i+6])
			r, _ := RadonPoint4(group)
			next = append(next, r)
		}
		if len(next) == 0 {
			return centroid4(work)
		}
		work = next
	}
	return centroid4(work)
}

// RandomUnitVec4 returns a uniformly distributed point on the unit
// 3-sphere.
func RandomUnitVec4(rng *rand.Rand) Vec4 {
	for {
		v := Vec4{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}
