package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := Vec2{3, 4}
	if a.Norm() != 5 {
		t.Fatalf("norm = %v", a.Norm())
	}
	if d := a.Sub(Vec2{0, 0}).Dot(Vec2{1, 0}); d != 3 {
		t.Fatalf("dot = %v", d)
	}
	if n := a.Normalize().Norm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("normalized norm = %v", n)
	}
	if l1 := a.L1Dist(Vec2{1, 1}); l1 != 5 {
		t.Fatalf("l1 = %v", l1)
	}
	c := Vec3{1, 0, 0}.Cross(Vec3{0, 1, 0})
	if c != (Vec3{0, 0, 1}) {
		t.Fatalf("cross = %v", c)
	}
}

func TestRect(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.Width() != 4 || r.Height() != 2 {
		t.Fatal("extent wrong")
	}
	if !r.Contains(Vec2{1, 1}) || r.Contains(Vec2{5, 1}) {
		t.Fatal("containment wrong")
	}
	if p := r.Clamp(Vec2{9, -3}); p != (Vec2{4, 0}) {
		t.Fatalf("clamp = %v", p)
	}
	if b := BoundingRect([]Vec2{{1, 2}, {-1, 5}}); b != (Rect{-1, 2, 1, 5}) {
		t.Fatalf("bounding = %v", b)
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	if !SolveLinear(a, b) {
		t.Fatal("singular")
	}
	if math.Abs(b[0]-1) > 1e-9 || math.Abs(b[1]-3) > 1e-9 {
		t.Fatalf("solution = %v", b)
	}
	sing := [][]float64{{1, 2}, {2, 4}}
	if SolveLinear(sing, []float64{1, 2}) {
		t.Fatal("singular system not detected")
	}
}

// TestNullVectorProperty: NullVector output must actually satisfy
// a·x ≈ 0 and be non-trivial, for random underdetermined systems.
func TestNullVectorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 3+rng.Intn(3), 5+rng.Intn(3)
		if rows >= cols {
			continue
		}
		a := make([][]float64, rows)
		for i := range a {
			a[i] = make([]float64, cols)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
		}
		x, ok := NullVector(a, cols)
		if !ok {
			t.Fatalf("trial %d: no null vector", trial)
		}
		norm := 0.0
		for _, v := range x {
			norm += v * v
		}
		if norm < 1e-12 {
			t.Fatalf("trial %d: trivial solution", trial)
		}
		for i := range a {
			s := 0.0
			for j := range x {
				s += a[i][j] * x[j]
			}
			if math.Abs(s) > 1e-6 {
				t.Fatalf("trial %d: residual %v", trial, s)
			}
		}
	}
}

// TestStereoRoundTrip: StereoDown(StereoUp(p)) == p and the lift lands
// on the unit sphere.
func TestStereoRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Vec2{x, y}
		q := StereoUp(p)
		if math.Abs(q.Norm()-1) > 1e-9 {
			return false
		}
		back := StereoDown(q)
		return back.Dist(p) < 1e-6*(1+p.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMoebiusProperties: the map fixes the sphere setwise and sends a
// to the origin.
func TestMoebiusProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := RandomUnitVec3(rng).Scale(rng.Float64() * 0.95)
		mob := MoebiusToOrigin(a)
		if img := mob(a); img.Norm() > 1e-9 {
			t.Fatalf("trial %d: a maps to %v, want origin", trial, img)
		}
		for k := 0; k < 20; k++ {
			q := RandomUnitVec3(rng)
			if r := mob(q).Norm(); math.Abs(r-1) > 1e-9 {
				t.Fatalf("trial %d: sphere point maps to radius %v", trial, r)
			}
		}
	}
}

// TestRadonPoint: the Radon point of 5 points must lie inside their
// convex hull (it is a convex combination of the positive class, which
// itself lies in the hull).
func TestRadonPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var pts [5]Vec3
		for i := range pts {
			pts[i] = Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		r, ok := RadonPoint(pts)
		if !ok {
			continue // degenerate draw
		}
		// Hull membership check via LP-free necessary condition: r is
		// within the bounding box and within max distance of centroid.
		c := Centroid3(pts[:])
		maxD := 0.0
		for _, p := range pts {
			if d := p.Dist(c); d > maxD {
				maxD = d
			}
		}
		if r.Dist(c) > maxD+1e-9 {
			t.Fatalf("trial %d: radon point outside hull radius", trial)
		}
	}
}

// TestCenterpointDepth: every halfspace through the estimated
// centerpoint should contain a decent fraction of the points (the
// guarantee is 1/5 for a true centerpoint; the iterated estimate gets
// close — we assert 1/8 with random directions).
func TestCenterpointDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]Vec3, 600)
	for i := range pts {
		pts[i] = RandomUnitVec3(rng)
	}
	c := Centerpoint(pts, rng)
	for trial := 0; trial < 50; trial++ {
		u := RandomUnitVec3(rng)
		above := 0
		for _, p := range pts {
			if p.Sub(c).Dot(u) > 0 {
				above++
			}
		}
		frac := float64(above) / float64(len(pts))
		if frac < 1.0/8 || frac > 7.0/8 {
			t.Fatalf("direction %d: fraction %v outside [1/8, 7/8]", trial, frac)
		}
	}
}

func TestCentroids(t *testing.T) {
	if c := Centroid2([]Vec2{{0, 0}, {2, 4}}); c != (Vec2{1, 2}) {
		t.Fatalf("centroid2 = %v", c)
	}
	if c := Centroid3([]Vec3{{0, 0, 0}, {2, 2, 2}}); c != (Vec3{1, 1, 1}) {
		t.Fatalf("centroid3 = %v", c)
	}
}

func TestRectScaleExpand(t *testing.T) {
	r := Rect{1, 1, 3, 5}
	s := r.Scale(2)
	if s != (Rect{2, 2, 6, 10}) {
		t.Fatalf("scale = %+v", s)
	}
	e := r.Expand(1)
	if e != (Rect{0, 0, 4, 6}) {
		t.Fatalf("expand = %+v", e)
	}
	if c := r.Center(); c != (Vec2{2, 3}) {
		t.Fatalf("center = %v", c)
	}
}

func TestRandomUnitVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		if n := RandomUnitVec3(rng).Norm(); math.Abs(n-1) > 1e-9 {
			t.Fatalf("unit3 norm %v", n)
		}
		if n := RandomUnitVec2(rng).Norm(); math.Abs(n-1) > 1e-9 {
			t.Fatalf("unit2 norm %v", n)
		}
	}
}

func TestStereoSouthPole(t *testing.T) {
	// The origin lifts to the south pole.
	q := StereoUp(Vec2{})
	if q.Dist(Vec3{0, 0, -1}) > 1e-12 {
		t.Fatalf("origin lifts to %v", q)
	}
	// StereoDown near the north pole stays finite.
	p := StereoDown(Vec3{0, 0, 1})
	if math.IsInf(p.X, 0) || math.IsNaN(p.X) {
		t.Fatalf("north pole projects to %v", p)
	}
}

func TestMoebiusDegenerateCenter(t *testing.T) {
	// A center on (or outside) the sphere is shrunk inside; the map
	// must stay finite on sphere points.
	rng := rand.New(rand.NewSource(6))
	mob := MoebiusToOrigin(Vec3{0, 0, 1.5})
	for i := 0; i < 20; i++ {
		q := mob(RandomUnitVec3(rng))
		if math.IsNaN(q.X) || math.IsInf(q.Norm(), 0) {
			t.Fatalf("degenerate map output %v", q)
		}
	}
}

func TestCenterpointSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 6; n++ {
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = RandomUnitVec3(rng)
		}
		c := Centerpoint(pts, rng)
		if math.IsNaN(c.X) {
			t.Fatalf("n=%d: NaN centerpoint", n)
		}
	}
}

func TestVec4AndStereo3(t *testing.T) {
	v := Vec4{1, 2, 2, 0}
	if v.Norm() != 3 {
		t.Fatalf("norm = %v", v.Norm())
	}
	p := Vec3{0.3, -0.7, 1.1}
	q := StereoUp3(p)
	if math.Abs(q.Norm()-1) > 1e-12 {
		t.Fatalf("lift off sphere: %v", q.Norm())
	}
	back := StereoDown3(q)
	if back.Dist(p) > 1e-9 {
		t.Fatalf("roundtrip %v -> %v", p, back)
	}
}

func TestMoebius4Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a := RandomUnitVec4(rng).Scale(rng.Float64() * 0.9)
		mob := MoebiusToOrigin4(a)
		if img := mob(a); img.Norm() > 1e-9 {
			t.Fatalf("trial %d: center maps to %v", trial, img)
		}
		for k := 0; k < 10; k++ {
			q := RandomUnitVec4(rng)
			if r := mob(q).Norm(); math.Abs(r-1) > 1e-9 {
				t.Fatalf("trial %d: sphere radius %v", trial, r)
			}
		}
	}
}

func TestCenterpoint4Depth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Vec4, 600)
	for i := range pts {
		pts[i] = RandomUnitVec4(rng)
	}
	c := Centerpoint4(pts, rng)
	for trial := 0; trial < 30; trial++ {
		u := RandomUnitVec4(rng)
		above := 0
		for _, p := range pts {
			if p.Sub(c).Dot(u) > 0 {
				above++
			}
		}
		frac := float64(above) / float64(len(pts))
		if frac < 1.0/10 || frac > 9.0/10 {
			t.Fatalf("direction %d: fraction %v", trial, frac)
		}
	}
}

func TestRadonPoint4InHull(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		var pts [6]Vec4
		for i := range pts {
			pts[i] = Vec4{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		r, ok := RadonPoint4(pts)
		if !ok {
			continue
		}
		c := centroid4(pts[:])
		maxD := 0.0
		for _, p := range pts {
			if d := p.Dist(c); d > maxD {
				maxD = d
			}
		}
		if r.Dist(c) > maxD+1e-9 {
			t.Fatalf("trial %d: radon point outside hull radius", trial)
		}
	}
}

// TestMoebiusValueMatchesClosure pins the Moebius value type to the
// closure API: NewMoebius(a).Apply and MoebiusToOrigin(a) must produce
// bit-identical images, including the shrink of a centre on or outside
// the unit sphere — the batched partition kernel relies on it.
func TestMoebiusValueMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	centres := []Vec3{
		{}, {X: 0.2, Y: -0.3, Z: 0.4}, {X: 0.9, Y: 0.9, Z: 0.9}, {X: 1.5},
	}
	for i := 0; i < 20; i++ {
		centres = append(centres, Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(0.4))
	}
	for _, a := range centres {
		mob := MoebiusToOrigin(a)
		m := NewMoebius(a)
		for i := 0; i < 50; i++ {
			x := RandomUnitVec3(rng)
			if mob(x) != m.Apply(x) {
				t.Fatalf("Moebius value diverges from closure at a=%v x=%v", a, x)
			}
		}
	}
}

// TestMoebiusApplyDots checks the fused kernel against separate apply
// and dot calls.
func TestMoebiusApplyDots(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	m := NewMoebius(Vec3{X: 0.3, Y: -0.1, Z: 0.2})
	us := make([]Vec3, 5)
	for i := range us {
		us[i] = RandomUnitVec3(rng)
	}
	out := make([]float64, len(us))
	for trial := 0; trial < 20; trial++ {
		q := RandomUnitVec3(rng)
		m.ApplyDots(q, us, out)
		p := m.Apply(q)
		for j, u := range us {
			if out[j] != p.Dot(u) {
				t.Fatalf("fused dot %d differs: %v vs %v", j, out[j], p.Dot(u))
			}
		}
	}
}
