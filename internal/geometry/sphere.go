package geometry

import "math/rand"

// StereoUp lifts a point in the plane onto the unit sphere in R^3 by
// inverse stereographic projection from the north pole (0,0,1):
//
//	(x, y)  ->  (2x, 2y, x^2+y^2-1) / (x^2+y^2+1)
//
// The origin maps to the south pole and points at infinity approach the
// north pole. This is the "project up" step of the geometric mesh
// partitioner of Gilbert, Miller and Teng.
func StereoUp(p Vec2) Vec3 {
	d := p.X*p.X + p.Y*p.Y + 1
	return Vec3{2 * p.X / d, 2 * p.Y / d, (d - 2) / d}
}

// StereoDown projects a point on the unit sphere (other than the north
// pole) back to the plane by stereographic projection from the north
// pole. It is the inverse of StereoUp.
func StereoDown(q Vec3) Vec2 {
	d := 1 - q.Z
	if d < 1e-12 {
		d = 1e-12 // point at (numerical) north pole: send it far away
	}
	return Vec2{q.X / d, q.Y / d}
}

// MoebiusToOrigin returns the Möbius automorphism of the unit ball that
// maps the interior point a to the origin. Applied to points on the
// unit sphere it is the conformal map used by the geometric mesh
// partitioner: after mapping, the (approximate) centerpoint a sits at
// the sphere's center, so every great circle through the origin is a
// provably balanced separator of the original point set.
//
// The transformation is the standard ball automorphism
//
//	phi_a(x) = ((1-|a|^2)(x-a) - |x-a|^2 a) / (1 - 2<x,a> + |x|^2 |a|^2)
//
// which fixes the unit sphere setwise and sends a to 0. If |a| >= 1 the
// returned map shrinks a to just inside the ball first, since a
// centerpoint estimate can land on (or, through rounding, outside) the
// sphere only in degenerate inputs.
func MoebiusToOrigin(a Vec3) func(Vec3) Vec3 {
	m := NewMoebius(a)
	return m.Apply
}

// Moebius is the ball automorphism of MoebiusToOrigin as a plain value,
// so batched kernels can hold a slice of maps and apply them without a
// closure allocation or indirect call per point. NewMoebius(a).Apply
// computes bit-identical results to MoebiusToOrigin(a).
type Moebius struct {
	a  Vec3
	aa float64
}

// NewMoebius returns the ball automorphism that maps a to the origin,
// shrinking a to just inside the unit ball first when |a| >= 1 (see
// MoebiusToOrigin).
func NewMoebius(a Vec3) Moebius {
	if n := a.Norm(); n >= 0.999 {
		a = a.Scale(0.999 / n)
	}
	return Moebius{a: a, aa: a.Dot(a)}
}

// Apply evaluates the automorphism at x.
func (m Moebius) Apply(x Vec3) Vec3 {
	a, aa := m.a, m.aa
	xa := x.Sub(a)
	den := 1 - 2*x.Dot(a) + x.Dot(x)*aa
	if den < 1e-12 {
		den = 1e-12
	}
	num := xa.Scale(1 - aa).Sub(a.Scale(xa.Dot(xa)))
	return num.Scale(1 / den)
}

// ApplyDots is the fused projection kernel of the batched geometric
// partitioner: it maps q through m once and writes q'·us[j] into
// out[j]. out must have length len(us). The mapped point never hits
// memory, so evaluating every separator direction of one Möbius map for
// one vertex is a single cache-resident pass.
func (m Moebius) ApplyDots(q Vec3, us []Vec3, out []float64) {
	p := m.Apply(q)
	for j, u := range us {
		out[j] = p.Dot(u)
	}
}

// RandomUnitVec3 returns a uniformly distributed point on the unit
// sphere, drawn from rng via the Gaussian method.
func RandomUnitVec3(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}

// RandomUnitVec2 returns a uniformly distributed direction in the
// plane.
func RandomUnitVec2(rng *rand.Rand) Vec2 {
	for {
		v := Vec2{rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}
