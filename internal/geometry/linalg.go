package geometry

import "math"

// SolveLinear solves the n×n system a·x = b in place using Gaussian
// elimination with partial pivoting. The matrix a is given row-major as
// a slice of rows; both a and b are overwritten. It returns false if the
// system is singular to working precision.
func SolveLinear(a [][]float64, b []float64) bool {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude entry in this column.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := b[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * b[c]
		}
		b[col] = s / a[col][col]
	}
	return true
}

// nvMaxRows/nvMaxCols bound the fixed-size elimination used by the
// Radon-point systems: 4×5 in R³ and 5×6 in R⁴.
const (
	nvMaxRows = 5
	nvMaxCols = 6
)

// nullVectorFixed mirrors NullVector on stack arrays for the small
// Radon systems. The elimination sequence (pivot choice, row
// normalisation, update order) is operation-for-operation the same as
// NullVector's, so the solution is bit-identical — but nothing escapes
// to the heap. The matrix m is clobbered.
func nullVectorFixed(m *[nvMaxRows][nvMaxCols]float64, rows, cols int) (x [nvMaxCols]float64, ok bool) {
	var pivotCol [nvMaxRows]int
	nPiv := 0
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		pivot := -1
		best := 1e-12
		for i := r; i < rows; i++ {
			if v := math.Abs(m[i][c]); v > best {
				best, pivot = v, i
			}
		}
		if pivot < 0 {
			continue // free column
		}
		m[r], m[pivot] = m[pivot], m[r]
		inv := 1 / m[r][c]
		for j := c; j < cols; j++ {
			m[r][j] *= inv
		}
		for i := 0; i < rows; i++ {
			if i == r || m[i][c] == 0 {
				continue
			}
			f := m[i][c]
			for j := c; j < cols; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		pivotCol[nPiv] = c
		nPiv++
		r++
	}
	var isPivot [nvMaxCols]bool
	for _, c := range pivotCol[:nPiv] {
		isPivot[c] = true
	}
	free := -1
	for c := 0; c < cols; c++ {
		if !isPivot[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return x, false
	}
	x[free] = 1
	for i, c := range pivotCol[:nPiv] {
		x[c] = -m[i][free]
	}
	mx := 0.0
	for _, v := range x[:cols] {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	if mx < 1e-300 {
		return x, false
	}
	for i := 0; i < cols; i++ {
		x[i] /= mx
	}
	return x, true
}

// NullVector returns a non-trivial solution x of the homogeneous system
// a·x = 0 where a has rows rows and cols columns with rows < cols, using
// Gaussian elimination. The returned vector has unit infinity norm. It
// returns ok=false if elimination degenerates (all candidate solutions
// numerically zero).
func NullVector(a [][]float64, cols int) (x []float64, ok bool) {
	rows := len(a)
	// Row-echelon reduction with partial pivoting and column pivots
	// recorded so we can identify a free column.
	m := make([][]float64, rows)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	pivotCol := make([]int, 0, rows)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		pivot := -1
		best := 1e-12
		for i := r; i < rows; i++ {
			if v := math.Abs(m[i][c]); v > best {
				best, pivot = v, i
			}
		}
		if pivot < 0 {
			continue // free column
		}
		m[r], m[pivot] = m[pivot], m[r]
		inv := 1 / m[r][c]
		for j := c; j < cols; j++ {
			m[r][j] *= inv
		}
		for i := 0; i < rows; i++ {
			if i == r || m[i][c] == 0 {
				continue
			}
			f := m[i][c]
			for j := c; j < cols; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Choose the first free (non-pivot) column and back-substitute.
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	free := -1
	for c := 0; c < cols; c++ {
		if !isPivot[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, false
	}
	x = make([]float64, cols)
	x[free] = 1
	for i, c := range pivotCol {
		// Row i reads x[c] + Σ_{j>pivots} m[i][j]·x[j] = 0.
		x[c] = -m[i][free]
	}
	// Normalize to unit infinity norm for stability.
	mx := 0.0
	for _, v := range x {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	if mx < 1e-300 {
		return nil, false
	}
	for i := range x {
		x[i] /= mx
	}
	return x, true
}
