// Package geometry implements the computational-geometry substrate of
// the Gilbert–Miller–Teng geometric mesh partitioner: 2-D and 3-D
// vectors, stereographic lifts from the plane to the unit sphere,
// approximate centerpoints via iterated Radon points, the conformal
// dilation that centers a point cloud, and great-circle separators.
package geometry

import "math"

// Vec2 is a point or vector in the plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the inner product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// L1Dist returns the Manhattan distance between v and w.
func (v Vec2) L1Dist(w Vec2) float64 {
	return math.Abs(v.X-w.X) + math.Abs(v.Y-w.Y)
}

// Normalize returns v scaled to unit length, or the zero vector if v is
// (numerically) zero.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n < 1e-300 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Vec3 is a point or vector in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalize returns v scaled to unit length, or the zero vector if v is
// (numerically) zero.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n < 1e-300 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Rect is an axis-aligned bounding box in the plane with corners
// (X0,Y0) (bottom-left) and (X1,Y1) (top-right).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Center returns the midpoint of r.
func (r Rect) Center() Vec2 { return Vec2{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Vec2) Vec2 {
	return Vec2{clamp(p.X, r.X0, r.X1), clamp(p.Y, r.Y0, r.Y1)}
}

// Scale returns r with both dimensions scaled by s about the origin.
func (r Rect) Scale(s float64) Rect {
	return Rect{r.X0 * s, r.Y0 * s, r.X1 * s, r.Y1 * s}
}

// Expand returns r grown by margin on every side.
func (r Rect) Expand(margin float64) Rect {
	return Rect{r.X0 - margin, r.Y0 - margin, r.X1 + margin, r.Y1 + margin}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// BoundingRect returns the tight axis-aligned bounding box of pts. It
// panics on an empty slice.
func BoundingRect(pts []Vec2) Rect {
	if len(pts) == 0 {
		panic("geometry: BoundingRect of empty point set")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.X0 {
			r.X0 = p.X
		}
		if p.X > r.X1 {
			r.X1 = p.X
		}
		if p.Y < r.Y0 {
			r.Y0 = p.Y
		}
		if p.Y > r.Y1 {
			r.Y1 = p.Y
		}
	}
	return r
}

// Centroid2 returns the arithmetic mean of pts, or the zero vector for
// an empty slice.
func Centroid2(pts []Vec2) Vec2 {
	if len(pts) == 0 {
		return Vec2{}
	}
	var c Vec2
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Centroid3 returns the arithmetic mean of pts, or the zero vector for
// an empty slice.
func Centroid3(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
