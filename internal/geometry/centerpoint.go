package geometry

import (
	"math/rand"
	"sync"
)

// RadonPoint computes a Radon point of five points in R^3: a point that
// lies in the convex hulls of both classes of a Radon partition of the
// points. Any d+2 points in R^d admit such a partition. The returned
// bool is false when the computation degenerates numerically (e.g. all
// five points coincide), in which case the centroid is returned.
//
// The elimination runs on fixed-size stack arrays (nullVectorFixed), so
// the call is allocation-free; the solution is bit-identical to the
// general NullVector path.
func RadonPoint(pts [5]Vec3) (Vec3, bool) {
	// Find a non-trivial affine dependence: sum l_i p_i = 0 with
	// sum l_i = 0. That is a 4x5 homogeneous system.
	m := [nvMaxRows][nvMaxCols]float64{
		{pts[0].X, pts[1].X, pts[2].X, pts[3].X, pts[4].X},
		{pts[0].Y, pts[1].Y, pts[2].Y, pts[3].Y, pts[4].Y},
		{pts[0].Z, pts[1].Z, pts[2].Z, pts[3].Z, pts[4].Z},
		{1, 1, 1, 1, 1},
	}
	l, ok := nullVectorFixed(&m, 4, 5)
	if !ok {
		return Centroid3(pts[:]), false
	}
	// The Radon point is the convex combination of the positive class.
	var r Vec3
	pos := 0.0
	for i := 0; i < 5; i++ {
		if li := l[i]; li > 0 {
			r = r.Add(pts[i].Scale(li))
			pos += li
		}
	}
	if pos < 1e-12 {
		return Centroid3(pts[:]), false
	}
	return r.Scale(1 / pos), true
}

// cpWork3 pools the Centerpoint working copy: the iterated-Radon
// reduction runs once per candidate round on every rank, and the sample
// size is stable across calls, so the buffer is reused verbatim.
var cpWork3 = sync.Pool{New: func() any { s := []Vec3(nil); return &s }}

// Centerpoint returns an approximate centerpoint of pts using the
// iterated-Radon-point algorithm (Clarkson et al.): the working set is
// repeatedly shuffled and every group of five points is replaced by its
// Radon point, until at most five points remain; their centroid is the
// estimate. A true centerpoint c guarantees that every halfspace
// containing c contains at least 1/(d+2) = 1/5 of the points; the
// iterated estimate approaches that guarantee with high probability.
//
// The input is not modified. Centerpoint panics on an empty slice.
func Centerpoint(pts []Vec3, rng *rand.Rand) Vec3 {
	if len(pts) == 0 {
		panic("geometry: Centerpoint of empty point set")
	}
	wp := cpWork3.Get().(*[]Vec3)
	buf := append((*wp)[:0], pts...)
	*wp = buf
	defer cpWork3.Put(wp)
	work := buf
	for len(work) > 5 {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		next := work[:0:len(work)]
		i := 0
		for ; i+5 <= len(work); i += 5 {
			var group [5]Vec3
			copy(group[:], work[i:i+5])
			r, _ := RadonPoint(group)
			next = append(next, r)
		}
		// A short tail (fewer than five leftovers) is dropped; the
		// shuffle makes the drop unbiased across rounds.
		if len(next) == 0 {
			// Fewer than 5 remained after grouping; fall back.
			return Centroid3(work)
		}
		work = next
	}
	return Centroid3(work)
}
