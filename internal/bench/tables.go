package bench

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Table1 reproduces Table 1: the test suite with vertex and edge
// counts (in millions for the paper; we also print raw counts since the
// synthetic analogues are ~100× smaller).
func (h *Harness) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Test suite of graphs.\n")
	fmt.Fprintf(&b, "%-20s %12s %12s %10s %10s\n", "", "N", "M", "N(10^6)", "M(10^6)")
	for _, name := range SuiteNames() {
		g := h.Graph(name)
		n, m := g.G.NumVertices(), g.G.NumEdges()
		fmt.Fprintf(&b, "%-20s %12d %12d %10.3f %10.3f\n",
			name, n, m, float64(n)/1e6, float64(m)/1e6)
	}
	return b.String()
}

// Table2 reproduces Table 2: cut-sizes of the geometric methods
// relative to G30 = 1 — G7, G7-NL, RCB, and the average and best
// ScalaPart cuts across the P sweep.
func (h *Harness) Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Relative cut-sizes of geometric methods (G30 = 1).\n")
	fmt.Fprintf(&b, "%-20s %8s %8s %8s %8s %8s\n", "", "G7", "G7-NL", "RCB", "Avg SP", "Best SP")
	cols := make([][]float64, 5)
	for _, name := range SuiteNames() {
		g30 := float64(h.Get(name, MethodG30, 1).Cut)
		g7 := float64(h.Get(name, MethodG7, 1).Cut) / g30
		g7nl := float64(h.Get(name, MethodG7NL, 1).Cut) / g30
		rcb := float64(h.Get(name, MethodRCBSeq, 1).Cut) / g30
		cuts := h.SPCuts(name)
		sum, best := 0.0, float64(cuts[0])
		for _, c := range cuts {
			sum += float64(c)
			if float64(c) < best {
				best = float64(c)
			}
		}
		avg := sum / float64(len(cuts)) / g30
		bst := best / g30
		fmt.Fprintf(&b, "%-20s %8.2f %8.2f %8.2f %8.2f %8.2f\n", name, g7, g7nl, rcb, avg, bst)
		for i, v := range []float64{g7, g7nl, rcb, avg, bst} {
			cols[i] = append(cols[i], v)
		}
	}
	fmt.Fprintf(&b, "%-20s %8.2f %8.2f %8.2f %8.2f %8.2f\n", "Geom. Mean",
		stats.GeoMean(cols[0]), stats.GeoMean(cols[1]), stats.GeoMean(cols[2]),
		stats.GeoMean(cols[3]), stats.GeoMean(cols[4]))
	return b.String()
}

// Table3 reproduces Table 3: best–worst cut-size ranges for Pt-Scotch,
// ParMetis, ScalaPart (across the P sweep), plus the single-run G30 and
// RCB cuts, with a geometric-mean row relative to Pt-Scotch's best.
func (h *Harness) Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Best and worst cut-sizes for all methods.\n")
	fmt.Fprintf(&b, "%-20s %17s %17s %17s %9s %9s\n",
		"", "Pt-Scotch", "ParMetis", "ScalaPart", "G30", "RCB")
	gm := make([][]float64, 8) // ptsLo ptsHi pmLo pmHi spLo spHi g30 rcb
	for _, name := range SuiteNames() {
		ptsLo, ptsHi := h.CutRange(name, MethodPTS)
		pmLo, pmHi := h.CutRange(name, MethodPM)
		spLo, spHi := h.CutRange(name, MethodSP)
		g30 := h.Get(name, MethodG30, 1).Cut
		rcb := h.Get(name, MethodRCBSeq, 1).Cut
		fmt.Fprintf(&b, "%-20s %7d - %7d %7d - %7d %7d - %7d %9d %9d\n",
			name, ptsLo, ptsHi, pmLo, pmHi, spLo, spHi, g30, rcb)
		base := float64(ptsLo)
		for i, v := range []int64{ptsLo, ptsHi, pmLo, pmHi, spLo, spHi, g30, rcb} {
			gm[i] = append(gm[i], float64(v)/base)
		}
	}
	fmt.Fprintf(&b, "%-20s %7.2f - %7.2f %7.2f - %7.2f %7.2f - %7.2f %9.2f %9.2f\n",
		"Geometric Mean",
		stats.GeoMean(gm[0]), stats.GeoMean(gm[1]), stats.GeoMean(gm[2]),
		stats.GeoMean(gm[3]), stats.GeoMean(gm[4]), stats.GeoMean(gm[5]),
		stats.GeoMean(gm[6]), stats.GeoMean(gm[7]))
	return b.String()
}

// Table4 reproduces Table 4: speed-ups at the largest P relative to
// Pt-Scotch for ParMetis, RCB, ScalaPart, and SP-PG7-NL, over
// G3_circuit, hugebubbles, all graphs, and the four largest graphs.
func (h *Harness) Table4() string {
	pMax := h.Ps[len(h.Ps)-1]
	sum := func(names []string, method string) float64 {
		t := 0.0
		for _, n := range names {
			t += h.Get(n, method, pMax).Time
		}
		return t
	}
	row := func(label string, names []string) string {
		pts := sum(names, MethodPTS)
		return fmt.Sprintf("%-16s %9.2f %9.2f %10.2f %10.2f\n", label,
			pts/sum(names, MethodPM), pts/sum(names, MethodRCB),
			pts/sum(names, MethodSP), pts/sum(names, MethodSPPG))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Speed-ups at %d processors relative to Pt-Scotch = 1.\n", pMax)
	fmt.Fprintf(&b, "%-16s %9s %9s %10s %10s\n", "", "ParMetis", "RCB", "ScalaPart", "SP-PG7-NL")
	b.WriteString(row("G3_circuit", []string{"G3_circuit"}))
	b.WriteString(row("hugebubbles", []string{"hugebubbles-00020"}))
	b.WriteString(row("All Graphs", SuiteNames()))
	b.WriteString(row("Large 4 graphs", largeFour()))
	return b.String()
}

func largeFour() []string {
	return []string{"hugetrace-00000", "delaunay_n23", "delaunay_n24", "hugebubbles-00020"}
}
