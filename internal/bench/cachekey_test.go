package bench

import (
	"testing"

	"repro/internal/geopart"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// TestCacheKeySeparatesEnvironments is the regression test for the
// singleflight cache handing back a stale Run after a process-global
// knob changed: the key must fingerprint the worker-pool size, the
// batching and parallel-build toggles, the fault plan, and the tracing
// flag — not just (graph, method, p).
func TestCacheKeySeparatesEnvironments(t *testing.T) {
	h := New(0.03, []int{8})
	base := h.Get("ecology1", MethodSP, 8)

	t.Run("host workers", func(t *testing.T) {
		defer hostpar.SetWorkers(hostpar.SetWorkers(3))
		r := h.Get("ecology1", MethodSP, 8)
		if r == base {
			t.Fatal("cache ignored the host worker-pool size")
		}
		// The knob must not change modeled results, only the cache slot.
		if r.Cut != base.Cut || r.Time != base.Time {
			t.Fatalf("worker count changed modeled results: %v/%v vs %v/%v",
				r.Cut, r.Time, base.Cut, base.Time)
		}
	})

	t.Run("geopart batching", func(t *testing.T) {
		defer geopart.SetBatching(geopart.SetBatching(!geopart.Batching()))
		r := h.Get("ecology1", MethodSP, 8)
		if r == base {
			t.Fatal("cache ignored the candidate-batching toggle")
		}
		if r.Cut != base.Cut || r.Time != base.Time {
			t.Fatalf("batching changed modeled results: %v/%v vs %v/%v",
				r.Cut, r.Time, base.Cut, base.Time)
		}
	})

	t.Run("fault plan", func(t *testing.T) {
		prev := h.Model.Faults
		h.Model.Faults = mpi.NewFaultPlan().Kill(2, 5)
		defer func() { h.Model.Faults = prev }()
		r := h.Get("ecology1", MethodSP, 8)
		if r == base {
			t.Fatal("cache returned a healthy run for a faulted model")
		}
		if !r.Fallback {
			t.Fatalf("faulted run not flagged as fallback: %+v", r)
		}
	})

	t.Run("tracing", func(t *testing.T) {
		prev := h.Trace
		h.Trace = true
		defer func() { h.Trace = prev }()
		r := h.Get("ecology1", MethodSP, 8)
		if r == base {
			t.Fatal("cache returned an untraced run for a traced harness")
		}
		if len(r.Breakdown) == 0 {
			t.Fatal("traced run carries no phase breakdown")
		}
		if r.Cut != base.Cut || r.Time != base.Time ||
			r.CommTime != base.CommTime || r.Messages != base.Messages ||
			r.BytesSent != base.BytesSent {
			t.Fatalf("tracing changed modeled results:\n  traced:   %+v\n  untraced: %+v", r, base)
		}
	})

	// After every knob is restored, the original cache entry is live.
	if h.Get("ecology1", MethodSP, 8) != base {
		t.Fatal("restoring the environment did not restore the cache slot")
	}
}
