// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation section on the synthetic suite,
// using the simulated runtime's virtual clocks as execution time. Runs
// are cached per (graph, method, rank count), so the whole suite sweep
// is computed once and shared by all tables and figures.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/hostpar"
	"repro/internal/mpi"
	"repro/internal/refine"
	"repro/internal/trace"
)

// Method names, as used throughout tables and figures.
const (
	MethodSP     = "ScalaPart"
	MethodSPPG   = "SP-PG7-NL"
	MethodPM     = "ParMetis"
	MethodPTS    = "Pt-Scotch"
	MethodRCB    = "RCB"
	MethodG30    = "G30"
	MethodG7     = "G7"
	MethodG7NL   = "G7-NL"
	MethodRCBSeq = "RCB-seq"
)

// Run is one cached (graph, method, P) outcome.
type Run struct {
	Graph       string
	Method      string
	P           int
	Cut         int64
	Imbalance   float64
	Time        float64 // modeled seconds (max over ranks); 0 for sequential baselines
	CommTime    float64
	WallSeconds float64         // host wall-clock spent computing the run
	PeakRSS     int64           // max heap+stack in-use bytes sampled during the run
	Messages    int64           // point-to-point messages, summed over ranks
	BytesSent   int64           // point-to-point payload bytes, summed over ranks
	Times       core.PhaseTimes // phase breakdown (ScalaPart runs)
	StripSize   int
	Fallback    bool // the parallel run failed; this is the sequential recovery result

	// Breakdown is the aggregated per-phase cost table of the run,
	// populated only when the harness runs with tracing on (h.Trace).
	Breakdown []trace.PhaseCost
}

type runKey struct {
	graph, method string
	p             int
	// env fingerprints every process-global knob that can change a
	// run's recorded statistics, so two sweeps under different settings
	// (worker pools, kernel hooks, fault plans, tracing) never share a
	// cached Run. See Harness.envKey.
	env string
}

// Harness caches graphs, force-directed layouts, and runs. All caches
// are singleflight, so Precompute can fan the sweep across a worker
// pool without ever duplicating a graph build, layout, or run.
type Harness struct {
	Scale   float64 // suite scale; 1 = default bench sizes
	Ps      []int   // processor sweep
	Model   mpi.Model
	Out     io.Writer // progress log; nil silences
	Workers int       // Precompute pool size; 0 = one per available core
	Trace   bool      // record per-run traces and fill Run.Breakdown
	// Compress builds every suite graph in the delta/varint compressed
	// representation (graph.Compress) before any run touches it. Modeled
	// results are bit-identical either way (the pipeline consumes
	// adjacency through graph.Cursor); only host wall clocks and memory
	// footprints change. Part of the cache fingerprint — set it before
	// the first Graph/Get call and do not toggle it mid-sweep, because
	// the per-name graph cache holds whichever representation was built
	// first.
	Compress bool
	// Recover configures rollback recovery for ScalaPart runs (policy
	// off keeps the historical fail-then-fallback behaviour). It is part
	// of the cache fingerprint, so recovered and plain sweeps never
	// share entries.
	Recover core.RecoverOptions
	// Trials > 1 runs ScalaPart with the evolutionary multi-trial
	// search (core.Options.Trials). Part of the cache fingerprint;
	// 0 and 1 both mean the single-pass pipeline and share entries.
	Trials int

	logMu   sync.Mutex
	graphs  cache[string, *gen.Generated]
	layouts cache[string, []geometry.Vec2]
	runs    cache[runKey, *Run]
}

// New returns a harness at the given scale with the given P sweep.
func New(scale float64, ps []int) *Harness {
	return &Harness{
		Scale: scale,
		Ps:    ps,
		Model: mpi.DefaultModel(),
	}
}

// DefaultPs is the paper's processor sweep, 1..1024 in powers of two.
func DefaultPs() []int {
	ps := make([]int, 0, 11)
	for p := 1; p <= 1024; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

func (h *Harness) logf(format string, args ...any) {
	if h.Out != nil {
		h.logMu.Lock()
		fmt.Fprintf(h.Out, format+"\n", args...)
		h.logMu.Unlock()
	}
}

// Graph returns (building and caching) a suite graph by name.
func (h *Harness) Graph(name string) *gen.Generated {
	return h.graphs.get(name, func() *gen.Generated {
		for _, e := range gen.SuiteEntries() {
			if e.Name == name {
				h.logf("generating %s (scale %g)...", name, h.Scale)
				gg := e.Build(h.Scale)
				if h.Compress {
					gg.G = graph.Compress(gg.G)
				}
				return gg
			}
		}
		panic("bench: unknown suite graph " + name)
	})
}

// SuiteNames returns the nine suite graph names in paper order.
func SuiteNames() []string {
	entries := gen.SuiteEntries()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// HuCoords returns (computing and caching) the sequential
// force-directed layout of a suite graph — the stand-in for the
// Mathematica embedding the paper gives to RCB and G30/G7.
func (h *Harness) HuCoords(name string) []geometry.Vec2 {
	return h.layouts.get(name, func() []geometry.Vec2 {
		g := h.Graph(name)
		h.logf("sequential layout of %s (n=%d)...", name, g.G.NumVertices())
		return embed.SequentialLayout(g.G, embed.SeqOptions{Seed: seedOf(name), IterSmooth: 30})
	})
}

// seedOf derives a stable per-graph seed.
func seedOf(name string) int64 {
	var s int64 = 1469598103
	for _, b := range []byte(name) {
		s = s*1099511628211 + int64(b)
	}
	if s < 0 {
		s = -s
	}
	return s%100000 + 1
}

// Get computes (or retrieves) one run.
func (h *Harness) Get(graphName, method string, p int) *Run {
	key := runKey{graphName, method, p, h.envKey()}
	return h.runs.get(key, func() *Run {
		return h.compute(graphName, method, p)
	})
}

// envKey fingerprints the process-global and harness-level knobs a run
// depends on beyond (graph, method, P): the host worker pool, replay
// scheduler and collective engine (wall clocks), the batching /
// parallel-build / embedding / pooling hooks (wall clocks and
// allocations), the fault plan (everything), and tracing (the
// Breakdown field). Two Gets with different fingerprints compute
// independent runs instead of sharing a stale cache entry.
func (h *Harness) envKey() string {
	trials := h.Trials
	if trials < 1 {
		trials = 1
	}
	return fmt.Sprintf("w%d|replay:%s|coll:%s|batch%t|pbuild%t|pembed%t|pool%t|trace%t|compress%t|recover:%s:%d:%d:%d|trials:%d|fullcut:%t|rcbv:%d|faults:%s",
		hostpar.Workers(), mpi.Replay(), mpi.Collectives(), geopart.Batching(), graph.ParallelBuild(),
		embed.Parallel(), mpi.PoolingEnabled(), h.Trace, h.Compress,
		h.Recover.Policy, h.Recover.RetryBudget, h.Recover.MaxRespawns, h.Recover.MaxShrinks,
		trials, refine.FullCut(), geopart.RCBModel(),
		h.Model.Faults.Key())
}

// ParallelMethods lists the methods whose runs execute on the simulated
// runtime — the expensive part of the sweep and the part worth warming
// in parallel. Sequential baselines (G30/G7/G7-NL/RCB-seq) stay lazy.
func ParallelMethods() []string {
	return []string{MethodSP, MethodSPPG, MethodPM, MethodPTS, MethodRCB}
}

// Precompute warms the run cache for methods × suite graphs × the P
// sweep using a worker pool (h.Workers, defaulting to one worker per
// available core). Runs are independent and individually seeded, so
// execution order cannot change any result; the singleflight caches
// keep concurrent workers from duplicating shared graph builds and
// layouts. Table and figure assembly afterwards is pure lookup.
func (h *Harness) Precompute(methods []string) {
	type job struct {
		graph, method string
		p             int
	}
	jobs := make(chan job)
	workers := h.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				h.Get(j.graph, j.method, j.p)
			}
		}()
	}
	for _, name := range SuiteNames() {
		for _, m := range methods {
			for _, p := range h.Ps {
				jobs <- job{name, m, p}
			}
		}
	}
	close(jobs)
	wg.Wait()
}

// fallbackRun completes a run whose parallel execution failed: the
// diagnostic is logged and the sequential baseline partitioner supplies
// the partition, clearly flagged so tables never silently mix degraded
// and healthy results.
func (h *Harness) fallbackRun(run *Run, g *gen.Generated, seed int64, runErr error) *Run {
	h.logf("  FAILED: %v", runErr)
	h.logf("  falling back to the sequential baseline partitioner")
	res, err := core.SequentialFallback(g.G, seed)
	if err != nil {
		panic("bench: " + err.Error())
	}
	run.Cut, run.Imbalance = res.Cut, res.Imbalance
	run.Fallback = true
	return run
}

// startPeakSampler starts a goroutine that samples the live Go memory
// footprint (heap + goroutine stacks in use — the portable proxy for
// resident set) every 50ms and returns a stop function reporting the
// peak observed, including one final sample at stop. Runs computed
// concurrently by Precompute share the process footprint, so the
// per-run number is an upper bound under a parallel warm and exact
// under a sequential sweep (the BENCH recording path).
func startPeakSampler() func() int64 {
	sample := func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapInuse + ms.StackInuse)
	}
	peak := sample()
	done := make(chan struct{})
	result := make(chan int64, 1)
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				if v := sample(); v > peak {
					peak = v
				}
				result <- peak
				return
			case <-tick.C:
				if v := sample(); v > peak {
					peak = v
				}
			}
		}
	}()
	return func() int64 { close(done); return <-result }
}

// addStats folds per-rank runtime statistics into the run's totals.
func (run *Run) addStats(stats []mpi.RankStats) {
	for _, s := range stats {
		run.Messages += s.Messages
		run.BytesSent += s.BytesSent
	}
}

func (h *Harness) compute(graphName, method string, p int) *Run {
	g := h.Graph(graphName)
	seed := seedOf(graphName)
	run := &Run{Graph: graphName, Method: method, P: p}
	h.logf("run %-10s %-18s P=%-5d", method, graphName, p)
	start := time.Now()
	stopSampler := startPeakSampler()
	defer func() {
		run.PeakRSS = stopSampler()
		run.WallSeconds = time.Since(start).Seconds()
		h.logf("  %-10s %-18s P=%-5d modeled %.4gs  wall %.2fs", method, graphName, p, run.Time, run.WallSeconds)
	}()
	switch method {
	case MethodSP:
		opt := core.DefaultOptions(seed)
		opt.Model = h.Model
		opt.Recover = h.Recover
		opt.Trials = h.Trials
		var rec *trace.Recorder
		if h.Trace {
			rec = trace.New()
			opt.Model.Trace = rec
		}
		res, err := core.PartitionChecked(g.G, p, opt)
		if err != nil {
			return h.fallbackRun(run, g, seed, err)
		}
		run.Fallback = res.Fallback
		run.Cut, run.Imbalance = res.Cut, res.Imbalance
		run.Time, run.CommTime = res.Times.Total, res.Times.TotalComm
		run.Times = res.Times
		run.StripSize = res.StripSize
		run.addStats(res.Stats)
		if rec != nil {
			run.Breakdown = rec.Breakdown().Phases
		}
	case MethodSPPG:
		res, err := core.PartitionGeometricChecked(g.G, h.HuCoords(graphName), p, geopart.DefaultParallelConfig(), h.Model)
		if err != nil {
			return h.fallbackRun(run, g, seed, err)
		}
		run.Cut, run.Imbalance = res.Cut, res.Imbalance
		run.Time, run.CommTime = res.Times.Total, res.Times.TotalComm
		run.StripSize = res.StripSize
		run.addStats(res.Stats)
	case MethodRCB:
		res, err := core.RCBParallelChecked(g.G, h.HuCoords(graphName), p, h.Model)
		if err != nil {
			return h.fallbackRun(run, g, seed, err)
		}
		run.Cut, run.Imbalance = res.Cut, res.Imbalance
		run.Time, run.CommTime = res.Times.Total, res.Times.TotalComm
		run.addStats(res.Stats)
	case MethodPM, MethodPTS:
		cfg := baseline.ParMetisLike(seed)
		if method == MethodPTS {
			cfg = baseline.PtScotchLike(seed)
		}
		cfg.Model = h.Model
		res, err := baseline.PartitionChecked(g.G, p, cfg)
		if err != nil {
			return h.fallbackRun(run, g, seed, err)
		}
		run.Cut, run.Imbalance = res.Cut, res.Imbalance
		run.Time, run.CommTime = res.Total, res.Comm
		run.addStats(res.Stats)
	case MethodG30, MethodG7, MethodG7NL:
		var cfg geopart.Config
		switch method {
		case MethodG30:
			cfg = geopart.G30()
		case MethodG7:
			cfg = geopart.G7()
		default:
			cfg = geopart.G7NL()
		}
		cfg.Seed = seed
		_, st, err := geopart.Partition(g.G, h.HuCoords(graphName), cfg)
		if err != nil {
			panic("bench: " + err.Error()) // harness-built coords always match
		}
		run.Cut, run.Imbalance = st.Cut, st.Imbalance
	case MethodRCBSeq:
		_, st := geopart.RCBBisect(g.G, h.HuCoords(graphName))
		run.Cut, run.Imbalance = st.Cut, st.Imbalance
	default:
		panic("bench: unknown method " + method)
	}
	return run
}

// SPCuts returns ScalaPart's cut-sizes across the P sweep for a graph.
func (h *Harness) SPCuts(graphName string) []int64 {
	cuts := make([]int64, 0, len(h.Ps))
	for _, p := range h.Ps {
		cuts = append(cuts, h.Get(graphName, MethodSP, p).Cut)
	}
	return cuts
}

// CutRange returns the min and max cut of a parallel method across the
// P sweep.
func (h *Harness) CutRange(graphName, method string) (min, max int64) {
	min, max = -1, -1
	for _, p := range h.Ps {
		c := h.Get(graphName, method, p).Cut
		if min < 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max
}

// TotalTime sums a method's modeled time over all suite graphs at one
// P.
func (h *Harness) TotalTime(method string, p int) float64 {
	t := 0.0
	for _, name := range SuiteNames() {
		t += h.Get(name, method, p).Time
	}
	return t
}
