package bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/geopart"
	"repro/internal/mpi"
	"repro/internal/refine"
)

// TestQualitySmoke is the CI quality gate: on two suite graphs at
// P ∈ {4, 16}, the full-cut refined pipeline must never cut more than
// the strip-only pipeline, stay inside the balance tolerance, and the
// evolutionary search must never lose to the single-trial run it
// contains. Scale 0.25 keeps it smoke-fast.
func TestQualitySmoke(t *testing.T) {
	tol := geopart.DefaultParallelConfig().Defaults().BalanceTol
	h := New(0.25, []int{4, 16})
	for _, g := range []string{"ecology1", "hugetrace-00000"} {
		for _, p := range []int{4, 16} {
			refine.SetFullCut(false)
			off := h.Get(g, MethodSP, p)
			refine.SetFullCut(true)
			full := h.Get(g, MethodSP, p)
			refine.SetFullCut(false)
			if full.Cut > off.Cut {
				t.Errorf("%s P=%d: full-cut refinement worsened the cut: %d > %d", g, p, full.Cut, off.Cut)
			}
			if full.Imbalance > tol {
				t.Errorf("%s P=%d: refined imbalance %v above tolerance %v", g, p, full.Imbalance, tol)
			}
			if full.Time <= off.Time {
				t.Errorf("%s P=%d: full-cut pass charged no modeled time (%v vs %v)", g, p, full.Time, off.Time)
			}
			t.Logf("%s P=%d: cut %d -> %d (imb %.4f)", g, p, off.Cut, full.Cut, full.Imbalance)
		}
	}
	// The evolutionary search includes trial 0 verbatim, so with a
	// feasible single-trial run it can only match or improve.
	single := h.Get("ecology1", MethodSP, 4)
	h2 := New(0.25, []int{4})
	h2.Trials = 3
	multi := h2.Get("ecology1", MethodSP, 4)
	if single.Imbalance <= tol && multi.Cut > single.Cut {
		t.Errorf("ecology1 P=4: 3-trial cut %d worse than single-trial %d", multi.Cut, single.Cut)
	}
	if multi.Time <= single.Time {
		t.Errorf("ecology1 P=4: 3 trials charged no extra modeled time (%v vs %v)", multi.Time, single.Time)
	}
	t.Logf("ecology1 P=4: cut %d (1 trial) -> %d (3 trials)", single.Cut, multi.Cut)
}

// TestEnvKeyFingerprintsQualityKnobs: flipping any of the new quality
// knobs — trials, the full-cut hook, the RCB cost-model version — must
// change the cache fingerprint, or sweeps under different settings
// would share stale entries.
func TestEnvKeyFingerprintsQualityKnobs(t *testing.T) {
	h := New(1, []int{4})
	base := h.envKey()
	h.Trials = 4
	if h.envKey() == base {
		t.Error("envKey ignores Trials")
	}
	h.Trials = 0

	defer refine.SetFullCut(refine.SetFullCut(true))
	if h.envKey() == base {
		t.Error("envKey ignores the full-cut hook")
	}
	refine.SetFullCut(false)

	defer geopart.SetRCBModel(geopart.SetRCBModel(1))
	if h.envKey() == base {
		t.Error("envKey ignores the RCB cost-model version")
	}
	geopart.SetRCBModel(2)

	// Trials 0 and 1 are the same pipeline and must share cache entries.
	h.Trials = 1
	if h.envKey() != base {
		t.Error("envKey distinguishes Trials=1 from Trials=0")
	}
}

// TestBenchRowsMatchSeedQuality recomputes ecology1 P ∈ {1, 4} of
// BENCH_7.json — the scale-8 perf trajectory committed before the
// quality layer existed — under both collective engines and both
// replay schedulers, with the quality knobs at their defaults (full
// cut off, one trial), and requires every modeled field bit-identical
// to the seed file. This is the BENCH half of the quality layer's
// bit-identity contract: with -refine off -trials 1 the pipeline IS
// the historical pipeline.
func TestBenchRowsMatchSeedQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes scale-8 bench rows four ways (minutes)")
	}
	raw, err := os.ReadFile("../../BENCH_7.json")
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	rows := map[int]BenchRecord{}
	for _, r := range file.Runs {
		if r.Graph == "ecology1" {
			rows[r.P] = r
		}
	}

	h := New(file.Scale, []int{1, 4})
	h.Compress = true // BENCH_7 was recorded with -compress
	for _, eng := range []mpi.CollectiveEngine{mpi.CollectivesFanin, mpi.CollectivesLegacy} {
		defer mpi.SetCollectiveEngine(mpi.SetCollectiveEngine(eng))
		for _, mode := range []mpi.ReplayMode{mpi.ReplayBatched, mpi.ReplayGoroutine} {
			defer mpi.SetReplayMode(mpi.SetReplayMode(mode))
			for _, p := range []int{1, 4} {
				want, ok := rows[p]
				if !ok {
					t.Fatalf("BENCH_7.json has no row for ecology1 P=%d", p)
				}
				got := h.Get("ecology1", MethodSP, p)
				if got.Cut != want.Cut || got.Imbalance != want.Imbalance ||
					got.Time != want.ModeledTime || got.CommTime != want.CommTime ||
					got.Messages != want.Messages || got.BytesSent != want.BytesSent {
					t.Fatalf("engine=%s replay=%v: ecology1 P=%d drifted from BENCH_7.json:\n  want cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d\n  got  cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d",
						eng, mode, p,
						want.Cut, want.Imbalance, want.ModeledTime, want.CommTime, want.Messages, want.BytesSent,
						got.Cut, got.Imbalance, got.Time, got.CommTime, got.Messages, got.BytesSent)
				}
			}
		}
	}
}
