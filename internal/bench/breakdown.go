package bench

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// PhaseBreakdown sweeps ScalaPart over the suite with tracing enabled
// and renders the per-phase virtual-time and byte-volume table for
// every (graph, P) run — the `-phase-breakdown` experiment of
// benchsuite. Traced runs live under their own cache key (envKey), so
// the sweep never contaminates untraced results.
func (h *Harness) PhaseBreakdown() string {
	prevTrace := h.Trace
	h.Trace = true
	defer func() { h.Trace = prevTrace }()
	var sb strings.Builder
	sb.WriteString("Per-phase virtual-time and byte-volume breakdown (ScalaPart)\n")
	sb.WriteString("columns: time_s = phase virtual time (max over ranks); comp/comm/wait split it;\n")
	sb.WriteString("ts_s/tw_s/to_s = the Section 3.1 latency / bandwidth / per-peer cost terms;\n")
	sb.WriteString("bytes/msgs/colls are summed over ranks.\n")
	for _, name := range SuiteNames() {
		for _, p := range h.Ps {
			r := h.Get(name, MethodSP, p)
			fmt.Fprintf(&sb, "\n%s  P=%d  (cut %d, modeled %.4gs%s)\n",
				name, p, r.Cut, r.Time, fallbackTag(r))
			if len(r.Breakdown) == 0 {
				sb.WriteString("  no trace (run fell back to the sequential baseline)\n")
				continue
			}
			sb.WriteString((&trace.Breakdown{Phases: r.Breakdown}).Table())
		}
	}
	return sb.String()
}

func fallbackTag(r *Run) string {
	if r.Fallback {
		return ", sequential fallback"
	}
	return ""
}
