package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
)

var (
	miniOnce sync.Once
	mini     *Harness
)

// miniHarness keeps tests quick: tiny graphs, three rank counts, one
// shared cache across all tests of this package.
func miniHarness() *Harness {
	miniOnce.Do(func() {
		mini = New(0.03, []int{1, 8, 64})
	})
	return mini
}

func TestTablesRenderAllGraphs(t *testing.T) {
	h := miniHarness()
	for name, out := range map[string]string{
		"table1": h.Table1(),
		"table2": h.Table2(),
		"table3": h.Table3(),
	} {
		for _, g := range SuiteNames() {
			if !strings.Contains(out, g) {
				t.Fatalf("%s missing row for %s:\n%s", name, g, out)
			}
		}
	}
}

func TestFiguresRenderAllPs(t *testing.T) {
	h := miniHarness()
	for name, out := range map[string]string{
		"fig3": h.Fig3(),
		"fig4": h.Fig4(),
		"fig7": h.Fig7(),
		"fig8": h.Fig8(),
	} {
		for _, p := range []string{"     1 ", "     8 ", "    64 "} {
			if !strings.Contains(out, p) {
				t.Fatalf("%s missing P row %q:\n%s", name, p, out)
			}
		}
	}
}

func TestRunCaching(t *testing.T) {
	h := miniHarness()
	a := h.Get("ecology1", MethodSP, 8)
	b := h.Get("ecology1", MethodSP, 8)
	if a != b {
		t.Fatal("repeat Get did not hit the cache")
	}
}

func TestCutRangeOrdering(t *testing.T) {
	h := miniHarness()
	lo, hi := h.CutRange("ecology1", MethodPM)
	if lo <= 0 || hi < lo {
		t.Fatalf("range %d..%d", lo, hi)
	}
}

func TestSeedOfStable(t *testing.T) {
	if seedOf("ecology1") != seedOf("ecology1") {
		t.Fatal("seedOf not stable")
	}
	if seedOf("ecology1") == seedOf("ecology2") {
		t.Fatal("seedOf collides for suite names")
	}
}

func TestRemainingExperimentsRender(t *testing.T) {
	h := miniHarness()
	for name, out := range map[string]string{
		"fig5":   h.Fig5(),
		"fig6":   h.Fig6(),
		"fig9":   h.Fig9(),
		"table4": h.Table4(),
		"fig2":   h.Fig2(),
	} {
		if len(out) < 40 {
			t.Fatalf("%s suspiciously short:\n%s", name, out)
		}
	}
}

func TestAblationsRender(t *testing.T) {
	h := miniHarness()
	for name, out := range map[string]string{
		"block":   h.AblationBlockSize(),
		"strip":   h.AblationStripFM(),
		"tries":   h.AblationTries(),
		"levels":  h.AblationLevelRetention(),
		"lattice": h.AblationLatticeVsExact(),
		"ssde":    h.AblationSSDE(),
	} {
		if !strings.Contains(out, "Ablation") {
			t.Fatalf("%s: missing header:\n%s", name, out)
		}
		if !strings.Contains(out, "cut") {
			t.Fatalf("%s: no cut column", name)
		}
	}
}

// TestHarnessFallbackOnFault: a harness whose model kills a rank must
// still deliver a valid run, flagged as the sequential fallback.
func TestHarnessFallbackOnFault(t *testing.T) {
	h := New(0.03, []int{8})
	var log strings.Builder
	h.Out = &log
	h.Model.Faults = mpi.NewFaultPlan().Kill(2, 5)
	r := h.Get("ecology1", MethodSP, 8)
	if !r.Fallback {
		t.Fatalf("run not flagged as fallback: %+v", r)
	}
	if r.Cut <= 0 || r.Imbalance > 0.1 {
		t.Fatalf("fallback partition implausible: cut=%d imb=%v", r.Cut, r.Imbalance)
	}
	if msg := log.String(); !strings.Contains(msg, "FAILED") || !strings.Contains(msg, "rank 2") {
		t.Fatalf("diagnostic not logged:\n%s", msg)
	}
}

func TestSPCutsLength(t *testing.T) {
	h := miniHarness()
	cuts := h.SPCuts("ecology1")
	if len(cuts) != len(h.Ps) {
		t.Fatalf("%d cuts for %d Ps", len(cuts), len(h.Ps))
	}
	for _, c := range cuts {
		if c <= 0 {
			t.Fatalf("non-positive cut in %v", cuts)
		}
	}
}
