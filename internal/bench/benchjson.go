package bench

import (
	"encoding/json"

	"repro/internal/hostpar"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// BenchRecord is one row of a BENCH_*.json perf-trajectory file: the
// modeled outcome of one (graph, method, P) run plus the host
// wall-clock the simulator spent producing it, so both modeled and
// simulator-speed regressions are visible across PRs.
type BenchRecord struct {
	Graph       string  `json:"graph"`
	Method      string  `json:"method"`
	P           int     `json:"p"`
	Cut         int64   `json:"cut"`
	Imbalance   float64 `json:"imbalance"`
	ModeledTime float64 `json:"modeled_time_s"`
	CommTime    float64 `json:"comm_time_s"`
	Messages    int64   `json:"messages"`
	BytesSent   int64   `json:"bytes_sent"`
	WallSeconds float64 `json:"wall_s"`
	// HostWorkers, ReplayMode, and Collectives record the
	// host-performance knobs the wall clock was measured under; every
	// modeled field above is independent of all three by construction
	// (TestReplayModesBitIdentical, TestHighPEnginesBitIdentical).
	HostWorkers int    `json:"host_workers,omitempty"`
	ReplayMode  string `json:"replay_mode,omitempty"`
	Collectives string `json:"collectives,omitempty"`
	Fallback    bool   `json:"fallback,omitempty"`
	// Compressed records whether the run consumed the delta/varint
	// compressed adjacency (Harness.Compress); BytesPerEdge is the
	// adjacency footprint of the input graph per undirected edge under
	// that representation, and PeakRSS the max heap+stack in-use bytes
	// sampled while the run computed. All three are host-memory
	// observability; the modeled fields above are independent of the
	// representation by construction (TestCompressedPipelineBitIdentical).
	Compressed   bool    `json:"compressed,omitempty"`
	BytesPerEdge float64 `json:"bytes_per_edge,omitempty"`
	PeakRSS      int64   `json:"peak_rss_bytes,omitempty"`
	// PhaseBreakdown is present only when the sweep ran with tracing on
	// (Harness.Trace); the default BENCH files omit it, keeping them
	// bit-identical to pre-tracing files.
	PhaseBreakdown []trace.PhaseCost `json:"phase_breakdown,omitempty"`
}

// BenchFile is the top-level shape of a BENCH_*.json file. HostWorkers
// records the fork-join pool size the wall clocks were measured under;
// modeled fields are independent of it by construction
// (TestHierarchyBitIdentical).
type BenchFile struct {
	Scale       float64       `json:"suite_scale"`
	Ps          []int         `json:"ps"`
	HostWorkers int           `json:"host_workers,omitempty"`
	Runs        []BenchRecord `json:"runs"`
}

// BenchJSON sweeps ScalaPart over the synthetic suite (warming the
// cache in parallel) and renders the per-run records as indented JSON.
func (h *Harness) BenchJSON() ([]byte, error) {
	h.Precompute([]string{MethodSP})
	file := BenchFile{Scale: h.Scale, Ps: h.Ps, HostWorkers: hostpar.Workers()}
	for _, name := range SuiteNames() {
		g := h.Graph(name)
		bytesPerEdge := 0.0
		if m := g.G.NumEdges(); m > 0 {
			bytesPerEdge = float64(g.G.AdjacencyBytes()) / float64(m)
		}
		for _, p := range h.Ps {
			r := h.Get(name, MethodSP, p)
			file.Runs = append(file.Runs, BenchRecord{
				Graph:       r.Graph,
				Method:      r.Method,
				P:           r.P,
				Cut:         r.Cut,
				Imbalance:   r.Imbalance,
				ModeledTime: r.Time,
				CommTime:    r.CommTime,
				Messages:    r.Messages,
				BytesSent:   r.BytesSent,
				WallSeconds: r.WallSeconds,
				HostWorkers: hostpar.Workers(),
				ReplayMode:  mpi.Replay().String(),
				Collectives: mpi.Collectives().String(),
				Fallback:    r.Fallback,

				Compressed:   g.G.Compressed(),
				BytesPerEdge: bytesPerEdge,
				PeakRSS:      r.PeakRSS,

				PhaseBreakdown: r.Breakdown,
			})
		}
	}
	return json.MarshalIndent(&file, "", "  ")
}
