package bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/mpi"
)

// TestBenchRowsBitIdenticalToSeed recomputes a sample of BENCH_4.json
// rows — the perf-trajectory file committed before the observability
// layer existed — and requires every modeled field to be bit-identical,
// both with tracing disabled (the default) and with a Recorder
// attached. The sample covers the four cheapest graphs at P ∈ {1, 4,
// 16}; the full 45-row sweep is the BENCH regeneration job's business.
func TestBenchRowsBitIdenticalToSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes bench rows at the seed scale (~10s)")
	}
	raw, err := os.ReadFile("../../BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[int]BenchRecord{}
	for _, r := range file.Runs {
		if rows[r.Graph] == nil {
			rows[r.Graph] = map[int]BenchRecord{}
		}
		rows[r.Graph][r.P] = r
	}

	graphs := []string{"ecology1", "ecology2", "delaunay_n20", "G3_circuit"}
	ps := []int{1, 4, 16}
	check := func(t *testing.T, want BenchRecord, got *Run) {
		t.Helper()
		if got.Cut != want.Cut || got.Imbalance != want.Imbalance ||
			got.Time != want.ModeledTime || got.CommTime != want.CommTime ||
			got.Messages != want.Messages || got.BytesSent != want.BytesSent {
			t.Fatalf("%s P=%d drifted from BENCH_4.json:\n  want cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d\n  got  cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d",
				want.Graph, want.P,
				want.Cut, want.Imbalance, want.ModeledTime, want.CommTime, want.Messages, want.BytesSent,
				got.Cut, got.Imbalance, got.Time, got.CommTime, got.Messages, got.BytesSent)
		}
	}

	h := New(file.Scale, ps)
	for _, g := range graphs {
		for _, p := range ps {
			want, ok := rows[g][p]
			if !ok {
				t.Fatalf("BENCH_4.json has no row for %s P=%d", g, p)
			}
			check(t, want, h.Get(g, MethodSP, p))
		}
	}

	// A traced run must reproduce the same modeled fields bit-for-bit
	// and additionally carry the phase breakdown.
	h.Trace = true
	for _, p := range []int{1, 4} {
		r := h.Get("ecology1", MethodSP, p)
		check(t, rows["ecology1"][p], r)
		if len(r.Breakdown) == 0 {
			t.Fatalf("traced ecology1 P=%d run has no phase breakdown", p)
		}
	}
}

// TestBenchRowsMatchSeedCompressed recomputes a sample of BENCH_5.json
// rows — the scale-0.25 perf-trajectory committed before the compressed
// representation existed — twice, once on plain CSR graphs and once
// under Harness.Compress, and requires every modeled field to be
// bit-identical to the seed file both times. This is the BENCH half of
// the compression contract (core's TestCompressedPipelineBitIdentical
// is the pipeline half): -compress may only change host wall clocks and
// memory footprints, never a recorded result.
func TestBenchRowsMatchSeedCompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes bench rows at the seed scale twice (~20s)")
	}
	raw, err := os.ReadFile("../../BENCH_5.json")
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[int]BenchRecord{}
	for _, r := range file.Runs {
		if rows[r.Graph] == nil {
			rows[r.Graph] = map[int]BenchRecord{}
		}
		rows[r.Graph][r.P] = r
	}

	graphs := []string{"ecology1", "ecology2", "delaunay_n20", "G3_circuit"}
	ps := []int{1, 4, 16}
	for _, compress := range []bool{false, true} {
		h := New(file.Scale, ps)
		h.Compress = compress
		for _, g := range graphs {
			for _, p := range ps {
				want, ok := rows[g][p]
				if !ok {
					t.Fatalf("BENCH_5.json has no row for %s P=%d", g, p)
				}
				got := h.Get(g, MethodSP, p)
				if got.Cut != want.Cut || got.Imbalance != want.Imbalance ||
					got.Time != want.ModeledTime || got.CommTime != want.CommTime ||
					got.Messages != want.Messages || got.BytesSent != want.BytesSent {
					t.Fatalf("compress=%v: %s P=%d drifted from BENCH_5.json:\n  want cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d\n  got  cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d",
						compress, want.Graph, want.P,
						want.Cut, want.Imbalance, want.ModeledTime, want.CommTime, want.Messages, want.BytesSent,
						got.Cut, got.Imbalance, got.Time, got.CommTime, got.Messages, got.BytesSent)
				}
				if got.PeakRSS <= 0 {
					t.Errorf("compress=%v: %s P=%d run recorded no peak RSS", compress, g, p)
				}
			}
		}
		// The compressed sweep must actually have consumed the compressed
		// representation, and at a worthwhile footprint.
		gg := h.Graph("ecology1")
		if gg.G.Compressed() != compress {
			t.Fatalf("compress=%v but harness graph Compressed()=%v", compress, gg.G.Compressed())
		}
		if compress {
			plain := 4 * int64(2*gg.G.NumEdges())
			if gg.G.EWgt != nil {
				plain *= 2
			}
			if adj := gg.G.AdjacencyBytes(); adj > plain*60/100 {
				t.Errorf("compressed adjacency %dB exceeds 60%% of plain %dB", adj, plain)
			}
		}
	}
}

// TestBenchRowsMatchSeedHighP recomputes a P-sweep sample of
// BENCH_6.json — the scale-1 perf-trajectory committed before the
// high-P collective engine existed — under both collective engines, and
// requires every modeled field to be bit-identical to the seed file
// each time. This is the BENCH half of the engine contract
// (mpi.TestCollectiveFaninMatchesLegacy and
// core.TestHighPEnginesBitIdentical are the runtime and pipeline
// halves): the fan-in rendezvous, word fast path, ring mailboxes, and
// rank arena may only change host wall clocks and memory footprints,
// never a recorded result.
func TestBenchRowsMatchSeedHighP(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes scale-1 bench rows across the P sweep twice (~20s)")
	}
	raw, err := os.ReadFile("../../BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	rows := map[int]BenchRecord{}
	for _, r := range file.Runs {
		if r.Graph == "ecology1" {
			rows[r.P] = r
		}
	}

	for _, eng := range []mpi.CollectiveEngine{mpi.CollectivesFanin, mpi.CollectivesLegacy} {
		defer mpi.SetCollectiveEngine(mpi.SetCollectiveEngine(eng))
		h := New(file.Scale, file.Ps)
		h.Compress = true // BENCH_6 was recorded with -compress
		for _, p := range file.Ps {
			want, ok := rows[p]
			if !ok {
				t.Fatalf("BENCH_6.json has no row for ecology1 P=%d", p)
			}
			got := h.Get("ecology1", MethodSP, p)
			if got.Cut != want.Cut || got.Imbalance != want.Imbalance ||
				got.Time != want.ModeledTime || got.CommTime != want.CommTime ||
				got.Messages != want.Messages || got.BytesSent != want.BytesSent {
				t.Fatalf("engine=%s: ecology1 P=%d drifted from BENCH_6.json:\n  want cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d\n  got  cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d",
					eng, p,
					want.Cut, want.Imbalance, want.ModeledTime, want.CommTime, want.Messages, want.BytesSent,
					got.Cut, got.Imbalance, got.Time, got.CommTime, got.Messages, got.BytesSent)
			}
		}
	}
}
