package bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// TestChaosSoakCI is the CI chaos soak: seeded randomized fault
// schedules against recovery-enabled partitioning over three suite
// graphs, P ∈ {4, 16}, and both recovery policies. Every schedule must
// end in a partition passing the invariant checkers; full-strength
// survivors must reproduce the fault-free cut bit-identically.
func TestChaosSoakCI(t *testing.T) {
	if testing.Short() {
		t.Skip("soaks dozens of recovery-enabled runs (~1 min)")
	}
	h := New(0.15, []int{4, 16})
	rep := h.ChaosSoak(ChaosConfig{
		Graphs:    []string{"ecology1", "ecology2", "delaunay_n20"},
		Ps:        []int{4, 16},
		Policies:  []core.RecoveryPolicy{core.RecoverRespawn, core.RecoverShrink},
		Schedules: 2,
		Seed:      1,
	})
	t.Logf("\n%s", rep)
	if rep.Failed != 0 {
		t.Fatalf("%d chaos case(s) failed verification:\n%v", rep.Failed, rep.Failures())
	}
	if len(rep.Cases) != 24 {
		t.Fatalf("soak ran %d cases, want 24", len(rep.Cases))
	}
	// The soak is vacuous if no schedule ever forced the driver to act.
	acted := 0
	for _, c := range rep.Cases {
		if c.Recovery.Respawns > 0 || c.Recovery.Shrinks > 0 || c.Fallback {
			acted++
		}
	}
	if acted == 0 {
		t.Fatal("no chaos schedule triggered any recovery — the soak tested nothing")
	}
}

// TestChaosSoakBatchedReplay: recovery must be replay-mode-agnostic. A
// small chaos slice runs once under the goroutine replay and once under
// the batched rank-stepping scheduler with a worker batch far below P;
// both must verify clean, and every case must reach the identical
// outcome — same cut, same surviving world size, same
// respawn/shrink/fallback trajectory — because the gate only reorders
// host execution, never the modeled run the fault schedule keys off.
func TestChaosSoakBatchedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a recovery-enabled chaos slice twice (~30 s)")
	}
	cfg := ChaosConfig{
		Graphs:    []string{"ecology1"},
		Ps:        []int{16},
		Policies:  []core.RecoveryPolicy{core.RecoverRespawn, core.RecoverShrink},
		Schedules: 2,
		Seed:      1,
	}
	run := func(mode mpi.ReplayMode) *ChaosReport {
		defer mpi.SetReplayMode(mpi.SetReplayMode(mode))
		defer hostpar.SetWorkers(hostpar.SetWorkers(2))
		h := New(0.15, cfg.Ps)
		return h.ChaosSoak(cfg)
	}
	ref := run(mpi.ReplayGoroutine)
	got := run(mpi.ReplayBatched)
	for _, rep := range []*ChaosReport{ref, got} {
		if rep.Failed != 0 {
			t.Fatalf("%d chaos case(s) failed verification:\n%v", rep.Failed, rep.Failures())
		}
	}
	if len(got.Cases) != len(ref.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(got.Cases), len(ref.Cases))
	}
	for i := range ref.Cases {
		a, b := got.Cases[i], ref.Cases[i]
		if a.Plan != b.Plan || a.Cut != b.Cut || a.FinalP != b.FinalP ||
			a.Fallback != b.Fallback ||
			a.Recovery.Respawns != b.Recovery.Respawns ||
			a.Recovery.Shrinks != b.Recovery.Shrinks ||
			a.Recovery.Attempts != b.Recovery.Attempts {
			t.Errorf("case %d diverged across replay modes:\n  batched   %+v\n  goroutine %+v", i, a, b)
		}
	}
}

// TestRecoveryZeroFaultsMatchesSeedRows: arming recovery without any
// fault schedule must not move a single modeled field relative to the
// committed BENCH_4.json perf trajectory — the reliability layer's
// sequence numbers and the driver's checkpointing are pure bookkeeping
// until a fault actually fires.
func TestRecoveryZeroFaultsMatchesSeedRows(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes bench rows at the seed scale")
	}
	raw, err := os.ReadFile("../../BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	want := map[int]BenchRecord{}
	for _, r := range file.Runs {
		if r.Graph == "ecology1" {
			want[r.P] = r
		}
	}
	for _, policy := range []core.RecoveryPolicy{core.RecoverRespawn, core.RecoverShrink} {
		h := New(file.Scale, []int{1, 4, 16})
		h.Recover = core.RecoverOptions{Policy: policy}
		for _, p := range []int{1, 4, 16} {
			w, ok := want[p]
			if !ok {
				t.Fatalf("BENCH_4.json has no ecology1 row at P=%d", p)
			}
			got := h.Get("ecology1", MethodSP, p)
			if got.Fallback {
				t.Fatalf("policy %s P=%d: zero-fault run fell back", policy, p)
			}
			if got.Cut != w.Cut || got.Imbalance != w.Imbalance ||
				got.Time != w.ModeledTime || got.CommTime != w.CommTime ||
				got.Messages != w.Messages || got.BytesSent != w.BytesSent {
				t.Fatalf("policy %s P=%d drifted from BENCH_4.json:\n  want cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d\n  got  cut=%d imb=%v time=%v comm=%v msgs=%d bytes=%d",
					policy, p,
					w.Cut, w.Imbalance, w.ModeledTime, w.CommTime, w.Messages, w.BytesSent,
					got.Cut, got.Imbalance, got.Time, got.CommTime, got.Messages, got.BytesSent)
			}
		}
	}
}
