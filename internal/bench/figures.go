package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Fig3 reproduces Figure 3: total modeled execution time over all nine
// graphs versus P, for ScalaPart, Pt-Scotch, ParMetis, and RCB (RCB on
// pre-computed coordinates, embedding time excluded, as in the paper).
func (h *Harness) Fig3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Total execution times over all %d graphs (modeled seconds).\n", len(SuiteNames()))
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n", "P", "ScalaPart", "Pt-Scotch", "ParMetis", "RCB")
	for _, p := range h.Ps {
		fmt.Fprintf(&b, "%6d %12.4f %12.4f %12.4f %12.4f\n", p,
			h.TotalTime(MethodSP, p), h.TotalTime(MethodPTS, p),
			h.TotalTime(MethodPM, p), h.TotalTime(MethodRCB, p))
	}
	return b.String()
}

// Fig4 reproduces Figure 4: total times for RCB versus SP-PG7-NL
// (ScalaPart excluding coarsening and embedding), the
// coordinates-already-available use case.
func (h *Harness) Fig4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: RCB vs SP-PG7-NL total times over all graphs (modeled seconds).\n")
	fmt.Fprintf(&b, "%6s %12s %12s\n", "P", "RCB", "SP-PG7-NL")
	for _, p := range h.Ps {
		fmt.Fprintf(&b, "%6d %12.5f %12.5f\n", p,
			h.TotalTime(MethodRCB, p), h.TotalTime(MethodSPPG, p))
	}
	return b.String()
}

// FigGraphTimes reproduces Figures 5 and 6: execution time versus P
// for one graph, all four parallel methods.
func (h *Harness) FigGraphTimes(figure, graphName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Execution time for %s (modeled seconds).\n", figure, graphName)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n", "P", "ScalaPart", "Pt-Scotch", "ParMetis", "RCB")
	for _, p := range h.Ps {
		fmt.Fprintf(&b, "%6d %12.5f %12.5f %12.5f %12.5f\n", p,
			h.Get(graphName, MethodSP, p).Time,
			h.Get(graphName, MethodPTS, p).Time,
			h.Get(graphName, MethodPM, p).Time,
			h.Get(graphName, MethodRCB, p).Time)
	}
	return b.String()
}

// Fig5 is hugebubbles-00020; Fig6 is G3_circuit.
func (h *Harness) Fig5() string { return h.FigGraphTimes("Figure 5", "hugebubbles-00020") }

// Fig6 reports G3_circuit times versus P.
func (h *Harness) Fig6() string { return h.FigGraphTimes("Figure 6", "G3_circuit") }

// Fig7 reproduces Figure 7: ScalaPart component times (coarsening,
// embedding, partitioning) as fractions of the total, summed over all
// graphs, versus P.
func (h *Harness) Fig7() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: ScalaPart component times as fraction of total.\n")
	fmt.Fprintf(&b, "%6s %10s %10s %10s\n", "P", "coarsen", "embed", "partition")
	for _, p := range h.Ps {
		var co, em, pa float64
		for _, name := range SuiteNames() {
			t := h.Get(name, MethodSP, p).Times
			co += t.Coarsen
			em += t.Embed
			pa += t.Partition
		}
		tot := co + em + pa
		if tot == 0 {
			tot = 1
		}
		fmt.Fprintf(&b, "%6d %10.3f %10.3f %10.3f\n", p, co/tot, em/tot, pa/tot)
	}
	return b.String()
}

// Fig8 reproduces Figure 8: the communication share of the embedding
// time versus P, summed over all graphs.
func (h *Harness) Fig8() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Embedding time composition (communication fraction).\n")
	fmt.Fprintf(&b, "%6s %12s %12s %10s\n", "P", "embed", "embed-comm", "fraction")
	for _, p := range h.Ps {
		var em, cm float64
		for _, name := range SuiteNames() {
			t := h.Get(name, MethodSP, p).Times
			em += t.Embed
			cm += t.EmbedComm
		}
		frac := 0.0
		if em > 0 {
			frac = cm / em
		}
		fmt.Fprintf(&b, "%6d %12.4f %12.4f %10.3f\n", p, em, cm, frac)
	}
	return b.String()
}

// Fig9 reproduces Figure 9: execution times for the four largest
// graphs at P = 16..1024 for Pt-Scotch, ParMetis, and ScalaPart, plus
// the average across the four.
func (h *Harness) Fig9() string {
	var ps []int
	for _, p := range h.Ps {
		if p >= 16 {
			ps = append(ps, p)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Times for the 4 largest graphs (modeled seconds).\n")
	for _, name := range append(largeFour(), "average") {
		fmt.Fprintf(&b, "%s:\n", name)
		fmt.Fprintf(&b, "  %6s %12s %12s %12s\n", "P", "Pt-Scotch", "ParMetis", "ScalaPart")
		for _, p := range ps {
			var pts, pm, sp float64
			if name == "average" {
				for _, g := range largeFour() {
					pts += h.Get(g, MethodPTS, p).Time
					pm += h.Get(g, MethodPM, p).Time
					sp += h.Get(g, MethodSP, p).Time
				}
				pts /= 4
				pm /= 4
				sp /= 4
			} else {
				pts = h.Get(name, MethodPTS, p).Time
				pm = h.Get(name, MethodPM, p).Time
				sp = h.Get(name, MethodSP, p).Time
			}
			fmt.Fprintf(&b, "  %6d %12.5f %12.5f %12.5f\n", p, pts, pm, sp)
		}
	}
	return b.String()
}

// Fig2 reproduces Figure 2's statistic: the refinement strip around the
// separator of a delaunay_n16-scale mesh contains a small multiple of
// the separator size (the paper reports 5.6×).
func (h *Harness) Fig2() string {
	n := int(65536 * h.Scale)
	if n < 1024 {
		n = 1024
	}
	g := gen.DelaunayRandom(n, 1616)
	res := core.Partition(g.G, 16, core.DefaultOptions(16))
	sep := graph.CutSize(g.G, res.Part)
	ratio := 0.0
	if sep > 0 {
		ratio = float64(res.StripSize) / float64(sep)
	}
	return fmt.Sprintf(
		"Figure 2: strip refinement on delaunay_n16-scale mesh (n=%d, P=16).\n"+
			"  separator edges: %d   strip vertices: %d   ratio: %.1fx (paper: 5.6x)\n"+
			"  cut before refinement: %d   after: %d\n",
		g.G.NumVertices(), sep, res.StripSize, ratio, res.CutBefore, res.Cut)
}
