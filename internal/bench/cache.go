package bench

import "sync"

// cache is a concurrency-safe memo table with singleflight semantics:
// the first goroutine to ask for a key computes it while later askers
// block until the value lands, so a parallel sweep never duplicates an
// expensive run (or graph build, or sequential layout).
type cache[K comparable, V any] struct {
	mu       sync.Mutex
	vals     map[K]V
	inflight map[K]chan struct{}
}

func (c *cache[K, V]) get(k K, compute func() V) V {
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[K]V)
		c.inflight = make(map[K]chan struct{})
	}
	for {
		if v, ok := c.vals[k]; ok {
			c.mu.Unlock()
			return v
		}
		ch, ok := c.inflight[k]
		if !ok {
			break
		}
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[k] = ch
	c.mu.Unlock()
	v := compute()
	c.mu.Lock()
	c.vals[k] = v
	delete(c.inflight, k)
	close(ch)
	c.mu.Unlock()
	return v
}

// snapshot returns a copy of the currently cached values.
func (c *cache[K, V]) snapshot() map[K]V {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[K]V, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}
