package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/geopart"
	"repro/internal/mpi"
)

// ablationGraph is the workload used by the design-choice ablations: a
// mid-sized Delaunay mesh at the harness scale.
const ablationGraph = "delaunay_n20"
const ablationP = 64

// AblationBlockSize varies the staleness block (iterations between
// global refreshes): the paper reports no observable quality change for
// blocks of 2–8 while global communication drops accordingly.
func (h *Harness) AblationBlockSize() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: staleness block size (graph %s, P=%d).\n", ablationGraph, ablationP)
	fmt.Fprintf(&b, "%6s %8s %12s %12s\n", "block", "cut", "embed(s)", "embed-comm")
	for _, bs := range []int{1, 2, 4, 8} {
		opt := core.DefaultOptions(seedOf(ablationGraph))
		opt.Embed.BlockSize = bs
		res := core.Partition(g.G, ablationP, opt)
		fmt.Fprintf(&b, "%6d %8d %12.4f %12.4f\n", bs, res.Cut, res.Times.Embed, res.Times.EmbedComm)
	}
	return b.String()
}

// AblationStripFM quantifies the strip refinement's contribution, the
// mechanism behind Table 2's "Best SP" improvement over G30.
func (h *Harness) AblationStripFM() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: strip Fiduccia–Mattheyses refinement (graph %s, P=%d).\n", ablationGraph, ablationP)
	fmt.Fprintf(&b, "%8s %8s %10s %12s\n", "refine", "cut", "strip", "partit.(s)")
	for _, refine := range []bool{false, true} {
		opt := core.DefaultOptions(seedOf(ablationGraph))
		opt.Partition.Refine = refine
		res := core.Partition(g.G, ablationP, opt)
		fmt.Fprintf(&b, "%8v %8d %10d %12.5f\n", refine, res.Cut, res.StripSize, res.Times.Partition)
	}
	return b.String()
}

// AblationTries varies the number of great-circle candidates (the G7
// vs G30 trade-off inside the parallel partitioner).
func (h *Harness) AblationTries() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: great-circle tries (graph %s, P=%d).\n", ablationGraph, ablationP)
	fmt.Fprintf(&b, "%6s %8s %12s\n", "tries", "cut", "partit.(s)")
	for _, tries := range []int{3, 7, 15, 30} {
		opt := core.DefaultOptions(seedOf(ablationGraph))
		opt.Partition.GreatCircles = tries
		res := core.Partition(g.G, ablationP, opt)
		fmt.Fprintf(&b, "%6d %8d %12.5f\n", tries, res.Cut, res.Times.Partition)
	}
	return b.String()
}

// AblationLevelRetention compares the paper's retain-every-other-level
// quartering hierarchy against retaining every halving step.
func (h *Harness) AblationLevelRetention() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: hierarchy level retention (graph %s, P=%d).\n", ablationGraph, ablationP)
	fmt.Fprintf(&b, "%22s %8s %12s\n", "levels", "cut", "total(s)")
	for _, steps := range []int{1, 2} {
		opt := core.DefaultOptions(seedOf(ablationGraph))
		opt.Coarsen.StepsPerLevel = steps
		opt.Coarsen.RankDecay = 1 << steps
		res := core.Partition(g.G, ablationP, opt)
		label := "every level (halve)"
		if steps == 2 {
			label = "every other (quarter)"
		}
		fmt.Fprintf(&b, "%22s %8d %12.4f\n", label, res.Cut, res.Times.Total)
	}
	return b.String()
}

// AblationLatticeVsExact compares the fixed-lattice parallel embedding
// against an exact sequential Barnes–Hut embedding feeding the same
// parallel geometric partitioner: the quality cost of the lattice
// approximation.
func (h *Harness) AblationLatticeVsExact() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: lattice embedding vs exact sequential embedding (graph %s, P=%d).\n", ablationGraph, ablationP)
	opt := core.DefaultOptions(seedOf(ablationGraph))
	lat := core.Partition(g.G, ablationP, opt)
	coords := embed.SequentialLayout(g.G, embed.SeqOptions{Seed: seedOf(ablationGraph)})
	exact := core.PartitionGeometric(g.G, coords, ablationP, geopart.DefaultParallelConfig(), mpi.DefaultModel())
	fmt.Fprintf(&b, "  lattice embedding + SP-PG7-NL: cut %d\n", lat.Cut)
	fmt.Fprintf(&b, "  exact BH embedding + SP-PG7-NL: cut %d\n", exact.Cut)
	natural := "n/a"
	if g.Coords != nil {
		nat := core.PartitionGeometric(g.G, g.Coords, ablationP, geopart.DefaultParallelConfig(), mpi.DefaultModel())
		natural = fmt.Sprintf("%d", nat.Cut)
	}
	fmt.Fprintf(&b, "  natural coordinates + SP-PG7-NL: cut %s\n", natural)
	return b.String()
}

// AblationSSDE compares the paper's Section 5 proposal — sampled
// spectral distance embedding — against the force-directed lattice
// embedding as the coordinate source for the parallel geometric
// partitioner.
func (h *Harness) AblationSSDE() string {
	g := h.Graph(ablationGraph)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: SSDE vs force-directed embedding (graph %s, P=%d).\n", ablationGraph, ablationP)
	lat := core.Partition(g.G, ablationP, core.DefaultOptions(seedOf(ablationGraph)))
	ssde := embed.SSDELayout(g.G, embed.SSDEOptions{Seed: seedOf(ablationGraph)})
	sp := core.PartitionGeometric(g.G, ssde, ablationP, geopart.DefaultParallelConfig(), mpi.DefaultModel())
	fmt.Fprintf(&b, "  lattice force embedding: cut %d (embed %.4fs modeled)\n", lat.Cut, lat.Times.Embed)
	fmt.Fprintf(&b, "  SSDE embedding:          cut %d (embedding cost ~%d BFS sweeps + power iteration)\n", sp.Cut, 30)
	return b.String()
}
