package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// ChaosConfig parameterises a chaos soak: seeded randomized fault
// schedules (kind × rank × event, so faults land in every pipeline
// phase) thrown at recovery-enabled partitioning runs.
type ChaosConfig struct {
	Graphs    []string
	Ps        []int
	Policies  []core.RecoveryPolicy
	Schedules int                 // fault schedules per (graph, P, policy); default 3
	Seed      int64               // base seed; schedule i of case c draws from Seed, c, i
	MaxEvent  int64               // fault positions are drawn from [0, MaxEvent); default 400
	Kinds     []mpi.FaultKind     // default: kill, drop, delay, truncate
	Recover   core.RecoverOptions // Policy is overridden per case
	Workers   int                 // soak pool size; 0 = one per available core
}

func (c *ChaosConfig) withDefaults() ChaosConfig {
	out := *c
	if out.Schedules == 0 {
		out.Schedules = 3
	}
	if out.MaxEvent == 0 {
		out.MaxEvent = 400
	}
	if len(out.Kinds) == 0 {
		out.Kinds = []mpi.FaultKind{mpi.KillRank, mpi.DropMessage, mpi.DelayMessage, mpi.TruncatePayload}
	}
	if len(out.Policies) == 0 {
		out.Policies = []core.RecoveryPolicy{core.RecoverRespawn, core.RecoverShrink}
	}
	return out
}

// ChaosCase is one (graph, P, policy, schedule) soak outcome.
type ChaosCase struct {
	Graph    string
	P        int
	Policy   core.RecoveryPolicy
	Seed     int64
	Plan     string // the injected schedule, FaultPlan.Key form
	Cut      int64
	BaseCut  int64 // fault-free cut at the same (graph, P)
	FinalP   int
	Fallback bool
	Recovery core.RecoveryStats
	Err      string // verification failure; empty when the case passed
}

// ChaosReport aggregates a soak.
type ChaosReport struct {
	Cases     []ChaosCase
	FullP     int // survived at full strength (healed in-runtime or respawned)
	Shrunk    int // survived in a smaller world
	Fallbacks int // exhausted every policy and fell back sequentially
	Failed    int // verification failures — must be zero
}

// Failures returns the cases that failed verification.
func (r *ChaosReport) Failures() []ChaosCase {
	var out []ChaosCase
	for _, c := range r.Cases {
		if c.Err != "" {
			out = append(out, c)
		}
	}
	return out
}

func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %d case(s): %d full-strength, %d shrunk, %d fallback, %d FAILED\n",
		len(r.Cases), r.FullP, r.Shrunk, r.Fallbacks, r.Failed)
	for _, c := range r.Cases {
		status := "ok"
		if c.Err != "" {
			status = "FAIL " + c.Err
		}
		fmt.Fprintf(&b, "  %-14s P=%-3d %-8s seed=%-6d plan=%-40q %s  %s\n",
			c.Graph, c.P, c.Policy, c.Seed, c.Plan, c.Recovery.String(), status)
	}
	return b.String()
}

// ChaosSoak throws cfg's randomized fault schedules at recovery-enabled
// ScalaPart runs and verifies every outcome: the run must end without
// error; a full-strength survivor must reproduce the fault-free cut
// bit-identically and pass CheckResult plus the trace invariants; a
// shrunken survivor must be a valid bisection within the balance
// constraint; only a run that exhausted its whole policy ladder may be
// a sequential fallback. Fault-free baselines come from h.Get, so the
// harness must carry its default (fault-free, recovery-off) settings.
func (h *Harness) ChaosSoak(cfg ChaosConfig) *ChaosReport {
	c := cfg.withDefaults()
	type job struct {
		idx int
		cc  ChaosCase
	}
	var cases []ChaosCase
	n := 0
	for _, gname := range c.Graphs {
		for _, p := range c.Ps {
			for _, pol := range c.Policies {
				for s := 0; s < c.Schedules; s++ {
					// Distinct, deterministic per-case seeds: mix the case
					// ordinal into the base seed with a large prime stride.
					seed := c.Seed + int64(n)*7919
					cases = append(cases, ChaosCase{Graph: gname, P: p, Policy: pol, Seed: seed})
					n++
				}
			}
		}
	}
	jobs := make(chan job)
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				cases[j.idx] = h.chaosCase(c, j.cc)
			}
		}()
	}
	for i, cc := range cases {
		jobs <- job{i, cc}
	}
	close(jobs)
	wg.Wait()

	rep := &ChaosReport{Cases: cases}
	for _, cc := range cases {
		switch {
		case cc.Err != "":
			rep.Failed++
		case cc.Fallback:
			rep.Fallbacks++
		case cc.FinalP < cc.P:
			rep.Shrunk++
		default:
			rep.FullP++
		}
	}
	return rep
}

// chaosCase runs and verifies one soak case.
func (h *Harness) chaosCase(cfg ChaosConfig, cc ChaosCase) ChaosCase {
	g := h.Graph(cc.Graph)
	base := h.Get(cc.Graph, MethodSP, cc.P)
	cc.BaseCut = base.Cut

	plan := mpi.RandomPlan(cc.Seed, cc.P, cfg.MaxEvent, cfg.Kinds...)
	cc.Plan = plan.Key()

	opt := core.DefaultOptions(seedOf(cc.Graph))
	opt.Model = h.Model
	opt.Model.Faults = plan
	rec := trace.New()
	opt.Model.Trace = rec
	opt.Recover = cfg.Recover
	opt.Recover.Policy = cc.Policy

	res, err := core.PartitionChecked(g.G, cc.P, opt)
	if err != nil {
		cc.Err = fmt.Sprintf("run error: %v", err)
		return cc
	}
	cc.Cut, cc.FinalP, cc.Fallback = res.Cut, res.P, res.Fallback
	if res.Recovery != nil {
		cc.Recovery = *res.Recovery
	}
	if res.Fallback {
		// The sequential result is produced outside the chaotic world; it
		// must still be a coherent partition.
		if verr := core.CheckResult(g.G, res); verr != nil {
			cc.Err = fmt.Sprintf("fallback partition invalid: %v", verr)
		}
		return cc
	}
	if verr := core.CheckResult(g.G, res); verr != nil {
		cc.Err = fmt.Sprintf("partition invalid: %v", verr)
		return cc
	}
	if verr := rec.CheckInvariants(); verr != nil {
		cc.Err = fmt.Sprintf("trace invariants: %v", verr)
		return cc
	}
	if res.P == cc.P {
		// Full-strength survival — whether healed entirely inside the
		// runtime or respawned from a checkpoint — replays the identical
		// charge sequence, so the cut must be bit-identical.
		if res.Cut != base.Cut {
			cc.Err = fmt.Sprintf("full-strength cut %d != fault-free cut %d", res.Cut, base.Cut)
		}
		return cc
	}
	if res.Imbalance > 0.1 {
		cc.Err = fmt.Sprintf("shrunken world imbalance %v breaks the balance constraint", res.Imbalance)
	}
	return cc
}
