package refine

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// noisyBisection returns a balanced grid bisection with fraction f of
// vertices flipped at random (keeping balance by flipping in pairs).
func noisyBisection(g *graph.Graph, cols int, f float64, seed int64) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for v := 0; v < n; v++ {
		if v%cols >= cols/2 {
			side[v] = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	swaps := int(f * float64(n) / 2)
	for k := 0; k < swaps; k++ {
		var a, b int
		for {
			a, b = rng.Intn(n), rng.Intn(n)
			if side[a] == 0 && side[b] == 1 {
				break
			}
		}
		side[a], side[b] = 1, 0
	}
	return side
}

func fullProblem(g *graph.Graph, side []int8, tol float64, passes int) (*Problem, []int32) {
	n := g.NumVertices()
	free := make([]int32, n)
	for i := range free {
		free[i] = int32(i)
	}
	var sideW [2]int64
	for v := 0; v < n; v++ {
		sideW[side[v]] += int64(g.VertexWeight(int32(v)))
	}
	return BuildSubproblem(g, free, func(id int32) int8 { return side[id] },
		sideW, sideW[0]+sideW[1], tol, passes)
}

func cutOf(g *graph.Graph, side []int8) int64 {
	part := make([]int32, len(side))
	for i, s := range side {
		part[i] = int32(s)
	}
	return graph.CutSize(g, part)
}

// TestFMImprovesNoisyCut: FM must repair most of the damage done to a
// clean grid bisection.
func TestFMImprovesNoisyCut(t *testing.T) {
	gr := gen.Grid2D(24, 24)
	side := noisyBisection(gr.G, 24, 0.05, 1)
	before := cutOf(gr.G, side)
	prob, _ := fullProblem(gr.G, side, 0.03, 8)
	gain := prob.Run()
	after := cutOf(gr.G, prob.Side)
	if before-after != gain {
		t.Fatalf("reported gain %d but cut went %d -> %d", gain, before, after)
	}
	if after > before/2 {
		t.Fatalf("FM left cut at %d (from %d); expected major repair", after, before)
	}
	// Balance must hold.
	var w [2]int64
	for v, s := range prob.Side {
		w[s] += prob.VW[v]
	}
	limit := int64(float64(prob.TotalW) * 1.03 / 2)
	if w[0] > limit || w[1] > limit {
		t.Fatalf("balance violated: %v (limit %d)", w, limit)
	}
}

// TestFMGainMatchesCutDelta on random graphs and random partitions:
// the invariant that Run's return equals the true cut reduction.
func TestFMGainMatchesCutDelta(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomGeometric(300, 0.08, seed).G
		rng := rand.New(rand.NewSource(seed))
		side := make([]int8, g.NumVertices())
		for i := range side {
			side[i] = int8(rng.Intn(2))
		}
		before := cutOf(g, side)
		prob, _ := fullProblem(g, side, 0.1, 4)
		gain := prob.Run()
		after := cutOf(g, prob.Side)
		if before-after != gain {
			t.Fatalf("seed %d: gain %d but cut %d -> %d", seed, gain, before, after)
		}
		if gain < 0 {
			t.Fatalf("seed %d: negative total gain %d", seed, gain)
		}
	}
}

// TestFMRespectsLockedExterior: a strip problem with strong external
// pulls must account for Ext in its gains.
func TestFMRespectsLockedExterior(t *testing.T) {
	// Path 0-1-2-3; vertices 1,2 free; 0 locked side 0, 3 locked side 1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	side := map[int32]int8{0: 0, 1: 1, 2: 0, 3: 1} // crossed: cut=3
	prob, ids := BuildSubproblem(g, []int32{1, 2}, func(id int32) int8 { return side[id] },
		[2]int64{2, 2}, 4, 0.6, 4)
	gain := prob.Run()
	if gain != 2 {
		t.Fatalf("gain = %d, want 2 (cut 3 -> 1)", gain)
	}
	// Within the generous tolerance two optima exist ((0,0,1,1) and
	// (0,0,0,1)); both have cut 1.
	if prob.CutWeight() != 1 {
		t.Fatalf("cut = %d, want 1 (sides %v, ids %v)", prob.CutWeight(), prob.Side, ids)
	}
}

func TestGainDefinition(t *testing.T) {
	// Triangle with one vertex opposite: moving it joins its friends.
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 2, 3)
	b.AddWeightedEdge(1, 2, 1)
	g := b.Build()
	side := []int8{1, 0, 0}
	prob, _ := fullProblem(g, side, 1.0, 1)
	if gain := prob.Gain(0); gain != 5 {
		t.Fatalf("gain(0) = %d, want 5", gain)
	}
	if gain := prob.Gain(1); gain != 2-1-0 {
		t.Fatalf("gain(1) = %d, want 1", gain)
	}
}

func TestCutWeight(t *testing.T) {
	gr := gen.Grid2D(8, 8)
	side := noisyBisection(gr.G, 8, 0, 1)
	prob, _ := fullProblem(gr.G, side, 0.1, 1)
	if prob.CutWeight() != cutOf(gr.G, side) {
		t.Fatalf("CutWeight %d vs true %d", prob.CutWeight(), cutOf(gr.G, side))
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{}
	if p.Run() != 0 {
		t.Fatal("empty problem produced gain")
	}
}
