package refine

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// boundaryRecords extracts the full-cut record set of a partition the
// way the distributed driver does: every vertex incident to a cut edge
// is free, every same-side neighbour of a free vertex is a locked ring
// record.
func boundaryRecords(t testing.TB, g *graph.Graph, side []int8) []SideRecord {
	t.Helper()
	cur := graph.GetCursor(g)
	defer cur.Release()
	n := g.NumVertices()
	isB := make([]bool, n)
	for v := 0; v < n; v++ {
		nbrs, _ := cur.Arcs(int32(v))
		for _, nb := range nbrs {
			if side[nb] != side[v] {
				isB[v] = true
				break
			}
		}
	}
	var recs []SideRecord
	for v := 0; v < n; v++ {
		if isB[v] {
			recs = append(recs, SideRecord{ID: int32(v), Side: side[v], Free: true})
			continue
		}
		nbrs, _ := cur.Arcs(int32(v))
		for _, nb := range nbrs {
			if isB[nb] {
				recs = append(recs, SideRecord{ID: int32(v), Side: side[v]})
				break
			}
		}
	}
	return recs
}

func sideWeights(g *graph.Graph, side []int8) [2]int64 {
	var w [2]int64
	for v, s := range side {
		w[s] += int64(g.VertexWeight(int32(v)))
	}
	return w
}

// TestSolveFreeSetImprovesNoisyCut: freeing only the boundary must
// still repair a noisy grid bisection, and the reported gain must be
// the true cut delta once the flips are applied.
func TestSolveFreeSetImprovesNoisyCut(t *testing.T) {
	gr := gen.Grid2D(24, 24)
	side := noisyBisection(gr.G, 24, 0.05, 3)
	before := cutOf(gr.G, side)
	sideW := sideWeights(gr.G, side)
	out := SolveFreeSet(gr.G, boundaryRecords(t, gr.G, side), sideW, sideW[0]+sideW[1], 0.03, 8)
	if out.Gain <= 0 {
		t.Fatalf("boundary FM found no improvement on a noisy cut (gain %d)", out.Gain)
	}
	for _, id := range out.Flips {
		side[id] = 1 - side[id]
	}
	after := cutOf(gr.G, side)
	if before-after != out.Gain {
		t.Fatalf("gain %d but cut went %d -> %d", out.Gain, before, after)
	}
	if got := sideWeights(gr.G, side); got != out.SideW {
		t.Fatalf("reported SideW %v, recomputed %v", out.SideW, got)
	}
	limit := int64(float64(sideW[0]+sideW[1]) * 1.03 / 2)
	if out.SideW[0] > limit || out.SideW[1] > limit {
		t.Fatalf("balance violated: %v (limit %d)", out.SideW, limit)
	}
}

// TestSolveFreeSetEmptyBoundary: an empty record set and an
// all-locked record set (the all-ghost-boundary case: every local
// vertex is ring, the free vertices live on other ranks) must return
// zero results without allocating.
func TestSolveFreeSetEmptyBoundary(t *testing.T) {
	gr := gen.Grid2D(8, 8)
	locked := []SideRecord{{ID: 0, Side: 0}, {ID: 1, Side: 0}, {ID: 8, Side: 1}}
	for name, recs := range map[string][]SideRecord{"nil": nil, "all-locked": locked} {
		out := SolveFreeSet(gr.G, recs, [2]int64{32, 32}, 64, 0.05, 4)
		if out.Gain != 0 || out.Free != 0 || len(out.Flips) != 0 {
			t.Fatalf("%s: non-empty result %+v", name, out)
		}
		if out.SideW != [2]int64{32, 32} {
			t.Fatalf("%s: side weights not passed through: %v", name, out.SideW)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		SolveFreeSet(gr.G, locked, [2]int64{32, 32}, 64, 0.05, 4)
	}); allocs != 0 {
		t.Fatalf("free-less SolveFreeSet allocates %v times per call, want 0", allocs)
	}
}

// TestBuildSubproblemEmptyFree: the empty free set returns a runnable
// zero-vertex problem with only the Problem header allocation — no
// map, cursor, or backing arrays.
func TestBuildSubproblemEmptyFree(t *testing.T) {
	gr := gen.Grid2D(8, 8)
	prob, ids := BuildSubproblem(gr.G, nil, func(int32) int8 { return 0 }, [2]int64{32, 32}, 64, 0.05, 4)
	if ids != nil {
		t.Fatalf("empty free set returned ids %v", ids)
	}
	if got := prob.Run(); got != 0 {
		t.Fatalf("empty problem produced gain %d", got)
	}
	if prob.SideW != [2]int64{32, 32} || prob.TotalW != 64 {
		t.Fatalf("bookkeeping not carried: %+v", prob)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		BuildSubproblem(gr.G, nil, nil, [2]int64{32, 32}, 64, 0.05, 4)
	}); allocs > 1 {
		t.Fatalf("empty BuildSubproblem allocates %v times per call, want <= 1 (the Problem header)", allocs)
	}
}

// TestSolveFreeSetAllExternal: a free set whose vertices have no free
// neighbours at all — every arc folds into Ext — exercises the
// terminal-weights-only path end to end.
func TestSolveFreeSetAllExternal(t *testing.T) {
	// Path 0-1-2 with vertex 1 stranded on side 1; 0 and 2 locked on 0.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	recs := []SideRecord{
		{ID: 0, Side: 0},
		{ID: 1, Side: 1, Free: true},
		{ID: 2, Side: 0},
	}
	out := SolveFreeSet(g, recs, [2]int64{2, 1}, 3, 1.0, 4)
	if out.Gain != 2 || len(out.Flips) != 1 || out.Flips[0] != 1 {
		t.Fatalf("stranded vertex not repatriated: %+v", out)
	}
	if out.SideW != [2]int64{3, 0} {
		t.Fatalf("side weights %v, want [3 0]", out.SideW)
	}
}

// BenchmarkBoundaryFM measures one full-cut boundary solve on a noisy
// grid bisection — the rank-0 kernel of the distributed full-cut pass.
func BenchmarkBoundaryFM(b *testing.B) {
	gr := gen.Grid2D(96, 96)
	side := noisyBisection(gr.G, 96, 0.04, 11)
	recs := boundaryRecords(b, gr.G, side)
	sideW := sideWeights(gr.G, side)
	total := sideW[0] + sideW[1]
	scratch := make([]SideRecord, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, recs) // SolveFreeSet sorts in place
		out := SolveFreeSet(gr.G, scratch, sideW, total, 0.03, 4)
		if out.Gain <= 0 {
			b.Fatal("boundary FM found no improvement")
		}
	}
}
