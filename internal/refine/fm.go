// Package refine implements Fiduccia–Mattheyses two-way refinement and
// the coordinate-strip extraction ScalaPart applies around a geometric
// separator (Figure 2 of the paper). The FM engine operates on an
// explicit subproblem so it can refine a full graph, a strip with
// locked surroundings, or a baseline's band graph uniformly.
package refine


// Arc is one internal adjacency entry of a Problem.
type Arc struct {
	To int32
	W  int64
}

// Problem is a two-way refinement instance. Vertices 0..N-1 are free to
// move; edges leaving the instance are folded into Ext as locked
// terminal weights. SideW tracks the side weights of the *global*
// partition (including weight outside the instance), so balance is
// enforced globally even when the instance is a thin strip.
type Problem struct {
	Adj  [][]Arc    // internal adjacency
	Ext  [][2]int64 // locked external edge weight to side 0 / side 1
	VW   []int64    // vertex weights
	Side []int8     // current side of each vertex; updated in place

	SideW  [2]int64 // global side weights, updated in place
	TotalW int64    // total global vertex weight
	Tol    float64  // allowed imbalance: max side ≤ (1+Tol)·TotalW/2

	MaxPasses int // default 4
}

// Gain returns the cut reduction achieved by moving v to the other
// side, under the current sides.
func (p *Problem) Gain(v int32) int64 {
	s := p.Side[v]
	g := p.Ext[v][1-s] - p.Ext[v][s]
	for _, a := range p.Adj[v] {
		if p.Side[a.To] == s {
			g -= a.W
		} else {
			g += a.W
		}
	}
	return g
}

// CutWeight returns the instance's current cut contribution: internal
// cut edges plus locked external edges to the opposite side.
func (p *Problem) CutWeight() int64 {
	var cut int64
	for v := range p.Adj {
		s := p.Side[v]
		cut += 2 * p.Ext[v][1-s] // doubled here, halved below
		for _, a := range p.Adj[v] {
			if p.Side[a.To] != s {
				cut += a.W
			}
		}
	}
	return cut / 2
}

// item is a heap entry with lazy invalidation.
type item struct {
	v     int32
	gain  int64
	stamp int64
}

// gainHeap is a max-heap on gain with hand-rolled sift operations: the
// container/heap interface boxes every Push/Pop through `any`, which
// costs one heap allocation per operation — on a strip with thousands
// of free vertices that dominated the refinement's allocation profile.
// up/down replicate container/heap's algorithm exactly (same child
// choice, same strict comparison), so the pop order — and therefore
// the FM move sequence — is unchanged.
type gainHeap []item

func (h gainHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].gain > h[i].gain) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h gainHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].gain > h[j1].gain {
			j = j2 // = 2*i + 2  // right child
		}
		if !(h[j].gain > h[i].gain) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h gainHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *gainHeap) push(it item) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *gainHeap) pop() item {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	it := old[n]
	*h = old[:n]
	return it
}

// Run performs FM passes until a pass yields no improvement, returning
// the total cut weight reduction. Each pass tentatively moves every
// vertex at most once in best-gain order (subject to balance) and rolls
// back to the best prefix.
func (p *Problem) Run() int64 {
	n := len(p.Adj)
	if n == 0 {
		return 0
	}
	passes := p.MaxPasses
	if passes == 0 {
		passes = 4
	}
	var total int64
	gains := make([]int64, n)
	stamp := make([]int64, n)
	moved := make([]bool, n)
	order := make([]int32, 0, n)
	hbuf := make(gainHeap, 0, n)
	for pass := 0; pass < passes; pass++ {
		h := hbuf[:0]
		for v := 0; v < n; v++ {
			moved[v] = false
			gains[v] = p.Gain(int32(v))
			stamp[v]++
			h = append(h, item{v: int32(v), gain: gains[v], stamp: stamp[v]})
		}
		h.init()
		order = order[:0]
		var running, best int64
		bestIdx := 0
		limit := int64(float64(p.TotalW) * (1 + p.Tol) / 2)
		for len(h) > 0 {
			it := h.pop()
			v := it.v
			if moved[v] || it.stamp != stamp[v] {
				continue
			}
			s := p.Side[v]
			// Balance feasibility of moving v to side 1-s.
			if p.SideW[1-s]+p.VW[v] > limit {
				// Re-queue is pointless within this pass (the move can
				// only become feasible if others move the other way);
				// leave it unmoved unless the move improves balance.
				if p.SideW[1-s] >= p.SideW[s] {
					continue
				}
			}
			moved[v] = true
			p.Side[v] = 1 - s
			p.SideW[s] -= p.VW[v]
			p.SideW[1-s] += p.VW[v]
			running += gains[v]
			order = append(order, v)
			if running > best {
				best = running
				bestIdx = len(order)
			}
			for _, a := range p.Adj[v] {
				if moved[a.To] {
					continue
				}
				// O(1) delta gain update: v just left side s, so the arc
				// (v, a.To) flips its sign in the neighbour's gain — ±2·W
				// depending on which side the neighbour sits on. The delta
				// is exact int64 arithmetic on the same values a full
				// p.Gain recompute would produce, so the heap sees
				// bit-identical keys and the move sequence is unchanged;
				// only the O(deg) rescan per touched neighbour is gone,
				// which matters on the full-cut boundary where degrees are
				// not strip-thin.
				if p.Side[a.To] == s {
					gains[a.To] += 2 * a.W
				} else {
					gains[a.To] -= 2 * a.W
				}
				stamp[a.To]++
				h.push(item{v: a.To, gain: gains[a.To], stamp: stamp[a.To]})
			}
		}
		hbuf = h // drained, but keeps any capacity the pushes grew
		// Roll back past the best prefix.
		for i := len(order) - 1; i >= bestIdx; i-- {
			v := order[i]
			s := p.Side[v]
			p.Side[v] = 1 - s
			p.SideW[s] -= p.VW[v]
			p.SideW[1-s] += p.VW[v]
		}
		total += best
		if best <= 0 {
			break
		}
	}
	return total
}
