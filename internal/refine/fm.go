// Package refine implements Fiduccia–Mattheyses two-way refinement and
// the coordinate-strip extraction ScalaPart applies around a geometric
// separator (Figure 2 of the paper). The FM engine operates on an
// explicit subproblem so it can refine a full graph, a strip with
// locked surroundings, or a baseline's band graph uniformly.
package refine

import (
	"container/heap"
)

// Arc is one internal adjacency entry of a Problem.
type Arc struct {
	To int32
	W  int64
}

// Problem is a two-way refinement instance. Vertices 0..N-1 are free to
// move; edges leaving the instance are folded into Ext as locked
// terminal weights. SideW tracks the side weights of the *global*
// partition (including weight outside the instance), so balance is
// enforced globally even when the instance is a thin strip.
type Problem struct {
	Adj  [][]Arc    // internal adjacency
	Ext  [][2]int64 // locked external edge weight to side 0 / side 1
	VW   []int64    // vertex weights
	Side []int8     // current side of each vertex; updated in place

	SideW  [2]int64 // global side weights, updated in place
	TotalW int64    // total global vertex weight
	Tol    float64  // allowed imbalance: max side ≤ (1+Tol)·TotalW/2

	MaxPasses int // default 4
}

// Gain returns the cut reduction achieved by moving v to the other
// side, under the current sides.
func (p *Problem) Gain(v int32) int64 {
	s := p.Side[v]
	g := p.Ext[v][1-s] - p.Ext[v][s]
	for _, a := range p.Adj[v] {
		if p.Side[a.To] == s {
			g -= a.W
		} else {
			g += a.W
		}
	}
	return g
}

// CutWeight returns the instance's current cut contribution: internal
// cut edges plus locked external edges to the opposite side.
func (p *Problem) CutWeight() int64 {
	var cut int64
	for v := range p.Adj {
		s := p.Side[v]
		cut += 2 * p.Ext[v][1-s] // doubled here, halved below
		for _, a := range p.Adj[v] {
			if p.Side[a.To] != s {
				cut += a.W
			}
		}
	}
	return cut / 2
}

// item is a heap entry with lazy invalidation.
type item struct {
	v     int32
	gain  int64
	stamp int64
}

type gainHeap []item

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(item)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run performs FM passes until a pass yields no improvement, returning
// the total cut weight reduction. Each pass tentatively moves every
// vertex at most once in best-gain order (subject to balance) and rolls
// back to the best prefix.
func (p *Problem) Run() int64 {
	n := len(p.Adj)
	if n == 0 {
		return 0
	}
	passes := p.MaxPasses
	if passes == 0 {
		passes = 4
	}
	var total int64
	gains := make([]int64, n)
	stamp := make([]int64, n)
	moved := make([]bool, n)
	order := make([]int32, 0, n)
	for pass := 0; pass < passes; pass++ {
		h := make(gainHeap, 0, n)
		for v := 0; v < n; v++ {
			moved[v] = false
			gains[v] = p.Gain(int32(v))
			stamp[v]++
			h = append(h, item{v: int32(v), gain: gains[v], stamp: stamp[v]})
		}
		heap.Init(&h)
		order = order[:0]
		var running, best int64
		bestIdx := 0
		limit := int64(float64(p.TotalW) * (1 + p.Tol) / 2)
		for h.Len() > 0 {
			it := heap.Pop(&h).(item)
			v := it.v
			if moved[v] || it.stamp != stamp[v] {
				continue
			}
			s := p.Side[v]
			// Balance feasibility of moving v to side 1-s.
			if p.SideW[1-s]+p.VW[v] > limit {
				// Re-queue is pointless within this pass (the move can
				// only become feasible if others move the other way);
				// leave it unmoved unless the move improves balance.
				if p.SideW[1-s] >= p.SideW[s] {
					continue
				}
			}
			moved[v] = true
			p.Side[v] = 1 - s
			p.SideW[s] -= p.VW[v]
			p.SideW[1-s] += p.VW[v]
			running += gains[v]
			order = append(order, v)
			if running > best {
				best = running
				bestIdx = len(order)
			}
			for _, a := range p.Adj[v] {
				if moved[a.To] {
					continue
				}
				gains[a.To] = p.Gain(a.To)
				stamp[a.To]++
				heap.Push(&h, item{v: a.To, gain: gains[a.To], stamp: stamp[a.To]})
			}
		}
		// Roll back past the best prefix.
		for i := len(order) - 1; i >= bestIdx; i-- {
			v := order[i]
			s := p.Side[v]
			p.Side[v] = 1 - s
			p.SideW[s] -= p.VW[v]
			p.SideW[1-s] += p.VW[v]
		}
		total += best
		if best <= 0 {
			break
		}
	}
	return total
}
