package refine

import "repro/internal/graph"

// BuildSubproblem assembles an FM Problem over the free vertices of g.
// sideOf must return the current side (0 or 1) for any free vertex and
// for any neighbour of a free vertex; neighbours that are not free are
// folded into the locked external weights. It returns the problem and
// the vertex ids aligned with problem indices.
func BuildSubproblem(g *graph.Graph, free []int32, sideOf func(int32) int8, sideW [2]int64, totalW int64, tol float64, passes int) (*Problem, []int32) {
	if len(free) == 0 {
		// Empty free set: a runnable zero-vertex problem, with no map,
		// cursor, or per-vertex allocations. The strip path guards this
		// case at the call site, but the full-cut and combine drivers
		// reach it whenever a level's boundary is empty.
		return &Problem{SideW: sideW, TotalW: totalW, Tol: tol, MaxPasses: passes}, nil
	}
	local := make(map[int32]int32, len(free))
	totalDeg := 0
	for i, id := range free {
		local[id] = int32(i)
		totalDeg += int(g.XAdj[id+1] - g.XAdj[id])
	}
	p := &Problem{
		Adj:       make([][]Arc, len(free)),
		Ext:       make([][2]int64, len(free)),
		VW:        make([]int64, len(free)),
		Side:      make([]int8, len(free)),
		SideW:     sideW,
		TotalW:    totalW,
		Tol:       tol,
		MaxPasses: passes,
	}
	// All per-vertex arc lists live in one flat backing presized to the
	// free set's total degree (an upper bound on internal arcs), so
	// assembly never reallocates and the lists stay cache-adjacent.
	arcs := make([]Arc, 0, totalDeg)
	cur := graph.GetCursor(g)
	defer cur.Release()
	for i, id := range free {
		p.VW[i] = int64(g.VertexWeight(id))
		p.Side[i] = sideOf(id)
		start := len(arcs)
		nbrs, wgts := cur.Arcs(id)
		for k, nb := range nbrs {
			w := int64(wgts[k])
			if li, ok := local[nb]; ok {
				arcs = append(arcs, Arc{To: li, W: w})
			} else {
				p.Ext[i][sideOf(nb)] += w
			}
		}
		p.Adj[i] = arcs[start:len(arcs):len(arcs)]
	}
	ids := append([]int32(nil), free...)
	return p, ids
}
