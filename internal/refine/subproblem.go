package refine

import "repro/internal/graph"

// BuildSubproblem assembles an FM Problem over the free vertices of g.
// sideOf must return the current side (0 or 1) for any free vertex and
// for any neighbour of a free vertex; neighbours that are not free are
// folded into the locked external weights. It returns the problem and
// the vertex ids aligned with problem indices.
func BuildSubproblem(g *graph.Graph, free []int32, sideOf func(int32) int8, sideW [2]int64, totalW int64, tol float64, passes int) (*Problem, []int32) {
	local := make(map[int32]int32, len(free))
	for i, id := range free {
		local[id] = int32(i)
	}
	p := &Problem{
		Adj:       make([][]Arc, len(free)),
		Ext:       make([][2]int64, len(free)),
		VW:        make([]int64, len(free)),
		Side:      make([]int8, len(free)),
		SideW:     sideW,
		TotalW:    totalW,
		Tol:       tol,
		MaxPasses: passes,
	}
	for i, id := range free {
		p.VW[i] = int64(g.VertexWeight(id))
		p.Side[i] = sideOf(id)
		for k := g.XAdj[id]; k < g.XAdj[id+1]; k++ {
			nb := g.Adjncy[k]
			w := int64(g.ArcWeight(k))
			if li, ok := local[nb]; ok {
				p.Adj[i] = append(p.Adj[i], Arc{To: li, W: w})
			} else {
				p.Ext[i][sideOf(nb)] += w
			}
		}
	}
	ids := append([]int32(nil), free...)
	return p, ids
}
