// Full-cut boundary refinement: the gather-side machinery of the
// distributed boundary-FM pass (per "Engineering a Scalable High
// Quality Graph Partitioner", arXiv 0910.2004). The coordinate-strip
// refinement of Figure 2 only moves vertices near the separating
// circle; the full-cut pass instead frees every vertex incident to a
// cut edge, wherever it lies, and locks the one-hop ring around them.
// geopart's distributed driver gathers those records, rank 0 solves
// the FM subproblem here, and the flips are broadcast back.
//
// The pass is opt-in behind SetFullCut (default off): with the hook
// off, the pipeline is bit-identical to the historical strip-only
// refinement, which is what the BENCH seed-row guards pin down.
package refine

import (
	"sort"
	"sync/atomic"

	"repro/internal/graph"
)

// fullCutOn gates the full-cut boundary-FM rounds globally, mirroring
// geopart.SetBatching / mpi.SetPooling: a process-global atomic the
// CLI flags set once and the bit-identity tests flip.
var fullCutOn atomic.Bool

// SetFullCut enables or disables the full-cut boundary-FM pass after
// strip refinement and returns the previous setting. Off (the default)
// preserves the historical strip-only pipeline verbatim.
func SetFullCut(on bool) bool {
	prev := fullCutOn.Load()
	fullCutOn.Store(on)
	return prev
}

// FullCut reports whether the full-cut boundary-FM pass is enabled.
// Cache keys that fingerprint process-global knobs read it.
func FullCut() bool { return fullCutOn.Load() }

// SideRecord is one gathered vertex of a distributed free-set FM
// solve: its id, current side, and whether it is free to move or a
// locked ring vertex. The wire size is 6 bytes (id + side + flag).
type SideRecord struct {
	ID   int32
	Side int8
	Free bool
}

// SideRecordBytes is the modeled wire size of one SideRecord in the
// gather collectives.
const SideRecordBytes = 6

// FreeSetResult is the outcome of one SolveFreeSet call, shaped for a
// single broadcast: the flipped vertex ids, the cut reduction, the
// updated global side weights, and the free-set size (for charge
// accounting and reporting).
type FreeSetResult struct {
	Flips []int32
	Gain  int64
	SideW [2]int64
	Free  int
}

// SolveFreeSet assembles and runs the FM subproblem over the gathered
// records: free records become movable vertices, the rest are the
// locked ring folded into terminal weights. Records are sorted by
// vertex id in place, so the heap's insertion order — and therefore
// every tie-break in the move sequence — is a deterministic function
// of the record set alone, independent of gather arrival order, rank
// count, workers, or replay mode.
//
// An empty free set returns immediately with zero flips and no
// allocations: the full-cut driver reaches this on any level whose
// boundary is empty (or entirely remote).
func SolveFreeSet(g *graph.Graph, recs []SideRecord, sideW [2]int64, totalW int64, tol float64, passes int) FreeSetResult {
	out := FreeSetResult{SideW: sideW}
	nfree := 0
	for _, r := range recs {
		if r.Free {
			nfree++
		}
	}
	if nfree == 0 {
		return out
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	sideOfMap := make(map[int32]int8, len(recs))
	free := make([]int32, 0, nfree)
	for _, r := range recs {
		sideOfMap[r.ID] = r.Side
		if r.Free {
			free = append(free, r.ID)
		}
	}
	out.Free = len(free)
	prob, ids := BuildSubproblem(g, free, func(id int32) int8 {
		s, ok := sideOfMap[id]
		if !ok {
			panic("refine: free-set neighbour missing from gathered ring")
		}
		return s
	}, sideW, totalW, tol, passes)
	before := append([]int8(nil), prob.Side...)
	out.Gain = prob.Run()
	for i, id := range ids {
		if prob.Side[i] != before[i] {
			out.Flips = append(out.Flips, id)
		}
	}
	out.SideW = prob.SideW
	return out
}
