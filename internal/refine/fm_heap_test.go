package refine

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
)

// TestGainHeapPopOrderMatchesSort: filling the heap and draining it
// must yield gains in non-increasing order, and the drained multiset
// must equal the input — the max-heap contract checked against a
// reference sort.
func TestGainHeapPopOrderMatchesSort(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		h := make(gainHeap, 0, n)
		ref := make([]int64, 0, n)
		for v := 0; v < n; v++ {
			gain := int64(rng.Intn(21) - 10) // dense ties, zero and negative gains
			h = append(h, item{v: int32(v), gain: gain, stamp: 1})
			ref = append(ref, gain)
		}
		h.init()
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		got := make([]int64, 0, n)
		for len(h) > 0 {
			it := h.pop()
			if len(got) > 0 && it.gain > got[len(got)-1] {
				t.Fatalf("seed %d: pop %d returned gain %d after %d (not non-increasing)",
					seed, len(got), it.gain, got[len(got)-1])
			}
			got = append(got, it.gain)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: pop sequence diverges from sorted reference at %d: got %d want %d",
					seed, i, got[i], ref[i])
			}
		}
	}
}

// TestGainHeapRandomUpdatePopSequence drives the heap exactly the way
// Run does — lazy invalidation via stamps, gain updates as fresh
// pushes — against a reference that tracks the live (gain, stamp) per
// vertex by linear scan. Every valid pop must return the maximum live
// gain.
func TestGainHeapRandomUpdatePopSequence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 2 + rng.Intn(120)
		gains := make([]int64, n)
		stamp := make([]int64, n)
		dead := make([]bool, n)
		var h gainHeap
		for v := 0; v < n; v++ {
			gains[v] = int64(rng.Intn(9) - 4)
			stamp[v] = 1
			h = append(h, item{v: int32(v), gain: gains[v], stamp: 1})
		}
		h.init()
		liveMax := func() (int64, bool) {
			var best int64
			found := false
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				if !found || gains[v] > best {
					best, found = gains[v], true
				}
			}
			return best, found
		}
		for step := 0; step < 4*n && len(h) > 0; step++ {
			if rng.Intn(3) == 0 { // gain update on a random live vertex
				v := rng.Intn(n)
				if !dead[v] {
					gains[v] += int64(rng.Intn(7) - 3)
					stamp[v]++
					h.push(item{v: int32(v), gain: gains[v], stamp: stamp[v]})
				}
				continue
			}
			it := h.pop()
			if dead[it.v] || it.stamp != stamp[it.v] {
				continue // lazily invalidated entry, exactly as Run skips it
			}
			want, ok := liveMax()
			if !ok {
				t.Fatalf("seed %d: heap returned %v with no live vertices", seed, it)
			}
			if it.gain != want {
				t.Fatalf("seed %d step %d: popped gain %d, live max is %d", seed, step, it.gain, want)
			}
			dead[it.v] = true
		}
	}
}

// TestFMTieBreakDeterministic: on instances that are all ties — every
// gain zero or negative — the move order is fixed by the vertex-index
// insertion order feeding the deterministic sift rules, so two runs
// from identical inputs must produce identical side vectors, and
// SolveFreeSet must produce identical flips regardless of the order
// its records were gathered in.
func TestFMTieBreakDeterministic(t *testing.T) {
	gr := gen.Grid2D(16, 16)

	// Zero/negative-gain instance: the clean bisection is optimal, every
	// move has gain <= 0, so the pass is one long tie-break.
	clean := noisyBisection(gr.G, 16, 0, 1)
	run := func() ([]int8, int64) {
		side := append([]int8(nil), clean...)
		prob, _ := fullProblem(gr.G, side, 0.03, 4)
		gain := prob.Run()
		return prob.Side, gain
	}
	s1, g1 := run()
	s2, g2 := run()
	if g1 != g2 {
		t.Fatalf("gain differs across identical runs: %d vs %d", g1, g2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("side[%d] differs across identical runs", i)
		}
	}
	if g1 != 0 {
		t.Fatalf("clean bisection refined with gain %d, want 0", g1)
	}

	// Gather-order invariance: SolveFreeSet sorts records by id before
	// building the problem, so a permuted record set (different rank
	// arrival order) yields bit-identical flips.
	noisy := noisyBisection(gr.G, 16, 0.08, 7)
	recs := boundaryRecords(t, gr.G, noisy)
	var sideW [2]int64
	for v, s := range noisy {
		sideW[s] += int64(gr.G.VertexWeight(int32(v)))
	}
	total := sideW[0] + sideW[1]
	base := SolveFreeSet(gr.G, append([]SideRecord(nil), recs...), sideW, total, 0.05, 4)
	for seed := int64(0); seed < 4; seed++ {
		shuffled := append([]SideRecord(nil), recs...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := SolveFreeSet(gr.G, shuffled, sideW, total, 0.05, 4)
		if got.Gain != base.Gain || got.SideW != base.SideW || got.Free != base.Free ||
			len(got.Flips) != len(base.Flips) {
			t.Fatalf("shuffle seed %d: result drifted: %+v vs %+v", seed, got, base)
		}
		for i := range got.Flips {
			if got.Flips[i] != base.Flips[i] {
				t.Fatalf("shuffle seed %d: flip[%d] = %d, want %d", seed, i, got.Flips[i], base.Flips[i])
			}
		}
	}
}
