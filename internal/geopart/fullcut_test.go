package geopart

import (
	"fmt"
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
)

// runSP runs one SP-PG7-NL bisection world and returns the assembled
// global part vector plus rank 0's result.
func runSP(g *gen.Generated, p int, cfg ParallelConfig) ([]int32, *ParallelResult) {
	views := embed.SplitCoords(g.G, g.Coords, p)
	part := make([]int32, g.G.NumVertices())
	var r0 *ParallelResult
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], cfg)
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			r0 = res
		}
	})
	return part, r0
}

func globalCut(g *graph.Graph, part []int32) int64 {
	return graph.CutSize(g, part)
}

// TestFullCutImprovesOrKeepsCut: the full-cut pass must never worsen
// the strip-refined cut, its reported cut must match a from-scratch
// recount of the assembled partition, and the balance must stay inside
// the configured tolerance.
func TestFullCutImprovesOrKeepsCut(t *testing.T) {
	g := gen.DelaunayRandom(4000, 5)
	totalW := g.G.TotalVertexWeight()
	for _, p := range []int{1, 4, 16} {
		defer refine.SetFullCut(refine.SetFullCut(false))
		stripPart, stripRes := runSP(g, p, DefaultParallelConfig())
		refine.SetFullCut(true)
		fullPart, fullRes := runSP(g, p, DefaultParallelConfig())
		refine.SetFullCut(false)

		if got := globalCut(g.G, stripPart); got != stripRes.Cut {
			t.Fatalf("P=%d strip: reported cut %d, recount %d", p, stripRes.Cut, got)
		}
		if got := globalCut(g.G, fullPart); got != fullRes.Cut {
			t.Fatalf("P=%d full: reported cut %d, recount %d", p, fullRes.Cut, got)
		}
		if fullRes.Cut > stripRes.Cut {
			t.Fatalf("P=%d: full-cut refinement worsened the cut: %d > %d", p, fullRes.Cut, stripRes.Cut)
		}
		tol := DefaultParallelConfig().Defaults().BalanceTol
		limit := int64(float64(totalW) * (1 + tol) / 2)
		if fullRes.SideW[0] > limit || fullRes.SideW[1] > limit {
			t.Fatalf("P=%d: full-cut broke balance: %v (limit %d, tol %v)", p, fullRes.SideW, limit, tol)
		}
		var w [2]int64
		for v, s := range fullPart {
			w[s] += int64(g.G.VertexWeight(int32(v)))
		}
		if w != fullRes.SideW {
			t.Fatalf("P=%d: reported SideW %v, recomputed %v", p, fullRes.SideW, w)
		}
		t.Logf("P=%d: cut %d (strip) -> %d (full), boundary %d", p, stripRes.Cut, fullRes.Cut, fullRes.Boundary)
	}
}

// TestFullCutDeterministic: with full-cut on, the partition must be a
// pure function of (graph, config, P) — identical across repeated
// runs, both candidate kernels, and both replay schedulers. This is
// the PR 3/4-style reproducibility contract extended to the new pass.
func TestFullCutDeterministic(t *testing.T) {
	g := gen.DelaunayRandom(3000, 9)
	defer refine.SetFullCut(refine.SetFullCut(true))
	for _, p := range []int{1, 4, 16, 64} {
		var base []int32
		var baseCut int64
		for _, batched := range []bool{true, false} {
			for _, mode := range []mpi.ReplayMode{mpi.ReplayGoroutine, mpi.ReplayBatched} {
				name := fmt.Sprintf("P=%d batched=%t replay=%v", p, batched, mode)
				part, res := func() ([]int32, *ParallelResult) {
					defer SetBatching(SetBatching(batched))
					defer mpi.SetReplayMode(mpi.SetReplayMode(mode))
					return runSP(g, p, DefaultParallelConfig())
				}()
				if base == nil {
					base, baseCut = part, res.Cut
					continue
				}
				if res.Cut != baseCut {
					t.Fatalf("%s: cut %d, want %d", name, res.Cut, baseCut)
				}
				for v := range part {
					if part[v] != base[v] {
						t.Fatalf("%s: vertex %d side %d, want %d", name, v, part[v], base[v])
					}
				}
			}
		}
	}
}

// TestFullCutOffUnchanged: the hook off must leave the strip-only
// pipeline untouched — same parts, cuts, and virtual clocks as before
// this pass existed. (The bench-level seed-row guard pins the same
// thing against BENCH_7.json; this is the fast package-local check
// that Boundary stays zero and the clock carries no full-cut charges.)
func TestFullCutOffUnchanged(t *testing.T) {
	g := gen.Grid2D(48, 48)
	defer refine.SetFullCut(refine.SetFullCut(false))
	views := embed.SplitCoords(g.G, g.Coords, 4)
	var offClock, offCut = make([]float64, 4), int64(0)
	mpi.Run(4, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], DefaultParallelConfig())
		offClock[c.Rank()] = c.Elapsed()
		if c.Rank() == 0 {
			offCut = res.Cut
		}
		if res.Boundary != 0 {
			t.Errorf("rank %d: Boundary %d with full-cut off, want 0", c.Rank(), res.Boundary)
		}
	})
	// Re-run: the off path must be deterministic in results and clocks.
	mpi.Run(4, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], DefaultParallelConfig())
		if c.Elapsed() != offClock[c.Rank()] {
			t.Errorf("rank %d: clock %v, want %v", c.Rank(), c.Elapsed(), offClock[c.Rank()])
		}
		if c.Rank() == 0 && res.Cut != offCut {
			t.Errorf("cut %d, want %d", res.Cut, offCut)
		}
	})
}

// TestRefineFreeSetEmptyBoundaryWorld: a world where no rank frees any
// vertex must return the pass-through result on every rank without
// hanging (the early return happens after the gather collective, so it
// is globally consistent by construction).
func TestRefineFreeSetEmptyBoundaryWorld(t *testing.T) {
	g := gen.Grid2D(16, 16)
	const p = 4
	views := embed.SplitCoords(g.G, g.Coords, p)
	totalW := g.G.TotalVertexWeight()
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		d := views[c.Rank()]
		side := make([]int32, len(d.OwnedIDs))
		free := make([]bool, len(d.OwnedIDs))
		out := RefineFreeSet(c, g.G, d, free, side, [2]int64{int64(totalW), 0}, totalW, 0.05, 4)
		if out.Gain != 0 || out.Free != 0 || len(out.Flips) != 0 {
			t.Errorf("rank %d: empty free set produced %+v", c.Rank(), out)
		}
		if out.SideW != [2]int64{int64(totalW), 0} {
			t.Errorf("rank %d: side weights not passed through: %v", c.Rank(), out.SideW)
		}
	})
}

// TestRCBModelVersions: the Zoltan-faithful cost model (v2) must leave
// the partition itself bit-identical to v1 — it only adds charges —
// and must charge strictly more modeled time at P>1, which is what
// restores the Figure 4 crossover.
func TestRCBModelVersions(t *testing.T) {
	g := gen.Grid2D(64, 64)
	run := func(version, p int) ([]int32, float64, *ParallelResult) {
		defer SetRCBModel(SetRCBModel(version))
		views := embed.SplitCoords(g.G, g.Coords, p)
		part := make([]int32, g.G.NumVertices())
		var clock float64
		var r0 *ParallelResult
		mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
			res := ParallelRCB(c, g.G, views[c.Rank()])
			for i, id := range res.OwnedIDs {
				part[id] = res.Side[i]
			}
			if c.Rank() == 0 {
				clock, r0 = c.Elapsed(), res
			}
		})
		return part, clock, r0
	}
	for _, p := range []int{1, 4, 16} {
		p1, c1, r1 := run(1, p)
		p2, c2, r2 := run(2, p)
		if r1.Cut != r2.Cut || r1.SideW != r2.SideW {
			t.Fatalf("P=%d: cost model changed the partition: v1 %+v v2 %+v", p, r1, r2)
		}
		for v := range p1 {
			if p1[v] != p2[v] {
				t.Fatalf("P=%d: vertex %d side differs across cost models", p, v)
			}
		}
		if c2 <= c1 {
			t.Fatalf("P=%d: v2 modeled time %v not above v1 %v", p, c2, c1)
		}
		t.Logf("P=%d: RCB modeled time %v (v1) -> %v (v2)", p, c1, c2)
	}
}
