package geopart

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// TestGatherSamplePinned pins the sampled (id, coordinate) sequence for
// a fixed distribution: the sample feeds centerpoints, thresholds, and
// strip widths, so a kernel change that silently alters it would shift
// every downstream cut. Any intentional change to the sampling scheme
// must update these literals consciously.
func TestGatherSamplePinned(t *testing.T) {
	want := []int32{0, 8, 16, 24, 4, 12, 20, 28, 32, 40, 48, 56, 36, 44, 52, 60}
	g := gen.Grid2D(8, 8)
	views := embed.SplitCoords(g.G, g.Coords, 4)
	mpi.Run(4, mpi.DefaultModel(), func(c *mpi.Comm) {
		s := gatherSample(c, views[c.Rank()], 16)
		if len(s) != len(want) {
			t.Errorf("rank %d: sample has %d entries, want %d", c.Rank(), len(s), len(want))
			return
		}
		for i, e := range s {
			if e.ID != want[i] {
				t.Errorf("rank %d: sample[%d].ID = %d, want %d", c.Rank(), i, e.ID, want[i])
				return
			}
			if p, ok := views[c.Rank()].PosOf(e.ID); ok && p != e.P {
				t.Errorf("rank %d: sample[%d] carries stale coordinate", c.Rank(), i)
			}
		}
	})
}

// TestGatherSamplePresized checks that the local contribution is built
// without reallocation: capacity len(OwnedIDs)/stride+1 bounds the
// stride-loop count.
func TestGatherSamplePresized(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, per := range []int{1, 5, 4097} {
			stride := n/per + 1
			count := 0
			for i := 0; i < n; i += stride {
				count++
			}
			if capacity := n/stride + 1; count > capacity {
				t.Fatalf("n=%d per=%d: %d entries exceed presized capacity %d", n, per, count, capacity)
			}
		}
	}
}

// TestEdgeCacheResolvesEndpoints cross-checks the edge topology cache
// against the reference resolution (ghost map, owned binary search) on
// every rank of a split view.
func TestEdgeCacheResolvesEndpoints(t *testing.T) {
	g := gen.DelaunayRandom(2000, 3)
	const p = 8
	views := embed.SplitCoords(g.G, g.Coords, p)
	for r := 0; r < p; r++ {
		d := views[r]
		ec := buildEdgeCache(g.G, d)
		nOwn := len(d.OwnedIDs)
		if ec.nOwn != nOwn || ec.nGhost != len(d.GhostIDs) {
			t.Fatalf("rank %d: cache sized %d/%d, want %d/%d", r, ec.nOwn, ec.nGhost, nOwn, len(d.GhostIDs))
		}
		cutEdges := 0
		for i, id := range d.OwnedIDs {
			if got, wantN := ec.start[i+1]-ec.start[i], g.G.XAdj[id+1]-g.G.XAdj[id]; got != wantN {
				t.Fatalf("rank %d vertex %d: %d cached neighbours, want %d", r, id, got, wantN)
			}
			for e := g.G.XAdj[id]; e < g.G.XAdj[id+1]; e++ {
				nb := g.G.Adjncy[e]
				s := ec.slot[int(ec.start[i])+int(e-g.G.XAdj[id])]
				want := int32(-1)
				if li, ok := ownedIndex(d, nb); ok {
					want = li
				} else if gi, ok := d.GhostSlot(nb); ok {
					want = int32(nOwn) + gi
				}
				if s != want {
					t.Fatalf("rank %d edge %d->%d: slot %d, want %d", r, id, nb, s, want)
				}
				if nb > id && want >= 0 {
					cutEdges++
				}
			}
		}
		if len(ec.cutA) != cutEdges || len(ec.cutB) != cutEdges || len(ec.cutW) != cutEdges {
			t.Fatalf("rank %d: cut view has %d/%d/%d edges, want %d", r, len(ec.cutA), len(ec.cutB), len(ec.cutW), cutEdges)
		}
		ec.release()
	}
}

// TestBatchedKernelMatchesLegacy runs SP-PG7-NL and parallel RCB with
// the batched kernel on and off and requires identical cuts, sides,
// weights, and strip sizes. The full clock comparison across the P
// sweep lives in core's TestBatchingBitIdentical; this is the
// package-local fast check.
func TestBatchedKernelMatchesLegacy(t *testing.T) {
	g := gen.DelaunayRandom(4000, 5)
	for _, p := range []int{1, 4, 16} {
		run := func(batched bool) ([]int32, *ParallelResult, *ParallelResult) {
			defer SetBatching(SetBatching(batched))
			views := embed.SplitCoords(g.G, g.Coords, p)
			part := make([]int32, g.G.NumVertices())
			var sp, rcb *ParallelResult
			mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
				res := ParallelPartition(c, g.G, views[c.Rank()], DefaultParallelConfig())
				for i, id := range res.OwnedIDs {
					part[id] = res.Side[i]
				}
				r2 := ParallelRCB(c, g.G, views[c.Rank()])
				if c.Rank() == 0 {
					sp, rcb = res, r2
				}
			})
			return part, sp, rcb
		}
		bPart, bSP, bRCB := run(true)
		lPart, lSP, lRCB := run(false)
		if bSP.Cut != lSP.Cut || bSP.CutBefore != lSP.CutBefore || bSP.SideW != lSP.SideW || bSP.StripSize != lSP.StripSize {
			t.Fatalf("P=%d SP results differ: batched %+v legacy %+v", p, bSP, lSP)
		}
		if bRCB.Cut != lRCB.Cut || bRCB.SideW != lRCB.SideW {
			t.Fatalf("P=%d RCB results differ: batched %+v legacy %+v", p, bRCB, lRCB)
		}
		for v := range bPart {
			if bPart[v] != lPart[v] {
				t.Fatalf("P=%d vertex %d: side %d batched, %d legacy", p, v, bPart[v], lPart[v])
			}
		}
	}
}

// TestParallelPartitionSteadyStateAllocs guards the batched kernel's
// allocation budget: once the edge-cache and kernel-scratch pools are
// warm, repeated partition calls must not reallocate the projection
// block, the side bitsets, or the topology cache. The bound is
// world-wide per call and leaves headroom for the per-call result,
// sample, and strip structures that are intentionally fresh.
func TestParallelPartitionSteadyStateAllocs(t *testing.T) {
	const (
		p     = 4
		calls = 10
	)
	g := gen.Grid2D(64, 64)
	views := embed.SplitCoords(g.G, g.Coords, p)
	cfg := DefaultParallelConfig()
	var perCall float64
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		for i := 0; i < 3; i++ { // warm pools
			ParallelPartition(c, g.G, views[c.Rank()], cfg)
		}
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		c.Barrier()
		for i := 0; i < calls; i++ {
			ParallelPartition(c, g.G, views[c.Rank()], cfg)
		}
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perCall = float64(m1.Mallocs-m0.Mallocs) / calls
		}
		c.Barrier()
	})
	if perCall > 900 {
		t.Errorf("steady-state ParallelPartition: %.0f mallocs per call (world-wide), want well under 900", perCall)
	}
	t.Logf("steady-state ParallelPartition: %.0f mallocs per call across %d ranks", perCall, p)
}

// benchGeo builds the benchmark workload once per (graph, P).
func benchViews(b *testing.B, p int) (*gen.Generated, []*embed.Distributed) {
	b.Helper()
	g := gen.Grid2D(128, 128)
	return g, embed.SplitCoords(g.G, g.Coords, p)
}

// BenchmarkParallelPartition measures the full SP-PG7-NL bisection
// (simulated world included) with the batched kernel and with the
// legacy per-candidate kernel, at P=4 and P=16.
func BenchmarkParallelPartition(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"legacy", false}} {
			b.Run(fmt.Sprintf("P%d/%s", p, mode.name), func(b *testing.B) {
				g, views := benchViews(b, p)
				defer SetBatching(SetBatching(mode.batched))
				cfg := DefaultParallelConfig()
				var cut int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
						res := ParallelPartition(c, g.G, views[c.Rank()], cfg)
						if c.Rank() == 0 {
							cut = res.Cut
						}
					})
				}
				b.ReportMetric(float64(cut), "cut")
			})
		}
	}
}

// BenchmarkRCBParallel measures the parallel RCB single cut with the
// edge-cache kernel and with the legacy per-edge resolution.
func BenchmarkRCBParallel(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"legacy", false}} {
			b.Run(fmt.Sprintf("P%d/%s", p, mode.name), func(b *testing.B) {
				g, views := benchViews(b, p)
				defer SetBatching(SetBatching(mode.batched))
				var cut int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
						res := ParallelRCB(c, g.G, views[c.Rank()])
						if c.Rank() == 0 {
							cut = res.Cut
						}
					})
				}
				b.ReportMetric(float64(cut), "cut")
			})
		}
	}
}

// TestEdgeCacheRemoteSlot: a view whose ghost ring misses a neighbour
// must skip the edge (slot -1), matching the legacy "neither owned nor
// ghost" branch.
func TestEdgeCacheRemoteSlot(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	d := &embed.Distributed{
		OwnedIDs: []int32{0, 1},
		GhostIDs: []int32{}, // vertex 2 is adjacent but not ghosted
	}
	ec := buildEdgeCache(g, d)
	defer ec.release()
	// Vertex 1's neighbour 2 must resolve to -1 and produce no cut edge.
	for _, s := range ec.slot {
		if s >= 2 {
			t.Fatalf("cache resolved a slot %d beyond the view", s)
		}
	}
	if len(ec.cutA) != 1 {
		t.Fatalf("cut view has %d edges, want 1 (0-1 only)", len(ec.cutA))
	}
}
