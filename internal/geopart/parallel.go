package geopart

import (
	"math"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// ParallelConfig configures the parallel geometric partitioner
// SP-PG7-NL: the Config candidate mix (line separators are ignored —
// the parallel formulation computes sphere separators only, as the
// paper's does) plus the strip refinement options.
type ParallelConfig struct {
	Config
	Refine      bool    // apply Fiduccia–Mattheyses on a coordinate strip
	StripFactor float64 // strip size target, × separator edge count; default 8
	FMPasses    int     // default 4
}

// DefaultParallelConfig is SP-PG7-NL with strip refinement, the
// configuration ScalaPart uses.
func DefaultParallelConfig() ParallelConfig {
	cfg := G7NL()
	return ParallelConfig{Config: cfg, Refine: true}
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	c.Config = c.Config.withDefaults()
	if c.StripFactor == 0 {
		c.StripFactor = 8
	}
	if c.FMPasses == 0 {
		c.FMPasses = 4
	}
	return c
}

// ParallelResult is one rank's share of a parallel bisection plus the
// global statistics every rank ends up knowing.
type ParallelResult struct {
	OwnedIDs  []int32
	Side      []int32 // per owned vertex
	Cut       int64   // global cut weight after refinement
	CutBefore int64   // global cut weight of the raw geometric separator
	SideW     [2]int64
	Imbalance float64
	StripSize int // vertices in the refinement strip (0 when Refine off)
	Tries     int
}

// sampleEntry carries a sampled coordinate with its vertex id for
// tie-broken medians.
type sampleEntry struct {
	ID int32
	P  geometry.Vec2
}

// valueAbove reports whether (val, id) exceeds the threshold pair.
func valueAbove(val float64, id int32, tVal float64, tID int32) bool {
	if val != tVal {
		return val > tVal
	}
	return id > tID
}

// ParallelPartition bisects g in parallel from a distributed embedding:
// a gathered coordinate sample yields centerpoints (computed
// redundantly on every rank, as in the paper), random great circles
// become candidates whose cut and balance contributions are reduced
// across ranks, and the best candidate is refined by FM on a
// coordinate strip around the separating circle.
func ParallelPartition(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cfg ParallelConfig) *ParallelResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	totalW := g.TotalVertexWeight()

	// Gather a coordinate sample with ids (identical on every rank).
	sample := gatherSample(c, d, 4096)

	// Normalisation constants from the sample.
	var sum geometry.Vec2
	for _, s := range sample {
		sum = sum.Add(s.P)
	}
	count := len(sample)
	centroid := sum.Scale(1 / math.Max(float64(count), 1))
	rs := make([]float64, count)
	for i, s := range sample {
		rs[i] = s.P.Sub(centroid).Norm()
	}
	scale := 1.0
	if count > 0 {
		if med := stats.Quantile(rs, 0.5); med > 1e-12 {
			scale = 1 / med
		}
	}
	norm := func(p geometry.Vec2) geometry.Vec2 { return p.Sub(centroid).Scale(scale) }

	// Candidate construction (redundant, deterministic on all ranks).
	type cand struct {
		mob   func(geometry.Vec3) geometry.Vec3
		u     geometry.Vec3
		tVal  float64
		tID   int32
		mobID int
	}
	sample3 := make([]geometry.Vec3, count)
	for i, s := range sample {
		sample3[i] = geometry.StereoUp(norm(s.P))
	}
	var cands []cand
	var mobs []func(geometry.Vec3) geometry.Vec3
	perCP := cfg.GreatCircles / cfg.Centerpoints
	extra := cfg.GreatCircles % cfg.Centerpoints
	for cp := 0; cp < cfg.Centerpoints; cp++ {
		center := geometry.Vec3{}
		if count > 0 {
			center = geometry.Centerpoint(sample3, rng)
		}
		mob := geometry.MoebiusToOrigin(center)
		mobs = append(mobs, mob)
		mappedSample := make([]geometry.Vec3, count)
		for i, q := range sample3 {
			mappedSample[i] = mob(q)
		}
		circles := perCP
		if cp < extra {
			circles++
		}
		vals := make([]float64, count)
		for t := 0; t < circles; t++ {
			u := geometry.RandomUnitVec3(rng)
			// Median over the sample = balanced threshold. Mapped
			// sphere values are continuous, so ties are measure-zero
			// and the id tie-break (needed for symmetric integer
			// coordinates in RCB) defaults to 0.
			for i, q := range mappedSample {
				vals[i] = q.Dot(u)
			}
			tVal, tID := 0.0, int32(0)
			if count > 0 {
				tVal = stats.QuickSelect(vals, count/2)
			}
			cands = append(cands, cand{mob: mob, u: u, tVal: tVal, tID: tID, mobID: cp})
		}
	}

	// Pre-map owned and ghost points once per centerpoint.
	nOwn, nGhost := len(d.OwnedIDs), len(d.GhostIDs)
	mappedOwn := make([][]geometry.Vec3, len(mobs))
	mappedGhost := make([][]geometry.Vec3, len(mobs))
	for m, mob := range mobs {
		mo := make([]geometry.Vec3, nOwn)
		for i, p := range d.OwnedPos {
			mo[i] = mob(geometry.StereoUp(norm(p)))
		}
		mg := make([]geometry.Vec3, nGhost)
		for i, p := range d.GhostPos {
			mg[i] = mob(geometry.StereoUp(norm(p)))
		}
		mappedOwn[m], mappedGhost[m] = mo, mg
		c.Charge(float64(nOwn+nGhost) * 6)
	}

	if len(cands) == 0 {
		panic("geopart: ParallelPartition needs at least one great-circle candidate")
	}
	// Evaluate every candidate locally: cut and side weights.
	ghostSlotOf := make(map[int32]int32, nGhost)
	for i, id := range d.GhostIDs {
		ghostSlotOf[id] = int32(i)
	}
	ncand := len(cands)
	contrib := make([]int64, 3*ncand)
	sideBuf := make([][]bool, ncand) // per candidate: side of each owned vertex
	for k, cd := range cands {
		sides := make([]bool, nOwn)
		cut := int64(0)
		var w0, w1 int64
		for i, id := range d.OwnedIDs {
			v := mappedOwn[cd.mobID][i].Dot(cd.u)
			s := valueAbove(v, id, cd.tVal, cd.tID)
			sides[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		for i, id := range d.OwnedIDs {
			for e := g.XAdj[id]; e < g.XAdj[id+1]; e++ {
				nb := g.Adjncy[e]
				if nb < id {
					continue // counted by the owner of the smaller id
				}
				var nbSide bool
				if slot, ok := ghostSlotOf[nb]; ok {
					nbSide = valueAbove(mappedGhost[cd.mobID][slot].Dot(cd.u), nb, cd.tVal, cd.tID)
				} else if li, ok2 := ownedIndex(d, nb); ok2 {
					nbSide = sides[li]
				} else {
					continue // neither owned nor ghost: not adjacent here
				}
				if nbSide != sides[i] {
					cut += int64(g.ArcWeight(e))
				}
			}
		}
		contrib[3*k] = cut
		contrib[3*k+1] = w0
		contrib[3*k+2] = w1
		sideBuf[k] = sides
		c.Charge(float64(nOwn) * 4)
	}
	global := mpi.AllReduceSlice(c, contrib, 8, mpi.SumInt64)

	// Select the best balanced candidate (identical on all ranks).
	bestK := -1
	bestCut := int64(math.MaxInt64)
	for k := 0; k < ncand; k++ {
		cut, w0, w1 := global[3*k], global[3*k+1], global[3*k+2]
		imb := imbalance2(w0, w1)
		if imb <= cfg.BalanceTol && cut < bestCut {
			bestCut = cut
			bestK = k
		}
	}
	if bestK < 0 {
		// No candidate within tolerance: take the most balanced one.
		bestImb := math.Inf(1)
		for k := 0; k < ncand; k++ {
			if imb := imbalance2(global[3*k+1], global[3*k+2]); imb < bestImb {
				bestImb = imb
				bestK = k
			}
		}
		bestCut = global[3*bestK]
	}

	res := &ParallelResult{
		OwnedIDs:  d.OwnedIDs,
		Side:      make([]int32, nOwn),
		Cut:       bestCut,
		CutBefore: bestCut,
		SideW:     [2]int64{global[3*bestK+1], global[3*bestK+2]},
		Tries:     ncand,
	}
	for i, s := range sideBuf[bestK] {
		if s {
			res.Side[i] = 1
		}
	}
	res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])

	if cfg.Refine && g.NumVertices() > 4 {
		best := cands[bestK]
		valOwned := make([]float64, nOwn)
		for i := range valOwned {
			valOwned[i] = mappedOwn[best.mobID][i].Dot(best.u)
		}
		valGhost := make([]float64, nGhost)
		for i := range valGhost {
			valGhost[i] = mappedGhost[best.mobID][i].Dot(best.u)
		}
		sampleAbs := make([]float64, count)
		for i, q := range sample3 {
			sampleAbs[i] = math.Abs(mobs[best.mobID](q).Dot(best.u) - best.tVal)
		}
		refineStrip(c, g, d, cfg, valOwned, valGhost, sampleAbs, best.tVal, totalW, res)
	}
	return res
}

// ownedIndex binary-searches the local index of an owned vertex; owned
// ids are sorted by construction.
func ownedIndex(d *embed.Distributed, id int32) (int32, bool) {
	lo, hi := 0, len(d.OwnedIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.OwnedIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.OwnedIDs) && d.OwnedIDs[lo] == id {
		return int32(lo), true
	}
	return 0, false
}

func imbalance2(w0, w1 int64) float64 {
	t := w0 + w1
	if t == 0 {
		return 0
	}
	mx := w0
	if w1 > mx {
		mx = w1
	}
	return 2*float64(mx)/float64(t) - 1
}

// gatherSample collects an id-tagged coordinate sample of roughly
// `target` global entries, identical on every rank.
func gatherSample(c *mpi.Comm, d *embed.Distributed, target int) []sampleEntry {
	per := target/c.Size() + 1
	var mine []sampleEntry
	if len(d.OwnedIDs) > 0 {
		stride := len(d.OwnedIDs)/per + 1
		for i := 0; i < len(d.OwnedIDs); i += stride {
			mine = append(mine, sampleEntry{ID: d.OwnedIDs[i], P: d.OwnedPos[i]})
		}
	}
	return mpi.Concat(mpi.AllGatherV(c, mine, 20))
}
