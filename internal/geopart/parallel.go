package geopart

import (
	"math"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
	"repro/internal/stats"
)

// ParallelConfig configures the parallel geometric partitioner
// SP-PG7-NL: the Config candidate mix (line separators are ignored —
// the parallel formulation computes sphere separators only, as the
// paper's does) plus the strip refinement options.
type ParallelConfig struct {
	Config
	Refine      bool    // apply Fiduccia–Mattheyses on a coordinate strip
	StripFactor float64 // strip size target, × separator edge count; default 8
	FMPasses    int     // default 4
	// FullCutRounds bounds the full-cut boundary-FM rounds applied
	// after strip refinement when refine.SetFullCut is on; default 4.
	// Each round re-extracts the boundary, so the pass also stops as
	// soon as a round yields no gain.
	FullCutRounds int
}

// DefaultParallelConfig is SP-PG7-NL with strip refinement, the
// configuration ScalaPart uses.
func DefaultParallelConfig() ParallelConfig {
	cfg := G7NL()
	return ParallelConfig{Config: cfg, Refine: true}
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	c.Config = c.Config.withDefaults()
	if c.StripFactor == 0 {
		c.StripFactor = 8
	}
	if c.FMPasses == 0 {
		c.FMPasses = 4
	}
	if c.FullCutRounds == 0 {
		c.FullCutRounds = 4
	}
	return c
}

// Defaults returns the config with every zero field replaced by its
// default, exactly as ParallelPartition will resolve it. Callers that
// reuse the partitioner's balance tolerance or FM pass count outside a
// partition call (core's evolutionary combine does) read it here so
// both sides agree.
func (c ParallelConfig) Defaults() ParallelConfig { return c.withDefaults() }

// ParallelResult is one rank's share of a parallel bisection plus the
// global statistics every rank ends up knowing.
type ParallelResult struct {
	OwnedIDs  []int32
	Side      []int32 // per owned vertex
	Cut       int64   // global cut weight after refinement
	CutBefore int64   // global cut weight of the raw geometric separator
	SideW     [2]int64
	Imbalance float64
	StripSize int // vertices in the refinement strip (0 when Refine off)
	Boundary  int // free set of the last full-cut round (0 unless full-cut ran)
	Tries     int
}

// sampleEntry carries a sampled coordinate with its vertex id for
// tie-broken medians.
type sampleEntry struct {
	ID int32
	P  geometry.Vec2
}

// valueAbove reports whether (val, id) exceeds the threshold pair.
func valueAbove(val float64, id int32, tVal float64, tID int32) bool {
	if val != tVal {
		return val > tVal
	}
	return id > tID
}

// candSet is the great-circle candidate set, built redundantly and
// deterministically on every rank: per retained centerpoint one Möbius
// map, and per candidate a direction with its sampled median threshold.
// Candidates of centerpoint m occupy the contiguous index range
// [mobStart[m], mobStart[m+1]).
type candSet struct {
	ms       []geometry.Moebius
	dirs     []geometry.Vec3
	tVal     []float64
	tID      []int32
	mobOf    []int32 // candidate -> centerpoint index
	mobStart []int32 // len(ms)+1 prefix offsets into dirs
}

// buildCandidates constructs the candidate set from the gathered
// sample. Centerpoints that would receive zero great circles (possible
// when GreatCircles < Centerpoints) form a tail of the round-robin
// split; they are skipped entirely — no Radon centerpoint iteration,
// no mapping of the sample — since they contribute no candidates, and
// all RNG draws that feed candidates happen before the tail.
func buildCandidates(cfg ParallelConfig, rng *rand.Rand, sample3 []geometry.Vec3) candSet {
	count := len(sample3)
	var cs candSet
	cs.mobStart = append(cs.mobStart, 0)
	mappedSample := make([]geometry.Vec3, count)
	vals := make([]float64, count)
	perCP := cfg.GreatCircles / cfg.Centerpoints
	extra := cfg.GreatCircles % cfg.Centerpoints
	for cp := 0; cp < cfg.Centerpoints; cp++ {
		circles := perCP
		if cp < extra {
			circles++
		}
		if circles == 0 {
			break
		}
		center := geometry.Vec3{}
		if count > 0 {
			center = geometry.Centerpoint(sample3, rng)
		}
		m := geometry.NewMoebius(center)
		cs.ms = append(cs.ms, m)
		for i, q := range sample3 {
			mappedSample[i] = m.Apply(q)
		}
		for t := 0; t < circles; t++ {
			u := geometry.RandomUnitVec3(rng)
			// Median over the sample = balanced threshold. Mapped
			// sphere values are continuous, so ties are measure-zero
			// and the id tie-break (needed for symmetric integer
			// coordinates in RCB) defaults to 0.
			for i, q := range mappedSample {
				vals[i] = q.Dot(u)
			}
			tVal := 0.0
			if count > 0 {
				tVal = stats.QuickSelect(vals, count/2)
			}
			cs.dirs = append(cs.dirs, u)
			cs.tVal = append(cs.tVal, tVal)
			cs.tID = append(cs.tID, 0)
			cs.mobOf = append(cs.mobOf, int32(len(cs.ms)-1))
		}
		cs.mobStart = append(cs.mobStart, int32(len(cs.dirs)))
	}
	return cs
}

// evaluated is what the selection and refinement stages consume from a
// candidate-evaluation kernel, independent of which kernel produced it:
// the reduced (cut, w0, w1) triples plus accessors for the winning
// candidate's sides and separator values.
type evaluated struct {
	global       []int64 // reduced contrib: (cut, w0, w1) per candidate
	ec           *edgeCache
	sideOf       func(k, i int) bool
	fillValOwned func(k int, out []float64)
	fillValGhost func(k int, out []float64)
	release      func()
}

// ParallelPartition bisects g in parallel from a distributed embedding:
// a gathered coordinate sample yields centerpoints (computed
// redundantly on every rank, as in the paper), random great circles
// become candidates whose cut and balance contributions are reduced
// across ranks, and the best candidate is refined by FM on a
// coordinate strip around the separating circle.
//
// Candidate evaluation runs the batched kernel (edge topology cache,
// fused projections, packed side bitsets) unless SetBatching disabled
// it; both kernels produce bit-identical cuts, sides, and virtual
// clocks — batching only changes host wall-clock and allocations.
func ParallelPartition(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cfg ParallelConfig) *ParallelResult {
	c.SetPhase("geopart")
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	totalW := g.TotalVertexWeight()

	// Gather a coordinate sample with ids (identical on every rank).
	sample := gatherSample(c, d, 4096)

	// Normalisation constants from the sample.
	var sum geometry.Vec2
	for _, s := range sample {
		sum = sum.Add(s.P)
	}
	count := len(sample)
	centroid := sum.Scale(1 / math.Max(float64(count), 1))
	rs := make([]float64, count)
	for i, s := range sample {
		rs[i] = s.P.Sub(centroid).Norm()
	}
	scale := 1.0
	if count > 0 {
		if med := stats.Quantile(rs, 0.5); med > 1e-12 {
			scale = 1 / med
		}
	}
	norm := func(p geometry.Vec2) geometry.Vec2 { return p.Sub(centroid).Scale(scale) }

	// Candidate construction (redundant, deterministic on all ranks).
	sample3 := make([]geometry.Vec3, count)
	for i, s := range sample {
		sample3[i] = geometry.StereoUp(norm(s.P))
	}
	cs := buildCandidates(cfg, rng, sample3)
	if len(cs.dirs) == 0 {
		panic("geopart: ParallelPartition needs at least one great-circle candidate")
	}
	ncand := len(cs.dirs)

	// Evaluate every candidate locally and reduce (cut, w0, w1) triples.
	var ev *evaluated
	if batchingOn.Load() {
		ev = evaluateBatched(c, g, d, &cs, norm)
	} else {
		ev = evaluateLegacy(c, g, d, &cs, norm)
	}
	defer ev.release()

	// Select the best balanced candidate (identical on all ranks).
	bestK := -1
	bestCut := int64(math.MaxInt64)
	for k := 0; k < ncand; k++ {
		cut, w0, w1 := ev.global[3*k], ev.global[3*k+1], ev.global[3*k+2]
		imb := imbalance2(w0, w1)
		if imb <= cfg.BalanceTol && cut < bestCut {
			bestCut = cut
			bestK = k
		}
	}
	if bestK < 0 {
		// No candidate within tolerance: take the most balanced one.
		bestImb := math.Inf(1)
		for k := 0; k < ncand; k++ {
			if imb := imbalance2(ev.global[3*k+1], ev.global[3*k+2]); imb < bestImb {
				bestImb = imb
				bestK = k
			}
		}
		bestCut = ev.global[3*bestK]
	}

	nOwn, nGhost := len(d.OwnedIDs), len(d.GhostIDs)
	res := &ParallelResult{
		OwnedIDs:  d.OwnedIDs,
		Side:      make([]int32, nOwn),
		Cut:       bestCut,
		CutBefore: bestCut,
		SideW:     [2]int64{ev.global[3*bestK+1], ev.global[3*bestK+2]},
		Tries:     ncand,
	}
	for i := 0; i < nOwn; i++ {
		if ev.sideOf(bestK, i) {
			res.Side[i] = 1
		}
	}
	res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])

	if cfg.Refine && g.NumVertices() > 4 {
		valOwned := make([]float64, nOwn)
		ev.fillValOwned(bestK, valOwned)
		valGhost := make([]float64, nGhost)
		ev.fillValGhost(bestK, valGhost)
		bestMob := cs.ms[cs.mobOf[bestK]]
		bestU, bestT := cs.dirs[bestK], cs.tVal[bestK]
		sampleAbs := make([]float64, count)
		for i, q := range sample3 {
			sampleAbs[i] = math.Abs(bestMob.Apply(q).Dot(bestU) - bestT)
		}
		stripFlips := refineStrip(c, g, d, cfg, ev.ec, valOwned, valGhost, sampleAbs, bestT, totalW, res)
		if refine.FullCut() {
			// Replicate the ghosts' sides under the winning candidate:
			// the geometric side from the separator threshold, then the
			// strip flips that landed on our ghost copies.
			ghostSide := make([]int8, nGhost)
			for gi := range ghostSide {
				if valueAbove(valGhost[gi], d.GhostIDs[gi], bestT, cs.tID[bestK]) {
					ghostSide[gi] = 1
				}
			}
			for _, id := range stripFlips {
				if gi, ok := d.GhostSlot(id); ok {
					ghostSide[gi] = 1 - ghostSide[gi]
				}
			}
			refineFullCut(c, g, d, cfg, ev.ec, ghostSide, totalW, res)
		}
	}
	return res
}

// evaluateBatched is the candidate-batched kernel: one edge topology
// cache shared by every candidate, a fused per-vertex projection pass
// that evaluates all candidate dot products for a vertex while its
// lifted point is cache-resident, packed side bitsets over owned+ghost
// slots, and a branchless XOR cut count over the edge cache. Charges
// and reduced values are bit-identical to evaluateLegacy.
func evaluateBatched(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cs *candSet, norm func(geometry.Vec2) geometry.Vec2) *evaluated {
	nOwn, nGhost := len(d.OwnedIDs), len(d.GhostIDs)
	ncand := len(cs.dirs)
	ec := buildEdgeCache(g, d)
	sc, words := getKernelScratch(ncand, nOwn, nGhost)
	block, bits := sc.block, sc.bits

	// The legacy kernel charges one pre-mapping pass per centerpoint
	// and one scan per candidate; the batched kernel does the same work
	// fused, so it charges identically — only host time drops.
	for range cs.ms {
		c.Charge(float64(nOwn+nGhost) * 6)
	}

	contrib := make([]int64, 3*ncand)
	// Owned pass: lift each vertex once, evaluate every candidate while
	// the point is hot, and fold sides and weights in the same sweep.
	for v := 0; v < nOwn; v++ {
		id := d.OwnedIDs[v]
		p3 := geometry.StereoUp(norm(d.OwnedPos[v]))
		row := block[v*ncand : (v+1)*ncand]
		for m := range cs.ms {
			lo, hi := cs.mobStart[m], cs.mobStart[m+1]
			cs.ms[m].ApplyDots(p3, cs.dirs[lo:hi], row[lo:hi])
		}
		w := int64(g.VertexWeight(id))
		word := v >> 6
		bit := uint64(1) << (uint(v) & 63)
		for k := 0; k < ncand; k++ {
			if valueAbove(row[k], id, cs.tVal[k], cs.tID[k]) {
				bits[k*words+word] |= bit
				contrib[3*k+2] += w
			} else {
				contrib[3*k+1] += w
			}
		}
	}
	// Ghost pass: same fused evaluation, sides only, into the ghost
	// region of each candidate's bitset. Values are not materialised —
	// the winning candidate's ghost values are recomputed once after
	// selection.
	row := sc.ghostRow
	for gi := 0; gi < nGhost; gi++ {
		id := d.GhostIDs[gi]
		p3 := geometry.StereoUp(norm(d.GhostPos[gi]))
		for m := range cs.ms {
			lo, hi := cs.mobStart[m], cs.mobStart[m+1]
			cs.ms[m].ApplyDots(p3, cs.dirs[lo:hi], row[lo:hi])
		}
		slot := nOwn + gi
		word := slot >> 6
		bit := uint64(1) << (uint(slot) & 63)
		for k := 0; k < ncand; k++ {
			if valueAbove(row[k], id, cs.tVal[k], cs.tID[k]) {
				bits[k*words+word] |= bit
			}
		}
	}
	for k := 0; k < ncand; k++ {
		contrib[3*k] = ec.countCut(bits[k*words : (k+1)*words])
		c.Charge(float64(nOwn) * 4)
	}
	global := mpi.AllReduceSlice(c, contrib, 8, mpi.SumInt64)

	return &evaluated{
		global: global,
		ec:     ec,
		sideOf: func(k, i int) bool {
			return bits[k*words+(i>>6)]>>(uint(i)&63)&1 == 1
		},
		fillValOwned: func(k int, out []float64) {
			for i := range out {
				out[i] = block[i*ncand+k]
			}
		},
		fillValGhost: func(k int, out []float64) {
			m := cs.ms[cs.mobOf[k]]
			u := cs.dirs[k]
			for gi := range out {
				out[gi] = m.Apply(geometry.StereoUp(norm(d.GhostPos[gi]))).Dot(u)
			}
		},
		release: func() {
			sc.release()
			ec.release()
		},
	}
}

// evaluateLegacy is the original per-candidate kernel, kept verbatim as
// the reference implementation behind SetBatching(false): owned and
// ghost points are pre-mapped per centerpoint into materialised []Vec3
// arrays, and every candidate re-scans the full owned adjacency with a
// ghost map lookup or an owned binary search per edge endpoint.
func evaluateLegacy(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cs *candSet, norm func(geometry.Vec2) geometry.Vec2) *evaluated {
	nOwn, nGhost := len(d.OwnedIDs), len(d.GhostIDs)
	ncand := len(cs.dirs)

	// Pre-map owned and ghost points once per centerpoint.
	mappedOwn := make([][]geometry.Vec3, len(cs.ms))
	mappedGhost := make([][]geometry.Vec3, len(cs.ms))
	for m := range cs.ms {
		mob := cs.ms[m]
		mo := make([]geometry.Vec3, nOwn)
		for i, p := range d.OwnedPos {
			mo[i] = mob.Apply(geometry.StereoUp(norm(p)))
		}
		mg := make([]geometry.Vec3, nGhost)
		for i, p := range d.GhostPos {
			mg[i] = mob.Apply(geometry.StereoUp(norm(p)))
		}
		mappedOwn[m], mappedGhost[m] = mo, mg
		c.Charge(float64(nOwn+nGhost) * 6)
	}

	// Evaluate every candidate locally: cut and side weights.
	ghostSlotOf := make(map[int32]int32, nGhost)
	for i, id := range d.GhostIDs {
		ghostSlotOf[id] = int32(i)
	}
	contrib := make([]int64, 3*ncand)
	sideBuf := make([][]bool, ncand) // per candidate: side of each owned vertex
	cur := graph.GetCursor(g)
	defer cur.Release()
	for k := 0; k < ncand; k++ {
		mobID := cs.mobOf[k]
		u, tVal, tID := cs.dirs[k], cs.tVal[k], cs.tID[k]
		sides := make([]bool, nOwn)
		cut := int64(0)
		var w0, w1 int64
		for i, id := range d.OwnedIDs {
			v := mappedOwn[mobID][i].Dot(u)
			s := valueAbove(v, id, tVal, tID)
			sides[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		for i, id := range d.OwnedIDs {
			nbrs, wgts := cur.Arcs(id)
			for e, nb := range nbrs {
				if nb < id {
					continue // counted by the owner of the smaller id
				}
				var nbSide bool
				if slot, ok := ghostSlotOf[nb]; ok {
					nbSide = valueAbove(mappedGhost[mobID][slot].Dot(u), nb, tVal, tID)
				} else if li, ok2 := ownedIndex(d, nb); ok2 {
					nbSide = sides[li]
				} else {
					continue // neither owned nor ghost: not adjacent here
				}
				if nbSide != sides[i] {
					cut += int64(wgts[e])
				}
			}
		}
		contrib[3*k] = cut
		contrib[3*k+1] = w0
		contrib[3*k+2] = w1
		sideBuf[k] = sides
		c.Charge(float64(nOwn) * 4)
	}
	global := mpi.AllReduceSlice(c, contrib, 8, mpi.SumInt64)

	return &evaluated{
		global: global,
		sideOf: func(k, i int) bool { return sideBuf[k][i] },
		fillValOwned: func(k int, out []float64) {
			for i := range out {
				out[i] = mappedOwn[cs.mobOf[k]][i].Dot(cs.dirs[k])
			}
		},
		fillValGhost: func(k int, out []float64) {
			for i := range out {
				out[i] = mappedGhost[cs.mobOf[k]][i].Dot(cs.dirs[k])
			}
		},
		release: func() {},
	}
}

// ownedIndex binary-searches the local index of an owned vertex; owned
// ids are sorted by construction.
func ownedIndex(d *embed.Distributed, id int32) (int32, bool) {
	lo, hi := 0, len(d.OwnedIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.OwnedIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.OwnedIDs) && d.OwnedIDs[lo] == id {
		return int32(lo), true
	}
	return 0, false
}

// imbalance2 delegates to the canonical bisection-imbalance definition
// in the graph package, so the parallel accept path and the sequential
// one (graph.Imbalance(g, part, 2)) agree bit-for-bit on every split.
func imbalance2(w0, w1 int64) float64 {
	return graph.Imbalance2(w0, w1)
}

// gatherSample collects an id-tagged coordinate sample of roughly
// `target` global entries, identical on every rank. The local slice is
// pre-sized: the stride loop contributes exactly
// ceil(len(OwnedIDs)/stride) <= len(OwnedIDs)/stride + 1 entries.
func gatherSample(c *mpi.Comm, d *embed.Distributed, target int) []sampleEntry {
	per := target/c.Size() + 1
	var mine []sampleEntry
	if len(d.OwnedIDs) > 0 {
		stride := len(d.OwnedIDs)/per + 1
		mine = make([]sampleEntry, 0, len(d.OwnedIDs)/stride+1)
		for i := 0; i < len(d.OwnedIDs); i += stride {
			mine = append(mine, sampleEntry{ID: d.OwnedIDs[i], P: d.OwnedPos[i]})
		}
	}
	return mpi.Concat(mpi.AllGatherV(c, mine, 20))
}
