package geopart

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Partition3D bisects g using the geometric mesh partitioning scheme on
// 3-D vertex coordinates: points lift to the unit 3-sphere in R⁴, an
// approximate centerpoint comes from iterated R⁴ Radon points, the
// Möbius map centres the cloud, and random great 2-spheres (hyperplanes
// through the origin) become candidate separators. Line separators use
// random directions in R³. The Gilbert–Miller–Teng guarantees cover
// well-shaped 3-D meshes with O(n^{2/3}) separators.
func Partition3D(g *graph.Graph, coords []geometry.Vec3, cfg Config) ([]int32, Stats, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if len(coords) != n {
		return nil, Stats{}, fmt.Errorf("geopart: Partition3D got %d coordinates for %d vertices", len(coords), n)
	}
	if n == 1 {
		return []int32{0}, Stats{}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	norm := normalize3(coords)
	lifted := make([]geometry.Vec4, n)
	for i, p := range norm {
		lifted[i] = geometry.StereoUp3(p)
	}
	sampleIdx := sampleIndices(n, cfg.SampleSize, rng)

	bestCut := int64(math.MaxInt64)
	var bestPart []int32
	var best Stats
	tries := 0
	vals := make([]float64, n)
	part := make([]int32, n)
	evaluate := func(kind string) {
		tries++
		bisectByValues(vals, part)
		cut := graph.CutSize(g, part)
		imb := graph.Imbalance(g, part, 2)
		if imb <= cfg.BalanceTol && cut < bestCut {
			bestCut = cut
			bestPart = append(bestPart[:0:0], part...)
			best = Stats{Cut: cut, Imbalance: imb, BestKind: kind}
		}
	}
	perCP := cfg.GreatCircles / cfg.Centerpoints
	extra := cfg.GreatCircles % cfg.Centerpoints
	sample4 := make([]geometry.Vec4, len(sampleIdx))
	mapped := make([]geometry.Vec4, n)
	for cp := 0; cp < cfg.Centerpoints; cp++ {
		for i, idx := range sampleIdx {
			sample4[i] = lifted[idx]
		}
		center := geometry.Centerpoint4(sample4, rng)
		circles := perCP
		if cp < extra {
			circles++
		}
		if circles == 0 {
			// Same skip as Partition: keep the RNG stream, drop the
			// wasted O(n) conformal map.
			continue
		}
		mob := geometry.MoebiusToOrigin4(center)
		for i, q := range lifted {
			mapped[i] = mob(q)
		}
		for t := 0; t < circles; t++ {
			u := geometry.RandomUnitVec4(rng)
			for i, q := range mapped {
				vals[i] = q.Dot(u)
			}
			evaluate("sphere")
		}
	}
	for t := 0; t < cfg.LineSeps; t++ {
		u := geometry.RandomUnitVec3(rng)
		for i, p := range norm {
			vals[i] = p.Dot(u)
		}
		evaluate("plane")
	}
	if bestPart == nil {
		bestPart = make([]int32, n)
		for v := n / 2; v < n; v++ {
			bestPart[v] = 1
		}
		best = Stats{Cut: graph.CutSize(g, bestPart), Imbalance: graph.Imbalance(g, bestPart, 2)}
	}
	best.Tries = tries
	return bestPart, best, nil
}

// normalize3 centers 3-D coordinates on their centroid and scales so
// the median radius is 1.
func normalize3(coords []geometry.Vec3) []geometry.Vec3 {
	var c geometry.Vec3
	for _, p := range coords {
		c = c.Add(p)
	}
	c = c.Scale(1 / math.Max(float64(len(coords)), 1))
	rs := make([]float64, len(coords))
	for i, p := range coords {
		rs[i] = p.Sub(c).Norm()
	}
	med := stats.Quantile(rs, 0.5)
	if med < 1e-12 {
		med = 1
	}
	inv := 1 / med
	out := make([]geometry.Vec3, len(coords))
	for i, p := range coords {
		out[i] = p.Sub(c).Scale(inv)
	}
	return out
}

// RCBBisect3D is the 3-D recursive-coordinate-bisection single cut: the
// median plane orthogonal to the widest coordinate extent.
func RCBBisect3D(g *graph.Graph, coords []geometry.Vec3) ([]int32, Stats) {
	n := g.NumVertices()
	part := make([]int32, n)
	if n <= 1 {
		return part, Stats{Tries: 1}
	}
	var lo, hi geometry.Vec3
	lo, hi = coords[0], coords[0]
	for _, p := range coords {
		lo = geometry.Vec3{X: math.Min(lo.X, p.X), Y: math.Min(lo.Y, p.Y), Z: math.Min(lo.Z, p.Z)}
		hi = geometry.Vec3{X: math.Max(hi.X, p.X), Y: math.Max(hi.Y, p.Y), Z: math.Max(hi.Z, p.Z)}
	}
	ext := geometry.Vec3{X: hi.X - lo.X, Y: hi.Y - lo.Y, Z: hi.Z - lo.Z}
	vals := make([]float64, n)
	switch {
	case ext.X >= ext.Y && ext.X >= ext.Z:
		for i, p := range coords {
			vals[i] = p.X
		}
	case ext.Y >= ext.Z:
		for i, p := range coords {
			vals[i] = p.Y
		}
	default:
		for i, p := range coords {
			vals[i] = p.Z
		}
	}
	bisectByValues(vals, part)
	return part, Stats{
		Cut:       graph.CutSize(g, part),
		Imbalance: graph.Imbalance(g, part, 2),
		Tries:     1,
		BestKind:  "rcb3d",
	}
}

// RCB3D recursively bisects g into parts pieces (a power of two) by
// 3-D coordinate medians, always splitting the widest extent. It
// returns an error for an invalid part count or a coordinate array
// that does not match the graph.
func RCB3D(g *graph.Graph, coords []geometry.Vec3, parts int) ([]int32, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("geopart: RCB3D part count %d must be a power of two", parts)
	}
	if len(coords) != g.NumVertices() {
		return nil, fmt.Errorf("geopart: RCB3D got %d coordinates for %d vertices", len(coords), g.NumVertices())
	}
	part := make([]int32, g.NumVertices())
	idx := make([]int32, g.NumVertices())
	for i := range idx {
		idx[i] = int32(i)
	}
	rcb3Split(coords, idx, part, 0, parts)
	return part, nil
}

func rcb3Split(coords []geometry.Vec3, idx []int32, part []int32, base int32, parts int) {
	if parts == 1 || len(idx) <= 1 {
		for _, v := range idx {
			part[v] = base
		}
		return
	}
	var lo, hi geometry.Vec3
	for i, v := range idx {
		p := coords[v]
		if i == 0 {
			lo, hi = p, p
			continue
		}
		lo = geometry.Vec3{X: math.Min(lo.X, p.X), Y: math.Min(lo.Y, p.Y), Z: math.Min(lo.Z, p.Z)}
		hi = geometry.Vec3{X: math.Max(hi.X, p.X), Y: math.Max(hi.Y, p.Y), Z: math.Max(hi.Z, p.Z)}
	}
	ext := geometry.Vec3{X: hi.X - lo.X, Y: hi.Y - lo.Y, Z: hi.Z - lo.Z}
	vals := make([]float64, len(idx))
	for i, v := range idx {
		switch {
		case ext.X >= ext.Y && ext.X >= ext.Z:
			vals[i] = coords[v].X
		case ext.Y >= ext.Z:
			vals[i] = coords[v].Y
		default:
			vals[i] = coords[v].Z
		}
	}
	sides := make([]int32, len(idx))
	bisectByValues(vals, sides)
	var l, h []int32
	for i, v := range idx {
		if sides[i] == 0 {
			l = append(l, v)
		} else {
			h = append(h, v)
		}
	}
	rcb3Split(coords, l, part, base, parts/2)
	rcb3Split(coords, h, part, base+int32(parts/2), parts/2)
}
