package geopart

import (
	"sort"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
	"repro/internal/stats"
)

// stripRecord is one gathered vertex around the separator: its id,
// current side, and whether it is free to move (inside the strip) or a
// locked ring vertex.
type stripRecord struct {
	ID    int32
	Side  int8
	Strip bool
}

// refineStrip applies Fiduccia–Mattheyses to the coordinate strip
// around the chosen separating circle (Figure 2 of the paper): vertices
// whose separator value lies within eps of the threshold are free, the
// ring of their outside neighbours is locked, and eps is set from the
// sample so the strip holds roughly StripFactor × |separator| vertices.
// Strip records are gathered to every rank and the (small) FM problem
// is solved redundantly, so no result broadcast is needed — the same
// trick the paper uses for the great-circle selection itself.
//
// When the batched kernel ran, ec carries the resolved edge topology
// and the ring scan is pure array indexing; with ec nil (legacy
// kernel) the scan falls back to the ghost map and owned binary search.
//
// The returned slice is the broadcast flip list (global vertex ids),
// identical on every rank; the full-cut pass uses it to bring its
// ghost side replicas up to date before extracting the boundary.
func refineStrip(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cfg ParallelConfig, ec *edgeCache, valOwned, valGhost, sampleAbs []float64, tVal float64, totalW int64, res *ParallelResult) []int32 {
	c.SetPhase("refine")
	n := g.NumVertices()
	target := int(cfg.StripFactor * float64(res.CutBefore))
	if target < 64 {
		target = 64
	}
	if target > n/4 {
		target = n / 4
	}
	if target < 1 || len(sampleAbs) == 0 {
		return nil
	}
	frac := float64(target) / float64(n)
	if frac > 1 {
		frac = 1
	}
	eps := stats.Quantile(sampleAbs, frac)
	if eps <= 0 {
		return nil
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	inStrip := func(val float64) bool { return abs(val-tVal) < eps }
	// ringTouchesStrip reports whether owned vertex i (id) has a
	// resolvable neighbour inside the strip.
	var ringTouchesStrip func(i int, id int32) bool
	if ec != nil {
		nOwn := ec.nOwn
		ringTouchesStrip = func(i int, id int32) bool {
			for a := ec.start[i]; a < ec.start[i+1]; a++ {
				s := ec.slot[a]
				if s < 0 {
					continue
				}
				var v float64
				if int(s) < nOwn {
					v = valOwned[s]
				} else {
					v = valGhost[int(s)-nOwn]
				}
				if inStrip(v) {
					return true
				}
			}
			return false
		}
	} else {
		ghostSlot := make(map[int32]int32, len(d.GhostIDs))
		for i, id := range d.GhostIDs {
			ghostSlot[id] = int32(i)
		}
		valOf := func(id int32) (float64, bool) {
			if li, ok := ownedIndex(d, id); ok {
				return valOwned[li], true
			}
			if gi, ok := ghostSlot[id]; ok {
				return valGhost[gi], true
			}
			return 0, false
		}
		cur := graph.GetCursor(g)
		defer cur.Release()
		ringTouchesStrip = func(_ int, id int32) bool {
			nbrs, _ := cur.Arcs(id)
			for _, nb := range nbrs {
				if v, ok := valOf(nb); ok && inStrip(v) {
					return true
				}
			}
			return false
		}
	}
	// Collect local strip and ring records.
	var recs []stripRecord
	for i, id := range d.OwnedIDs {
		if inStrip(valOwned[i]) {
			recs = append(recs, stripRecord{ID: id, Side: int8(res.Side[i]), Strip: true})
			continue
		}
		if ringTouchesStrip(i, id) {
			recs = append(recs, stripRecord{ID: id, Side: int8(res.Side[i])})
		}
	}
	all := mpi.Concat(mpi.AllGatherV(c, recs, 6))
	// Rank 0 solves the (small) strip FM problem and broadcasts the
	// flipped vertices plus the bookkeeping updates.
	type outcome struct {
		Flips     []int32
		Gain      int64
		SideW     [2]int64
		StripSize int
	}
	var out outcome
	if c.Rank() == 0 {
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		sideOfMap := make(map[int32]int8, len(all))
		var free []int32
		for _, rec := range all {
			sideOfMap[rec.ID] = rec.Side
			if rec.Strip {
				free = append(free, rec.ID)
			}
		}
		out.SideW = res.SideW
		out.StripSize = len(free)
		if len(free) > 0 {
			prob, ids := refine.BuildSubproblem(g, free, func(id int32) int8 {
				s, ok := sideOfMap[id]
				if !ok {
					panic("geopart: strip neighbour missing from gathered ring")
				}
				return s
			}, res.SideW, totalW, cfg.BalanceTol, cfg.FMPasses)
			before := append([]int8(nil), prob.Side...)
			out.Gain = prob.Run()
			c.Charge(float64(len(free)) * 20)
			for i, id := range ids {
				if prob.Side[i] != before[i] {
					out.Flips = append(out.Flips, id)
				}
			}
			out.SideW = prob.SideW
		}
	}
	// Modeled payload from the gathered record count, identical on all
	// ranks, so the broadcast cost is symmetric.
	got := c.Bcast(0, out, 32+len(all))
	out = got.(outcome)
	for _, id := range out.Flips {
		if li, ok := d.LocalSlot(id); ok {
			res.Side[li] = 1 - res.Side[li]
		}
	}
	res.Cut -= out.Gain
	res.SideW = out.SideW
	res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])
	res.StripSize = out.StripSize
	return out.Flips
}
