package geopart

import (
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
)

// Full-cut boundary-FM refinement (ROADMAP item 4, per arXiv
// 0910.2004): where the strip pass only frees vertices near the
// separating circle, this driver frees every vertex incident to a cut
// edge, wherever the embedding put it. Each round: extract the local
// boundary from the edge topology cache, gather (id, side) records of
// the global boundary and its locked one-hop ring, solve the FM
// subproblem on rank 0, and broadcast the flips — the same
// gather/solve/broadcast shape as refineStrip, so the communication
// pattern is already proven on the high-P collectives. Rounds stop
// when a solve yields no gain or the boundary empties.
//
// The pass is gated by refine.SetFullCut (default off) so the
// historical strip-only pipeline stays bit-identical; see ISSUE 10's
// bit-identity guard.

// freeSetOutcomeBytes is the fixed bookkeeping payload of the
// broadcast outcome (gain, side weights, free count), on top of one
// byte per gathered record.
const freeSetOutcomeBytes = 32

// RefineFreeSet runs one distributed gather-solve-broadcast FM round
// over an explicitly chosen free set: freeMask marks this rank's owned
// vertices that may move, side holds their current sides and is
// updated in place. All ranks receive the same outcome; the returned
// flips let callers update replicated side state (ghost copies, slot
// arrays). Exported because core's evolutionary combine operator frees
// the disagreement region of two parent partitions through exactly
// this round.
func RefineFreeSet(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, freeMask []bool, side []int32, sideW [2]int64, totalW int64, tol float64, passes int) refine.FreeSetResult {
	// Gather the global free set.
	var recs []refine.SideRecord
	for i, id := range d.OwnedIDs {
		if freeMask[i] {
			recs = append(recs, refine.SideRecord{ID: id, Side: int8(side[i]), Free: true})
		}
	}
	allFree := mpi.Concat(mpi.AllGatherV(c, recs, refine.SideRecordBytes))
	if len(allFree) == 0 {
		// Collective-consistent: the gathered length is identical on
		// every rank.
		return refine.FreeSetResult{SideW: sideW}
	}
	// Gather the locked ring: owned vertices outside the free set that
	// neighbour any free vertex anywhere. Membership must be checked
	// against the *global* free set — a neighbour across a rank border
	// is invisible to the local mask.
	inFree := make(map[int32]bool, len(allFree))
	for _, r := range allFree {
		inFree[r.ID] = true
	}
	cur := graph.GetCursor(g)
	ring := recs[:0:0]
	for i, id := range d.OwnedIDs {
		if freeMask[i] {
			continue
		}
		nbrs, _ := cur.Arcs(id)
		for _, nb := range nbrs {
			if inFree[nb] {
				ring = append(ring, refine.SideRecord{ID: id, Side: int8(side[i])})
				break
			}
		}
	}
	cur.Release()
	c.Charge(float64(len(d.OwnedIDs))) // the ring scan
	allRing := mpi.Concat(mpi.AllGatherV(c, ring, refine.SideRecordBytes))

	// Rank 0 solves; everyone receives the flips. The broadcast payload
	// is modeled from the gathered record counts, identical on all
	// ranks, so the collective cost is symmetric.
	var out refine.FreeSetResult
	if c.Rank() == 0 {
		out = refine.SolveFreeSet(g, append(allFree, allRing...), sideW, totalW, tol, passes)
		c.Charge(float64(out.Free) * 20)
	}
	got := c.Bcast(0, out, freeSetOutcomeBytes+len(allFree)+len(allRing))
	out = got.(refine.FreeSetResult)
	for _, id := range out.Flips {
		if li, ok := d.LocalSlot(id); ok {
			side[li] = 1 - side[li]
		}
	}
	return out
}

// refineFullCut applies cfg.FullCutRounds rounds of full-cut boundary
// FM after strip refinement. ghostSide is this rank's replica of its
// ghosts' sides under the winning candidate (strip flips already
// applied); it is updated alongside res.Side as flips arrive, because
// the next round's boundary extraction reads both. With ec nil (legacy
// kernel), the driver resolves its own edge topology cache — the
// resulting records, charges, and collectives are identical either
// way, preserving the batching bit-identity contract.
func refineFullCut(c *mpi.Comm, g *graph.Graph, d *embed.Distributed, cfg ParallelConfig, ec *edgeCache, ghostSide []int8, totalW int64, res *ParallelResult) {
	c.SetPhase("refine-full")
	if ec == nil {
		ec = buildEdgeCache(g, d)
		defer ec.release()
	}
	nOwn, nGhost := ec.nOwn, ec.nGhost
	slotSide := make([]int8, nOwn+nGhost)
	for i, s := range res.Side {
		slotSide[i] = int8(s)
	}
	copy(slotSide[nOwn:], ghostSide)
	freeMask := make([]bool, nOwn)
	for round := 0; round < cfg.FullCutRounds; round++ {
		// Local boundary extraction over the full resolved adjacency.
		// The cut-edge view (cutA/cutB) only stores nb > id arcs, so the
		// larger-id endpoint of a cut edge would miss its boundary
		// status there; the full slot array sees both directions.
		for i := 0; i < nOwn; i++ {
			freeMask[i] = false
			si := slotSide[i]
			for a := ec.start[i]; a < ec.start[i+1]; a++ {
				if s := ec.slot[a]; s >= 0 && slotSide[s] != si {
					freeMask[i] = true
					break
				}
			}
		}
		c.Charge(float64(nOwn)) // the boundary scan
		out := RefineFreeSet(c, g, d, freeMask, res.Side, res.SideW, totalW, cfg.BalanceTol, cfg.FMPasses)
		if out.Free == 0 {
			break
		}
		for _, id := range out.Flips {
			if li, ok := d.LocalSlot(id); ok {
				slotSide[li] = int8(res.Side[li]) // RefineFreeSet already flipped res.Side
			} else if gi, ok := d.GhostSlot(id); ok {
				ghostSide[gi] = 1 - ghostSide[gi]
				slotSide[nOwn+int(gi)] = ghostSide[gi]
			}
		}
		res.Cut -= out.Gain
		res.SideW = out.SideW
		res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])
		res.Boundary = out.Free
		if out.Gain <= 0 {
			break
		}
	}
}
