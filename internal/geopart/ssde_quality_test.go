package geopart

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
)

// TestSSDEPartitionQuality: SSDE coordinates must support a decent
// geometric cut (within a small factor of natural coordinates).
func TestSSDEPartitionQuality(t *testing.T) {
	g := gen.DelaunayRandom(4000, 6)
	ssde := embed.SSDELayout(g.G, embed.SSDEOptions{Seed: 3})
	_, sSSDE, errS := Partition(g.G, ssde, G7NL())
	_, sNat, errN := Partition(g.G, g.Coords, G7NL())
	if errS != nil || errN != nil {
		t.Fatal(errS, errN)
	}
	if sSSDE.Cut > 4*sNat.Cut {
		t.Fatalf("SSDE cut %d vs natural %d", sSSDE.Cut, sNat.Cut)
	}
}
