package geopart

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// rcbModelVersion selects ParallelRCB's cost model. Version 1 is the
// historical model — one coordinate scan plus one short reduction,
// which under-charges real RCB so badly that Figure 4's crossover
// never appears. Version 2 (the default) is Zoltan-faithful: per
// recursion level a median bisection search (iterated local scans,
// each closed by a short reduction over the shrinking process group)
// plus per-vertex coordinate migration. Partition results are
// bit-identical across versions; only modeled clocks differ.
var rcbModelVersion atomic.Int32

func init() { rcbModelVersion.Store(2) }

// SetRCBModel selects the RCB cost-model version (1 or 2) and returns
// the previous setting. Test hook and CLI escape hatch; bench cache
// keys fingerprint the current version.
func SetRCBModel(v int) int {
	if v != 1 && v != 2 {
		panic(fmt.Sprintf("geopart: unknown RCB cost-model version %d", v))
	}
	prev := rcbModelVersion.Load()
	rcbModelVersion.Store(int32(v))
	return int(prev)
}

// RCBModel reports the active RCB cost-model version.
func RCBModel() int { return int(rcbModelVersion.Load()) }

// RCBBisect computes a recursive-coordinate-bisection style single cut:
// the median plane orthogonal to the wider coordinate extent, exactly
// as Zoltan's RCB produces a two-way split. Ties are broken by vertex
// id so integer grids bisect exactly.
func RCBBisect(g *graph.Graph, coords []geometry.Vec2) ([]int32, Stats) {
	n := g.NumVertices()
	part := make([]int32, n)
	if n <= 1 {
		return part, Stats{Tries: 1}
	}
	r := geometry.BoundingRect(coords)
	vals := make([]float64, n)
	if r.Width() >= r.Height() {
		for i, p := range coords {
			vals[i] = p.X
		}
	} else {
		for i, p := range coords {
			vals[i] = p.Y
		}
	}
	bisectByValues(vals, part)
	return part, Stats{
		Cut:       graph.CutSize(g, part),
		Imbalance: graph.Imbalance(g, part, 2),
		Tries:     1,
		BestKind:  "rcb",
	}
}

// RCB recursively bisects g into parts pieces (parts must be a power of
// two) by coordinate medians, alternating with the wider extent at each
// level. It returns the part assignment, or an error for an invalid
// part count or a coordinate array that does not match the graph.
func RCB(g *graph.Graph, coords []geometry.Vec2, parts int) ([]int32, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("geopart: RCB part count %d must be a power of two", parts)
	}
	n := g.NumVertices()
	if len(coords) != n {
		return nil, fmt.Errorf("geopart: RCB got %d coordinates for %d vertices", len(coords), n)
	}
	part := make([]int32, n)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	rcbSplit(coords, idx, part, 0, parts)
	return part, nil
}

// rcbSplit assigns part ids [base, base+parts) to the vertices idx.
func rcbSplit(coords []geometry.Vec2, idx []int32, part []int32, base int32, parts int) {
	if parts == 1 || len(idx) <= 1 {
		for _, v := range idx {
			part[v] = base
		}
		return
	}
	pts := make([]geometry.Vec2, len(idx))
	for i, v := range idx {
		pts[i] = coords[v]
	}
	r := geometry.BoundingRect(pts)
	vals := make([]float64, len(idx))
	if r.Width() >= r.Height() {
		for i, p := range pts {
			vals[i] = p.X
		}
	} else {
		for i, p := range pts {
			vals[i] = p.Y
		}
	}
	sides := make([]int32, len(idx))
	bisectByValues(vals, sides)
	var lo, hi []int32
	for i, v := range idx {
		if sides[i] == 0 {
			lo = append(lo, v)
		} else {
			hi = append(hi, v)
		}
	}
	rcbSplit(coords, lo, part, base, parts/2)
	rcbSplit(coords, hi, part, base+int32(parts/2), parts/2)
}
