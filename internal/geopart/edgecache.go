package geopart

import (
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/graph"
)

// Candidate-batched kernel support: the per-level edge topology cache,
// packed side bitsets, and the pooled scratch block the fused
// projection kernel writes into. The batched kernel is semantically
// invisible — cuts, sides, strip sizes, and virtual clocks are
// bit-identical to the legacy per-candidate kernel — and SetBatching
// exists so the determinism tests can prove it, mirroring
// mpi.SetPooling.

// batchingOn gates the batched kernels globally; disabled, the
// partitioners run the original per-candidate scan (map lookups and
// binary searches per edge endpoint, per candidate).
var batchingOn atomic.Bool

func init() { batchingOn.Store(true) }

// SetBatching enables or disables the batched candidate kernels and
// returns the previous setting. Test hook: batching must never change
// results, and the determinism tests prove it by flipping this switch.
func SetBatching(on bool) bool {
	prev := batchingOn.Load()
	batchingOn.Store(on)
	return prev
}

// Batching reports whether the batched candidate kernels are enabled.
// Cache keys that fingerprint process-global knobs read it.
func Batching() bool { return batchingOn.Load() }

// edgeCache is the per-partition edge topology cache: one pass over
// d.OwnedIDs resolves every CSR edge endpoint of an owned vertex to a
// dense slot id, so the per-candidate cut loop and the strip extraction
// become pure array indexing with no map lookup or binary search.
//
// Slot encoding: owned vertices occupy [0, nOwn) (their local index),
// ghosts occupy [nOwn, nOwn+nGhost) (nOwn + ghost slot), and -1 marks
// an endpoint that is neither owned nor ghost here (possible only for
// views that do not carry the full ghost ring).
type edgeCache struct {
	nOwn, nGhost int

	// Full resolved adjacency, aligned with CSR edge order: the
	// neighbours of owned vertex i are slot[start[i]:start[i+1]].
	start []int32
	slot  []int32

	// Cut-kernel view: the edges the cut loop counts (neighbour id
	// greater than the owned id, endpoint resolvable), as flat arrays.
	// cutA is the owned endpoint's slot, cutB the neighbour's, cutW the
	// arc weight.
	cutA []int32
	cutB []int32
	cutW []int64
}

var edgeCachePool sync.Pool

// buildEdgeCache resolves the owned adjacency of d against g. The cache
// is drawn from a pool; callers release() it when the partition call is
// done.
func buildEdgeCache(g *graph.Graph, d *embed.Distributed) *edgeCache {
	ec, _ := edgeCachePool.Get().(*edgeCache)
	if ec == nil {
		ec = &edgeCache{}
	}
	nOwn, nGhost := len(d.OwnedIDs), len(d.GhostIDs)
	ec.nOwn, ec.nGhost = nOwn, nGhost
	ec.start = append(ec.start[:0], 0)
	ec.slot = ec.slot[:0]
	ec.cutA = ec.cutA[:0]
	ec.cutB = ec.cutB[:0]
	ec.cutW = ec.cutW[:0]
	cur := graph.GetCursor(g)
	defer cur.Release()
	for i, id := range d.OwnedIDs {
		nbrs, wgts := cur.Arcs(id)
		for e, nb := range nbrs {
			s := int32(-1)
			if li, ok := d.LocalSlot(nb); ok {
				s = li
			} else if gi, ok := d.GhostSlot(nb); ok {
				s = int32(nOwn) + gi
			}
			ec.slot = append(ec.slot, s)
			if nb > id && s >= 0 {
				ec.cutA = append(ec.cutA, int32(i))
				ec.cutB = append(ec.cutB, s)
				ec.cutW = append(ec.cutW, int64(wgts[e]))
			}
		}
		ec.start = append(ec.start, int32(len(ec.slot)))
	}
	return ec
}

// release returns the cache to the pool. The caller must not use it
// afterwards.
func (ec *edgeCache) release() {
	if ec != nil {
		edgeCachePool.Put(ec)
	}
}

// countCut runs the branchless cut kernel for one candidate: bits is
// the packed side vector over [0, nOwn+nGhost) slots (bit s = side of
// slot s), and the return value is the summed weight of cut edges.
func (ec *edgeCache) countCut(bits []uint64) int64 {
	var cut int64
	cutA, cutB, cutW := ec.cutA, ec.cutB, ec.cutW
	for e := range cutA {
		a := bits[cutA[e]>>6] >> (uint(cutA[e]) & 63)
		b := bits[cutB[e]>>6] >> (uint(cutB[e]) & 63)
		// XOR of the two side bits, widened to an all-ones/all-zeros
		// mask: adds cutW[e] exactly when the endpoints disagree,
		// without a branch in the inner loop.
		cut += cutW[e] & -int64((a^b)&1)
	}
	return cut
}

// kernelScratch bundles the pooled buffers of one batched
// ParallelPartition call: the ncand×nOwn column-major projection block
// (vertex-major, so one vertex's candidate values are contiguous), the
// ncand packed side bitsets over owned+ghost slots, and the per-ghost
// dot row.
type kernelScratch struct {
	block    []float64 // block[v*ncand+k]: candidate k's value at owned vertex v
	bits     []uint64  // bits[k*words+w]: packed sides of candidate k
	ghostRow []float64 // one vertex's candidate values during the ghost pass
}

var kernelScratchPool sync.Pool

// getKernelScratch returns pooled buffers sized for ncand candidates,
// nOwn owned and nGhost ghost vertices. bits comes back zeroed; block
// and ghostRow are fully overwritten by the kernel.
func getKernelScratch(ncand, nOwn, nGhost int) (*kernelScratch, int) {
	sc, _ := kernelScratchPool.Get().(*kernelScratch)
	if sc == nil {
		sc = &kernelScratch{}
	}
	words := (nOwn + nGhost + 63) / 64
	sc.block = grow(sc.block, ncand*nOwn)
	sc.bits = grow(sc.bits, ncand*words)
	for i := range sc.bits {
		sc.bits[i] = 0
	}
	sc.ghostRow = grow(sc.ghostRow, ncand)
	return sc, words
}

func (sc *kernelScratch) release() {
	if sc != nil {
		kernelScratchPool.Put(sc)
	}
}

// grow returns s resized to length n, reusing capacity when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
