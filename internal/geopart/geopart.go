// Package geopart implements the geometric mesh partitioner of
// Gilbert, Miller and Teng as used by the paper: points are lifted to
// the unit sphere by stereographic projection, an approximate
// centerpoint is computed from a sample by iterated Radon points, the
// sphere is conformally mapped so the centerpoint sits at the origin,
// and random great circles through the origin become candidate
// separators; optional coordinate line separators complete the
// candidate set. The best cut wins.
//
// Three configurations mirror the paper's notation: G30 (22 great
// circles over 2 centerpoints, 7 line separators, plus the coordinate
// axes' best), G7 (5 circles, 1 centerpoint, 2 lines), and G7-NL (G7
// without line separators — the variant ScalaPart parallelises).
//
// The package also provides recursive coordinate bisection (RCB) in the
// style of Zoltan, and the parallel formulation SP-PG7-NL that operates
// on a distributed embedding (see parallel.go).
package geopart

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Config selects the candidate mix of the geometric partitioner.
type Config struct {
	GreatCircles int     // total random great circles, split over centerpoints
	Centerpoints int     // independent centerpoint computations
	LineSeps     int     // random line separators in the plane (0 = "NL")
	SampleSize   int     // centerpoint sample size, default 800
	BalanceTol   float64 // accepted imbalance, default 0.05
	Seed         int64
}

// G30 is the paper's strong sequential configuration.
func G30() Config {
	return Config{GreatCircles: 23, Centerpoints: 2, LineSeps: 7, Seed: 30}
}

// G7 is the paper's cheap sequential configuration.
func G7() Config {
	return Config{GreatCircles: 5, Centerpoints: 1, LineSeps: 2, Seed: 7}
}

// G7NL is G7 without line separators; ScalaPart parallelises this
// variant (line separators need an eigenvector solve the paper avoids).
func G7NL() Config {
	return Config{GreatCircles: 7, Centerpoints: 1, LineSeps: 0, Seed: 7}
}

func (c Config) withDefaults() Config {
	if c.SampleSize == 0 {
		c.SampleSize = 800
	}
	if c.BalanceTol == 0 {
		c.BalanceTol = 0.05
	}
	if c.Centerpoints == 0 {
		c.Centerpoints = 1
	}
	return c
}

// Stats reports the outcome of a geometric partition.
type Stats struct {
	Cut       int64
	Imbalance float64
	Tries     int
	BestKind  string // "circle" or "line"
}

// normalize centers coords on their centroid and scales so the median
// radius is 1, the standard preconditioning before the stereographic
// lift. It returns the transformed copy.
func normalize(coords []geometry.Vec2) []geometry.Vec2 {
	c := geometry.Centroid2(coords)
	rs := make([]float64, len(coords))
	for i, p := range coords {
		rs[i] = p.Sub(c).Norm()
	}
	med := stats.Quantile(rs, 0.5)
	if med < 1e-12 {
		med = 1
	}
	out := make([]geometry.Vec2, len(coords))
	inv := 1 / med
	for i, p := range coords {
		out[i] = p.Sub(c).Scale(inv)
	}
	return out
}

// Partition bisects g using the geometric mesh partitioning scheme on
// the given vertex coordinates. It returns the part assignment (0/1)
// and statistics of the best separator found, or an error when the
// coordinate array does not match the graph.
func Partition(g *graph.Graph, coords []geometry.Vec2, cfg Config) ([]int32, Stats, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if len(coords) != n {
		return nil, Stats{}, fmt.Errorf("geopart: Partition got %d coordinates for %d vertices", len(coords), n)
	}
	if n == 1 {
		return []int32{0}, Stats{}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	norm := normalize(coords)
	lifted := make([]geometry.Vec3, n)
	for i, p := range norm {
		lifted[i] = geometry.StereoUp(p)
	}
	// Sample for centerpoints.
	sampleIdx := sampleIndices(n, cfg.SampleSize, rng)

	bestCut := int64(math.MaxInt64)
	var bestPart []int32
	var best Stats
	tries := 0
	vals := make([]float64, n)
	part := make([]int32, n)

	evaluate := func(kind string) {
		tries++
		bisectByValues(vals, part)
		cut := graph.CutSize(g, part)
		imb := graph.Imbalance(g, part, 2)
		if imb <= cfg.BalanceTol && cut < bestCut {
			bestCut = cut
			bestPart = append(bestPart[:0:0], part...)
			best = Stats{Cut: cut, Imbalance: imb, BestKind: kind}
		}
	}

	perCP := cfg.GreatCircles / cfg.Centerpoints
	extra := cfg.GreatCircles % cfg.Centerpoints
	sample3 := make([]geometry.Vec3, len(sampleIdx))
	mapped := make([]geometry.Vec3, n)
	for cp := 0; cp < cfg.Centerpoints; cp++ {
		for i, idx := range sampleIdx {
			sample3[i] = lifted[idx]
		}
		center := geometry.Centerpoint(sample3, rng)
		circles := perCP
		if cp < extra {
			circles++
		}
		if circles == 0 {
			// A centerpoint with no great circles contributes nothing;
			// the Radon iteration above keeps the RNG stream (and thus
			// every candidate) unchanged, but the O(n) conformal map
			// would be pure waste.
			continue
		}
		mob := geometry.NewMoebius(center)
		for i, q := range lifted {
			mapped[i] = mob.Apply(q)
		}
		for t := 0; t < circles; t++ {
			u := geometry.RandomUnitVec3(rng)
			for i, q := range mapped {
				vals[i] = q.Dot(u)
			}
			evaluate("circle")
		}
	}
	for t := 0; t < cfg.LineSeps; t++ {
		u := geometry.RandomUnitVec2(rng)
		for i, p := range norm {
			vals[i] = p.Dot(u)
		}
		evaluate("line")
	}
	if bestPart == nil {
		// Nothing within tolerance (degenerate input); fall back to an
		// id split.
		bestPart = make([]int32, n)
		for v := n / 2; v < n; v++ {
			bestPart[v] = 1
		}
		best = Stats{Cut: graph.CutSize(g, bestPart), Imbalance: graph.Imbalance(g, bestPart, 2)}
	}
	best.Tries = tries
	return bestPart, best, nil
}

// bisectByValues assigns the floor(n/2) vertices with the smallest
// (value, id) pairs to side 0 and the rest to side 1, writing into
// part. Lexicographic tie-breaking keeps symmetric coordinate sets
// (e.g. integer grids) exactly bisectable. Returns the threshold value.
func bisectByValues(vals []float64, part []int32) float64 {
	n := len(vals)
	k := n / 2
	threshold := stats.QuickSelect(vals, k)
	// First pass: strictly below / above.
	below := 0
	for _, v := range vals {
		if v < threshold {
			below++
		}
	}
	tiesToSide0 := k - below
	for i, v := range vals {
		switch {
		case v < threshold:
			part[i] = 0
		case v > threshold:
			part[i] = 1
		default:
			if tiesToSide0 > 0 {
				part[i] = 0
				tiesToSide0--
			} else {
				part[i] = 1
			}
		}
	}
	return threshold
}

// sampleIndices draws k distinct indices (or all of them when n <= k).
func sampleIndices(n, k int, rng *rand.Rand) []int32 {
	if n <= k {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	perm := rng.Perm(n)[:k]
	out := make([]int32, k)
	for i, v := range perm {
		out[i] = int32(v)
	}
	return out
}
