package geopart

import (
	"math"
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// TestPartitionGridQuality: on a grid with natural coordinates, the
// geometric partitioner must find a near-straight cut: a 40x40 grid's
// optimal bisection cuts 40 edges; accept up to 2.5x.
func TestPartitionGridQuality(t *testing.T) {
	g := gen.Grid2D(40, 40)
	for _, cfg := range []Config{G30(), G7(), G7NL()} {
		part, st, err := Partition(g.G, g.Coords, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.CutSize(g.G, part); got != st.Cut {
			t.Fatalf("reported %d actual %d", st.Cut, got)
		}
		if st.Cut > 100 {
			t.Fatalf("cut %d too large for a 40x40 grid", st.Cut)
		}
		if imb := graph.Imbalance(g.G, part, 2); imb > 0.051 {
			t.Fatalf("imbalance %v", imb)
		}
	}
}

// TestG30NoWorseThanG7 on a few meshes (more tries can only help since
// the best candidate is kept).
func TestG30NotWorseOnAverage(t *testing.T) {
	var g30Sum, g7Sum int64
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.DelaunayRandom(3000, seed)
		_, s30, err30 := Partition(g.G, g.Coords, G30())
		_, s7, err7 := Partition(g.G, g.Coords, G7NL())
		if err30 != nil || err7 != nil {
			t.Fatal(err30, err7)
		}
		g30Sum += s30.Cut
		g7Sum += s7.Cut
	}
	if g30Sum > g7Sum*11/10 {
		t.Fatalf("G30 total %d much worse than G7-NL %d", g30Sum, g7Sum)
	}
}

func TestRCBBisectExactOnGrid(t *testing.T) {
	g := gen.Grid2D(16, 32) // wider than tall: cut along x median
	part, st := RCBBisect(g.G, g.Coords)
	if st.Cut != 16 {
		t.Fatalf("cut = %d, want 16", st.Cut)
	}
	if imb := graph.Imbalance(g.G, part, 2); imb != 0 {
		t.Fatalf("imbalance %v", imb)
	}
}

func TestRCBKWay(t *testing.T) {
	g := gen.Grid2D(16, 16)
	part, err := RCB(g.G, g.Coords, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.PartWeights(g.G, part, 4)
	for i, wi := range w {
		if wi != 64 {
			t.Fatalf("part %d weight %d, want 64", i, wi)
		}
	}
}

func TestBisectByValuesTies(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 1, 1}
	part := make([]int32, 6)
	bisectByValues(vals, part)
	n0 := 0
	for _, p := range part {
		if p == 0 {
			n0++
		}
	}
	if n0 != 3 {
		t.Fatalf("tie split %d/3", n0)
	}
}

// TestParallelMatchesSequentialIntent: ParallelPartition without
// refinement should produce a cut in the same ballpark as the
// sequential G7NL on the same coordinates (not identical: sampled
// medians and sampled centerpoints differ).
func TestParallelCloseToSequential(t *testing.T) {
	g := gen.DelaunayRandom(6000, 2)
	_, seq, err := Partition(g.G, g.Coords, G7NL())
	if err != nil {
		t.Fatal(err)
	}
	views := embed.SplitCoords(g.G, g.Coords, 4)
	cfg := ParallelConfig{Config: G7NL()}
	var cut int64
	mpi.Run(4, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], cfg)
		if c.Rank() == 0 {
			cut = res.Cut
		}
	})
	hi := seq.Cut * 2
	if cut > hi || cut <= 0 {
		t.Fatalf("parallel cut %d vs sequential %d", cut, seq.Cut)
	}
}

// TestParallelRefinementNeverHurts: with refinement the cut must be <=
// the raw geometric cut.
func TestParallelRefinementNeverHurts(t *testing.T) {
	g := gen.DelaunayRandom(6000, 8)
	views := embed.SplitCoords(g.G, g.Coords, 8)
	var withR, withoutR, before int64
	mpi.Run(8, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], DefaultParallelConfig())
		if c.Rank() == 0 {
			withR, before = res.Cut, res.CutBefore
		}
	})
	views2 := embed.SplitCoords(g.G, g.Coords, 8)
	mpi.Run(8, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views2[c.Rank()], ParallelConfig{Config: G7NL()})
		if c.Rank() == 0 {
			withoutR = res.Cut
		}
	})
	if withR > before {
		t.Fatalf("refined cut %d worse than raw %d", withR, before)
	}
	if before != withoutR {
		t.Fatalf("raw cuts differ with/without refinement: %d vs %d", before, withoutR)
	}
	if withR > withoutR {
		t.Fatalf("refinement hurt: %d vs %d", withR, withoutR)
	}
}

// TestParallelPartitionSidesConsistent: assembled sides must reproduce
// the reported cut and weights.
func TestParallelPartitionSidesConsistent(t *testing.T) {
	g := gen.Grid2D(50, 50)
	p := 8
	views := embed.SplitCoords(g.G, g.Coords, p)
	part := make([]int32, g.G.NumVertices())
	var cut int64
	var sw [2]int64
	mpi.Run(p, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelPartition(c, g.G, views[c.Rank()], DefaultParallelConfig())
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut = res.Cut
			sw = res.SideW
		}
	})
	if got := graph.CutSize(g.G, part); got != cut {
		t.Fatalf("assembled cut %d vs reported %d", got, cut)
	}
	w := graph.PartWeights(g.G, part, 2)
	if w[0] != sw[0] || w[1] != sw[1] {
		t.Fatalf("weights %v vs reported %v", w, sw)
	}
}

func TestParallelRCBMatchesSequentialOnGrid(t *testing.T) {
	g := gen.Grid2D(24, 48)
	_, seq := RCBBisect(g.G, g.Coords)
	views := embed.SplitCoords(g.G, g.Coords, 4)
	var cut int64
	mpi.Run(4, mpi.DefaultModel(), func(c *mpi.Comm) {
		res := ParallelRCB(c, g.G, views[c.Rank()])
		if c.Rank() == 0 {
			cut = res.Cut
		}
	})
	// Sampled median vs exact median: allow slack but the cut must be
	// a vertical-ish line (~24 edges), not a diagonal mess.
	if float64(cut) > float64(seq.Cut)*1.8 {
		t.Fatalf("parallel RCB cut %d vs sequential %d", cut, seq.Cut)
	}
}

func TestNormalizeCentersAndScales(t *testing.T) {
	coords := gen.Grid2D(21, 21).Coords
	norm := normalize(coords)
	var c float64
	for _, p := range norm {
		c += p.Norm()
	}
	// Median radius should be ~1 after normalisation.
	count := 0
	for _, p := range norm {
		if p.Norm() <= 1+1e-9 {
			count++
		}
	}
	frac := float64(count) / float64(len(norm))
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("fraction inside unit circle %v, want ~0.5", frac)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SampleSize != 800 || c.BalanceTol != 0.05 || c.Centerpoints != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	pc := ParallelConfig{}.withDefaults()
	if pc.StripFactor != 8 || pc.FMPasses != 4 {
		t.Fatalf("parallel defaults = %+v", pc)
	}
	if g := G30(); g.GreatCircles+g.LineSeps != 30 {
		t.Fatalf("G30 has %d tries", g.GreatCircles+g.LineSeps)
	}
	if g := G7(); g.GreatCircles+g.LineSeps != 7 {
		t.Fatalf("G7 has %d tries", g.GreatCircles+g.LineSeps)
	}
	if g := G7NL(); g.LineSeps != 0 {
		t.Fatal("G7NL has line separators")
	}
}

func TestPartitionSingleVertexAndTiny(t *testing.T) {
	b := graph.NewBuilder(1)
	g := b.Build()
	part, st, err := Partition(g, []geometry.Vec2{{X: 0, Y: 0}}, G7NL())
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 1 || st.Cut != 0 {
		t.Fatalf("single vertex: %v %+v", part, st)
	}
	g2 := gen.Grid2D(2, 2)
	part2, st2, err := Partition(g2.G, g2.Coords, G7NL())
	if err != nil {
		t.Fatal(err)
	}
	if graph.CutSize(g2.G, part2) != st2.Cut {
		t.Fatal("tiny grid cut mismatch")
	}
}

func TestImbalance2(t *testing.T) {
	if imbalance2(50, 50) != 0 {
		t.Fatal("balanced not 0")
	}
	if v := imbalance2(60, 40); v < 0.19 || v > 0.21 {
		t.Fatalf("60/40 = %v", v)
	}
	if imbalance2(0, 0) != 0 {
		t.Fatal("empty not 0")
	}
}

func TestValueAbove(t *testing.T) {
	if !valueAbove(2, 0, 1, 99) || valueAbove(0, 0, 1, 99) {
		t.Fatal("value comparison wrong")
	}
	if !valueAbove(1, 100, 1, 99) || valueAbove(1, 98, 1, 99) {
		t.Fatal("id tie-break wrong")
	}
}
