package geopart

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestPartition3DGrid: a 16x16x16 grid's optimal bisection cuts 256
// edges; the geometric partitioner should land within ~2.5x.
func TestPartition3DGrid(t *testing.T) {
	g := gen.Grid3D(16, 16, 16)
	part, st, err := Partition3D(g.G, g.Coords, G30())
	if err != nil {
		t.Fatal(err)
	}
	if got := graph.CutSize(g.G, part); got != st.Cut {
		t.Fatalf("reported %d actual %d", st.Cut, got)
	}
	if st.Cut > 650 {
		t.Fatalf("cut %d too large for a 16^3 grid (optimal 256)", st.Cut)
	}
	if imb := graph.Imbalance(g.G, part, 2); imb > 0.051 {
		t.Fatalf("imbalance %v", imb)
	}
}

func TestPartition3DBeatsRandomOnRGG(t *testing.T) {
	g := gen.RandomGeometric3D(6000, 0.08, 3)
	_, st, err := Partition3D(g.G, g.Coords, G7())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cut <= 0 || int64(st.Cut) > int64(g.G.NumEdges())/4 {
		t.Fatalf("cut %d of %d edges: geometric structure not exploited", st.Cut, g.G.NumEdges())
	}
}

func TestRCBBisect3DExactOnGrid(t *testing.T) {
	g := gen.Grid3D(8, 8, 16) // z is widest: cut a z-plane, 64 edges
	part, st := RCBBisect3D(g.G, g.Coords)
	if st.Cut != 64 {
		t.Fatalf("cut = %d, want 64", st.Cut)
	}
	if imb := graph.Imbalance(g.G, part, 2); imb != 0 {
		t.Fatalf("imbalance %v", imb)
	}
}

// TestPartition3DSphereBeatsRCBOnLShape: on an L-shaped (non-convex)
// domain the sphere separator family is at least competitive with a
// straight axis cut.
func TestPartition3DOnElongated(t *testing.T) {
	g := gen.Grid3D(6, 6, 60)
	_, sph, err := Partition3D(g.G, g.Coords, G30())
	if err != nil {
		t.Fatal(err)
	}
	_, rcb := RCBBisect3D(g.G, g.Coords)
	// Optimal is a 6x6=36-edge z-plane; both should find ~that.
	if sph.Cut > 3*rcb.Cut {
		t.Fatalf("sphere separator %d vs RCB %d", sph.Cut, rcb.Cut)
	}
}

func TestRCB3DKWayBalanced(t *testing.T) {
	g := gen.Grid3D(8, 8, 8)
	part, err := RCB3D(g.G, g.Coords, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.PartWeights(g.G, part, 8)
	for i, wi := range w {
		if wi != 64 {
			t.Fatalf("part %d weight %d, want 64", i, wi)
		}
	}
	if cut := graph.CutSize(g.G, part); cut <= 0 || cut > 600 {
		t.Fatalf("implausible 8-way cut %d", cut)
	}
}
