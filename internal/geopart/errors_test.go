package geopart

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/geometry"
)

// TestPartitionCoordMismatchError: a coordinate array that does not
// match the graph must come back as an error, not a panic.
func TestPartitionCoordMismatchError(t *testing.T) {
	g := gen.Grid2D(4, 4)
	_, _, err := Partition(g.G, g.Coords[:5], G7NL())
	if err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("want coordinate mismatch error, got %v", err)
	}
}

func TestPartition3DCoordMismatchError(t *testing.T) {
	g := gen.Grid3D(4, 4, 4)
	_, _, err := Partition3D(g.G, g.Coords[:7], G7NL())
	if err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("want coordinate mismatch error, got %v", err)
	}
}

// TestRCBInvalidPartCount: non-power-of-two (and non-positive) part
// counts are rejected with an error naming the count.
func TestRCBInvalidPartCount(t *testing.T) {
	g := gen.Grid2D(8, 8)
	for _, parts := range []int{0, -2, 3, 6, 12} {
		if _, err := RCB(g.G, g.Coords, parts); err == nil || !strings.Contains(err.Error(), "power of two") {
			t.Fatalf("parts=%d: want power-of-two error, got %v", parts, err)
		}
	}
	if _, err := RCB(g.G, g.Coords[:3], 4); err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("want coordinate mismatch error, got %v", err)
	}
}

func TestRCB3DInvalidPartCount(t *testing.T) {
	g := gen.Grid3D(4, 4, 4)
	for _, parts := range []int{0, 3, 6} {
		if _, err := RCB3D(g.G, g.Coords, parts); err == nil || !strings.Contains(err.Error(), "power of two") {
			t.Fatalf("parts=%d: want power-of-two error, got %v", parts, err)
		}
	}
	if _, err := RCB3D(g.G, []geometry.Vec3{{}}, 4); err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("want coordinate mismatch error, got %v", err)
	}
}
