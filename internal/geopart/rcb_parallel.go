package geopart

import (
	"sort"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// ParallelRCB computes a recursive-coordinate-bisection single cut in
// parallel from a distributed embedding (or distributed natural
// coordinates): the median plane orthogonal to the wider global extent,
// with the median estimated from a gathered sample as Zoltan does. Its
// communication is three short collectives, which is why RCB is the
// scalability yardstick of the paper.
//
// The cut count runs over the edge topology cache (pure array
// indexing) unless SetBatching disabled it; results and clocks are
// bit-identical either way.
func ParallelRCB(c *mpi.Comm, g *graph.Graph, d *embed.Distributed) *ParallelResult {
	sample := gatherSample(c, d, 4096)
	// Global extent (from the sample; the cut only needs the wider
	// axis, not exact bounds).
	var lo, hi [2]float64
	for i, s := range sample {
		x, y := s.P.X, s.P.Y
		if i == 0 {
			lo, hi = [2]float64{x, y}, [2]float64{x, y}
			continue
		}
		if x < lo[0] {
			lo[0] = x
		}
		if x > hi[0] {
			hi[0] = x
		}
		if y < lo[1] {
			lo[1] = y
		}
		if y > hi[1] {
			hi[1] = y
		}
	}
	useX := hi[0]-lo[0] >= hi[1]-lo[1]
	axis := func(i int) float64 {
		if useX {
			return d.OwnedPos[i].X
		}
		return d.OwnedPos[i].Y
	}
	ghostAxis := func(i int32) float64 {
		if useX {
			return d.GhostPos[i].X
		}
		return d.GhostPos[i].Y
	}
	// Sample median with id tie-break.
	type vi struct {
		v  float64
		id int32
	}
	vis := make([]vi, len(sample))
	for i, s := range sample {
		v := s.P.Y
		if useX {
			v = s.P.X
		}
		vis[i] = vi{v, s.ID}
	}
	sort.Slice(vis, func(a, b int) bool {
		if vis[a].v != vis[b].v {
			return vis[a].v < vis[b].v
		}
		return vis[a].id < vis[b].id
	})
	tVal, tID := 0.0, int32(0)
	if len(vis) > 0 {
		m := vis[len(vis)/2]
		tVal, tID = m.v, m.id
	}

	nOwn := len(d.OwnedIDs)
	sides := make([]bool, nOwn)
	var cut, w0, w1 int64
	if batchingOn.Load() {
		// Batched kernel: resolve the topology once, side every owned
		// and ghost slot, and count the cut by array indexing.
		ec := buildEdgeCache(g, d)
		nGhost := len(d.GhostIDs)
		slotSide := make([]bool, nOwn+nGhost)
		for i, id := range d.OwnedIDs {
			s := valueAbove(axis(i), id, tVal, tID)
			sides[i] = s
			slotSide[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		for gi, id := range d.GhostIDs {
			slotSide[nOwn+gi] = valueAbove(ghostAxis(int32(gi)), id, tVal, tID)
		}
		for e := range ec.cutA {
			if slotSide[ec.cutA[e]] != slotSide[ec.cutB[e]] {
				cut += ec.cutW[e]
			}
		}
		ec.release()
	} else {
		ghostSlotOf := make(map[int32]int32, len(d.GhostIDs))
		for i, id := range d.GhostIDs {
			ghostSlotOf[id] = int32(i)
		}
		for i, id := range d.OwnedIDs {
			s := valueAbove(axis(i), id, tVal, tID)
			sides[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		cur := graph.GetCursor(g)
		for i, id := range d.OwnedIDs {
			nbrs, wgts := cur.Arcs(id)
			for e, nb := range nbrs {
				if nb < id {
					continue
				}
				var nbSide bool
				if slot, ok := ghostSlotOf[nb]; ok {
					nbSide = valueAbove(ghostAxis(slot), nb, tVal, tID)
				} else if li, ok2 := ownedIndex(d, nb); ok2 {
					nbSide = sides[li]
				} else {
					continue
				}
				if nbSide != sides[i] {
					cut += int64(wgts[e])
				}
			}
		}
		cur.Release()
	}
	c.Charge(float64(nOwn) * 3)
	global := mpi.AllReduceSlice(c, []int64{cut, w0, w1}, 8, mpi.SumInt64)
	res := &ParallelResult{
		OwnedIDs:  d.OwnedIDs,
		Side:      make([]int32, nOwn),
		Cut:       global[0],
		CutBefore: global[0],
		SideW:     [2]int64{global[1], global[2]},
		Tries:     1,
	}
	for i, s := range sides {
		if s {
			res.Side[i] = 1
		}
	}
	res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])
	return res
}
