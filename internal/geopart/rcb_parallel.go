package geopart

import (
	"sort"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// ParallelRCB computes a recursive-coordinate-bisection single cut in
// parallel from a distributed embedding (or distributed natural
// coordinates): the median plane orthogonal to the wider global extent,
// with the median estimated from a gathered sample as Zoltan does. Its
// communication is three short collectives, which is why RCB is the
// scalability yardstick of the paper.
//
// The cut count runs over the edge topology cache (pure array
// indexing) unless SetBatching disabled it; results and clocks are
// bit-identical either way.
func ParallelRCB(c *mpi.Comm, g *graph.Graph, d *embed.Distributed) *ParallelResult {
	sample := gatherSample(c, d, 4096)
	// Global extent (from the sample; the cut only needs the wider
	// axis, not exact bounds).
	var lo, hi [2]float64
	for i, s := range sample {
		x, y := s.P.X, s.P.Y
		if i == 0 {
			lo, hi = [2]float64{x, y}, [2]float64{x, y}
			continue
		}
		if x < lo[0] {
			lo[0] = x
		}
		if x > hi[0] {
			hi[0] = x
		}
		if y < lo[1] {
			lo[1] = y
		}
		if y > hi[1] {
			hi[1] = y
		}
	}
	useX := hi[0]-lo[0] >= hi[1]-lo[1]
	axis := func(i int) float64 {
		if useX {
			return d.OwnedPos[i].X
		}
		return d.OwnedPos[i].Y
	}
	ghostAxis := func(i int32) float64 {
		if useX {
			return d.GhostPos[i].X
		}
		return d.GhostPos[i].Y
	}
	// Sample median with id tie-break.
	type vi struct {
		v  float64
		id int32
	}
	vis := make([]vi, len(sample))
	for i, s := range sample {
		v := s.P.Y
		if useX {
			v = s.P.X
		}
		vis[i] = vi{v, s.ID}
	}
	sort.Slice(vis, func(a, b int) bool {
		if vis[a].v != vis[b].v {
			return vis[a].v < vis[b].v
		}
		return vis[a].id < vis[b].id
	})
	tVal, tID := 0.0, int32(0)
	if len(vis) > 0 {
		m := vis[len(vis)/2]
		tVal, tID = m.v, m.id
	}

	nOwn := len(d.OwnedIDs)
	sides := make([]bool, nOwn)
	var cut, w0, w1 int64
	if batchingOn.Load() {
		// Batched kernel: resolve the topology once, side every owned
		// and ghost slot, and count the cut by array indexing.
		ec := buildEdgeCache(g, d)
		nGhost := len(d.GhostIDs)
		slotSide := make([]bool, nOwn+nGhost)
		for i, id := range d.OwnedIDs {
			s := valueAbove(axis(i), id, tVal, tID)
			sides[i] = s
			slotSide[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		for gi, id := range d.GhostIDs {
			slotSide[nOwn+gi] = valueAbove(ghostAxis(int32(gi)), id, tVal, tID)
		}
		for e := range ec.cutA {
			if slotSide[ec.cutA[e]] != slotSide[ec.cutB[e]] {
				cut += ec.cutW[e]
			}
		}
		ec.release()
	} else {
		ghostSlotOf := make(map[int32]int32, len(d.GhostIDs))
		for i, id := range d.GhostIDs {
			ghostSlotOf[id] = int32(i)
		}
		for i, id := range d.OwnedIDs {
			s := valueAbove(axis(i), id, tVal, tID)
			sides[i] = s
			if s {
				w1 += int64(g.VertexWeight(id))
			} else {
				w0 += int64(g.VertexWeight(id))
			}
		}
		cur := graph.GetCursor(g)
		for i, id := range d.OwnedIDs {
			nbrs, wgts := cur.Arcs(id)
			for e, nb := range nbrs {
				if nb < id {
					continue
				}
				var nbSide bool
				if slot, ok := ghostSlotOf[nb]; ok {
					nbSide = valueAbove(ghostAxis(slot), nb, tVal, tID)
				} else if li, ok2 := ownedIndex(d, nb); ok2 {
					nbSide = sides[li]
				} else {
					continue
				}
				if nbSide != sides[i] {
					cut += int64(wgts[e])
				}
			}
		}
		cur.Release()
	}
	c.Charge(float64(nOwn) * 3)
	if rcbModelVersion.Load() >= 2 {
		chargeZoltanRCB(c, g.NumVertices(), nOwn)
	}
	global := mpi.AllReduceSlice(c, []int64{cut, w0, w1}, 8, mpi.SumInt64)
	res := &ParallelResult{
		OwnedIDs:  d.OwnedIDs,
		Side:      make([]int32, nOwn),
		Cut:       global[0],
		CutBefore: global[0],
		SideW:     [2]int64{global[1], global[2]},
		Tries:     1,
	}
	for i, s := range sides {
		if s {
			res.Side[i] = 1
		}
	}
	res.Imbalance = imbalance2(res.SideW[0], res.SideW[1])
	return res
}

// chargeZoltanRCB charges the cost a real Zoltan RCB run pays that the
// version-1 model omitted: at every recursion level (log2 P levels for
// a P-way decomposition) the median is located by bisection — each
// iteration rescans the local coordinates and closes with a short
// 3-double reduction over the process group active at that level — and
// once the median is fixed, every local vertex's coordinate record
// migrates to its new owner half. The version-1 model charged one scan
// and one reduction total, which is why modeled RCB undercut SP-PG at
// every P (the vanished Figure 4 crossover); real RCB pays
// O(log P · iters) collective latencies plus O(n/P) migration per
// level, and at high P the latency term dominates exactly as the paper
// observes.
func chargeZoltanRCB(c *mpi.Comm, n, nOwn int) {
	p := c.Size()
	levels := log2ceil(p)
	if levels < 1 {
		levels = 1 // P=1 still pays the sequential median searches
	}
	// Median bisection iterations: Zoltan iterates until the weight
	// tolerance is met, which converges like binary search on the
	// coordinate range — bounded below by a small constant floor.
	iters := 8
	if lg := log2ceil(n + 1); lg > iters {
		iters = lg
	}
	m := c.Model()
	for l := 0; l < levels; l++ {
		// Each bisection iteration rescans the local coordinates
		// (compare + two weight accumulators per vertex).
		c.Charge(float64(iters) * float64(nOwn) * 3)
		if p <= 1 {
			continue
		}
		// Process group active at this level: halves every recursion.
		groupP := p >> l
		if groupP < 2 {
			groupP = 2
		}
		lg := float64(log2ceil(groupP))
		// Per iteration one 3-double (24-byte) reduction over the group.
		median := float64(iters) * (m.Latency + m.PerByte*24) * lg
		// Coordinate migration: pairwise exchange of ~half the local
		// records (id + 2 doubles ≈ 20 bytes each, charged for the full
		// local share as Zoltan packs/unpacks both directions).
		migr := 2*m.Latency + m.PerByte*float64(nOwn)*20 + 2*m.PerPeer
		c.SyncCostParts(median+migr,
			float64(iters)*m.Latency*lg+2*m.Latency,
			float64(iters)*m.PerByte*24*lg+m.PerByte*float64(nOwn)*20,
			2*m.PerPeer)
	}
}

// log2ceil mirrors mpi's tree-depth helper: ceil(log2 x) with
// log2ceil(x<=1) = 0.
func log2ceil(x int) int {
	lg := 0
	for s := 1; s < x; s <<= 1 {
		lg++
	}
	return lg
}
