package hostpar

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunkAssignmentDeterministic pins the static chunk layout: the
// chunk count and every chunk boundary are pure functions of (n, grain,
// worker setting), independent of scheduling — the property every
// bit-identical kernel in coarsen and graph is built on.
func TestChunkAssignmentDeterministic(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, n := range []int{1, 7, 100, 4096, 100003} {
		for _, grain := range []int{1, 64, 4096} {
			want := NumChunks(n, grain)
			for trial := 0; trial < 3; trial++ {
				var mu sync.Mutex
				got := make(map[int][2]int)
				ForChunked(n, grain, func(c, lo, hi int) {
					mu.Lock()
					got[c] = [2]int{lo, hi}
					mu.Unlock()
				})
				if len(got) != want {
					t.Fatalf("n=%d grain=%d: %d chunks ran, NumChunks says %d", n, grain, len(got), want)
				}
				for c, b := range got {
					lo, hi := ChunkBounds(n, want, c)
					if b[0] != lo || b[1] != hi {
						t.Fatalf("n=%d grain=%d chunk %d: ran [%d,%d), ChunkBounds says [%d,%d)", n, grain, c, b[0], b[1], lo, hi)
					}
				}
			}
		}
	}
}

// TestChunkBoundsPartition checks chunks tile [0, n) exactly: adjacent,
// disjoint, complete, and every chunk meets the grain floor that
// NumChunks promised.
func TestChunkBoundsPartition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 63, 64, 65, 1000, 99991} {
		for _, chunks := range []int{1, 2, 3, 7, 8} {
			if chunks > n {
				continue
			}
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := ChunkBounds(n, chunks, c)
				if lo != prev {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, c, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d chunks=%d: chunk %d empty [%d,%d)", n, chunks, c, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: chunks end at %d", n, chunks, prev)
			}
		}
	}
}

// TestForVisitsEachIndexOnce runs For under several worker settings and
// checks every index is visited exactly once.
func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		defer SetWorkers(SetWorkers(w))
		const n = 50000
		visits := make([]int32, n)
		For(n, 1, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

// TestNestedForDoesNotDeadlock exercises the helping wait: outer chunks
// running on pool workers issue inner parallel loops whose chunks queue
// behind them.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	var total atomic.Int64
	For(64, 1, func(i int) {
		For(1000, 1, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 64*1000 {
		t.Fatalf("nested loops ran %d inner iterations, want %d", got, 64*1000)
	}
}

// TestConcurrentCallersShareThePool runs many goroutines each issuing
// parallel loops, mimicking the bench sweep building hierarchies
// concurrently; results must be independent and complete.
func TestConcurrentCallersShareThePool(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	const callers = 16
	var wg sync.WaitGroup
	sums := make([]int64, callers)
	for g := 0; g < callers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s atomic.Int64
			For(10000, 16, func(i int) { s.Add(int64(i)) })
			sums[g] = s.Load()
		}()
	}
	wg.Wait()
	want := int64(10000) * 9999 / 2
	for g, s := range sums {
		if s != want {
			t.Fatalf("caller %d summed %d, want %d", g, s, want)
		}
	}
}

// TestSetWorkersRoundTrip checks the save/restore idiom the tests and
// flag plumbing rely on.
func TestSetWorkersRoundTrip(t *testing.T) {
	orig := SetWorkers(3)
	if got := SetWorkers(orig); got != 3 {
		t.Fatalf("SetWorkers round-trip read %d, want 3", got)
	}
	if SetWorkers(-5) != orig {
		t.Fatalf("negative SetWorkers did not return prior setting")
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after clamping negative setting", Workers())
	}
	SetWorkers(orig)
}

// TestWorkersDefaultsToCores: with no setting, Workers tracks
// GOMAXPROCS.
func TestWorkersDefaultsToCores(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d", Workers())
	}
}
