// Package hostpar is the shared host-side fork-join substrate: a
// reusable worker pool with statically chunked parallel-for loops.
//
// It parallelises the *real* computation a simulation host performs
// (coarsening, CSR assembly, boundary scans) and is therefore required
// to be invisible to the paper's model: every kernel built on it must
// write each output element from exactly one statically determined
// chunk, so results are bit-identical for every worker count. The
// chunk layout is a pure function of (n, chunk count) — never of
// runtime scheduling — which is what the determinism tests pin.
//
// The pool is global and lazily grown; concurrent ForChunked calls
// (e.g. the bench sweep running several hierarchies at once) share it,
// so the process-wide goroutine count stays bounded by the largest
// worker setting rather than multiplying. A caller that finds the
// submission queue full, or that is waiting for its own chunks, helps
// drain the queue instead of parking — nested and concurrent use can
// therefore never deadlock the pool.
package hostpar

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerSetting is the configured worker count; 0 means one worker per
// available core (GOMAXPROCS). Set from the -workers flags.
var workerSetting atomic.Int32

// SetWorkers sets the host worker count and returns the previous
// setting (0 meaning "one per core"). Passing 0 restores the default.
// Mirrors geopart.SetBatching: tests flip it to prove worker count
// never changes results.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerSetting.Swap(int32(n)))
}

// Workers returns the effective worker count: the configured setting,
// or GOMAXPROCS when unset.
func Workers() int {
	if n := int(workerSetting.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// maxPool caps the lazily grown pool; chunks beyond it run via the
// queue-full inline fallback, so the cap bounds goroutines, not
// parallelism correctness.
const maxPool = 256

var (
	poolMu   sync.Mutex
	poolSize int
	taskq    = make(chan task, 512)
)

// job is the shared state of one ForN call: the loop body, the chunk
// layout, and the completion counter. Jobs cycle through a sync.Pool so
// a steady-state caller (e.g. a force loop invoking ForN every
// iteration) allocates nothing per call beyond its own body closure.
type job struct {
	body    func(c, lo, hi int)
	n       int
	chunks  int
	pending atomic.Int32
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// task is one chunk of a job. Tasks travel through the queue by value,
// so submission never allocates.
type task struct {
	j *job
	c int
}

func (t task) run() {
	lo, hi := ChunkBounds(t.j.n, t.j.chunks, t.c)
	t.j.body(t.c, lo, hi)
	// Last touch of t.j: the decrement publishes the body's writes to
	// the ForN caller spinning on pending, which then owns the job.
	t.j.pending.Add(-1)
}

// ensureWorkers grows the shared pool to at least n parked workers.
func ensureWorkers(n int) {
	if n > maxPool {
		n = maxPool
	}
	poolMu.Lock()
	for poolSize < n {
		poolSize++
		go func() {
			for t := range taskq {
				t.run()
			}
		}()
	}
	poolMu.Unlock()
}

// NumChunks returns the chunk count a loop over n items with the given
// minimum grain (iterations per chunk) splits into under the current
// worker setting: min(Workers, n/grain), floored at 1; 0 for n <= 0.
// It is a pure function of (n, grain, worker setting).
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	c := Workers()
	if mx := n / grain; c > mx {
		c = mx
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ChunkBounds returns the half-open range [lo, hi) of chunk c when n
// items are split into the given number of contiguous chunks. Pure
// arithmetic: chunk c covers [c*n/chunks, (c+1)*n/chunks).
func ChunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// ForN runs body(c, lo, hi) for each of exactly `chunks` statically
// assigned contiguous chunks of [0, n), in parallel across the pool.
// Callers that need several passes over the same chunk layout (count,
// convert, fill) compute chunks once with NumChunks and reuse it, so
// all passes agree even if the worker setting changes mid-call.
// body must only write state owned by its chunk; ForN returns after
// every chunk has completed (with the usual happens-before guarantee).
func ForN(n, chunks int, body func(c, lo, hi int)) {
	if n <= 0 || chunks <= 0 {
		return
	}
	if chunks == 1 {
		body(0, 0, n)
		return
	}
	ensureWorkers(chunks - 1)
	j := jobPool.Get().(*job)
	j.body, j.n, j.chunks = body, n, chunks
	j.pending.Store(int32(chunks - 1))
	for c := 1; c < chunks; c++ {
		t := task{j: j, c: c}
		select {
		case taskq <- t:
		default:
			t.run() // queue full: run inline rather than block
		}
	}
	lo, hi := ChunkBounds(n, chunks, 0)
	body(0, lo, hi)
	// Help drain the shared queue while waiting: parking here could
	// strand nested invocations whose chunks sit in the queue behind
	// other waiting callers.
	for j.pending.Load() > 0 {
		select {
		case t := <-taskq:
			t.run()
		default:
			runtime.Gosched()
		}
	}
	j.body = nil // drop the closure reference before pooling
	jobPool.Put(j)
}

// ForChunked runs body(c, lo, hi) over NumChunks(n, grain) static
// contiguous chunks of [0, n).
func ForChunked(n, grain int, body func(c, lo, hi int)) {
	ForN(n, NumChunks(n, grain), body)
}

// For runs body(i) for every i in [0, n), statically chunked with the
// given minimum grain. body must only write state owned by iteration i.
func For(n, grain int, body func(i int)) {
	ForChunked(n, grain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
