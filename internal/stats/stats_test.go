package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean not 0")
	}
}

func TestMeanMedian(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v %v", lo, hi)
	}
	a, b := MinMaxInt64([]int64{5, 2, 9})
	if a != 2 || b != 9 {
		t.Fatalf("minmax64 = %v %v", a, b)
	}
}

// TestQuickSelectMatchesSort: property check against the sorted slice.
func TestQuickSelectMatchesSort(t *testing.T) {
	f := func(xs []float64, kRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		k := int(kRaw) % len(xs)
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		before := append([]float64(nil), xs...)
		got := QuickSelect(xs, k)
		// Input must be untouched.
		for i := range xs {
			if xs[i] != before[i] {
				return false
			}
		}
		return got == want[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 0.999); q != 9 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("q.5 = %v", q)
	}
}
