// Package stats provides the small statistical helpers used by the
// benchmark harness: geometric means, medians, and min/max ranges over
// cut-sizes and timings.
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics if any value is non-positive, since a non-positive
// cut-size or timing indicates a harness bug.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs without modifying it, or 0 for an
// empty slice. For even lengths it returns the mean of the two middle
// elements.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// MinMaxInt64 is MinMax over int64 values (cut-sizes).
func MinMaxInt64(xs []int64) (min, max int64) {
	if len(xs) == 0 {
		panic("stats: MinMaxInt64 of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// QuickSelect returns the k-th smallest element (0-based) of xs,
// without modifying the input. It runs in expected linear time.
func QuickSelect(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		panic("stats: QuickSelect index out of range")
	}
	work := append([]float64(nil), xs...)
	lo, hi := 0, len(work)-1
	for lo < hi {
		// Median-of-three pivot guards the common sorted inputs.
		mid := lo + (hi-lo)/2
		if work[mid] < work[lo] {
			work[mid], work[lo] = work[lo], work[mid]
		}
		if work[hi] < work[lo] {
			work[hi], work[lo] = work[lo], work[hi]
		}
		if work[hi] < work[mid] {
			work[hi], work[mid] = work[mid], work[hi]
		}
		pivot := work[mid]
		i, j := lo, hi
		for i <= j {
			for work[i] < pivot {
				i++
			}
			for work[j] > pivot {
				j--
			}
			if i <= j {
				work[i], work[j] = work[j], work[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return work[k]
		}
	}
	return work[lo]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs via QuickSelect.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	k := int(q * float64(len(xs)))
	if k >= len(xs) {
		k = len(xs) - 1
	}
	if k < 0 {
		k = 0
	}
	return QuickSelect(xs, k)
}
