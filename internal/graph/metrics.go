package graph

import "fmt"

// CutSize returns the total weight of edges whose endpoints lie in
// different parts. part must assign a part id to every vertex.
func CutSize(g *Graph, part []int32) int64 {
	if len(part) != g.NumVertices() {
		panic(fmt.Sprintf("graph: CutSize: len(part)=%d want %d", len(part), g.NumVertices()))
	}
	cur := GetCursor(g)
	defer cur.Release()
	var cut int64
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		nbrs, wgts := cur.Arcs(u)
		for i, v := range nbrs {
			if u < v && part[u] != part[v] {
				cut += int64(wgts[i])
			}
		}
	}
	return cut
}

// PartWeights returns the total vertex weight in each of k parts.
func PartWeights(g *Graph, part []int32, k int) []int64 {
	w := make([]int64, k)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		p := part[v]
		if p < 0 || int(p) >= k {
			panic(fmt.Sprintf("graph: PartWeights: part[%d]=%d out of range", v, p))
		}
		w[p] += int64(g.VertexWeight(v))
	}
	return w
}

// Imbalance returns max_i(k * w_i / W) - 1 for a k-way partition: 0 for
// perfectly balanced, 0.05 for 5% over the ideal part weight. The k=2
// case delegates to Imbalance2, the single definition every bisection
// accept path shares.
func Imbalance(g *Graph, part []int32, k int) float64 {
	w := PartWeights(g, part, k)
	if k == 2 {
		return Imbalance2(w[0], w[1])
	}
	total := int64(0)
	for _, wi := range w {
		total += wi
	}
	if total == 0 {
		return 0
	}
	mx := int64(0)
	for _, wi := range w {
		if wi > mx {
			mx = wi
		}
	}
	return float64(k)*float64(mx)/float64(total) - 1
}

// Imbalance2 is the canonical bisection imbalance from side weights:
// 2·max(w0,w1)/(w0+w1) − 1, and 0 for an empty graph. Both the
// geometric partitioner's accept paths and the metrics layer use
// exactly this definition, so cached and recomputed imbalances compare
// bit-identically.
func Imbalance2(w0, w1 int64) float64 {
	total := w0 + w1
	if total == 0 {
		return 0
	}
	mx := w0
	if w1 > mx {
		mx = w1
	}
	return 2*float64(mx)/float64(total) - 1
}

// SeparatorEdges returns the Adjncy-ordered list of (u,v) pairs with
// u < v crossing the bisection, i.e. the edge separator S of the paper.
func SeparatorEdges(g *Graph, part []int32) [][2]int32 {
	cur := GetCursor(g)
	defer cur.Release()
	var sep [][2]int32
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		nbrs, _ := cur.Arcs(u)
		for _, v := range nbrs {
			if u < v && part[u] != part[v] {
				sep = append(sep, [2]int32{u, v})
			}
		}
	}
	return sep
}

// BoundaryVertices returns the vertices incident to at least one cut
// edge.
func BoundaryVertices(g *Graph, part []int32) []int32 {
	cur := GetCursor(g)
	defer cur.Release()
	var bnd []int32
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		nbrs, _ := cur.Arcs(u)
		for _, v := range nbrs {
			if part[v] != part[u] {
				bnd = append(bnd, u)
				break
			}
		}
	}
	return bnd
}

// Components labels the connected components of g, returning the label
// array and the number of components. Labels are dense in [0, count).
func Components(g *Graph) (label []int32, count int) {
	n := g.NumVertices()
	label = make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	cur := GetCursor(g)
	defer cur.Release()
	var stack []int32
	for s := int32(0); s < int32(n); s++ {
		if label[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		label[s] = id
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbrs, _ := cur.Arcs(u)
			for _, v := range nbrs {
				if label[v] < 0 {
					label[v] = id
					stack = append(stack, v)
				}
			}
		}
	}
	return label, count
}

// InducedSubgraph extracts the subgraph on the given vertices. It
// returns the subgraph (with weights inherited) and the mapping from
// subgraph vertex ids back to ids in g. Edges leaving the vertex set
// are dropped.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32) {
	toLocal := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		toLocal[v] = int32(i)
	}
	cur := GetCursor(g)
	defer cur.Release()
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		if g.VWgt != nil {
			b.SetVertexWeight(int32(i), g.VWgt[v])
		}
		nbrs, wgts := cur.Arcs(v)
		for k, w := range nbrs {
			if lw, ok := toLocal[w]; ok && v < w {
				b.AddWeightedEdge(int32(i), lw, wgts[k])
			}
		}
	}
	back := append([]int32(nil), vertices...)
	return b.Build(), back
}
