package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/hostpar"
)

// The parallel ingest path: ReadMETIS/ReadMatrixMarket slurp the input
// and parse it from a byte slice — newline indexing, line
// classification, and per-line tokenise/parse all chunked over the
// hostpar substrate at line boundaries, with a deterministic merge of
// the per-chunk arc buffers in file order. The per-token fast path
// replaces the Scanner + strings.Fields + strconv.Atoi stack (the old
// 34 MB/s wall); any irregular token falls back to strconv so every
// error string matches the serial readers byte for byte, and the
// assembled entry list is handed to the same Builder the serial path
// uses, so the resulting Graph is bit-identical. SetParallelParse
// restores the legacy streaming readers (kept verbatim in io.go) for
// differential tests.

var parallelParse atomic.Bool

func init() { parallelParse.Store(true) }

// SetParallelParse toggles the byte-slice parallel parsing path of
// ReadMETIS and ReadMatrixMarket, returning the previous setting. The
// serial readers are kept verbatim as the reference the parallel path
// is differentially tested against.
func SetParallelParse(on bool) bool { return parallelParse.Swap(on) }

// ParallelParse reports whether parallel parsing is enabled.
func ParallelParse() bool { return parallelParse.Load() }

const (
	// parseGrainBytes is the minimum bytes per newline-index chunk.
	parseGrainBytes = 1 << 16
	// parseGrainLines is the minimum lines per parse chunk.
	parseGrainLines = 256
)

// hasHighBitAll reports whether data contains any non-ASCII byte, one
// word at a time. A clean verdict (the overwhelmingly common case)
// lets the parsers skip all per-line unicode handling.
func hasHighBitAll(data []byte) bool {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		if binary.LittleEndian.Uint64(data[i:])&0x8080808080808080 != 0 {
			return true
		}
	}
	for ; i < len(data); i++ {
		if data[i] >= 0x80 {
			return true
		}
	}
	return false
}

// dataLineSpans returns the [start,end) spans of the data lines of
// data[from:] — the lines nextDataLine would yield: trimmed form
// non-empty and not starting with '%'. Spans exclude the terminating
// '\n' but keep any '\r' (the tokenisers treat it as a separator).
// Line discovery and classification run fused in one chunked pass;
// each chunk owns the lines that start inside it, so the merge
// preserves file order at any worker count. clean asserts data has no
// non-ASCII bytes, enabling the table-driven classifier.
func dataLineSpans(data []byte, from int, clean bool) [][2]int {
	n := len(data)
	if from >= n {
		return nil
	}
	span := n - from
	nc := hostpar.NumChunks(span, parseGrainBytes)
	perChunk := make([][][2]int, nc)
	hostpar.ForN(span, nc, func(c, clo, chi int) {
		lo, hi := from+clo, from+chi
		s := lo
		if lo > from {
			// Own only lines starting in [lo, hi): the first such line
			// begins right after a newline at index >= lo-1.
			k := bytes.IndexByte(data[lo-1:hi-1], '\n')
			if k < 0 {
				return
			}
			s = lo + k
		}
		var spans [][2]int
		for s < hi {
			e := n
			if k := bytes.IndexByte(data[s:], '\n'); k >= 0 {
				e = s + k
			}
			line := data[s:e]
			ok := false
			if clean {
				for i := 0; i < len(line); i++ {
					if !asciiSpace[line[i]] {
						ok = line[i] != '%'
						break
					}
				}
			} else {
				ok = isDataLine(line)
			}
			if ok {
				spans = append(spans, [2]int{s, e})
			}
			s = e + 1
		}
		perChunk[c] = spans
	})
	out := perChunk[0]
	for _, p := range perChunk[1:] {
		out = append(out, p...)
	}
	return out
}

// asciiSpace marks the ASCII bytes strings.Fields treats as separators.
var asciiSpace = [256]bool{' ': true, '\t': true, '\n': true, '\v': true, '\f': true, '\r': true}

// hasHighBit reports whether line contains a non-ASCII byte, in which
// case tokenisation must defer to the unicode-aware strings.Fields.
func hasHighBit(line []byte) bool {
	for _, c := range line {
		if c >= 0x80 {
			return true
		}
	}
	return false
}

// splitTokens splits a raw line into whitespace-separated tokens,
// reusing dst. ASCII lines use the table-driven fast path; lines with
// non-ASCII bytes defer to strings.Fields so unicode whitespace splits
// exactly as it does in the serial readers.
func splitTokens(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	if hasHighBit(line) {
		for _, f := range strings.Fields(string(line)) {
			dst = append(dst, []byte(f))
		}
		return dst
	}
	for i := 0; i < len(line); {
		for i < len(line) && asciiSpace[line[i]] {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && !asciiSpace[line[j]] {
			j++
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

// isDataLine mirrors nextDataLine's filter: a line whose trimmed form
// is non-empty and does not start with '%'. Equivalent to "has a first
// token whose first byte is not '%'" under either tokeniser.
func isDataLine(line []byte) bool {
	if hasHighBit(line) {
		s := strings.TrimSpace(string(line))
		return s != "" && !strings.HasPrefix(s, "%")
	}
	for i := 0; i < len(line); i++ {
		if !asciiSpace[line[i]] {
			return line[i] != '%'
		}
	}
	return false
}

// parseIntTok parses a base-10 integer with a digits-only fast path.
// Anything irregular — empty, signed, stray bytes, or long enough to
// overflow — falls back to strconv.Atoi so values and error strings
// match the serial readers exactly.
func parseIntTok(tok []byte) (int, error) {
	if len(tok) == 0 || len(tok) > 18 {
		return strconv.Atoi(string(tok))
	}
	v := 0
	for _, c := range tok {
		if c < '0' || c > '9' {
			return strconv.Atoi(string(tok))
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

// trimmedString returns the trimmed line as a string, for %q error
// messages only (never on the hot path).
func trimmedString(line []byte) string { return strings.TrimSpace(string(line)) }

// slurp reads all of r. Seekable inputs (files, bytes.Reader) are read
// with one exact-size allocation instead of io.ReadAll's doubling
// growth.
func slurp(r io.Reader) ([]byte, error) {
	if s, ok := r.(io.Seeker); ok {
		cur, err1 := s.Seek(0, io.SeekCurrent)
		end, err2 := s.Seek(0, io.SeekEnd)
		if err1 == nil && err2 == nil && end >= cur {
			if _, err := s.Seek(cur, io.SeekStart); err == nil {
				buf := make([]byte, end-cur)
				if _, err := io.ReadFull(r, buf); err != nil {
					return nil, err
				}
				return buf, nil
			}
		}
	}
	return io.ReadAll(r)
}

// normalizeLine rewrites a line containing non-ASCII bytes as its
// strings.Fields tokens joined by single spaces, so the fused ASCII
// tokeniser sees exactly the token sequence the serial reader's
// unicode-aware split produced. Only ever called for such lines.
func normalizeLine(line []byte) []byte {
	return []byte(strings.Join(strings.Fields(string(line)), " "))
}

// preallocHint caps an untrusted header-derived element count so a
// bogus header cannot force a gigantic up-front allocation; slices
// still grow to the real size on demand.
func preallocHint(n int) int {
	const max = 1 << 20
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}

// metisEntry is one directed adjacency entry of a METIS file, in file
// order (matches the serial reader's dirEdge).
type metisEntry struct{ from, to, w int32 }

// readMETISBytes is the parallel METIS parser over a complete input.
func readMETISBytes(data []byte) (*Graph, error) {
	clean := !hasHighBitAll(data)
	spans := dataLineSpans(data, 0, clean)
	if len(spans) == 0 {
		return nil, fmt.Errorf("graph: METIS header: %w", io.ErrUnexpectedEOF)
	}
	hsp := spans[0]
	headerRaw := data[hsp[0]:hsp[1]]
	fields := splitTokens(headerRaw, nil)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS header %q: want at least n and m", trimmedString(headerRaw))
	}
	n, err := parseIntTok(fields[0])
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header n: %w", err)
	}
	m, err := parseIntTok(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header m: %w", err)
	}
	hasVW, hasEW := false, false
	if len(fields) >= 3 {
		switch string(fields[2]) {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasVW = true
		case "11", "011":
			hasVW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graph: METIS fmt code %q unsupported", string(fields[2]))
		}
	}
	// Parse the vertex lines that exist; truncation is only reported
	// after they all parse cleanly, because the serial reader hits a
	// vertex line's parse error before it can discover the file ends
	// early.
	avail := len(spans) - 1
	if avail > n {
		avail = n
	}
	perV := 0
	if avail > 0 {
		perV = 2*m/avail + 1
	}
	// Per-vertex tokenise/parse, chunked at line boundaries. Each chunk
	// parses into its own packed arc buffer; vertex weights land
	// directly in disjoint vwgt ranges. Chunks cover ascending vertex
	// ranges, so the first non-nil chunk error is the error the serial
	// file-order scan would have reported.
	var vwgt []int32
	if hasVW && n > 0 {
		// n == 0 stays nil: the serial reader only materialises weights
		// when a vertex line delivers one.
		vwgt = make([]int32, n)
	}
	nc := hostpar.NumChunks(avail, parseGrainLines)
	chunkEnts := make([][]metisEntry, nc)
	chunkErrs := make([]error, nc)
	hostpar.ForN(avail, nc, func(c, lo, hi int) {
		ents := make([]metisEntry, 0, preallocHint(perV*(hi-lo)+4))
		for v := lo; v < hi; v++ {
			sp := spans[v+1]
			line := data[sp[0]:sp[1]]
			if !clean && hasHighBit(line) {
				line = normalizeLine(line)
			}
			// Fused tokenise + parse: one pass over the line, with the
			// serial reader's per-token error precedence (neighbour
			// parse, then edge-weight presence/parse, then range, then
			// self-loop).
			tokIdx := 0
			u := 0
			pend := false // neighbour u parsed, its edge weight expected
			for i := 0; i < len(line); {
				for i < len(line) && asciiSpace[line[i]] {
					i++
				}
				if i >= len(line) {
					break
				}
				// Greedy digit run; anything else makes the token
				// irregular and falls back to strconv for exact values
				// and error strings.
				j := i
				val := 0
				for ; j < len(line); j++ {
					d := line[j] - '0'
					if d > 9 {
						break
					}
					val = val*10 + int(d)
				}
				irregular := j == i || j-i > 18
				if j < len(line) && !asciiSpace[line[j]] {
					irregular = true
					for j < len(line) && !asciiSpace[line[j]] {
						j++
					}
				}
				if irregular {
					var err error
					val, err = strconv.Atoi(string(line[i:j]))
					if err != nil {
						switch {
						case hasVW && tokIdx == 0:
							chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d weight: %w", v+1, err)
						case pend:
							chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d edge weight: %w", v+1, err)
						default:
							chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d neighbour: %w", v+1, err)
						}
						return
					}
				}
				i = j
				switch {
				case hasVW && tokIdx == 0:
					vwgt[v] = int32(val)
				case !pend && hasEW:
					u = val
					pend = true
				default:
					w := 1
					if pend {
						w = val
						pend = false
					} else {
						u = val
					}
					if u < 1 || u > n {
						chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d: neighbour %d out of range [1,%d]", v+1, u, n)
						return
					}
					if u-1 == v {
						chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d: self-loop", v+1)
						return
					}
					ents = append(ents, metisEntry{int32(v), int32(u - 1), int32(w)})
				}
				tokIdx++
			}
			if hasVW && tokIdx == 0 {
				chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d: missing weight", v+1)
				return
			}
			if pend {
				chunkErrs[c] = fmt.Errorf("graph: METIS vertex %d: missing edge weight", v+1)
				return
			}
		}
		chunkEnts[c] = ents
	})
	for _, err := range chunkErrs {
		if err != nil {
			return nil, err
		}
	}
	if avail < n {
		return nil, fmt.Errorf("graph: METIS vertex %d: %w", avail+1, io.ErrUnexpectedEOF)
	}
	var entries []metisEntry
	if nc == 1 {
		entries = chunkEnts[0]
	} else {
		total := 0
		for _, e := range chunkEnts {
			total += len(e)
		}
		entries = make([]metisEntry, 0, total)
		for _, e := range chunkEnts {
			entries = append(entries, e...)
		}
	}
	total := len(entries)
	// Validation exploits that METIS entries arrive grouped by ascending
	// `from`: instead of the serial reader's global permutation sort, a
	// per-row sort of packed (to, position) keys gives duplicate
	// detection (adjacent equal targets), symmetry (binary search in
	// the mirror's row, a handful of probes instead of log M over the
	// whole file), and — once validated — the finished CSR rows
	// themselves. The reported errors are identical to the serial
	// reader's: duplicates by smallest second-occurrence file position,
	// asymmetry by file-order scan.
	xadj := make([]int32, n+1)
	for _, e := range entries {
		xadj[e.from+1]++
	}
	for v := 0; v < n; v++ {
		xadj[v+1] += xadj[v]
	}
	rowKeys := make([]int64, total)
	for i, e := range entries {
		rowKeys[i] = int64(e.to)<<32 | int64(i)
	}
	nvc := hostpar.NumChunks(n, parseGrainLines)
	dupPos := make([]int, nvc)
	anyNot1 := make([]bool, nvc)
	hostpar.ForN(n, nvc, func(c, lo, hi int) {
		dup := -1
		not1 := false
		for v := lo; v < hi; v++ {
			row := rowKeys[xadj[v]:xadj[v+1]]
			if len(row) < 16 {
				// Insertion sort skips the generic-sort call overhead on
				// the short rows that dominate sparse graphs.
				for i := 1; i < len(row); i++ {
					for k := i; k > 0 && row[k] < row[k-1]; k-- {
						row[k], row[k-1] = row[k-1], row[k]
					}
				}
			} else {
				slices.Sort(row)
			}
			for i := 1; i < len(row); i++ {
				if row[i]>>32 == row[i-1]>>32 {
					if p := int(int32(row[i])); dup < 0 || p < dup {
						dup = p
					}
				}
			}
			if hasEW && !not1 {
				for _, k := range row {
					if entries[int32(k)].w != 1 {
						not1 = true
						break
					}
				}
			}
		}
		dupPos[c] = dup
		anyNot1[c] = not1
	})
	dup, weighted := -1, false
	for c := 0; c < nvc; c++ {
		if p := dupPos[c]; p >= 0 && (dup < 0 || p < dup) {
			dup = p
		}
		weighted = weighted || anyNot1[c]
	}
	if dup >= 0 {
		e := entries[dup]
		return nil, fmt.Errorf("graph: METIS vertex %d: duplicate neighbour %d", e.from+1, e.to+1)
	}
	// Symmetry in file order: every entry must find its mirror in the
	// target's (duplicate-free) sorted row, with an equal weight when
	// the file carries them. Chunks cover ascending entry ranges, so
	// the first failing chunk holds the first failing entry.
	mirrorOf := func(e metisEntry) int {
		row := rowKeys[xadj[e.to]:xadj[e.to+1]]
		want := int64(e.from) << 32
		lo, hi := 0, len(row)
		for lo < hi {
			mid := (lo + hi) / 2
			if row[mid] < want {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(row) && row[lo]>>32 == int64(e.from) {
			return int(int32(row[lo]))
		}
		return -1
	}
	nec := hostpar.NumChunks(total, 4*parseGrainLines)
	asymPos := make([]int, nec)
	hostpar.ForN(total, nec, func(c, lo, hi int) {
		asymPos[c] = -1
		for p := lo; p < hi; p++ {
			e := entries[p]
			k := mirrorOf(e)
			if k < 0 || (hasEW && entries[k].w != e.w) {
				asymPos[c] = p
				return
			}
		}
	})
	for _, p := range asymPos {
		if p < 0 {
			continue
		}
		e := entries[p]
		k := mirrorOf(e)
		if k < 0 {
			return nil, fmt.Errorf("graph: METIS adjacency asymmetric: vertex %d lists %d but %d does not list %d",
				e.from+1, e.to+1, e.to+1, e.from+1)
		}
		return nil, fmt.Errorf("graph: METIS edge weight asymmetric: %d-%d has weights %d and %d",
			e.from+1, e.to+1, e.w, entries[k].w)
	}
	// Assembly straight from the validated sorted rows. This reproduces
	// the Builder output bit for bit: rows ascending and duplicate-free,
	// EWgt present iff some weight differs from 1 (weights are
	// symmetric, so scanning every directed entry is equivalent to the
	// Builder's scan of the lower-endpoint adds), VWgt present iff the
	// file carries vertex weights.
	adj := make([]int32, total)
	var ewgt []int32
	if weighted {
		ewgt = make([]int32, total)
	}
	hostpar.ForN(n, nvc, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			base := int(xadj[v])
			row := rowKeys[base:int(xadj[v+1])]
			for i, k := range row {
				adj[base+i] = int32(k >> 32)
				if weighted {
					ewgt[base+i] = entries[int32(k)].w
				}
			}
		}
	})
	g := &Graph{XAdj: xadj, Adjncy: adj, VWgt: vwgt, EWgt: ewgt}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS edge count %d does not match header %d", g.NumEdges(), m)
	}
	return g, nil
}

// readMatrixMarketBytes is the parallel MatrixMarket parser over a
// complete input.
func readMatrixMarketBytes(data []byte) (*Graph, error) {
	if len(data) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	// The banner is the raw first line (consumed even when blank),
	// trimmed of its '\r' like the serial scanner would.
	hEnd, from := len(data), len(data)
	if k := bytes.IndexByte(data, '\n'); k >= 0 {
		hEnd, from = k, k+1
	}
	if hEnd > 0 && data[hEnd-1] == '\r' {
		hEnd--
	}
	header := strings.ToLower(string(data[:hEnd]))
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("graph: not a MatrixMarket file: %q", header)
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("graph: only coordinate MatrixMarket supported")
	}
	hasValues := !strings.Contains(header, "pattern")
	clean := !hasHighBitAll(data)
	spans := dataLineSpans(data, from, clean)
	if len(spans) == 0 {
		return nil, fmt.Errorf("graph: MatrixMarket size line: %w", io.ErrUnexpectedEOF)
	}
	ssp := spans[0]
	sizeRaw := data[ssp[0]:ssp[1]]
	fields := splitTokens(sizeRaw, nil)
	if len(fields) != 3 {
		return nil, fmt.Errorf("graph: MatrixMarket size line %q", trimmedString(sizeRaw))
	}
	rows, err := parseIntTok(fields[0])
	if err != nil {
		return nil, err
	}
	cols, err := parseIntTok(fields[1])
	if err != nil {
		return nil, err
	}
	nnz, err := parseIntTok(fields[2])
	if err != nil {
		return nil, err
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: MatrixMarket matrix is %dx%d, want square", rows, cols)
	}
	symmetric := strings.Contains(header, "symmetric")
	// Parse the entry lines that exist; truncation is only reported
	// after they all parse cleanly (serial error precedence).
	avail := len(spans) - 1
	if avail > nnz {
		avail = nnz
	}
	// Per-entry parse, chunked at line boundaries into per-chunk packed
	// (i,j) cell buffers, merged in file order.
	nc := hostpar.NumChunks(avail, parseGrainLines)
	chunkCells := make([][]int64, nc)
	chunkErrs := make([]error, nc)
	want := 2
	if hasValues {
		want = 3
	}
	hostpar.ForN(avail, nc, func(c, lo, hi int) {
		cells := make([]int64, 0, hi-lo)
		for k := lo; k < hi; k++ {
			sp := spans[k+1]
			line := data[sp[0]:sp[1]]
			if !clean && hasHighBit(line) {
				line = normalizeLine(line)
			}
			// Fused tokenise + parse with the serial error precedence:
			// token count first, then the i and j parses in order.
			var i, j, cnt int
			var iErr, jErr error
			for p := 0; p < len(line); {
				for p < len(line) && asciiSpace[line[p]] {
					p++
				}
				if p >= len(line) {
					break
				}
				q := p
				val := 0
				for ; q < len(line); q++ {
					d := line[q] - '0'
					if d > 9 {
						break
					}
					val = val*10 + int(d)
				}
				irregular := q == p || q-p > 18
				if q < len(line) && !asciiSpace[line[q]] {
					irregular = true
					for q < len(line) && !asciiSpace[line[q]] {
						q++
					}
				}
				if cnt < 2 && irregular {
					var err error
					val, err = strconv.Atoi(string(line[p:q]))
					if err != nil {
						if cnt == 0 {
							iErr = err
						} else {
							jErr = err
						}
					}
				}
				switch cnt {
				case 0:
					i = val
				case 1:
					j = val
				}
				cnt++
				p = q
			}
			if cnt < want {
				chunkErrs[c] = fmt.Errorf("graph: MatrixMarket entry %q", trimmedString(data[sp[0]:sp[1]]))
				return
			}
			if iErr != nil {
				chunkErrs[c] = iErr
				return
			}
			if jErr != nil {
				chunkErrs[c] = jErr
				return
			}
			if i < 1 || i > rows || j < 1 || j > rows {
				chunkErrs[c] = fmt.Errorf("graph: MatrixMarket entry (%d,%d) out of range (matrix is %dx%d)", i, j, rows, rows)
				return
			}
			if symmetric && i < j {
				chunkErrs[c] = fmt.Errorf("graph: MatrixMarket entry (%d,%d) above the diagonal in a symmetric matrix", i, j)
				return
			}
			cells = append(cells, int64(i)<<32|int64(j))
		}
		chunkCells[c] = cells
	})
	for _, err := range chunkErrs {
		if err != nil {
			return nil, err
		}
	}
	if avail < nnz {
		return nil, fmt.Errorf("graph: MatrixMarket entry %d: %w", avail+1, io.ErrUnexpectedEOF)
	}
	var cells []int64
	if nc == 1 {
		cells = chunkCells[0]
	} else {
		total := 0
		for _, cl := range chunkCells {
			total += len(cl)
		}
		cells = make([]int64, 0, total)
		for _, cl := range chunkCells {
			cells = append(cells, cl...)
		}
	}
	// Fast duplicate screen: sort a copy and look for equal neighbours;
	// only an actual duplicate (the error path) pays for the exact
	// file-position attribution of the serial reader's permutation sort.
	sorted := slices.Clone(cells)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			dup := firstDuplicate(cells, sortedByKey(cells))
			c := cells[dup]
			return nil, fmt.Errorf("graph: MatrixMarket duplicate entry (%d,%d)", c>>32, int32(c))
		}
	}
	b := NewBuilder(rows)
	for _, c := range cells {
		i, j := int32(c>>32), int32(c)
		if i != j {
			b.AddEdge(i-1, j-1)
		}
	}
	g := b.Build()
	g.EWgt = nil
	return g, nil
}
