package graph

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/hostpar"
)

// Parallel CSR assembly: instead of one global O(E log E) sort.Slice
// over every edge record, edges are bucketed per endpoint (two directed
// arcs per undirected record), each vertex's bucket is sorted and
// duplicate-merged independently — embarrassingly parallel over
// vertices — and rows are written straight into their final offsets.
//
// The output is provably bit-identical to the legacy path: the legacy
// sort-and-merge emits, for every vertex, its unique neighbours in
// ascending order with duplicate weights summed (int32 addition is
// order-insensitive), which is exactly what the per-bucket sort
// produces. The determinism tests flip SetParallelBuild to prove it.

// parallelBuild gates the parallel path; disabled, Build runs the
// original global sort-and-merge.
var parallelBuild atomic.Bool

func init() { parallelBuild.Store(true) }

// SetParallelBuild enables or disables the parallel Build path and
// returns the previous setting. Test hook à la geopart.SetBatching:
// the parallel path must never change results, and the determinism
// tests prove it by flipping this switch.
func SetParallelBuild(on bool) bool {
	prev := parallelBuild.Load()
	parallelBuild.Store(on)
	return prev
}

// ParallelBuild reports whether the parallel Build path is enabled.
// Cache keys that fingerprint process-global knobs read it.
func ParallelBuild() bool { return parallelBuild.Load() }

// parallelBuildMinEdges is the record count below which the serial path
// is cheaper than forking. A var so package tests can force tiny builds
// through the parallel path.
var parallelBuildMinEdges = 4096

// SetParallelBuildMinEdges adjusts the size gate below which Build stays
// serial and returns the previous value. Test hook: lets determinism
// tests in other packages force tiny builds through the parallel path.
func SetParallelBuildMinEdges(n int) int {
	prev := parallelBuildMinEdges
	parallelBuildMinEdges = n
	return prev
}

// builderGrain is the minimum vertices per parallel chunk.
const builderGrain = 512

// packArc packs a directed arc's target and weight into one sortable
// word: target in the high 32 bits (ids are non-negative, so int64
// ordering equals target ordering), raw weight bits in the low 32.
func packArc(v, w int32) int64 { return int64(v)<<32 | int64(uint32(w)) }

func arcTarget(a int64) int32 { return int32(a >> 32) }
func arcWeight(a int64) int32 { return int32(uint32(a)) }

// dedupArcs merges adjacent same-target entries of a sorted packed-arc
// slice in place, summing weights with int32 wraparound (matching the
// legacy merge), and reports the unique count and whether any merged
// weight differs from 1.
func dedupArcs(seg []int64) (uniq int, anyNot1 bool) {
	if len(seg) == 0 {
		return 0, false
	}
	k := 0
	for i := 1; i < len(seg); i++ {
		if arcTarget(seg[i]) == arcTarget(seg[k]) {
			seg[k] = packArc(arcTarget(seg[k]), arcWeight(seg[k])+arcWeight(seg[i]))
		} else {
			k++
			seg[k] = seg[i]
		}
	}
	uniq = k + 1
	for _, a := range seg[:uniq] {
		if arcWeight(a) != 1 {
			anyNot1 = true
			break
		}
	}
	return uniq, anyNot1
}

// buildScratch is the pooled working set of one parallel build.
type buildScratch struct {
	arcs   []int64 // packed directed arcs, bucketed by source
	start  []int32 // bucket offsets, len n+1
	cursor []int32 // scatter cursors / per-vertex unique counts, len n
	flags  []bool  // per-chunk non-unit-weight flags
}

var buildScratchPool = sync.Pool{New: func() any { return new(buildScratch) }}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// buildParallel assembles the CSR graph with per-vertex bucket sorts.
func (b *Builder) buildParallel() *Graph {
	n := b.n
	nArcs := 2 * len(b.us)
	sc := buildScratchPool.Get().(*buildScratch)
	sc.start = grow(sc.start, n+1)
	sc.cursor = grow(sc.cursor, n)
	sc.arcs = grow(sc.arcs, nArcs)
	start, cursor, arcs := sc.start, sc.cursor, sc.arcs
	clear(start)
	// Count directed arcs per source and scatter into buckets. Both
	// passes are cheap linear scans; the O(E log E) work below is the
	// parallel part.
	for i := range b.us {
		start[b.us[i]+1]++
		start[b.vs[i]+1]++
	}
	for u := 0; u < n; u++ {
		start[u+1] += start[u]
	}
	copy(cursor, start[:n])
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		arcs[cursor[u]] = packArc(v, w)
		cursor[u]++
		arcs[cursor[v]] = packArc(u, w)
		cursor[v]++
	}
	// Sort and merge every vertex's bucket independently; cursor[u]
	// becomes the unique-neighbour count of u.
	nc := hostpar.NumChunks(n, builderGrain)
	sc.flags = grow(sc.flags, nc)
	flags := sc.flags
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		any := false
		for u := lo; u < hi; u++ {
			seg := arcs[start[u]:start[u+1]]
			slices.Sort(seg)
			uniq, not1 := dedupArcs(seg)
			cursor[u] = int32(uniq)
			any = any || not1
		}
		flags[c] = any
	})
	weighted := b.wsAny
	for _, f := range flags[:nc] {
		weighted = weighted || f
	}
	xadj := make([]int32, n+1)
	for u := 0; u < n; u++ {
		xadj[u+1] = xadj[u] + cursor[u]
	}
	adj := make([]int32, xadj[n])
	var ewgt []int32
	if weighted {
		ewgt = make([]int32, len(adj))
	}
	hostpar.ForN(n, nc, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			seg := arcs[start[u] : start[u]+cursor[u]]
			out := int(xadj[u])
			for i, a := range seg {
				adj[out+i] = arcTarget(a)
			}
			if weighted {
				for i, a := range seg {
					ewgt[out+i] = arcWeight(a)
				}
			}
		}
	})
	buildScratchPool.Put(sc)
	g := &Graph{XAdj: xadj, Adjncy: adj, EWgt: ewgt}
	if b.vwgt != nil {
		g.VWgt = append([]int32(nil), b.vwgt...)
	}
	return g
}
