package graph

import (
	"strings"
	"testing"
)

func wantReadErr(t *testing.T, input, fragment string) {
	t.Helper()
	_, err := ReadMETIS(strings.NewReader(input))
	if err == nil {
		t.Fatalf("accepted malformed METIS input %q", input)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestReadMETISRejectsSelfLoop(t *testing.T) {
	wantReadErr(t, "2 2\n1 2\n1\n", "self-loop")
}

func TestReadMETISRejectsOutOfRangeNeighbour(t *testing.T) {
	wantReadErr(t, "2 1\n3\n1\n", "out of range")
	wantReadErr(t, "2 1\n0\n1\n", "out of range")
}

func TestReadMETISRejectsAsymmetricAdjacency(t *testing.T) {
	// Vertex 1 lists 3, but vertex 3 only lists 2: the reverse entry is
	// missing. The error must name both endpoints, first in file order.
	_, err := ReadMETIS(strings.NewReader("3 2\n2 3\n1\n2\n"))
	if err == nil {
		t.Fatal("accepted asymmetric adjacency")
	}
	msg := err.Error()
	if !strings.Contains(msg, "asymmetric") || !strings.Contains(msg, "vertex 1 lists 3") {
		t.Fatalf("unhelpful asymmetry error: %q", msg)
	}
}

func TestReadMETISRejectsDuplicateNeighbour(t *testing.T) {
	wantReadErr(t, "2 1\n2 2\n1\n", "duplicate neighbour")
}

func TestReadMETISRejectsEdgeCountMismatch(t *testing.T) {
	// Header claims 2 edges, the body has 1.
	wantReadErr(t, "2 2\n2\n1\n", "does not match header")
}

func TestReadMETISRejectsAsymmetricEdgeWeights(t *testing.T) {
	// 1-2 has weight 5 one way and 7 the other.
	wantReadErr(t, "2 1 1\n2 5\n1 7\n", "weight asymmetric")
}

func TestReadMETISAcceptsValidWeightedGraph(t *testing.T) {
	g, err := ReadMETIS(strings.NewReader("3 2 11\n4 2 5\n6 1 5 3 9\n2 2 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.VWgt[0] != 4 || g.VWgt[1] != 6 || g.VWgt[2] != 2 {
		t.Fatalf("vertex weights %v", g.VWgt)
	}
}

func TestReadMatrixMarketRejectsDuplicateEntry(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n2 1\n"
	if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-entry error, got %v", err)
	}
}

func TestReadMatrixMarketRejectsUpperTriangleInSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n1 2\n"
	if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "above the diagonal") {
		t.Fatalf("want upper-triangle error, got %v", err)
	}
}

func TestReadMatrixMarketGeneralStillSymmetrises(t *testing.T) {
	// A general matrix may carry both (i,j) and (j,i); that is not a
	// duplicate, and the pair collapses to one undirected edge.
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges %d, want 1", g.NumEdges())
	}
}
