package graph

import (
	"fmt"
	"slices"

	"repro/internal/hostpar"
)

// BuildStreamed assembles a CSR graph from an edge stream without the
// Builder's per-edge staging triple. emit is invoked twice with an add
// callback and must produce the same edge sequence both times (any
// deterministic generator does): the first pass only counts directed
// arcs per vertex, the second scatters them straight into the packed
// arc buffer at its final bucket offsets. The only transient beyond
// the finished graph is that exact-size buffer — there is no append
// growth and no (u, v, w) record list, so generator peak RSS drops
// from O(edges) staging plus doubling slack to the single packed pass.
//
// Edge semantics match Builder exactly — self-loops dropped, {u,v}
// recorded once regardless of orientation, duplicate weights summed,
// EWgt materialised iff some surviving weight differs from 1 — and the
// per-vertex sort/dedup tail is the buildParallel one, so the result
// is bit-identical to feeding the same stream through NewBuilder/Build
// at any worker count.
func BuildStreamed(n int, emit func(add func(u, v, w int32))) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	start := make([]int32, n+1)
	kept := 0
	wsAny := false
	check := func(u, v int32) bool {
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		return u != v
	}
	emit(func(u, v, w int32) {
		if !check(u, v) {
			return
		}
		start[u+1]++
		start[v+1]++
		kept++
		if w != 1 {
			wsAny = true
		}
	})
	for u := 0; u < n; u++ {
		start[u+1] += start[u]
	}
	arcs := make([]int64, 2*kept)
	cursor := append([]int32(nil), start[:n]...)
	replayed := 0
	emit(func(u, v, w int32) {
		if !check(u, v) {
			return
		}
		replayed++
		arcs[cursor[u]] = packArc(v, w)
		cursor[u]++
		arcs[cursor[v]] = packArc(u, w)
		cursor[v]++
	})
	if replayed != kept {
		panic(fmt.Sprintf("graph: BuildStreamed emit not deterministic: %d edges then %d", kept, replayed))
	}
	// The buildParallel tail: sort and merge every vertex's bucket
	// independently, then write rows at their final offsets.
	nc := hostpar.NumChunks(n, builderGrain)
	flags := make([]bool, nc)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		any := false
		for u := lo; u < hi; u++ {
			seg := arcs[start[u]:start[u+1]]
			slices.Sort(seg)
			uniq, not1 := dedupArcs(seg)
			cursor[u] = int32(uniq)
			any = any || not1
		}
		flags[c] = any
	})
	weighted := wsAny
	for _, f := range flags {
		weighted = weighted || f
	}
	xadj := make([]int32, n+1)
	for u := 0; u < n; u++ {
		xadj[u+1] = xadj[u] + cursor[u]
	}
	adj := make([]int32, xadj[n])
	var ewgt []int32
	if weighted {
		ewgt = make([]int32, len(adj))
	}
	hostpar.ForN(n, nc, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			seg := arcs[start[u] : start[u]+cursor[u]]
			out := int(xadj[u])
			for i, a := range seg {
				adj[out+i] = arcTarget(a)
			}
			if weighted {
				for i, a := range seg {
					ewgt[out+i] = arcWeight(a)
				}
			}
		}
	})
	return &Graph{XAdj: xadj, Adjncy: adj, EWgt: ewgt}
}
