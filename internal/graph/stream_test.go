package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hostpar"
)

// streamCase is a deterministic edge stream with duplicates,
// self-loops, reversed orientations, and non-unit weights — every
// Builder semantic BuildStreamed must reproduce.
func streamCase(n, edges int, weighted bool, seed int64) func(add func(u, v, w int32)) {
	return func(add func(u, v, w int32)) {
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < edges; k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			w := int32(1)
			if weighted && rng.Intn(3) == 0 {
				w = int32(rng.Intn(9) + 1)
			}
			add(u, v, w)
		}
	}
}

func buildViaBuilder(n int, emit func(add func(u, v, w int32))) *graph.Graph {
	b := graph.NewBuilder(n)
	emit(func(u, v, w int32) { b.AddWeightedEdge(u, v, w) })
	return b.Build()
}

// TestBuildStreamedMatchesBuilder proves the streamed path is
// bit-identical to feeding the same stream through the Builder, across
// weighted/unweighted streams and worker counts.
func TestBuildStreamedMatchesBuilder(t *testing.T) {
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	cases := []struct {
		name     string
		n, edges int
		weighted bool
	}{
		{"small-unweighted", 50, 300, false},
		{"small-weighted", 50, 300, true},
		{"large-unweighted", 3000, 20000, false},
		{"large-weighted", 3000, 20000, true},
		{"empty", 10, 0, false},
		{"zero-vertices", 0, 0, false},
	}
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		for _, tc := range cases {
			emit := streamCase(tc.n, tc.edges, tc.weighted, 42)
			want := buildViaBuilder(tc.n, emit)
			got := graph.BuildStreamed(tc.n, emit)
			sameGraph(t, want, got)
			if err := got.Validate(); err != nil {
				t.Fatalf("workers=%d %s: %v", w, tc.name, err)
			}
		}
	}
}

// TestBuildStreamedPanics pins the Builder-compatible panic contracts.
func TestBuildStreamedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("out-of-range", func() {
		graph.BuildStreamed(2, func(add func(u, v, w int32)) { add(0, 2, 1) })
	})
	mustPanic("negative-n", func() {
		graph.BuildStreamed(-1, func(add func(u, v, w int32)) {})
	})
	mustPanic("nondeterministic-emit", func() {
		calls := 0
		graph.BuildStreamed(4, func(add func(u, v, w int32)) {
			calls++
			if calls == 1 {
				add(0, 1, 1)
			}
		})
	})
}
