package graph

// BlockRange returns the contiguous vertex range [begin, end) owned by
// rank r when n vertices are distributed over p ranks in near-equal
// blocks, matching the paper's "read in by P processors in
// approximately equal sized chunks".
func BlockRange(n, p, r int) (begin, end int) {
	if p <= 0 || r < 0 || r >= p {
		panic("graph: BlockRange: invalid rank/size")
	}
	base := n / p
	extra := n % p
	if r < extra {
		begin = r * (base + 1)
		end = begin + base + 1
	} else {
		begin = extra*(base+1) + (r-extra)*base
		end = begin + base
	}
	return begin, end
}

// BlockOwner returns the rank owning vertex v under BlockRange
// distribution of n vertices over p ranks.
func BlockOwner(n, p int, v int32) int {
	base := n / p
	extra := n % p
	cut := extra * (base + 1)
	if int(v) < cut {
		return int(v) / (base + 1)
	}
	if base == 0 {
		return p - 1
	}
	return extra + (int(v)-cut)/base
}

// BoundaryCounts returns, for each rank under block distribution, the
// number of its boundary vertices (owned vertices with at least one
// neighbour owned elsewhere) and its ghost vertices (distinct non-owned
// neighbours). These counts drive the communication-cost accounting of
// the simulated runtime.
//
// Ghost dedup uses an epoch-stamp array instead of a hash set: ranks
// are visited in order, so a neighbour already counted for the current
// rank carries stamp r+1. One O(n) array replaces a map holding every
// (rank, ghost) pair — no hashing, no growth, no per-edge allocation.
func BoundaryCounts(g *Graph, p int) (boundary, ghosts []int) {
	n := g.NumVertices()
	boundary = make([]int, p)
	ghosts = make([]int, p)
	cur := GetCursor(g)
	defer cur.Release()
	lastSeen := make([]int32, n) // 0 = never; r+1 = counted for rank r
	for r := 0; r < p; r++ {
		begin, end := BlockRange(n, p, r)
		stamp := int32(r + 1)
		for v := begin; v < end; v++ {
			isBoundary := false
			nbrs, _ := cur.Arcs(int32(v))
			for _, w := range nbrs {
				if int(w) < begin || int(w) >= end {
					isBoundary = true
					if lastSeen[w] != stamp {
						lastSeen[w] = stamp
						ghosts[r]++
					}
				}
			}
			if isBoundary {
				boundary[r]++
			}
		}
	}
	return boundary, ghosts
}
