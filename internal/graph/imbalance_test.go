package graph

import "testing"

// TestImbalance2Table pins the canonical bisection imbalance on the
// boundary cases that used to diverge between the metrics layer and the
// geometric partitioner's private copy: empty graphs, empty sides, and
// odd totals whose division cannot be exact.
func TestImbalance2Table(t *testing.T) {
	// Expected values go through the same runtime float operations as
	// the implementation (Go constant arithmetic is exact and would
	// round differently).
	oddSplit := 2 * float64(4) / float64(7)
	oddSplit -= 1
	huge := 2 * float64(int64(1)<<40) / float64(int64(1)<<40+1)
	huge -= 1
	cases := []struct {
		w0, w1 int64
		want   float64
	}{
		{0, 0, 0},          // empty graph: defined as balanced
		{0, 10, 1},         // one side empty: 100% over ideal
		{10, 0, 1},         // symmetric in the arguments
		{5, 5, 0},          // perfect balance
		{3, 4, oddSplit},   // odd total: inexact division
		{4, 3, oddSplit},   // same split, swapped
		{1, 1 << 40, huge}, // huge side
	}
	for _, tc := range cases {
		if got := Imbalance2(tc.w0, tc.w1); got != tc.want {
			t.Errorf("Imbalance2(%d, %d) = %v, want %v", tc.w0, tc.w1, got, tc.want)
		}
	}
}

// TestImbalanceDelegatesToImbalance2: the k=2 metrics entry point and
// the side-weight form must agree bit-for-bit on every partition,
// including one with an entirely empty side.
func TestImbalanceDelegatesToImbalance2(t *testing.T) {
	g := path(7) // odd vertex count: unit weights give an odd total
	parts := [][]int32{
		{0, 0, 0, 1, 1, 1, 1}, // the 3/4 split
		{0, 0, 0, 0, 0, 0, 0}, // side 1 empty
		{1, 1, 1, 1, 1, 1, 1}, // side 0 empty
		{0, 1, 0, 1, 0, 1, 0}, // alternating
	}
	for _, part := range parts {
		w := PartWeights(g, part, 2)
		if got, want := Imbalance(g, part, 2), Imbalance2(w[0], w[1]); got != want {
			t.Errorf("part %v: Imbalance = %v, Imbalance2 = %v", part, got, want)
		}
	}
	// Weighted vertices must flow through identically.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(0, 7)
	wg := b.Build()
	part := []int32{0, 1, 1}
	w := PartWeights(wg, part, 2)
	if got, want := Imbalance(wg, part, 2), Imbalance2(w[0], w[1]); got != want {
		t.Errorf("weighted: Imbalance = %v, Imbalance2 = %v", got, want)
	}
}
