package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMETIS writes g in the METIS graph-file format: a header line
// "n m [fmt]" followed by one line per vertex listing its 1-based
// neighbours (and arc weights when the graph is edge-weighted). Each
// line is assembled with strconv.AppendInt into a reused scratch
// buffer — no per-value fmt round trips — so writing keeps pace with
// the parallel readers. Compressed graphs are written by decoding
// through a Cursor.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	hasVW := g.VWgt != nil
	hasEW := g.EWgt != nil || (g.Packed != nil && g.Packed.weighted)
	format := ""
	switch {
	case hasVW && hasEW:
		format = " 11"
	case hasVW:
		format = " 10"
	case hasEW:
		format = " 1"
	}
	line := make([]byte, 0, 1<<10)
	line = strconv.AppendInt(line, int64(n), 10)
	line = append(line, ' ')
	line = strconv.AppendInt(line, int64(g.NumEdges()), 10)
	line = append(line, format...)
	line = append(line, '\n')
	if _, err := bw.Write(line); err != nil {
		return err
	}
	cur := GetCursor(g)
	defer cur.Release()
	for v := int32(0); v < int32(n); v++ {
		line = line[:0]
		first := true
		if hasVW {
			line = strconv.AppendInt(line, int64(g.VWgt[v]), 10)
			first = false
		}
		nbrs, wgts := cur.Arcs(v)
		for i, nb := range nbrs {
			if !first {
				line = append(line, ' ')
			}
			first = false
			line = strconv.AppendInt(line, int64(nb)+1, 10)
			if hasEW {
				line = append(line, ' ')
				line = strconv.AppendInt(line, int64(wgts[i]), 10)
			}
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a graph in METIS format. Comment lines starting
// with '%' are skipped. Supported fmt codes: "", "1" (edge weights),
// "10" (vertex weights), "11" (both). Multi-constraint vertex weights
// are not supported. Parsing runs on the hostpar-chunked byte-slice
// path (see io_par.go) unless SetParallelParse disabled it; the two
// paths produce identical graphs and identical errors.
func ReadMETIS(r io.Reader) (*Graph, error) {
	if parallelParse.Load() {
		data, err := slurp(r)
		if err != nil {
			return nil, fmt.Errorf("graph: METIS header: %w", err)
		}
		return readMETISBytes(data)
	}
	return readMETISSerial(r)
}

// readMETISSerial is the legacy streaming reader, kept verbatim as the
// reference the parallel parser is differentially tested against.
func readMETISSerial(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS header %q: want at least n and m", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header n: %w", err)
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header m: %w", err)
	}
	hasVW, hasEW := false, false
	if len(fields) >= 3 {
		switch fields[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasVW = true
		case "11", "011":
			hasVW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graph: METIS fmt code %q unsupported", fields[2])
		}
	}
	b := NewBuilder(n)
	// Each undirected edge must appear twice in a METIS file, once from
	// each endpoint. Record every directed entry (in file order, for
	// deterministic error reporting) so the adjacency can be checked for
	// self-loops, duplicates, and asymmetry — the structural defects that
	// otherwise surface much later as partitioner invariant violations.
	// Validation is sort-based (see checkAdjacency): one permutation sort
	// over packed (from, to) keys replaces a hash set holding every
	// directed entry.
	type dirEdge struct{ from, to, w int32 }
	entries := make([]dirEdge, 0, preallocHint(2*m))
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: METIS vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVW {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: METIS vertex %d: missing weight", v+1)
			}
			w, err := strconv.Atoi(toks[0])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d weight: %w", v+1, err)
			}
			b.SetVertexWeight(int32(v), int32(w))
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d neighbour: %w", v+1, err)
			}
			i++
			w := 1
			if hasEW {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: METIS vertex %d: missing edge weight", v+1)
				}
				w, err = strconv.Atoi(toks[i])
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d edge weight: %w", v+1, err)
				}
				i++
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: neighbour %d out of range [1,%d]", v+1, u, n)
			}
			if u-1 == v {
				return nil, fmt.Errorf("graph: METIS vertex %d: self-loop", v+1)
			}
			entries = append(entries, dirEdge{int32(v), int32(u - 1), int32(w)})
			// Each undirected edge appears twice in the file; add it
			// once, from its lower endpoint.
			if int32(u-1) > int32(v) {
				b.AddWeightedEdge(int32(v), int32(u-1), int32(w))
			}
		}
	}
	// Duplicate check: sort a permutation by (packed key, file position)
	// and look for equal adjacent keys. Reporting the smallest
	// second-occurrence position reproduces the first duplicate a file-
	// order scan would hit.
	keys := make([]int64, len(entries))
	for i, e := range entries {
		keys[i] = int64(e.from)<<32 | int64(e.to)
	}
	perm := sortedByKey(keys)
	if dup := firstDuplicate(keys, perm); dup >= 0 {
		e := entries[dup]
		return nil, fmt.Errorf("graph: METIS vertex %d: duplicate neighbour %d", e.from+1, e.to+1)
	}
	// Symmetry: every directed entry needs its mirror (binary search over
	// the now-unique sorted keys), with the same weight when the file
	// carries edge weights. Checking in file order makes the reported
	// offender deterministic.
	for _, e := range entries {
		k := findKey(keys, perm, int64(e.to)<<32|int64(e.from))
		if k < 0 {
			return nil, fmt.Errorf("graph: METIS adjacency asymmetric: vertex %d lists %d but %d does not list %d",
				e.from+1, e.to+1, e.to+1, e.from+1)
		}
		if hasEW && entries[k].w != e.w {
			return nil, fmt.Errorf("graph: METIS edge weight asymmetric: %d-%d has weights %d and %d",
				e.from+1, e.to+1, e.w, entries[k].w)
		}
	}
	g := b.Build()
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS edge count %d does not match header %d", g.NumEdges(), m)
	}
	return g, nil
}

// sortedByKey returns the permutation of indices ordering keys
// ascending, ties broken by position — so equal keys appear in file
// order within a run.
func sortedByKey(keys []int64) []int32 {
	perm := make([]int32, len(keys))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		if keys[perm[a]] != keys[perm[b]] {
			return keys[perm[a]] < keys[perm[b]]
		}
		return perm[a] < perm[b]
	})
	return perm
}

// firstDuplicate scans a key-sorted permutation for equal adjacent keys
// and returns the smallest position that is not the first occurrence of
// its key (the first duplicate in file order), or -1.
func firstDuplicate(keys []int64, perm []int32) int {
	dup := -1
	for i := 1; i < len(perm); i++ {
		if keys[perm[i]] == keys[perm[i-1]] {
			if p := int(perm[i]); dup < 0 || p < dup {
				dup = p
			}
		}
	}
	return dup
}

// findKey binary-searches a duplicate-free key-sorted permutation and
// returns the position holding key, or -1.
func findKey(keys []int64, perm []int32, key int64) int {
	lo, hi := 0, len(perm)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[perm[mid]] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(perm) && keys[perm[lo]] == key {
		return int(perm[lo])
	}
	return -1
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WriteMatrixMarket writes the adjacency structure of g as a symmetric
// pattern matrix in MatrixMarket coordinate format, the format of the
// UFL sparse matrix collection the paper draws its test graphs from.
// Entry lines are assembled with strconv.AppendInt into a reused
// scratch buffer.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern symmetric\n%d %d %d\n", n, n, g.NumEdges()); err != nil {
		return err
	}
	cur := GetCursor(g)
	defer cur.Release()
	line := make([]byte, 0, 64)
	for u := int32(0); u < int32(n); u++ {
		nbrs, _ := cur.Arcs(u)
		for _, v := range nbrs {
			if v < u {
				// Lower-triangular convention: row > column.
				line = strconv.AppendInt(line[:0], int64(u)+1, 10)
				line = append(line, ' ')
				line = strconv.AppendInt(line, int64(v)+1, 10)
				line = append(line, '\n')
				if _, err := bw.Write(line); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a symmetric sparse matrix in MatrixMarket
// coordinate format and returns its adjacency graph (diagonal entries
// dropped, values ignored). General (non-symmetric) matrices are
// symmetrised. Parsing runs on the hostpar-chunked byte-slice path
// (see io_par.go) unless SetParallelParse disabled it.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	if parallelParse.Load() {
		data, err := slurp(r)
		if err != nil {
			return nil, err
		}
		return readMatrixMarketBytes(data)
	}
	return readMatrixMarketSerial(r)
}

// readMatrixMarketSerial is the legacy streaming reader, kept verbatim
// as the reference the parallel parser is differentially tested
// against.
func readMatrixMarketSerial(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, io.ErrUnexpectedEOF
	}
	header := strings.ToLower(sc.Text())
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("graph: not a MatrixMarket file: %q", header)
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("graph: only coordinate MatrixMarket supported")
	}
	hasValues := !strings.Contains(header, "pattern")
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: MatrixMarket size line: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return nil, fmt.Errorf("graph: MatrixMarket size line %q", line)
	}
	rows, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, err
	}
	cols, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, err
	}
	nnz, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, err
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: MatrixMarket matrix is %dx%d, want square", rows, cols)
	}
	symmetric := strings.Contains(header, "symmetric")
	b := NewBuilder(rows)
	cells := make([]int64, 0, preallocHint(nnz)) // packed (i, j), in file order
	for k := 0; k < nnz; k++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: MatrixMarket entry %d: %w", k+1, err)
		}
		toks := strings.Fields(line)
		want := 2
		if hasValues {
			want = 3
		}
		if len(toks) < want {
			return nil, fmt.Errorf("graph: MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(toks[0])
		if err != nil {
			return nil, err
		}
		j, err := strconv.Atoi(toks[1])
		if err != nil {
			return nil, err
		}
		if i < 1 || i > rows || j < 1 || j > rows {
			return nil, fmt.Errorf("graph: MatrixMarket entry (%d,%d) out of range (matrix is %dx%d)", i, j, rows, rows)
		}
		if symmetric && i < j {
			return nil, fmt.Errorf("graph: MatrixMarket entry (%d,%d) above the diagonal in a symmetric matrix", i, j)
		}
		cells = append(cells, int64(i)<<32|int64(j))
		if i != j {
			b.AddEdge(int32(i-1), int32(j-1))
		}
	}
	// Duplicate check, sort-based like ReadMETIS: the smallest second-
	// occurrence position is the first duplicate in file order.
	if dup := firstDuplicate(cells, sortedByKey(cells)); dup >= 0 {
		c := cells[dup]
		return nil, fmt.Errorf("graph: MatrixMarket duplicate entry (%d,%d)", c>>32, int32(c))
	}
	// The builder merges the duplicates a general matrix produces; the
	// accumulated weights are irrelevant for pattern use, so rebuild as
	// unweighted.
	g := b.Build()
	g.EWgt = nil
	return g, nil
}

// WriteEdgeList writes one "u v" pair per undirected edge (0-based),
// the lowest-common-denominator exchange format. Lines are assembled
// with strconv.AppendInt into a reused scratch buffer.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cur := GetCursor(g)
	defer cur.Release()
	line := make([]byte, 0, 64)
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		nbrs, _ := cur.Arcs(u)
		for _, v := range nbrs {
			if u < v {
				line = strconv.AppendInt(line[:0], int64(u), 10)
				line = append(line, ' ')
				line = strconv.AppendInt(line, int64(v), 10)
				line = append(line, '\n')
				if _, err := bw.Write(line); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "u v" pairs (0-based,
// comments starting with '#' or '%' skipped) into a graph whose vertex
// count is one past the largest id seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	type pair struct{ u, v int32 }
	var edges []pair
	maxID := int32(-1)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list: %w", err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list: %w", err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in %q", line)
		}
		edges = append(edges, pair{int32(u), int32(v)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(int(maxID + 1))
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	g := b.Build()
	g.EWgt = nil // duplicates in edge lists are not weights
	return g, nil
}
