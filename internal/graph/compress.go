package graph

import (
	"sync"

	"repro/internal/hostpar"
)

// Compressed adjacency: delta/varint-encoded neighbour lists behind
// fixed-size block offsets, the memory representation that makes
// paper-adjacent graph sizes practical on one host. XAdj and VWgt are
// retained uncompressed — degrees, ownership ranges, and the cost
// model's XAdj arithmetic stay O(1) — while Adjncy and EWgt are
// replaced by two byte streams:
//
//   - inline: short rows (degree < cLongDeg), encoded in vertex order as
//     zigzag-varint deltas: first neighbour relative to the vertex id,
//     then consecutive differences. Weighted graphs interleave a
//     zigzag-varint arc weight after each neighbour.
//   - long: hub rows (degree >= cLongDeg) carry the same encoding in a
//     separate stream; their inline slot holds only the encoded byte
//     length, so a sequential skim of a block steps over hubs in O(1)
//     varints instead of O(degree).
//
// Every cBlock consecutive vertices form a block with recorded start
// offsets into both streams, so random access costs at most a
// cBlock-row skim from the block start. Encoding, decoding, and random
// access never consult scheduling state: the byte streams are a pure
// function of the CSR arrays, which is what keeps compressed and plain
// runs bit-identical (the cuts/clocks bit-identity tests pin it).

const (
	// cBlock is the number of vertices per offset block.
	cBlock = 16
	// cLongDeg routes rows at or above this degree to the long stream.
	cLongDeg = 32
	// compressGrainBlocks is the minimum blocks per parallel chunk.
	compressGrainBlocks = 64
)

// CGraph is the compressed adjacency payload of a Graph. It shares the
// uncompressed XAdj and VWgt arrays with its wrapper and is immutable
// after Compress, so it is safe to hand to every simulated rank.
type CGraph struct {
	n        int
	weighted bool
	xadj     []int32
	vwgt     []int32
	inline   []byte
	long     []byte
	inOff    []int64 // per block: start of the block's inline bytes
	longOff  []int64 // per block: start of the block's long-stream bytes
}

// Weighted reports whether the compressed stream carries arc weights.
func (c *CGraph) Weighted() bool { return c.weighted }

// AdjBytes returns the compressed adjacency footprint: both byte
// streams plus the block offset tables. This is the number the ≤ 60%
// acceptance bound measures against 4 bytes per directed arc.
func (c *CGraph) AdjBytes() int64 {
	return int64(len(c.inline)) + int64(len(c.long)) +
		8*int64(len(c.inOff)) + 8*int64(len(c.longOff))
}

// Compress returns a graph sharing g's XAdj and VWgt whose adjacency
// (and arc weights, when present) live in the compressed block streams;
// Adjncy and EWgt are nil on the result. Compressing an already
// compressed graph returns it unchanged. Encoding is chunked over the
// hostpar substrate by block; each block's bytes are written by exactly
// one chunk, so the streams are identical for every worker count.
func Compress(g *Graph) *Graph {
	if g.Packed != nil {
		return g
	}
	n := g.NumVertices()
	c := &CGraph{n: n, weighted: g.EWgt != nil, xadj: g.XAdj, vwgt: g.VWgt}
	nb := (n + cBlock - 1) / cBlock
	c.inOff = make([]int64, nb+1)
	c.longOff = make([]int64, nb+1)
	nc := hostpar.NumChunks(nb, compressGrainBlocks)
	// Pass 1: per-block byte sizes, staged at offset b+1 for the prefix
	// sum below.
	hostpar.ForN(nb, nc, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			var inB, longB int64
			end := (b + 1) * cBlock
			if end > n {
				end = n
			}
			for v := b * cBlock; v < end; v++ {
				s, e := g.XAdj[v], g.XAdj[v+1]
				deg := int(e - s)
				if deg == 0 {
					continue
				}
				rb := rowBytes(int32(v), g.Adjncy[s:e], g.EWgt, s)
				if deg >= cLongDeg {
					inB += int64(uvarintLen64(uint64(rb)))
					longB += int64(rb)
				} else {
					inB += int64(rb)
				}
			}
			c.inOff[b+1] = inB
			c.longOff[b+1] = longB
		}
	})
	for b := 0; b < nb; b++ {
		c.inOff[b+1] += c.inOff[b]
		c.longOff[b+1] += c.longOff[b]
	}
	c.inline = make([]byte, c.inOff[nb])
	c.long = make([]byte, c.longOff[nb])
	// Pass 2: encode each block into its precomputed stream ranges.
	hostpar.ForN(nb, nc, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			ip, lp := int(c.inOff[b]), int(c.longOff[b])
			end := (b + 1) * cBlock
			if end > n {
				end = n
			}
			for v := b * cBlock; v < end; v++ {
				s, e := g.XAdj[v], g.XAdj[v+1]
				deg := int(e - s)
				if deg == 0 {
					continue
				}
				if deg >= cLongDeg {
					rb := rowBytes(int32(v), g.Adjncy[s:e], g.EWgt, s)
					ip = putUvarint64(c.inline, ip, uint64(rb))
					lp = encodeRow(c.long, lp, int32(v), g.Adjncy[s:e], g.EWgt, s)
				} else {
					ip = encodeRow(c.inline, ip, int32(v), g.Adjncy[s:e], g.EWgt, s)
				}
			}
		}
	})
	return &Graph{XAdj: g.XAdj, VWgt: g.VWgt, Packed: c}
}

// Compressed reports whether g's adjacency is block-compressed.
func (g *Graph) Compressed() bool { return g.Packed != nil }

// AdjacencyBytes returns the bytes held by g's adjacency structure:
// the compressed streams plus offset tables when compressed, 4 bytes
// per directed arc (plus arc weights, when present) otherwise.
func (g *Graph) AdjacencyBytes() int64 {
	if g.Packed != nil {
		return g.Packed.AdjBytes()
	}
	b := 4 * int64(len(g.Adjncy))
	if g.EWgt != nil {
		b += 4 * int64(len(g.EWgt))
	}
	return b
}

// Plain returns g with its adjacency materialised as plain CSR arrays:
// g itself when already plain, otherwise a decompressed copy sharing
// XAdj and VWgt. Decoding is chunked over hostpar by block; each row is
// written by exactly one chunk, so the arrays are identical for every
// worker count — and identical to the arrays Compress consumed.
func (g *Graph) Plain() *Graph {
	c := g.Packed
	if c == nil {
		return g
	}
	n := c.n
	adj := make([]int32, g.XAdj[n])
	var ewgt []int32
	if c.weighted {
		ewgt = make([]int32, len(adj))
	}
	nb := (n + cBlock - 1) / cBlock
	hostpar.ForN(nb, hostpar.NumChunks(nb, compressGrainBlocks), func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			ip, lp := int(c.inOff[b]), int(c.longOff[b])
			end := (b + 1) * cBlock
			if end > n {
				end = n
			}
			for v := b * cBlock; v < end; v++ {
				s, e := g.XAdj[v], g.XAdj[v+1]
				deg := int(e - s)
				if deg == 0 {
					continue
				}
				src, p := c.inline, ip
				if deg >= cLongDeg {
					length, np := getUvarint64(c.inline, ip)
					ip = np
					src, p = c.long, lp
					lp += int(length)
				}
				var wrow []int32
				if c.weighted {
					wrow = ewgt[s:e]
				}
				p = decodeRowInto(src, p, int32(v), adj[s:e], wrow)
				if deg < cLongDeg {
					ip = p
				}
			}
		}
	})
	return &Graph{XAdj: g.XAdj, Adjncy: adj, VWgt: g.VWgt, EWgt: ewgt}
}

// Cursor is the zero-allocation adjacency accessor shared by plain and
// compressed graphs: the one code path coarsen/embed/geopart hot loops
// use for either representation. On plain graphs Arcs returns shared
// CSR sub-slices; on compressed graphs it decodes into cursor-owned
// scratch (valid until the next Arcs call). A cursor caches its stream
// position, so ascending scans decode each byte exactly once; random
// access costs at most a cBlock-row skim from a block boundary.
//
// A Cursor is not safe for concurrent use; parallel kernels take one
// per chunk (GetCursor/Release pool them).
type Cursor struct {
	g    *Graph
	c    *CGraph
	next int32 // row the cached stream positions point at; -1 = invalid
	ip   int
	lp   int
	nbrs []int32
	wgts []int32
	ones []int32
}

// NewCursor returns a cursor over g's adjacency.
func (g *Graph) NewCursor() *Cursor {
	cur := &Cursor{}
	cur.Reset(g)
	return cur
}

// Reset points the cursor at g, keeping its scratch buffers.
func (cur *Cursor) Reset(g *Graph) {
	cur.g = g
	cur.c = g.Packed
	cur.next = -1
}

// cursorPool recycles cursors (and their decode scratch) across the
// parallel kernels that need one per chunk.
var cursorPool = sync.Pool{New: func() any { return new(Cursor) }}

// GetCursor returns a pooled cursor over g's adjacency; Release returns
// it when the chunk is done.
func GetCursor(g *Graph) *Cursor {
	cur := cursorPool.Get().(*Cursor)
	cur.Reset(g)
	return cur
}

// Release returns a cursor obtained from GetCursor to the pool.
func (cur *Cursor) Release() {
	cur.g, cur.c = nil, nil
	cursorPool.Put(cur)
}

// Arcs returns the neighbours of v and the aligned arc weights (all 1
// for unweighted graphs). The slices are only valid until the next Arcs
// call and must not be modified.
func (cur *Cursor) Arcs(v int32) ([]int32, []int32) {
	g := cur.g
	if cur.c == nil {
		lo, hi := g.XAdj[v], g.XAdj[v+1]
		nbrs := g.Adjncy[lo:hi]
		if g.EWgt != nil {
			return nbrs, g.EWgt[lo:hi]
		}
		return nbrs, cur.unit(len(nbrs))
	}
	return cur.decode(v)
}

// unit returns a shared slice of n unit weights.
func (cur *Cursor) unit(n int) []int32 {
	for len(cur.ones) < n {
		cur.ones = append(cur.ones, 1)
	}
	return cur.ones[:n]
}

// decode decompresses row v into the cursor scratch.
func (cur *Cursor) decode(v int32) ([]int32, []int32) {
	g, c := cur.g, cur.c
	deg := int(g.XAdj[v+1] - g.XAdj[v])
	cur.nbrs = grow(cur.nbrs, deg)
	if c.weighted {
		cur.wgts = grow(cur.wgts, deg)
	}
	if deg == 0 {
		return cur.nbrs, cur.unit(0)
	}
	if v != cur.next {
		cur.seek(v)
	}
	src, p := c.inline, cur.ip
	if deg >= cLongDeg {
		length, np := getUvarint64(c.inline, cur.ip)
		cur.ip = np
		src, p = c.long, cur.lp
		cur.lp += int(length)
	}
	var wrow []int32
	if c.weighted {
		wrow = cur.wgts
	}
	p = decodeRowInto(src, p, v, cur.nbrs, wrow)
	if deg < cLongDeg {
		cur.ip = p
	}
	cur.next = v + 1
	if c.weighted {
		return cur.nbrs, cur.wgts
	}
	return cur.nbrs, cur.unit(deg)
}

// seek repositions the stream cursors at row v by skimming from the
// start of v's block: short rows skip their varints, hub rows skip via
// their recorded length.
func (cur *Cursor) seek(v int32) {
	g, c := cur.g, cur.c
	b := int(v) / cBlock
	ip, lp := int(c.inOff[b]), int(c.longOff[b])
	for u := int32(b * cBlock); u < v; u++ {
		d := int(g.XAdj[u+1] - g.XAdj[u])
		if d == 0 {
			continue
		}
		if d >= cLongDeg {
			length, np := getUvarint64(c.inline, ip)
			ip = np
			lp += int(length)
			continue
		}
		k := d
		if c.weighted {
			k *= 2
		}
		ip = skipVarints(c.inline, ip, k)
	}
	cur.ip, cur.lp = ip, lp
}

// --- row codec ---------------------------------------------------------

// rowBytes returns the encoded byte length of one row: zigzag-varint
// deltas (first neighbour relative to v), with arc weights interleaved
// when ewgt is non-nil. s is the row's offset into ewgt.
func rowBytes(v int32, nbrs []int32, ewgt []int32, s int32) int {
	sz := 0
	prev := v
	for i, nb := range nbrs {
		sz += uvarintLen32(zigzag32(nb - prev))
		prev = nb
		if ewgt != nil {
			sz += uvarintLen32(zigzag32(ewgt[int(s)+i]))
		}
	}
	return sz
}

// encodeRow appends one row's encoding at dst[p:], returning the new
// position.
func encodeRow(dst []byte, p int, v int32, nbrs []int32, ewgt []int32, s int32) int {
	prev := v
	for i, nb := range nbrs {
		p = putUvarint32(dst, p, zigzag32(nb-prev))
		prev = nb
		if ewgt != nil {
			p = putUvarint32(dst, p, zigzag32(ewgt[int(s)+i]))
		}
	}
	return p
}

// decodeRowInto decodes len(nbrs) neighbours of v from src at p into
// nbrs (and weights into wgts when non-nil), returning the new
// position.
func decodeRowInto(src []byte, p int, v int32, nbrs []int32, wgts []int32) int {
	prev := v
	for i := range nbrs {
		u, np := getUvarint32(src, p)
		p = np
		prev += unzigzag32(u)
		nbrs[i] = prev
		if wgts != nil {
			w, nw := getUvarint32(src, p)
			p = nw
			wgts[i] = unzigzag32(w)
		}
	}
	return p
}

// zigzag32 maps signed deltas to unsigned varint-friendly values.
func zigzag32(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }

func unzigzag32(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// uvarintLen32 returns the LEB128 byte length of u.
func uvarintLen32(u uint32) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func uvarintLen64(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// putUvarint32 writes u at dst[p:] in LEB128, returning the new
// position.
func putUvarint32(dst []byte, p int, u uint32) int {
	for u >= 0x80 {
		dst[p] = byte(u) | 0x80
		u >>= 7
		p++
	}
	dst[p] = byte(u)
	return p + 1
}

func putUvarint64(dst []byte, p int, u uint64) int {
	for u >= 0x80 {
		dst[p] = byte(u) | 0x80
		u >>= 7
		p++
	}
	dst[p] = byte(u)
	return p + 1
}

// getUvarint32 reads a LEB128 value at src[p:].
func getUvarint32(src []byte, p int) (uint32, int) {
	b := src[p]
	if b < 0x80 {
		return uint32(b), p + 1
	}
	u := uint32(b & 0x7f)
	s := uint(7)
	for {
		p++
		b = src[p]
		u |= uint32(b&0x7f) << s
		if b < 0x80 {
			return u, p + 1
		}
		s += 7
	}
}

func getUvarint64(src []byte, p int) (uint64, int) {
	var u uint64
	var s uint
	for {
		b := src[p]
		p++
		u |= uint64(b&0x7f) << s
		if b < 0x80 {
			return u, p
		}
		s += 7
	}
}

// skipVarints advances p past k LEB128 values.
func skipVarints(src []byte, p, k int) int {
	for ; k > 0; p++ {
		if src[p] < 0x80 {
			k--
		}
	}
	return p
}
