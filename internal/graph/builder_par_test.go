package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/hostpar"
)

// randomBuilder fills a builder with a reproducible edge soup:
// duplicates, weight accumulation, self-loops, and (optionally) vertex
// weights — every deduplication path the serial builder handles.
func randomBuilder(n, records int, weighted bool, seed int64) *Builder {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < records; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		w := int32(1)
		if weighted {
			w = int32(rng.Intn(9) + 1)
		}
		b.AddWeightedEdge(u, v, w)
	}
	if weighted {
		for v := 0; v < n; v += 3 {
			b.SetVertexWeight(int32(v), int32(rng.Intn(100)))
		}
	}
	return b
}

func graphsEqual(t *testing.T, tag string, a, b *Graph) {
	t.Helper()
	if !int32SlicesEqual(a.XAdj, b.XAdj) {
		t.Fatalf("%s: XAdj differs", tag)
	}
	if !int32SlicesEqual(a.Adjncy, b.Adjncy) {
		t.Fatalf("%s: Adjncy differs", tag)
	}
	if (a.EWgt == nil) != (b.EWgt == nil) || !int32SlicesEqual(a.EWgt, b.EWgt) {
		t.Fatalf("%s: EWgt differs (nil-ness %v vs %v)", tag, a.EWgt == nil, b.EWgt == nil)
	}
	if (a.VWgt == nil) != (b.VWgt == nil) || !int32SlicesEqual(a.VWgt, b.VWgt) {
		t.Fatalf("%s: VWgt differs", tag)
	}
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelBuildBitIdentical compares the parallel bucket path
// against the legacy sort-and-merge on dense, sparse, weighted, and
// unweighted inputs across worker counts — CSR arrays, weight arrays,
// and weightedness detection must agree bit-for-bit.
func TestParallelBuildBitIdentical(t *testing.T) {
	defer func(m int) { parallelBuildMinEdges = m }(parallelBuildMinEdges)
	parallelBuildMinEdges = 1 // force even tiny builds through the parallel path
	cases := []struct {
		n, records int
		weighted   bool
	}{
		{1, 10, false},
		{13, 40, true},
		{500, 3000, false},
		{500, 3000, true},
		{4096, 50000, true},
		{4096, 50000, false},
		{30, 5000, true}, // heavy duplication: every pair merged many times
	}
	for ci, tc := range cases {
		b := randomBuilder(tc.n, tc.records, tc.weighted, int64(1000+ci))
		defer SetParallelBuild(SetParallelBuild(false))
		want := b.Build() // legacy reference
		SetParallelBuild(true)
		for _, w := range []int{1, 2, 8} {
			defer hostpar.SetWorkers(hostpar.SetWorkers(w))
			got := b.Build()
			graphsEqual(t, fmt.Sprintf("case %d workers %d", ci, w), want, got)
		}
	}
}

// TestParallelBuildUnitWeightMergeStaysWeighted: two unit-weight
// records of the same edge merge to weight 2, which must flip the graph
// to weighted on both paths.
func TestParallelBuildUnitWeightMergeStaysWeighted(t *testing.T) {
	defer func(m int) { parallelBuildMinEdges = m }(parallelBuildMinEdges)
	parallelBuildMinEdges = 1
	mk := func() *Builder {
		b := NewBuilder(4)
		b.AddEdge(0, 1)
		b.AddEdge(1, 0)
		b.AddEdge(2, 3)
		return b
	}
	defer SetParallelBuild(SetParallelBuild(false))
	want := mk().Build()
	SetParallelBuild(true)
	got := mk().Build()
	if want.EWgt == nil || got.EWgt == nil {
		t.Fatalf("merged duplicate should force weights: legacy nil=%v parallel nil=%v", want.EWgt == nil, got.EWgt == nil)
	}
	graphsEqual(t, "unit merge", want, got)
}

// TestParallelBuildSteadyStateAllocs guards the parallel builder's
// allocation budget: with the scratch pool warm, a Build call may
// allocate only its output arrays (XAdj, Adjncy, EWgt, VWgt) plus
// small fixed bookkeeping — not the O(E) working set.
func TestParallelBuildSteadyStateAllocs(t *testing.T) {
	defer hostpar.SetWorkers(hostpar.SetWorkers(2))
	b := randomBuilder(2000, 20000, true, 7)
	for i := 0; i < 3; i++ {
		b.Build() // warm the scratch pool
	}
	const calls = 10
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < calls; i++ {
		b.Build()
	}
	runtime.ReadMemStats(&m1)
	perCall := float64(m1.Mallocs-m0.Mallocs) / calls
	// 4 output arrays + per-chunk task closures and waiters; the O(E)
	// arc buffer and offset arrays must come from the pool.
	if perCall > 64 {
		t.Errorf("steady-state parallel Build: %.0f mallocs per call, want well under 64", perCall)
	}
	t.Logf("steady-state parallel Build: %.1f mallocs per call", perCall)
}

// BenchmarkBuilderBuild measures CSR assembly with the legacy global
// sort and the parallel bucket path.
func BenchmarkBuilderBuild(b *testing.B) {
	bld := randomBuilder(1<<17, 1<<20, false, 11)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"parallel", true}, {"legacy", false}} {
		b.Run(mode.name, func(b *testing.B) {
			defer SetParallelBuild(SetParallelBuild(mode.on))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := bld.Build()
				if g.NumVertices() != 1<<17 {
					b.Fatal("bad build")
				}
			}
		})
	}
}
