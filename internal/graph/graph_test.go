package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestBuilderDeduplicatesAndSymmetrizes(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 3)
	b.AddEdge(0, 0) // self-loop dropped
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	// The duplicate pair must have merged weight 2.
	if w := g.ArcWeight(g.XAdj[0]); w != 2 {
		t.Fatalf("merged weight = %d, want 2", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 7)
	b.SetVertexWeight(2, 9)
	g := b.Build()
	if g.VertexWeight(2) != 9 || g.VertexWeight(0) != 1 {
		t.Fatalf("vertex weights wrong: %v", g.VWgt)
	}
	if g.TotalVertexWeight() != 11 {
		t.Fatalf("total weight = %d, want 11", g.TotalVertexWeight())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{XAdj: []int32{0, 1, 1}, Adjncy: []int32{1}}
	if err := g.Validate(); err == nil {
		t.Fatal("asymmetric graph passed validation")
	}
}

func TestCutAndImbalance(t *testing.T) {
	g := path(4) // 0-1-2-3
	part := []int32{0, 0, 1, 1}
	if c := CutSize(g, part); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if imb := Imbalance(g, part, 2); imb != 0 {
		t.Fatalf("imbalance = %v, want 0", imb)
	}
	sep := SeparatorEdges(g, part)
	if len(sep) != 1 || sep[0] != [2]int32{1, 2} {
		t.Fatalf("separator = %v", sep)
	}
	bnd := BoundaryVertices(g, part)
	if !reflect.DeepEqual(bnd, []int32{1, 2}) {
		t.Fatalf("boundary = %v", bnd)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	label, n := Components(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if label[2] != label[3] || label[3] != label[4] {
		t.Fatal("connected vertices got different labels")
	}
	if label[0] == label[2] || label[0] == label[5] {
		t.Fatal("disconnected vertices share a label")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := path(5)
	sub, back := InducedSubgraph(g, []int32{1, 2, 4})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d", sub.NumVertices())
	}
	if sub.NumEdges() != 1 { // only 1-2 survives
		t.Fatalf("sub m = %d, want 1", sub.NumEdges())
	}
	if !reflect.DeepEqual(back, []int32{1, 2, 4}) {
		t.Fatalf("back map = %v", back)
	}
}

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddWeightedEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(5)+1))
	}
	// Make it connected for round-trip interest.
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestMETISRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(40, 120, seed)
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.XAdj, g.XAdj) || !reflect.DeepEqual(got.Adjncy, g.Adjncy) {
			t.Fatalf("seed %d: structure mismatch", seed)
		}
		if !reflect.DeepEqual(got.EWgt, g.EWgt) {
			t.Fatalf("seed %d: edge weights mismatch", seed)
		}
	}
}

func TestMETISVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetVertexWeight(0, 3)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VertexWeight(0) != 3 || got.VertexWeight(1) != 1 {
		t.Fatalf("vertex weights = %v", got.VWgt)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := randomGraph(30, 80, 9)
	g.EWgt = nil // pattern format drops weights
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.XAdj, g.XAdj) || !reflect.DeepEqual(got.Adjncy, g.Adjncy) {
		t.Fatal("structure mismatch after MatrixMarket round trip")
	}
}

func TestReadMETISRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "x y", "2 1\n3\n1\n", "2 5\n2\n1\n"} {
		if _, err := ReadMETIS(bytes.NewBufferString(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

// TestBlockRangeProperties: ranges partition [0,n) and BlockOwner
// inverts BlockRange.
func TestBlockRangeProperties(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%64 + 1
		prevEnd := 0
		for r := 0; r < p; r++ {
			begin, end := BlockRange(n, p, r)
			if begin != prevEnd || end < begin {
				return false
			}
			prevEnd = end
			for v := begin; v < end; v++ {
				if BlockOwner(n, p, int32(v)) != r {
					return false
				}
			}
		}
		return prevEnd == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryCounts(t *testing.T) {
	g := path(10)
	boundary, ghosts := BoundaryCounts(g, 2)
	// Blocks [0,5) and [5,10): one cut edge 4-5.
	if boundary[0] != 1 || boundary[1] != 1 {
		t.Fatalf("boundary = %v", boundary)
	}
	if ghosts[0] != 1 || ghosts[1] != 1 {
		t.Fatalf("ghosts = %v", ghosts)
	}
}

// TestBoundaryCountsMatchesMapReference cross-checks the epoch-stamp
// ghost dedup against the obvious hash-set formulation on random graphs
// and rank counts, including p > n (empty blocks).
func TestBoundaryCountsMatchesMapReference(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		seed int64
	}{{1, 0, 1}, {20, 60, 2}, {300, 2000, 3}, {50, 400, 4}} {
		g := randomGraph(tc.n, tc.m, tc.seed)
		for _, p := range []int{1, 2, 7, 64} {
			gotB, gotG := BoundaryCounts(g, p)
			wantB := make([]int, p)
			wantG := make([]int, p)
			seen := make(map[int64]struct{})
			for r := 0; r < p; r++ {
				begin, end := BlockRange(tc.n, p, r)
				for v := begin; v < end; v++ {
					isBoundary := false
					for _, w := range g.Neighbors(int32(v)) {
						if int(w) < begin || int(w) >= end {
							isBoundary = true
							key := int64(r)<<32 | int64(w)
							if _, ok := seen[key]; !ok {
								seen[key] = struct{}{}
								wantG[r]++
							}
						}
					}
					if isBoundary {
						wantB[r]++
					}
				}
			}
			for r := 0; r < p; r++ {
				if gotB[r] != wantB[r] || gotG[r] != wantG[r] {
					t.Fatalf("n=%d p=%d rank %d: got (boundary %d, ghosts %d), want (%d, %d)",
						tc.n, p, r, gotB[r], gotG[r], wantB[r], wantG[r])
				}
			}
		}
	}
}

// TestCutSizeSymmetric: the cut is invariant under part-id swap.
func TestCutSizeSymmetric(t *testing.T) {
	g := randomGraph(50, 150, 3)
	rng := rand.New(rand.NewSource(1))
	part := make([]int32, 50)
	flip := make([]int32, 50)
	for i := range part {
		part[i] = int32(rng.Intn(2))
		flip[i] = 1 - part[i]
	}
	if CutSize(g, part) != CutSize(g, flip) {
		t.Fatal("cut changed under part swap")
	}
}

func TestPartWeights(t *testing.T) {
	g := path(4)
	w := PartWeights(g, []int32{0, 1, 1, 2}, 3)
	if !reflect.DeepEqual(w, []int64{1, 2, 1}) {
		t.Fatalf("weights = %v", w)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := randomGraph(10, 20, 5)
	c := g.Clone()
	c.Adjncy[0] = -99
	if g.Adjncy[0] == -99 {
		t.Fatal("clone shares storage")
	}
}

// TestBuilderPropertyValidates: any random edge soup must build into a
// graph that passes Validate, with every added (non-loop) pair present.
func TestBuilderPropertyValidates(t *testing.T) {
	f := func(pairs []uint16, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		b := NewBuilder(n)
		type key struct{ u, v int32 }
		want := make(map[key]bool)
		for _, pr := range pairs {
			u := int32(int(pr>>8) % n)
			v := int32(int(pr&0xff) % n)
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[key{u, v}] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(want) {
			return false
		}
		for k := range want {
			found := false
			for _, nb := range g.Neighbors(k.u) {
				if nb == k.v {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestImbalanceProperty: imbalance is non-negative and 0 only for an
// exactly even split of unit weights.
func TestImbalanceProperty(t *testing.T) {
	f := func(sides []bool) bool {
		n := len(sides)
		if n < 2 {
			return true
		}
		b := NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		g := b.Build()
		part := make([]int32, n)
		n1 := 0
		for i, s := range sides {
			if s {
				part[i] = 1
				n1++
			}
		}
		imb := Imbalance(g, part, 2)
		if imb < 0 {
			return false
		}
		even := n%2 == 0 && n1 == n/2
		return !even || imb == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(25, 60, 11)
	g.EWgt = nil
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.XAdj, g.XAdj) || !reflect.DeepEqual(got.Adjncy, g.Adjncy) {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header\n0 1\n% more\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("0 -3\n")); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("zzz\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
