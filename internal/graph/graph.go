// Package graph provides the sparse-graph substrate shared by every
// partitioner in this repository: an immutable CSR (compressed sparse
// row) representation of undirected graphs with optional vertex and
// edge weights, a deduplicating builder, partition-quality metrics,
// connectivity, subgraph extraction, METIS and MatrixMarket I/O, and
// block-distribution helpers for the simulated message-passing runtime.
package graph

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/hostpar"
)

// Graph is an undirected graph in CSR form. Adjacency lists store each
// undirected edge {u,v} twice: once under u and once under v. The
// structure is immutable after construction; all partitioners treat a
// *Graph as shared read-only state, which is what makes it safe to hand
// the same topology to every simulated rank.
//
// VWgt and EWgt may be nil, meaning unit weights. When present, EWgt is
// aligned with Adjncy (the weight of the k-th directed arc), and the
// two copies of an undirected edge always carry equal weights.
//
// A graph may instead carry its adjacency in compressed form: when
// Packed is non-nil, Adjncy and EWgt are nil and the neighbour lists
// (plus arc weights, when present) live in Packed's varint block
// streams. XAdj and VWgt are always plain. Hot loops consume either
// representation through a Cursor; Compress and Plain convert between
// them without changing modeled results.
type Graph struct {
	XAdj   []int32 // offsets into Adjncy, length NumVertices()+1
	Adjncy []int32 // concatenated adjacency lists, nil when Packed
	VWgt   []int32 // vertex weights, nil for unit
	EWgt   []int32 // arc weights aligned with Adjncy, nil for unit
	Packed *CGraph // compressed adjacency; nil for plain CSR
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.XAdj) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	if len(g.XAdj) == 0 {
		return 0
	}
	return int(g.XAdj[len(g.XAdj)-1]) / 2
}

// Degree returns the number of neighbours of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.XAdj[v+1] - g.XAdj[v])
}

// Neighbors returns the adjacency list of v as a shared sub-slice; the
// caller must not modify it. On a compressed graph this decodes a fresh
// slice per call — cold callers stay correct, hot loops should hold a
// Cursor instead.
func (g *Graph) Neighbors(v int32) []int32 {
	if g.Packed != nil {
		cur := GetCursor(g)
		nbrs, _ := cur.Arcs(v)
		out := append([]int32(nil), nbrs...)
		cur.Release()
		return out
	}
	return g.Adjncy[g.XAdj[v]:g.XAdj[v+1]]
}

// VertexWeight returns the weight of v (1 if unweighted).
func (g *Graph) VertexWeight(v int32) int32 {
	if g.VWgt == nil {
		return 1
	}
	return g.VWgt[v]
}

// ArcWeight returns the weight of the arc at Adjncy index k (1 if
// unweighted). It panics on a weighted compressed graph, where the
// aligned EWgt array does not exist — use a Cursor there.
func (g *Graph) ArcWeight(k int32) int32 {
	if g.EWgt == nil {
		if g.Packed != nil && g.Packed.weighted {
			panic("graph: ArcWeight on a weighted compressed graph; use a Cursor")
		}
		return 1
	}
	return g.EWgt[k]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	if g.VWgt == nil {
		return int64(g.NumVertices())
	}
	var t int64
	for _, w := range g.VWgt {
		t += int64(w)
	}
	return t
}

// MaxDegree returns the largest vertex degree, or 0 for the empty
// graph.
func (g *Graph) MaxDegree() int {
	mx := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > mx {
			mx = d
		}
	}
	return mx
}

// validateGrain is the minimum vertices per parallel Validate chunk.
const validateGrain = 256

// Validate checks structural invariants: monotone XAdj, in-range
// neighbour ids, no self-loops, and symmetric adjacency with matching
// arc weights. The symmetry check sorts and aggregates each row, then
// binary-searches the mirror row — the same scheme the readers use —
// chunked over hostpar instead of the old O(M) directed-arc map. All
// errors are deterministic: scan errors report the first offending
// (vertex, arc) in row order, asymmetry reports the smallest (u,v).
// It is O(M log M) and intended for tests and after I/O.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return errors.New("graph: XAdj must have length >= 1")
	}
	if g.XAdj[0] != 0 {
		return errors.New("graph: XAdj[0] must be 0")
	}
	for v := 0; v < n; v++ {
		if g.XAdj[v+1] < g.XAdj[v] {
			return fmt.Errorf("graph: XAdj not monotone at vertex %d", v)
		}
	}
	if g.Packed == nil {
		if int(g.XAdj[n]) != len(g.Adjncy) {
			return fmt.Errorf("graph: XAdj[n]=%d but len(Adjncy)=%d", g.XAdj[n], len(g.Adjncy))
		}
		if g.EWgt != nil && len(g.EWgt) != len(g.Adjncy) {
			return fmt.Errorf("graph: len(EWgt)=%d want %d", len(g.EWgt), len(g.Adjncy))
		}
	}
	if g.VWgt != nil && len(g.VWgt) != n {
		return fmt.Errorf("graph: len(VWgt)=%d want %d", len(g.VWgt), n)
	}
	// Pass 1: per-row scan errors (row order) + sorted weight-sum
	// aggregation of each row at its XAdj offset. Chunks cover
	// ascending contiguous vertex ranges, so the first non-nil chunk
	// error is the globally first scan error.
	m := int(g.XAdj[n])
	aggNbr := make([]int32, m)
	aggW := make([]int64, m)
	aggLen := make([]int32, n+1)
	nc := hostpar.NumChunks(n, validateGrain)
	scanErrs := make([]error, nc)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		cur := GetCursor(g)
		defer cur.Release()
		var scratch []int64
		for v := lo; v < hi; v++ {
			nbrs, wgts := cur.Arcs(int32(v))
			for _, nb := range nbrs {
				if nb < 0 || int(nb) >= n {
					scanErrs[c] = fmt.Errorf("graph: neighbour %d of vertex %d out of range", nb, v)
					return
				}
				if nb == int32(v) {
					scanErrs[c] = fmt.Errorf("graph: self-loop at vertex %d", v)
					return
				}
			}
			scratch = grow(scratch, len(nbrs))
			for i, nb := range nbrs {
				scratch[i] = packArc(nb, wgts[i])
			}
			row := scratch[:len(nbrs)]
			slices.Sort(row)
			base := int(g.XAdj[v])
			cnt := 0
			for i := 0; i < len(row); {
				nb := arcTarget(row[i])
				var sum int64
				for ; i < len(row) && arcTarget(row[i]) == nb; i++ {
					sum += int64(arcWeight(row[i]))
				}
				aggNbr[base+cnt] = nb
				aggW[base+cnt] = sum
				cnt++
			}
			aggLen[v] = int32(cnt)
		}
	})
	for _, err := range scanErrs {
		if err != nil {
			return err
		}
	}
	// Pass 2: every aggregated arc must find an equal-sum mirror. Rows
	// and their neighbours are scanned ascending, so the first miss in
	// a chunk is the chunk's smallest (u,v); the first chunk with a
	// miss holds the global minimum.
	type asym struct{ u, v int32 }
	misses := make([]*asym, nc)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		for u := lo; u < hi; u++ {
			base := int(g.XAdj[u])
			for i := 0; i < int(aggLen[u]); i++ {
				v := aggNbr[base+i]
				vb := int(g.XAdj[v])
				mirror := aggNbr[vb : vb+int(aggLen[v])]
				j, ok := slices.BinarySearch(mirror, int32(u))
				if !ok || aggW[vb+j] != aggW[base+i] {
					misses[c] = &asym{int32(u), v}
					return
				}
			}
		}
	})
	for _, a := range misses {
		if a != nil {
			return fmt.Errorf("graph: asymmetric edge {%d,%d}", a.u, a.v)
		}
	}
	return nil
}

// Clone returns a deep copy of g. The compressed payload, when present,
// is shared: a CGraph is immutable after Compress.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		XAdj:   append([]int32(nil), g.XAdj...),
		Packed: g.Packed,
	}
	if g.Adjncy != nil {
		c.Adjncy = append([]int32(nil), g.Adjncy...)
	}
	if g.VWgt != nil {
		c.VWgt = append([]int32(nil), g.VWgt...)
	}
	if g.EWgt != nil {
		c.EWgt = append([]int32(nil), g.EWgt...)
	}
	return c
}

// String summarises the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}
