// Package graph provides the sparse-graph substrate shared by every
// partitioner in this repository: an immutable CSR (compressed sparse
// row) representation of undirected graphs with optional vertex and
// edge weights, a deduplicating builder, partition-quality metrics,
// connectivity, subgraph extraction, METIS and MatrixMarket I/O, and
// block-distribution helpers for the simulated message-passing runtime.
package graph

import (
	"errors"
	"fmt"
)

// Graph is an undirected graph in CSR form. Adjacency lists store each
// undirected edge {u,v} twice: once under u and once under v. The
// structure is immutable after construction; all partitioners treat a
// *Graph as shared read-only state, which is what makes it safe to hand
// the same topology to every simulated rank.
//
// VWgt and EWgt may be nil, meaning unit weights. When present, EWgt is
// aligned with Adjncy (the weight of the k-th directed arc), and the
// two copies of an undirected edge always carry equal weights.
type Graph struct {
	XAdj   []int32 // offsets into Adjncy, length NumVertices()+1
	Adjncy []int32 // concatenated adjacency lists, length 2*NumEdges()
	VWgt   []int32 // vertex weights, nil for unit
	EWgt   []int32 // arc weights aligned with Adjncy, nil for unit
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.XAdj) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adjncy) / 2 }

// Degree returns the number of neighbours of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.XAdj[v+1] - g.XAdj[v])
}

// Neighbors returns the adjacency list of v as a shared sub-slice; the
// caller must not modify it.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adjncy[g.XAdj[v]:g.XAdj[v+1]]
}

// VertexWeight returns the weight of v (1 if unweighted).
func (g *Graph) VertexWeight(v int32) int32 {
	if g.VWgt == nil {
		return 1
	}
	return g.VWgt[v]
}

// ArcWeight returns the weight of the arc at Adjncy index k (1 if
// unweighted).
func (g *Graph) ArcWeight(k int32) int32 {
	if g.EWgt == nil {
		return 1
	}
	return g.EWgt[k]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	if g.VWgt == nil {
		return int64(g.NumVertices())
	}
	var t int64
	for _, w := range g.VWgt {
		t += int64(w)
	}
	return t
}

// MaxDegree returns the largest vertex degree, or 0 for the empty
// graph.
func (g *Graph) MaxDegree() int {
	mx := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > mx {
			mx = d
		}
	}
	return mx
}

// Validate checks structural invariants: monotone XAdj, in-range
// neighbour ids, no self-loops, and symmetric adjacency with matching
// arc weights. It is O(M log M) and intended for tests and after I/O.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return errors.New("graph: XAdj must have length >= 1")
	}
	if g.XAdj[0] != 0 {
		return errors.New("graph: XAdj[0] must be 0")
	}
	for v := 0; v < n; v++ {
		if g.XAdj[v+1] < g.XAdj[v] {
			return fmt.Errorf("graph: XAdj not monotone at vertex %d", v)
		}
	}
	if int(g.XAdj[n]) != len(g.Adjncy) {
		return fmt.Errorf("graph: XAdj[n]=%d but len(Adjncy)=%d", g.XAdj[n], len(g.Adjncy))
	}
	if g.VWgt != nil && len(g.VWgt) != n {
		return fmt.Errorf("graph: len(VWgt)=%d want %d", len(g.VWgt), n)
	}
	if g.EWgt != nil && len(g.EWgt) != len(g.Adjncy) {
		return fmt.Errorf("graph: len(EWgt)=%d want %d", len(g.EWgt), len(g.Adjncy))
	}
	// Symmetry check via a weight map of directed arcs.
	type arc struct{ u, v int32 }
	seen := make(map[arc]int64, len(g.Adjncy))
	for u := int32(0); u < int32(n); u++ {
		for k := g.XAdj[u]; k < g.XAdj[u+1]; k++ {
			v := g.Adjncy[k]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: neighbour %d of vertex %d out of range", v, u)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			seen[arc{u, v}] += int64(g.ArcWeight(k))
		}
	}
	for a, w := range seen {
		if seen[arc{a.v, a.u}] != w {
			return fmt.Errorf("graph: asymmetric edge {%d,%d}", a.u, a.v)
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		XAdj:   append([]int32(nil), g.XAdj...),
		Adjncy: append([]int32(nil), g.Adjncy...),
	}
	if g.VWgt != nil {
		c.VWgt = append([]int32(nil), g.VWgt...)
	}
	if g.EWgt != nil {
		c.EWgt = append([]int32(nil), g.EWgt...)
	}
	return c
}

// String summarises the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}
