package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// randomGraph builds a valid random graph: n vertices, ~avgDeg average
// degree, optionally weighted, with a few hub vertices well above
// cLongDeg so both streams are exercised.
func randomGraph(t testing.TB, n, avgDeg int, weighted bool, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	edges := n * avgDeg / 2
	for i := 0; i < edges; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if weighted {
			b.AddWeightedEdge(u, v, int32(1+rng.Intn(9)))
		} else {
			b.AddEdge(u, v)
		}
	}
	// A few hubs: connect vertex 0..2 to many targets so some rows land
	// in the long stream.
	for h := int32(0); h < 3 && int(h) < n; h++ {
		for i := 0; i < 80 && i < n-1; i++ {
			v := int32((int(h) + 1 + i) % n)
			if v == h {
				continue
			}
			if weighted {
				b.AddWeightedEdge(h, v, 2)
			} else {
				b.AddEdge(h, v)
			}
		}
	}
	return b.Build()
}

func sameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if len(want.XAdj) != len(got.XAdj) {
		t.Fatalf("XAdj length %d vs %d", len(want.XAdj), len(got.XAdj))
	}
	for i := range want.XAdj {
		if want.XAdj[i] != got.XAdj[i] {
			t.Fatalf("XAdj[%d]=%d want %d", i, got.XAdj[i], want.XAdj[i])
		}
	}
	if len(want.Adjncy) != len(got.Adjncy) {
		t.Fatalf("Adjncy length %d vs %d", len(want.Adjncy), len(got.Adjncy))
	}
	for i := range want.Adjncy {
		if want.Adjncy[i] != got.Adjncy[i] {
			t.Fatalf("Adjncy[%d]=%d want %d", i, got.Adjncy[i], want.Adjncy[i])
		}
	}
	if (want.EWgt == nil) != (got.EWgt == nil) {
		t.Fatalf("EWgt nil-ness %v vs %v", want.EWgt == nil, got.EWgt == nil)
	}
	for i := range want.EWgt {
		if want.EWgt[i] != got.EWgt[i] {
			t.Fatalf("EWgt[%d]=%d want %d", i, got.EWgt[i], want.EWgt[i])
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		weighted bool
		n        int
		deg      int
	}{
		{"unweighted", false, 500, 6},
		{"weighted", true, 500, 6},
		{"tiny", false, 3, 1},
		{"sparse-with-isolated", false, 1000, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGraph(t, tc.n, tc.deg, tc.weighted, 42)
			cg := graph.Compress(g)
			if !cg.Compressed() {
				t.Fatal("Compress did not compress")
			}
			if cg.Adjncy != nil || cg.EWgt != nil {
				t.Fatal("compressed graph retains plain arrays")
			}
			if graph.Compress(cg) != cg {
				t.Fatal("Compress not idempotent")
			}
			if cg.NumEdges() != g.NumEdges() || cg.NumVertices() != g.NumVertices() {
				t.Fatalf("size mismatch: %v vs %v", cg, g)
			}
			sameGraph(t, g, cg.Plain())
			if p := g.Plain(); p != g {
				t.Fatal("Plain on a plain graph must return it unchanged")
			}
		})
	}
}

func TestCursorMatchesNeighbors(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(t, 800, 5, weighted, 7)
		cg := graph.Compress(g)
		for _, tg := range []*graph.Graph{g, cg} {
			cur := tg.NewCursor()
			// Sequential ascending scan (fast path).
			for v := int32(0); v < int32(tg.NumVertices()); v++ {
				nbrs, wgts := cur.Arcs(v)
				want := g.Neighbors(v)
				if len(nbrs) != len(want) {
					t.Fatalf("v=%d: %d nbrs want %d", v, len(nbrs), len(want))
				}
				for i := range want {
					if nbrs[i] != want[i] {
						t.Fatalf("v=%d nbr[%d]=%d want %d", v, i, nbrs[i], want[i])
					}
					if w := g.ArcWeight(g.XAdj[v] + int32(i)); wgts[i] != w {
						t.Fatalf("v=%d wgt[%d]=%d want %d", v, i, wgts[i], w)
					}
				}
			}
			// Random access (seek path).
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 2000; i++ {
				v := int32(rng.Intn(tg.NumVertices()))
				nbrs, _ := cur.Arcs(v)
				want := g.Neighbors(v)
				if len(nbrs) != len(want) {
					t.Fatalf("seek v=%d: %d nbrs want %d", v, len(nbrs), len(want))
				}
				for j := range want {
					if nbrs[j] != want[j] {
						t.Fatalf("seek v=%d nbr[%d]=%d want %d", v, j, nbrs[j], want[j])
					}
				}
			}
		}
	}
}

// Compressed Neighbors decodes a fresh slice; it must match the plain
// adjacency, and mutating it must not corrupt the stream.
func TestCompressedNeighborsFallback(t *testing.T) {
	g := randomGraph(t, 300, 4, true, 3)
	cg := graph.Compress(g)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		nb := cg.Neighbors(v)
		want := g.Neighbors(v)
		if len(nb) != len(want) {
			t.Fatalf("v=%d: %d nbrs want %d", v, len(nb), len(want))
		}
		for i := range want {
			if nb[i] != want[i] {
				t.Fatalf("v=%d nbr[%d]=%d want %d", v, i, nb[i], want[i])
			}
		}
		for i := range nb {
			nb[i] = -1 // fresh slice: must not affect the stream
		}
	}
	sameGraph(t, g, cg.Plain())
}

func TestCompressWorkerCountDeterminism(t *testing.T) {
	g := randomGraph(t, 3000, 6, true, 11)
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	var ref *graph.Graph
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		cg := graph.Compress(g)
		pl := cg.Plain()
		if ref == nil {
			ref = pl
			continue
		}
		sameGraph(t, ref, pl)
		if cg.AdjacencyBytes() != graph.Compress(g).AdjacencyBytes() {
			t.Fatalf("workers=%d: compressed size differs", w)
		}
	}
}

func TestArcWeightPanicsOnWeightedCompressed(t *testing.T) {
	g := randomGraph(t, 100, 4, true, 5)
	cg := graph.Compress(g)
	defer func() {
		if recover() == nil {
			t.Fatal("ArcWeight on weighted compressed graph did not panic")
		}
	}()
	cg.ArcWeight(0)
}

func TestValidateCompressed(t *testing.T) {
	g := randomGraph(t, 600, 5, true, 21)
	if err := g.Validate(); err != nil {
		t.Fatalf("plain Validate: %v", err)
	}
	if err := graph.Compress(g).Validate(); err != nil {
		t.Fatalf("compressed Validate: %v", err)
	}
}

func TestValidateDeterministicErrors(t *testing.T) {
	// Asymmetric: 0 lists 1 but 1 does not list 0. The error must name
	// the smallest (u,v) pair regardless of worker count.
	bad := &graph.Graph{
		XAdj:   []int32{0, 1, 1, 2, 3},
		Adjncy: []int32{1, 3, 2},
	}
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		err := bad.Validate()
		if err == nil || err.Error() != "graph: asymmetric edge {0,1}" {
			t.Fatalf("workers=%d: got %v", w, err)
		}
	}
	loop := &graph.Graph{XAdj: []int32{0, 1}, Adjncy: []int32{0}}
	if err := loop.Validate(); err == nil || err.Error() != "graph: self-loop at vertex 0" {
		t.Fatalf("self-loop: got %v", err)
	}
	oor := &graph.Graph{XAdj: []int32{0, 1}, Adjncy: []int32{7}}
	if err := oor.Validate(); err == nil || err.Error() != "graph: neighbour 7 of vertex 0 out of range" {
		t.Fatalf("out of range: got %v", err)
	}
	// Duplicate arcs with matching symmetric sums stay legal.
	dup := &graph.Graph{
		XAdj:   []int32{0, 2, 4},
		Adjncy: []int32{1, 1, 0, 0},
		EWgt:   []int32{2, 3, 4, 1},
	}
	if err := dup.Validate(); err != nil {
		t.Fatalf("symmetric duplicate arcs must validate: %v", err)
	}
}

// Acceptance bound: compressed adjacency at most 60% of the plain
// []int32 Adjncy bytes on every suite graph.
func TestCompressionRatioSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short")
	}
	for _, gg := range gen.Suite(0.05) {
		g := gg.G
		raw := 4 * int64(len(g.Adjncy))
		if g.EWgt != nil {
			raw += 4 * int64(len(g.EWgt))
		}
		comp := graph.Compress(g).AdjacencyBytes()
		ratio := float64(comp) / float64(raw)
		t.Logf("%-18s n=%-8d m=%-8d raw=%-9d comp=%-9d ratio=%.3f",
			gg.Name, g.NumVertices(), g.NumEdges(), raw, comp, ratio)
		if ratio > 0.60 {
			t.Errorf("%s: compressed/raw = %.3f > 0.60", gg.Name, ratio)
		}
	}
}

// Cursor sequential iteration over a compressed graph must not allocate
// in steady state.
func TestCursorSteadyStateAllocs(t *testing.T) {
	g := randomGraph(t, 2000, 6, true, 17)
	cg := graph.Compress(g)
	cur := cg.NewCursor()
	n := int32(cg.NumVertices())
	// Warm up scratch.
	for v := int32(0); v < n; v++ {
		cur.Arcs(v)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for v := int32(0); v < n; v++ {
			cur.Arcs(v)
		}
	})
	if allocs > 0 {
		t.Fatalf("cursor sequential scan allocates %.1f per run", allocs)
	}
}

func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(4), true)
	f.Add(int64(2), uint16(200), uint8(2), false)
	f.Add(int64(3), uint16(5), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, degRaw uint8, weighted bool) {
		n := int(nRaw)%1000 + 2
		deg := int(degRaw)%12 + 1
		g := randomGraph(t, n, deg, weighted, seed)
		cg := graph.Compress(g)
		pl := cg.Plain()
		for i := range g.Adjncy {
			if g.Adjncy[i] != pl.Adjncy[i] {
				t.Fatalf("Adjncy[%d]=%d want %d", i, pl.Adjncy[i], g.Adjncy[i])
			}
		}
		for i := range g.EWgt {
			if g.EWgt[i] != pl.EWgt[i] {
				t.Fatalf("EWgt[%d]=%d want %d", i, pl.EWgt[i], g.EWgt[i])
			}
		}
		cur := cg.NewCursor()
		for v := int32(0); v < int32(n); v++ {
			nbrs, wgts := cur.Arcs(v)
			want := g.Neighbors(v)
			if len(nbrs) != len(want) {
				t.Fatalf("v=%d: %d nbrs want %d", v, len(nbrs), len(want))
			}
			for i := range want {
				if nbrs[i] != want[i] || wgts[i] != g.ArcWeight(g.XAdj[v]+int32(i)) {
					t.Fatalf("v=%d arc %d mismatch", v, i)
				}
			}
		}
	})
}
