package graph_test

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkIORoundTrip serialises a suite-scale graph and parses it
// back, exercising the sort-based reader validation plus the parallel
// CSR builder end to end.
func BenchmarkIORoundTrip(b *testing.B) {
	g := gen.Grid2D(200, 200).G
	b.Run("metis", func(b *testing.B) {
		var buf bytes.Buffer
		if err := graph.WriteMETIS(&buf, g); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadMETIS(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumEdges() != g.NumEdges() {
				b.Fatalf("edges %d, want %d", got.NumEdges(), g.NumEdges())
			}
		}
	})
	b.Run("matrixmarket", func(b *testing.B) {
		var buf bytes.Buffer
		if err := graph.WriteMatrixMarket(&buf, g); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := graph.ReadMatrixMarket(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if got.NumEdges() != g.NumEdges() {
				b.Fatalf("edges %d, want %d", got.NumEdges(), g.NumEdges())
			}
		}
	})
}

// TestIORoundTripPreservesGraph pins the round trip the benchmark
// measures: read(write(g)) must reproduce the adjacency exactly.
func TestIORoundTripPreservesGraph(t *testing.T) {
	g := gen.Grid2D(30, 17).G
	var buf bytes.Buffer
	if err := graph.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := graph.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := range g.XAdj {
		if got.XAdj[i] != g.XAdj[i] {
			t.Fatalf("XAdj[%d] = %d, want %d", i, got.XAdj[i], g.XAdj[i])
		}
	}
	for i := range g.Adjncy {
		if got.Adjncy[i] != g.Adjncy[i] {
			t.Fatalf("Adjncy[%d] = %d, want %d", i, got.Adjncy[i], g.Adjncy[i])
		}
	}
}
