package graph_test

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkIORoundTrip serialises a suite-scale graph and parses it
// back. The serial lanes measure the legacy streaming readers; the
// default lanes measure the byte-slice parallel parsers (the ≥4×
// throughput acceptance bound compares metis vs metis-serial), and the
// write lanes pin that the buffered AppendInt writers are not slower
// than the readers.
func BenchmarkIORoundTrip(b *testing.B) {
	g := gen.Grid2D(200, 200).G
	benchRead := func(data []byte, mm, parallel bool) func(*testing.B) {
		return func(b *testing.B) {
			defer graph.SetParallelParse(graph.SetParallelParse(parallel))
			read := graph.ReadMETIS
			if mm {
				read = graph.ReadMatrixMarket
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := read(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if got.NumEdges() != g.NumEdges() {
					b.Fatalf("edges %d, want %d", got.NumEdges(), g.NumEdges())
				}
			}
		}
	}
	var metis, mm bytes.Buffer
	if err := graph.WriteMETIS(&metis, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteMatrixMarket(&mm, g); err != nil {
		b.Fatal(err)
	}
	b.Run("metis", benchRead(metis.Bytes(), false, true))
	b.Run("metis-serial", benchRead(metis.Bytes(), false, false))
	b.Run("matrixmarket", benchRead(mm.Bytes(), true, true))
	b.Run("matrixmarket-serial", benchRead(mm.Bytes(), true, false))
	b.Run("write-metis", func(b *testing.B) {
		b.SetBytes(int64(metis.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(metis.Len())
			if err := graph.WriteMETIS(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-matrixmarket", func(b *testing.B) {
		b.SetBytes(int64(mm.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(mm.Len())
			if err := graph.WriteMatrixMarket(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestIORoundTripPreservesGraph pins the round trip the benchmark
// measures: read(write(g)) must reproduce the adjacency exactly.
func TestIORoundTripPreservesGraph(t *testing.T) {
	g := gen.Grid2D(30, 17).G
	var buf bytes.Buffer
	if err := graph.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := graph.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := range g.XAdj {
		if got.XAdj[i] != g.XAdj[i] {
			t.Fatalf("XAdj[%d] = %d, want %d", i, got.XAdj[i], g.XAdj[i])
		}
	}
	for i := range g.Adjncy {
		if got.Adjncy[i] != g.Adjncy[i] {
			t.Fatalf("Adjncy[%d] = %d, want %d", i, got.Adjncy[i], g.Adjncy[i])
		}
	}
}
