package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a validated CSR
// Graph. Duplicate edges are merged (summing weights) and self-loops
// are dropped, so generators can add edges carelessly.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	ws    []int32
	vwgt  []int32
	wsAny bool // true if any non-unit edge weight was added
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected unit-weight edge {u, v}. Self-loops
// are ignored. Panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u, v} with weight w.
// Adding the same pair again accumulates weight.
func (b *Builder) AddWeightedEdge(u, v int32, w int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	if w != 1 {
		b.wsAny = true
	}
}

// SetVertexWeight assigns weight w to vertex v (default 1).
func (b *Builder) SetVertexWeight(v int32, w int32) {
	if b.vwgt == nil {
		b.vwgt = make([]int32, b.n)
		for i := range b.vwgt {
			b.vwgt[i] = 1
		}
	}
	b.vwgt[v] = w
}

// Build produces the CSR graph. The builder remains usable (more edges
// may be added and Build called again). Large builds route to the
// parallel per-vertex bucket path (see builder_par.go) unless
// SetParallelBuild disabled it; the two paths are bit-identical.
func (b *Builder) Build() *Graph {
	if parallelBuild.Load() && len(b.us) >= parallelBuildMinEdges {
		return b.buildParallel()
	}
	return b.buildSerial()
}

// buildSerial is the legacy global sort-and-merge path, kept verbatim
// as the reference the parallel path is tested against.
func (b *Builder) buildSerial() *Graph {
	// Sort edge records by (u, v) to merge duplicates.
	idx := make([]int32, len(b.us))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, c := idx[i], idx[j]
		if b.us[a] != b.us[c] {
			return b.us[a] < b.us[c]
		}
		return b.vs[a] < b.vs[c]
	})
	type rec struct {
		u, v, w int32
	}
	merged := make([]rec, 0, len(idx))
	for _, k := range idx {
		u, v, w := b.us[k], b.vs[k], b.ws[k]
		if len(merged) > 0 && merged[len(merged)-1].u == u && merged[len(merged)-1].v == v {
			merged[len(merged)-1].w += w
			continue
		}
		merged = append(merged, rec{u, v, w})
	}
	// Count degrees (each undirected edge contributes to both rows).
	xadj := make([]int32, b.n+1)
	for _, e := range merged {
		xadj[e.u+1]++
		xadj[e.v+1]++
	}
	for i := 0; i < b.n; i++ {
		xadj[i+1] += xadj[i]
	}
	adj := make([]int32, xadj[b.n])
	var ewgt []int32
	weighted := b.wsAny
	if !weighted {
		// Duplicate merging may have produced non-unit weights.
		for _, e := range merged {
			if e.w != 1 {
				weighted = true
				break
			}
		}
	}
	if weighted {
		ewgt = make([]int32, len(adj))
	}
	cursor := append([]int32(nil), xadj[:b.n]...)
	for _, e := range merged {
		adj[cursor[e.u]] = e.v
		if weighted {
			ewgt[cursor[e.u]] = e.w
		}
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		if weighted {
			ewgt[cursor[e.v]] = e.w
		}
		cursor[e.v]++
	}
	g := &Graph{XAdj: xadj, Adjncy: adj, EWgt: ewgt}
	if b.vwgt != nil {
		g.VWgt = append([]int32(nil), b.vwgt...)
	}
	return g
}

// FromEdges is a convenience constructor building an unweighted graph
// from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
