package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// parseBoth runs a reader against the serial and parallel paths and
// asserts they produce identical graphs or identical errors, returning
// the parallel result.
func parseBoth(t *testing.T, data []byte, mm bool) (*graph.Graph, error) {
	t.Helper()
	read := graph.ReadMETIS
	if mm {
		read = graph.ReadMatrixMarket
	}
	graph.SetParallelParse(false)
	sg, serr := read(bytes.NewReader(data))
	graph.SetParallelParse(true)
	pg, perr := read(bytes.NewReader(data))
	if (serr == nil) != (perr == nil) {
		t.Fatalf("error mismatch: serial=%v parallel=%v\ninput: %q", serr, perr, data)
	}
	if serr != nil {
		if serr.Error() != perr.Error() {
			t.Fatalf("error text mismatch:\nserial:   %v\nparallel: %v\ninput: %q", serr, perr, data)
		}
		return nil, perr
	}
	assertSameParsedGraph(t, sg, pg, data)
	return pg, nil
}

func assertSameParsedGraph(t *testing.T, want, got *graph.Graph, input []byte) {
	t.Helper()
	fail := func(f string, args ...any) {
		t.Helper()
		t.Fatalf(f+"\ninput: %q", append(args, input)...)
	}
	if want.NumVertices() != got.NumVertices() {
		fail("n=%d want %d", got.NumVertices(), want.NumVertices())
	}
	for i := range want.XAdj {
		if want.XAdj[i] != got.XAdj[i] {
			fail("XAdj[%d]=%d want %d", i, got.XAdj[i], want.XAdj[i])
		}
	}
	for i := range want.Adjncy {
		if want.Adjncy[i] != got.Adjncy[i] {
			fail("Adjncy[%d]=%d want %d", i, got.Adjncy[i], want.Adjncy[i])
		}
	}
	if (want.EWgt == nil) != (got.EWgt == nil) {
		fail("EWgt nil-ness %v want %v", got.EWgt == nil, want.EWgt == nil)
	}
	for i := range want.EWgt {
		if want.EWgt[i] != got.EWgt[i] {
			fail("EWgt[%d]=%d want %d", i, got.EWgt[i], want.EWgt[i])
		}
	}
	if (want.VWgt == nil) != (got.VWgt == nil) {
		fail("VWgt nil-ness %v want %v", got.VWgt == nil, want.VWgt == nil)
	}
	for i := range want.VWgt {
		if want.VWgt[i] != got.VWgt[i] {
			fail("VWgt[%d]=%d want %d", i, got.VWgt[i], want.VWgt[i])
		}
	}
}

// metisCases covers the adversarial shapes the parallel chunking must
// not change: comments and blank lines between vertex lines, CRLF,
// vertex and edge weights, unicode whitespace, trailing blank lines,
// truncation, and every serial error path.
var metisCases = []struct {
	name string
	in   string
}{
	{"plain", "3 2\n2\n1 3\n2\n"},
	{"comments-everywhere", "% c\n\n3 2\n% mid\n2\n\n1 3\n% tail\n2\n\n\n"},
	{"crlf", "3 2\r\n2\r\n1 3\r\n2\r\n"},
	{"edge-weights", "3 2 1\n2 7\n1 7 3 9\n2 9\n"},
	{"vertex-weights", "3 2 10\n5 2\n6 1 3\n7 2\n"},
	{"both-weights", "3 2 11\n5 2 7\n6 1 7 3 9\n7 2 9\n"},
	{"indented-comment", "  % note\n2 1\n2\n1\n"},
	{"unicode-space", "2 1\n2 \n1\n"},
	{"empty-vertex-lines", "3 1\n2\n1\n\n% pad\n"},
	{"truncated", "3 2\n2\n1 3\n"},
	{"empty", ""},
	{"only-comments", "% a\n% b\n"},
	{"bad-header", "x 2\n"},
	{"short-header", "7\n"},
	{"bad-fmt", "2 1 12\n2\n1\n"},
	{"bad-neighbour", "2 1\nz\n1\n"},
	{"neighbour-oor", "2 1\n3\n1\n"},
	{"self-loop", "2 1\n1\n1\n"},
	{"duplicate", "2 2\n2 2\n1 1\n"},
	{"asymmetric", "3 2\n2\n1\n2\n"},
	{"weight-asymmetric", "2 1 1\n2 5\n1 6\n"},
	{"missing-edge-weight", "2 1 1\n2\n1 5\n"},
	{"missing-vertex-weight", "2 1 10\n\n1\n"},
	{"edge-count-mismatch", "3 5\n2\n1 3\n2\n"},
	{"huge-number", "2 1\n99999999999999999999999\n1\n"},
	{"negative-neighbour", "2 1\n-1\n1\n"},
	{"no-trailing-newline", "3 2\n2\n1 3\n2"},
}

func TestParallelMETISMatchesSerial(t *testing.T) {
	defer graph.SetParallelParse(graph.SetParallelParse(true))
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		for _, tc := range metisCases {
			t.Run(tc.name, func(t *testing.T) {
				parseBoth(t, []byte(tc.in), false)
			})
		}
	}
}

var mmCases = []struct {
	name string
	in   string
}{
	{"pattern-symmetric", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"},
	{"values", "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1.5\n3 2 2.5\n"},
	{"general", "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 2\n2 1\n2 3\n3 2\n"},
	{"comments-blanks", "%%MatrixMarket matrix coordinate pattern symmetric\n% c\n\n3 3 2\n\n2 1\n% mid\n3 2\n\n"},
	{"crlf", "%%MatrixMarket matrix coordinate pattern symmetric\r\n3 3 1\r\n2 1\r\n"},
	{"diagonal-dropped", "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n"},
	{"not-mm", "hello\n1 1 0\n"},
	{"not-coordinate", "%%MatrixMarket matrix array real general\n"},
	{"bad-size", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3\n"},
	{"bad-size-int", "%%MatrixMarket matrix coordinate pattern symmetric\nx 3 1\n"},
	{"not-square", "%%MatrixMarket matrix coordinate pattern general\n3 2 1\n2 1\n"},
	{"oor", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n4 1\n"},
	{"above-diagonal", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n1 2\n"},
	{"duplicate", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n2 1\n"},
	{"truncated", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n"},
	{"short-entry", "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n2 1\n"},
	{"empty", ""},
	{"bad-entry-int", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\nx 1\n"},
}

func TestParallelMatrixMarketMatchesSerial(t *testing.T) {
	defer graph.SetParallelParse(graph.SetParallelParse(true))
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		for _, tc := range mmCases {
			t.Run(tc.name, func(t *testing.T) {
				parseBoth(t, []byte(tc.in), true)
			})
		}
	}
}

// A suite-scale round trip through both parsers, worker-swept: the
// parallel reader must reproduce the serial graph bit for bit even
// when chunk boundaries land mid-file.
func TestParallelParseSuiteGraph(t *testing.T) {
	g := gen.Grid2D(60, 41).G
	var metis, mm bytes.Buffer
	if err := graph.WriteMETIS(&metis, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteMatrixMarket(&mm, g); err != nil {
		t.Fatal(err)
	}
	defer hostpar.SetWorkers(hostpar.SetWorkers(1))
	for _, w := range []int{1, 2, 8} {
		hostpar.SetWorkers(w)
		pg, err := parseBoth(t, metis.Bytes(), false)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertSameParsedGraph(t, g, pg, nil)
		if _, err := parseBoth(t, mm.Bytes(), true); err != nil {
			t.Fatalf("workers=%d mm: %v", w, err)
		}
	}
}

// FuzzReadMETISParallel is the adversarial parser fuzz target: any
// input must yield an identical Graph or an identical error from the
// serial and parallel readers.
func FuzzReadMETISParallel(f *testing.F) {
	for _, tc := range metisCases {
		f.Add([]byte(tc.in))
	}
	// Chunk-boundary provocations: comments and weights straddling
	// power-of-two offsets.
	f.Add([]byte("4 3 1\n" + strings.Repeat("% pad\n", 40) + "2 9\n1 9 3 8\n2 8 4 7\n3 7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		defer graph.SetParallelParse(graph.SetParallelParse(true))
		graph.SetParallelParse(false)
		sg, serr := graph.ReadMETIS(bytes.NewReader(data))
		graph.SetParallelParse(true)
		pg, perr := graph.ReadMETIS(bytes.NewReader(data))
		if (serr == nil) != (perr == nil) {
			t.Fatalf("error mismatch: serial=%v parallel=%v", serr, perr)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error text mismatch:\nserial:   %v\nparallel: %v", serr, perr)
			}
			return
		}
		assertSameParsedGraph(t, sg, pg, data)
	})
}

// FuzzReadMatrixMarketParallel mirrors FuzzReadMETISParallel for the
// MatrixMarket reader.
func FuzzReadMatrixMarketParallel(f *testing.F) {
	for _, tc := range mmCases {
		f.Add([]byte(tc.in))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		defer graph.SetParallelParse(graph.SetParallelParse(true))
		graph.SetParallelParse(false)
		sg, serr := graph.ReadMatrixMarket(bytes.NewReader(data))
		graph.SetParallelParse(true)
		pg, perr := graph.ReadMatrixMarket(bytes.NewReader(data))
		if (serr == nil) != (perr == nil) {
			t.Fatalf("error mismatch: serial=%v parallel=%v", serr, perr)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error text mismatch:\nserial:   %v\nparallel: %v", serr, perr)
			}
			return
		}
		assertSameParsedGraph(t, sg, pg, data)
	})
}
