package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestBaselinesGrid checks both baselines produce valid, balanced,
// sensible bisections across rank counts.
func TestBaselinesGrid(t *testing.T) {
	g := gen.Grid2D(48, 48)
	for _, cfg := range []Config{ParMetisLike(1), PtScotchLike(1)} {
		for _, p := range []int{1, 4, 16} {
			res := Partition(g.G, p, cfg)
			if got := graph.CutSize(g.G, res.Part); got != res.Cut {
				t.Fatalf("%s p=%d: cut mismatch %d vs %d", cfg.Name, p, res.Cut, got)
			}
			if res.Imbalance > 0.06 {
				t.Fatalf("%s p=%d: imbalance %.3f", cfg.Name, p, res.Imbalance)
			}
			if res.Cut <= 0 || res.Cut > 400 {
				t.Fatalf("%s p=%d: implausible cut %d", cfg.Name, p, res.Cut)
			}
			if res.Total <= 0 || res.Comm > res.Total {
				t.Fatalf("%s p=%d: bad timing total=%v comm=%v", cfg.Name, p, res.Total, res.Comm)
			}
		}
	}
}

// TestPtScotchBeatsParMetisOnQuality: over a few graphs, the
// quality-biased configuration should cut no worse on average.
func TestPtScotchBeatsParMetisOnQuality(t *testing.T) {
	graphs := []*gen.Generated{
		gen.Grid2D(40, 60),
		gen.DelaunayRandom(4000, 11),
		gen.RandomGeometric(3000, 0.035, 5),
	}
	var pmSum, ptsSum int64
	for _, g := range graphs {
		pm := Partition(g.G, 8, ParMetisLike(3))
		pts := Partition(g.G, 8, PtScotchLike(3))
		pmSum += pm.Cut
		ptsSum += pts.Cut
	}
	if ptsSum > pmSum*11/10 {
		t.Fatalf("Pt-Scotch-like cuts (%d) should not be >10%% worse than ParMetis-like (%d)", ptsSum, pmSum)
	}
}

// TestBaselineDeterminism: repeated runs must agree bit-for-bit.
func TestBaselineDeterminism(t *testing.T) {
	g := gen.DelaunayRandom(3000, 2)
	a := Partition(g.G, 8, PtScotchLike(7))
	b := Partition(g.G, 8, PtScotchLike(7))
	if a.Cut != b.Cut || a.Total != b.Total {
		t.Fatalf("nondeterministic: cut %d/%d total %v/%v", a.Cut, b.Cut, a.Total, b.Total)
	}
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatalf("partition differs at vertex %d", i)
		}
	}
}
