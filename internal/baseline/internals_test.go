package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestGreedyGrowBalancedAndContiguous(t *testing.T) {
	g := gen.Grid2D(20, 20).G
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		side := greedyGrow(g, rng)
		var w [2]int64
		for v, s := range side {
			w[s] += int64(g.VertexWeight(int32(v)))
		}
		total := w[0] + w[1]
		if w[0] < total*45/100 || w[0] > total*55/100 {
			t.Fatalf("trial %d: grow stopped at %d of %d", trial, w[0], total)
		}
		// Side 0 grew by BFS, so it must be connected.
		sub := make([]int32, 0, w[0])
		for v, s := range side {
			if s == 0 {
				sub = append(sub, int32(v))
			}
		}
		indG, _ := graph.InducedSubgraph(g, sub)
		if _, comps := graph.Components(indG); comps != 1 {
			t.Fatalf("trial %d: grown side has %d components", trial, comps)
		}
	}
}

func TestGreedyGrowDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(20)
	for i := 0; i < 9; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for i := 10; i < 19; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	side := greedyGrow(g, rand.New(rand.NewSource(2)))
	count0 := 0
	for _, s := range side {
		if s == 0 {
			count0++
		}
	}
	if count0 < 8 || count0 > 12 {
		t.Fatalf("disconnected growth unbalanced: %d of 20", count0)
	}
}

func TestCutOfMatchesGraphCutSize(t *testing.T) {
	g := gen.DelaunayRandom(1000, 3).G
	rng := rand.New(rand.NewSource(4))
	side := make([]int8, g.NumVertices())
	part := make([]int32, g.NumVertices())
	for i := range side {
		side[i] = int8(rng.Intn(2))
		part[i] = int32(side[i])
	}
	if cutOf(g, side) != graph.CutSize(g, part) {
		t.Fatal("cutOf disagrees with graph.CutSize")
	}
}

// TestRefinePassesImproveQuality: more refinement passes must not make
// cuts worse on average over a few seeds.
func TestRefinePassesImproveQuality(t *testing.T) {
	var few, many int64
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.DelaunayRandom(4000, seed)
		cfgFew := ParMetisLike(seed)
		cfgFew.RefinePasses = 1
		cfgMany := ParMetisLike(seed)
		cfgMany.RefinePasses = 8
		few += Partition(g.G, 8, cfgFew).Cut
		many += Partition(g.G, 8, cfgMany).Cut
	}
	if many > few*105/100 {
		t.Fatalf("8 passes (%d) worse than 1 pass (%d)", many, few)
	}
}

// TestBaselineBalanceUnderRefinement: refinement must never blow the
// balance tolerance.
func TestBaselineBalanceUnderRefinement(t *testing.T) {
	for _, cfg := range []Config{ParMetisLike(5), PtScotchLike(5)} {
		for _, p := range []int{2, 16, 128} {
			g := gen.RandomGeometric(5000, 0.025, 5)
			res := Partition(g.G, p, cfg)
			if res.Imbalance > 0.08 {
				t.Fatalf("%s p=%d: imbalance %.3f", cfg.Name, p, res.Imbalance)
			}
		}
	}
}

// TestBaselineTimesGrowWithP at high rank counts (the paper's central
// observation about multilevel partitioners).
func TestBaselineTimesGrowWithP(t *testing.T) {
	g := gen.DelaunayRandom(20000, 9)
	for _, cfg := range []Config{ParMetisLike(1), PtScotchLike(1)} {
		t64 := Partition(g.G, 64, cfg).Total
		t1024 := Partition(g.G, 1024, cfg).Total
		if t1024 <= t64 {
			t.Fatalf("%s: time at P=1024 (%v) should exceed P=64 (%v) for a small graph",
				cfg.Name, t1024, t64)
		}
	}
}

func TestPtScotchSlowerButBetterOrEqual(t *testing.T) {
	g := gen.DelaunayRandom(15000, 12)
	pm := Partition(g.G, 64, ParMetisLike(2))
	pts := Partition(g.G, 64, PtScotchLike(2))
	if pts.Total <= pm.Total {
		t.Fatalf("Pt-Scotch (%v) should cost more than ParMetis (%v)", pts.Total, pm.Total)
	}
}
