// Package baseline implements the two multilevel parallel partitioners
// the paper compares against, rebuilt inside the same simulated runtime
// so the comparison is apples-to-apples:
//
//   - PM ("ParMetis-like"): heavy-edge-matching coarsening on all
//     ranks, greedy graph-growing initial bisection on the coarsest
//     graph, and a small number of distributed boundary-refinement
//     passes per uncoarsening level. Speed-biased.
//
//   - PTS ("Pt-Scotch-like"): the same multilevel skeleton with more
//     negotiation rounds, many more refinement passes, and a
//     sequential band-graph FM at every level (Pt-Scotch's banded
//     diffusion/FM stage), which buys cut quality at the price of
//     gathered communication and a sequential bottleneck — exactly the
//     behaviour envelope the paper reports.
//
// Like ScalaPart's driver, partitions come from the real parallel
// algorithm; execution times come from the runtime's virtual clocks.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
)

// Config selects a baseline variant.
type Config struct {
	Name              string
	InitSeeds         int     // greedy-growing attempts at the coarsest level
	InitFMPasses      int     // sequential FM passes on the coarsest bisection
	RefinePasses      int     // distributed boundary passes per level
	NegotiationRounds int     // matching negotiation rounds per coarsening step
	BandFM            bool    // sequential band FM per level (Pt-Scotch)
	BandHops          int     // band radius in hops, default 2
	FoldDup           bool    // charge Pt-Scotch's fold-with-duplication gathers
	CoarsestSize      int     // default 800
	BalanceTol        float64 // default 0.05
	Seed              int64
	Model             mpi.Model
}

// ParMetisLike returns the speed-biased configuration.
func ParMetisLike(seed int64) Config {
	return Config{
		// RefinePasses follows ParMetis's default NITER-style refinement
		// (several alternating passes per level).
		Name: "ParMetis", InitSeeds: 4, InitFMPasses: 2,
		RefinePasses: 6, NegotiationRounds: 4, Seed: seed,
	}
}

// PtScotchLike returns the quality-biased configuration.
func PtScotchLike(seed int64) Config {
	return Config{
		Name: "Pt-Scotch", InitSeeds: 16, InitFMPasses: 6,
		RefinePasses: 8, NegotiationRounds: 6,
		BandFM: true, BandHops: 2, FoldDup: true, Seed: seed,
	}
}

func (c Config) withDefaults() Config {
	if c.CoarsestSize == 0 {
		c.CoarsestSize = 800
	}
	if c.BalanceTol == 0 {
		c.BalanceTol = 0.05
	}
	if c.BandHops == 0 {
		c.BandHops = 2
	}
	if c.Model == (mpi.Model{}) {
		c.Model = mpi.DefaultModel()
	}
	return c
}

// Result is the outcome of a baseline run.
type Result struct {
	Part      []int32
	Cut       int64
	Imbalance float64
	P         int
	Total     float64 // modeled execution time (max over ranks)
	Comm      float64 // modeled communication time (max over ranks)
	Stats     []mpi.RankStats
}

// Partition bisects g on p simulated ranks with the configured
// multilevel baseline. It panics if a rank fails; use PartitionChecked
// to receive the failure as an error.
func Partition(g *graph.Graph, p int, cfg Config) *Result {
	res, err := PartitionChecked(g, p, cfg)
	if err != nil {
		panic(fmt.Sprintf("baseline: %v", err))
	}
	return res
}

// PartitionChecked is Partition with structured error reporting: a rank
// failure comes back as an *mpi.RankError instead of crashing the
// caller.
func PartitionChecked(g *graph.Graph, p int, cfg Config) (*Result, error) {
	// The baseline is the legacy reference implementation and walks raw
	// Adjncy throughout; a compressed input is decoded once up front
	// (Plain is the identity on plain graphs).
	g = g.Plain()
	cfg = cfg.withDefaults()
	h := coarsen.BuildHierarchy(g, p, coarsen.Options{
		CoarsestSize:  cfg.CoarsestSize,
		StepsPerLevel: 1,
		RankDecay:     1, // every rank stays active at every level
		Seed:          cfg.Seed,
	})
	boundary := coarsen.BoundaryEdges(h)
	// One shared side array per level; ranks write only their owned
	// block, with collectives ordering reads and writes.
	sides := make([][]int8, len(h.Levels))
	for li, lev := range h.Levels {
		sides[li] = make([]int8, lev.G.NumVertices())
	}
	totalW := g.TotalVertexWeight()
	stats, err := mpi.RunChecked(p, cfg.Model, func(c *mpi.Comm) {
		c.SetPhase("coarsen")
		coarsen.ChargeCosts(c, h, boundary, cfg.NegotiationRounds, 1)
		last := len(h.Levels) - 1
		c.SetPhase("initial-bisect")
		initialBisect(c, h.Levels[last].G, sides[last], cfg)
		c.SetPhase("refine")
		for li := last; li >= 0; li-- {
			lev := &h.Levels[li]
			if li != last {
				project(c, &h.Levels[li+1], lev, sides[li+1], sides[li])
			}
			refineLevel(c, lev, sides[li], totalW, cfg, boundary[li])
		}
	})
	if err != nil {
		return nil, err
	}
	part := make([]int32, g.NumVertices())
	for v, s := range sides[0] {
		part[v] = int32(s)
	}
	return &Result{
		Part:      part,
		Cut:       graph.CutSize(g, part),
		Imbalance: graph.Imbalance(g, part, 2),
		P:         p,
		Total:     mpi.MaxTime(stats),
		Comm:      mpi.MaxCommTime(stats),
		Stats:     stats,
	}, nil
}

// initialBisect computes the coarsest bisection on rank 0 (greedy graph
// growing, best of InitSeeds, polished with sequential FM) and
// broadcasts it. side is the shared array for the coarsest level.
func initialBisect(c *mpi.Comm, cg *graph.Graph, side []int8, cfg Config) {
	n := cg.NumVertices()
	if c.Rank() == 0 {
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		bestCut := int64(-1)
		var best []int8
		for try := 0; try < cfg.InitSeeds; try++ {
			cand := greedyGrow(cg, rng)
			cut := cutOf(cg, cand)
			if bestCut < 0 || cut < bestCut {
				bestCut, best = cut, cand
			}
			c.Charge(float64(cg.NumEdges()) * 2)
		}
		copy(side, best)
		// Sequential FM polish over the whole (small) coarsest graph.
		free := make([]int32, n)
		for i := range free {
			free[i] = int32(i)
		}
		var sideW [2]int64
		for v := 0; v < n; v++ {
			sideW[side[v]] += int64(cg.VertexWeight(int32(v)))
		}
		prob, _ := refine.BuildSubproblem(cg, free, func(id int32) int8 { return side[id] },
			sideW, sideW[0]+sideW[1], cfg.BalanceTol, cfg.InitFMPasses)
		prob.Run()
		copy(side, prob.Side)
		c.Charge(float64(cg.NumEdges()) * float64(cfg.InitFMPasses) * 4)
	}
	// The broadcast orders rank 0's writes before everyone's reads.
	c.Bcast(0, nil, n)
}

// project carries the coarse sides down one level: each rank fills its
// owned block of the fine array from the shared coarse array.
func project(c *mpi.Comm, coarse, fine *coarsen.Level, coarseSide, fineSide []int8) {
	r := c.Rank()
	begin, end := fine.Offsets[r], fine.Offsets[r+1]
	for v := begin; v < end; v++ {
		fineSide[v] = coarseSide[fine.ToCoarse[v]]
	}
	c.Charge(float64(end - begin))
	// Projection needs the coarse sides of ghost parents: an irregular
	// exchange plus halo traffic.
	c.ChargeComm(4, int(end-begin))
	c.SyncCost(c.Model().PerPeer * float64(c.Size()))
	c.Barrier() // writes complete before the next phase reads
}

// refineLevel runs the distributed boundary refinement passes and,
// for Pt-Scotch, the per-level sequential band FM.
func refineLevel(c *mpi.Comm, lev *coarsen.Level, side []int8, totalW int64, cfg Config, halo []int64) {
	g := lev.G
	r := c.Rank()
	begin, end := lev.Offsets[r], lev.Offsets[r+1]
	// Global side weights.
	var local [2]int64
	for v := begin; v < end; v++ {
		local[side[v]] += int64(g.VertexWeight(v))
	}
	global := mpi.AllReduceSlice(c, local[:], 8, mpi.SumInt64)
	sideW := [2]int64{global[0], global[1]}
	tolW := int64(cfg.BalanceTol * float64(totalW) / 2)

	for pass := 0; pass < cfg.RefinePasses; pass++ {
		dir := int8(pass % 2)
		// Budget: weight we may move off side dir without violating
		// balance, shared equally across ranks.
		budget := sideW[dir] - totalW/2 + tolW
		if budget < 0 {
			budget = 0
		}
		perRank := budget / int64(c.Size())
		type move struct {
			v    int32
			gain int64
		}
		var cands []move
		for v := begin; v < end; v++ {
			if side[v] != dir {
				continue
			}
			var same, other int64
			for k := g.XAdj[v]; k < g.XAdj[v+1]; k++ {
				if side[g.Adjncy[k]] == dir {
					same += int64(g.ArcWeight(k))
				} else {
					other += int64(g.ArcWeight(k))
				}
			}
			if other == 0 {
				continue // interior vertex
			}
			if gain := other - same; gain > 0 {
				cands = append(cands, move{v, gain})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].gain != cands[j].gain {
				return cands[i].gain > cands[j].gain
			}
			return cands[i].v < cands[j].v
		})
		var moved []int32
		var movedW int64
		for _, m := range cands {
			w := int64(g.VertexWeight(m.v))
			if movedW+w > perRank {
				break
			}
			movedW += w
			moved = append(moved, m.v)
		}
		c.Charge(float64(g.XAdj[end]-g.XAdj[begin]) + float64(len(cands)))
		// Ghost side refresh: an irregular vector exchange across the
		// boundary-sharing peers.
		c.ChargeComm(4, int(halo[r]))
		m := c.Model()
		c.SyncCost(m.PerPeer * float64(c.Size()))
		// Balance sub-phase: every pass agrees on the remaining budget
		// before committing moves.
		mpi.AllReduce(c, int64(0), 8, mpi.SumInt64)
		// Exchange moves (the collective also orders the writes below
		// against this pass's reads).
		all := mpi.AllGatherV(c, moved, 4)
		for _, v := range moved {
			side[v] = 1 - dir
		}
		// Everyone observes the same weight shift.
		var shift int64
		for _, part := range all {
			for _, v := range part {
				shift += int64(g.VertexWeight(v))
			}
		}
		sideW[dir] -= shift
		sideW[1-dir] += shift
		c.Barrier() // writes visible before the next pass reads
	}

	if cfg.FoldDup {
		// Pt-Scotch's fold-with-duplication: the level's graph data is
		// folded onto process subsets over log P stages, each a gather
		// of this level's (shrinking) subgraph.
		m := c.Model()
		stages := log2f(c.Size())
		c.SyncCost(m.Latency*stages*stages + m.PerByte*6*float64(g.NumVertices())*stages/2)
	}
	if cfg.BandFM {
		bandFM(c, lev, side, sideW, totalW, cfg)
	}
}

// log2f is ceil(log2 n) as a float with log2f(1) = 0.
func log2f(n int) float64 {
	l := 0.0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// bandFM gathers the band around the current cut to rank 0, refines it
// sequentially with FM (Pt-Scotch's band graph stage), and publishes
// the result.
func bandFM(c *mpi.Comm, lev *coarsen.Level, side []int8, sideW [2]int64, totalW int64, cfg Config) {
	g := lev.G
	r := c.Rank()
	begin, end := lev.Offsets[r], lev.Offsets[r+1]
	// Local band: owned vertices within BandHops of a cut edge.
	inBand := make(map[int32]struct{})
	var frontier []int32
	for v := begin; v < end; v++ {
		for k := g.XAdj[v]; k < g.XAdj[v+1]; k++ {
			if side[g.Adjncy[k]] != side[v] {
				inBand[v] = struct{}{}
				frontier = append(frontier, v)
				break
			}
		}
	}
	for hop := 1; hop < cfg.BandHops; hop++ {
		var next []int32
		for _, v := range frontier {
			for _, nb := range g.Neighbors(v) {
				if nb < begin || nb >= end {
					continue // other ranks contribute their own halo
				}
				if _, ok := inBand[nb]; !ok {
					inBand[nb] = struct{}{}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	band := make([]int32, 0, len(inBand))
	for v := range inBand {
		band = append(band, v)
	}
	sort.Slice(band, func(i, j int) bool { return band[i] < band[j] })
	c.Charge(float64(g.XAdj[end]-g.XAdj[begin]) * float64(cfg.BandHops))
	all := mpi.Concat(mpi.AllGatherV(c, band, 4))
	if len(all) == 0 {
		return
	}
	// Rank 0 refines sequentially; the band is globally known after the
	// gather, and the shared side array provides the ring sides.
	var moves []int32
	if c.Rank() == 0 {
		prob, ids := refine.BuildSubproblem(g, all, func(id int32) int8 { return side[id] },
			sideW, totalW, cfg.BalanceTol, 4)
		before := append([]int8(nil), prob.Side...)
		prob.Run()
		c.Charge(float64(len(all)) * 24)
		for i, id := range ids {
			if prob.Side[i] != before[i] {
				moves = append(moves, id)
			}
		}
	}
	// The payload size is modeled from the band size (identical on all
	// ranks) so the collective's cost is symmetric.
	res := c.Bcast(0, moves, 4+len(all))
	moves, _ = res.([]int32)
	// Each rank applies the flips in its own block.
	for _, v := range moves {
		if v >= begin && v < end {
			side[v] = 1 - side[v]
		}
	}
	c.Barrier()
}

// greedyGrow produces a bisection by BFS-growing part 0 from a random
// seed until it holds half the vertex weight.
func greedyGrow(g *graph.Graph, rng *rand.Rand) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	target := g.TotalVertexWeight() / 2
	var grown int64
	visited := make([]bool, n)
	seed := int32(rng.Intn(n))
	queue := []int32{seed}
	visited[seed] = true
	for len(queue) > 0 && grown < target {
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		grown += int64(g.VertexWeight(v))
		for _, nb := range g.Neighbors(v) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	// Disconnected leftovers: if growth stalled short of the target,
	// keep seeding.
	for grown < target {
		found := int32(-1)
		for v := int32(0); v < int32(n); v++ {
			if !visited[v] {
				found = v
				break
			}
		}
		if found < 0 {
			break
		}
		visited[found] = true
		queue = append(queue[:0], found)
		for len(queue) > 0 && grown < target {
			v := queue[0]
			queue = queue[1:]
			side[v] = 0
			grown += int64(g.VertexWeight(v))
			for _, nb := range g.Neighbors(v) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return side
}

func cutOf(g *graph.Graph, side []int8) int64 {
	var cut int64
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for k := g.XAdj[u]; k < g.XAdj[u+1]; k++ {
			v := g.Adjncy[k]
			if u < v && side[u] != side[v] {
				cut += int64(g.ArcWeight(k))
			}
		}
	}
	return cut
}
