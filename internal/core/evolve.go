// Multi-trial evolutionary search: run the embed+partition tail of the
// pipeline several times with decorrelated RNG streams, keep the two
// best bisections, and combine them by freeing their disagreement
// region under one distributed FM round (geopart.RefineFreeSet). The
// coarse hierarchy is built once and shared — trials differ only in
// the embedding forces and the great-circle candidate draws, which is
// where the paper's pipeline is randomised.
//
// Everything runs inside ONE simulated world, so the modeled clock
// honestly pays for every trial: Trials=4 costs roughly 4× the
// embed+partition time of Trials=1 plus the combine collectives. The
// search is opt-in (Options.Trials > 1) and deterministic — trial
// seeds are derived arithmetically, scores are compared with a total
// order, and the combine operates on globally replicated outcomes — so
// results are bit-identical across workers, replay modes, and both
// collective engines.
package core

import (
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/embed"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// trialSeedStride decorrelates per-trial RNG streams: trial ti adds
// ti·stride to the embedding seed and the great-circle seed. Both
// strides are primes far above any seed arithmetic the packages do
// internally (level offsets, rank offsets).
const (
	embedSeedStride = 1000003
	partSeedStride  = 7919
)

// trialScore is the globally replicated outcome of one trial, ordered
// by the deterministic better() relation below.
type trialScore struct {
	feasible bool // imbalance within the configured tolerance
	cut      int64
	imb      float64
	ti       int
}

// better is a total order on trial scores: feasibility first, then cut,
// then imbalance, then trial index. Every rank computes it from the
// same replicated values, so the winner is globally agreed without
// extra communication.
func (a trialScore) better(b trialScore) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.cut != b.cut {
		return a.cut < b.cut
	}
	if a.imb != b.imb {
		return a.imb < b.imb
	}
	return a.ti < b.ti
}

// partitionEvolve is the Trials > 1 driver behind PartitionChecked.
func partitionEvolve(g *graph.Graph, p int, opt Options) (*Result, error) {
	if opt.Recover.Policy != RecoverOff {
		return nil, fmt.Errorf("core: Trials=%d cannot be combined with recovery policy %v (checkpoint layout assumes one pipeline pass)",
			opt.Trials, opt.Recover.Policy)
	}
	pcfg := opt.Partition.Defaults()
	tol, passes := pcfg.BalanceTol, pcfg.FMPasses
	totalW := g.TotalVertexWeight()

	h := coarsen.BuildHierarchy(g, p, opt.Coarsen)
	boundary := coarsen.BoundaryEdges(h)

	part := make([]int32, g.NumVertices())
	// The runner-up's sides, assembled by global id for the combine:
	// the embedding routes ownership by coordinates, so two trials
	// partition the id space differently and rank-local side vectors do
	// not align element-wise. Each rank writes its (disjoint) owned
	// slots, a barrier orders the writes before cross-rank reads, and
	// the modeled clock is charged for the record exchange.
	secondGlobal := make([]int8, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut, cutBefore int64
	var imb float64
	var strip int
	stats, err := mpi.RunChecked(p, opt.Model, func(c *mpi.Comm) {
		rank := c.Rank()
		t := &times[rank]

		c.SetPhase("coarsen")
		ph := c.StartPhase()
		coarsen.ChargeCosts(c, h, boundary, opt.CoarsenRounds, 2)
		t.Coarsen, t.CoarsenComm = ph.Stop()

		// Trials: the coarse hierarchy is fixed, so ownership (who holds
		// which vertices) is identical across trials and the side vectors
		// of different trials align element-wise.
		var bestD, secondD *embed.Distributed
		var bestSide, secondSide []int32
		var best, second trialScore
		var bestSideW [2]int64
		var bestRes geopart.ParallelResult
		for ti := 0; ti < opt.Trials; ti++ {
			eopt := opt.Embed
			popt := opt.Partition
			if ti > 0 {
				// Trial 0 runs the configured options verbatim, so the
				// search result can only match or beat the single-trial
				// pipeline; later trials shift both RNG streams.
				eopt.Seed += int64(ti) * embedSeedStride
				popt.Seed += int64(ti) * partSeedStride
			}
			c.SetPhase("embed")
			ph = c.StartPhase()
			d := embed.ParallelEmbed(c, h, eopt)
			te, tc := ph.Stop()
			t.Embed += te
			t.EmbedComm += tc

			c.SetPhase("partition")
			ph = c.StartPhase()
			res := geopart.ParallelPartition(c, g, d, popt)
			tp, tpc := ph.Stop()
			t.Partition += tp
			t.PartitionComm += tpc

			score := trialScore{
				feasible: res.Imbalance <= tol,
				cut:      res.Cut,
				imb:      res.Imbalance,
				ti:       ti,
			}
			sides := append([]int32(nil), res.Side...)
			switch {
			case ti == 0 || score.better(best):
				if ti > 0 {
					second, secondSide, secondD = best, bestSide, bestD
				}
				best, bestSide = score, sides
				bestD, bestSideW = d, res.SideW
				bestRes = *res
			case ti == 1 || score.better(second):
				second, secondSide, secondD = score, sides, d
			}
		}

		// Combine: free the disagreement region of the two best trials
		// and let one distributed FM round walk from the better parent
		// toward (or past) the other. The FM pass keeps the best prefix
		// of its moves, so the child is never worse than the best trial.
		if secondSide != nil {
			c.SetPhase("combine")
			ph = c.StartPhase()
			// Redistribute the runner-up's sides to the winner's owners:
			// one irregular record exchange (id + side per owned vertex),
			// charged like the baseline's ghost-side refreshes. The
			// host-side transport is the shared array plus a barrier.
			for i, id := range secondD.OwnedIDs {
				secondGlobal[id] = int8(secondSide[i])
			}
			c.ChargeComm(4, 6*len(secondD.OwnedIDs))
			c.SyncCost(c.Model().PerPeer * float64(c.Size()))
			c.Barrier() // writes complete before cross-rank reads
			nOwn := len(bestD.OwnedIDs)
			// Bisections are invariant under side relabeling: orient the
			// second parent to the first before diffing, or a mirrored
			// twin would free every vertex.
			var same, diff int64
			side2 := make([]int32, nOwn)
			for i, id := range bestD.OwnedIDs {
				side2[i] = int32(secondGlobal[id])
				if bestSide[i] == side2[i] {
					same++
				} else {
					diff++
				}
			}
			c.Charge(float64(nOwn) * 2)
			agree := mpi.AllReduceSlice(c, []int64{same, diff}, 8, mpi.SumInt64)
			flipSecond := agree[1] > agree[0]
			freeMask := make([]bool, nOwn)
			for i, s := range side2 {
				if flipSecond {
					s = 1 - s
				}
				freeMask[i] = bestSide[i] != s
			}
			out := geopart.RefineFreeSet(c, g, bestD, freeMask, bestSide, bestSideW, totalW, tol, passes)
			best.cut -= out.Gain
			bestSideW = out.SideW
			best.imb = graph.Imbalance2(out.SideW[0], out.SideW[1])
			tp, tpc := ph.Stop()
			t.Partition += tp
			t.PartitionComm += tpc
		}
		t.Total = c.Elapsed()
		t.TotalComm = c.CommElapsed()

		for i, id := range bestD.OwnedIDs {
			part[id] = bestSide[i]
		}
		if rank == 0 {
			cut, cutBefore = best.cut, bestRes.CutBefore
			imb = best.imb
			strip = bestRes.StripSize
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Part:      part,
		Cut:       cut,
		CutBefore: cutBefore,
		Imbalance: imb,
		StripSize: strip,
		P:         p,
		Times:     maxTimes(times),
		Stats:     stats,
	}, nil
}
