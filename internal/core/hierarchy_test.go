package core

import (
	"fmt"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// TestHierarchyBitIdentical runs the full pipeline with the fork-join
// coarsening kernels (parallel contraction, parallel CSR builder,
// chunked map inversion) at several worker counts and with the legacy
// serial path, and requires bit-identical outcomes at every world size:
// same cut, same per-vertex partition, same per-rank virtual clocks and
// message traffic. Host parallelism is a rearrangement of the same
// arithmetic over statically assigned chunks; any visible difference
// means a kernel changed an evaluation order or a modeled charge.
// (PR 3's TestBatchingBitIdentical is the same contract for the
// geometric-candidate kernel.)
func TestHierarchyBitIdentical(t *testing.T) {
	// Large enough that hierarchy construction crosses the parallel size
	// gates (contract >= 2048 verts, builder >= 4096 records) on the
	// finer levels without any test-hook gate lowering.
	g := gen.Grid2D(96, 96)
	for _, p := range []int{1, 4, 16, 64} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			defer coarsen.SetParallel(coarsen.SetParallel(false))
			defer graph.SetParallelBuild(graph.SetParallelBuild(false))
			serial := Partition(g.G, p, DefaultOptions(42))
			coarsen.SetParallel(true)
			graph.SetParallelBuild(true)
			for _, w := range []int{1, 2, 8} {
				defer hostpar.SetWorkers(hostpar.SetWorkers(w))
				par := Partition(g.G, p, DefaultOptions(42))
				if par.Cut != serial.Cut {
					t.Errorf("workers %d: cut differs: parallel %d serial %d", w, par.Cut, serial.Cut)
				}
				if len(par.Part) != len(serial.Part) {
					t.Fatalf("workers %d: partition length differs: %d vs %d", w, len(par.Part), len(serial.Part))
				}
				for v := range par.Part {
					if par.Part[v] != serial.Part[v] {
						t.Fatalf("workers %d: vertex %d assigned to part %d parallel, %d serial",
							w, v, par.Part[v], serial.Part[v])
					}
				}
				if len(par.Stats) != len(serial.Stats) {
					t.Fatalf("workers %d: stats length differs: %d vs %d", w, len(par.Stats), len(serial.Stats))
				}
				for r := range par.Stats {
					a, b := par.Stats[r], serial.Stats[r]
					if a.Time != b.Time || a.CommTime != b.CommTime {
						t.Errorf("workers %d rank %d clocks differ: parallel (%v, %v) serial (%v, %v)",
							w, r, a.Time, a.CommTime, b.Time, b.CommTime)
					}
					if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
						t.Errorf("workers %d rank %d traffic differs: parallel (%d msg, %d B) serial (%d msg, %d B)",
							w, r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
					}
				}
			}
		})
	}
}
