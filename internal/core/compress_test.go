package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// TestCompressedPipelineBitIdentical runs the full pipeline on the
// plain CSR graph and on its delta/varint compressed representation
// (graph.Compress) at every world size and several worker counts, and
// requires bit-identical outcomes: same cut, same per-vertex partition,
// same per-rank virtual clocks and message traffic. The compressed
// path replaces raw Adjncy/EWgt indexing with Cursor decode — a
// rearrangement of the same reads, never of the arithmetic — so any
// visible difference means a decoder produced a different row or a
// kernel charged a different modeled cost. (This is the same contract
// TestHierarchyBitIdentical pins for the fork-join kernels and
// TestBatchingBitIdentical for the geometric-candidate kernel.)
func TestCompressedPipelineBitIdentical(t *testing.T) {
	// Large enough that the hierarchy crosses the parallel size gates on
	// the finer levels, matching the hierarchy guard's regime.
	g := gen.Grid2D(96, 96)
	cg := graph.Compress(g.G)
	if !cg.Compressed() || g.G.Compressed() {
		t.Fatal("Compress must wrap without mutating the plain graph")
	}
	for _, p := range []int{1, 4, 16, 64} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			plain := Partition(g.G, p, DefaultOptions(42))
			for _, w := range []int{1, 2, 8} {
				defer hostpar.SetWorkers(hostpar.SetWorkers(w))
				comp := Partition(cg, p, DefaultOptions(42))
				if comp.Cut != plain.Cut {
					t.Errorf("workers %d: cut differs: compressed %d plain %d", w, comp.Cut, plain.Cut)
				}
				if comp.Imbalance != plain.Imbalance {
					t.Errorf("workers %d: imbalance differs: compressed %v plain %v", w, comp.Imbalance, plain.Imbalance)
				}
				if len(comp.Part) != len(plain.Part) {
					t.Fatalf("workers %d: partition length differs: %d vs %d", w, len(comp.Part), len(plain.Part))
				}
				for v := range comp.Part {
					if comp.Part[v] != plain.Part[v] {
						t.Fatalf("workers %d: vertex %d assigned to part %d compressed, %d plain",
							w, v, comp.Part[v], plain.Part[v])
					}
				}
				if len(comp.Stats) != len(plain.Stats) {
					t.Fatalf("workers %d: stats length differs: %d vs %d", w, len(comp.Stats), len(plain.Stats))
				}
				for r := range comp.Stats {
					a, b := comp.Stats[r], plain.Stats[r]
					if a.Time != b.Time || a.CommTime != b.CommTime {
						t.Errorf("workers %d rank %d clocks differ: compressed (%v, %v) plain (%v, %v)",
							w, r, a.Time, a.CommTime, b.Time, b.CommTime)
					}
					if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
						t.Errorf("workers %d rank %d traffic differs: compressed (%d msg, %d B) plain (%d msg, %d B)",
							w, r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
					}
				}
			}
		})
	}
}
