package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/refine"
)

// TestEvolveValidAndNoWorseThanLegacy: the search includes the
// configured options verbatim as trial 0 and the combine never worsens
// the best parent, so when the single-trial pipeline produces a
// feasible bisection the evolved cut must be at or below it — and the
// result must still be a valid balanced bisection with honest
// accounting (reported cut = recount).
func TestEvolveValidAndNoWorseThanLegacy(t *testing.T) {
	g := gen.DelaunayRandom(3000, 5)
	tol := DefaultOptions(42).Partition.Defaults().BalanceTol
	for _, p := range []int{1, 4, 16} {
		legacy := Partition(g.G, p, DefaultOptions(42))
		opt := DefaultOptions(42)
		opt.Trials = 3
		res := Partition(g.G, p, opt)
		if got := graph.CutSize(g.G, res.Part); got != res.Cut {
			t.Fatalf("p=%d: reported cut %d but partition cuts %d", p, res.Cut, got)
		}
		if imb := graph.Imbalance(g.G, res.Part, 2); math.Abs(imb-res.Imbalance) > 1e-12 {
			t.Fatalf("p=%d: reported imbalance %v, recomputed %v", p, res.Imbalance, imb)
		}
		if legacy.Imbalance <= tol && res.Cut > legacy.Cut {
			t.Fatalf("p=%d: evolved cut %d worse than single-trial %d", p, res.Cut, legacy.Cut)
		}
		if res.Imbalance > tol {
			t.Fatalf("p=%d: evolved imbalance %v above tolerance %v", p, res.Imbalance, tol)
		}
		t.Logf("p=%d: cut %d (1 trial) -> %d (3 trials)", p, legacy.Cut, res.Cut)
	}
}

// TestEvolveClockPaysForTrials: the trials run inside one simulated
// world, so the modeled embed and partition times must grow roughly
// linearly with the trial count — the search cannot pretend to be
// free.
func TestEvolveClockPaysForTrials(t *testing.T) {
	g := gen.Grid2D(48, 48)
	legacy := Partition(g.G, 4, DefaultOptions(7))
	opt := DefaultOptions(7)
	opt.Trials = 3
	res := Partition(g.G, 4, opt)
	if res.Times.Embed < 2*legacy.Times.Embed {
		t.Fatalf("3-trial embed time %v not >= 2x single-trial %v", res.Times.Embed, legacy.Times.Embed)
	}
	if res.Times.Partition < 2*legacy.Times.Partition {
		t.Fatalf("3-trial partition time %v not >= 2x single-trial %v", res.Times.Partition, legacy.Times.Partition)
	}
	if res.Times.Total <= legacy.Times.Total {
		t.Fatalf("3-trial total %v not above single-trial %v", res.Times.Total, legacy.Times.Total)
	}
	if res.Times.Coarsen != legacy.Times.Coarsen {
		t.Fatalf("coarsening ran more than once: %v vs %v", res.Times.Coarsen, legacy.Times.Coarsen)
	}
}

// TestEvolveDeterministic: the search must be bit-identical across
// repeated runs, both replay schedulers, and with the full-cut pass
// on — parts, cuts, and modeled clocks.
func TestEvolveDeterministic(t *testing.T) {
	g := gen.DelaunayRandom(2000, 9)
	defer refine.SetFullCut(refine.SetFullCut(true))
	opt := DefaultOptions(5)
	opt.Trials = 3
	var base *Result
	for _, mode := range []mpi.ReplayMode{mpi.ReplayGoroutine, mpi.ReplayBatched, mpi.ReplayGoroutine} {
		prev := mpi.SetReplayMode(mode)
		res := Partition(g.G, 8, opt)
		mpi.SetReplayMode(prev)
		if base == nil {
			base = res
			continue
		}
		if res.Cut != base.Cut || res.Imbalance != base.Imbalance {
			t.Fatalf("replay %v: cut/imb %d/%v, want %d/%v", mode, res.Cut, res.Imbalance, base.Cut, base.Imbalance)
		}
		if math.Abs(res.Times.Total-base.Times.Total) > 1e-12 {
			t.Fatalf("replay %v: modeled time %v, want %v", mode, res.Times.Total, base.Times.Total)
		}
		for i := range res.Part {
			if res.Part[i] != base.Part[i] {
				t.Fatalf("replay %v: partition differs at %d", mode, i)
			}
		}
	}
}

// TestEvolveRejectsRecovery: Trials and recovery cannot be combined;
// the routing must surface the explicit error rather than silently
// dropping one of the two.
func TestEvolveRejectsRecovery(t *testing.T) {
	g := gen.Grid2D(16, 16)
	opt := DefaultOptions(3)
	opt.Trials = 2
	opt.Recover.Policy = RecoverRespawn
	if _, err := PartitionChecked(g.G, 4, opt); err == nil {
		t.Fatal("Trials=2 with recovery on returned no error")
	}
}

// TestEvolveTrialsOneIsLegacyPath: Trials <= 1 must route through the
// unchanged single-pass pipeline — same cut, same partition, same
// modeled clock as the default options.
func TestEvolveTrialsOneIsLegacyPath(t *testing.T) {
	g := gen.Grid2D(32, 32)
	legacy := Partition(g.G, 4, DefaultOptions(11))
	for _, trials := range []int{0, 1} {
		opt := DefaultOptions(11)
		opt.Trials = trials
		res := Partition(g.G, 4, opt)
		if res.Cut != legacy.Cut || res.Times.Total != legacy.Times.Total {
			t.Fatalf("Trials=%d: cut/time %d/%v, want legacy %d/%v",
				trials, res.Cut, res.Times.Total, legacy.Cut, legacy.Times.Total)
		}
		for i := range res.Part {
			if res.Part[i] != legacy.Part[i] {
				t.Fatalf("Trials=%d: partition differs at %d", trials, i)
			}
		}
	}
}
