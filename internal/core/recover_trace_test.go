package core

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// recoveryTracedRun partitions the deterministic grid at P=4 under a
// schedule with one respawn recovery and one healed drop, recording the
// final (surviving) attempt. Rank 1 is killed during coarsening; the
// respawned world replays from scratch and on the way heals a dropped
// embed-phase message from the same rank. Both faults sit on rank 1, so
// the disarm decision depends only on rank 1's deterministic teardown
// counter and the resulting trace is bit-stable.
func recoveryTracedRun(t *testing.T) (*Result, *trace.Recorder) {
	t.Helper()
	g := gen.Grid2D(32, 32)
	const p = 4
	killEv := killEventFor(t, g.G, DefaultOptions(3), p, 1, "coarsen")
	dropEv := sendEventFor(t, g.G, DefaultOptions(3), p, 1, "embed")
	if killEv >= dropEv {
		t.Fatalf("schedule inverted: kill at %d must precede the embed send at %d", killEv, dropEv)
	}
	opt := DefaultOptions(3)
	rec := trace.New()
	opt.Model.Trace = rec
	// The respawned world re-enters through the recover rejoin barrier —
	// one extra communication event — so a fault aimed at the replayed
	// embed send sits one position past its fault-free location. Rank 1
	// dies at killEv in the first world and never gets near the embed
	// phase there, so the drop deterministically survives to the replay.
	opt.Model.Faults = mpi.NewFaultPlan().Kill(1, killEv).Drop(1, dropEv+1)
	opt.Recover = RecoverOptions{Policy: RecoverRespawn}
	res, err := PartitionChecked(g.G, 4, opt)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if res.Recovery == nil || res.Recovery.Respawns != 1 || res.Recovery.Disarmed < 1 {
		t.Fatalf("schedule did not exercise one respawn: %+v", res.Recovery)
	}
	return res, rec
}

// TestGoldenRecoveryTrace pins the rendered breakdown and Chrome trace
// of a recovered run: one rank killed mid-coarsen (respawn recovery)
// and one dropped message healed by retransmission in the respawned
// world. The surviving attempt's trace must show the recover rejoin
// phase and exactly one retry burst, and its bytes must never drift.
func TestGoldenRecoveryTrace(t *testing.T) {
	res, rec := recoveryTracedRun(t)

	base, err := PartitionChecked(gen.Grid2D(32, 32).G, 4, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != base.Cut {
		t.Fatalf("recovered cut %d != fault-free cut %d", res.Cut, base.Cut)
	}

	retries := 0
	for _, ev := range rec.Ranks()[1].Events() {
		if ev.Kind == trace.KindRetry {
			retries++
		}
	}
	if retries != 1 {
		t.Fatalf("final attempt's trace has %d retry bursts at rank 1, want exactly 1", retries)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("recovered trace violates invariants: %v", err)
	}

	checkGolden(t, "breakdown_recovery_p4.txt", []byte(rec.Breakdown().Table()))
	var buf bytes.Buffer
	if err := rec.ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_recovery_p4.json", buf.Bytes())
}

// TestRecoveryPhaseSpansTelescope: even on a recovered run — rejoin
// barrier, replayed phases, healed retransmission — every rank's phase
// spans must still sum to its final clock within 1e-9.
func TestRecoveryPhaseSpansTelescope(t *testing.T) {
	res, rec := recoveryTracedRun(t)
	b := rec.Breakdown()
	if len(b.Ranks) != 4 {
		t.Fatalf("breakdown covers %d ranks, want 4", len(b.Ranks))
	}
	for r, phases := range b.Ranks {
		var sum float64
		seenRecover := false
		for _, ph := range phases {
			sum += ph.Time
			if ph.Phase == "recover" {
				seenRecover = true
			}
		}
		if !seenRecover {
			t.Fatalf("rank %d: surviving attempt's trace has no recover rejoin span: %+v", r, phases)
		}
		if diff := sum - res.Stats[r].Time; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d: phase spans sum to %.12g, final clock %.12g", r, sum, res.Stats[r].Time)
		}
	}
}
