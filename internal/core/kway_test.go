package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPartitionKWayGrid(t *testing.T) {
	g := gen.Grid2D(32, 32)
	for _, k := range []int{1, 2, 4, 8} {
		res := PartitionKWay(g.G, k, 16, DefaultOptions(2))
		if res.K != k {
			t.Fatalf("k=%d: K=%d", k, res.K)
		}
		w := graph.PartWeights(g.G, res.Part, k)
		ideal := int64(g.G.NumVertices() / k)
		for i, wi := range w {
			if wi < ideal*85/100 || wi > ideal*115/100 {
				t.Fatalf("k=%d part %d weight %d (ideal %d)", k, i, wi, ideal)
			}
		}
		if got := graph.CutSize(g.G, res.Part); got != res.EdgeCut {
			t.Fatalf("k=%d: cut mismatch %d vs %d", k, res.EdgeCut, got)
		}
		if k > 1 && (res.EdgeCut <= 0 || res.EdgeCut > 600) {
			t.Fatalf("k=%d: implausible cut %d", k, res.EdgeCut)
		}
	}
}

func TestPartitionKWayTimeIsCriticalPath(t *testing.T) {
	g := gen.DelaunayRandom(8000, 4)
	k2 := PartitionKWay(g.G, 2, 16, DefaultOptions(3))
	k8 := PartitionKWay(g.G, 8, 16, DefaultOptions(3))
	// More levels cost more, but far less than 7 sequential bisections.
	if k8.Time <= k2.Time {
		t.Fatalf("k=8 time %v not above k=2 time %v", k8.Time, k2.Time)
	}
	if k8.Time > 7*k2.Time {
		t.Fatalf("k=8 time %v suggests no parallelism across siblings (k=2: %v)", k8.Time, k2.Time)
	}
}

func TestPartitionKWayRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=3")
		}
	}()
	g := gen.Grid2D(8, 8)
	PartitionKWay(g.G, 3, 4, DefaultOptions(1))
}
