// Rollback recovery for ScalaPart runs: level checkpoints at the
// pipeline's phase boundaries plus two recovery policies layered on the
// simulated runtime's failure reporting.
//
// The multilevel pipeline has natural consistency points — every phase
// ends with a synchronising collective, so "all ranks finished
// coarsening" and "all ranks finished embedding" are global states a
// driver can capture without extra synchronisation. A checkpoint stores,
// per rank, the runtime counters (mpi.RankSnapshot: virtual clock,
// communication time, traffic, and the communication-event cursor fault
// plans address) plus the embedding views when the embed phase is done;
// the coarse hierarchy and RNG seeds live in Options and are shared by
// construction.
//
// When a world dies — a KillRank fault, a panic, an exhausted retry
// budget, or a watchdog-detected deadlock — the driver rolls back to the
// newest complete checkpoint and re-enters the pipeline:
//
//   - respawn: all P ranks relaunch on fresh goroutines, restore their
//     snapshots, and re-run from the checkpointed phase. Determinism
//     makes the replay reproduce the dead rank's work exactly, so the
//     final cut is identical to the fault-free run.
//   - shrink (ULFM-style): the survivors agree on a P−1 world, the dead
//     rank's vertices are redistributed by the same block rule as the
//     initial distribution (embed.SplitCoords over the checkpointed
//     global embedding), and partitioning continues with P−1 ranks.
//     Quality may drop — the geometric partition at P−1 is a different
//     partition — but correctness may not.
//
// Faults fire at most once: after a failed attempt the driver prunes
// every fault whose (rank, event) position the dead world already
// passed (FaultPlan.Remaining over RankStats.Events), because a
// physical failure does not replay with the retry. Only when the retry
// budget and both policies are exhausted does the driver reach
// SequentialFallback.
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/coarsen"
	"repro/internal/embed"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// RecoveryPolicy selects what PartitionChecked does when a rank fails.
type RecoveryPolicy int

const (
	// RecoverOff aborts the run on the first rank failure and returns
	// the error, the pre-recovery behaviour.
	RecoverOff RecoveryPolicy = iota
	// RecoverRespawn re-runs the dead rank's work from the last complete
	// level checkpoint on a fresh goroutine; the other ranks re-enter
	// the level alongside it. Escalates to shrink when respawn attempts
	// are exhausted.
	RecoverRespawn
	// RecoverShrink drops the dead rank ULFM-style: survivors agree on a
	// P−1 world, the dead rank's vertices are redistributed by the
	// initial block rule, and the run continues shrunken.
	RecoverShrink
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverOff:
		return "off"
	case RecoverRespawn:
		return "respawn"
	case RecoverShrink:
		return "shrink"
	}
	return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
}

// ParseRecoveryPolicy parses the -recover flag values: off, respawn,
// shrink ("" means off).
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return RecoverOff, nil
	case "respawn":
		return RecoverRespawn, nil
	case "shrink":
		return RecoverShrink, nil
	}
	return RecoverOff, fmt.Errorf("unknown recovery policy %q (want off, respawn, or shrink)", s)
}

// RecoverOptions configures the recovery subsystem of a ScalaPart run.
// The zero value means recovery off.
type RecoverOptions struct {
	// Policy selects the recovery behaviour on rank failure.
	Policy RecoveryPolicy
	// RetryBudget is the reliability layer's retransmissions per message
	// before a dropped link escalates to a rank failure; 0 selects
	// mpi.DefaultRetryBudget. Any non-off policy enables the reliability
	// layer.
	RetryBudget int
	// MaxRespawns bounds respawn attempts before escalating to shrink
	// (0 = default 2, negative = no respawns).
	MaxRespawns int
	// MaxShrinks bounds world shrinks before falling back to the
	// sequential baseline (0 = default 2, negative = no shrinks).
	MaxShrinks int
}

func (o RecoverOptions) withDefaults() RecoverOptions {
	if o.RetryBudget == 0 {
		o.RetryBudget = mpi.DefaultRetryBudget
	}
	switch {
	case o.MaxRespawns == 0:
		o.MaxRespawns = 2
	case o.MaxRespawns < 0:
		o.MaxRespawns = 0
	}
	switch {
	case o.MaxShrinks == 0:
		o.MaxShrinks = 2
	case o.MaxShrinks < 0:
		o.MaxShrinks = 0
	}
	return o
}

// RecoveryStats summarises what the recovery driver did to produce a
// result. Attempts == 1 with no entries anywhere means the first world
// succeeded (possibly with reliability-layer healing, which needs no
// driver intervention).
type RecoveryStats struct {
	Attempts int      // worlds launched, including the successful one
	Respawns int      // respawn recoveries performed
	Shrinks  int      // world shrinks performed
	Disarmed int      // faults pruned because a failed world already fired them
	FinalP   int      // ranks in the world that produced the result
	Resumes  []string // where each recovery attempt resumed ("respawn@embed", "shrink@P=3", ...)
	Errors   []string // the failures that triggered recovery, in order
}

func (s *RecoveryStats) String() string {
	if s == nil {
		return "recovery: off"
	}
	return fmt.Sprintf("recovery: %d attempt(s), %d respawn(s), %d shrink(s), %d fault(s) disarmed, final P=%d",
		s.Attempts, s.Respawns, s.Shrinks, s.Disarmed, s.FinalP)
}

// pipelineStage is where an attempt (re-)enters the pipeline.
type pipelineStage int

const (
	stageStart     pipelineStage = iota // full pipeline: coarsen, embed, partition
	stageEmbed                          // resume after coarsening
	stagePartition                      // resume after embedding: partition only
)

func (s pipelineStage) String() string {
	switch s {
	case stageEmbed:
		return "coarsen-checkpoint"
	case stagePartition:
		return "embed-checkpoint"
	}
	return "start"
}

// checkpoint is the driver-side store of level-boundary state. Each
// rank goroutine writes only its own slots; the driver reads them after
// RunChecked returns (the WaitGroup join orders the accesses), so no
// locking is needed.
type checkpoint struct {
	p           int
	coarsenSnap []mpi.RankSnapshot
	coarsenT    []PhaseTimes
	coarsenOK   []bool
	embedSnap   []mpi.RankSnapshot
	embedT      []PhaseTimes
	embedViews  []*embed.Distributed
	embedOK     []bool
}

func newCheckpoint(p int) *checkpoint {
	return &checkpoint{
		p:           p,
		coarsenSnap: make([]mpi.RankSnapshot, p),
		coarsenT:    make([]PhaseTimes, p),
		coarsenOK:   make([]bool, p),
		embedSnap:   make([]mpi.RankSnapshot, p),
		embedT:      make([]PhaseTimes, p),
		embedViews:  make([]*embed.Distributed, p),
		embedOK:     make([]bool, p),
	}
}

func (ck *checkpoint) saveCoarsen(rank int, s mpi.RankSnapshot, t PhaseTimes) {
	ck.coarsenSnap[rank] = s
	ck.coarsenT[rank] = t
	ck.coarsenOK[rank] = true
}

func (ck *checkpoint) saveEmbed(rank int, s mpi.RankSnapshot, t PhaseTimes, d *embed.Distributed) {
	ck.embedSnap[rank] = s
	ck.embedT[rank] = t
	ck.embedViews[rank] = d
	ck.embedOK[rank] = true
}

func all(ok []bool) bool {
	for _, b := range ok {
		if !b {
			return false
		}
	}
	return true
}

func (ck *checkpoint) coarsenComplete() bool { return ck != nil && all(ck.coarsenOK) }
func (ck *checkpoint) embedComplete() bool   { return ck != nil && all(ck.embedOK) }

// attemptConfig describes one world launch: where it enters the
// pipeline and with what restored state.
type attemptConfig struct {
	p         int
	start     pipelineStage
	model     mpi.Model
	h         *coarsen.Hierarchy
	boundary  [][]int64
	resume    []mpi.RankSnapshot   // per-rank counters to restore (nil = fresh clocks)
	baseTimes []PhaseTimes         // phase times accrued before the checkpoint
	views     []*embed.Distributed // per-rank embedding (stagePartition only)
	save      *checkpoint          // where to store level checkpoints (nil = don't)
	rejoin    bool                 // charge a synchronising "recover" barrier on entry
}

// runAttempt launches one world and runs the pipeline from cfg.start.
// It is the single body both the recovery-off path and every recovery
// attempt execute, which is what guarantees a fresh full run charges
// exactly the historical cost sequence (bit-identical results). The
// returned stats are valid even on error (partial clocks at teardown);
// the recovery driver needs their Events counters to disarm fired
// faults.
func runAttempt(g *graph.Graph, opt Options, cfg attemptConfig) (*Result, []mpi.RankStats, error) {
	p := cfg.p
	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut, cutBefore int64
	var imb float64
	var strip int
	stats, err := mpi.RunChecked(p, cfg.model, func(c *mpi.Comm) {
		rank := c.Rank()
		t := &times[rank]
		if cfg.resume != nil {
			c.Restore(cfg.resume[rank])
			*t = cfg.baseTimes[rank]
		}
		if cfg.rejoin {
			// Recovery re-entry: one synchronising barrier models the
			// survivors and the respawned (or shrunken) world agreeing to
			// re-enter the pipeline, and aligns the restored clocks.
			c.SetPhase("recover")
			c.Barrier()
		}
		var d *embed.Distributed
		if cfg.start == stageStart {
			c.SetPhase("coarsen")
			ph := c.StartPhase()
			coarsen.ChargeCosts(c, cfg.h, cfg.boundary, opt.CoarsenRounds, 2)
			t.Coarsen, t.CoarsenComm = ph.Stop()
			if cfg.save != nil {
				cfg.save.saveCoarsen(rank, c.Snapshot(), *t)
			}
		}
		if cfg.start <= stageEmbed {
			c.SetPhase("embed")
			ph := c.StartPhase()
			d = embed.ParallelEmbed(c, cfg.h, opt.Embed)
			te, tc := ph.Stop()
			t.Embed += te
			t.EmbedComm += tc
			if cfg.save != nil {
				cfg.save.saveEmbed(rank, c.Snapshot(), *t, d)
			}
		} else {
			d = cfg.views[rank]
		}

		c.SetPhase("partition")
		ph := c.StartPhase()
		res := geopart.ParallelPartition(c, g, d, opt.Partition)
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total = c.Elapsed()
		t.TotalComm = c.CommElapsed()

		// Assemble the global partition outside the timed region; each
		// rank owns a disjoint vertex set, so the writes are race-free.
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if rank == 0 {
			cut, cutBefore = res.Cut, res.CutBefore
			imb = res.Imbalance
			strip = res.StripSize
		}
	})
	if err != nil {
		return nil, stats, err
	}
	return &Result{
		Part:      part,
		Cut:       cut,
		CutBefore: cutBefore,
		Imbalance: imb,
		StripSize: strip,
		P:         p,
		Times:     maxTimes(times),
		Stats:     stats,
	}, stats, nil
}

// partitionRecover is the recovery driver: it launches worlds until one
// completes, rolling back to level checkpoints and applying the
// configured policy between attempts.
func partitionRecover(g *graph.Graph, p int, opt Options) (*Result, error) {
	ro := opt.Recover.withDefaults()
	rs := &RecoveryStats{FinalP: p}

	model := opt.Model
	model.Reliable = &mpi.Reliability{RetryBudget: ro.RetryBudget}
	rec := model.Trace
	// Never mutate the caller's plan: bench harnesses share one plan
	// across cached runs.
	plan := model.Faults.Clone()

	h := coarsen.BuildHierarchy(g, p, opt.Coarsen)
	boundary := coarsen.BoundaryEdges(h)
	ck := newCheckpoint(p)
	cfg := attemptConfig{p: p, start: stageStart, h: h, boundary: boundary, save: ck}
	curP := p
	// coords is the finest-level global embedding, assembled once a
	// post-embed checkpoint completes; it outlives world shrinks because
	// the embedding values do not depend on the rank layout.
	var coords []geometry.Vec2
	respawns, shrinks := 0, 0
	var lastErr error

	for {
		rs.Attempts++
		if rec != nil && rs.Attempts > 1 {
			rec.Reset() // one recorder, final attempt only
		}
		model.Faults = plan
		cfg.model = model
		res, stats, err := runAttempt(g, opt, cfg)
		if err == nil {
			res.Recovery = rs
			return res, nil
		}
		lastErr = err
		rs.Errors = append(rs.Errors, err.Error())

		// A fault fires at most once: prune every fault whose position
		// the dead world already passed, so the replay does not re-kill
		// the same rank at the same event.
		events := make([]int64, len(stats))
		for i, s := range stats {
			events[i] = s.Events
		}
		before := plan.Len()
		plan = plan.Remaining(events)
		rs.Disarmed += before - plan.Len()

		dead := 0
		var re *mpi.RankError
		if errors.As(err, &re) && re.Rank >= 0 && re.Rank < curP {
			dead = re.Rank // for deadlocks: the first blocked rank
		}

		// Keep the embedding once any world has completed the embed
		// phase; it is the state shrink redistributes from.
		if coords == nil && ck.embedComplete() {
			coords = assembleCoords(g, ck.embedViews)
		}

		if ro.Policy == RecoverRespawn && respawns < ro.MaxRespawns {
			respawns++
			rs.Respawns++
			cfg = respawnConfig(cfg, ck)
			rs.Resumes = append(rs.Resumes, "respawn@"+cfg.start.String())
			continue
		}
		if curP > 1 && shrinks < ro.MaxShrinks {
			shrinks++
			rs.Shrinks++
			newP := curP - 1
			plan = plan.ShrinkRank(dead)
			cfg, ck = shrinkConfig(g, opt, cfg, ck, coords, dead, newP)
			curP = newP
			rs.FinalP = newP
			rs.Resumes = append(rs.Resumes, fmt.Sprintf("shrink@P=%d/%s", newP, cfg.start))
			continue
		}
		break
	}

	// Retry budget and both policies exhausted: last resort.
	fb, ferr := SequentialFallback(g, opt.Seed)
	if ferr != nil {
		return nil, fmt.Errorf("recovery exhausted after %d attempt(s) (last failure: %v); %w", rs.Attempts, lastErr, ferr)
	}
	rs.FinalP = 1
	fb.Recovery = rs
	return fb, nil
}

// respawnConfig picks the newest complete checkpoint to respawn from.
// All ranks relaunch (the runtime has no partial worlds): survivors
// restore the same snapshots they checkpointed, so their replay is the
// work they already did, and the respawned rank's replay recreates the
// lost state deterministically.
func respawnConfig(cfg attemptConfig, ck *checkpoint) attemptConfig {
	switch {
	case ck != nil && ck.p == cfg.p && ck.embedComplete():
		return attemptConfig{
			p: cfg.p, start: stagePartition,
			resume:    append([]mpi.RankSnapshot(nil), ck.embedSnap...),
			baseTimes: append([]PhaseTimes(nil), ck.embedT...),
			views:     append([]*embed.Distributed(nil), ck.embedViews...),
			h:         cfg.h, boundary: cfg.boundary, save: ck, rejoin: true,
		}
	case ck != nil && ck.p == cfg.p && ck.coarsenComplete():
		return attemptConfig{
			p: cfg.p, start: stageEmbed,
			resume:    append([]mpi.RankSnapshot(nil), ck.coarsenSnap...),
			baseTimes: append([]PhaseTimes(nil), ck.coarsenT...),
			h:         cfg.h, boundary: cfg.boundary, save: ck, rejoin: true,
		}
	case cfg.start != stageStart:
		// A shrunken partition-only world with no checkpoint of its own:
		// replay its entry state.
		cfg.rejoin = true
		return cfg
	default:
		// Nothing checkpointed yet: restart the pipeline from scratch
		// (still a respawn — the world keeps its size).
		cfg.resume = nil
		cfg.baseTimes = nil
		cfg.views = nil
		cfg.start = stageStart
		cfg.rejoin = true
		return cfg
	}
}

// shrinkConfig builds the P−1 world after rank `dead` is dropped. With
// a known global embedding the survivors redistribute the finest-level
// coordinates by the same block rule as the initial distribution
// (embed.SplitCoords) and re-enter at the partition phase; without one
// the shrunken world restarts the pipeline (the hierarchy layout
// depends on P, so coarsen-level state cannot be reused across sizes).
func shrinkConfig(g *graph.Graph, opt Options, cfg attemptConfig, ck *checkpoint, coords []geometry.Vec2, dead, newP int) (attemptConfig, *checkpoint) {
	var snaps []mpi.RankSnapshot
	var baseT []PhaseTimes
	switch {
	case cfg.start == stagePartition && cfg.resume != nil:
		// The failed world was already partition-only: its entry
		// snapshots are the survivors' post-embed state.
		snaps, baseT = cfg.resume, cfg.baseTimes
	case ck != nil && ck.p == cfg.p && ck.embedComplete():
		snaps, baseT = ck.embedSnap, ck.embedT
	}
	if coords != nil && snaps != nil {
		return attemptConfig{
			p: newP, start: stagePartition,
			resume:    dropIndex(snaps, dead),
			baseTimes: dropIndex(baseT, dead),
			views:     embed.SplitCoords(g, coords, newP),
			h:         cfg.h, boundary: cfg.boundary, rejoin: true,
		}, nil
	}
	h := coarsen.BuildHierarchy(g, newP, opt.Coarsen)
	nck := newCheckpoint(newP)
	return attemptConfig{
		p: newP, start: stageStart,
		h: h, boundary: coarsen.BoundaryEdges(h),
		save: nck, rejoin: true,
	}, nck
}

// assembleCoords unions the finest-level owned coordinates of every
// rank's embedding view into the global coordinate array; ownership
// partitions the vertex set, so every vertex is written exactly once.
func assembleCoords(g *graph.Graph, views []*embed.Distributed) []geometry.Vec2 {
	coords := make([]geometry.Vec2, g.NumVertices())
	for _, d := range views {
		if d == nil {
			continue
		}
		for i, id := range d.OwnedIDs {
			coords[id] = d.OwnedPos[i]
		}
	}
	return coords
}

// dropIndex returns a copy of s without element i (the dead rank's
// slot), the survivor renumbering of a world shrink.
func dropIndex[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
