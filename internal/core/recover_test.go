package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// phaseClass reports whether a phase label belongs to a driver-level
// phase class ("coarsen", "embed", or "partition"; inner algorithm
// phases like "embed/L2" or "geopart" count toward their class).
func phaseClass(phase, class string) bool {
	switch class {
	case "partition":
		return phase == "partition" || phase == "geopart" || phase == "refine"
	default:
		return strings.HasPrefix(phase, class)
	}
}

// killEventFor sweeps kill positions until one fires inside the wanted
// phase class. Determinism makes the discovered position stable for a
// fixed (graph, seed, P).
func killEventFor(t *testing.T, g *graph.Graph, opt Options, p, rank int, class string) int64 {
	t.Helper()
	matches := func(phase string) bool { return phaseClass(phase, class) }
	for e := int64(0); e < 5000; e += 7 {
		o := opt
		o.Model.Faults = mpi.NewFaultPlan().Kill(rank, e)
		_, err := PartitionChecked(g, p, o)
		if err == nil {
			break // past the end of the program: no event left to kill at
		}
		var re *mpi.RankError
		if errors.As(err, &re) && re.Rank == rank && matches(re.Phase) {
			return e
		}
	}
	t.Fatalf("no kill position found inside phase class %q", class)
	return -1
}

// sendEventFor replays a traced fault-free run and returns the
// communication-event position of rank's first point-to-point Send
// inside the wanted phase class — the positions DropMessage and
// DelayMessage faults act on.
func sendEventFor(t *testing.T, g *graph.Graph, opt Options, p, rank int, class string) int64 {
	t.Helper()
	rec := trace.New()
	o := opt
	o.Model.Trace = rec
	if _, err := PartitionChecked(g, p, o); err != nil {
		t.Fatal(err)
	}
	phase := ""
	var ev int64
	for _, e := range rec.Ranks()[rank].Events() {
		switch e.Kind {
		case trace.KindPhase:
			phase = e.Op
		case trace.KindSend:
			if phaseClass(phase, class) {
				return ev
			}
			ev++
		case trace.KindRecv, trace.KindColl:
			ev++
		}
	}
	t.Fatalf("rank %d performs no Send inside phase class %q", rank, class)
	return -1
}

// TestRecoveryZeroFaultsBitIdentical: enabling recovery without any
// fault firing must not move a single modeled number — the reliability
// layer's sequence tracking and the driver's checkpointing are pure
// bookkeeping.
func TestRecoveryZeroFaultsBitIdentical(t *testing.T) {
	g := gen.Grid2D(32, 32)
	for _, p := range []int{1, 4, 16, 64} {
		base, err := PartitionChecked(g.G, p, DefaultOptions(3))
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions(3)
		opt.Recover = RecoverOptions{Policy: RecoverRespawn}
		rec, err := PartitionChecked(g.G, p, opt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if rec.Cut != base.Cut || rec.CutBefore != base.CutBefore || rec.Imbalance != base.Imbalance {
			t.Fatalf("P=%d: recovery-enabled quality moved: cut %d vs %d", p, rec.Cut, base.Cut)
		}
		if rec.Times != base.Times {
			t.Fatalf("P=%d: recovery-enabled clocks moved:\nbase: %+v\nrec:  %+v", p, base.Times, rec.Times)
		}
		for r := range base.Stats {
			if rec.Stats[r] != base.Stats[r] {
				t.Fatalf("P=%d rank %d: stats moved: %+v vs %+v", p, r, rec.Stats[r], base.Stats[r])
			}
		}
		for v := range base.Part {
			if rec.Part[v] != base.Part[v] {
				t.Fatalf("P=%d: side of vertex %d moved", p, v)
			}
		}
		if rec.Recovery == nil || rec.Recovery.Attempts != 1 || rec.Recovery.FinalP != p {
			t.Fatalf("P=%d: unexpected recovery stats %+v", p, rec.Recovery)
		}
	}
}

// TestRespawnRecoversKillInEveryPhase: a rank killed during coarsening,
// embedding, or partitioning is respawned from the newest complete
// checkpoint and the run finishes with the exact fault-free cut.
func TestRespawnRecoversKillInEveryPhase(t *testing.T) {
	g := gen.Grid2D(32, 32)
	const p = 4
	base, err := PartitionChecked(g.G, p, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"coarsen", "embed", "partition"} {
		ev := killEventFor(t, g.G, DefaultOptions(3), p, 1, class)
		opt := DefaultOptions(3)
		opt.Model.Faults = mpi.NewFaultPlan().Kill(1, ev)
		opt.Recover = RecoverOptions{Policy: RecoverRespawn}
		res, err := PartitionChecked(g.G, p, opt)
		if err != nil {
			t.Fatalf("kill in %s (event %d) not recovered: %v", class, ev, err)
		}
		if res.Fallback {
			t.Fatalf("kill in %s: respawn fell back to sequential", class)
		}
		if res.Recovery == nil || res.Recovery.Respawns < 1 || res.Recovery.FinalP != p {
			t.Fatalf("kill in %s: unexpected recovery stats %+v", class, res.Recovery)
		}
		if res.Cut != base.Cut {
			t.Fatalf("kill in %s: respawned cut %d != fault-free cut %d", class, res.Cut, base.Cut)
		}
		for v := range base.Part {
			if res.Part[v] != base.Part[v] {
				t.Fatalf("kill in %s: respawned side of vertex %d differs", class, v)
			}
		}
		if err := CheckResult(g.G, res); err != nil {
			t.Fatalf("kill in %s: %v", class, err)
		}
	}
}

// TestShrinkRecoversKill: under the shrink policy a killed rank is
// dropped, its vertices are redistributed, and the P−1 world delivers a
// valid balanced partition.
func TestShrinkRecoversKill(t *testing.T) {
	g := gen.Grid2D(32, 32)
	const p = 4
	for _, class := range []string{"coarsen", "partition"} {
		ev := killEventFor(t, g.G, DefaultOptions(3), p, 2, class)
		opt := DefaultOptions(3)
		opt.Model.Faults = mpi.NewFaultPlan().Kill(2, ev)
		opt.Recover = RecoverOptions{Policy: RecoverShrink}
		res, err := PartitionChecked(g.G, p, opt)
		if err != nil {
			t.Fatalf("kill in %s (event %d) not recovered by shrink: %v", class, ev, err)
		}
		if res.Fallback {
			t.Fatalf("kill in %s: shrink fell back to sequential", class)
		}
		if res.Recovery == nil || res.Recovery.Shrinks != 1 || res.Recovery.FinalP != p-1 || res.P != p-1 {
			t.Fatalf("kill in %s: unexpected recovery stats %+v (P=%d)", class, res.Recovery, res.P)
		}
		if err := CheckResult(g.G, res); err != nil {
			t.Fatalf("kill in %s: shrunken partition invalid: %v", class, err)
		}
		if res.Imbalance > 0.1 {
			t.Fatalf("kill in %s: shrunken imbalance %v exceeds the balance constraint", class, res.Imbalance)
		}
	}
}

// TestRetryExhaustionEscalatesToRespawn: a drop repeated past the retry
// budget is a rank failure, and the respawn path heals it with an
// identical cut — the drop self-disarms because its position fired.
func TestRetryExhaustionEscalatesToRespawn(t *testing.T) {
	g := gen.Grid2D(32, 32)
	const p = 4
	base, err := PartitionChecked(g.G, p, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	// Point-to-point sends only happen in the embed phase (coarsen and
	// partition communicate through collectives), so that is where drop
	// faults can bite.
	ev := sendEventFor(t, g.G, DefaultOptions(3), p, 1, "embed")
	opt := DefaultOptions(3)
	// Repeat 10 > budget 3: the link is declared dead mid-embed.
	opt.Model.Faults = mpi.NewFaultPlan().DropN(1, ev, 10)
	opt.Recover = RecoverOptions{Policy: RecoverRespawn}
	res, err := PartitionChecked(g.G, p, opt)
	if err != nil {
		t.Fatalf("exhausted retry budget not recovered: %v", err)
	}
	if res.Recovery == nil || res.Recovery.Respawns < 1 || res.Recovery.Disarmed < 1 {
		t.Fatalf("unexpected recovery stats %+v", res.Recovery)
	}
	if res.Cut != base.Cut {
		t.Fatalf("respawned cut %d != fault-free cut %d", res.Cut, base.Cut)
	}
	if err := CheckResult(g.G, res); err != nil {
		t.Fatal(err)
	}
}

// TestHealedDropNeedsNoDriver: a drop within the retry budget is healed
// entirely inside the runtime — one attempt, same cut, slower clock.
func TestHealedDropNeedsNoDriver(t *testing.T) {
	g := gen.Grid2D(32, 32)
	const p = 4
	base, err := PartitionChecked(g.G, p, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	ev := sendEventFor(t, g.G, DefaultOptions(3), p, 1, "embed")
	opt := DefaultOptions(3)
	opt.Model.Faults = mpi.NewFaultPlan().Drop(1, ev)
	opt.Recover = RecoverOptions{Policy: RecoverRespawn}
	res, err := PartitionChecked(g.G, p, opt)
	if err != nil {
		t.Fatalf("in-budget drop not healed: %v", err)
	}
	if res.Recovery.Attempts != 1 || res.Recovery.Respawns != 0 {
		t.Fatalf("healing should not involve the driver: %+v", res.Recovery)
	}
	if res.Cut != base.Cut {
		t.Fatalf("healed cut %d != fault-free cut %d", res.Cut, base.Cut)
	}
	if res.Times.Total <= base.Times.Total {
		t.Fatalf("healed run total %.12g not slower than fault-free %.12g (backoff not charged?)",
			res.Times.Total, base.Times.Total)
	}
}

// TestRecoveryExhaustionFallsBack: when kills outnumber the respawn and
// shrink budgets, the driver reaches the sequential baseline — and only
// then.
func TestRecoveryExhaustionFallsBack(t *testing.T) {
	g := gen.Grid2D(32, 32)
	const p = 4
	opt := DefaultOptions(3)
	// One rank death per attempt, at well-separated positions so each
	// armed fault survives the previous attempt's disarming: rank 1 dies
	// in attempt 1, again in the respawned attempt 2, and (renumbered
	// from rank 2 by the shrink) the P−1 world dies in attempt 3 —
	// overwhelming a budget of one respawn and one shrink.
	opt.Model.Faults = mpi.NewFaultPlan().Kill(1, 2).Kill(1, 8).Kill(2, 60)
	opt.Recover = RecoverOptions{Policy: RecoverRespawn, MaxRespawns: 1, MaxShrinks: 1}
	res, err := PartitionChecked(g.G, p, opt)
	if err != nil {
		t.Fatalf("exhausted recovery must still deliver via fallback: %v", err)
	}
	if !res.Fallback {
		t.Fatal("recovery against an overwhelming schedule did not reach the fallback")
	}
	if res.Recovery == nil || res.Recovery.Respawns != 1 || res.Recovery.Shrinks != 1 {
		t.Fatalf("fallback reached without exhausting both policies: %+v", res.Recovery)
	}
	if err := CheckResult(g.G, res); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryStatsString smoke-checks the human-readable summaries.
func TestRecoveryStatsString(t *testing.T) {
	if got := (*RecoveryStats)(nil).String(); got != "recovery: off" {
		t.Fatalf("nil stats: %q", got)
	}
	s := &RecoveryStats{Attempts: 2, Respawns: 1, FinalP: 4}
	if !strings.Contains(s.String(), "1 respawn") || !strings.Contains(s.String(), "P=4") {
		t.Fatalf("stats summary %q", s.String())
	}
	for _, tc := range []struct {
		in   string
		want RecoveryPolicy
		ok   bool
	}{
		{"off", RecoverOff, true}, {"", RecoverOff, true},
		{"respawn", RecoverRespawn, true}, {"SHRINK", RecoverShrink, true},
		{"bogus", RecoverOff, false},
	} {
		got, err := ParseRecoveryPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseRecoveryPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != strings.ToLower(tc.in) && tc.in != "" {
			t.Fatalf("round trip %q -> %v", tc.in, got)
		}
	}
}
