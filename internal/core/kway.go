package core

import (
	"fmt"

	"repro/internal/graph"
)

// KWayResult is the outcome of a recursive k-way partition.
type KWayResult struct {
	Part      []int32 // part id in [0, K) per vertex
	K         int
	EdgeCut   int64
	Imbalance float64
	// Time is the modeled critical-path time: at each recursion level
	// the sub-partitions run concurrently on disjoint rank subsets, so
	// the level cost is the maximum over siblings and the total is the
	// sum over levels.
	Time float64
}

// PartitionKWay splits g into k parts (k a power of two) by recursive
// bisection with ScalaPart, the way a k-way distribution for k
// processors is produced in practice. Each bisection runs on a
// proportional share of the p simulated ranks; sibling sub-problems at
// the same recursion depth are independent, so the modeled time charges
// the per-level maximum.
func PartitionKWay(g *graph.Graph, k, p int, opt Options) *KWayResult {
	if k < 1 || k&(k-1) != 0 {
		panic(fmt.Sprintf("core: PartitionKWay k=%d must be a power of two", k))
	}
	n := g.NumVertices()
	part := make([]int32, n)
	res := &KWayResult{Part: part, K: k}
	if k == 1 {
		return res
	}
	type job struct {
		vertices []int32 // nil means "all of g"
		base     int32
		parts    int
		ranks    int
	}
	jobs := []job{{vertices: nil, base: 0, parts: k, ranks: p}}
	level := 0
	for len(jobs) > 0 {
		var next []job
		levelTime := 0.0
		for _, j := range jobs {
			sub, back := subgraphOf(g, j.vertices)
			ranks := j.ranks
			if ranks < 1 {
				ranks = 1
			}
			sopt := opt
			sopt.Seed = opt.Seed + int64(level)*131 + int64(j.base)
			sopt.Coarsen.Seed = sopt.Seed
			sopt.Embed.Seed = sopt.Seed
			r := Partition(sub, ranks, sopt)
			if r.Times.Total > levelTime {
				levelTime = r.Times.Total
			}
			var lo, hi []int32
			for v, side := range r.Part {
				gid := int32(v)
				if back != nil {
					gid = back[v]
				}
				if side == 0 {
					part[gid] = j.base
					lo = append(lo, gid)
				} else {
					part[gid] = j.base + int32(j.parts/2)
					hi = append(hi, gid)
				}
			}
			if j.parts > 2 {
				next = append(next,
					job{vertices: lo, base: j.base, parts: j.parts / 2, ranks: ranks / 2},
					job{vertices: hi, base: j.base + int32(j.parts/2), parts: j.parts / 2, ranks: ranks - ranks/2},
				)
			}
		}
		res.Time += levelTime
		jobs = next
		level++
	}
	res.EdgeCut = graph.CutSize(g, part)
	res.Imbalance = graph.Imbalance(g, part, k)
	return res
}

// subgraphOf extracts the induced subgraph, or returns g itself for the
// full vertex set.
func subgraphOf(g *graph.Graph, vertices []int32) (*graph.Graph, []int32) {
	if vertices == nil {
		return g, nil
	}
	return graph.InducedSubgraph(g, vertices)
}
