package core

import (
	"fmt"

	"repro/internal/graph"
)

// CheckPartition validates the bisection invariants the partitioners
// promise (the partition half of -check-invariants; the runtime half
// lives in trace.Recorder.CheckInvariants):
//
//   - every vertex is assigned to side 0 or 1;
//   - the side weights sum to the total vertex weight of the graph;
//   - the cut counted from side 0's arcs equals the cut counted from
//     side 1's arcs, and both equal the reported cut;
//   - the reported imbalance equals the canonical definition
//     graph.Imbalance2 applied to the side weights, bit-for-bit.
func CheckPartition(g *graph.Graph, part []int32, cut int64, imbalance float64) error {
	n := g.NumVertices()
	if len(part) != n {
		return fmt.Errorf("partition invariant: len(part)=%d, want %d vertices", len(part), n)
	}
	var w [2]int64
	for v := int32(0); v < int32(n); v++ {
		s := part[v]
		if s != 0 && s != 1 {
			return fmt.Errorf("partition invariant: part[%d]=%d, want 0 or 1", v, s)
		}
		w[s] += int64(g.VertexWeight(v))
	}
	if total := g.TotalVertexWeight(); w[0]+w[1] != total {
		return fmt.Errorf("partition invariant: side weights %d+%d != total vertex weight %d",
			w[0], w[1], total)
	}
	// Count the cut twice, once from each side's outgoing arcs: every
	// cut edge (u,v) contributes its arc weight to its side-0 endpoint's
	// count and to its side-1 endpoint's count, so the two must agree.
	var fromSide [2]int64
	cur := graph.GetCursor(g)
	for u := int32(0); u < int32(n); u++ {
		nbrs, wgts := cur.Arcs(u)
		for k, v := range nbrs {
			if part[v] != part[u] {
				fromSide[part[u]] += int64(wgts[k])
			}
		}
	}
	cur.Release()
	if fromSide[0] != fromSide[1] {
		return fmt.Errorf("partition invariant: cut counted from side 0 is %d but from side 1 is %d",
			fromSide[0], fromSide[1])
	}
	if fromSide[0] != cut {
		return fmt.Errorf("partition invariant: reported cut %d, recount gives %d", cut, fromSide[0])
	}
	if want := graph.Imbalance2(w[0], w[1]); imbalance != want {
		return fmt.Errorf("partition invariant: reported imbalance %v, side weights give %v", imbalance, want)
	}
	return nil
}

// CheckResult applies CheckPartition to a pipeline Result.
func CheckResult(g *graph.Graph, res *Result) error {
	return CheckPartition(g, res.Part, res.Cut, res.Imbalance)
}
