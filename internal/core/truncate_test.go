package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// TestTruncatedEmbedPayloadSurfacesDescriptiveError: a TruncatePayload
// fault that corrupts an embedding ghost-refresh or neighbourhood
// message must surface as a RankError explaining what was truncated —
// not as a bare index-out-of-range panic from deep inside the lattice
// code. The event numbers pin the two guarded exchanges of the
// deterministic 32x32/P=4/seed-3 run (found by sweeping the fault
// position over every event).
func TestTruncatedEmbedPayloadSurfacesDescriptiveError(t *testing.T) {
	cases := []struct {
		name  string
		event int64
		want  string
	}{
		{"ghost refresh", 38, "ghost refresh from rank"},
		{"neighbourhood exchange", 47, "neighbour payload from rank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.Grid2D(32, 32)
			opt := DefaultOptions(3)
			opt.Model.Faults = mpi.NewFaultPlan().Truncate(1, tc.event)
			_, err := PartitionChecked(g.G, 4, opt)
			if err == nil {
				t.Fatal("truncated payload went unnoticed")
			}
			var re *mpi.RankError
			if !errors.As(err, &re) {
				t.Fatalf("want *RankError, got %T: %v", err, err)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.want) || !strings.Contains(msg, "truncated payload?") {
				t.Fatalf("error does not describe the truncation: %v", err)
			}
			if strings.Contains(msg, "index out of range") || strings.Contains(msg, "slice bounds") {
				t.Fatalf("raw bounds panic leaked through: %v", err)
			}
		})
	}
}
