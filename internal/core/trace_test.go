package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the trace and breakdown golden files")

// tracedRun partitions the deterministic 32x32 grid at p ranks with a
// fresh Recorder attached.
func tracedRun(t *testing.T, p int) (*Result, *trace.Recorder) {
	t.Helper()
	g := gen.Grid2D(32, 32)
	opt := DefaultOptions(3)
	rec := trace.New()
	opt.Model.Trace = rec
	res, err := PartitionChecked(g.G, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update-golden ./internal/core/` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden file; inspect the diff and re-run with -update-golden if intended.\n--- got ---\n%s", name, got)
	}
}

// TestGoldenTraceExports pins the exact rendered breakdown table and
// Chrome trace JSON for the deterministic grid run at P=1 and P=4. The
// virtual clocks are platform-independent, so these bytes must never
// drift unless the cost model or the exporter deliberately changes.
func TestGoldenTraceExports(t *testing.T) {
	for _, p := range []int{1, 4} {
		_, rec := tracedRun(t, p)
		checkGolden(t, fmt.Sprintf("breakdown_p%d.txt", p), []byte(rec.Breakdown().Table()))
		var buf bytes.Buffer
		if err := rec.ChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("trace_p%d.json", p), buf.Bytes())
	}
}

// TestPhaseSpansSumToFinalClocks is the acceptance requirement that the
// per-phase virtual-time spans telescope: for every rank, phase
// durations sum to the rank's final clock within 1e-9.
func TestPhaseSpansSumToFinalClocks(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		res, rec := tracedRun(t, p)
		b := rec.Breakdown()
		if len(b.Ranks) != p {
			t.Fatalf("P=%d: breakdown covers %d ranks", p, len(b.Ranks))
		}
		for r, phases := range b.Ranks {
			var sum float64
			for _, ph := range phases {
				sum += ph.Time
			}
			if diff := sum - res.Stats[r].Time; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("P=%d rank %d: phase spans sum to %.12g, final clock %.12g",
					p, r, sum, res.Stats[r].Time)
			}
		}
	}
}

// TestPipelineInvariantsAcrossP runs the full checker stack — runtime
// trace invariants plus partition invariants — at every acceptance rank
// count.
func TestPipelineInvariantsAcrossP(t *testing.T) {
	g := gen.Grid2D(48, 48)
	for _, p := range []int{1, 4, 16, 64} {
		opt := DefaultOptions(7)
		rec := trace.New()
		opt.Model.Trace = rec
		res, err := PartitionChecked(g.G, p, opt)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := CheckResult(g.G, res); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

// TestTracingKeepsPipelineBitIdentical: attaching a Recorder to the
// full pipeline must not move a single modeled quantity.
func TestTracingKeepsPipelineBitIdentical(t *testing.T) {
	g := gen.Grid2D(32, 32)
	for _, p := range []int{1, 4, 16, 64} {
		plain, err := PartitionChecked(g.G, p, DefaultOptions(3))
		if err != nil {
			t.Fatal(err)
		}
		traced, rec := tracedRun(t, p)
		if plain.Cut != traced.Cut || plain.Imbalance != traced.Imbalance ||
			plain.Times != traced.Times {
			t.Fatalf("P=%d: tracing changed results:\n  off: cut=%d imb=%v %+v\n  on:  cut=%d imb=%v %+v",
				p, plain.Cut, plain.Imbalance, plain.Times, traced.Cut, traced.Imbalance, traced.Times)
		}
		for r := range plain.Stats {
			if plain.Stats[r] != traced.Stats[r] {
				t.Fatalf("P=%d rank %d stats diverged: %+v vs %+v", p, r, plain.Stats[r], traced.Stats[r])
			}
		}
		_ = rec
	}
}

// TestCheckPartitionCatchesCorruption: the partition half of
// -check-invariants must reject a tampered result.
func TestCheckPartitionCatchesCorruption(t *testing.T) {
	g := gen.Grid2D(24, 24)
	res, err := PartitionChecked(g.G, 4, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckResult(g.G, res); err != nil {
		t.Fatalf("healthy result rejected: %v", err)
	}
	bad := make([]int32, len(res.Part))
	copy(bad, res.Part)
	bad[0] = 1 - bad[0]
	if err := CheckPartition(g.G, bad, res.Cut, res.Imbalance); err == nil {
		t.Fatal("flipped vertex not detected")
	}
	if err := CheckPartition(g.G, res.Part, res.Cut+1, res.Imbalance); err == nil {
		t.Fatal("wrong cut not detected")
	}
	if err := CheckPartition(g.G, res.Part, res.Cut, res.Imbalance+1e-9); err == nil {
		t.Fatal("wrong imbalance not detected")
	}
	bad2 := make([]int32, len(res.Part))
	copy(bad2, res.Part)
	bad2[1] = 2
	if err := CheckPartition(g.G, bad2, res.Cut, res.Imbalance); err == nil {
		t.Fatal("out-of-range side not detected")
	}
}
