package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/geopart"
)

// TestBatchingBitIdentical runs the full pipeline with the batched
// geometric-candidate kernel enabled and disabled and requires
// bit-identical outcomes at every world size: same cut, same per-vertex
// partition, same per-rank virtual clocks and message traffic. The
// batched kernel is a host-side rearrangement of the same arithmetic
// (edge-topology cache, fused projections, bitset sides); any visible
// difference means it changed an evaluation order or a modeled charge.
func TestBatchingBitIdentical(t *testing.T) {
	g := gen.Grid2D(40, 40)
	for _, p := range []int{1, 4, 16, 64} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			defer geopart.SetBatching(geopart.SetBatching(true))
			batched := Partition(g.G, p, DefaultOptions(42))
			geopart.SetBatching(false)
			plain := Partition(g.G, p, DefaultOptions(42))
			if batched.Cut != plain.Cut {
				t.Errorf("cut differs: batched %d plain %d", batched.Cut, plain.Cut)
			}
			if len(batched.Part) != len(plain.Part) {
				t.Fatalf("partition length differs: %d vs %d", len(batched.Part), len(plain.Part))
			}
			for v := range batched.Part {
				if batched.Part[v] != plain.Part[v] {
					t.Fatalf("vertex %d assigned to part %d batched, %d plain", v, batched.Part[v], plain.Part[v])
				}
			}
			if len(batched.Stats) != len(plain.Stats) {
				t.Fatalf("stats length differs: %d vs %d", len(batched.Stats), len(plain.Stats))
			}
			for r := range batched.Stats {
				a, b := batched.Stats[r], plain.Stats[r]
				if a.Time != b.Time || a.CommTime != b.CommTime {
					t.Errorf("rank %d clocks differ: batched (%v, %v) plain (%v, %v)",
						r, a.Time, a.CommTime, b.Time, b.CommTime)
				}
				if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
					t.Errorf("rank %d traffic differs: batched (%d msg, %d B) plain (%d msg, %d B)",
						r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
				}
			}
		})
	}
}
