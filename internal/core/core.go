// Package core is ScalaPart: the paper's parallel multilevel embedded
// graph partitioner. A run coarsens the graph ParMetis-style with the
// active processor count quartering every retained level, embeds the
// coarsest graph with the fixed-lattice force scheme, smooths the
// embedding back up the hierarchy, bisects the embedded graph with the
// parallel geometric mesh partitioner (SP-PG7-NL), and refines the cut
// with Fiduccia–Mattheyses on a coordinate strip.
//
// Everything runs on the simulated message-passing runtime of
// internal/mpi: results (cuts, partitions) come from the genuinely
// parallel algorithm, execution times come from the runtime's virtual
// clocks.
package core

import (
	"repro/internal/coarsen"
	"repro/internal/embed"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// Options configures a ScalaPart run.
type Options struct {
	Coarsen   coarsen.Options
	Embed     embed.ParallelOptions
	Partition geopart.ParallelConfig
	Model     mpi.Model
	// CoarsenRounds is the number of matching-negotiation communication
	// rounds charged per coarsening step (ParMetis-style distributed
	// matching resolves match conflicts over several rounds). Default 4.
	CoarsenRounds int
	Seed          int64
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: quartering hierarchy, block size 4, SP-PG7-NL with strip
// refinement.
func DefaultOptions(seed int64) Options {
	return Options{
		Coarsen:   coarsen.Options{Seed: seed, VertsPerRank: 96},
		Embed:     embed.ParallelOptions{Seed: seed},
		Partition: geopart.DefaultParallelConfig(),
		Model:     mpi.DefaultModel(),
		Seed:      seed,
	}
}

// PhaseTimes breaks the modeled execution time (max over ranks) into
// the three components of Figure 7, with the communication share of
// each (Figure 8).
type PhaseTimes struct {
	Coarsen, Embed, Partition, Total      float64
	CoarsenComm, EmbedComm, PartitionComm float64
	TotalComm                             float64
}

// Result is the outcome of a parallel partitioning run.
type Result struct {
	Part      []int32 // global bisection, assembled outside the timed region
	Cut       int64
	CutBefore int64 // cut before strip refinement
	Imbalance float64
	StripSize int
	P         int
	Times     PhaseTimes
	Stats     []mpi.RankStats
}

// Partition runs ScalaPart on p simulated ranks and returns the global
// bisection with its modeled timing breakdown.
func Partition(g *graph.Graph, p int, opt Options) *Result {
	if opt.Model == (mpi.Model{}) {
		opt.Model = mpi.DefaultModel()
	}
	if opt.Coarsen.Seed == 0 {
		opt.Coarsen.Seed = opt.Seed
	}
	if opt.Embed.Seed == 0 {
		opt.Embed.Seed = opt.Seed
	}
	if opt.CoarsenRounds == 0 {
		opt.CoarsenRounds = 4
	}
	h := coarsen.BuildHierarchy(g, p, opt.Coarsen)
	boundary := coarsen.BoundaryEdges(h)

	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut, cutBefore int64
	var imb float64
	var strip int
	stats := mpi.Run(p, opt.Model, func(c *mpi.Comm) {
		t := &times[c.Rank()]
		ph := c.StartPhase()
		coarsen.ChargeCosts(c, h, boundary, opt.CoarsenRounds, 2)
		t.Coarsen, t.CoarsenComm = ph.Stop()

		ph = c.StartPhase()
		d := embed.ParallelEmbed(c, h, opt.Embed)
		t.Embed, t.EmbedComm = ph.Stop()

		ph = c.StartPhase()
		res := geopart.ParallelPartition(c, g, d, opt.Partition)
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total = c.Elapsed()
		t.TotalComm = c.CommElapsed()

		// Assemble the global partition outside the timed region; each
		// rank owns a disjoint vertex set, so the writes are race-free.
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut, cutBefore = res.Cut, res.CutBefore
			imb = res.Imbalance
			strip = res.StripSize
		}
	})
	return &Result{
		Part:      part,
		Cut:       cut,
		CutBefore: cutBefore,
		Imbalance: imb,
		StripSize: strip,
		P:         p,
		Times:     maxTimes(times),
		Stats:     stats,
	}
}

// PartitionGeometric runs only the parallel geometric partitioner
// SP-PG7-NL on pre-existing coordinates (the paper's Figure 4 and the
// dynamic-repartitioning use case of Section 5): coordinates are
// assumed already distributed, so only partitioning and refinement are
// timed.
func PartitionGeometric(g *graph.Graph, coords []geometry.Vec2, p int, cfg geopart.ParallelConfig, model mpi.Model) *Result {
	if model == (mpi.Model{}) {
		model = mpi.DefaultModel()
	}
	views := embed.SplitCoords(g, coords, p)
	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut, cutBefore int64
	var imb float64
	var strip int
	stats := mpi.Run(p, model, func(c *mpi.Comm) {
		ph := c.StartPhase()
		res := geopart.ParallelPartition(c, g, views[c.Rank()], cfg)
		t := &times[c.Rank()]
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total, t.TotalComm = t.Partition, t.PartitionComm
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut, cutBefore = res.Cut, res.CutBefore
			imb = res.Imbalance
			strip = res.StripSize
		}
	})
	return &Result{
		Part: part, Cut: cut, CutBefore: cutBefore, Imbalance: imb,
		StripSize: strip, P: p, Times: maxTimes(times), Stats: stats,
	}
}

// RCBParallel times Zoltan-style parallel recursive coordinate
// bisection on pre-existing coordinates, the paper's scalability
// yardstick.
func RCBParallel(g *graph.Graph, coords []geometry.Vec2, p int, model mpi.Model) *Result {
	if model == (mpi.Model{}) {
		model = mpi.DefaultModel()
	}
	views := embed.SplitCoords(g, coords, p)
	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut int64
	var imb float64
	stats := mpi.Run(p, model, func(c *mpi.Comm) {
		ph := c.StartPhase()
		res := geopart.ParallelRCB(c, g, views[c.Rank()])
		t := &times[c.Rank()]
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total, t.TotalComm = t.Partition, t.PartitionComm
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut = res.Cut
			imb = res.Imbalance
		}
	})
	return &Result{
		Part: part, Cut: cut, CutBefore: cut, Imbalance: imb,
		P: p, Times: maxTimes(times), Stats: stats,
	}
}

// maxTimes reduces per-rank phase times to their maxima, the modeled
// parallel time of each phase.
func maxTimes(ts []PhaseTimes) PhaseTimes {
	var m PhaseTimes
	for _, t := range ts {
		m.Coarsen = max2(m.Coarsen, t.Coarsen)
		m.Embed = max2(m.Embed, t.Embed)
		m.Partition = max2(m.Partition, t.Partition)
		m.Total = max2(m.Total, t.Total)
		m.CoarsenComm = max2(m.CoarsenComm, t.CoarsenComm)
		m.EmbedComm = max2(m.EmbedComm, t.EmbedComm)
		m.PartitionComm = max2(m.PartitionComm, t.PartitionComm)
		m.TotalComm = max2(m.TotalComm, t.TotalComm)
	}
	return m
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
