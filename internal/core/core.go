// Package core is ScalaPart: the paper's parallel multilevel embedded
// graph partitioner. A run coarsens the graph ParMetis-style with the
// active processor count quartering every retained level, embeds the
// coarsest graph with the fixed-lattice force scheme, smooths the
// embedding back up the hierarchy, bisects the embedded graph with the
// parallel geometric mesh partitioner (SP-PG7-NL), and refines the cut
// with Fiduccia–Mattheyses on a coordinate strip.
//
// Everything runs on the simulated message-passing runtime of
// internal/mpi: results (cuts, partitions) come from the genuinely
// parallel algorithm, execution times come from the runtime's virtual
// clocks.
package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/coarsen"
	"repro/internal/embed"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// Options configures a ScalaPart run.
type Options struct {
	Coarsen   coarsen.Options
	Embed     embed.ParallelOptions
	Partition geopart.ParallelConfig
	Model     mpi.Model
	// CoarsenRounds is the number of matching-negotiation communication
	// rounds charged per coarsening step (ParMetis-style distributed
	// matching resolves match conflicts over several rounds). Default 4.
	CoarsenRounds int
	Seed          int64
	// Trials > 1 enables the evolutionary search: the embed+partition
	// tail runs Trials times with decorrelated RNG streams inside one
	// simulated world (the modeled clock pays for all of them), and the
	// two best bisections are combined by freeing their disagreement
	// region under one distributed FM round. 0 or 1 means the single
	// historical pipeline pass. Incompatible with recovery.
	Trials int
	// Recover configures rollback recovery: with a non-off policy, rank
	// failures roll back to level checkpoints and the run continues
	// (respawned or shrunken) instead of aborting. The zero value keeps
	// the historical abort-on-failure behaviour. See RecoverOptions.
	Recover RecoverOptions
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: quartering hierarchy, block size 4, SP-PG7-NL with strip
// refinement.
func DefaultOptions(seed int64) Options {
	return Options{
		Coarsen:   coarsen.Options{Seed: seed, VertsPerRank: 96},
		Embed:     embed.ParallelOptions{Seed: seed},
		Partition: geopart.DefaultParallelConfig(),
		Model:     mpi.DefaultModel(),
		Seed:      seed,
	}
}

// PhaseTimes breaks the modeled execution time (max over ranks) into
// the three components of Figure 7, with the communication share of
// each (Figure 8).
type PhaseTimes struct {
	Coarsen, Embed, Partition, Total      float64
	CoarsenComm, EmbedComm, PartitionComm float64
	TotalComm                             float64
}

// Result is the outcome of a parallel partitioning run.
type Result struct {
	Part      []int32 // global bisection, assembled outside the timed region
	Cut       int64
	CutBefore int64 // cut before strip refinement
	Imbalance float64
	StripSize int
	P         int
	Times     PhaseTimes
	Stats     []mpi.RankStats
	Fallback  bool // true when the result comes from SequentialFallback
	// Recovery summarises what the recovery driver did; nil when
	// recovery was off. Attempts == 1 means the first world succeeded.
	Recovery *RecoveryStats
}

// Partition runs ScalaPart on p simulated ranks and returns the global
// bisection with its modeled timing breakdown. It panics if a rank
// fails; use PartitionChecked to receive the failure as an error.
func Partition(g *graph.Graph, p int, opt Options) *Result {
	res, err := PartitionChecked(g, p, opt)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return res
}

// PartitionChecked is Partition with structured error reporting: a rank
// failure (panic, injected fault, or watchdog-detected deadlock) comes
// back as an *mpi.RankError naming the rank and pipeline phase instead
// of crashing the caller.
func PartitionChecked(g *graph.Graph, p int, opt Options) (*Result, error) {
	if opt.Model == (mpi.Model{}) {
		opt.Model = mpi.DefaultModel()
	}
	if opt.Coarsen.Seed == 0 {
		opt.Coarsen.Seed = opt.Seed
	}
	if opt.Embed.Seed == 0 {
		opt.Embed.Seed = opt.Seed
	}
	if opt.CoarsenRounds == 0 {
		opt.CoarsenRounds = 4
	}
	if opt.Trials > 1 {
		// Routed before recovery so a Trials+Recover combination surfaces
		// as partitionEvolve's explicit error instead of silently running
		// single-trial.
		return partitionEvolve(g, p, opt)
	}
	if opt.Recover.Policy != RecoverOff {
		return partitionRecover(g, p, opt)
	}
	h := coarsen.BuildHierarchy(g, p, opt.Coarsen)
	boundary := coarsen.BoundaryEdges(h)
	res, _, err := runAttempt(g, opt, attemptConfig{
		p: p, start: stageStart, model: opt.Model, h: h, boundary: boundary,
	})
	return res, err
}

// SequentialFallback partitions g with the single-rank ParMetis-like
// baseline under a pristine cost model (no fault plan, no watchdog),
// the recovery path drivers use after a parallel run fails. The result
// is flagged Fallback so reports cannot silently mix degraded runs
// with healthy ones.
func SequentialFallback(g *graph.Graph, seed int64) (*Result, error) {
	cfg := baseline.ParMetisLike(seed)
	cfg.Model = mpi.DefaultModel() // never inherit faults into the recovery path
	res, err := baseline.PartitionChecked(g, 1, cfg)
	if err != nil {
		return nil, fmt.Errorf("sequential fallback failed: %w", err)
	}
	return &Result{
		Part:      res.Part,
		Cut:       res.Cut,
		Imbalance: res.Imbalance,
		P:         1,
		Times:     PhaseTimes{Total: res.Total, TotalComm: res.Comm},
		Stats:     res.Stats,
		Fallback:  true,
	}, nil
}

// PartitionGeometric runs only the parallel geometric partitioner
// SP-PG7-NL on pre-existing coordinates (the paper's Figure 4 and the
// dynamic-repartitioning use case of Section 5): coordinates are
// assumed already distributed, so only partitioning and refinement are
// timed.
func PartitionGeometric(g *graph.Graph, coords []geometry.Vec2, p int, cfg geopart.ParallelConfig, model mpi.Model) *Result {
	res, err := PartitionGeometricChecked(g, coords, p, cfg, model)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return res
}

// PartitionGeometricChecked is PartitionGeometric with structured error
// reporting instead of panics.
func PartitionGeometricChecked(g *graph.Graph, coords []geometry.Vec2, p int, cfg geopart.ParallelConfig, model mpi.Model) (*Result, error) {
	if model == (mpi.Model{}) {
		model = mpi.DefaultModel()
	}
	views := embed.SplitCoords(g, coords, p)
	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut, cutBefore int64
	var imb float64
	var strip int
	stats, err := mpi.RunChecked(p, model, func(c *mpi.Comm) {
		c.SetPhase("partition")
		ph := c.StartPhase()
		res := geopart.ParallelPartition(c, g, views[c.Rank()], cfg)
		t := &times[c.Rank()]
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total, t.TotalComm = t.Partition, t.PartitionComm
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut, cutBefore = res.Cut, res.CutBefore
			imb = res.Imbalance
			strip = res.StripSize
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Part: part, Cut: cut, CutBefore: cutBefore, Imbalance: imb,
		StripSize: strip, P: p, Times: maxTimes(times), Stats: stats,
	}, nil
}

// RCBParallel times Zoltan-style parallel recursive coordinate
// bisection on pre-existing coordinates, the paper's scalability
// yardstick.
func RCBParallel(g *graph.Graph, coords []geometry.Vec2, p int, model mpi.Model) *Result {
	res, err := RCBParallelChecked(g, coords, p, model)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return res
}

// RCBParallelChecked is RCBParallel with structured error reporting
// instead of panics.
func RCBParallelChecked(g *graph.Graph, coords []geometry.Vec2, p int, model mpi.Model) (*Result, error) {
	if model == (mpi.Model{}) {
		model = mpi.DefaultModel()
	}
	views := embed.SplitCoords(g, coords, p)
	part := make([]int32, g.NumVertices())
	times := make([]PhaseTimes, p)
	var cut int64
	var imb float64
	stats, err := mpi.RunChecked(p, model, func(c *mpi.Comm) {
		c.SetPhase("rcb")
		ph := c.StartPhase()
		res := geopart.ParallelRCB(c, g, views[c.Rank()])
		t := &times[c.Rank()]
		t.Partition, t.PartitionComm = ph.Stop()
		t.Total, t.TotalComm = t.Partition, t.PartitionComm
		for i, id := range res.OwnedIDs {
			part[id] = res.Side[i]
		}
		if c.Rank() == 0 {
			cut = res.Cut
			imb = res.Imbalance
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Part: part, Cut: cut, CutBefore: cut, Imbalance: imb,
		P: p, Times: maxTimes(times), Stats: stats,
	}, nil
}

// maxTimes reduces per-rank phase times to their maxima, the modeled
// parallel time of each phase.
func maxTimes(ts []PhaseTimes) PhaseTimes {
	var m PhaseTimes
	for _, t := range ts {
		m.Coarsen = max2(m.Coarsen, t.Coarsen)
		m.Embed = max2(m.Embed, t.Embed)
		m.Partition = max2(m.Partition, t.Partition)
		m.Total = max2(m.Total, t.Total)
		m.CoarsenComm = max2(m.CoarsenComm, t.CoarsenComm)
		m.EmbedComm = max2(m.EmbedComm, t.EmbedComm)
		m.PartitionComm = max2(m.PartitionComm, t.PartitionComm)
		m.TotalComm = max2(m.TotalComm, t.TotalComm)
	}
	return m
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
