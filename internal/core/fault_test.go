package core

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// TestPartitionCheckedReportsInjectedFault: a kill fault inside the
// full pipeline surfaces as a RankError naming the rank and the
// pipeline phase, never as a hang or panic.
func TestPartitionCheckedReportsInjectedFault(t *testing.T) {
	g := gen.Grid2D(32, 32)
	opt := DefaultOptions(3)
	opt.Model.Faults = mpi.NewFaultPlan().Kill(1, 4)
	_, err := PartitionChecked(g.G, 4, opt)
	if err == nil {
		t.Fatal("expected error")
	}
	var re *mpi.RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("want RankError at rank 1, got %v", err)
	}
	var inj *mpi.InjectedFault
	if !errors.As(err, &inj) {
		t.Fatalf("error does not wrap the injected fault: %v", err)
	}
	if re.Phase == "" {
		t.Fatalf("no pipeline phase recorded: %+v", re)
	}
}

// TestPartitionCheckedHealthyMatchesPartition: without faults the
// checked variant is bit-identical to the panicking one.
func TestPartitionCheckedHealthyMatchesPartition(t *testing.T) {
	g := gen.Grid2D(32, 32)
	a := Partition(g.G, 8, DefaultOptions(5))
	b, err := PartitionChecked(g.G, 8, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut != b.Cut || a.Times.Total != b.Times.Total || a.Times.TotalComm != b.Times.TotalComm {
		t.Fatalf("checked run diverged: %+v vs %+v", a.Times, b.Times)
	}
}

// TestSequentialFallbackProducesValidBisection: the recovery path must
// deliver a balanced two-way partition covering every vertex, flagged
// as a fallback.
func TestSequentialFallbackProducesValidBisection(t *testing.T) {
	g := gen.Grid2D(40, 40)
	res, err := SequentialFallback(g.G, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("fallback result not flagged")
	}
	if len(res.Part) != g.G.NumVertices() {
		t.Fatalf("partition covers %d of %d vertices", len(res.Part), g.G.NumVertices())
	}
	for _, s := range res.Part {
		if s != 0 && s != 1 {
			t.Fatalf("side %d out of range", s)
		}
	}
	if got := graph.CutSize(g.G, res.Part); got != res.Cut {
		t.Fatalf("reported cut %d, actual %d", res.Cut, got)
	}
	if res.Imbalance > 0.1 {
		t.Fatalf("imbalance %v", res.Imbalance)
	}
}

// TestSequentialFallbackIgnoresFaultyCallerModel: the fallback always
// runs under a pristine model, so it succeeds even when every parallel
// configuration the caller holds is poisoned with faults.
func TestSequentialFallbackIgnoresFaultyCallerModel(t *testing.T) {
	g := gen.Grid2D(24, 24)
	opt := DefaultOptions(9)
	opt.Model.Faults = mpi.NewFaultPlan().Kill(0, 0)
	if _, err := PartitionChecked(g.G, 4, opt); err == nil {
		t.Fatal("poisoned run unexpectedly succeeded")
	}
	res, err := SequentialFallback(g.G, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut <= 0 {
		t.Fatalf("fallback cut %d", res.Cut)
	}
}
