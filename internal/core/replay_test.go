package core

import (
	"fmt"
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// TestReplayModesBitIdentical is the PR 7 contract: the host-parallel
// embedding kernels and the batched rank-stepping scheduler are pure
// host-performance features, so the full pipeline must produce
// bit-identical cuts, partitions, virtual clocks, and message traffic
// across worker counts 1/2/8 and both replay modes — including batched
// worlds where simulated P far exceeds the worker batch. The reference
// is the fully legacy configuration: serial embedding kernels,
// goroutine-per-rank replay.
func TestReplayModesBitIdentical(t *testing.T) {
	g := gen.Grid2D(96, 96)
	for _, p := range []int{1, 4, 16, 64} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			defer embed.SetParallel(embed.SetParallel(false))
			defer mpi.SetReplayMode(mpi.SetReplayMode(mpi.ReplayGoroutine))
			serial := Partition(g.G, p, DefaultOptions(42))
			embed.SetParallel(true)
			for _, mode := range []mpi.ReplayMode{mpi.ReplayGoroutine, mpi.ReplayBatched} {
				mpi.SetReplayMode(mode)
				for _, w := range []int{1, 2, 8} {
					defer hostpar.SetWorkers(hostpar.SetWorkers(w))
					par := Partition(g.G, p, DefaultOptions(42))
					tag := fmt.Sprintf("replay=%s workers=%d", mode, w)
					if par.Cut != serial.Cut {
						t.Errorf("%s: cut differs: got %d serial %d", tag, par.Cut, serial.Cut)
					}
					if len(par.Part) != len(serial.Part) {
						t.Fatalf("%s: partition length differs: %d vs %d", tag, len(par.Part), len(serial.Part))
					}
					for v := range par.Part {
						if par.Part[v] != serial.Part[v] {
							t.Fatalf("%s: vertex %d assigned to part %d, serial %d",
								tag, v, par.Part[v], serial.Part[v])
						}
					}
					if len(par.Stats) != len(serial.Stats) {
						t.Fatalf("%s: stats length differs: %d vs %d", tag, len(par.Stats), len(serial.Stats))
					}
					for r := range par.Stats {
						a, b := par.Stats[r], serial.Stats[r]
						if a.Time != b.Time || a.CommTime != b.CommTime {
							t.Errorf("%s rank %d clocks differ: got (%v, %v) serial (%v, %v)",
								tag, r, a.Time, a.CommTime, b.Time, b.CommTime)
						}
						if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
							t.Errorf("%s rank %d traffic differs: got (%d msg, %d B) serial (%d msg, %d B)",
								tag, r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
						}
					}
				}
			}
		})
	}
}
