package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// TestPoolingBitIdentical runs the full pipeline with message-buffer
// pooling enabled and disabled and requires bit-identical outcomes:
// same cut, same per-vertex partition, same per-rank virtual clocks and
// message counts. Pooling is a host-side optimisation; any visible
// difference means a buffer was reused while the simulation still
// referenced it.
func TestPoolingBitIdentical(t *testing.T) {
	g := gen.Grid2D(40, 40)
	const p = 8
	defer mpi.SetPooling(mpi.SetPooling(true))
	pooled := Partition(g.G, p, DefaultOptions(42))
	mpi.SetPooling(false)
	plain := Partition(g.G, p, DefaultOptions(42))
	if pooled.Cut != plain.Cut {
		t.Errorf("cut differs: pooled %d plain %d", pooled.Cut, plain.Cut)
	}
	if len(pooled.Part) != len(plain.Part) {
		t.Fatalf("partition length differs: %d vs %d", len(pooled.Part), len(plain.Part))
	}
	for v := range pooled.Part {
		if pooled.Part[v] != plain.Part[v] {
			t.Fatalf("vertex %d assigned to part %d pooled, %d plain", v, pooled.Part[v], plain.Part[v])
		}
	}
	if len(pooled.Stats) != len(plain.Stats) {
		t.Fatalf("stats length differs: %d vs %d", len(pooled.Stats), len(plain.Stats))
	}
	for r := range pooled.Stats {
		a, b := pooled.Stats[r], plain.Stats[r]
		if a.Time != b.Time || a.CommTime != b.CommTime {
			t.Errorf("rank %d clocks differ: pooled (%v, %v) plain (%v, %v)",
				r, a.Time, a.CommTime, b.Time, b.CommTime)
		}
		if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
			t.Errorf("rank %d traffic differs: pooled (%d msg, %d B) plain (%d msg, %d B)",
				r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
		}
	}
}
