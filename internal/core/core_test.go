package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// TestScalaPartGrid runs the full pipeline on a grid across rank counts
// and checks that the produced bisection is valid, balanced, and far
// better than a random cut (a 48x48 grid has ~4500 edges; a decent
// geometric bisection cuts well under 200).
func TestScalaPartGrid(t *testing.T) {
	g := gen.Grid2D(48, 48)
	for _, p := range []int{1, 4, 16} {
		res := Partition(g.G, p, DefaultOptions(42))
		if got := graph.CutSize(g.G, res.Part); got != res.Cut {
			t.Fatalf("p=%d: reported cut %d but partition cuts %d", p, res.Cut, got)
		}
		if imb := graph.Imbalance(g.G, res.Part, 2); imb > 0.06 {
			t.Fatalf("p=%d: imbalance %.3f too high", p, imb)
		}
		if res.Cut <= 0 || res.Cut > 500 {
			t.Fatalf("p=%d: implausible cut %d (grid optimum ~48)", p, res.Cut)
		}
		if res.Cut > res.CutBefore {
			t.Fatalf("p=%d: refinement worsened cut %d -> %d", p, res.CutBefore, res.Cut)
		}
		if res.Times.Total <= 0 || res.Times.Embed <= 0 {
			t.Fatalf("p=%d: missing timings %+v", p, res.Times)
		}
		// Each phase max can come from a different rank, so the sum may
		// exceed the total slightly, but never by much.
		sum := res.Times.Coarsen + res.Times.Embed + res.Times.Partition
		if sum > res.Times.Total*1.15 {
			t.Fatalf("p=%d: phase times %.3g far exceed total %.3g", p, sum, res.Times.Total)
		}
	}
}

// TestScalaPartDeterminism: cut and partition must not depend on
// scheduling.
func TestScalaPartDeterminism(t *testing.T) {
	g := gen.DelaunayRandom(2000, 9)
	a := Partition(g.G, 8, DefaultOptions(5))
	b := Partition(g.G, 8, DefaultOptions(5))
	if a.Cut != b.Cut {
		t.Fatalf("cuts differ: %d vs %d", a.Cut, b.Cut)
	}
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatalf("partition differs at %d", i)
		}
	}
	if math.Abs(a.Times.Total-b.Times.Total) > 1e-12 {
		t.Fatalf("modeled times differ: %v vs %v", a.Times.Total, b.Times.Total)
	}
}

// TestPartitionGeometricAndRCB exercise the coordinate-given entry
// points on a mesh with natural coordinates. The RCB-cheaper-than-SP
// assertion holds under the historical single-scan RCB clock (model
// version 1); the Zoltan-faithful default charges RCB's real median
// iterations and inverts it at this graph size (see EXPERIMENTS.md
// § "The quality layer").
func TestPartitionGeometricAndRCB(t *testing.T) {
	defer geopart.SetRCBModel(geopart.SetRCBModel(1))
	g := gen.DelaunayRandom(4000, 3)
	for _, p := range []int{1, 8} {
		spr := PartitionGeometric(g.G, g.Coords, p, geopart.DefaultParallelConfig(), mpi.DefaultModel())
		if got := graph.CutSize(g.G, spr.Part); got != spr.Cut {
			t.Fatalf("SP-PG7-NL p=%d: cut mismatch %d vs %d", p, spr.Cut, got)
		}
		if spr.Imbalance > 0.06 {
			t.Fatalf("SP-PG7-NL p=%d: imbalance %.3f", p, spr.Imbalance)
		}
		rcb := RCBParallel(g.G, g.Coords, p, mpi.DefaultModel())
		if got := graph.CutSize(g.G, rcb.Part); got != rcb.Cut {
			t.Fatalf("RCB p=%d: cut mismatch %d vs %d", p, rcb.Cut, got)
		}
		if rcb.Times.Total >= spr.Times.Total {
			t.Fatalf("p=%d: RCB (%.3g) should be cheaper than SP-PG7-NL (%.3g)", p, rcb.Times.Total, spr.Times.Total)
		}
	}
}
