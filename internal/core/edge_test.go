package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestPipelineDegenerateInputs pushes the full ScalaPart pipeline
// through inputs that stress corner cases: tiny graphs, a star (where
// matching stalls), a path, a disconnected graph, and more ranks than
// vertices. Nothing may panic; balance and cut reporting must stay
// consistent.
func TestPipelineDegenerateInputs(t *testing.T) {
	star := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(0, int32(i))
		}
		return b.Build()
	}
	pathG := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		return b.Build()
	}
	disconnected := func() *graph.Graph {
		b := graph.NewBuilder(40)
		for i := 0; i < 19; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		for i := 20; i < 39; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		return b.Build()
	}
	cases := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"tiny-path-p4", pathG(6), 4},
		{"star-p4", star(50), 4},
		{"star-p16", star(300), 16},
		{"disconnected-p8", disconnected(), 8},
		{"more-ranks-than-verts", pathG(10), 64},
		{"two-vertices", pathG(2), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Partition(tc.g, tc.p, DefaultOptions(7))
			if got := graph.CutSize(tc.g, res.Part); got != res.Cut {
				t.Fatalf("cut mismatch: reported %d actual %d", res.Cut, got)
			}
			if res.Times.Total <= 0 {
				t.Fatal("no time elapsed")
			}
			// Both sides must be populated for n >= 2 (bisection).
			w := graph.PartWeights(tc.g, res.Part, 2)
			if w[0] == 0 || w[1] == 0 {
				t.Fatalf("degenerate bisection: %v", w)
			}
		})
	}
}

// TestPipelineKKTPower: the hub-heavy non-geometric graph class must
// survive the geometric pipeline (the paper's hardest case).
func TestPipelineKKTPower(t *testing.T) {
	g := gen.KKTPower(3000, 44)
	res := Partition(g.G, 16, DefaultOptions(2))
	if got := graph.CutSize(g.G, res.Part); got != res.Cut {
		t.Fatalf("cut mismatch: %d vs %d", res.Cut, got)
	}
	if res.Imbalance > 0.06 {
		t.Fatalf("imbalance %.3f", res.Imbalance)
	}
}

// TestVertsPerRankFolding: with far more ranks than vertices the
// pipeline folds onto fewer active ranks but must still return a
// partition covering every vertex.
func TestVertsPerRankFolding(t *testing.T) {
	g := gen.Grid2D(20, 20) // 400 vertices
	res := Partition(g.G, 256, DefaultOptions(3))
	if len(res.Part) != 400 {
		t.Fatalf("partition covers %d vertices", len(res.Part))
	}
	if res.Cut <= 0 || res.Cut > 200 {
		t.Fatalf("implausible cut %d", res.Cut)
	}
}

// TestTimesScaleDown: modeled time at P=64 must be well below P=1 for a
// decently sized graph.
func TestTimesScaleDown(t *testing.T) {
	g := gen.DelaunayRandom(30000, 4)
	t1 := Partition(g.G, 1, DefaultOptions(5)).Times.Total
	t64 := Partition(g.G, 64, DefaultOptions(5)).Times.Total
	if t64 > t1/3 {
		t.Fatalf("poor modeled scaling: P=1 %.4fs vs P=64 %.4fs", t1, t64)
	}
}

// TestCutBeforeAfterConsistency: strip refinement may only reduce the
// cut, and CutBefore must match a run with refinement disabled.
func TestCutBeforeAfterConsistency(t *testing.T) {
	g := gen.DelaunayRandom(8000, 6)
	opt := DefaultOptions(9)
	with := Partition(g.G, 8, opt)
	opt.Partition.Refine = false
	without := Partition(g.G, 8, opt)
	if with.CutBefore != without.Cut {
		t.Fatalf("CutBefore %d != unrefined cut %d", with.CutBefore, without.Cut)
	}
	if with.Cut > with.CutBefore {
		t.Fatalf("refinement hurt: %d -> %d", with.CutBefore, with.Cut)
	}
}
