package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// TestHighPEnginesBitIdentical extends the PR 7 replay-mode contract to
// the high-P engine of this PR: the fan-in collective rendezvous, the
// ring mailboxes, and the rank arena are pure host-performance
// machinery, so the full pipeline must produce bit-identical cuts,
// partitions, virtual clocks, and message traffic across collective
// engines and replay modes — at the suite's upper communicator sizes,
// where the fan-in chunked scan and the pending-ring growth paths
// actually engage. The reference is the legacy engine under
// goroutine-per-rank replay.
func TestHighPEnginesBitIdentical(t *testing.T) {
	cases := []struct {
		p    int
		side int
	}{
		{1, 96}, {4, 96}, {16, 96}, {64, 96}, {256, 160}, {1024, 256},
	}
	for _, tc := range cases {
		if tc.p > 64 && testing.Short() {
			continue
		}
		t.Run(fmt.Sprintf("P%d", tc.p), func(t *testing.T) {
			g := gen.Grid2D(tc.side, tc.side)
			defer mpi.SetCollectiveEngine(mpi.SetCollectiveEngine(mpi.CollectivesLegacy))
			defer mpi.SetReplayMode(mpi.SetReplayMode(mpi.ReplayGoroutine))
			ref := Partition(g.G, tc.p, DefaultOptions(42))
			mpi.SetCollectiveEngine(mpi.CollectivesFanin)
			for _, mode := range []mpi.ReplayMode{mpi.ReplayGoroutine, mpi.ReplayBatched} {
				mpi.SetReplayMode(mode)
				got := Partition(g.G, tc.p, DefaultOptions(42))
				tag := fmt.Sprintf("fanin replay=%s", mode)
				if got.Cut != ref.Cut {
					t.Errorf("%s: cut differs: got %d legacy %d", tag, got.Cut, ref.Cut)
				}
				for v := range got.Part {
					if got.Part[v] != ref.Part[v] {
						t.Fatalf("%s: vertex %d assigned to part %d, legacy %d",
							tag, v, got.Part[v], ref.Part[v])
					}
				}
				for r := range got.Stats {
					a, b := got.Stats[r], ref.Stats[r]
					if a.Time != b.Time || a.CommTime != b.CommTime {
						t.Errorf("%s rank %d clocks differ: got (%v, %v) legacy (%v, %v)",
							tag, r, a.Time, a.CommTime, b.Time, b.CommTime)
					}
					if a.Messages != b.Messages || a.BytesSent != b.BytesSent {
						t.Errorf("%s rank %d traffic differs: got (%d msg, %d B) legacy (%d msg, %d B)",
							tag, r, a.Messages, a.BytesSent, b.Messages, b.BytesSent)
					}
				}
			}
		})
	}
}
