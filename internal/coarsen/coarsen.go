// Package coarsen implements ParMetis-style multilevel graph
// coarsening: randomized heavy-edge matching, graph contraction with
// weight accumulation, and hierarchy construction. Matching can be
// restricted to contiguous ownership blocks, which reproduces the
// behaviour of distributed matching where each processor matches only
// vertices it owns (cross-processor edges are never contracted) — the
// hierarchy therefore genuinely depends on the processor count, as the
// paper's cut-size-vs-P ranges require.
//
// Following Section 3 of the paper, BuildHierarchy retains only every
// other coarsening step, so consecutive retained levels shrink by
// roughly one quarter while the active processor count drops by the
// same factor.
package coarsen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hostpar"
)

// HeavyEdgeMatch computes a randomized heavy-edge matching. Vertices
// are visited in random order; an unmatched vertex matches its
// unmatched neighbour with the heaviest connecting edge among those
// allowed. The returned slice maps every vertex to its partner (itself
// when unmatched). allowed may be nil to permit every edge.
func HeavyEdgeMatch(g *graph.Graph, rng *rand.Rand, allowed func(u, v int32) bool) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = int32(i)
	}
	cur := graph.GetCursor(g)
	defer cur.Release()
	order := rng.Perm(n)
	for _, ui := range order {
		u := int32(ui)
		if match[u] != u {
			continue
		}
		var best int32 = -1
		var bestW int32 = -1
		nbrs, wgts := cur.Arcs(u)
		for k, v := range nbrs {
			if match[v] != v || v == u {
				continue
			}
			if allowed != nil && !allowed(u, v) {
				continue
			}
			if w := wgts[k]; w > bestW {
				bestW, best = w, v
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		}
	}
	return match
}

// Contract builds the coarse graph induced by match: one coarse vertex
// per matched pair or unmatched singleton, vertex weights summed, and
// parallel edges between coarse vertices merged with accumulated
// weights. It returns the coarse graph and the fine→coarse map.
func Contract(g *graph.Graph, match []int32) (*graph.Graph, []int32) {
	cg, f2c, _ := contractBlocked(g, match, []int32{0, int32(g.NumVertices())})
	return cg, f2c
}

// contractBlocked is Contract specialised to contiguous block ownership
// given by offsets (offsets[r] is the first vertex of block r). It runs
// in O(n + m). Large graphs route to the fork-join contraction kernel
// (see parallel.go) unless SetParallel disabled it; the two paths are
// bit-identical.
func contractBlocked(g *graph.Graph, match []int32, offsets []int32) (*graph.Graph, []int32, []int32) {
	if parallelOn.Load() && g.NumVertices() >= contractParMinVerts {
		return contractBlockedParallel(g, match, offsets)
	}
	return contractBlockedSerial(g, match, offsets)
}

// contractBlockedSerial is the legacy single-threaded contraction, kept
// verbatim as the reference the parallel kernel is tested against.
func contractBlockedSerial(g *graph.Graph, match []int32, offsets []int32) (*graph.Graph, []int32, []int32) {
	n := g.NumVertices()
	blocks := len(offsets) - 1
	fineToCoarse := make([]int32, n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	perBlock := make([]int32, blocks)
	next := int32(0)
	for blk := 0; blk < blocks; blk++ {
		start := next
		for v := offsets[blk]; v < offsets[blk+1]; v++ {
			if fineToCoarse[v] >= 0 {
				continue
			}
			u := match[v]
			fineToCoarse[v] = next
			fineToCoarse[u] = next
			next++
		}
		perBlock[blk] = next - start
	}
	b := graph.NewBuilder(int(next))
	cw := make([]int32, next)
	for v := int32(0); v < int32(n); v++ {
		cw[fineToCoarse[v]] += g.VertexWeight(v)
	}
	for cv, w := range cw {
		b.SetVertexWeight(int32(cv), w)
	}
	cur := graph.GetCursor(g)
	defer cur.Release()
	for u := int32(0); u < int32(n); u++ {
		cu := fineToCoarse[u]
		nbrs, wgts := cur.Arcs(u)
		for k, v := range nbrs {
			cv := fineToCoarse[v]
			if cu < cv {
				b.AddWeightedEdge(cu, cv, wgts[k])
			}
		}
	}
	return b.Build(), fineToCoarse, perBlock
}

// Level is one retained level of a hierarchy.
type Level struct {
	G *graph.Graph
	// Ranks is the number of processors active at this level.
	Ranks int
	// Offsets[r] is the first vertex owned by rank r (len Ranks+1);
	// ownership is contiguous by construction.
	Offsets []int32
	// ToCoarse maps this level's vertices to the next retained level's
	// vertices; nil at the coarsest level.
	ToCoarse []int32
	// ChildOffsets/Children index ToCoarse in reverse: the vertices of
	// this level grouped by coarse parent, in CSR form. Built alongside
	// ToCoarse; nil at the coarsest level.
	ChildOffsets []int32
	Children     []int32
}

// ChildrenOf returns this level's vertices whose coarse parent (at the
// next retained level) is coarse.
func (l *Level) ChildrenOf(coarse int32) []int32 {
	return l.Children[l.ChildOffsets[coarse]:l.ChildOffsets[coarse+1]]
}

// Options configures hierarchy construction.
type Options struct {
	// CoarsestSize stops coarsening once a level has at most this many
	// vertices. Default 800.
	CoarsestSize int
	// MinRanks floors the active processor count. Default 1.
	MinRanks int
	// StepsPerLevel is how many matching+contraction steps are fused
	// into one retained level: 2 reproduces the paper's "retain every
	// other graph" quartering; 1 keeps every halving step (used by the
	// level-retention ablation). Default 2.
	StepsPerLevel int
	// RankDecay divides the active rank count at each retained level.
	// Default 1<<StepsPerLevel (the paper's P/4 per quartering level);
	// baselines that keep every rank active at every level use 1.
	RankDecay int
	// VertsPerRank caps the active rank count of every level at
	// n/VertsPerRank (floored at MinRanks): when the graph is small
	// relative to P, work is folded onto fewer ranks rather than spread
	// so thin that blocked matching and the lattice embedding
	// degenerate. 0 disables the cap.
	VertsPerRank int
	// Seed drives the randomized matching.
	Seed int64
}

// capRanks applies the VertsPerRank cap and the MinRanks floor; the
// result never exceeds the available rank count.
func (o Options) capRanks(ranks, n, available int) int {
	if o.VertsPerRank > 0 && ranks > n/o.VertsPerRank {
		ranks = n / o.VertsPerRank
	}
	if ranks < o.MinRanks {
		ranks = o.MinRanks
	}
	if ranks > available {
		ranks = available
	}
	if ranks < 1 {
		ranks = 1
	}
	return ranks
}

func (o Options) withDefaults() Options {
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 800
	}
	if o.MinRanks == 0 {
		o.MinRanks = 1
	}
	if o.StepsPerLevel == 0 {
		o.StepsPerLevel = 2
	}
	return o
}

// Hierarchy is the sequence of retained levels; Levels[0] is the
// original graph on the full processor count.
type Hierarchy struct {
	Levels []Level
}

// Coarsest returns the last level.
func (h *Hierarchy) Coarsest() *Level { return &h.Levels[len(h.Levels)-1] }

// BuildHierarchy coarsens g over p processors. Matching at every step
// is restricted to the contiguous ownership blocks of the level's
// active ranks, and the active rank count divides by
// 4 (for StepsPerLevel=2) at each retained level, floored at MinRanks.
// Coarsening stops when the coarsest target is reached or a level
// shrinks by less than 10%.
func BuildHierarchy(g *graph.Graph, p int, opt Options) *Hierarchy {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	cur := g
	curRanks := opt.capRanks(p, g.NumVertices(), p)
	offsets := blockOffsets(g.NumVertices(), curRanks)
	h := &Hierarchy{}
	h.Levels = append(h.Levels, Level{G: cur, Ranks: curRanks, Offsets: offsets})
	for cur.NumVertices() > opt.CoarsestSize {
		// One retained level: StepsPerLevel fused matching steps.
		stepG := cur
		stepOffsets := offsets
		var composed []int32
		for s := 0; s < opt.StepsPerLevel; s++ {
			// Matching is unrestricted: distributed HEM matches across
			// processor boundaries with a conflict-resolution protocol
			// whose rounds ChargeCosts accounts for. A matched pair
			// spanning two blocks is contracted into the block of its
			// first endpoint in block order.
			match := HeavyEdgeMatch(stepG, rng, nil)
			cg, f2c, perBlock := contractBlocked(stepG, match, stepOffsets)
			stepG = cg
			stepOffsets = prefixSum(perBlock)
			if composed == nil {
				composed = f2c
			} else {
				cc := composed
				hostpar.For(len(cc), composeGrain, func(i int) {
					cc[i] = f2c[cc[i]]
				})
			}
			if stepG.NumVertices() <= opt.CoarsestSize {
				break
			}
		}
		if float64(stepG.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			break // matching has stalled (e.g. star graphs); stop
		}
		decay := opt.RankDecay
		if decay == 0 {
			decay = 1 << opt.StepsPerLevel
		}
		nextRanks := opt.capRanks(curRanks/decay, stepG.NumVertices(), curRanks)
		// Re-own the coarse level on the reduced rank set by merging
		// consecutive fine-rank blocks.
		nextOffsets := mergeOffsets(stepOffsets, nextRanks)
		fine := &h.Levels[len(h.Levels)-1]
		fine.ToCoarse = composed
		fine.ChildOffsets, fine.Children = invertMap(composed, stepG.NumVertices())
		h.Levels = append(h.Levels, Level{G: stepG, Ranks: nextRanks, Offsets: nextOffsets})
		cur = stepG
		curRanks = nextRanks
		offsets = nextOffsets
	}
	return h
}

// blockOffsets returns BlockRange boundaries as an offsets slice.
func blockOffsets(n, p int) []int32 {
	off := make([]int32, p+1)
	for r := 0; r < p; r++ {
		begin, _ := graph.BlockRange(n, p, r)
		off[r] = int32(begin)
	}
	off[p] = int32(n)
	return off
}

// BlockAllowed returns a match predicate allowing matches only within
// one ownership block (the strictly-local matching variant, kept for
// the coarsening ablation).
func BlockAllowed(offsets []int32) func(u, v int32) bool {
	if len(offsets) == 2 {
		return nil // single block: everything allowed
	}
	return func(u, v int32) bool {
		return blockOf(offsets, u) == blockOf(offsets, v)
	}
}

// blockOf binary-searches the owning block of v.
func blockOf(offsets []int32, v int32) int {
	lo, hi := 0, len(offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if offsets[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func prefixSum(counts []int32) []int32 {
	off := make([]int32, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// mergeOffsets redistributes blocks from len(offsets)-1 ranks down to
// nextRanks by merging consecutive groups.
func mergeOffsets(offsets []int32, nextRanks int) []int32 {
	oldRanks := len(offsets) - 1
	if nextRanks >= oldRanks {
		return offsets
	}
	out := make([]int32, nextRanks+1)
	for r := 0; r <= nextRanks; r++ {
		// Rank r of the new set takes old blocks [r*g, (r+1)*g).
		idx := r * oldRanks / nextRanks
		out[r] = offsets[idx]
	}
	out[nextRanks] = offsets[oldRanks]
	return out
}

// invertMap builds the CSR grouping of fine vertices by coarse parent.
// Large maps route to the chunked counting-sort kernel (parallel.go)
// unless SetParallel disabled it; the two paths are bit-identical.
func invertMap(toCoarse []int32, nCoarse int) (offsets, children []int32) {
	if parallelOn.Load() && len(toCoarse) >= invertParMinVerts {
		return invertMapParallel(toCoarse, nCoarse)
	}
	return invertMapSerial(toCoarse, nCoarse)
}

// invertMapSerial is the legacy cursor-scan inversion, kept verbatim as
// the reference the parallel kernel is tested against.
func invertMapSerial(toCoarse []int32, nCoarse int) (offsets, children []int32) {
	offsets = make([]int32, nCoarse+1)
	for _, cv := range toCoarse {
		offsets[cv+1]++
	}
	for i := 0; i < nCoarse; i++ {
		offsets[i+1] += offsets[i]
	}
	children = make([]int32, len(toCoarse))
	cursor := append([]int32(nil), offsets[:nCoarse]...)
	for v, cv := range toCoarse {
		children[cursor[cv]] = int32(v)
		cursor[cv]++
	}
	return offsets, children
}

// ProjectPartition carries a partition of the coarse level back to the
// fine level via the ToCoarse map.
func ProjectPartition(toCoarse []int32, coarsePart []int32) []int32 {
	fine := make([]int32, len(toCoarse))
	for v, cv := range toCoarse {
		fine[v] = coarsePart[cv]
	}
	return fine
}
