package coarsen

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHeavyEdgeMatchIsMatching(t *testing.T) {
	g := gen.Grid2D(20, 20).G
	rng := rand.New(rand.NewSource(1))
	match := HeavyEdgeMatch(g, rng, nil)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		u := match[v]
		if match[u] != v {
			t.Fatalf("match not symmetric: %d->%d->%d", v, u, match[u])
		}
		if u != v {
			// Partner must be an actual neighbour.
			found := false
			for _, nb := range g.Neighbors(v) {
				if nb == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("%d matched to non-neighbour %d", v, u)
			}
		}
	}
}

func TestHeavyEdgeMatchPrefersHeavy(t *testing.T) {
	// Star of 3 with one heavy edge: the heavy edge is chosen whenever
	// vertex 0 or 1 is visited first (probability 2/3 over the random
	// visit order); only when vertex 2 leads does the light edge match.
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(0, 2, 1)
	g := b.Build()
	heavy := 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		match := HeavyEdgeMatch(g, rng, nil)
		if match[0] == 1 {
			heavy++
		}
	}
	// Expect ~2/3 of 50 = 33; assert comfortably above chance (25).
	if heavy < 28 {
		t.Fatalf("heavy edge matched only %d/50 times", heavy)
	}
}

func TestContractConservesWeight(t *testing.T) {
	g := gen.DelaunayRandom(2000, 5).G
	rng := rand.New(rand.NewSource(3))
	match := HeavyEdgeMatch(g, rng, nil)
	cg, f2c := Contract(g, match)
	if cg.TotalVertexWeight() != g.TotalVertexWeight() {
		t.Fatalf("vertex weight changed: %d -> %d", g.TotalVertexWeight(), cg.TotalVertexWeight())
	}
	if cg.NumVertices() >= g.NumVertices() {
		t.Fatal("no shrinkage")
	}
	// Edge weight between coarse parts is conserved for any partition
	// pulled back through the map: check with a random coarse split.
	cpart := make([]int32, cg.NumVertices())
	for i := range cpart {
		cpart[i] = int32(rand.New(rand.NewSource(int64(i))).Intn(2))
	}
	fpart := ProjectPartition(f2c, cpart)
	if graph.CutSize(g, fpart) != graph.CutSize(cg, cpart) {
		t.Fatalf("cut not conserved: fine %d coarse %d",
			graph.CutSize(g, fpart), graph.CutSize(cg, cpart))
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	g := gen.DelaunayRandom(20000, 7).G
	h := BuildHierarchy(g, 64, Options{Seed: 2})
	if len(h.Levels) < 3 {
		t.Fatalf("only %d levels", len(h.Levels))
	}
	if h.Levels[0].G != g || h.Levels[0].Ranks != 64 {
		t.Fatal("level 0 wrong")
	}
	for i := 0; i+1 < len(h.Levels); i++ {
		a, b := h.Levels[i], h.Levels[i+1]
		ratio := float64(b.G.NumVertices()) / float64(a.G.NumVertices())
		if ratio > 0.6 {
			t.Fatalf("level %d shrank only by %.2f", i, ratio)
		}
		if b.Ranks > a.Ranks {
			t.Fatalf("ranks grew %d -> %d", a.Ranks, b.Ranks)
		}
		if b.G.TotalVertexWeight() != g.TotalVertexWeight() {
			t.Fatalf("level %d lost weight", i+1)
		}
		// ToCoarse maps into the next level.
		for v, cv := range a.ToCoarse {
			if int(cv) >= b.G.NumVertices() {
				t.Fatalf("level %d: vertex %d maps to %d out of range", i, v, cv)
			}
		}
	}
	coarsest := h.Coarsest()
	if coarsest.G.NumVertices() > 800*2 {
		t.Fatalf("coarsest still %d vertices", coarsest.G.NumVertices())
	}
}

func TestChildrenOfInvertsToCoarse(t *testing.T) {
	g := gen.Grid2D(40, 40).G
	h := BuildHierarchy(g, 16, Options{Seed: 5})
	for li := 0; li+1 < len(h.Levels); li++ {
		lev := &h.Levels[li]
		seen := make([]bool, lev.G.NumVertices())
		for cv := int32(0); cv < int32(h.Levels[li+1].G.NumVertices()); cv++ {
			for _, v := range lev.ChildrenOf(cv) {
				if lev.ToCoarse[v] != cv {
					t.Fatalf("level %d: child %d of %d maps to %d", li, v, cv, lev.ToCoarse[v])
				}
				if seen[v] {
					t.Fatalf("level %d: vertex %d listed twice", li, v)
				}
				seen[v] = true
			}
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("level %d: vertex %d not listed as any child", li, v)
			}
		}
	}
}

func TestHierarchyOffsetsPartition(t *testing.T) {
	g := gen.DelaunayRandom(5000, 9).G
	for _, p := range []int{1, 4, 32} {
		h := BuildHierarchy(g, p, Options{Seed: 1})
		for li, lev := range h.Levels {
			if len(lev.Offsets) != lev.Ranks+1 {
				t.Fatalf("p=%d level %d: %d offsets for %d ranks", p, li, len(lev.Offsets), lev.Ranks)
			}
			if lev.Offsets[0] != 0 || int(lev.Offsets[lev.Ranks]) != lev.G.NumVertices() {
				t.Fatalf("p=%d level %d: offsets do not span", p, li)
			}
			for r := 0; r < lev.Ranks; r++ {
				if lev.Offsets[r+1] < lev.Offsets[r] {
					t.Fatalf("p=%d level %d: offsets not monotone", p, li)
				}
			}
		}
	}
}

func TestVertsPerRankCap(t *testing.T) {
	g := gen.Grid2D(16, 16).G // 256 vertices
	h := BuildHierarchy(g, 64, Options{Seed: 1, VertsPerRank: 32})
	if h.Levels[0].Ranks != 256/32 {
		t.Fatalf("level 0 ranks = %d, want %d", h.Levels[0].Ranks, 256/32)
	}
}

func TestStepsPerLevelOne(t *testing.T) {
	g := gen.DelaunayRandom(4000, 3).G
	h2 := BuildHierarchy(g, 4, Options{Seed: 1, StepsPerLevel: 2})
	h1 := BuildHierarchy(g, 4, Options{Seed: 1, StepsPerLevel: 1, RankDecay: 1})
	if len(h1.Levels) <= len(h2.Levels) {
		t.Fatalf("halving hierarchy (%d levels) should be deeper than quartering (%d)",
			len(h1.Levels), len(h2.Levels))
	}
	for _, lev := range h1.Levels {
		if lev.Ranks != 4 {
			t.Fatalf("RankDecay 1 should keep 4 ranks, got %d", lev.Ranks)
		}
	}
}
