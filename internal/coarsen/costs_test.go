package coarsen

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

func TestBoundaryEdgesCountsHalo(t *testing.T) {
	g := gen.Grid2D(10, 10).G
	h := BuildHierarchy(g, 4, Options{Seed: 1})
	b := BoundaryEdges(h)
	if len(b) != len(h.Levels) {
		t.Fatalf("%d entries for %d levels", len(b), len(h.Levels))
	}
	// Cross-check level 0 against a direct recount.
	lev := h.Levels[0]
	for r := 0; r < lev.Ranks; r++ {
		begin, end := lev.Offsets[r], lev.Offsets[r+1]
		var want int64
		for v := begin; v < end; v++ {
			for _, nb := range lev.G.Neighbors(v) {
				if nb < begin || nb >= end {
					want++
				}
			}
		}
		if b[0][r] != want {
			t.Fatalf("rank %d: halo %d, want %d", r, b[0][r], want)
		}
		if want == 0 {
			t.Fatalf("rank %d: zero halo on a connected grid", r)
		}
	}
}

func TestChargeCostsAdvancesClocks(t *testing.T) {
	g := gen.DelaunayRandom(3000, 2).G
	h := BuildHierarchy(g, 8, Options{Seed: 3})
	b := BoundaryEdges(h)
	stats := mpi.Run(8, mpi.DefaultModel(), func(c *mpi.Comm) {
		ChargeCosts(c, h, b, 4, 2)
	})
	for _, s := range stats {
		if s.Time <= 0 {
			t.Fatalf("rank %d: no cost charged", s.Rank)
		}
		if s.CommTime <= 0 || s.CommTime > s.Time {
			t.Fatalf("rank %d: comm %v of %v", s.Rank, s.CommTime, s.Time)
		}
	}
	// Deterministic.
	again := mpi.Run(8, mpi.DefaultModel(), func(c *mpi.Comm) {
		ChargeCosts(c, h, b, 4, 2)
	})
	for r := range stats {
		if stats[r].Time != again[r].Time {
			t.Fatalf("rank %d: nondeterministic charge", r)
		}
	}
}

func TestBlockAllowedRestrictsMatches(t *testing.T) {
	offsets := []int32{0, 5, 10}
	allowed := BlockAllowed(offsets)
	if allowed == nil {
		t.Fatal("nil predicate for 2 blocks")
	}
	if !allowed(1, 4) || allowed(4, 5) || !allowed(7, 9) {
		t.Fatal("block predicate wrong")
	}
	if BlockAllowed([]int32{0, 10}) != nil {
		t.Fatal("single block should be unrestricted")
	}
}

func TestMergeOffsets(t *testing.T) {
	off := []int32{0, 2, 5, 9, 12}
	merged := mergeOffsets(off, 2)
	if len(merged) != 3 || merged[0] != 0 || merged[1] != 5 || merged[2] != 12 {
		t.Fatalf("merged = %v", merged)
	}
	if got := mergeOffsets(off, 8); len(got) != len(off) {
		t.Fatal("growing rank count should keep offsets")
	}
}
