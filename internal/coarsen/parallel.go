package coarsen

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/hostpar"
)

// Fork-join contraction kernels. The serial contraction assigns coarse
// ids by scanning vertices in block order (= ascending id, blocks being
// contiguous), accumulates coarse weights, funnels every cross-group
// arc through graph.Builder, and pays an O(m log m) sort per step.
// The parallel path reproduces the exact same arrays from three
// observations:
//
//   - Vertex v receives a fresh coarse id in the serial scan iff
//     match[v] >= v (otherwise its partner was visited first), and that
//     id equals the number of such "assigners" before v — a prefix sum
//     over static chunks.
//   - The coarse graph the builder emits is, per coarse vertex, its
//     unique neighbours in ascending order with parallel-edge weights
//     summed (int32, order-insensitive). Aggregating each coarse row
//     independently — children in ascending fine order, per-row sort
//     and merge — yields the identical CSR without any global sort.
//   - Coarse weightedness (EWgt nil-ness) depends only on "some
//     cross-group arc or merged edge has weight != 1", an OR over rows.
//
// Every output element is written by exactly one statically assigned
// chunk, so results are bit-identical for every worker count;
// TestHierarchyBitIdentical pins this against the serial path.

// parallelOn gates the fork-join kernels; disabled, coarsening runs the
// original serial code.
var parallelOn atomic.Bool

func init() { parallelOn.Store(true) }

// SetParallel enables or disables the fork-join coarsening kernels and
// returns the previous setting. Test hook à la geopart.SetBatching:
// host parallelism must never change results, and the determinism tests
// prove it by flipping this switch.
func SetParallel(on bool) bool {
	prev := parallelOn.Load()
	parallelOn.Store(on)
	return prev
}

// Size gates below which the serial paths win; vars so package tests
// can force tiny graphs through the parallel kernels.
var (
	contractParMinVerts = 2048
	invertParMinVerts   = 4096
)

const (
	contractGrain = 1024 // fine vertices per chunk in id assignment
	rowGrain      = 512  // coarse vertices per chunk in row aggregation
	composeGrain  = 4096 // map entries per chunk in composition/inversion
)

func packArc(v, w int32) int64 { return int64(v)<<32 | int64(uint32(w)) }
func arcTarget(a int64) int32  { return int32(a >> 32) }
func arcWeight(a int64) int32  { return int32(uint32(a)) }

// contractScratch pools the per-chunk working buffers of the row
// aggregation: a sort scratch and an output row buffer per chunk.
type contractScratch struct {
	row []int64
	out []int64
}

var contractScratchPool = sync.Pool{New: func() any { return new(contractScratch) }}

// contractBlockedParallel is contractBlockedSerial rebuilt on hostpar;
// outputs are bit-identical.
func contractBlockedParallel(g *graph.Graph, match []int32, offsets []int32) (*graph.Graph, []int32, []int32) {
	n := g.NumVertices()
	blocks := len(offsets) - 1
	fineToCoarse := make([]int32, n)

	// Coarse id assignment: count assigners per chunk, prefix, then
	// write ids. Assigner v also labels its partner match[v] (>= v) and
	// records itself as the coarse vertex's first child; every slot is
	// written by exactly one chunk.
	nc := hostpar.NumChunks(n, contractGrain)
	cnt := make([]int32, nc+1)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		k := int32(0)
		for v := lo; v < hi; v++ {
			if int(match[v]) >= v {
				k++
			}
		}
		cnt[c+1] = k
	})
	for c := 0; c < nc; c++ {
		cnt[c+1] += cnt[c]
	}
	nCoarse := cnt[nc]
	toFine := make([]int32, nCoarse)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		id := cnt[c]
		for v := lo; v < hi; v++ {
			u := match[v]
			if int(u) >= v {
				fineToCoarse[v] = id
				fineToCoarse[u] = id
				toFine[id] = int32(v)
				id++
			}
		}
	})

	// Per-block coarse counts (the serial scan's perBlock), one block
	// per task.
	perBlock := make([]int32, blocks)
	hostpar.For(blocks, 1, func(blk int) {
		k := int32(0)
		for v := offsets[blk]; v < offsets[blk+1]; v++ {
			if match[v] >= v {
				k++
			}
		}
		perBlock[blk] = k
	})

	// Coarse vertex weights: each coarse vertex sums its (at most two)
	// children, matching the serial += order (int32, order-insensitive).
	cw := make([]int32, nCoarse)
	hostpar.For(int(nCoarse), composeGrain, func(cvi int) {
		v := toFine[cvi]
		w := g.VertexWeight(v)
		if u := match[v]; u != v {
			w += g.VertexWeight(u)
		}
		cw[cvi] = w
	})

	// Row aggregation: per coarse vertex, walk its children in ascending
	// fine order, map each arc endpoint through fineToCoarse, drop
	// intra-group arcs, sort and merge. Rows land in per-chunk buffers
	// that concatenate (chunks are ascending coarse ranges) into the
	// final CSR after a prefix sum over row lengths.
	ncr := hostpar.NumChunks(int(nCoarse), rowGrain)
	rowLen := make([]int32, nCoarse)
	outs := make([][]int64, ncr)
	scratches := make([]*contractScratch, ncr)
	flags := make([]bool, ncr)
	hostpar.ForN(int(nCoarse), ncr, func(c, lo, hi int) {
		sc := contractScratchPool.Get().(*contractScratch)
		cur := graph.GetCursor(g)
		defer cur.Release()
		row := sc.row[:0]
		out := sc.out[:0]
		anyNot1 := false
		for cv := lo; cv < hi; cv++ {
			row = row[:0]
			v := toFine[cv]
			u := match[v]
			for f := v; ; f = u {
				nbrs, wgts := cur.Arcs(f)
				for k, nb := range nbrs {
					cnb := fineToCoarse[nb]
					if cnb == int32(cv) {
						continue
					}
					w := wgts[k]
					if w != 1 {
						anyNot1 = true
					}
					row = append(row, packArc(cnb, w))
				}
				if f == u || u == v {
					break
				}
			}
			slices.Sort(row)
			uniq, not1 := dedupArcs(row)
			anyNot1 = anyNot1 || not1
			rowLen[cv] = int32(uniq)
			out = append(out, row[:uniq]...)
		}
		sc.row = row
		sc.out = out
		outs[c] = out
		scratches[c] = sc
		flags[c] = anyNot1
	})
	weighted := false
	for _, f := range flags {
		weighted = weighted || f
	}

	xadj := make([]int32, nCoarse+1)
	for cv := int32(0); cv < nCoarse; cv++ {
		xadj[cv+1] = xadj[cv] + rowLen[cv]
	}
	adj := make([]int32, xadj[nCoarse])
	var ewgt []int32
	if weighted {
		ewgt = make([]int32, len(adj))
	}
	hostpar.For(ncr, 1, func(c int) {
		lo, _ := hostpar.ChunkBounds(int(nCoarse), ncr, c)
		pos := int(xadj[lo])
		for _, a := range outs[c] {
			adj[pos] = arcTarget(a)
			if weighted {
				ewgt[pos] = arcWeight(a)
			}
			pos++
		}
	})
	for _, sc := range scratches {
		contractScratchPool.Put(sc)
	}

	cg := &graph.Graph{XAdj: xadj, Adjncy: adj, EWgt: ewgt, VWgt: cw}
	return cg, fineToCoarse, perBlock
}

// dedupArcs merges adjacent same-target entries of a sorted packed-arc
// slice in place, summing weights with int32 wraparound (matching
// graph.Builder's merge), and reports the unique count and whether any
// merged weight differs from 1.
func dedupArcs(seg []int64) (uniq int, anyNot1 bool) {
	if len(seg) == 0 {
		return 0, false
	}
	k := 0
	for i := 1; i < len(seg); i++ {
		if arcTarget(seg[i]) == arcTarget(seg[k]) {
			seg[k] = packArc(arcTarget(seg[k]), arcWeight(seg[k])+arcWeight(seg[i]))
		} else {
			k++
			seg[k] = seg[i]
		}
	}
	uniq = k + 1
	for _, a := range seg[:uniq] {
		if arcWeight(a) != 1 {
			anyNot1 = true
			break
		}
	}
	return uniq, anyNot1
}

// invertMapParallel is invertMapSerial as a chunked stable counting
// sort: per-chunk histograms over the coarse range, a column-wise
// conversion to starting cursors, and a scatter pass — children of each
// coarse vertex appear in ascending fine order exactly as the serial
// cursor scan emits them.
func invertMapParallel(toCoarse []int32, nCoarse int) (offsets, children []int32) {
	n := len(toCoarse)
	nc := hostpar.NumChunks(n, composeGrain)
	if nc == 1 {
		return invertMapSerial(toCoarse, nCoarse)
	}
	counts := make([]int32, nc*nCoarse)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		row := counts[c*nCoarse : (c+1)*nCoarse]
		for _, cv := range toCoarse[lo:hi] {
			row[cv]++
		}
	})
	offsets = make([]int32, nCoarse+1)
	for cv := 0; cv < nCoarse; cv++ {
		s := int32(0)
		for c := 0; c < nc; c++ {
			s += counts[c*nCoarse+cv]
		}
		offsets[cv+1] = s
	}
	for cv := 0; cv < nCoarse; cv++ {
		offsets[cv+1] += offsets[cv]
	}
	// Convert per-chunk counts to starting cursors, column by column.
	hostpar.For(nCoarse, composeGrain, func(cv int) {
		run := offsets[cv]
		for c := 0; c < nc; c++ {
			t := counts[c*nCoarse+cv]
			counts[c*nCoarse+cv] = run
			run += t
		}
	})
	children = make([]int32, n)
	hostpar.ForN(n, nc, func(c, lo, hi int) {
		row := counts[c*nCoarse : (c+1)*nCoarse]
		for v := lo; v < hi; v++ {
			cv := toCoarse[v]
			children[row[cv]] = int32(v)
			row[cv]++
		}
	})
	return offsets, children
}
