package coarsen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// forceParallel lowers every size gate so even test-sized graphs route
// through the fork-join kernels, and restores on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	cm, im, bm := contractParMinVerts, invertParMinVerts, graph.SetParallelBuildMinEdges(1)
	contractParMinVerts, invertParMinVerts = 1, 1
	t.Cleanup(func() {
		contractParMinVerts, invertParMinVerts = cm, im
		graph.SetParallelBuildMinEdges(bm)
	})
}

func levelsEqual(t *testing.T, tag string, a, b *Hierarchy) {
	t.Helper()
	if len(a.Levels) != len(b.Levels) {
		t.Fatalf("%s: %d levels vs %d", tag, len(a.Levels), len(b.Levels))
	}
	eq := func(name string, x, y []int32, li int) {
		if len(x) != len(y) {
			t.Fatalf("%s level %d: %s length %d vs %d", tag, li, name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s level %d: %s[%d] = %d vs %d", tag, li, name, i, x[i], y[i])
			}
		}
	}
	for li := range a.Levels {
		la, lb := &a.Levels[li], &b.Levels[li]
		if la.Ranks != lb.Ranks {
			t.Fatalf("%s level %d: ranks %d vs %d", tag, li, la.Ranks, lb.Ranks)
		}
		if (la.G.EWgt == nil) != (lb.G.EWgt == nil) {
			t.Fatalf("%s level %d: EWgt nil-ness %v vs %v", tag, li, la.G.EWgt == nil, lb.G.EWgt == nil)
		}
		if (la.G.VWgt == nil) != (lb.G.VWgt == nil) {
			t.Fatalf("%s level %d: VWgt nil-ness %v vs %v", tag, li, la.G.VWgt == nil, lb.G.VWgt == nil)
		}
		eq("XAdj", la.G.XAdj, lb.G.XAdj, li)
		eq("Adjncy", la.G.Adjncy, lb.G.Adjncy, li)
		eq("EWgt", la.G.EWgt, lb.G.EWgt, li)
		eq("VWgt", la.G.VWgt, lb.G.VWgt, li)
		eq("Offsets", la.Offsets, lb.Offsets, li)
		eq("ToCoarse", la.ToCoarse, lb.ToCoarse, li)
		eq("ChildOffsets", la.ChildOffsets, lb.ChildOffsets, li)
		eq("Children", la.Children, lb.Children, li)
	}
}

// TestContractParallelMatchesSerial cross-checks the fork-join
// contraction against the serial reference on structured, irregular,
// and weighted graphs with randomized matchings and multi-block
// ownership.
func TestContractParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	graphs := []*graph.Graph{
		gen.Grid2D(37, 23).G,
		gen.DelaunayRandom(3000, 9).G,
		gen.BarabasiAlbert(2000, 3, 5),
	}
	// A weighted variant: contract once so vertex and edge weights are
	// non-trivial.
	{
		g := gen.Grid2D(40, 40).G
		rng := rand.New(rand.NewSource(3))
		m := HeavyEdgeMatch(g, rng, nil)
		cg, _ := Contract(g, m)
		graphs = append(graphs, cg)
	}
	for gi, g := range graphs {
		n := g.NumVertices()
		for _, blocks := range []int{1, 4, 7} {
			offsets := blockOffsets(n, blocks)
			rng := rand.New(rand.NewSource(int64(17 + gi)))
			match := HeavyEdgeMatch(g, rng, nil)
			wantG, wantF2C, wantPB := contractBlockedSerial(g, match, offsets)
			for _, w := range []int{1, 2, 8} {
				defer hostpar.SetWorkers(hostpar.SetWorkers(w))
				gotG, gotF2C, gotPB := contractBlockedParallel(g, match, offsets)
				tag := fmt.Sprintf("graph %d blocks %d workers %d", gi, blocks, w)
				wantH := &Hierarchy{Levels: []Level{{G: wantG, Offsets: prefixSum(wantPB), ToCoarse: wantF2C}}}
				gotH := &Hierarchy{Levels: []Level{{G: gotG, Offsets: prefixSum(gotPB), ToCoarse: gotF2C}}}
				levelsEqual(t, tag, wantH, gotH)
			}
		}
	}
}

// TestInvertMapParallelMatchesSerial: the chunked counting sort must
// reproduce the serial cursor scan exactly, including child order.
func TestInvertMapParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 100, 50000} {
		nCoarse := n/3 + 1
		toCoarse := make([]int32, n)
		for i := range toCoarse {
			toCoarse[i] = int32(rng.Intn(nCoarse))
		}
		wantOff, wantCh := invertMapSerial(toCoarse, nCoarse)
		for _, w := range []int{1, 2, 8} {
			defer hostpar.SetWorkers(hostpar.SetWorkers(w))
			gotOff, gotCh := invertMapParallel(toCoarse, nCoarse)
			for i := range wantOff {
				if wantOff[i] != gotOff[i] {
					t.Fatalf("n=%d workers=%d: offsets[%d] = %d, want %d", n, w, i, gotOff[i], wantOff[i])
				}
			}
			for i := range wantCh {
				if wantCh[i] != gotCh[i] {
					t.Fatalf("n=%d workers=%d: children[%d] = %d, want %d", n, w, i, gotCh[i], wantCh[i])
				}
			}
		}
	}
}

// TestBuildHierarchyBitIdenticalAcrossWorkers is the package-local
// hierarchy determinism check: every retained level's CSR arrays,
// ownership offsets, and projection maps must agree bit-for-bit between
// the legacy serial path and the fork-join path at workers 1, 2, and 8.
// The full-pipeline version (cuts, clocks, traffic) lives in
// internal/core's TestHierarchyBitIdentical.
func TestBuildHierarchyBitIdenticalAcrossWorkers(t *testing.T) {
	forceParallel(t)
	graphs := []*graph.Graph{
		gen.Grid2D(64, 64).G,
		gen.DelaunayRandom(6000, 12).G,
		gen.BarabasiAlbert(4000, 2, 77),
	}
	for gi, g := range graphs {
		for _, p := range []int{1, 4, 16, 64} {
			opt := Options{Seed: 42, VertsPerRank: 96}
			defer SetParallel(SetParallel(false))
			defer graph.SetParallelBuild(graph.SetParallelBuild(false))
			want := BuildHierarchy(g, p, opt)
			SetParallel(true)
			graph.SetParallelBuild(true)
			for _, w := range []int{1, 2, 8} {
				defer hostpar.SetWorkers(hostpar.SetWorkers(w))
				got := BuildHierarchy(g, p, opt)
				levelsEqual(t, fmt.Sprintf("graph %d P=%d workers=%d", gi, p, w), want, got)
			}
		}
	}
}

// TestBoundaryEdgesParallelMatchesSerial compares the pooled per-rank
// scan against a straightforward serial recount.
func TestBoundaryEdgesParallelMatchesSerial(t *testing.T) {
	g := gen.DelaunayRandom(4000, 4).G
	h := BuildHierarchy(g, 16, Options{Seed: 7})
	for _, w := range []int{1, 8} {
		defer hostpar.SetWorkers(hostpar.SetWorkers(w))
		got := BoundaryEdges(h)
		for li := range h.Levels {
			lev := &h.Levels[li]
			for r := 0; r < lev.Ranks; r++ {
				begin, end := lev.Offsets[r], lev.Offsets[r+1]
				var want int64
				for v := begin; v < end; v++ {
					for _, nb := range lev.G.Neighbors(v) {
						if nb < begin || nb >= end {
							want++
						}
					}
				}
				if got[li][r] != want {
					t.Fatalf("workers=%d level %d rank %d: %d boundary edges, want %d", w, li, r, got[li][r], want)
				}
			}
		}
	}
}

// TestContractionSteadyStateAllocs guards the contraction kernel's
// pooled scratch: repeated contractions of the same graph must not
// reallocate the per-chunk row and output buffers.
func TestContractionSteadyStateAllocs(t *testing.T) {
	forceParallel(t)
	defer hostpar.SetWorkers(hostpar.SetWorkers(2))
	g := gen.Grid2D(80, 80).G
	rng := rand.New(rand.NewSource(1))
	match := HeavyEdgeMatch(g, rng, nil)
	offsets := blockOffsets(g.NumVertices(), 4)
	for i := 0; i < 3; i++ {
		contractBlockedParallel(g, match, offsets) // warm pools
	}
	perCall := testing.AllocsPerRun(10, func() {
		contractBlockedParallel(g, match, offsets)
	})
	// Outputs (CSR arrays, maps, per-block counts) plus fixed
	// bookkeeping; the per-chunk sort scratch must come from the pool.
	if perCall > 96 {
		t.Errorf("steady-state parallel contraction: %.0f mallocs per call, want well under 96", perCall)
	}
	t.Logf("steady-state parallel contraction: %.1f mallocs per call", perCall)
}

// BenchmarkBuildHierarchy measures full hierarchy construction — the
// dominant serial host cost before this PR — with the legacy serial
// path and with the fork-join kernels, on a suite-scale grid and a
// preferential-attachment graph.
func BenchmarkBuildHierarchy(b *testing.B) {
	shapes := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"grid256", func() *graph.Graph { return gen.Grid2D(256, 256).G }},
		{"ba50k", func() *graph.Graph { return gen.BarabasiAlbert(50000, 3, 9) }},
	}
	for _, sh := range shapes {
		g := sh.build()
		for _, mode := range []struct {
			name string
			on   bool
		}{{"parallel", true}, {"serial", false}} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode.name), func(b *testing.B) {
				defer SetParallel(SetParallel(mode.on))
				defer graph.SetParallelBuild(graph.SetParallelBuild(mode.on))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := BuildHierarchy(g, 64, Options{Seed: 42, VertsPerRank: 96})
					if len(h.Levels) < 2 {
						b.Fatal("degenerate hierarchy")
					}
				}
			})
		}
	}
}
