package coarsen

import (
	"strconv"

	"repro/internal/graph"
	"repro/internal/hostpar"
	"repro/internal/mpi"
)

// BoundaryEdges counts, for every hierarchy level and rank, the edges
// crossing out of the rank's ownership block — the halo volume of
// distributed matching. Precomputed once per hierarchy and shared by
// every simulated rank. The per-rank scans are independent (each rank
// owns a disjoint vertex block and writes only its own counter), so
// they fan out over the host worker pool — embarrassingly parallel over
// ranks within each level.
func BoundaryEdges(h *Hierarchy) [][]int64 {
	out := make([][]int64, len(h.Levels))
	for li := range h.Levels {
		lev := &h.Levels[li]
		counts := make([]int64, lev.Ranks)
		hostpar.For(lev.Ranks, 1, func(r int) {
			cur := graph.GetCursor(lev.G)
			defer cur.Release()
			begin, end := lev.Offsets[r], lev.Offsets[r+1]
			n := int64(0)
			for v := begin; v < end; v++ {
				nbrs, _ := cur.Arcs(v)
				for _, nb := range nbrs {
					if nb < begin || nb >= end {
						n++
					}
				}
			}
			counts[r] = n
		})
		out[li] = counts
	}
	return out
}

// ChargeCosts replays the modeled cost of distributed heavy-edge-
// matching coarsening on the calling rank: per retained level, the
// local matching and contraction work, `rounds` match-negotiation
// rounds (halo exchange plus a reduction each), and the all-gather that
// assembles the coarse graph. The hierarchy itself was computed
// up-front — blocked matching is deterministic per block, so the
// precomputed result equals what the distributed run would produce —
// and only the costs are replayed here.
func ChargeCosts(c *mpi.Comm, h *Hierarchy, boundary [][]int64, rounds, stepsPerLevel int) {
	m := c.Model()
	for li := 0; li+1 < len(h.Levels); li++ {
		lev := &h.Levels[li]
		sub := c.SubComm(lev.Ranks)
		if sub == nil {
			continue
		}
		sub.SetPhase("coarsen/L" + strconv.Itoa(li))
		r := sub.Rank()
		begin, end := lev.Offsets[r], lev.Offsets[r+1]
		myVerts := float64(end - begin)
		myEdges := float64(lev.G.XAdj[end] - lev.G.XAdj[begin])
		sub.Charge(float64(stepsPerLevel) * (3*myEdges + 2*myVerts))
		for round := 0; round < rounds*stepsPerLevel; round++ {
			// One negotiation round: request + grant halo messages, an
			// irregular counts exchange, and the convergence reduction.
			sub.ChargeComm(8, int(boundary[li][r])*12)
			sub.SyncCostParts(
				m.Latency*log2f(sub.Size())+(m.PerByte*4+m.PerPeer)*float64(sub.Size()),
				m.Latency*log2f(sub.Size()),
				m.PerByte*4*float64(sub.Size()),
				m.PerPeer*float64(sub.Size()))
			mpi.AllReduce(sub, int64(0), 8, mpi.SumInt64)
		}
		// Contraction exchange: each rank ships its share of matched
		// coarse edges plus the boundary halo (the coarse graph stays
		// distributed; only per-rank shares move).
		next := &h.Levels[li+1]
		perRank := 8 * 2 * next.G.NumEdges() / sub.Size()
		sub.SyncCostParts(
			m.Latency*log2f(sub.Size())+m.PerByte*float64(perRank+int(boundary[li][r])*8),
			m.Latency*log2f(sub.Size()),
			m.PerByte*float64(perRank+int(boundary[li][r])*8),
			0)
	}
}

// log2f is ceil(log2 n) as a float, with log2f(1) = 0.
func log2f(n int) float64 {
	l := 0.0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
