package order

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestVertexSeparatorSeparates: removing the separator must leave no
// edge between side-0 and side-1 vertices.
func TestVertexSeparatorSeparates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.DelaunayRandom(3000, seed)
		res := core.Partition(g.G, 8, core.DefaultOptions(seed))
		labels := VertexSeparator(g.G, res.Part)
		var sepSize int
		for u := int32(0); u < int32(g.G.NumVertices()); u++ {
			if labels[u] == 2 {
				sepSize++
				continue
			}
			for _, v := range g.G.Neighbors(u) {
				if labels[v] != 2 && labels[v] != labels[u] {
					t.Fatalf("seed %d: edge %d-%d crosses sides %d/%d", seed, u, v, labels[u], labels[v])
				}
			}
		}
		// König: the vertex separator is at most the edge separator and
		// at least... non-trivial for a connected bisection.
		edgeCut := graph.CutSize(g.G, res.Part)
		if int64(sepSize) > edgeCut {
			t.Fatalf("seed %d: vertex separator %d exceeds edge cut %d", seed, sepSize, edgeCut)
		}
		if sepSize == 0 && edgeCut > 0 {
			t.Fatalf("seed %d: empty separator with non-empty cut", seed)
		}
	}
}

// TestVertexSeparatorIsMinimumOnPath: a path's single cut edge yields a
// one-vertex separator.
func TestVertexSeparatorIsMinimumOnPath(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	part := []int32{0, 0, 0, 1, 1, 1}
	labels := VertexSeparator(g, part)
	count := 0
	for _, l := range labels {
		if l == 2 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("separator size %d, want 1 (labels %v)", count, labels)
	}
}

// TestNestedDissectionPermutation: the ordering is a permutation and
// beats the natural order's fill on a grid (the classic result).
func TestNestedDissectionBeatsNaturalOrder(t *testing.T) {
	g := gen.Grid2D(28, 28)
	perm := NestedDissection(g.G, 4, core.DefaultOptions(3))
	seen := make([]bool, g.G.NumVertices())
	for _, v := range perm {
		if seen[v] {
			t.Fatalf("vertex %d appears twice", v)
		}
		seen[v] = true
	}
	if len(perm) != g.G.NumVertices() {
		t.Fatalf("perm length %d", len(perm))
	}
	natural := make([]int32, g.G.NumVertices())
	for i := range natural {
		natural[i] = int32(i)
	}
	ndFill := FillIn(g.G, perm)
	natFill := FillIn(g.G, natural)
	if ndFill >= natFill {
		t.Fatalf("nested dissection fill %d not better than natural %d", ndFill, natFill)
	}
}

// TestFillInPath: a path eliminated end-to-end has zero fill beyond the
// original edges (n-1 sub-diagonal entries).
func TestFillInPath(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	perm := make([]int32, 10)
	for i := range perm {
		perm[i] = int32(i)
	}
	if f := FillIn(g, perm); f != 9 {
		t.Fatalf("path fill %d, want 9", f)
	}
}

// TestFillInStarWorstFirst: eliminating a star's hub first fills the
// whole clique: (n-1) + C(n-1,2)... symbolic row counts: hub row has
// n-1 entries; each leaf then connects to all later leaves.
func TestFillInStarOrders(t *testing.T) {
	n := 8
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	hubFirst := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	hubLast := []int32{1, 2, 3, 4, 5, 6, 7, 0}
	if f1, f2 := FillIn(g, hubFirst), FillIn(g, hubLast); f1 <= f2 {
		t.Fatalf("hub-first fill %d should exceed hub-last %d", f1, f2)
	}
	if f := FillIn(g, hubLast); f != int64(n-1) {
		t.Fatalf("hub-last fill %d, want %d", FillIn(g, hubLast), n-1)
	}
}

func TestMinDegreeOrderIsPermutation(t *testing.T) {
	g := gen.RandomGeometric(200, 0.1, 4).G
	ord := minDegreeOrder(g)
	seen := make([]bool, g.NumVertices())
	for _, v := range ord {
		if seen[v] {
			t.Fatalf("repeat %d", v)
		}
		seen[v] = true
	}
}
