// Package order derives the two classic downstream products of a graph
// partitioner: vertex separators (from edge separators, via König
// matching on the cut's bipartite graph) and nested-dissection
// fill-reducing orderings, built by recursive application of ScalaPart.
package order

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// VertexSeparator converts a bisection's edge separator into a small
// vertex separator: a set of vertices whose removal disconnects the two
// sides. The cut edges form a bipartite graph; by König's theorem its
// minimum vertex cover equals its maximum matching, computed here with
// the standard augmenting-path algorithm. The returned labels are
// 0/1 for the two sides and 2 for separator vertices.
func VertexSeparator(g *graph.Graph, part []int32) []int32 {
	sep := graph.SeparatorEdges(g, part)
	// Collect the distinct endpoints per side.
	leftIdx := make(map[int32]int32)
	rightIdx := make(map[int32]int32)
	var left, right []int32
	for _, e := range sep {
		u, v := e[0], e[1]
		if part[u] != 0 {
			u, v = v, u
		}
		if _, ok := leftIdx[u]; !ok {
			leftIdx[u] = int32(len(left))
			left = append(left, u)
		}
		if _, ok := rightIdx[v]; !ok {
			rightIdx[v] = int32(len(right))
			right = append(right, v)
		}
	}
	adj := make([][]int32, len(left))
	for _, e := range sep {
		u, v := e[0], e[1]
		if part[u] != 0 {
			u, v = v, u
		}
		li, ri := leftIdx[u], rightIdx[v]
		adj[li] = append(adj[li], ri)
	}
	// Hopcroft–Karp-lite: repeated augmenting DFS (König needs only the
	// matching and the alternating reachability).
	matchL := make([]int32, len(left))
	matchR := make([]int32, len(right))
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var visited []bool
	var augment func(l int32) bool
	augment = func(l int32) bool {
		for _, r := range adj[l] {
			if visited[r] {
				continue
			}
			visited[r] = true
			if matchR[r] < 0 || augment(matchR[r]) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		return false
	}
	for l := range adj {
		visited = make([]bool, len(right))
		augment(int32(l))
	}
	// König: cover = (left not reachable) ∪ (right reachable) from
	// unmatched left vertices along alternating paths.
	reachL := make([]bool, len(left))
	reachR := make([]bool, len(right))
	var stack []int32
	for l := range adj {
		if matchL[l] < 0 {
			reachL[l] = true
			stack = append(stack, int32(l))
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range adj[l] {
			if reachR[r] {
				continue
			}
			reachR[r] = true
			if ml := matchR[r]; ml >= 0 && !reachL[ml] {
				reachL[ml] = true
				stack = append(stack, ml)
			}
		}
	}
	labels := append([]int32(nil), part...)
	for i, v := range left {
		if !reachL[i] {
			labels[v] = 2
		}
	}
	for i, v := range right {
		if reachR[i] {
			labels[v] = 2
		}
	}
	return labels
}

// NestedDissection computes a fill-reducing elimination ordering by
// recursive bisection: partition, extract the vertex separator, recurse
// on the two sides, and number separator vertices last. Small
// subproblems fall back to a minimum-degree-flavoured greedy ordering.
// p is the simulated rank budget for the top-level bisection; opt seeds
// ScalaPart. It returns perm with perm[i] = the vertex eliminated at
// step i.
func NestedDissection(g *graph.Graph, p int, opt core.Options) []int32 {
	perm := make([]int32, 0, g.NumVertices())
	all := make([]int32, g.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	nd(g, all, p, opt, &perm)
	return perm
}

const ndLeafSize = 64

func nd(g *graph.Graph, vertices []int32, p int, opt core.Options, perm *[]int32) {
	if len(vertices) <= ndLeafSize {
		leaf, back := graph.InducedSubgraph(g, vertices)
		for _, v := range minDegreeOrder(leaf) {
			*perm = append(*perm, back[v])
		}
		return
	}
	sub, back := graph.InducedSubgraph(g, vertices)
	if p < 1 {
		p = 1
	}
	res := core.Partition(sub, p, opt)
	labels := VertexSeparator(sub, res.Part)
	var lo, hi, sep []int32
	for v, l := range labels {
		gid := back[v]
		switch l {
		case 0:
			lo = append(lo, gid)
		case 1:
			hi = append(hi, gid)
		default:
			sep = append(sep, gid)
		}
	}
	// Degenerate split (e.g. everything became separator): fall back.
	if len(lo) == 0 || len(hi) == 0 {
		leaf, back2 := graph.InducedSubgraph(g, vertices)
		for _, v := range minDegreeOrder(leaf) {
			*perm = append(*perm, back2[v])
		}
		return
	}
	half := p / 2
	if half < 1 {
		half = 1
	}
	nd(g, lo, half, opt, perm)
	nd(g, hi, half, opt, perm)
	*perm = append(*perm, sep...)
}

// minDegreeOrder is a greedy minimum-degree elimination order on a
// small graph (degrees are not updated with fill, which is adequate for
// leaf blocks).
func minDegreeOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, 0, n)
	eliminated := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
	}
	for len(order) < n {
		best, bestDeg := int32(-1), 1<<30
		for v := 0; v < n; v++ {
			if !eliminated[v] && deg[v] < bestDeg {
				best, bestDeg = int32(v), deg[v]
			}
		}
		eliminated[best] = true
		order = append(order, best)
		for _, nb := range g.Neighbors(best) {
			deg[nb]--
		}
	}
	return order
}

// FillIn estimates the Cholesky fill of an ordering by symbolic
// elimination, returning the number of non-zeros below the diagonal of
// the factor. Row structures are merged up the elimination tree, so the
// cost is proportional to the fill itself.
func FillIn(g *graph.Graph, perm []int32) int64 {
	n := g.NumVertices()
	pos := make([]int32, n)
	for i, v := range perm {
		pos[v] = int32(i)
	}
	rows := make([]map[int32]struct{}, n)
	children := make([][]int32, n)
	var fill int64
	for i := 0; i < n; i++ {
		v := perm[i]
		row := make(map[int32]struct{})
		for _, nb := range g.Neighbors(v) {
			if pos[nb] > int32(i) {
				row[nb] = struct{}{}
			}
		}
		for _, c := range children[v] {
			for u := range rows[c] {
				if pos[u] > int32(i) {
					row[u] = struct{}{}
				}
			}
			rows[c] = nil // free merged rows
		}
		fill += int64(len(row))
		rows[v] = row
		// Parent in the elimination tree: the earliest-eliminated
		// member of this row.
		var par int32 = -1
		for u := range row {
			if par < 0 || pos[u] < pos[par] {
				par = u
			}
		}
		if par >= 0 {
			children[par] = append(children[par], v)
		}
	}
	return fill
}
