package gen

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

// TestSuiteGraphsWellFormed builds the whole suite at small scale and
// checks structural invariants: connected, validated, sensible sizes.
func TestSuiteGraphsWellFormed(t *testing.T) {
	for _, e := range SuiteEntries() {
		g := e.Build(0.04)
		if g.Name != e.Name {
			t.Fatalf("%s: name mismatch %q", e.Name, g.Name)
		}
		if err := g.G.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if _, comps := graph.Components(g.G); comps != 1 {
			t.Fatalf("%s: %d components", e.Name, comps)
		}
		if g.Coords != nil && len(g.Coords) != g.G.NumVertices() {
			t.Fatalf("%s: coords length mismatch", e.Name)
		}
		if g.G.NumVertices() < 100 {
			t.Fatalf("%s: only %d vertices at scale 0.04", e.Name, g.G.NumVertices())
		}
	}
}

// TestSuiteDeterministic: two builds must be identical.
func TestSuiteDeterministic(t *testing.T) {
	for _, e := range SuiteEntries()[:4] {
		a := e.Build(0.03)
		b := e.Build(0.03)
		if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
			t.Fatalf("%s: nondeterministic sizes", e.Name)
		}
		for i := range a.G.Adjncy {
			if a.G.Adjncy[i] != b.G.Adjncy[i] {
				t.Fatalf("%s: adjacency differs at %d", e.Name, i)
			}
		}
	}
}

// TestSuiteScaling: scale must control size roughly linearly.
func TestSuiteScaling(t *testing.T) {
	e := SuiteEntries()[2] // delaunay_n20
	small := e.Build(0.05).G.NumVertices()
	large := e.Build(0.2).G.NumVertices()
	ratio := float64(large) / float64(small)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("scaling ratio %v, want ~4", ratio)
	}
}

func TestKKTPowerHeavyTail(t *testing.T) {
	g := KKTPower(6000, 44).G
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(int32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if degs[0] < 30 {
		t.Fatalf("max degree %d: expected hub structure", degs[0])
	}
	// Constraint vertices (two-thirds of the graph) have small degree.
	median := degs[len(degs)/2]
	if median > 6 {
		t.Fatalf("median degree %d: expected sparse tail", median)
	}
}

func TestBarabasiAlbertDegreeSum(t *testing.T) {
	g := BarabasiAlbert(500, 2, 1)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// m edges per new vertex (some merged): edges close to 2n.
	if g.NumEdges() < 900 || g.NumEdges() > 1000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestTraceIsElongated(t *testing.T) {
	g := Trace(4000, 55)
	if _, comps := graph.Components(g.G); comps != 1 {
		t.Fatalf("%d components", comps)
	}
	// The ribbon should be much wider than tall overall but locally
	// thin: check aspect of the bounding box.
	minX, maxX := g.Coords[0].X, g.Coords[0].X
	minY, maxY := g.Coords[0].Y, g.Coords[0].Y
	for _, p := range g.Coords {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if (maxX - minX) < 2*(maxY-minY)/2 {
		t.Fatalf("trace bounding box %v x %v not elongated", maxX-minX, maxY-minY)
	}
}

func TestBubblesHasHoles(t *testing.T) {
	g := Bubbles(6000, 8, 66)
	if _, comps := graph.Components(g.G); comps != 1 {
		t.Fatalf("%d components", comps)
	}
	// Planar-ish mesh: average degree < 7.
	if avg := float64(2*g.G.NumEdges()) / float64(g.G.NumVertices()); avg > 7 {
		t.Fatalf("avg degree %v", avg)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 3)
	if g.G.NumVertices() < 256 {
		t.Fatalf("rmat too small: %d", g.G.NumVertices())
	}
	if err := g.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMortonRelabelPreservesStructure: same degree multiset, same
// number of edges, improved locality.
func TestMortonRelabelPreservesStructure(t *testing.T) {
	orig := func() *Generated {
		// Rebuild Delaunay WITHOUT relabel by calling the pieces.
		return DelaunayRandom(2000, 9)
	}()
	g := orig.G
	// Locality metric: mean |u-v| over edges should be far below n/3
	// (random labels would give ~n/3).
	var sum float64
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				sum += float64(v - u)
			}
		}
	}
	mean := sum / float64(g.NumEdges())
	if mean > float64(g.NumVertices())/6 {
		t.Fatalf("mean id distance %v suggests relabelling is not applied", mean)
	}
	// Degree histogram must match a fresh un-relabelled triangulation
	// (structure preserved by permutation).
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponent(t *testing.T) {
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4) // smaller component
	g, _ := LargestComponent(b.Build(), nil)
	if g.NumVertices() != 3 {
		t.Fatalf("kept %d vertices, want 3", g.NumVertices())
	}
}

func TestRandomGeometricConnectedAtSensibleRadius(t *testing.T) {
	g := RandomGeometric(2000, 0.05, 7)
	if _, comps := graph.Components(g.G); comps != 1 {
		t.Fatalf("rgg disconnected: %d comps", comps)
	}
}

func TestCircuitHasShortsAndWires(t *testing.T) {
	g := Circuit(40, 40, 33)
	grid := Grid2D(40, 40)
	if g.G.NumEdges() <= grid.G.NumEdges() {
		t.Fatal("circuit has no extra edges over the grid")
	}
}

// TestBarabasiAlbertDeterministic guards the preferential-attachment
// construction against map-iteration-order leaks: the target list must
// grow in draw order, so the same seed yields the same graph in every
// process. (kkt_power inherits this; its bench rows are tracked across
// PRs and must be reproducible.)
func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := KKTPower(4000, 7)
	b := KKTPower(4000, 7)
	if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d vertices/edges",
			a.G.NumVertices(), a.G.NumEdges(), b.G.NumVertices(), b.G.NumEdges())
	}
	for i := range a.G.Adjncy {
		if a.G.Adjncy[i] != b.G.Adjncy[i] {
			t.Fatalf("adjacency differs at arc %d", i)
		}
	}
}

// assertGraphsEqual fails unless a and b are bit-identical CSR graphs.
func assertGraphsEqual(t *testing.T, name string, want, got *graph.Graph) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: n=%d m=%d, want n=%d m=%d", name,
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for i := range want.XAdj {
		if want.XAdj[i] != got.XAdj[i] {
			t.Fatalf("%s: XAdj[%d]=%d want %d", name, i, got.XAdj[i], want.XAdj[i])
		}
	}
	for i := range want.Adjncy {
		if want.Adjncy[i] != got.Adjncy[i] {
			t.Fatalf("%s: Adjncy[%d]=%d want %d", name, i, got.Adjncy[i], want.Adjncy[i])
		}
	}
	if (want.EWgt == nil) != (got.EWgt == nil) {
		t.Fatalf("%s: EWgt nil-ness differs", name)
	}
}

// TestStreamedGeneratorsMatchBuilder replays each converted generator's
// emission stream through the legacy Builder and asserts the streamed
// construction is bit-identical — the conversion to BuildStreamed must
// not move a single edge.
func TestStreamedGeneratorsMatchBuilder(t *testing.T) {
	viaBuilder := func(n int, emit func(add func(u, v, w int32))) *graph.Graph {
		b := graph.NewBuilder(n)
		emit(func(u, v, w int32) { b.AddWeightedEdge(u, v, w) })
		return b.Build()
	}
	// RMAT: legacy = Builder over the same stream, then LargestComponent.
	want, _ := LargestComponent(viaBuilder(1<<10, rmatEmit(10, 8, 7)), nil)
	assertGraphsEqual(t, "rmat", want, RMAT(10, 8, 7).G)
	// BarabasiAlbert: direct comparison.
	assertGraphsEqual(t, "ba", viaBuilder(1500, baEmit(1500, 3, 11)), BarabasiAlbert(1500, 3, 11))
	// KKTPower: rebuild the derived KKT system with the Builder.
	base := BarabasiAlbert(1000, 2, 13)
	n := 1000 + base.NumEdges()
	assertGraphsEqual(t, "kkt", viaBuilder(n, kktEmit(base, 1000)), KKTPower(3000, 13).G)
}
