package gen

import (
	"math/rand"
	"testing"

	"repro/internal/geometry"
	"repro/internal/graph"
)

func randomPoints(n int, seed int64) []geometry.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vec2, n)
	for i := range pts {
		pts[i] = geometry.Vec2{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// TestDelaunayEmptyCircumcircle checks the defining property on every
// triangle of a moderate instance: no other point lies strictly inside
// a triangle's circumcircle.
func TestDelaunayEmptyCircumcircle(t *testing.T) {
	pts := randomPoints(300, 7)
	d := newTriangulator(pts)
	for _, i := range mortonOrder(pts) {
		d.insert(i)
	}
	for ti := range d.tris {
		tr := &d.tris[ti]
		if tr.dead {
			continue
		}
		skip := false
		for _, v := range tr.verts {
			if int(v) >= d.n {
				skip = true // super-triangle fringe
			}
		}
		if skip {
			continue
		}
		a, b, c := pts[tr.verts[0]], pts[tr.verts[1]], pts[tr.verts[2]]
		if orient2d(a, b, c) <= 0 {
			t.Fatalf("triangle %d not CCW", ti)
		}
		for j, p := range pts {
			if int32(j) == tr.verts[0] || int32(j) == tr.verts[1] || int32(j) == tr.verts[2] {
				continue
			}
			if inCircleStrict(a, b, c, p) {
				t.Fatalf("point %d inside circumcircle of triangle %d", j, ti)
			}
		}
	}
}

// inCircleStrict uses a tolerance well above the legalisation epsilon
// so the check is immune to boundary rounding.
func inCircleStrict(a, b, c, d geometry.Vec2) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 1e-9
}

// TestDelaunayStructure checks global structural facts on larger
// instances: planar edge bound, connectivity, and Euler-consistent
// size.
func TestDelaunayStructure(t *testing.T) {
	for _, n := range []int{10, 100, 2000, 20000} {
		pts := randomPoints(n, int64(n))
		edges := Delaunay(pts)
		if len(edges) > 3*n-6 {
			t.Fatalf("n=%d: %d edges exceeds planar bound %d", n, len(edges), 3*n-6)
		}
		// A triangulation of a point set in general position has at
		// least 2n-3 edges (n>=3).
		if n >= 3 && len(edges) < 2*n-3 {
			t.Fatalf("n=%d: only %d edges, want >= %d", n, len(edges), 2*n-3)
		}
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g := b.Build()
		if _, comps := graph.Components(g); comps != 1 {
			t.Fatalf("n=%d: triangulation has %d components", n, comps)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestDelaunayAdjacencyInvariant exercises the internal adjacency
// structure: every live triangle's neighbour must point back at it.
func TestDelaunayAdjacencyInvariant(t *testing.T) {
	pts := randomPoints(1500, 99)
	d := newTriangulator(pts)
	for k, i := range mortonOrder(pts) {
		d.insert(i)
		if k%250 != 0 && k != len(pts)-1 {
			continue
		}
		for ti := range d.tris {
			tr := &d.tris[ti]
			if tr.dead {
				continue
			}
			for e := 0; e < 3; e++ {
				nb := tr.adj[e]
				if nb < 0 {
					continue
				}
				if d.tris[nb].dead {
					t.Fatalf("after %d inserts: triangle %d adjacent to dead %d", k+1, ti, nb)
				}
				found := false
				for f := 0; f < 3; f++ {
					if d.tris[nb].adj[f] == int32(ti) {
						found = true
					}
				}
				if !found {
					t.Fatalf("after %d inserts: adjacency %d->%d not reciprocated", k+1, ti, nb)
				}
			}
		}
	}
}

func TestMortonOrderIsPermutation(t *testing.T) {
	pts := randomPoints(777, 3)
	order := mortonOrder(pts)
	seen := make([]bool, len(pts))
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing", i)
		}
	}
}
