package gen

import (
	"fmt"
	"math"
)

// SuiteEntry names one graph of the evaluation suite and knows how to
// build it at a given scale.
type SuiteEntry struct {
	Name  string
	Build func(scale float64) *Generated
}

// scaled returns max(lo, round(n·scale)).
func scaled(n int, scale float64, lo int) int {
	v := int(float64(n)*scale + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

// SuiteEntries returns the nine-graph analogue of the paper's Table 1
// test suite, in the paper's order. scale=1 produces the default bench
// sizes (≈100× smaller than the paper's 1–21M-vertex originals, chosen
// so the full 1–1024-rank sweep runs on one machine); tests use smaller
// scales. Each entry is deterministic.
func SuiteEntries() []SuiteEntry {
	side := func(n int, scale float64, lo int) int {
		s := scaled(n, scale, lo)
		return s
	}
	return []SuiteEntry{
		{"ecology1", func(s float64) *Generated {
			g := Grid2D(side(128, sqrtScale(s), 12), side(128, sqrtScale(s), 12))
			g.Name = "ecology1"
			return g
		}},
		{"ecology2", func(s float64) *Generated {
			g := Grid2D(side(127, sqrtScale(s), 12), side(129, sqrtScale(s), 12))
			g.Name = "ecology2"
			return g
		}},
		{"delaunay_n20", func(s float64) *Generated {
			g := DelaunayRandom(scaled(16384, s, 256), 2020)
			g.Name = "delaunay_n20"
			return g
		}},
		{"G3_circuit", func(s float64) *Generated {
			g := Circuit(side(158, sqrtScale(s), 12), side(158, sqrtScale(s), 12), 33)
			g.Name = "G3_circuit"
			return g
		}},
		{"kkt_power", func(s float64) *Generated {
			g := KKTPower(scaled(33000, s, 300), 44)
			g.Name = "kkt_power"
			return g
		}},
		{"hugetrace-00000", func(s float64) *Generated {
			g := Trace(scaled(72000, s, 400), 55)
			g.Name = "hugetrace-00000"
			return g
		}},
		{"delaunay_n23", func(s float64) *Generated {
			g := DelaunayRandom(scaled(131072, s, 512), 2323)
			g.Name = "delaunay_n23"
			return g
		}},
		{"delaunay_n24", func(s float64) *Generated {
			g := DelaunayRandom(scaled(262144, s, 1024), 2424)
			g.Name = "delaunay_n24"
			return g
		}},
		{"hugebubbles-00020", func(s float64) *Generated {
			g := Bubbles(scaled(280000, s, 1200), 20, 66)
			g.Name = "hugebubbles-00020"
			return g
		}},
	}
}

// sqrtScale converts an area scale into a side-length scale for the
// grid-shaped graphs, so that vertex counts scale like the others.
func sqrtScale(s float64) float64 {
	if s <= 0 {
		panic(fmt.Sprintf("gen: non-positive suite scale %v", s))
	}
	return math.Sqrt(s)
}

// Suite builds all nine suite graphs at the given scale.
func Suite(scale float64) []*Generated {
	entries := SuiteEntries()
	out := make([]*Generated, len(entries))
	for i, e := range entries {
		out[i] = e.Build(scale)
	}
	return out
}

// Large4 returns the names of the four largest suite graphs, used by
// Figure 9 and Table 4.
func Large4() []string {
	return []string{"hugetrace-00000", "delaunay_n23", "delaunay_n24", "hugebubbles-00020"}
}
