// Package gen generates the synthetic test graphs this reproduction
// uses in place of the UFL sparse-matrix collection: structural
// analogues of the paper's nine test graphs (Table 1) plus generic
// generators (grids, Delaunay meshes, random geometric graphs, R-MAT,
// preferential attachment) for tests.
//
// Every generator is deterministic for a given seed. Graphs that come
// from a geometric construction also carry their natural coordinates;
// partitioners that require coordinates (RCB, G30/G7) receive either
// these or a force-directed embedding, mirroring the paper's use of
// Hu's Mathematica embedder for coordinate-free graphs.
package gen

import (
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/hostpar"
)

// Generated bundles a graph with its name and optional natural
// coordinates.
type Generated struct {
	Name   string
	G      *graph.Graph
	Coords []geometry.Vec2 // natural coordinates; nil when none exist
}

// MortonRelabel renumbers the vertices of g along a Z-order curve of
// their coordinates, the locality-preserving ordering mesh files in the
// wild have (and which block distribution over ranks relies on). It
// returns the relabelled graph and coordinates.
func MortonRelabel(g *graph.Graph, coords []geometry.Vec2) (*graph.Graph, []geometry.Vec2) {
	order := mortonOrder(coords) // order[i] = old id at new position i
	newID := make([]int32, g.NumVertices())
	hostpar.For(len(order), relabelGrain, func(pos int) {
		newID[order[pos]] = int32(pos)
	})
	b := graph.NewBuilder(g.NumVertices())
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for k := g.XAdj[u]; k < g.XAdj[u+1]; k++ {
			v := g.Adjncy[k]
			if u < v {
				b.AddWeightedEdge(newID[u], newID[v], g.ArcWeight(k))
			}
		}
	}
	out := b.Build()
	if g.EWgt == nil {
		out.EWgt = nil
	}
	newCoords := make([]geometry.Vec2, len(coords))
	hostpar.For(len(order), relabelGrain, func(pos int) {
		newCoords[pos] = coords[order[pos]]
	})
	return out, newCoords
}

// relabelGrain keeps the relabelling scatters from forking on the small
// graphs tests generate; suite-scale meshes split across the pool.
const relabelGrain = 8192

// LargestComponent restricts g (and coords, when non-nil) to its
// largest connected component, relabelling vertices densely.
func LargestComponent(g *graph.Graph, coords []geometry.Vec2) (*graph.Graph, []geometry.Vec2) {
	label, count := graph.Components(g)
	if count <= 1 {
		return g, coords
	}
	sizes := make([]int, count)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	keep := make([]int32, 0, sizes[best])
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if label[v] == int32(best) {
			keep = append(keep, v)
		}
	}
	sub, back := graph.InducedSubgraph(g, keep)
	var subCoords []geometry.Vec2
	if coords != nil {
		subCoords = make([]geometry.Vec2, len(back))
		for i, v := range back {
			subCoords[i] = coords[v]
		}
	}
	return sub, subCoords
}

// Grid2D builds the rows×cols 5-point-stencil grid graph with unit
// spacing coordinates — the structure of the paper's ecology graphs.
func Grid2D(rows, cols int) *Generated {
	n := rows * cols
	b := graph.NewBuilder(n)
	coords := make([]geometry.Vec2, n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = geometry.Vec2{X: float64(c), Y: float64(r)}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return &Generated{Name: "grid2d", G: b.Build(), Coords: coords}
}

// DelaunayRandom builds the Delaunay triangulation of n uniformly
// random points in the unit square — the structure of the paper's
// delaunay_n* graphs.
func DelaunayRandom(n int, seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vec2, n)
	for i := range pts {
		pts[i] = geometry.Vec2{X: rng.Float64(), Y: rng.Float64()}
	}
	b := graph.NewBuilder(n)
	for _, e := range Delaunay(pts) {
		b.AddEdge(e[0], e[1])
	}
	g, coords := LargestComponent(b.Build(), pts)
	g, coords = MortonRelabel(g, coords)
	return &Generated{Name: "delaunay", G: g, Coords: coords}
}

// Circuit builds a circuit-simulation-style graph: a rows×cols grid
// backbone with short local "via" edges and a sparse set of long wires,
// echoing the mildly non-planar irregularity of G3_circuit.
func Circuit(rows, cols int, seed int64) *Generated {
	base := Grid2D(rows, cols)
	n := base.G.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range base.G.Neighbors(u) {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	// Local shorts: ~12% of vertices connect to a random vertex within
	// Chebyshev distance 6.
	for v := 0; v < n; v++ {
		if rng.Float64() > 0.12 {
			continue
		}
		r, c := v/cols, v%cols
		dr := rng.Intn(13) - 6
		dc := rng.Intn(13) - 6
		rr, cc := r+dr, c+dc
		if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
			continue
		}
		b.AddEdge(int32(v), int32(rr*cols+cc))
	}
	// A few long wires (power/clock nets).
	for k := 0; k < n/400; k++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, coords := LargestComponent(b.Build(), base.Coords)
	return &Generated{Name: "circuit", G: g, Coords: coords}
}

// BarabasiAlbert builds a preferential-attachment graph: each new
// vertex attaches to m existing vertices chosen proportionally to
// degree, giving the heavy-tailed hub structure of infrastructure
// networks. Edges stream straight into graph.BuildStreamed — no
// builder staging list is materialised.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if n < m+1 {
		panic("gen: BarabasiAlbert needs n > m")
	}
	return graph.BuildStreamed(n, baEmit(n, m, seed))
}

// baEmit is the BarabasiAlbert edge stream. Each invocation replays
// the identical attachment process from the seed, as BuildStreamed's
// two passes require.
func baEmit(n, m int, seed int64) func(add func(u, v, w int32)) {
	return func(add func(u, v, w int32)) {
		rng := rand.New(rand.NewSource(seed))
		// Repeated-endpoint list: sampling uniformly from it is sampling
		// proportionally to degree.
		targets := make([]int32, 0, 2*n*m)
		for v := 0; v < m; v++ {
			add(int32(v), int32(m), 1)
			targets = append(targets, int32(v), int32(m))
		}
		chosen := make(map[int32]struct{}, m)
		picks := make([]int32, 0, m)
		for v := m + 1; v < n; v++ {
			clear(chosen)
			picks = picks[:0]
			for len(chosen) < m {
				t := targets[rng.Intn(len(targets))]
				if _, dup := chosen[t]; dup {
					continue
				}
				chosen[t] = struct{}{}
				picks = append(picks, t)
			}
			// Attach in draw order, not map order: ranging over the set made
			// the target list — and so every later degree-proportional draw,
			// hence the whole graph — differ from run to run.
			for _, t := range picks {
				add(int32(v), t, 1)
				targets = append(targets, int32(v), t)
			}
		}
	}
}

// KKTPower builds a KKT-system graph over a power-network base, the
// structure of kkt_power: primal vertices form a hub-heavy
// preferential-attachment network, and every base edge contributes a
// constraint (dual) vertex connected to its two endpoints. Around a
// third of the vertices are primal; there are no natural coordinates.
// nApprox is the approximate total vertex count.
func KKTPower(nApprox int, seed int64) *Generated {
	nb := nApprox / 3
	if nb < 8 {
		nb = 8
	}
	base := BarabasiAlbert(nb, 2, seed)
	mb := base.NumEdges()
	n := nb + mb
	return &Generated{Name: "kkt_power", G: graph.BuildStreamed(n, kktEmit(base, nb))}
}

// kktEmit streams the KKT construction over a fixed base graph:
// deterministic by construction (no RNG), so BuildStreamed can replay
// it.
func kktEmit(base *graph.Graph, nb int) func(add func(u, v, w int32)) {
	return func(add func(u, v, w int32)) {
		cur := graph.GetCursor(base)
		defer cur.Release()
		next := int32(nb)
		for u := int32(0); u < int32(nb); u++ {
			nbrs, _ := cur.Arcs(u)
			for _, v := range nbrs {
				if u < v {
					add(u, v, 1)
					add(u, next, 1)
					add(v, next, 1)
					next++
				}
			}
		}
	}
}

// RandomGeometric builds a random geometric graph: n uniform points in
// the unit square, an edge between every pair within distance radius.
// Grid bucketing keeps construction O(n) for radius ~ sqrt(c/n).
func RandomGeometric(n int, radius float64, seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vec2, n)
	for i := range pts {
		pts[i] = geometry.Vec2{X: rng.Float64(), Y: rng.Float64()}
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[int][]int32)
	cellOf := func(p geometry.Vec2) (int, int) {
		cx := int(p.X * float64(cells))
		cy := int(p.Y * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	for i, p := range pts {
		cx, cy := cellOf(p)
		bucket[cx*cells+cy] = append(bucket[cx*cells+cy], int32(i))
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i, p := range pts {
		cx, cy := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= cells || ny < 0 || ny >= cells {
					continue
				}
				for _, j := range bucket[nx*cells+ny] {
					if int32(i) < j {
						d := p.Sub(pts[j])
						if d.Dot(d) <= r2 {
							b.AddEdge(int32(i), j)
						}
					}
				}
			}
		}
	}
	g, coords := LargestComponent(b.Build(), pts)
	g, coords = MortonRelabel(g, coords)
	return &Generated{Name: "rgg", G: g, Coords: coords}
}

// RMAT builds an R-MAT graph with 2^scale vertices and roughly
// edgeFactor·2^scale distinct edges using the standard (0.57, 0.19,
// 0.19, 0.05) partition probabilities. Used by tests for a skewed,
// coordinate-free workload.
func RMAT(scale, edgeFactor int, seed int64) *Generated {
	n := 1 << scale
	g, _ := LargestComponent(graph.BuildStreamed(n, rmatEmit(scale, edgeFactor, seed)), nil)
	return &Generated{Name: "rmat", G: g}
}

// rmatEmit is the R-MAT edge stream: pure per-edge RNG from the seed,
// replayed identically on each invocation.
func rmatEmit(scale, edgeFactor int, seed int64) func(add func(u, v, w int32)) {
	return func(add func(u, v, w int32)) {
		n := 1 << scale
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < n*edgeFactor; k++ {
			u, v := 0, 0
			for bit := 0; bit < scale; bit++ {
				r := rng.Float64()
				switch {
				case r < 0.57:
				case r < 0.76:
					v |= 1 << bit
				case r < 0.95:
					u |= 1 << bit
				default:
					u |= 1 << bit
					v |= 1 << bit
				}
			}
			if u != v {
				add(int32(u), int32(v), 1)
			}
		}
	}
}
