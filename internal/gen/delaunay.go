package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geometry"
)

// Delaunay computes the Delaunay triangulation of pts and returns its
// edge list as vertex-index pairs. It uses incremental insertion with
// Lawson edge flips; points are inserted in Morton (Z-curve) order and
// located by walking from the previously modified triangle, which makes
// construction near-linear for the jittered point sets the generators
// produce. Points are assumed to be in general position up to a small
// epsilon (the generators jitter their points to guarantee this).
func Delaunay(pts []geometry.Vec2) [][2]int32 {
	d := newTriangulator(pts)
	order := mortonOrder(pts)
	for _, i := range order {
		d.insert(i)
	}
	return d.edges()
}

// tri is one triangle. Edge e (0,1,2) is the edge opposite vertex
// verts[e], i.e. it joins verts[(e+1)%3] and verts[(e+2)%3]; adj[e] is
// the triangle sharing that edge, or -1 on the hull.
type tri struct {
	verts [3]int32
	adj   [3]int32
	dead  bool
}

type triangulator struct {
	pts  []geometry.Vec2 // original points plus 3 super-triangle vertices
	n    int             // number of real points
	tris []tri
	last int32 // a live triangle near the last insertion, walk start
}

func newTriangulator(pts []geometry.Vec2) *triangulator {
	n := len(pts)
	all := make([]geometry.Vec2, n, n+3)
	copy(all, pts)
	r := geometry.Rect{X0: -1, Y0: -1, X1: 1, Y1: 1}
	if n > 0 {
		r = geometry.BoundingRect(pts)
	}
	c := r.Center()
	span := math.Max(r.Width(), r.Height()) + 1
	// A super-triangle comfortably containing every point.
	big := 64 * span
	all = append(all,
		geometry.Vec2{X: c.X - big, Y: c.Y - big/2},
		geometry.Vec2{X: c.X + big, Y: c.Y - big/2},
		geometry.Vec2{X: c.X, Y: c.Y + big},
	)
	t := &triangulator{pts: all, n: n}
	t.tris = append(t.tris, tri{
		verts: [3]int32{int32(n), int32(n + 1), int32(n + 2)},
		adj:   [3]int32{-1, -1, -1},
	})
	t.last = 0
	return t
}

// orient2d returns twice the signed area of triangle (a, b, c):
// positive when counter-clockwise.
func orient2d(a, b, c geometry.Vec2) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// inCircle reports whether d lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c).
func inCircle(a, b, c, d geometry.Vec2) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 1e-12
}

// locate walks from t.last to a triangle containing point p (index pi).
func (t *triangulator) locate(pi int32) int32 {
	p := t.pts[pi]
	cur := t.last
	if t.tris[cur].dead {
		// Find any live triangle; the caller keeps last fresh so this
		// is a cold path.
		for i := range t.tris {
			if !t.tris[i].dead {
				cur = int32(i)
				break
			}
		}
	}
	for steps := 0; steps < 4*len(t.tris)+64; steps++ {
		tr := &t.tris[cur]
		moved := false
		for e := 0; e < 3; e++ {
			u := t.pts[tr.verts[(e+1)%3]]
			v := t.pts[tr.verts[(e+2)%3]]
			if orient2d(u, v, p) < -1e-12 {
				next := tr.adj[e]
				if next < 0 {
					break // outside hull: cannot happen inside super-tri
				}
				cur = next
				moved = true
				break
			}
		}
		if !moved {
			return cur
		}
	}
	// Walk failed to converge (numerically degenerate input): fall
	// back to exhaustive search.
	for i := range t.tris {
		tr := &t.tris[i]
		if tr.dead {
			continue
		}
		ok := true
		for e := 0; e < 3; e++ {
			u := t.pts[tr.verts[(e+1)%3]]
			v := t.pts[tr.verts[(e+2)%3]]
			if orient2d(u, v, p) < -1e-9 {
				ok = false
				break
			}
		}
		if ok {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("gen: Delaunay locate failed for point %d", pi))
}

// edgeIndexOf returns which edge of triangle ti faces triangle other.
func (t *triangulator) edgeIndexOf(ti, other int32) int {
	for e := 0; e < 3; e++ {
		if t.tris[ti].adj[e] == other {
			return e
		}
	}
	panic("gen: Delaunay adjacency corrupted")
}

// insert adds point pi with a 1→3 split followed by Lawson
// legalisation.
func (t *triangulator) insert(pi int32) {
	ti := t.locate(pi)
	old := t.tris[ti]
	t.tris[ti].dead = true
	// Three new triangles: pi with each edge of old.
	base := int32(len(t.tris))
	ids := [3]int32{base, base + 1, base + 2}
	for e := 0; e < 3; e++ {
		a := old.verts[(e+1)%3]
		b := old.verts[(e+2)%3]
		nt := tri{
			// Vertex 0 is pi, so edge 0 (opposite pi) is the old edge.
			verts: [3]int32{pi, a, b},
			adj:   [3]int32{old.adj[e], ids[(e+1)%3], ids[(e+2)%3]},
		}
		t.tris = append(t.tris, nt)
		if old.adj[e] >= 0 {
			oe := t.edgeIndexOf(old.adj[e], ti)
			t.tris[old.adj[e]].adj[oe] = ids[e]
		}
	}
	t.last = ids[0]
	// Legalise the three edges opposite pi.
	var stack []int32
	stack = append(stack, ids[0], ids[1], ids[2])
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.tris[cur].dead {
			continue
		}
		// In each stacked triangle, vertex 0 is pi and edge 0 faces
		// the potentially illegal neighbour... after flips that
		// invariant moves, so locate pi's edge explicitly.
		pe := -1
		for e := 0; e < 3; e++ {
			if t.tris[cur].verts[e] == pi {
				pe = e
				break
			}
		}
		if pe < 0 {
			continue
		}
		nb := t.tris[cur].adj[pe]
		if nb < 0 {
			continue
		}
		// Opposite vertex in the neighbour.
		ne := t.edgeIndexOf(nb, cur)
		q := t.tris[nb].verts[ne]
		a := t.tris[cur].verts[(pe+1)%3]
		b := t.tris[cur].verts[(pe+2)%3]
		if !inCircle(t.pts[pi], t.pts[a], t.pts[b], t.pts[q]) {
			continue
		}
		// Flip edge (a,b) to (pi,q): replace cur and nb.
		curAB := t.tris[cur].adj
		// In nb, find the edges opposite a and b. nb's vertices are a
		// rotation of (q, b, a); the edge opposite a joins (q,b) and
		// the edge opposite b joins (q,a).
		var nbA, nbB int32 = -1, -1
		for e := 0; e < 3; e++ {
			switch t.tris[nb].verts[e] {
			case a:
				nbA = t.tris[nb].adj[e]
			case b:
				nbB = t.tris[nb].adj[e]
			}
		}
		curA := curAB[(pe+1)%3] // cur edge opposite a joins pi,b
		curB := curAB[(pe+2)%3] // cur edge opposite b joins pi,a
		t.tris[cur] = tri{verts: [3]int32{pi, a, q}, adj: [3]int32{nbB, nb, curB}}
		t.tris[nb] = tri{verts: [3]int32{pi, q, b}, adj: [3]int32{nbA, curA, cur}}
		// Fix back-pointers of the two outer neighbours that changed
		// owner; nbA keeps pointing at nb and curB at cur.
		if nbB >= 0 {
			t.tris[nbB].adj[t.edgeIndexOf(nbB, nb)] = cur
		}
		if curA >= 0 {
			t.tris[curA].adj[t.edgeIndexOf(curA, cur)] = nb
		}
		t.last = cur
		stack = append(stack, cur, nb)
	}
}

// edges lists the unique triangulation edges between real points.
func (t *triangulator) edges() [][2]int32 {
	seen := make(map[int64]struct{})
	var out [][2]int32
	for i := range t.tris {
		tr := &t.tris[i]
		if tr.dead {
			continue
		}
		for e := 0; e < 3; e++ {
			a := tr.verts[(e+1)%3]
			b := tr.verts[(e+2)%3]
			if int(a) >= t.n || int(b) >= t.n {
				continue // super-triangle edge
			}
			if a > b {
				a, b = b, a
			}
			key := int64(a)<<32 | int64(b)
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, [2]int32{a, b})
		}
	}
	return out
}

// mortonOrder returns point indices sorted along a Z-order curve, which
// gives the insertion locality the walking point-location relies on.
func mortonOrder(pts []geometry.Vec2) []int32 {
	if len(pts) == 0 {
		return nil
	}
	r := geometry.BoundingRect(pts)
	w := math.Max(r.Width(), 1e-12)
	h := math.Max(r.Height(), 1e-12)
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		x := uint32((p.X - r.X0) / w * 65535)
		y := uint32((p.Y - r.Y0) / h * 65535)
		keys[i] = interleave16(x, y)
	}
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	return order
}

func interleave16(x, y uint32) uint64 {
	spread := func(v uint32) uint64 {
		z := uint64(v) & 0xFFFF
		z = (z | z<<8) & 0x00FF00FF
		z = (z | z<<4) & 0x0F0F0F0F
		z = (z | z<<2) & 0x33333333
		z = (z | z<<1) & 0x55555555
		return z
	}
	return spread(x) | spread(y)<<1
}
