package gen

import (
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// buildMesh triangulates pts, drops edges longer than maxEdge and edges
// rejected by the filter (when non-nil), and returns the largest
// component with its coordinates.
func buildMesh(name string, pts []geometry.Vec2, maxEdge float64, reject func(a, b geometry.Vec2) bool) *Generated {
	b := graph.NewBuilder(len(pts))
	for _, e := range Delaunay(pts) {
		a, c := pts[e[0]], pts[e[1]]
		if a.Dist(c) > maxEdge {
			continue
		}
		if reject != nil && reject(a, c) {
			continue
		}
		b.AddEdge(e[0], e[1])
	}
	g, coords := LargestComponent(b.Build(), pts)
	g, coords = MortonRelabel(g, coords)
	return &Generated{Name: name, G: g, Coords: coords}
}

// Trace builds a triangulated meandering ribbon of roughly n vertices —
// the long, thin, hole-free domain class of hugetrace-00000. The ribbon
// follows a sine snake several periods long; the aspect ratio makes
// good separators short and strongly direction-dependent, which is what
// exercises a geometric partitioner on this class.
func Trace(n int, seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	// Ribbon: length L in x with y = A·sin(2πfx), half-width w.
	const periods = 4.0
	const width = 0.08
	length := 4.0
	amp := 0.8
	pts := make([]geometry.Vec2, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * length
		c := amp * math.Sin(2*math.Pi*periods*x/length)
		y := c + (rng.Float64()*2-1)*width
		pts = append(pts, geometry.Vec2{X: x, Y: y})
	}
	// Edges must not cut across ribbon folds: the vertical distance
	// between adjacent folds is ~amp, so a conservative length cap of
	// several mean spacings suffices.
	spacing := math.Sqrt(length * 2 * width / float64(n))
	return buildMesh("trace", pts, 6*spacing, nil)
}

// Bubbles builds a triangulated disk with circular holes ("bubbles") of
// roughly n vertices, the domain class of hugebubbles-00020. Holes are
// placed on a jittered ring pattern; points inside holes are rejected
// and triangulation edges crossing a hole are dropped.
func Bubbles(n, holes int, seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	type hole struct {
		c geometry.Vec2
		r float64
	}
	hs := make([]hole, 0, holes)
	for len(hs) < holes {
		c := geometry.Vec2{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
		if c.Norm() > 0.85 {
			continue
		}
		r := 0.05 + 0.07*rng.Float64()
		ok := true
		for _, h := range hs {
			if h.c.Dist(c) < h.r+r+0.05 {
				ok = false
				break
			}
		}
		if ok {
			hs = append(hs, hole{c, r})
		}
	}
	inHole := func(p geometry.Vec2) bool {
		for _, h := range hs {
			if p.Dist(h.c) < h.r {
				return true
			}
		}
		return false
	}
	pts := make([]geometry.Vec2, 0, n)
	for len(pts) < n {
		p := geometry.Vec2{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}
		if p.Norm() > 1 || inHole(p) {
			continue
		}
		pts = append(pts, p)
	}
	spacing := math.Sqrt(math.Pi / float64(n)) // ~unit disk area / n
	reject := func(a, b geometry.Vec2) bool {
		return inHole(a.Add(b).Scale(0.5))
	}
	return buildMesh("bubbles", pts, 6*spacing, reject)
}
