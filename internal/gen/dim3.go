package gen

import (
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// Generated3D bundles a graph with 3-D coordinates for the
// three-dimensional geometric partitioners.
type Generated3D struct {
	Name   string
	G      *graph.Graph
	Coords []geometry.Vec3
}

// Grid3D builds the nx×ny×nz 7-point-stencil grid graph with unit
// spacing coordinates — the canonical structured 3-D FEM mesh.
func Grid3D(nx, ny, nz int) *Generated3D {
	n := nx * ny * nz
	b := graph.NewBuilder(n)
	coords := make([]geometry.Vec3, n)
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				coords[id(x, y, z)] = geometry.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
				if x+1 < nx {
					b.AddEdge(id(x, y, z), id(x+1, y, z))
				}
				if y+1 < ny {
					b.AddEdge(id(x, y, z), id(x, y+1, z))
				}
				if z+1 < nz {
					b.AddEdge(id(x, y, z), id(x, y, z+1))
				}
			}
		}
	}
	return &Generated3D{Name: "grid3d", G: b.Build(), Coords: coords}
}

// RandomGeometric3D builds a random geometric graph in the unit cube:
// n uniform points, an edge between every pair within distance radius
// (bucketed, so construction is O(n) for radius ~ (c/n)^(1/3)). The
// largest component is returned.
func RandomGeometric3D(n int, radius float64, seed int64) *Generated3D {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geometry.Vec3, n)
	for i := range pts {
		pts[i] = geometry.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(p geometry.Vec3) (int, int, int) {
		f := func(v float64) int {
			c := int(v * float64(cells))
			if c >= cells {
				c = cells - 1
			}
			return c
		}
		return f(p.X), f(p.Y), f(p.Z)
	}
	bucket := make(map[int][]int32)
	key := func(x, y, z int) int { return (x*cells+y)*cells + z }
	for i, p := range pts {
		x, y, z := cellOf(p)
		bucket[key(x, y, z)] = append(bucket[key(x, y, z)], int32(i))
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i, p := range pts {
		cx, cy, cz := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					x, y, z := cx+dx, cy+dy, cz+dz
					if x < 0 || x >= cells || y < 0 || y >= cells || z < 0 || z >= cells {
						continue
					}
					for _, j := range bucket[key(x, y, z)] {
						if int32(i) < j {
							d := p.Sub(pts[j])
							if d.Dot(d) <= r2 {
								b.AddEdge(int32(i), j)
							}
						}
					}
				}
			}
		}
	}
	g := b.Build()
	label, count := graph.Components(g)
	if count > 1 {
		sizes := make([]int, count)
		for _, l := range label {
			sizes[l]++
		}
		best := 0
		for i, s := range sizes {
			if s > sizes[best] {
				best = i
			}
		}
		var keep []int32
		for v := int32(0); v < int32(n); v++ {
			if label[v] == int32(best) {
				keep = append(keep, v)
			}
		}
		sub, back := graph.InducedSubgraph(g, keep)
		newPts := make([]geometry.Vec3, len(back))
		for i, v := range back {
			newPts[i] = pts[v]
		}
		g, pts = sub, newPts
	}
	return &Generated3D{Name: "rgg3d", G: g, Coords: pts}
}
