// Command scalapart partitions a graph into two parts with any of the
// partitioners in this repository and reports cut size, balance, and
// modeled parallel execution time.
//
// The graph comes either from a METIS file (-file) or from the built-in
// synthetic suite (-graph, -scale). Methods needing coordinates (RCB,
// G30/G7/G7-NL, SP-PG7-NL) use the graph's natural coordinates when
// available, otherwise a sequential force-directed embedding.
//
// Examples:
//
//	scalapart -graph delaunay_n20 -p 64
//	scalapart -graph hugetrace-00000 -method Pt-Scotch -p 256
//	scalapart -file mesh.graph -method RCB -p 16 -out parts.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/geopart"
	"repro/internal/graph"
	"repro/internal/hostpar"
	"repro/internal/mpi"
	"repro/internal/refine"
	"repro/internal/trace"
)

func main() {
	var (
		file        = flag.String("file", "", "METIS graph file to partition")
		name        = flag.String("graph", "", "built-in suite graph name (see -list)")
		scale       = flag.Float64("scale", 0.25, "size scale for built-in graphs")
		method      = flag.String("method", "ScalaPart", "ScalaPart | ParMetis | Pt-Scotch | RCB | SP-PG7-NL | G30 | G7 | G7-NL")
		compress    = flag.Bool("compress", false, "hold the graph in the delta/varint compressed adjacency representation (identical results, smaller footprint); with -bench-json, sweep on compressed graphs")
		p           = flag.Int("p", 16, "simulated processor count")
		seed        = flag.Int64("seed", 42, "random seed")
		out         = flag.String("out", "", "write per-vertex part ids to this file")
		list        = flag.Bool("list", false, "list built-in graphs and exit")
		fault       = flag.String("fault", "", "inject faults: comma-separated kill:R@E | drop:R@E | delay:R@E+SECS | trunc:R@E")
		recoverFlag = flag.String("recover", "off", "rank-failure recovery policy for ScalaPart: off | respawn | shrink")
		retryBudget = flag.Int("retry-budget", 0, "max retransmissions per message under -recover (0 = default budget)")
		watchdog    = flag.Duration("watchdog", 0, "deadlock watchdog stall window (0 = built-in default)")
		benchJSON   = flag.String("bench-json", "", "sweep ScalaPart over the suite and write perf-trajectory JSON to this file, then exit")
		psFlag      = flag.String("ps", "", "processor sweep for -bench-json (default 1,2,...,1024)")
		refineFlag  = flag.String("refine", "off", "extra refinement beyond the always-on strip FM: off (historical pipeline) | full (full-cut distributed boundary FM)")
		trials      = flag.Int("trials", 1, "evolutionary search width for ScalaPart: run the embed+partition tail N times with decorrelated seeds and combine the two best bisections (1 = single pass)")
		rcbModel    = flag.Int("rcb-model", 2, "RCB cost-model version: 2 (Zoltan-faithful: per-level median search + migration) | 1 (historical single-scan model); partition results are identical")
		workers     = flag.Int("workers", 0, "host worker pool size for the fork-join coarsening/embedding kernels (0 = one per core)")
		replayFlag  = flag.String("replay", "goroutine", "rank scheduling: goroutine (one live goroutine per rank) | batched (step at most -workers ranks' compute between communication points)")
		collFlag    = flag.String("collectives", "fanin", "collective rendezvous engine: fanin (lock-free arrival slots, allocation-free) | legacy (mutex/cond gather-all); results are bit-identical")
		phaseBreak  = flag.Bool("phase-breakdown", false, "print the per-phase virtual-time and byte-volume breakdown (Section 3.1 cost terms); with -bench-json, embed it per run")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (timeline axis = virtual clock)")
		checkInv    = flag.Bool("check-invariants", false, "validate runtime invariants (clock monotonicity, byte symmetry, collective participation) and partition invariants after the run")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	hostpar.SetWorkers(*workers)
	replay, err := mpi.ParseReplayMode(*replayFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalapart:", err)
		os.Exit(1)
	}
	mpi.SetReplayMode(replay)
	coll, err := mpi.ParseCollectiveEngine(*collFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalapart:", err)
		os.Exit(1)
	}
	mpi.SetCollectiveEngine(coll)
	switch *refineFlag {
	case "off":
	case "full":
		refine.SetFullCut(true)
	default:
		fmt.Fprintf(os.Stderr, "scalapart: unknown -refine mode %q (want off or full)\n", *refineFlag)
		os.Exit(1)
	}
	if *rcbModel != 1 && *rcbModel != 2 {
		fmt.Fprintf(os.Stderr, "scalapart: unknown -rcb-model %d (want 1 or 2)\n", *rcbModel)
		os.Exit(1)
	}
	geopart.SetRCBModel(*rcbModel)
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "scalapart: -trials must be >= 1 (got %d)\n", *trials)
		os.Exit(1)
	}
	policy, err := core.ParseRecoveryPolicy(*recoverFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalapart:", err)
		os.Exit(1)
	}
	if *watchdog > 0 {
		mpi.SetWatchdogTimeout(*watchdog)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalapart:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scalapart:", err)
			}
		}
	}()
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *scale, *psFlag, *phaseBreak, *compress, *trials); err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		fmt.Printf("perf trajectory written to %s\n", *benchJSON)
		return
	}
	model := mpi.DefaultModel()
	if *fault != "" {
		plan, err := parseFaultPlan(*fault)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		model.Faults = plan
	}
	if *list {
		for _, e := range gen.SuiteEntries() {
			fmt.Println(e.Name)
		}
		return
	}
	// Methods that execute on the simulated runtime can be traced; the
	// purely sequential geometric baselines have no virtual clocks.
	simulated := map[string]bool{"ScalaPart": true, "SP-PG7-NL": true, "RCB": true, "ParMetis": true, "Pt-Scotch": true}
	var rec *trace.Recorder
	if *phaseBreak || *traceOut != "" || *checkInv {
		if simulated[*method] {
			rec = trace.New()
			model.Trace = rec
		} else if *phaseBreak || *traceOut != "" {
			fmt.Fprintf(os.Stderr, "scalapart: WARNING: -phase-breakdown/-trace need a simulated-runtime method; %s runs sequentially\n", *method)
		}
	}
	if policy != core.RecoverOff && *method != "ScalaPart" {
		fmt.Fprintf(os.Stderr, "scalapart: WARNING: -recover applies to the ScalaPart pipeline; %s runs without rollback recovery\n", *method)
	}
	if *trials > 1 && *method != "ScalaPart" {
		fmt.Fprintf(os.Stderr, "scalapart: WARNING: -trials drives the ScalaPart evolutionary search; %s runs a single pass\n", *method)
	}
	if *refineFlag == "full" && *method != "ScalaPart" && *method != "SP-PG7-NL" {
		fmt.Fprintf(os.Stderr, "scalapart: WARNING: -refine full applies to the geodesic pipelines; %s is unaffected\n", *method)
	}
	g, coords, err := loadGraph(*file, *name, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalapart:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	if *compress {
		plain := g.AdjacencyBytes()
		g = graph.Compress(g)
		comp := g.AdjacencyBytes()
		perEdge, ratio := 0.0, 0.0
		if m := g.NumEdges(); m > 0 {
			perEdge = float64(comp) / float64(m)
			ratio = 100 * float64(comp) / float64(plain)
		}
		fmt.Printf("compressed adjacency: %d bytes (%.2f B/edge, %.1f%% of plain %d)\n",
			comp, perEdge, ratio, plain)
	}

	needCoords := map[string]bool{"RCB": true, "SP-PG7-NL": true, "G30": true, "G7": true, "G7-NL": true}
	if needCoords[*method] && coords == nil {
		fmt.Println("computing sequential force-directed embedding (graph has no coordinates)...")
		coords = embed.SequentialLayout(g, embed.SeqOptions{Seed: *seed})
	}

	var part []int32
	var cut int64
	var timeS, imb float64
	fallback := false
	// retrySequential retries a failed parallel run with the sequential
	// baseline partitioner, printing the rank diagnostic first. The
	// fallback result is clearly flagged; a healthy run is never touched.
	retrySequential := func(runErr error) *core.Result {
		fmt.Fprintf(os.Stderr, "scalapart: WARNING: parallel run failed: %v\n", runErr)
		fmt.Fprintf(os.Stderr, "scalapart: WARNING: retrying with the sequential baseline partitioner\n")
		res, err := core.SequentialFallback(g, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		fallback = true
		return res
	}
	switch *method {
	case "ScalaPart":
		opt := core.DefaultOptions(*seed)
		opt.Model = model
		opt.Trials = *trials
		opt.Recover = core.RecoverOptions{Policy: policy, RetryBudget: *retryBudget}
		res, runErr := core.PartitionChecked(g, *p, opt)
		if runErr != nil {
			res = retrySequential(runErr)
		} else {
			fmt.Printf("phases: coarsen %.4fs  embed %.4fs  partition %.4fs (strip %d vertices)\n",
				res.Times.Coarsen, res.Times.Embed, res.Times.Partition, res.StripSize)
		}
		if res.Recovery != nil {
			fmt.Println(res.Recovery)
			for _, r := range res.Recovery.Resumes {
				fmt.Printf("  resumed: %s\n", r)
			}
		}
		fallback = fallback || res.Fallback
		part, cut, imb, timeS = res.Part, res.Cut, res.Imbalance, res.Times.Total
	case "SP-PG7-NL":
		res, runErr := core.PartitionGeometricChecked(g, coords, *p, geopart.DefaultParallelConfig(), model)
		if runErr != nil {
			res = retrySequential(runErr)
		}
		part, cut, imb, timeS = res.Part, res.Cut, res.Imbalance, res.Times.Total
	case "RCB":
		res, runErr := core.RCBParallelChecked(g, coords, *p, model)
		if runErr != nil {
			res = retrySequential(runErr)
		}
		part, cut, imb, timeS = res.Part, res.Cut, res.Imbalance, res.Times.Total
	case "ParMetis", "Pt-Scotch":
		cfg := baseline.ParMetisLike(*seed)
		if *method == "Pt-Scotch" {
			cfg = baseline.PtScotchLike(*seed)
		}
		cfg.Model = model
		res, runErr := baseline.PartitionChecked(g, *p, cfg)
		if runErr != nil {
			cres := retrySequential(runErr)
			part, cut, imb, timeS = cres.Part, cres.Cut, cres.Imbalance, cres.Times.Total
		} else {
			part, cut, imb, timeS = res.Part, res.Cut, res.Imbalance, res.Total
		}
	case "G30", "G7", "G7-NL":
		cfg := geopart.G30()
		if *method == "G7" {
			cfg = geopart.G7()
		}
		if *method == "G7-NL" {
			cfg = geopart.G7NL()
		}
		cfg.Seed = *seed
		var st geopart.Stats
		part, st, err = geopart.Partition(g, coords, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		cut, imb = st.Cut, st.Imbalance
	default:
		fmt.Fprintf(os.Stderr, "scalapart: unknown method %q\n", *method)
		os.Exit(1)
	}
	fmt.Printf("method=%s P=%d  cut=%d  imbalance=%.3f", *method, *p, cut, imb)
	if timeS > 0 {
		fmt.Printf("  modeled-time=%.4fs", timeS)
	}
	if fallback {
		fmt.Printf("  [sequential fallback]")
	}
	fmt.Println()
	if *out != "" {
		if err := writeParts(*out, part); err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		fmt.Printf("partition written to %s\n", *out)
	}
	if rec != nil && fallback {
		fmt.Fprintln(os.Stderr, "scalapart: WARNING: the traced parallel run failed; trace output covers the partial run, invariant checks use the fallback partition")
	}
	if rec != nil && *phaseBreak {
		fmt.Print(rec.Breakdown().Table())
	}
	if rec != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		err = rec.ChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *checkInv {
		failed := false
		if rec != nil && !fallback {
			if err := rec.CheckInvariants(); err != nil {
				fmt.Fprintln(os.Stderr, "scalapart:", err)
				failed = true
			}
		}
		if err := core.CheckPartition(g, part, cut, imb); err != nil {
			fmt.Fprintln(os.Stderr, "scalapart:", err)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("invariants OK")
	}
}

// writeBenchJSON runs the ScalaPart suite sweep at the given scale and
// writes the BENCH perf-trajectory file (modeled time, comm time,
// message counts, and host wall-clock per run). With breakdown set the
// sweep runs traced and each row carries its phase_breakdown array;
// with compress set the suite graphs are held in the delta/varint
// compressed representation (modeled fields are bit-identical either
// way, and each row records compressed/bytes_per_edge/peak_rss).
func writeBenchJSON(path string, scale float64, psSpec string, breakdown, compress bool, trials int) error {
	ps := bench.DefaultPs()
	if psSpec != "" {
		ps = ps[:0]
		for _, tok := range strings.Split(psSpec, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				return fmt.Errorf("bad -ps entry %q", tok)
			}
			ps = append(ps, v)
		}
	}
	h := bench.New(scale, ps)
	h.Trace = breakdown
	h.Compress = compress
	h.Trials = trials
	h.Out = os.Stderr
	data, err := h.BenchJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseFaultPlan parses the -fault flag: comma-separated specs of the
// form "kill:R@E", "drop:R@E", "delay:R@E+SECS", or "trunc:R@E", where
// R is the rank and E the 0-based index of the rank's communication
// event the fault fires at.
func parseFaultPlan(spec string) (*mpi.FaultPlan, error) {
	plan := mpi.NewFaultPlan()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("fault %q: want KIND:RANK@EVENT", item)
		}
		delay := 0.0
		if kind == "delay" {
			var dstr string
			rest, dstr, ok = strings.Cut(rest, "+")
			if !ok {
				return nil, fmt.Errorf("fault %q: delay needs +SECS", item)
			}
			d, err := strconv.ParseFloat(dstr, 64)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault %q: bad delay %q", item, dstr)
			}
			delay = d
		}
		rstr, estr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("fault %q: want KIND:RANK@EVENT", item)
		}
		rank, err := strconv.Atoi(rstr)
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("fault %q: bad rank %q", item, rstr)
		}
		event, err := strconv.ParseInt(estr, 10, 64)
		if err != nil || event < 0 {
			return nil, fmt.Errorf("fault %q: bad event %q", item, estr)
		}
		switch kind {
		case "kill":
			plan.Kill(rank, event)
		case "drop":
			plan.Drop(rank, event)
		case "delay":
			plan.Delay(rank, event, delay)
		case "trunc":
			plan.Truncate(rank, event)
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q (kill|drop|delay|trunc)", item, kind)
		}
	}
	return plan, nil
}

func loadGraph(file, name string, scale float64) (*graph.Graph, []geometry.Vec2, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var g *graph.Graph
		if strings.HasSuffix(file, ".mtx") {
			g, err = graph.ReadMatrixMarket(f)
		} else {
			g, err = graph.ReadMETIS(f)
		}
		return g, nil, err
	}
	if name == "" {
		name = "delaunay_n20"
	}
	for _, e := range gen.SuiteEntries() {
		if e.Name == name {
			gg := e.Build(scale)
			return gg.G, gg.Coords, nil
		}
	}
	return nil, nil, fmt.Errorf("unknown graph %q (try -list)", name)
}

func writeParts(path string, part []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, p := range part {
		fmt.Fprintln(w, p)
	}
	return w.Flush()
}
