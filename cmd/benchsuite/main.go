// Command benchsuite regenerates the paper's evaluation tables and
// figures on the synthetic suite. Each experiment prints the same rows
// or series the paper reports; execution times are the simulated
// runtime's virtual clocks (see internal/mpi).
//
//	benchsuite                          # everything, default scale
//	benchsuite -experiment fig3         # one experiment
//	benchsuite -scale 0.25 -ps 1,16,256 # quicker sweep
//	benchsuite -workers 4 -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/geopart"
	"repro/internal/hostpar"
	"repro/internal/mpi"
	"repro/internal/refine"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablations|chaos|all (chaos runs only by name)")
		scale      = flag.Float64("scale", 1.0, "suite size scale (1 = default bench sizes)")
		psFlag     = flag.String("ps", "", "comma-separated processor sweep (default 1,2,...,1024)")
		workers    = flag.Int("workers", 0, "worker pool size for the sweep and the fork-join kernels (0 = one per core)")
		compress   = flag.Bool("compress", false, "hold suite graphs in the delta/varint compressed adjacency representation (identical tables; smaller footprint)")
		refineFlag = flag.String("refine", "off", "extra refinement beyond the always-on strip FM: off (historical pipeline) | full (full-cut distributed boundary FM)")
		trials     = flag.Int("trials", 1, "evolutionary search width for the ScalaPart rows: N embed+partition trials with decorrelated seeds (1 = single pass)")
		rcbModel   = flag.Int("rcb-model", 2, "RCB cost-model version: 2 (Zoltan-faithful per-level medians + migration) | 1 (historical single-scan); partitions identical")
		replayFlag = flag.String("replay", "goroutine", "rank scheduling: goroutine | batched (step at most -workers ranks' compute between communication points)")
		collFlag   = flag.String("collectives", "fanin", "collective rendezvous engine: fanin (lock-free arrival slots, allocation-free) | legacy (mutex/cond gather-all); results are bit-identical")
		phaseBreak = flag.Bool("phase-breakdown", false, "print the per-phase virtual-time and byte-volume breakdown of the ScalaPart sweep, then exit")
		chaosSeed  = flag.Int64("chaos-seed", 1, "base seed for the chaos experiment's fault schedules")
		chaosRuns  = flag.Int("chaos-schedules", 3, "fault schedules per (graph, P, policy) in the chaos experiment")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite:", err)
			}
		}
	}()
	ps := bench.DefaultPs()
	if *psFlag != "" {
		ps = ps[:0]
		for _, tok := range strings.Split(*psFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "benchsuite: bad -ps entry %q\n", tok)
				os.Exit(1)
			}
			ps = append(ps, v)
		}
	}
	// One setting bounds both pools: concurrent sweep runs and the
	// fork-join kernels inside each run share the host's cores.
	hostpar.SetWorkers(*workers)
	replay, err := mpi.ParseReplayMode(*replayFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	mpi.SetReplayMode(replay)
	coll, err := mpi.ParseCollectiveEngine(*collFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	mpi.SetCollectiveEngine(coll)
	switch *refineFlag {
	case "off":
	case "full":
		refine.SetFullCut(true)
	default:
		fmt.Fprintf(os.Stderr, "benchsuite: unknown -refine mode %q (want off or full)\n", *refineFlag)
		os.Exit(1)
	}
	if *rcbModel != 1 && *rcbModel != 2 {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown -rcb-model %d (want 1 or 2)\n", *rcbModel)
		os.Exit(1)
	}
	geopart.SetRCBModel(*rcbModel)
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "benchsuite: -trials must be >= 1 (got %d)\n", *trials)
		os.Exit(1)
	}
	h := bench.New(*scale, ps)
	h.Workers = *workers
	h.Compress = *compress
	h.Trials = *trials
	if !*quiet {
		h.Out = os.Stderr
	}
	if *phaseBreak {
		fmt.Println(h.PhaseBreakdown())
		return
	}
	if *experiment == "all" {
		// Warm the run cache for the full sweep in parallel; the
		// experiments below then assemble tables from cached runs.
		h.Precompute(bench.ParallelMethods())
	}
	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", h.Table1},
		{"table2", h.Table2},
		{"table3", h.Table3},
		{"fig2", h.Fig2},
		{"fig3", h.Fig3},
		{"fig4", h.Fig4},
		{"fig5", h.Fig5},
		{"fig6", h.Fig6},
		{"fig7", h.Fig7},
		{"fig8", h.Fig8},
		{"fig9", h.Fig9},
		{"table4", h.Table4},
		{"ablations", func() string {
			return h.AblationLatticeVsExact() + "\n" + h.AblationBlockSize() + "\n" +
				h.AblationStripFM() + "\n" + h.AblationTries() + "\n" +
				h.AblationLevelRetention() + "\n" + h.AblationSSDE()
		}},
		{"chaos", func() string {
			// The chaos soak is survivability evidence, not a paper
			// experiment: randomized fault schedules against both recovery
			// policies, every outcome verified. It runs only when asked for
			// by name, never under "all".
			return h.ChaosSoak(bench.ChaosConfig{
				Graphs:    []string{"ecology1", "ecology2", "delaunay_n20"},
				Ps:        []int{4, 16},
				Schedules: *chaosRuns,
				Seed:      *chaosSeed,
				Workers:   *workers,
			}).String()
		}},
	}
	ran := false
	for _, e := range experiments {
		if *experiment != e.name && (*experiment != "all" || e.name == "chaos") {
			continue
		}
		ran = true
		fmt.Println(e.run())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
}
