// Command benchsuite regenerates the paper's evaluation tables and
// figures on the synthetic suite. Each experiment prints the same rows
// or series the paper reports; execution times are the simulated
// runtime's virtual clocks (see internal/mpi).
//
//	benchsuite                          # everything, default scale
//	benchsuite -experiment fig3         # one experiment
//	benchsuite -scale 0.25 -ps 1,16,256 # quicker sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablations|all")
		scale      = flag.Float64("scale", 1.0, "suite size scale (1 = default bench sizes)")
		psFlag     = flag.String("ps", "", "comma-separated processor sweep (default 1,2,...,1024)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	ps := bench.DefaultPs()
	if *psFlag != "" {
		ps = ps[:0]
		for _, tok := range strings.Split(*psFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "benchsuite: bad -ps entry %q\n", tok)
				os.Exit(1)
			}
			ps = append(ps, v)
		}
	}
	h := bench.New(*scale, ps)
	if !*quiet {
		h.Out = os.Stderr
	}
	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", h.Table1},
		{"table2", h.Table2},
		{"table3", h.Table3},
		{"fig2", h.Fig2},
		{"fig3", h.Fig3},
		{"fig4", h.Fig4},
		{"fig5", h.Fig5},
		{"fig6", h.Fig6},
		{"fig7", h.Fig7},
		{"fig8", h.Fig8},
		{"fig9", h.Fig9},
		{"table4", h.Table4},
		{"ablations", func() string {
			return h.AblationLatticeVsExact() + "\n" + h.AblationBlockSize() + "\n" +
				h.AblationStripFM() + "\n" + h.AblationTries() + "\n" +
				h.AblationLevelRetention() + "\n" + h.AblationSSDE()
		}},
	}
	ran := false
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		fmt.Println(e.run())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
}
